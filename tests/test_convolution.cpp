// Tests for photonic tensor-core convolution (apps/convolution).
#include "apps/convolution.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace onfiber::apps {
namespace {

TEST(Convolution, EdgeBankShape) {
  const kernel_bank bank = make_edge_kernel_bank();
  EXPECT_EQ(bank.size, 3u);
  EXPECT_EQ(bank.kernels.size(), 5u);
  for (const auto& k : bank.kernels) {
    ASSERT_EQ(k.size(), 9u);
    for (const double v : k) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Convolution, GaborBankDeterministicAndNormalized) {
  const kernel_bank a = make_gabor_kernel_bank(5, 4, 11);
  const kernel_bank b = make_gabor_kernel_bank(5, 4, 11);
  ASSERT_EQ(a.kernels.size(), 4u);
  EXPECT_EQ(a.kernels, b.kernels);
  for (const auto& k : a.kernels) {
    double max_abs = 0.0;
    for (const double v : k) max_abs = std::max(max_abs, std::abs(v));
    EXPECT_NEAR(max_abs, 1.0, 1e-9);
  }
}

TEST(Convolution, GaborValidation) {
  EXPECT_THROW((void)make_gabor_kernel_bank(2, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make_gabor_kernel_bank(4, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make_gabor_kernel_bank(5, 0, 1), std::invalid_argument);
}

TEST(Convolution, ReferenceKnownValues) {
  // Constant image: every edge kernel (zero-sum except blur) gives 0.
  frame flat(8, 8);
  for (double& p : flat.pixels) p = 0.75;
  const kernel_bank bank = make_edge_kernel_bank();
  const feature_maps maps = conv2d_reference(flat, bank);
  EXPECT_EQ(maps.width, 6u);
  EXPECT_EQ(maps.height, 6u);
  // Sobel x on a constant image = 0.
  for (const double v : maps.maps[0]) EXPECT_NEAR(v, 0.0, 1e-12);
  // Box blur on constant 0.75 (centered -> 0.25) = 9 * 0.25 / 9... with
  // normalization the kernel is all ones -> sum = 9 * 0.25 = 2.25.
  for (const double v : maps.maps[3]) EXPECT_NEAR(v, 2.25, 1e-12);
}

TEST(Convolution, VerticalEdgeDetected) {
  // Left half dark, right half bright: Sobel-x response is large on the
  // boundary column, ~0 elsewhere.
  frame img(10, 10);
  for (std::size_t y = 0; y < 10; ++y) {
    for (std::size_t x = 0; x < 10; ++x) {
      img.at(x, y) = x < 5 ? 0.1 : 0.9;
    }
  }
  const kernel_bank bank = make_edge_kernel_bank();
  const feature_maps maps = conv2d_reference(img, bank);
  const auto& sobel_x = maps.maps[0];
  // Boundary spans output columns 3 and 4 (patches x=3..5 and 4..6).
  const double on_edge = std::abs(sobel_x[2 * maps.width + 4]);
  const double off_edge = std::abs(sobel_x[2 * maps.width + 0]);
  EXPECT_GT(on_edge, 0.5);
  EXPECT_LT(off_edge, 1e-9);
}

TEST(Convolution, PhotonicTracksReference) {
  const frame img = make_synthetic_frame(16, 16, 3);
  const kernel_bank bank = make_edge_kernel_bank();
  const feature_maps ref = conv2d_reference(img, bank);
  phot::wdm_gemv_engine engine({}, 5, 9);
  const feature_maps pho = conv2d_photonic(img, bank, engine);
  EXPECT_LT(feature_error(ref, pho), 0.05);
  EXPECT_GT(pho.latency_s, 0.0);
  EXPECT_GT(pho.optical_symbols, 0u);
}

TEST(Convolution, LanesSpeedUpConv) {
  const frame img = make_synthetic_frame(12, 12, 4);
  const kernel_bank bank = make_edge_kernel_bank();
  phot::wdm_gemv_engine one({}, 1, 10);
  phot::wdm_gemv_engine five({}, 5, 10);
  const double t1 = conv2d_photonic(img, bank, one).latency_s;
  const double t5 = conv2d_photonic(img, bank, five).latency_s;
  EXPECT_NEAR(t1 / t5, 5.0, 0.5);
}

TEST(Convolution, Validation) {
  const kernel_bank bank = make_edge_kernel_bank();
  const frame tiny(2, 2);
  EXPECT_THROW((void)conv2d_reference(tiny, bank), std::invalid_argument);
  kernel_bank empty;
  const frame img(8, 8);
  EXPECT_THROW((void)conv2d_reference(img, empty), std::invalid_argument);
  kernel_bank bad = bank;
  bad.kernels[0].pop_back();
  EXPECT_THROW((void)conv2d_reference(img, bad), std::invalid_argument);
}

TEST(Convolution, FeatureErrorValidation) {
  const frame img = make_synthetic_frame(8, 8, 5);
  const auto a = conv2d_reference(img, make_edge_kernel_bank());
  auto b = a;
  b.maps.pop_back();
  EXPECT_THROW((void)feature_error(a, b), std::invalid_argument);
  EXPECT_DOUBLE_EQ(feature_error(a, a), 0.0);
}

}  // namespace
}  // namespace onfiber::apps
