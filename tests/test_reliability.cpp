// Tests for the end-to-end reliability layer: ack/retry/backoff task
// tracking in the runtime, scripted link-flap fault injection on the
// fabric, controller-driven failover, the event-simulator runaway guard,
// and bit-reproducibility of the recovery trace.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "controller/controller.hpp"
#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/fabric.hpp"
#include "network/topology.hpp"

namespace onfiber {
namespace {

// Figure-1 link indices (see make_figure1_topology): 0 A-B, 1 A-C,
// 2 B-D, 3 C-D, 4 A-D (direct, long).
constexpr std::size_t link_ab = 0;
constexpr std::size_t link_bd = 2;
constexpr std::size_t link_cd = 3;
constexpr std::size_t link_ad = 4;

core::gemv_task unit_gemv(std::size_t cols) {
  core::gemv_task task;
  task.weights = phot::matrix(1, cols);
  for (double& w : task.weights.data) w = 0.5;
  return task;
}

net::packet request_a_to_d(const core::onfiber_runtime& rt,
                           std::uint32_t task_id) {
  const std::vector<double> x(4, 0.5);
  return core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                 rt.fabric().topo().node_at(3).address, x, 1,
                                 task_id);
}

// ------------------------------------------------- event-sim run guard

TEST(EventSimGuard, RunCapReportsRunawayInsteadOfHanging) {
  // A retry timer that unconditionally self-reschedules would spin a
  // plain run() forever; the capped run() returns and flags the overrun.
  net::simulator sim;
  std::function<void()> tick = [&] { sim.schedule(1e-3, tick); };
  sim.schedule(0.0, tick);
  EXPECT_EQ(sim.run(1000), 1000u);
  EXPECT_TRUE(sim.overran());
  EXPECT_FALSE(sim.empty());
}

TEST(EventSimGuard, NormalDrainDoesNotFlagOverrun) {
  net::simulator sim;
  int fired = 0;
  sim.schedule(0.0, [&] { ++fired; });
  sim.schedule(1.0, [&] { ++fired; });
  EXPECT_EQ(sim.run(1000), 2u);
  EXPECT_FALSE(sim.overran());
  EXPECT_EQ(fired, 2);
}

// ------------------------------------------------- flap schedule (fabric)

TEST(FlapSchedule, FailsRestoresAndReconverges) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(2, 100.0));
  fabric.install_shortest_path_routes();

  const net::wan_fabric::link_flap flap{0, 0.010, 0.020};
  fabric.schedule_flaps({&flap, 1}, 0.004);

  const auto send_at = [&](double t) {
    sim.schedule_at(t, [&] {
      net::packet pkt;
      pkt.src = fabric.topo().node_at(0).address;
      pkt.dst = fabric.topo().node_at(1).address;
      fabric.send(pkt, 0);
    });
  };
  send_at(0.000);  // healthy: delivered
  send_at(0.015);  // link down: black-holed
  send_at(0.030);  // restored: delivered
  sim.run();

  EXPECT_TRUE(fabric.link_is_up(0));
  EXPECT_EQ(fabric.reconvergences(), 2u);
  EXPECT_EQ(fabric.delivered(), 2u);
  EXPECT_EQ(fabric.dropped(), 1u);
}

TEST(FlapSchedule, RejectsBadSchedules) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(2, 100.0));
  const net::wan_fabric::link_flap bad_link{9, 0.0, 1.0};
  EXPECT_THROW(fabric.schedule_flaps({&bad_link, 1}, 0.0),
               std::out_of_range);
  const net::wan_fabric::link_flap backwards{0, 1.0, 0.5};
  EXPECT_THROW(fabric.schedule_flaps({&backwards, 1}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fabric.schedule_flaps({}, -1.0), std::invalid_argument);
}

// -------------------------------------------------- ack/retry lifecycle

TEST(Reliability, HealthyPathAcksWithoutRetries) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 61).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  for (std::uint32_t id = 0; id < 5; ++id) {
    rt.submit_reliable(request_a_to_d(rt, id), 0);
  }
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.acks_sent, 5u);
  EXPECT_EQ(rt.tasks_in_flight(), 0u);
  EXPECT_GT(s.mean_completion_s(), 0.0);
  EXPECT_GE(s.max_completion_s, s.mean_completion_s());
  // Acks are control plane: only the 5 result deliveries are recorded.
  EXPECT_EQ(rt.deliveries().size(), 5u);
  for (const auto& d : rt.deliveries()) {
    EXPECT_TRUE(core::read_gemv_result(d.pkt).has_value());
  }
}

TEST(Reliability, DropAndRetryRecoversAcrossFlap) {
  // A-B flaps while the task is in flight: the submission and the first
  // retry are black-holed (stale compute route into the dead link), the
  // backoff carries past the restore, and the second retry completes.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 62).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flap{link_ab, 0.0, 0.030};
  rt.fabric().schedule_flaps({&flap, 1}, 0.004);

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.020;
  cfg.backoff = 2.0;
  rt.enable_reliability(cfg);
  rt.submit_reliable(request_a_to_d(rt, 7), 0);
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.retransmits, 2u);  // t=0.02 (still down), t=0.06 (recovers)
  EXPECT_EQ(rt.tasks_in_flight(), 0u);
  EXPECT_EQ(rt.stats().computed, 1u);
}

TEST(Reliability, FailoverReroutesToAlternateSite) {
  // Site B becomes unreachable (both its links die); after the
  // configured number of timeouts the controller picks C and the pinned
  // retry completes there.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 63).configure_gemv(unit_gemv(4));
  rt.deploy_engine(2, {}, 64).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  rt.fabric().fail_link(link_ab);
  rt.fabric().fail_link(link_bd);
  rt.fabric().install_shortest_path_routes();  // plain plane reconverged

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.020;
  cfg.backoff = 2.0;
  cfg.failover_after = 1;
  rt.enable_reliability(cfg);
  rt.submit_reliable(request_a_to_d(rt, 9), 0);
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_GT(rt.site_busy_s(2), 0.0);          // served by C
  EXPECT_DOUBLE_EQ(rt.site_busy_s(1), 0.0);   // B never reached
  // The trace records the failover decision with the chosen site.
  bool saw_failover = false;
  for (const auto& ev : rt.recovery_trace()) {
    if (ev.what == core::onfiber_runtime::reliability_event::kind::failover) {
      saw_failover = true;
      EXPECT_EQ(ev.site, 2u);
    }
  }
  EXPECT_TRUE(saw_failover);
}

TEST(Reliability, RetryCapYieldsTerminalFailure) {
  // D is fully partitioned: every retry dies, and after max_retries the
  // task fails terminally through the callback.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 65).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();
  rt.fabric().fail_link(link_bd);
  rt.fabric().fail_link(link_cd);
  rt.fabric().fail_link(link_ad);
  rt.fabric().install_shortest_path_routes();

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.010;
  cfg.backoff = 1.5;
  cfg.max_retries = 2;
  rt.enable_reliability(cfg);

  std::vector<std::uint32_t> failed_ids;
  rt.set_task_failure_callback(
      [&](std::uint32_t id) { failed_ids.push_back(id); });
  rt.submit_reliable(request_a_to_d(rt, 21), 0);
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.retransmits, 2u);
  EXPECT_EQ(rt.tasks_in_flight(), 0u);
  ASSERT_EQ(failed_ids.size(), 1u);
  EXPECT_EQ(failed_ids[0], 21u);
}

TEST(Reliability, RejectsBadSubmissions) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 66).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  net::packet plain;  // no compute header
  EXPECT_THROW(rt.submit_reliable(std::move(plain), 0),
               std::invalid_argument);
  EXPECT_THROW(rt.submit_reliable(request_a_to_d(rt, 1), 99),
               std::out_of_range);
  rt.submit_reliable(request_a_to_d(rt, 1), 0);
  // In-flight task_id collision is rejected.
  EXPECT_THROW(rt.submit_reliable(request_a_to_d(rt, 1), 0),
               std::invalid_argument);
  core::onfiber_runtime::reliability_config bad;
  bad.backoff = 0.5;
  EXPECT_THROW(rt.enable_reliability(bad), std::invalid_argument);
}

TEST(Reliability, DuplicateDeliveryAfterAckIsCounted) {
  // The rto is shorter than the submit->ack round trip, so a retransmit
  // goes out while the first copy's ack is still in flight. The ack
  // lands first and erases the pending entry; the retransmit's delivery
  // arrives afterwards and must still be counted as a duplicate (it used
  // to vanish once the table entry was gone).
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 67).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.006;  // > one-way (~4.3 ms), < round trip (~8.6 ms)
  rt.enable_reliability(cfg);
  rt.submit_reliable(request_a_to_d(rt, 3), 0);
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.duplicate_deliveries, 1u);
  EXPECT_EQ(rt.tasks_in_flight(), 0u);
}

TEST(Reliability, ReusedTaskIdDoesNotInheritDuplicateHistory) {
  // Complete task 5, then legally reuse its id for a task that fails
  // terminally before its packet arrives. The late first delivery of the
  // *new* task must not be mistaken for a duplicate of the old one.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 68).configure_gemv(unit_gemv(4));
  rt.install_compute_routes_via_nearest_site();

  rt.enable_reliability();
  rt.submit_reliable(request_a_to_d(rt, 5), 0);
  sim.run();
  ASSERT_EQ(rt.reliability().completed, 1u);
  ASSERT_EQ(rt.reliability().duplicate_deliveries, 0u);

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.001;  // fires before the ~4.3 ms delivery
  cfg.max_retries = 0;        // first timeout is terminal
  rt.enable_reliability(cfg);
  rt.submit_reliable(request_a_to_d(rt, 5), 0);
  sim.run();

  const auto& s = rt.reliability();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.duplicate_deliveries, 0u);
}

// ------------------------------------------------------ failover planner

TEST(FailoverPlanner, PicksBestAlternateOverLiveLinks) {
  const net::topology topo = net::make_figure1_topology();
  const std::vector<net::node_id> capable{1, 2};
  // All links healthy, nothing excluded: ties resolve to the first
  // capable site (B), the same choice the nearest-site routes make.
  const auto primary =
      ctrl::plan_failover_site(topo, capable, net::invalid_node, 0, 3);
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->site, 1u);
  // Excluding B yields C.
  const auto alt = ctrl::plan_failover_site(topo, capable, 1, 0, 3);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->site, 2u);
  EXPECT_GT(alt->via_delay_s, 0.0);
  // With C's links dead too, no plan exists.
  std::vector<bool> up(topo.links().size(), true);
  up[1] = false;  // A-C
  up[3] = false;  // C-D
  EXPECT_FALSE(
      ctrl::plan_failover_site(topo, capable, 1, 0, 3, &up).has_value());
}

// ----------------------------------------------------------- determinism

struct trace_run {
  std::vector<core::onfiber_runtime::reliability_event> trace;
  std::uint64_t completed = 0;
  std::uint64_t retransmits = 0;
};

trace_run run_flap_scenario(std::size_t threads) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  auto& eng_b = rt.deploy_engine(1, {}, 71);
  eng_b.configure_gemv(unit_gemv(4));
  eng_b.set_threads(threads);
  auto& eng_c = rt.deploy_engine(2, {}, 72);
  eng_c.configure_gemv(unit_gemv(4));
  eng_c.set_threads(threads);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {link_ab, 0.000, 0.050},
      {link_bd, 0.010, 0.060},
  };
  rt.fabric().schedule_flaps(flaps, 0.004, /*jitter_seed=*/5,
                             /*reconvergence_jitter_s=*/0.002);

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.020;
  cfg.backoff = 2.0;
  cfg.failover_after = 2;
  rt.enable_reliability(cfg);
  for (std::uint32_t id = 0; id < 12; ++id) {
    rt.submit_reliable(request_a_to_d(rt, id), 0);
  }
  sim.run();
  return trace_run{rt.recovery_trace(), rt.reliability().completed,
                   rt.reliability().retransmits};
}

TEST(Reliability, RecoveryTraceBitIdenticalAcrossRunsAndThreads) {
  const trace_run a = run_flap_scenario(1);
  const trace_run b = run_flap_scenario(1);
  const trace_run c = run_flap_scenario(8);

  EXPECT_GT(a.retransmits, 0u);  // the scenario actually exercises retry
  EXPECT_EQ(a.completed, 12u);   // ... and everything recovers

  for (const trace_run* other : {&b, &c}) {
    ASSERT_EQ(a.trace.size(), other->trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(static_cast<int>(a.trace[i].what),
                static_cast<int>(other->trace[i].what))
          << "event " << i;
      EXPECT_EQ(a.trace[i].task_id, other->trace[i].task_id) << i;
      // Bit-identical times, not approximately equal.
      EXPECT_EQ(a.trace[i].time_s, other->trace[i].time_s) << i;
      EXPECT_EQ(a.trace[i].site, other->trace[i].site) << i;
    }
    EXPECT_EQ(a.completed, other->completed);
    EXPECT_EQ(a.retransmits, other->retransmits);
  }
}

}  // namespace
}  // namespace onfiber
