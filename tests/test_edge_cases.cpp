// Edge-case and saturation tests across the stack: the places where the
// physics clips, the math degenerates, or the API is abused.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/pattern_matcher.hpp"
#include "photonics/rng.hpp"

namespace onfiber {
namespace {

// ----------------------------------------------------- detector saturation

TEST(EdgeCases, DetectorSaturationClampsDotProduct) {
  // Absurd laser power saturates the photodetector: the result clamps
  // instead of exploding — analog overflow is graceful.
  phot::dot_product_config cfg;
  cfg.laser.power_mw = 1e7;  // 10 kW "laser"
  cfg.detector.saturation_current_a = 1e-3;
  phot::dot_product_unit unit(cfg, 1);
  const std::vector<double> ones(16, 1.0);
  const auto r = unit.dot_unit_range(ones, ones);
  EXPECT_TRUE(std::isfinite(r.value));
  // Saturated current / full-scale current ~ tiny -> result far below 16,
  // but never NaN/inf and never negative beyond codec range.
  EXPECT_LT(std::abs(r.value), 32.0);
}

TEST(EdgeCases, ZeroPowerLaserGivesZeroish) {
  phot::dot_product_config cfg;
  cfg.laser.power_mw = 0.0;
  phot::dot_product_unit unit(cfg, 2);
  const std::vector<double> ones(8, 1.0);
  const auto r = unit.dot_unit_range(ones, ones);
  EXPECT_TRUE(std::isfinite(r.value));
}

TEST(EdgeCases, SingleElementVectors) {
  phot::dot_product_unit unit({}, 3);
  const std::vector<double> a{0.7}, b{0.6};
  EXPECT_NEAR(unit.dot_unit_range(a, b).value, 0.42, 0.1);
  const std::vector<double> sa{-0.7}, sb{0.6};
  EXPECT_NEAR(unit.dot_signed(sa, sb).value, -0.42, 0.15);
}

TEST(EdgeCases, LargeVectorStaysCalibrated) {
  // 4096 elements: integration keeps the mean calibrated; relative
  // error must stay ~1%.
  phot::dot_product_unit unit({}, 4);
  phot::rng g(5);
  std::vector<double> a(4096), b(4096);
  for (double& v : a) v = g.uniform();
  for (double& v : b) v = g.uniform();
  const double exact =
      std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
  const auto r = unit.dot_unit_range(a, b);
  EXPECT_NEAR(r.value, exact, 0.02 * exact);
}

// --------------------------------------------------------- matcher extremes

TEST(EdgeCases, SingleBitPattern) {
  phot::pattern_matcher m({}, 6);
  const std::vector<std::uint8_t> one{1}, zero{0};
  EXPECT_TRUE(m.match_bits(one, one).matched);
  EXPECT_FALSE(m.match_bits(one, zero).matched);
}

TEST(EdgeCases, ScanStrideRespected) {
  phot::pattern_matcher m({}, 7);
  // Pattern "11" occurs at offsets 0..3 of "11111"; stride 2 reports 0,2.
  const std::vector<std::uint8_t> stream(5, 1);
  const std::vector<phot::tbit> pattern{phot::tbit::one, phot::tbit::one};
  const auto hits = m.scan(stream, pattern, 2);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 2}));
}

TEST(EdgeCases, MatcherThresholdConfigurable) {
  // A generous threshold accepts near-matches: fuzzy matching knob.
  phot::pattern_match_config cfg;
  cfg.decision_threshold = 0.1;  // tolerate < 10% mismatched bits
  phot::pattern_matcher m(cfg, 8);
  std::vector<std::uint8_t> word(32, 0);
  auto close = word;
  close[3] ^= 1;  // 1/32 = 3.1% mismatch
  auto far = word;
  for (int i = 0; i < 8; ++i) far[i] ^= 1;  // 25%
  EXPECT_TRUE(m.match_bits(word, close).matched);
  EXPECT_FALSE(m.match_bits(word, far).matched);
}

// -------------------------------------------------------- engine edge cases

TEST(EdgeCases, EngineZeroLengthInputRejected) {
  core::photonic_engine e({}, 9);
  net::packet pkt;
  pkt.proto = net::ip_proto::compute;
  proto::compute_header h;
  h.primitive = proto::primitive_id::p3_nonlinear;
  h.input_offset = 0;
  h.input_length = 0;  // nothing to compute on
  h.result_offset = 0;
  h.result_length = 4;
  pkt.payload.assign(4, 0);
  proto::attach_compute_header(pkt, h);
  EXPECT_FALSE(e.process(pkt).computed);
}

TEST(EdgeCases, EngineOffsetsBeyondPayloadRejected) {
  core::photonic_engine e({}, 10);
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  e.configure_gemv(task);
  net::packet pkt = core::make_gemv_request(net::ipv4(1, 0, 0, 1),
                                            net::ipv4(2, 0, 0, 1),
                                            std::vector<double>(4, 0.5), 1);
  // Corrupt the result offset to point past the payload, re-checksum.
  auto h = proto::peek_compute_header(pkt);
  h->result_offset = 60000;
  ASSERT_TRUE(proto::rewrite_compute_header(pkt, *h));
  EXPECT_FALSE(e.process(pkt).computed);
}

TEST(EdgeCases, ReconfigurationSwapsTasks) {
  core::photonic_engine e({}, 11);
  core::gemv_task g1;
  g1.weights = phot::matrix(1, 2);
  g1.weights.at(0, 0) = 1.0;
  e.configure_gemv(g1);
  const std::vector<double> x{0.8, 0.0};
  net::packet p1 = core::make_gemv_request(net::ipv4(1, 0, 0, 1),
                                           net::ipv4(2, 0, 0, 1), x, 1);
  ASSERT_TRUE(e.process(p1).computed);
  EXPECT_NEAR((*core::read_gemv_result(p1))[0], 0.8, 0.1);

  // Retask the same engine (the §3 reconfiguration story) and verify the
  // new weights apply.
  core::gemv_task g2;
  g2.weights = phot::matrix(1, 2);
  g2.weights.at(0, 1) = -1.0;
  e.configure_gemv(g2);
  net::packet p2 = core::make_gemv_request(net::ipv4(1, 0, 0, 1),
                                           net::ipv4(2, 0, 0, 1),
                                           std::vector<double>{0.0, 0.9}, 1);
  ASSERT_TRUE(e.process(p2).computed);
  EXPECT_NEAR((*core::read_gemv_result(p2))[0], -0.9, 0.1);
}

// -------------------------------------------------------- runtime edge cases

TEST(EdgeCases, RedeployReplacesEngine) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(1, 2);
  rt.deploy_engine(1, {}, 12).configure_gemv(task);
  EXPECT_TRUE(rt.site_supports(1, proto::primitive_id::p1_dot_product));
  // Redeploy with no tasks: the old engine is replaced wholesale.
  rt.deploy_engine(1, {}, 13);
  EXPECT_FALSE(rt.site_supports(1, proto::primitive_id::p1_dot_product));
}

TEST(EdgeCases, SubmitAtInvalidNodeThrows) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  net::packet pkt;
  EXPECT_THROW(rt.submit(pkt, 99), std::out_of_range);
  EXPECT_THROW(rt.deploy_engine(99, {}, 1), std::out_of_range);
  EXPECT_THROW(rt.set_compute_route(99, net::prefix{}, proto::primitive_id::p1_dot_product, 0),
               std::out_of_range);
}

TEST(EdgeCases, ZeroTtlPacketDroppedImmediately) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  net::packet pkt;
  pkt.src = rt.fabric().topo().node_at(0).address;
  pkt.dst = rt.fabric().topo().node_at(3).address;
  pkt.ttl = 0;
  rt.submit(pkt, 0);
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), 0u);
  EXPECT_EQ(rt.fabric().dropped(), 1u);
}

TEST(EdgeCases, PacketForSelfDeliversLocally) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  net::packet pkt;
  pkt.src = rt.fabric().topo().node_at(0).address;
  pkt.dst = rt.fabric().topo().node_at(0).address;  // same node
  rt.submit(pkt, 0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.deliveries()[0].at, 0u);
}

}  // namespace
}  // namespace onfiber
