// Tests for the seven Table-1 use cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/encryption.hpp"
#include "apps/intrusion_detection.hpp"
#include "apps/ip_routing.hpp"
#include "apps/load_balancing.hpp"
#include "apps/mimo.hpp"
#include "apps/ml_inference.hpp"
#include "apps/video_encoding.hpp"
#include "network/traffic.hpp"

namespace onfiber::apps {
namespace {

// ------------------------------------------------------------ ML inference

TEST(MlApp, PhotonicAccuracyNearReference) {
  const digital::dataset data =
      digital::make_synthetic_dataset(16, 4, 20, 0.08, 7);
  const digital::dnn_model model =
      digital::train_mlp(data, {12}, 40, 0.08, 11,
                         digital::activation_kind::photonic_sin2, 2.0);
  const double ref = digital::reference_accuracy(model, data);
  core::photonic_engine engine({}, 99);
  engine.configure_dnn(to_photonic_task(model));
  const photonic_eval eval = evaluate_photonic(engine, model, data);
  EXPECT_GE(ref, 0.95);
  EXPECT_GE(eval.accuracy, ref - 0.1);
  EXPECT_GT(eval.mean_compute_latency_s, 0.0);
}

TEST(MlApp, NaiveReluMappingDegrades) {
  // The ablation: a ReLU-trained model deployed on the sin^2 engine loses
  // accuracy vs its photonic-aware twin.
  const digital::dataset data =
      digital::make_synthetic_dataset(16, 4, 20, 0.08, 7);
  const digital::dnn_model relu_model =
      digital::train_mlp(data, {12}, 40, 0.08, 11);
  const digital::dnn_model aware_model =
      digital::train_mlp(data, {12}, 40, 0.08, 11,
                         digital::activation_kind::photonic_sin2, 2.0);
  core::photonic_engine e1({}, 99), e2({}, 99);
  e1.configure_dnn(to_photonic_task(relu_model));
  e2.configure_dnn(to_photonic_task(aware_model));
  const double naive = evaluate_photonic(e1, relu_model, data).accuracy;
  const double aware = evaluate_photonic(e2, aware_model, data).accuracy;
  EXPECT_GT(aware, naive + 0.1);
}

TEST(MlApp, DeploymentLatencyOrdering) {
  const net::topology topo = net::make_figure1_topology();
  const digital::dataset data =
      digital::make_synthetic_dataset(16, 4, 4, 0.08, 7);
  const digital::dnn_model model = digital::train_mlp(data, {12}, 5, 0.05, 1);
  // Inference at src=A(0), dst=D(3); cloud at B(1) is a detour; the
  // on-fiber site C(2) is on a src->dst path.
  const deployment_latency lat =
      compare_deployments(topo, 0, 3, 1, 2, model, /*photonic_s=*/1e-6);
  // On-fiber beats cloud: no detour beyond the path, tiny compute time.
  EXPECT_LT(lat.on_fiber_s, lat.cloud_s);
  EXPECT_GT(lat.cloud_s, 0.0);
  EXPECT_GT(lat.edge_s, 0.0);
}

TEST(MlApp, RejectsUnconfiguredEngine) {
  const digital::dataset data =
      digital::make_synthetic_dataset(8, 2, 4, 0.1, 3);
  const digital::dnn_model model = digital::train_mlp(data, {4}, 2, 0.05, 1);
  core::photonic_engine engine({}, 1);
  EXPECT_THROW((void)evaluate_photonic(engine, model, data),
               std::invalid_argument);
}

// ---------------------------------------------------------- video encoding

TEST(VideoApp, DctMatrixOrthonormal) {
  const phot::matrix d = dct8_matrix();
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      double dot = 0.0;
      for (std::size_t k = 0; k < 8; ++k) dot += d.at(r, k) * d.at(c, k);
      EXPECT_NEAR(dot, r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(VideoApp, DigitalEncodeDecodeHighPsnr) {
  const frame f = make_synthetic_frame(32, 32, 5);
  video_config cfg;
  cfg.quant_step = 1.0 / 256.0;
  const encode_result enc = encode_digital(f, cfg);
  const frame back = decode(enc, 32, 32, cfg);
  EXPECT_GT(psnr_db(f, back), 40.0);
}

TEST(VideoApp, PhotonicEncodeReasonablePsnr) {
  const frame f = make_synthetic_frame(16, 16, 6);
  video_config cfg;
  cfg.quant_step = 1.0 / 64.0;
  phot::vector_matrix_engine engine({}, 42);
  const encode_result photonic = encode_photonic(f, cfg, engine);
  const frame back = decode(photonic, 16, 16, cfg);
  // Analog noise costs quality but the frame must remain recognizable.
  EXPECT_GT(psnr_db(f, back), 20.0);
  EXPECT_GT(photonic.latency_s, 0.0);
  EXPECT_GT(photonic.optical_symbols, 0u);
}

TEST(VideoApp, PhotonicCoefficientsTrackDigital) {
  const frame f = make_synthetic_frame(16, 16, 7);
  video_config cfg;
  phot::vector_matrix_engine engine({}, 43);
  const encode_result dig = encode_digital(f, cfg);
  const encode_result pho = encode_photonic(f, cfg, engine);
  ASSERT_EQ(dig.coefficients.size(), pho.coefficients.size());
  double err = 0.0;
  for (std::size_t i = 0; i < dig.coefficients.size(); ++i) {
    err += std::abs(dig.coefficients[i] - pho.coefficients[i]);
  }
  err /= static_cast<double>(dig.coefficients.size());
  EXPECT_LT(err, 0.15);  // mean absolute coefficient error
}

TEST(VideoApp, DimensionValidation) {
  const frame f = make_synthetic_frame(10, 16, 8);  // width not multiple of 8
  EXPECT_THROW((void)encode_digital(f, {}), std::invalid_argument);
  const encode_result enc;
  EXPECT_THROW((void)decode(enc, 16, 16, {}), std::invalid_argument);
}

TEST(VideoApp, PsnrIdenticalFramesIsCeiling) {
  const frame f = make_synthetic_frame(16, 16, 9);
  EXPECT_DOUBLE_EQ(psnr_db(f, f), 99.0);
}

// -------------------------------------------------------------- IP routing

TEST(IpRouteApp, PrefixPatternShape) {
  const auto pattern = prefix_pattern(net::prefix(net::ipv4(10, 0, 0, 0), 8));
  ASSERT_EQ(pattern.size(), 32u);
  int cared = 0;
  for (const auto t : pattern) {
    if (t != phot::tbit::wildcard) ++cared;
  }
  EXPECT_EQ(cared, 8);
  // 10 = 00001010.
  EXPECT_EQ(pattern[4], phot::tbit::one);
  EXPECT_EQ(pattern[6], phot::tbit::one);
  EXPECT_EQ(pattern[7], phot::tbit::zero);
}

TEST(IpRouteApp, LongestPrefixWinsPhotonic) {
  std::vector<fib_entry> entries{
      {net::prefix(net::ipv4(10, 0, 0, 0), 8), 1},
      {net::prefix(net::ipv4(10, 1, 0, 0), 16), 2},
      {net::prefix(net::ipv4(10, 1, 2, 0), 24), 3},
  };
  photonic_fib fib(entries, {}, 17);
  EXPECT_EQ(fib.lookup(net::ipv4(10, 1, 2, 9)).value(), 3u);
  EXPECT_EQ(fib.lookup(net::ipv4(10, 1, 9, 9)).value(), 2u);
  EXPECT_EQ(fib.lookup(net::ipv4(10, 9, 9, 9)).value(), 1u);
  EXPECT_FALSE(fib.lookup(net::ipv4(9, 9, 9, 9)).has_value());
}

TEST(IpRouteApp, DefaultRouteCatchesAll) {
  std::vector<fib_entry> entries{{net::prefix(net::ipv4(0), 0), 42}};
  photonic_fib fib(entries, {}, 18);
  EXPECT_EQ(fib.lookup(net::ipv4(1, 2, 3, 4)).value(), 42u);
  EXPECT_EQ(fib.evaluations(), 0u);  // no optical evaluation needed
}

TEST(IpRouteApp, MatchesTrieOnSyntheticFib) {
  const auto entries = make_synthetic_fib(24, 99, /*with_default=*/true);
  photonic_fib fib(entries, {}, 19);
  const auto trie = make_trie_fib(entries);
  phot::rng g(123);
  int disagreements = 0;
  constexpr int lookups = 60;
  for (int i = 0; i < lookups; ++i) {
    // Half the probes target known prefixes to exercise real matches.
    net::ipv4 addr;
    if (i % 2 == 0) {
      const auto& e = entries[g.below(entries.size())];
      addr = net::ipv4(e.dst.network.value |
                       (static_cast<std::uint32_t>(g()) & ~e.dst.mask()));
    } else {
      addr = net::ipv4(static_cast<std::uint32_t>(g()));
    }
    const auto photonic = fib.lookup(addr);
    const auto digital = trie.lookup(addr);
    if (photonic != digital) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(fib.evaluations(), 0u);
  EXPECT_GT(fib.analog_time_s(), 0.0);
}

// ------------------------------------------------------ intrusion detection

std::vector<std::vector<std::uint8_t>> test_signatures() {
  return {{'A', 'T', 'T', 'A', 'C', 'K', '0', '1'},
          {'m', 'a', 'l', 'w', 'a', 'r', 'e'}};
}

TEST(IdsApp, PerfectRecallPrecisionOnWorkload) {
  const auto sigs = test_signatures();
  const ids_workload w = make_ids_workload(sigs, 10, 48, 0.6, 5);
  photonic_ids photonic(sigs, {}, 21);
  const digital::aho_corasick ac(sigs);

  std::vector<std::vector<detection>> photonic_found, digital_found;
  for (const auto& payload : w.payloads) {
    photonic_found.push_back(photonic.scan(payload));
    digital_found.push_back(digital_ids_scan(ac, payload, sigs));
  }
  const detection_quality pq = score_detections(w.truth, photonic_found);
  const detection_quality dq = score_detections(w.truth, digital_found);
  EXPECT_DOUBLE_EQ(dq.recall, 1.0);
  EXPECT_DOUBLE_EQ(dq.precision, 1.0);
  EXPECT_DOUBLE_EQ(pq.recall, 1.0);
  EXPECT_DOUBLE_EQ(pq.precision, 1.0);
}

TEST(IdsApp, CleanPayloadsNoDetections) {
  const auto sigs = test_signatures();
  const ids_workload w = make_ids_workload(sigs, 6, 40, 0.0, 6);
  photonic_ids photonic(sigs, {}, 22);
  for (std::size_t i = 0; i < w.payloads.size(); ++i) {
    EXPECT_EQ(photonic.scan(w.payloads[i]).size(), w.truth[i].size());
  }
}

TEST(IdsApp, CountsAnalogWork) {
  const auto sigs = test_signatures();
  photonic_ids photonic(sigs, {}, 23);
  std::vector<std::uint8_t> payload(32, 'x');
  (void)photonic.scan(payload);
  // (32-8+1) + (32-7+1) windows.
  EXPECT_EQ(photonic.evaluations(), 25u + 26u);
}

TEST(IdsApp, Validation) {
  EXPECT_THROW(photonic_ids({}, {}, 1), std::invalid_argument);
  EXPECT_THROW(photonic_ids({{}}, {}, 1), std::invalid_argument);
  EXPECT_THROW((void)make_ids_workload({}, 1, 10, 0.5, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------- encryption

TEST(CryptoApp, DecryptRecoversPlaintext) {
  std::vector<std::uint8_t> key(32, 7);
  const std::vector<std::uint8_t> plain{'s', 'e', 'c', 'r', 'e', 't', '!', '?'};
  photonic_crypto crypto({}, 31);
  digital::stream_cipher enc_key(key, 5), dec_key(key, 5);
  const phot::waveform wave = crypto.encrypt(plain, enc_key);
  EXPECT_EQ(wave.size(), plain.size() * 8 + 1);  // pilot + bits
  const auto recovered = crypto.decrypt(wave, plain.size(), dec_key);
  EXPECT_EQ(recovered, plain);
}

TEST(CryptoApp, EavesdropperSeesNoise) {
  std::vector<std::uint8_t> key(32, 9);
  std::vector<std::uint8_t> plain(64);
  net::fill_random_bytes(plain, 77);
  photonic_crypto crypto({}, 32);
  digital::stream_cipher enc_key(key, 6);
  const phot::waveform wave = crypto.encrypt(plain, enc_key);
  const auto spied = crypto.eavesdrop(wave, plain.size());
  // Without the key the mask looks like a one-time pad: ~50% bit errors.
  const double ber = bit_error_fraction(plain, spied);
  EXPECT_GT(ber, 0.35);
  EXPECT_LT(ber, 0.65);
}

TEST(CryptoApp, WrongKeyFailsToDecrypt) {
  std::vector<std::uint8_t> key(32, 1), wrong(32, 2);
  std::vector<std::uint8_t> plain(32);
  net::fill_random_bytes(plain, 88);
  photonic_crypto crypto({}, 33);
  digital::stream_cipher enc_key(key, 7), bad_key(wrong, 7);
  const phot::waveform wave = crypto.encrypt(plain, enc_key);
  const auto garbled = crypto.decrypt(wave, plain.size(), bad_key);
  EXPECT_GT(bit_error_fraction(plain, garbled), 0.3);
}

TEST(CryptoApp, StreamLatency) {
  photonic_crypto crypto({}, 34);
  EXPECT_NEAR(crypto.stream_latency_s(100), 801.0 / 10e9, 1e-15);
}

TEST(CryptoApp, BitErrorFractionValidation) {
  const std::vector<std::uint8_t> a(4, 0), b(5, 0);
  EXPECT_THROW((void)bit_error_fraction(a, b), std::invalid_argument);
  EXPECT_DOUBLE_EQ(bit_error_fraction(a, a), 0.0);
  const std::vector<std::uint8_t> c{0xff, 0xff, 0xff, 0xff};
  EXPECT_DOUBLE_EQ(bit_error_fraction(a, c), 1.0);
}

// ------------------------------------------------------------ load balancing

TEST(LbApp, ComparatorCorrectWhenFarApart) {
  photonic_comparator cmp({}, 41);
  EXPECT_TRUE(cmp.less(0.1, 0.9));
  EXPECT_FALSE(cmp.less(0.9, 0.1));
  EXPECT_EQ(cmp.comparisons(), 2u);
}

TEST(LbApp, ComparatorNoisyWhenClose) {
  photonic_comparator cmp({}, 42);
  int wrong = 0;
  constexpr int trials = 400;
  for (int i = 0; i < trials; ++i) {
    if (!cmp.less(0.5000, 0.5001)) ++wrong;
  }
  // Too close to call reliably in analog: decisions split.
  EXPECT_GT(wrong, 10);
  EXPECT_LT(wrong, trials - 10);
}

TEST(LbApp, ComparatorArgmin) {
  photonic_comparator cmp({}, 43);
  const std::vector<double> loads{0.8, 0.1, 0.9, 0.5};
  EXPECT_EQ(cmp.argmin(loads), 1u);
  EXPECT_THROW((void)cmp.argmin(std::vector<double>{}),
               std::invalid_argument);
}

TEST(LbApp, FlowletPoliciesBeatEcmp) {
  const auto flows = make_lb_flows(400, 2000.0, 51);
  const lb_result ecmp =
      run_load_balancer(flows, 4, lb_policy::ecmp_hash, 0.5e-3, nullptr, 1);
  const lb_result digital = run_load_balancer(
      flows, 4, lb_policy::flowlet_digital, 0.5e-3, nullptr, 1);
  photonic_comparator cmp({}, 52);
  const lb_result photonic = run_load_balancer(
      flows, 4, lb_policy::flowlet_photonic, 0.5e-3, &cmp, 1);

  EXPECT_GT(digital.jain_fairness, ecmp.jain_fairness);
  EXPECT_GT(photonic.jain_fairness, ecmp.jain_fairness);
  // Photonic tracks digital closely despite comparator noise.
  EXPECT_GT(photonic.jain_fairness, digital.jain_fairness - 0.05);
  EXPECT_GT(digital.jain_fairness, 0.9);
}

TEST(LbApp, Validation) {
  const auto flows = make_lb_flows(5, 100.0, 1);
  EXPECT_THROW((void)run_load_balancer(flows, 0, lb_policy::ecmp_hash, 1e-3,
                                       nullptr, 1),
               std::invalid_argument);
  EXPECT_THROW((void)run_load_balancer(flows, 2, lb_policy::flowlet_photonic,
                                       1e-3, nullptr, 1),
               std::invalid_argument);
}

TEST(LbApp, FlowsDeterministic) {
  const auto a = make_lb_flows(20, 100.0, 9);
  const auto b = make_lb_flows(20, 100.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_DOUBLE_EQ(a[i].size_bytes, b[i].size_bytes);
  }
}

// -------------------------------------------------------------------- MIMO

TEST(MimoApp, ZeroForcingInvertsChannel) {
  const cmatrix h = make_rayleigh_channel(8, 4, 61);
  const cmatrix w = zero_forcing_matrix(h);
  // W H should be ~identity (K x K).
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      std::complex<double> acc{0.0, 0.0};
      for (std::size_t m = 0; m < 8; ++m) acc += w[r][m] * h[m][c];
      EXPECT_NEAR(acc.real(), r == c ? 1.0 : 0.0, 1e-9);
      EXPECT_NEAR(acc.imag(), 0.0, 1e-9);
    }
  }
}

TEST(MimoApp, QpskRoundTrip) {
  for (std::uint8_t bits = 0; bits < 4; ++bits) {
    EXPECT_EQ(qpsk_slice(qpsk_modulate(bits)), bits);
  }
}

TEST(MimoApp, StackedRealEquivalentToComplex) {
  const cmatrix h = make_rayleigh_channel(6, 3, 62);
  const cmatrix w = zero_forcing_matrix(h);
  const stacked_real sw = stack_real(w);
  // Random complex vector through both forms.
  phot::rng g(63);
  cvector y(6);
  for (auto& v : y) v = {g.uniform(-1.0, 1.0), g.uniform(-1.0, 1.0)};
  // Complex reference.
  cvector ref(3, {0.0, 0.0});
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 6; ++c) ref[r] += w[r][c] * y[c];
  }
  // Stacked real.
  std::vector<double> yr(12);
  for (std::size_t i = 0; i < 6; ++i) {
    yr[i] = y[i].real();
    yr[6 + i] = y[i].imag();
  }
  const auto zr = phot::gemv_reference(sw.w, yr);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(zr[r] * sw.scale, ref[r].real(), 1e-9);
    EXPECT_NEAR(zr[3 + r] * sw.scale, ref[r].imag(), 1e-9);
  }
}

TEST(MimoApp, HighSnrLowBer) {
  const cmatrix h = make_rayleigh_channel(8, 4, 64);
  phot::vector_matrix_engine engine({}, 65);
  const mimo_trial_result r = run_mimo_trial(h, 30.0, 50, engine, 66);
  EXPECT_LT(r.ber_digital, 0.01);
  EXPECT_LT(r.ber_photonic, 0.06);  // analog noise adds a small penalty
  EXPECT_GT(r.photonic_latency_s, 0.0);
}

TEST(MimoApp, BerDegradesWithLowSnr) {
  const cmatrix h = make_rayleigh_channel(8, 4, 67);
  phot::vector_matrix_engine e1({}, 68), e2({}, 68);
  const mimo_trial_result high = run_mimo_trial(h, 25.0, 60, e1, 69);
  const mimo_trial_result low = run_mimo_trial(h, 0.0, 60, e2, 69);
  EXPECT_GT(low.ber_digital, high.ber_digital);
  EXPECT_GT(low.evm_digital, high.evm_digital);
}

TEST(MimoApp, Validation) {
  EXPECT_THROW((void)make_rayleigh_channel(2, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make_rayleigh_channel(0, 0, 1), std::invalid_argument);
}

TEST(MimoApp, MmseReducesToZfAtZeroNoise) {
  const cmatrix h = make_rayleigh_channel(6, 3, 71);
  const cmatrix zf = zero_forcing_matrix(h);
  const cmatrix mmse = mmse_matrix(h, 0.0);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(std::abs(zf[r][c] - mmse[r][c]), 0.0, 1e-9);
    }
  }
  EXPECT_THROW((void)mmse_matrix(h, -1.0), std::invalid_argument);
}

TEST(MimoApp, MmseBeatsZfAtLowSnr) {
  // At low SNR, MMSE's regularization suppresses ZF's noise
  // enhancement: its EVM must be no worse (digital path).
  const cmatrix h = make_rayleigh_channel(8, 6, 73);  // near-square: ZF hurts
  const double snr_db = 0.0;
  const double noise_var = std::pow(10.0, -snr_db / 10.0);
  phot::vector_matrix_engine e1({}, 74), e2({}, 74);
  const auto zf = run_mimo_trial_with(h, zero_forcing_matrix(h), snr_db, 80,
                                      e1, 75);
  const auto mmse = run_mimo_trial_with(h, mmse_matrix(h, noise_var), snr_db,
                                        80, e2, 75);
  EXPECT_LE(mmse.evm_digital, zf.evm_digital + 1e-9);
  EXPECT_LE(mmse.ber_digital, zf.ber_digital + 0.02);
}

TEST(MimoApp, TrialWithRejectsBadDetectorShape) {
  const cmatrix h = make_rayleigh_channel(6, 3, 77);
  const cmatrix w = zero_forcing_matrix(make_rayleigh_channel(8, 4, 78));
  phot::vector_matrix_engine engine({}, 79);
  EXPECT_THROW((void)run_mimo_trial_with(h, w, 10.0, 4, engine, 80),
               std::invalid_argument);
}

}  // namespace
}  // namespace onfiber::apps
