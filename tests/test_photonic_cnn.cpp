// Tests for the end-to-end photonic CNN (conv front end + DNN head).
#include "apps/photonic_cnn.hpp"

#include <gtest/gtest.h>

#include "apps/ml_inference.hpp"

namespace onfiber::apps {
namespace {

TEST(PhotonicCnn, DatasetShapeAndDeterminism) {
  const image_dataset a = make_image_dataset(12, 12, 5, 9);
  const image_dataset b = make_image_dataset(12, 12, 5, 9);
  ASSERT_EQ(a.images.size(), 20u);  // 4 classes x 5
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i].pixels, b.images[i].pixels);
    for (const double p : a.images[i].pixels) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PhotonicCnn, DatasetValidation) {
  EXPECT_THROW((void)make_image_dataset(4, 12, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_image_dataset(12, 12, 0, 1),
               std::invalid_argument);
}

TEST(PhotonicCnn, FeatureVectorShapeAndRange) {
  const image_dataset data = make_image_dataset(12, 12, 2, 3);
  const photonic_cnn cnn = train_photonic_cnn(data, 8, 5, 11);
  const auto features = cnn_features_reference(cnn, data.images[0]);
  EXPECT_EQ(features.size(), cnn.feature_dim());
  for (const double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(PhotonicCnn, ReferenceAccuracyHigh) {
  const image_dataset data = make_image_dataset(12, 12, 12, 7);
  const photonic_cnn cnn = train_photonic_cnn(data, 16, 40, 11);
  EXPECT_GE(evaluate_cnn_reference(cnn, data).accuracy, 0.95);
}

TEST(PhotonicCnn, PhotonicMatchesReference) {
  const image_dataset data = make_image_dataset(12, 12, 10, 7);
  const photonic_cnn cnn = train_photonic_cnn(data, 16, 40, 11);
  const cnn_eval ref = evaluate_cnn_reference(cnn, data);
  phot::wdm_gemv_engine conv({}, 5, 42);
  core::photonic_engine head({}, 43);
  head.configure_dnn(to_photonic_task(cnn.head));
  const cnn_eval pho = evaluate_cnn_photonic(cnn, data, conv, head);
  EXPECT_GE(pho.accuracy, ref.accuracy - 0.1);
  EXPECT_GT(pho.mean_latency_s, 0.0);
}

TEST(PhotonicCnn, PhotonicFeaturesTrackReference) {
  const image_dataset data = make_image_dataset(12, 12, 2, 5);
  const photonic_cnn cnn = train_photonic_cnn(data, 8, 5, 13);
  phot::wdm_gemv_engine conv({}, 5, 15);
  const auto ref = cnn_features_reference(cnn, data.images[0]);
  const auto pho = cnn_features_photonic(cnn, data.images[0], conv);
  ASSERT_EQ(ref.size(), pho.size());
  double err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err += std::abs(ref[i] - pho[i]);
  }
  EXPECT_LT(err / static_cast<double>(ref.size()), 0.05);
}

TEST(PhotonicCnn, RequiresConfiguredHead) {
  const image_dataset data = make_image_dataset(12, 12, 1, 3);
  const photonic_cnn cnn = train_photonic_cnn(data, 8, 2, 17);
  phot::wdm_gemv_engine conv({}, 2, 19);
  core::photonic_engine bare({}, 21);
  EXPECT_THROW((void)evaluate_cnn_photonic(cnn, data, conv, bare),
               std::invalid_argument);
}

}  // namespace
}  // namespace onfiber::apps
