// Tests for the digital baselines: device models, DNN training/inference,
// Aho-Corasick, stream cipher.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "digital/cipher.hpp"
#include "digital/device_model.hpp"
#include "digital/dnn.hpp"
#include "digital/pattern.hpp"
#include "photonics/rng.hpp"

namespace onfiber::digital {
namespace {

// ------------------------------------------------------------ device model

TEST(DeviceModel, PaperClockRates) {
  EXPECT_NEAR(make_tpu_model().clock_hz, 1.05e9, 1e6);   // §2.2
  EXPECT_NEAR(make_gpu_model().clock_hz, 1.41e9, 1e6);   // §2.2
}

TEST(DeviceModel, LatencyScalesWithMacs) {
  const device_model tpu = make_tpu_model();
  const double l1 = tpu.gemv_latency_s(1000);
  const double l2 = tpu.gemv_latency_s(2000);
  EXPECT_GT(l2, l1);
  EXPECT_NEAR(l2 - l1, 1000.0 / (tpu.clock_hz * tpu.macs_per_cycle), 1e-15);
}

TEST(DeviceModel, EnergyIncludesMemoryTraffic) {
  const device_model tpu = make_tpu_model();
  const double no_mem = tpu.gemv_energy_j(100, 0);
  const double with_mem = tpu.gemv_energy_j(100, 100);
  EXPECT_NEAR(no_mem, 100 * tpu.mac_energy_j, 1e-18);
  EXPECT_GT(with_mem, no_mem);
}

TEST(DeviceModel, EdgeCpuSlowerThanTpu) {
  EXPECT_GT(make_edge_cpu_model().gemv_latency_s(1'000'000),
            make_tpu_model().gemv_latency_s(1'000'000));
}

// --------------------------------------------------------------------- dnn

TEST(Dnn, DatasetDeterministicAndShaped) {
  const dataset a = make_synthetic_dataset(8, 3, 10, 0.05, 42);
  const dataset b = make_synthetic_dataset(8, 3, 10, 0.05, 42);
  ASSERT_EQ(a.samples.size(), 30u);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.labels, b.labels);
  for (const auto& s : a.samples) {
    ASSERT_EQ(s.size(), 8u);
    for (const double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Dnn, DatasetValidation) {
  EXPECT_THROW((void)make_synthetic_dataset(0, 3, 10, 0.1, 1),
               std::invalid_argument);
}

TEST(Dnn, TrainingSeparatesClusters) {
  const dataset data = make_synthetic_dataset(16, 4, 25, 0.08, 7);
  const dnn_model model = train_mlp(data, {12}, 30, 0.05, 11);
  EXPECT_GE(reference_accuracy(model, data), 0.95);
}

TEST(Dnn, TrainingDeterministic) {
  const dataset data = make_synthetic_dataset(8, 2, 20, 0.1, 3);
  const dnn_model m1 = train_mlp(data, {6}, 10, 0.05, 5);
  const dnn_model m2 = train_mlp(data, {6}, 10, 0.05, 5);
  EXPECT_EQ(m1.layers[0].weights.data, m2.layers[0].weights.data);
}

TEST(Dnn, WeightsStayInUnitRange) {
  const dataset data = make_synthetic_dataset(8, 2, 20, 0.1, 3);
  const dnn_model m = train_mlp(data, {6}, 20, 0.3, 5);
  for (const auto& layer : m.layers) {
    for (const double w : layer.weights.data) {
      EXPECT_GE(w, -1.0);
      EXPECT_LE(w, 1.0);
    }
  }
}

TEST(Dnn, PhotonicAwareTrainingWorks) {
  const dataset data = make_synthetic_dataset(16, 4, 25, 0.08, 7);
  const dnn_model model = train_mlp(data, {12}, 40, 0.08, 11,
                                    activation_kind::photonic_sin2, 2.0);
  EXPECT_GE(reference_accuracy(model, data), 0.95);
  EXPECT_EQ(model.activation, activation_kind::photonic_sin2);
}

TEST(Dnn, ActivationFunctions) {
  EXPECT_DOUBLE_EQ(apply_activation(activation_kind::relu, -1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_activation(activation_kind::relu, 3.0, 2.0), 3.0);
  // photonic_sin2 at full scale: u=1, h=1*sin^2(pi/2)=1.
  EXPECT_NEAR(apply_activation(activation_kind::photonic_sin2, 2.0, 2.0),
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      apply_activation(activation_kind::photonic_sin2, -0.5, 2.0), 0.0);
  // Monotone on [0, scale].
  double prev = -1.0;
  for (double z = 0.0; z <= 2.0; z += 0.05) {
    const double h = apply_activation(activation_kind::photonic_sin2, z, 2.0);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(Dnn, ActivationDerivativeMatchesFiniteDifference) {
  for (const auto kind :
       {activation_kind::relu, activation_kind::photonic_sin2}) {
    for (const double z : {0.2, 0.7, 1.3, 1.9}) {
      const double eps = 1e-6;
      const double numeric = (apply_activation(kind, z + eps, 2.0) -
                              apply_activation(kind, z - eps, 2.0)) /
                             (2.0 * eps);
      EXPECT_NEAR(activation_derivative(kind, z, 2.0), numeric, 1e-5)
          << "z=" << z;
    }
  }
}

TEST(Dnn, Int8InferenceCloseToFloat) {
  const dataset data = make_synthetic_dataset(16, 4, 25, 0.08, 7);
  const dnn_model model = train_mlp(data, {12}, 30, 0.05, 11);
  std::size_t agree = 0;
  const device_model tpu = make_tpu_model();
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    const auto fl = infer_reference(model, data.samples[i]);
    const auto q = infer_int8(model, data.samples[i], tpu);
    if (argmax(fl) == argmax(q.logits)) ++agree;
    EXPECT_GT(q.latency_s, 0.0);
    EXPECT_GT(q.energy_j, 0.0);
  }
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(data.samples.size()),
            0.9);
}

TEST(Dnn, MacCount) {
  dnn_model m;
  dense_layer l1;
  l1.weights = phot::matrix(12, 16);
  l1.bias.assign(12, 0.0);
  dense_layer l2;
  l2.weights = phot::matrix(4, 12);
  l2.bias.assign(4, 0.0);
  m.layers = {l1, l2};
  EXPECT_EQ(m.mac_count(), 12u * 16u + 4u * 12u);
  EXPECT_EQ(m.input_dim(), 16u);
  EXPECT_EQ(m.output_dim(), 4u);
}

TEST(Dnn, ArgmaxEdgeCases) {
  const std::vector<double> v{1.0, 3.0, 3.0, 2.0};
  EXPECT_EQ(argmax(v), 1u);  // first of ties
  EXPECT_THROW((void)argmax(std::vector<double>{}), std::invalid_argument);
}

// ----------------------------------------------------------------- pattern

TEST(AhoCorasick, FindsAllOverlapping) {
  const std::vector<std::vector<std::uint8_t>> patterns{
      {'a', 'b'}, {'b', 'c'}, {'a', 'b', 'c'}};
  const aho_corasick ac(patterns);
  const std::vector<std::uint8_t> text{'x', 'a', 'b', 'c', 'a', 'b'};
  const auto hits = ac.find_all(text);
  // "ab"@3, "abc"@4, "bc"@4, "ab"@6 (end offsets).
  EXPECT_EQ(hits.size(), 4u);
}

TEST(AhoCorasick, AnyMatchShortCircuits) {
  const aho_corasick ac({{1, 2, 3}});
  const std::vector<std::uint8_t> yes{0, 1, 2, 3, 4};
  const std::vector<std::uint8_t> no{0, 1, 2, 4, 3};
  EXPECT_TRUE(ac.any_match(yes));
  EXPECT_FALSE(ac.any_match(no));
}

TEST(AhoCorasick, RejectsEmptyPattern) {
  std::vector<std::vector<std::uint8_t>> patterns;
  patterns.emplace_back();  // one empty pattern
  EXPECT_THROW(aho_corasick(std::move(patterns)), std::invalid_argument);
}

TEST(AhoCorasick, MatchesNaiveReferenceFuzz) {
  phot::rng g(31);
  for (int trial = 0; trial < 20; ++trial) {
    // Random patterns over a tiny alphabet to force many hits.
    std::vector<std::vector<std::uint8_t>> patterns;
    const std::size_t pattern_count = 1 + g.below(4);
    for (std::size_t p = 0; p < pattern_count; ++p) {
      std::vector<std::uint8_t> pat(1 + g.below(4));
      for (auto& b : pat) b = static_cast<std::uint8_t>(g.below(3));
      patterns.push_back(std::move(pat));
    }
    std::vector<std::uint8_t> text(200);
    for (auto& b : text) b = static_cast<std::uint8_t>(g.below(3));

    const aho_corasick ac(patterns);
    auto got = ac.find_all(text);
    auto expected = naive_scan(text, patterns);
    const auto key = [](const pattern_hit& h) {
      return std::pair(h.end_offset, h.pattern_index);
    };
    std::sort(got.begin(), got.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    std::sort(expected.begin(), expected.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

// ------------------------------------------------------------------ cipher

std::vector<std::uint8_t> test_key() {
  std::vector<std::uint8_t> key(32);
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

TEST(Cipher, RoundTrip) {
  const auto key = test_key();
  std::vector<std::uint8_t> data{'h', 'e', 'l', 'l', 'o', '!', '!', '!'};
  const auto original = data;
  stream_cipher enc(key, 7);
  enc.apply(data);
  EXPECT_NE(data, original);
  stream_cipher dec(key, 7);
  dec.apply(data);
  EXPECT_EQ(data, original);
}

TEST(Cipher, DifferentNoncesDiffer) {
  const auto key = test_key();
  stream_cipher a(key, 1), b(key, 2);
  EXPECT_NE(a.keystream(64), b.keystream(64));
}

TEST(Cipher, KeystreamDeterministic) {
  const auto key = test_key();
  stream_cipher a(key, 9), b(key, 9);
  EXPECT_EQ(a.keystream(100), b.keystream(100));
}

TEST(Cipher, ResetRestartsStream) {
  const auto key = test_key();
  stream_cipher c(key, 3);
  const auto first = c.keystream(32);
  c.reset();
  EXPECT_EQ(c.keystream(32), first);
}

TEST(Cipher, KeystreamLooksUniform) {
  const auto key = test_key();
  stream_cipher c(key, 11);
  const auto ks = c.keystream(1 << 16);
  std::map<std::uint8_t, int> histogram;
  for (const auto b : ks) ++histogram[b];
  // Every byte value appears, roughly uniformly.
  EXPECT_EQ(histogram.size(), 256u);
  for (const auto& [byte, count] : histogram) {
    EXPECT_NEAR(static_cast<double>(count), 256.0, 100.0);
  }
}

TEST(Cipher, RejectsBadKey) {
  const std::vector<std::uint8_t> short_key(16, 0);
  EXPECT_THROW(stream_cipher(short_key, 0), std::invalid_argument);
}

}  // namespace
}  // namespace onfiber::digital
