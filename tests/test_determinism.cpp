// Datapath determinism: a golden delivery-trace test over the Fig. 1
// topology with link flaps and bit errors enabled.
//
// The golden trace below — (task id, delivery node, arrival time) plus
// the delivery/drop/corruption counters — was captured from the seed
// (pre-optimization) engine: per-hop std::function closures, per-packet
// payload copies, and per-hop LPM trie walks. The rewritten datapath
// (typed pool-backed events, recycled payload buffers, flat route
// caches) must reproduce it bit-for-bit: arrival timestamps are compared
// with exact double equality, no tolerance. The same trace must also be
// invariant across reruns in one process and across ONFIBER_THREADS
// settings (the photonic GEMV kernels are deterministically parallel).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/topology.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

struct trace_entry {
  std::uint32_t task_id;
  net::node_id at;
  double time_s;

  bool operator==(const trace_entry&) const = default;
};

struct scenario_result {
  std::vector<trace_entry> trace;
  std::uint64_t delivered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t computed = 0;
  std::uint64_t malformed = 0;
  net::drop_stats drops;
};

/// Fig. 1 WAN, GEMV engines at B and C, both of B's links flapping with
/// jittered reconvergence, BER 1e-4: 48 compute requests A -> D.
scenario_result run_flap_ber_scenario() {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(1, {}, 21).configure_gemv(task);
  rt.deploy_engine(2, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.004, 0.011},
      {2, 0.006, 0.013},
  };
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  rt.fabric().set_bit_error_rate(1e-4, 99);

  std::vector<double> x(16);
  for (int i = 0; i < 48; ++i) {
    sim.schedule_at(0.0004 * i, [&rt, &x, i]() mutable {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] =
            -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(0).address,
                    rt.fabric().topo().node_at(3).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                0);
    });
  }
  sim.run(1'000'000);
  EXPECT_FALSE(sim.overran());

  scenario_result r;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    r.trace.push_back(trace_entry{h ? h->task_id : ~std::uint32_t{0}, d.at,
                                  d.time_s});
  }
  r.delivered = rt.fabric().delivered();
  r.corrupted = rt.fabric().corrupted();
  r.computed = rt.stats().computed;
  r.malformed = rt.stats().malformed_dropped;
  r.drops = rt.fabric().drops();
  return r;
}

// Captured from the seed engine (commit before the zero-allocation
// datapath): 28 deliveries at node D. Tasks 10-28 died in the flap
// window, task 40 was corrupted into a malformed header and dropped.
constexpr trace_entry kGoldenTrace[] = {
    {0, 3, 0x1.10c86612e9e11p-8},  {1, 3, 0x1.2aff48fe06244p-8},
    {2, 3, 0x1.45362be922677p-8},  {3, 3, 0x1.5f6d0ed43eaaap-8},
    {4, 3, 0x1.79a3f1bf5aedcp-8},  {5, 3, 0x1.93dad4aa7730fp-8},
    {6, 3, 0x1.ae11b79593742p-8},  {7, 3, 0x1.c8489a80afb74p-8},
    {8, 3, 0x1.e27f7d6bcbfa8p-8},  {9, 3, 0x1.fcb66056e83dap-8},
    {29, 3, 0x1.024006ad475f5p-6}, {30, 3, 0x1.08cdbf680e702p-6},
    {31, 3, 0x1.0f5b7822d580fp-6}, {32, 3, 0x1.15e930dd9c91bp-6},
    {33, 3, 0x1.1c76e99863a28p-6}, {34, 3, 0x1.2304a2532ab35p-6},
    {35, 3, 0x1.29925b0df1c41p-6}, {36, 3, 0x1.302013c8b8d4ep-6},
    {37, 3, 0x1.36adcc837fe5bp-6}, {38, 3, 0x1.3d3b853e46f67p-6},
    {39, 3, 0x1.43c93df90e074p-6}, {41, 3, 0x1.50e4af6e9c28ep-6},
    {42, 3, 0x1.577268296339bp-6}, {43, 3, 0x1.5e0020e42a4a7p-6},
    {44, 3, 0x1.648dd99ef15b4p-6}, {45, 3, 0x1.6b1b9259b86c1p-6},
    {46, 3, 0x1.71a94b147f7cdp-6}, {47, 3, 0x1.783703cf468dap-6},
};

void expect_matches_golden(const scenario_result& r) {
  ASSERT_EQ(r.trace.size(), std::size(kGoldenTrace));
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].task_id, kGoldenTrace[i].task_id) << "entry " << i;
    EXPECT_EQ(r.trace[i].at, kGoldenTrace[i].at) << "entry " << i;
    // Exact: the optimized engine may not perturb a single ULP.
    EXPECT_EQ(r.trace[i].time_s, kGoldenTrace[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(r.delivered, 28u);
  EXPECT_EQ(r.corrupted, 1u);
  EXPECT_EQ(r.computed, 29u);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.drops.total(), 20u);
}

TEST(DatapathDeterminism, GoldenDeliveryTraceMatchesSeedEngine) {
  expect_matches_golden(run_flap_ber_scenario());
}

TEST(DatapathDeterminism, BitIdenticalAcrossReruns) {
  const scenario_result a = run_flap_ber_scenario();
  const scenario_result b = run_flap_ber_scenario();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_TRUE(a.trace == b.trace);
  expect_matches_golden(b);
}

TEST(DatapathDeterminism, InvariantAcrossThreadCounts) {
  const char* prev = std::getenv("ONFIBER_THREADS");
  const std::string saved = prev != nullptr ? prev : "";

  ::setenv("ONFIBER_THREADS", "1", 1);
  const scenario_result one = run_flap_ber_scenario();
  ::setenv("ONFIBER_THREADS", "3", 1);
  const scenario_result three = run_flap_ber_scenario();

  if (prev != nullptr) {
    ::setenv("ONFIBER_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("ONFIBER_THREADS");
  }

  EXPECT_TRUE(one.trace == three.trace);
  expect_matches_golden(one);
  expect_matches_golden(three);
}

TEST(DatapathDropStats, FlapScenarioBreakdown) {
  const scenario_result r = run_flap_ber_scenario();
  // The seed engine counted 20 lumped drops; the per-reason split says
  // why: 18 black-holed into flapped links, 1 caught the window where
  // the reconverged table had retracted the route, 1 corrupted header
  // dropped by the runtime hook.
  EXPECT_EQ(r.drops.link_down, 18u);
  EXPECT_EQ(r.drops.no_route, 1u);
  EXPECT_EQ(r.drops.hook_drop, 1u);
  EXPECT_EQ(r.drops.ttl_expired, 0u);
  EXPECT_EQ(r.drops.bad_redirect, 0u);
  EXPECT_EQ(r.drops.total(), 20u);
}

}  // namespace
}  // namespace onfiber
