// Datapath determinism: a golden delivery-trace test over the Fig. 1
// topology with link flaps and bit errors enabled.
//
// The golden trace below — (task id, delivery node, arrival time) plus
// the delivery/drop/corruption counters — was first captured from the
// seed (pre-optimization) engine and re-captured once when the BER
// draws moved from a sequential generator to counter-based streams
// keyed on (seed, link, direction, transmit sequence): the corruption
// pattern changed by design (it is now shard-count invariant), and the
// new trace is the reference going forward. The datapath must reproduce
// it bit-for-bit: arrival timestamps are compared with exact double
// equality, no tolerance. The same trace must also be invariant across
// reruns in one process and across ONFIBER_THREADS settings (the
// photonic GEMV kernels are deterministically parallel).
//
// To re-capture after an intentional stream change, run this binary
// with ONFIBER_REGOLD=1 and paste the dumped table + counters.
//
// When the sample-plane kernel noise (laser RIN/phase, DAC/ADC, fiber
// ASE, photodetector) moved from sequential polar-method draws to
// counter-indexed inverse-CDF streams, no re-capture was needed: the
// trace records arrival times and BER-driven corruption, neither of
// which depends on kernel-noise sample values. Changing the kernel
// noise *distribution machinery* is therefore invisible here by
// design; this trace guards the datapath, and the kernel-noise
// contract is pinned separately (test_kernels.cpp scalar==batch,
// test_simd_dispatch.cpp cross-ISA exact equality). The trace must
// also be invariant across ONFIBER_SIMD levels — the dispatch tier,
// like the thread count, may not move a timestamp (check.sh re-runs
// this suite at scalar and native levels).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/topology.hpp"
#include "photonics/converter.hpp"
#include "photonics/kernels.hpp"
#include "photonics/laser.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/thread_pool.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

struct trace_entry {
  std::uint32_t task_id;
  net::node_id at;
  double time_s;

  bool operator==(const trace_entry&) const = default;
};

struct scenario_result {
  std::vector<trace_entry> trace;
  std::uint64_t delivered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t computed = 0;
  std::uint64_t malformed = 0;
  net::drop_stats drops;
};

/// Fig. 1 WAN, GEMV engines at B and C, both of B's links flapping with
/// jittered reconvergence, BER 1e-4: 48 compute requests A -> D.
scenario_result run_flap_ber_scenario() {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(1, {}, 21).configure_gemv(task);
  rt.deploy_engine(2, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.004, 0.011},
      {2, 0.006, 0.013},
  };
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  rt.fabric().set_bit_error_rate(1e-4, 99);

  std::vector<double> x(16);
  for (int i = 0; i < 48; ++i) {
    sim.schedule_at(0.0004 * i, [&rt, &x, i]() mutable {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] =
            -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(0).address,
                    rt.fabric().topo().node_at(3).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                0);
    });
  }
  sim.run(1'000'000);
  EXPECT_FALSE(sim.overran());

  scenario_result r;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    r.trace.push_back(trace_entry{h ? h->task_id : ~std::uint32_t{0}, d.at,
                                  d.time_s});
  }
  r.delivered = rt.fabric().delivered();
  r.corrupted = rt.fabric().corrupted();
  r.computed = rt.stats().computed;
  r.malformed = rt.stats().malformed_dropped;
  r.drops = rt.fabric().drops();
  return r;
}

// Re-captured for the counter-keyed BER streams: 28 deliveries at
// node D. Tasks 10-28 died in the flap window; task 0 was corrupted
// into a malformed header and dropped (under the old sequential draw
// stream it was task 40 — the flip pattern moved with the keying, the
// corrupted/malformed/drop totals did not).
constexpr trace_entry kGoldenTrace[] = {
    {1, 3, 0x1.2aff48fe06244p-8},  {2, 3, 0x1.45362be922677p-8},
    {3, 3, 0x1.5f6d0ed43eaaap-8},  {4, 3, 0x1.79a3f1bf5aedcp-8},
    {5, 3, 0x1.93dad4aa7730fp-8},  {6, 3, 0x1.ae11b79593742p-8},
    {7, 3, 0x1.c8489a80afb74p-8},  {8, 3, 0x1.e27f7d6bcbfa8p-8},
    {9, 3, 0x1.fcb66056e83dap-8},  {29, 3, 0x1.024006ad475f5p-6},
    {30, 3, 0x1.08cdbf680e702p-6}, {31, 3, 0x1.0f5b7822d580fp-6},
    {32, 3, 0x1.15e930dd9c91bp-6}, {33, 3, 0x1.1c76e99863a28p-6},
    {34, 3, 0x1.2304a2532ab35p-6}, {35, 3, 0x1.29925b0df1c41p-6},
    {36, 3, 0x1.302013c8b8d4ep-6}, {37, 3, 0x1.36adcc837fe5bp-6},
    {38, 3, 0x1.3d3b853e46f67p-6}, {39, 3, 0x1.43c93df90e074p-6},
    {40, 3, 0x1.4a56f6b3d5181p-6}, {41, 3, 0x1.50e4af6e9c28ep-6},
    {42, 3, 0x1.577268296339bp-6}, {43, 3, 0x1.5e0020e42a4a7p-6},
    {44, 3, 0x1.648dd99ef15b4p-6}, {45, 3, 0x1.6b1b9259b86c1p-6},
    {46, 3, 0x1.71a94b147f7cdp-6}, {47, 3, 0x1.783703cf468dap-6},
};

void expect_matches_golden(const scenario_result& r) {
  ASSERT_EQ(r.trace.size(), std::size(kGoldenTrace));
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].task_id, kGoldenTrace[i].task_id) << "entry " << i;
    EXPECT_EQ(r.trace[i].at, kGoldenTrace[i].at) << "entry " << i;
    // Exact: the optimized engine may not perturb a single ULP.
    EXPECT_EQ(r.trace[i].time_s, kGoldenTrace[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(r.delivered, 28u);
  EXPECT_EQ(r.corrupted, 1u);
  EXPECT_EQ(r.computed, 30u);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.drops.total(), 20u);
}

TEST(DatapathDeterminism, GoldenDeliveryTraceMatchesSeedEngine) {
  const scenario_result r = run_flap_ber_scenario();
  if (std::getenv("ONFIBER_REGOLD") != nullptr) {
    // Dump the observed trace in source form for pasting above.
    for (const auto& e : r.trace) {
      std::printf("    {%u, %u, %a},\n", e.task_id, e.at, e.time_s);
    }
    std::printf(
        "  delivered=%llu corrupted=%llu computed=%llu malformed=%llu\n"
        "  drops: total=%llu link_down=%llu no_route=%llu hook_drop=%llu "
        "ttl_expired=%llu bad_redirect=%llu\n",
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.corrupted),
        static_cast<unsigned long long>(r.computed),
        static_cast<unsigned long long>(r.malformed),
        static_cast<unsigned long long>(r.drops.total()),
        static_cast<unsigned long long>(r.drops.link_down),
        static_cast<unsigned long long>(r.drops.no_route),
        static_cast<unsigned long long>(r.drops.hook_drop),
        static_cast<unsigned long long>(r.drops.ttl_expired),
        static_cast<unsigned long long>(r.drops.bad_redirect));
  }
  expect_matches_golden(r);
}

TEST(DatapathDeterminism, BitIdenticalAcrossReruns) {
  const scenario_result a = run_flap_ber_scenario();
  const scenario_result b = run_flap_ber_scenario();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_TRUE(a.trace == b.trace);
  expect_matches_golden(b);
}

/// Scoped ONFIBER_THREADS override. The kernel layer caches the env var
/// (std::once_flag), so every change must go through
/// refresh_kernel_thread_count_cache() to be observed.
struct thread_env_guard {
  const char* prev = std::getenv("ONFIBER_THREADS");
  std::string saved = prev != nullptr ? prev : "";

  void set(const char* threads) {
    ::setenv("ONFIBER_THREADS", threads, 1);
    phot::refresh_kernel_thread_count_cache();
  }
  ~thread_env_guard() {
    if (prev != nullptr) {
      ::setenv("ONFIBER_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("ONFIBER_THREADS");
    }
    phot::refresh_kernel_thread_count_cache();
  }
};

TEST(DatapathDeterminism, InvariantAcrossThreadCounts) {
  thread_env_guard env;
  env.set("1");
  const scenario_result one = run_flap_ber_scenario();
  env.set("3");
  const scenario_result three = run_flap_ber_scenario();

  EXPECT_TRUE(one.trace == three.trace);
  expect_matches_golden(one);
  expect_matches_golden(three);
}

// ---------------------------------------------------------------------
// Worker-pool determinism: the persistent pool and the two-pass device
// kernels may not change a single output bit at any thread count.

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

phot::matrix test_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  phot::matrix w(rows, cols);
  phot::rng gen(seed);
  for (double& v : w.data) v = 2.0 * gen.uniform() - 1.0;
  return w;
}

TEST(PoolDeterminism, GemvBitIdenticalAcrossThreadCounts) {
  const phot::matrix w = test_matrix(16, 64, 31);
  std::vector<double> x(64);
  phot::rng gen(77);
  for (double& v : x) v = 2.0 * gen.uniform() - 1.0;

  thread_env_guard env;
  std::vector<phot::gemv_result> results;
  for (const char* threads : {"1", "2", "8"}) {
    env.set(threads);
    phot::vector_matrix_engine engine({}, 42);
    // Two calls per engine: the second runs on a warm pool and continues
    // the engine's row-seed stream.
    phot::gemv_result r = engine.gemv_signed(w, x);
    const phot::gemv_result r2 = engine.gemv_signed(w, x);
    r.values.insert(r.values.end(), r2.values.begin(), r2.values.end());
    r.latency_s += r2.latency_s;
    r.symbols += r2.symbols;
    results.push_back(std::move(r));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(bits_equal(results[0].values, results[i].values));
    EXPECT_EQ(results[0].latency_s, results[i].latency_s);
    EXPECT_EQ(results[0].symbols, results[i].symbols);
  }
}

TEST(PoolDeterminism, GemmBitIdenticalAcrossThreadCounts) {
  const phot::matrix w = test_matrix(8, 48, 13);
  std::vector<double> xs(5 * 48);
  phot::rng gen(99);
  for (double& v : xs) v = 2.0 * gen.uniform() - 1.0;

  thread_env_guard env;
  std::vector<phot::gemm_result> results;
  for (const char* threads : {"1", "2", "8"}) {
    env.set(threads);
    phot::vector_matrix_engine engine({}, 42);
    results.push_back(engine.gemm_signed(w, xs));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(bits_equal(results[0].values, results[i].values));
    EXPECT_EQ(results[0].latency_s, results[i].latency_s);
    EXPECT_EQ(results[0].symbols, results[i].symbols);
  }
}

TEST(PoolDeterminism, GemmBatchOneBitIdenticalToGemv) {
  const phot::matrix w = test_matrix(12, 32, 5);
  std::vector<double> x(32);
  phot::rng gen(17);
  for (double& v : x) v = 2.0 * gen.uniform() - 1.0;

  phot::vector_matrix_engine ev({}, 42);
  phot::vector_matrix_engine em({}, 42);
  for (int rep = 0; rep < 3; ++rep) {
    const phot::gemv_result gv = ev.gemv_signed(w, x);
    const phot::gemm_result gm = em.gemm_signed(w, x);
    ASSERT_EQ(gm.batch, 1u);
    EXPECT_TRUE(bits_equal(gv.values, gm.values)) << "rep " << rep;
    EXPECT_EQ(gv.latency_s, gm.latency_s);
    EXPECT_EQ(gv.symbols, gm.symbols);
  }
}

TEST(PoolDeterminism, WarmPoolSpawnsNoThreadsPerCall) {
  // Acceptance check for the persistent pool: after warm-up, repeated
  // GEMV dispatches must not construct a single new thread.
  thread_env_guard env;
  env.set("8");
  const phot::matrix w = test_matrix(16, 32, 3);
  std::vector<double> x(32, 0.5);
  phot::vector_matrix_engine engine({}, 7);
  (void)engine.gemv_signed(w, x);  // warm-up: pool workers start here

  auto& pool = phot::thread_pool::instance();
  EXPECT_GE(pool.workers_alive(), 1u);
  const std::uint64_t startups_before = pool.startups();
  for (int rep = 0; rep < 8; ++rep) {
    (void)engine.gemv_signed(w, x);
  }
  EXPECT_EQ(pool.startups(), startups_before);
}

// ---------------------------------------------------------------------
// Two-pass device kernels: the batched (noise pass + math pass) paths
// must reproduce the scalar per-element paths bit for bit.

TEST(TwoPassKernels, DacBatchMatchesScalarExactly) {
  // Rail-shaped input: zeros interleaved with values, plus both
  // out-of-range edges the clamp must hit.
  std::vector<double> in;
  phot::rng gen(1234);
  for (int i = 0; i < 257; ++i) {
    in.push_back(i % 2 == 0 ? 0.0 : gen.uniform());
  }
  in.push_back(-0.25);  // below range
  in.push_back(1.75);   // above range
  in.push_back(1.0);
  in.push_back(0.0);

  phot::converter_config cfg;
  phot::dac batch_dac(cfg, phot::rng{55});
  phot::dac scalar_dac(cfg, phot::rng{55});
  std::vector<double> batch_out(in.size());
  batch_dac.convert(in, batch_out);
  std::vector<double> scalar_out;
  for (const double v : in) scalar_out.push_back(scalar_dac.convert(v));
  EXPECT_TRUE(bits_equal(batch_out, scalar_out));

  // Second batch on the same devices: streams must stay aligned.
  batch_dac.convert(in, batch_out);
  scalar_out.clear();
  for (const double v : in) scalar_out.push_back(scalar_dac.convert(v));
  EXPECT_TRUE(bits_equal(batch_out, scalar_out));
}

TEST(TwoPassKernels, AdcBatchMatchesScalarExactly) {
  std::vector<double> in;
  phot::rng gen(4321);
  for (int i = 0; i < 130; ++i) in.push_back(gen.uniform() * 1.2 - 0.1);

  phot::converter_config cfg;
  phot::adc batch_adc(cfg, phot::rng{66});
  phot::adc scalar_adc(cfg, phot::rng{66});
  std::vector<double> batch_out(in.size());
  batch_adc.convert(in, batch_out);
  std::vector<double> scalar_out;
  for (const double v : in) scalar_out.push_back(scalar_adc.convert(v));
  EXPECT_TRUE(bits_equal(batch_out, scalar_out));
}

TEST(TwoPassKernels, NoiselessConverterBatchMatchesScalar) {
  phot::converter_config cfg;
  cfg.enob_penalty = 0.0;  // sigma == 0: quantize-only fast path
  std::vector<double> in = {0.0, 0.1, 0.5, 0.999, 1.0, -0.5, 1.5};
  phot::dac batch_dac(cfg, phot::rng{9});
  phot::dac scalar_dac(cfg, phot::rng{9});
  std::vector<double> batch_out(in.size());
  batch_dac.convert(in, batch_out);
  std::vector<double> scalar_out;
  for (const double v : in) scalar_out.push_back(scalar_dac.convert(v));
  EXPECT_TRUE(bits_equal(batch_out, scalar_out));
}

TEST(TwoPassKernels, DetectorBatchMatchesScalarExactly) {
  phot::laser_config lcfg;
  phot::laser source(lcfg, phot::rng{2});
  phot::waveform wave;
  source.emit(96, wave);

  phot::photodetector_config dcfg;
  phot::photodetector batch_det(dcfg, phot::rng{77});
  phot::photodetector scalar_det(dcfg, phot::rng{77});
  const std::vector<double> batch_out = batch_det.detect(wave);
  std::vector<double> scalar_out;
  for (const phot::field& f : wave) scalar_out.push_back(scalar_det.detect(f));
  EXPECT_TRUE(bits_equal(batch_out, scalar_out));
}

// ---------------------------------------------------------------------
// Batched engine datapath: a single-packet process_batch() is the same
// computation as process(), payload bit for bit.

TEST(BatchedEngine, SinglePacketBatchMatchesProcessP1) {
  core::gemv_task task;
  task.weights = test_matrix(6, 24, 21);
  task.bias.assign(6, 0.05);
  std::vector<double> x(24);
  phot::rng gen(3);
  for (double& v : x) v = 2.0 * gen.uniform() - 1.0;

  for (const auto mode :
       {core::compute_mode::on_fiber, core::compute_mode::oeo_per_hop}) {
    core::engine_config cfg;
    cfg.mode = mode;
    core::photonic_engine single(cfg, 42);
    core::photonic_engine batched(cfg, 42);
    single.configure_gemv(task);
    batched.configure_gemv(task);

    const net::ipv4 src(10, 0, 0, 2), dst(10, 0, 1, 2);
    net::packet a = core::make_gemv_request(src, dst, x, 6, 1);
    net::packet b = a;
    ASSERT_TRUE(batched.can_process(b));
    const core::engine_report ra = single.process(a);
    net::packet* pb[] = {&b};
    const core::batch_report rb = batched.process_batch(pb);
    ASSERT_TRUE(ra.computed);
    ASSERT_EQ(rb.computed_packets, 1u);
    EXPECT_TRUE(rb.computed[0]);
    EXPECT_EQ(ra.compute_latency_s, rb.compute_latency_s);
    EXPECT_EQ(ra.input_conversions, rb.input_conversions);
    EXPECT_EQ(ra.optical_symbols, rb.optical_symbols);
    EXPECT_EQ(a.payload, b.payload);
  }
}

TEST(BatchedEngine, SinglePacketBatchMatchesProcessDnn) {
  core::dnn_task task;
  core::photonic_layer l0;
  l0.weights = test_matrix(6, 8, 11);
  l0.bias.assign(6, 0.1);
  l0.activation = true;
  core::photonic_layer l1;
  l1.weights = test_matrix(4, 6, 12);
  l1.activation = false;
  task.layers = {std::move(l0), std::move(l1)};

  std::vector<double> sample(8);
  phot::rng gen(8);
  for (double& v : sample) v = gen.uniform();

  core::photonic_engine single({}, 42);
  core::photonic_engine batched({}, 42);
  single.configure_dnn(task);
  batched.configure_dnn(task);

  const net::ipv4 src(10, 0, 0, 2), dst(10, 0, 1, 2);
  net::packet a = core::make_dnn_request(src, dst, sample, 4, 1);
  net::packet b = a;
  ASSERT_TRUE(batched.can_process(b));
  const core::engine_report ra = single.process(a);
  net::packet* pb[] = {&b};
  const core::batch_report rb = batched.process_batch(pb);
  ASSERT_TRUE(ra.computed);
  ASSERT_EQ(rb.computed_packets, 1u);
  EXPECT_EQ(ra.compute_latency_s, rb.compute_latency_s);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(BatchedEngine, MultiPacketBatchIsDeterministic) {
  core::gemv_task task;
  task.weights = test_matrix(5, 16, 2);
  std::vector<net::packet> reference;
  for (int run = 0; run < 2; ++run) {
    core::photonic_engine engine({}, 42);
    engine.configure_gemv(task);
    std::vector<net::packet> pkts;
    phot::rng gen(6);
    for (std::uint32_t t = 0; t < 4; ++t) {
      std::vector<double> x(16);
      for (double& v : x) v = 2.0 * gen.uniform() - 1.0;
      pkts.push_back(core::make_gemv_request(net::ipv4(10, 0, 0, 2),
                                             net::ipv4(10, 0, 1, 2), x, 5,
                                             t));
    }
    std::vector<net::packet*> ptrs;
    for (net::packet& p : pkts) ptrs.push_back(&p);
    const core::batch_report r = engine.process_batch(ptrs);
    EXPECT_EQ(r.computed_packets, 4u);
    if (run == 0) {
      reference = std::move(pkts);
    } else {
      for (std::size_t i = 0; i < pkts.size(); ++i) {
        EXPECT_EQ(pkts[i].payload, reference[i].payload) << "packet " << i;
      }
    }
  }
}

TEST(DatapathDropStats, FlapScenarioBreakdown) {
  const scenario_result r = run_flap_ber_scenario();
  // The seed engine counted 20 lumped drops; the per-reason split says
  // why: 18 black-holed into flapped links, 1 caught the window where
  // the reconverged table had retracted the route, 1 corrupted header
  // dropped by the runtime hook.
  EXPECT_EQ(r.drops.link_down, 18u);
  EXPECT_EQ(r.drops.no_route, 1u);
  EXPECT_EQ(r.drops.hook_drop, 1u);
  EXPECT_EQ(r.drops.ttl_expired, 0u);
  EXPECT_EQ(r.drops.bad_redirect, 0u);
  EXPECT_EQ(r.drops.total(), 20u);
}

}  // namespace
}  // namespace onfiber
