// Open-loop traffic plane + runtime admission control (ISSUE 10).
//
// Three contracts under test:
//   * the traffic_generator is a stream: next() is the primitive,
//     generate()/generate_count() are prefixes of the SAME Poisson
//     process (gap-first — historically generate_count started at t=0);
//   * the workload plane's arrival streams and the resulting delivery
//     traces are bit-identical across shard counts {1,2,4}, reruns, and
//     ONFIBER_THREADS, with exact-double timestamps;
//   * admission control bounds every site's compute queue: under
//     deliberate overload the depth watermark stays <= the configured
//     bound (defer forwards raw, drop discards and counts), where the
//     unbounded escape hatch demonstrably grows past it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/shard_engine.hpp"
#include "network/topology.hpp"
#include "network/traffic.hpp"
#include "network/workload.hpp"
#include "photonics/engine/pattern_matcher.hpp"
#include "photonics/kernels.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

// ------------------------------------------------------------------ stream

net::traffic_config stream_config() {
  net::traffic_config tc;
  tc.packet_rate_pps = 5e4;
  tc.min_payload_bytes = 32;
  tc.max_payload_bytes = 256;
  tc.flow_count = 8;
  return tc;
}

void expect_same_arrival(const net::arrival& a, const net::arrival& b,
                         std::size_t i) {
  EXPECT_EQ(a.time_s, b.time_s) << "arrival " << i;  // exact double
  EXPECT_EQ(a.pkt.id, b.pkt.id) << "arrival " << i;
  EXPECT_EQ(a.pkt.flow_hash, b.pkt.flow_hash) << "arrival " << i;
  EXPECT_EQ(a.pkt.payload, b.pkt.payload) << "arrival " << i;
}

TEST(TrafficStream, NextMatchesGenerateByteForByte) {
  const net::ipv4 src{0x0a000001}, dst{0x0a000002};
  net::traffic_generator batch(stream_config(), src, dst, 42);
  net::traffic_generator stream(stream_config(), src, dst, 42);
  const auto arrivals = batch.generate(0.01);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    expect_same_arrival(arrivals[i], stream.next(), i);
  }
}

TEST(TrafficStream, GenerateCountIsSameProcessAsGenerate) {
  // The satellite-3 unification pin: generate_count(n) must be the first
  // n arrivals of the one Poisson process — gap-first, so no arrival at
  // exactly t = 0 (historically generate_count placed one there).
  const net::ipv4 src{0x0a000001}, dst{0x0a000002};
  net::traffic_generator a(stream_config(), src, dst, 7);
  net::traffic_generator b(stream_config(), src, dst, 7);
  const auto horizon = a.generate(0.01);
  ASSERT_GE(horizon.size(), 16u);
  const auto counted = b.generate_count(16);
  ASSERT_EQ(counted.size(), 16u);
  EXPECT_GT(counted.front().time_s, 0.0);
  for (std::size_t i = 0; i < counted.size(); ++i) {
    expect_same_arrival(horizon[i], counted[i], i);
  }
}

TEST(TrafficStream, StreamIsResumable) {
  // generate() must leave the clock where the stream stopped, so a
  // follow-up next() continues the same process past the horizon.
  const net::ipv4 src{0x0a000001}, dst{0x0a000002};
  net::traffic_generator g(stream_config(), src, dst, 3);
  const auto first = g.generate(0.005);
  const net::arrival resumed = g.next();
  EXPECT_GE(resumed.time_s, 0.005);
  EXPECT_GT(resumed.time_s, first.back().time_s);
  EXPECT_EQ(g.clock_s(), resumed.time_s);
}

// ---------------------------------------------------------------- workload

TEST(TrafficWorkload, BoundedParetoStaysInBounds) {
  const net::bounded_pareto bp{1.3, 2e3, 30e3};
  phot::counter_rng g(phot::counter_rng::key_of(1, 2));
  double lo = 1e300, hi = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = bp.quantile(g.uniform());
    ASSERT_GE(x, bp.lo_bytes);
    ASSERT_LE(x, bp.hi_bytes);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  // Heavy tail: the sample should span most of the range.
  EXPECT_LT(lo, 2.5e3);
  EXPECT_GT(hi, 15e3);
  // Median of the truncated Pareto sits near the analytic inverse CDF.
  EXPECT_NEAR(bp.quantile(0.5), 2e3 / std::pow(1.0 - 0.5 * (1.0 - std::pow(
                                    2e3 / 30e3, 1.3)), 1.0 / 1.3),
              1e-9);
}

TEST(TrafficWorkload, RateFactorIsPureFunctionOfTime) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(4));
  net::workload_config cfg;
  cfg.diurnal = {0.5, 0.4, 0.1};
  cfg.bursts = {20.0, 2e-3, 6.0};
  cfg.seed = 11;
  net::workload_plane a(fabric, cfg);
  net::workload_plane b(fabric, cfg);
  double burst_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double t = 1e-4 * static_cast<double>(i);
    const double fa = a.rate_factor(t);
    EXPECT_EQ(fa, b.rate_factor(t));  // exact: pure function of t
    EXPECT_GT(fa, 0.0);
    if (fa > 2.0) burst_seen = std::max(burst_seen, fa);
  }
  // Bursts fire: the diurnal factor alone is <= 1.4, so any sample
  // above 2.0 must sit inside a 6x microburst episode.
  EXPECT_GT(burst_seen, 0.0);
}

TEST(TrafficWorkload, RejectsBadConfig) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(4));
  net::workload_config bad;
  bad.tenants.clear();
  EXPECT_THROW(net::workload_plane(fabric, bad), std::invalid_argument);
  bad = net::workload_config{};
  bad.tenants[0].flow_rate_fps = 0.0;
  EXPECT_THROW(net::workload_plane(fabric, bad), std::invalid_argument);
  bad = net::workload_config{};
  bad.tenants[0].mice = {1.3, 5e3, 2e3};  // hi < lo
  EXPECT_THROW(net::workload_plane(fabric, bad), std::invalid_argument);
  bad = net::workload_config{};
  bad.bursts = {100.0, 0.5, 4.0};  // episode longer than its cell
  EXPECT_THROW(net::workload_plane(fabric, bad), std::invalid_argument);
  net::workload_config good;
  net::workload_plane plane(fabric, good);
  net::workload_plane::injector_config inj;
  inj.tenant = 3;  // out of range
  EXPECT_THROW(plane.add_injector(inj), std::invalid_argument);
}

// ----------------------------------------------- plane golden trace sweep

struct delivery_entry {
  std::uint64_t id;
  net::node_id at;
  double time_s;

  bool operator==(const delivery_entry&) const = default;
};

struct plane_result {
  std::vector<delivery_entry> trace;  ///< merged (time, id) order
  net::workload_plane::plane_stats emitted;
  std::uint64_t delivered = 0;
  std::uint64_t computed = 0;
  core::onfiber_runtime::admission_stats admission;
  double p99_s = 0.0;
};

/// 16-node chain, match engines at 5 and 10 (flow_spread steering), two
/// tenants: compute match requests from both chain ends plus plain
/// heavy-tailed background mid-chain. Diurnal + microburst modulation
/// on. The site queue bound is deliberately small so the sweep also
/// exercises deferral identically at every shard count.
constexpr std::size_t kMatchWordBytes = 16;

std::vector<std::uint8_t> plane_signature() {
  std::vector<std::uint8_t> sig(kMatchWordBytes);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = static_cast<std::uint8_t>(0xd0 + i);
  }
  return sig;
}

template <class Fabric>
plane_result run_plane(core::onfiber_runtime& rt, Fabric& engine_or_sim,
                       std::size_t cap) {
  core::match_task classifier;
  classifier.patterns.push_back(
      phot::to_ternary(phot::bytes_to_bits(plane_signature())));
  // A deliberately slow matcher (20k symbols/s vs the 10G default):
  // ~6.4 ms per 128-bit evaluation, so the open-loop arrivals genuinely
  // overload the sites and admission control must shed load.
  core::engine_config slow;
  slow.match.symbol_rate_hz = 2e5;
  rt.deploy_engine(5, slow, 21).configure_match(classifier);
  rt.deploy_engine(10, slow, 22).configure_match(classifier);
  rt.install_compute_routes_via_nearest_site();
  rt.set_steering_policy(
      core::onfiber_runtime::steering_policy::flow_spread);
  rt.set_admission({cap,
                    core::onfiber_runtime::admission_config::
                        overflow_policy::defer});

  net::wan_fabric& fabric = rt.fabric();
  net::workload_config cfg;
  cfg.seed = 77;
  net::flow_class compute_class;
  compute_class.flow_rate_fps = 700.0;
  compute_class.mice_fraction = 1.0;
  compute_class.mice = {1.3, 64.0, 512.0};
  compute_class.mtu_bytes = 64;
  compute_class.min_packet_gap_s = 20e-6;
  compute_class.max_packet_gap_s = 200e-6;
  net::flow_class background;
  background.flow_rate_fps = 300.0;
  background.mice = {1.3, 256.0, 4096.0};
  background.elephants = {1.3, 8e3, 64e3};
  background.mtu_bytes = 512;
  cfg.tenants = {compute_class, background};
  cfg.diurnal = {0.05, 0.5, 0.0};
  cfg.bursts = {50.0, 4e-3, 4.0};
  net::workload_plane plane(fabric, cfg);

  const auto match_factory = [](const net::flow_packet_view& v) {
    // Deterministic P2 word: every 3rd flow carries the signature (the
    // matcher evaluates same-length words only).
    std::vector<std::uint8_t> data(kMatchWordBytes);
    if (v.flow_seq % 3 == 0) {
      data = plane_signature();
    } else {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(
            (v.flow_seq * 31 + v.packet_index * 7 + i) & 0xff);
      }
    }
    net::packet pkt = core::make_match_request(
        v.src, v.dst, data, static_cast<std::uint32_t>(v.packet_id));
    pkt.flow_hash = v.flow_hash;
    pkt.id = v.packet_id;
    return pkt;
  };

  const auto node_addr = [&fabric](net::node_id n) {
    return fabric.topo().node_at(n).address;
  };
  plane.add_injector({0, node_addr(15), 0, match_factory});
  plane.add_injector({15, node_addr(0), 0, match_factory});
  plane.add_injector({3, node_addr(12), 1, {}});
  plane.start(0.08);

  // Per-shard delivery capture through the runtime's observer (the
  // delivering shard's thread is the only writer of its bucket), with
  // the per-delivery log off — the open-loop contract.
  std::vector<std::vector<delivery_entry>> per_shard(fabric.shard_count());
  net::completion_recorder rec(fabric);
  rt.set_delivery_observer(
      [&per_shard, &fabric, &rec](const net::packet& pkt, net::node_id at,
                                  double now) {
        per_shard[fabric.shard_of(at)].push_back(
            delivery_entry{pkt.id, at, now});
        rec.record(pkt, at, now);
      });
  rt.set_record_deliveries(false);

  engine_or_sim.run(20'000'000);
  EXPECT_FALSE(engine_or_sim.overran());

  plane_result r;
  for (auto& bucket : per_shard) {
    r.trace.insert(r.trace.end(), bucket.begin(), bucket.end());
  }
  std::stable_sort(r.trace.begin(), r.trace.end(),
                   [](const delivery_entry& a, const delivery_entry& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.id < b.id;
                   });
  r.emitted = plane.stats();
  r.delivered = fabric.delivered();
  r.computed = rt.stats().computed;
  r.admission = rt.admission();
  r.p99_s = rec.latency_percentile(99.0);
  return r;
}

plane_result run_plane_classic(std::size_t cap = 24) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_linear_topology(16));
  return run_plane(rt, sim, cap);
}

plane_result run_plane_sharded(std::size_t shards, std::size_t cap = 24) {
  net::shard_engine engine(shards);
  core::onfiber_runtime rt(engine, net::make_linear_topology(16));
  return run_plane(rt, engine, cap);
}

void expect_same_plane(const plane_result& a, const plane_result& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].id, b.trace[i].id) << "entry " << i;
    EXPECT_EQ(a.trace[i].at, b.trace[i].at) << "entry " << i;
    // Exact: sharding may not perturb a single ULP.
    EXPECT_EQ(a.trace[i].time_s, b.trace[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(a.emitted.flows, b.emitted.flows);
  EXPECT_EQ(a.emitted.packets, b.emitted.packets);
  EXPECT_EQ(a.emitted.payload_bytes, b.emitted.payload_bytes);
  EXPECT_EQ(a.emitted.thinning_rejects, b.emitted.thinning_rejects);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.computed, b.computed);
  EXPECT_EQ(a.admission.admitted, b.admission.admitted);
  EXPECT_EQ(a.admission.deferred, b.admission.deferred);
  EXPECT_EQ(a.admission.dropped, b.admission.dropped);
  EXPECT_EQ(a.admission.max_queue_depth, b.admission.max_queue_depth);
  EXPECT_EQ(a.p99_s, b.p99_s);  // exact: same latency multiset
}

/// Shard counts to sweep: {1, 2, 4} plus an optional extra from
/// ONFIBER_SHARDS (the CI sharded gates set it).
std::vector<std::size_t> shard_count_sweep() {
  std::vector<std::size_t> counts = {1, 2, 4};
  if (const char* env = std::getenv("ONFIBER_SHARDS")) {
    const auto extra = static_cast<std::size_t>(std::atoi(env));
    if (extra > 1 &&
        std::find(counts.begin(), counts.end(), extra) == counts.end()) {
      counts.push_back(extra);
    }
  }
  return counts;
}

TEST(TrafficPlaneDeterminism, WorkloadIsNonTrivial) {
  const plane_result r = run_plane_classic();
  // The scenario must actually exercise the plane: heavy-tailed flows,
  // compute at both sites, deferral under the small bound.
  EXPECT_GT(r.emitted.flows, 50u);
  EXPECT_GT(r.emitted.packets, 300u);
  EXPECT_GT(r.emitted.thinning_rejects, 0u);  // time-varying rate active
  EXPECT_GT(r.computed, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.admission.admitted, 0u);
  EXPECT_GT(r.p99_s, 0.0);
}

TEST(TrafficPlaneDeterminism, GoldenTraceAcrossShardCounts) {
  const plane_result classic = run_plane_classic();
  for (const std::size_t shards : shard_count_sweep()) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_same_plane(classic, run_plane_sharded(shards));
  }
}

TEST(TrafficPlaneDeterminism, RerunsAreBitIdentical) {
  const plane_result a = run_plane_sharded(2);
  const plane_result b = run_plane_sharded(2);
  EXPECT_TRUE(a.trace == b.trace);
  expect_same_plane(a, b);
}

/// Scoped ONFIBER_THREADS override (see test_determinism.cpp): the
/// kernel layer caches the env var, so changes must go through
/// refresh_kernel_thread_count_cache().
struct thread_env_guard {
  const char* prev = std::getenv("ONFIBER_THREADS");
  std::string saved = prev != nullptr ? prev : "";

  void set(const char* threads) {
    ::setenv("ONFIBER_THREADS", threads, 1);
    phot::refresh_kernel_thread_count_cache();
  }
  ~thread_env_guard() {
    if (prev != nullptr) {
      ::setenv("ONFIBER_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("ONFIBER_THREADS");
    }
    phot::refresh_kernel_thread_count_cache();
  }
};

TEST(TrafficPlaneDeterminism, InvariantAcrossThreadCounts) {
  thread_env_guard env;
  env.set("1");
  const plane_result one = run_plane_sharded(2);
  env.set("4");
  const plane_result four = run_plane_sharded(2);
  expect_same_plane(one, four);
}

// --------------------------------------------------------------- admission

/// Linear chain with one GEMV site at node 4; `n` identical requests
/// submitted back to back at t=0 pile onto the site's serial engine.
struct overload_rig {
  net::simulator sim;
  core::onfiber_runtime rt;
  net::ipv4 src, dst;

  explicit overload_rig(core::onfiber_runtime::admission_config cfg,
                        double batch_window_s = 0.0)
      : rt(sim, net::make_linear_topology(8)) {
    core::gemv_task task;
    task.weights = phot::matrix(4, 16);
    for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
      task.weights.data[i] = 0.03 + 0.01 * static_cast<double>(i % 5);
    }
    rt.deploy_engine(4, {}, 31).configure_gemv(task);
    rt.install_compute_routes_via_nearest_site();
    rt.set_admission(cfg);
    if (batch_window_s > 0.0) rt.enable_site_batching(batch_window_s);
    src = rt.fabric().topo().node_at(0).address;
    dst = rt.fabric().topo().node_at(7).address;
  }

  void submit(int n) {
    const std::vector<double> x(16, 0.25);
    for (int i = 0; i < n; ++i) {
      rt.submit(core::make_gemv_request(src, dst, x, 4,
                                        static_cast<std::uint32_t>(i)),
                0);
    }
    sim.run();
  }
};

TEST(AdmissionControl, UnboundedEscapeHatchGrowsQueue) {
  // max_site_queue = 0 restores the historical unbounded behavior: all
  // 50 batched packets park at the site. This is the pre-fix overload
  // shape the bounded default exists to prevent.
  overload_rig rig({0,
                    core::onfiber_runtime::admission_config::
                        overflow_policy::defer},
                   /*batch_window_s=*/5e-3);
  rig.submit(50);
  EXPECT_EQ(rig.rt.admission().admitted, 50u);
  EXPECT_EQ(rig.rt.admission().deferred, 0u);
  EXPECT_GE(rig.rt.admission().max_queue_depth, 50u);
}

TEST(AdmissionControl, BatchQueueStaysBounded) {
  // The satellite-1 regression pin: with the bound on, the same 50
  // packets never park more than 8 at the site; overflow defers and the
  // deferred packets still deliver (raw) — goodput degrades, memory
  // does not grow.
  overload_rig rig({8,
                    core::onfiber_runtime::admission_config::
                        overflow_policy::defer},
                   /*batch_window_s=*/5e-3);
  rig.submit(50);
  const auto& ad = rig.rt.admission();
  EXPECT_LE(ad.max_queue_depth, 8u);
  EXPECT_GT(ad.deferred, 0u);
  EXPECT_EQ(ad.admitted + ad.deferred, 50u);
  EXPECT_EQ(rig.rt.deliveries().size(), 50u);
  EXPECT_EQ(rig.rt.stats().computed, ad.admitted);
  EXPECT_EQ(rig.rt.stats().uncomputed_delivered, ad.deferred);
}

TEST(AdmissionControl, SerialBacklogStaysBounded) {
  // Without batching the serial engine's in-service backlog (admitted
  // packets waiting on busy_until_s) is the queue; the bound caps it
  // the same way.
  overload_rig rig({4,
                    core::onfiber_runtime::admission_config::
                        overflow_policy::defer});
  rig.submit(30);
  const auto& ad = rig.rt.admission();
  EXPECT_LE(ad.max_queue_depth, 4u);
  EXPECT_GT(ad.deferred, 0u);
  EXPECT_EQ(ad.admitted + ad.deferred, 30u);
  EXPECT_EQ(rig.rt.deliveries().size(), 30u);
  EXPECT_EQ(rig.rt.stats().computed, ad.admitted);
}

TEST(AdmissionControl, DropPolicyDiscardsAndCounts) {
  overload_rig rig({4,
                    core::onfiber_runtime::admission_config::
                        overflow_policy::drop});
  rig.submit(30);
  const auto& ad = rig.rt.admission();
  EXPECT_LE(ad.max_queue_depth, 4u);
  EXPECT_GT(ad.dropped, 0u);
  EXPECT_EQ(ad.deferred, 0u);
  EXPECT_EQ(ad.admitted + ad.dropped, 30u);
  EXPECT_EQ(rig.rt.deliveries().size(), ad.admitted);
  EXPECT_EQ(rig.rt.fabric().drops().hook_drop, ad.dropped);
}

TEST(AdmissionControl, TracesBelowTheBoundAreUntouched) {
  // The admission check must be inert while the queue never overflows:
  // same deliveries, nothing deferred or dropped.
  overload_rig bounded({64,
                        core::onfiber_runtime::admission_config::
                            overflow_policy::defer});
  overload_rig unbounded({0,
                          core::onfiber_runtime::admission_config::
                              overflow_policy::defer});
  bounded.submit(20);
  unbounded.submit(20);
  EXPECT_EQ(bounded.rt.admission().deferred, 0u);
  EXPECT_EQ(bounded.rt.stats().computed, unbounded.rt.stats().computed);
  ASSERT_EQ(bounded.rt.deliveries().size(),
            unbounded.rt.deliveries().size());
  for (std::size_t i = 0; i < bounded.rt.deliveries().size(); ++i) {
    EXPECT_EQ(bounded.rt.deliveries()[i].time_s,
              unbounded.rt.deliveries()[i].time_s);  // exact double
  }
}

TEST(AdmissionControl, WorkloadOverloadDepthStaysBounded) {
  // The acceptance-criteria overload pin, through the full open-loop
  // plane at every swept shard count: queue depth watermark <= bound,
  // nonzero deferral (the overload is real), nonzero compute (goodput
  // degrades gracefully rather than collapsing).
  for (const std::size_t shards : shard_count_sweep()) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const plane_result r = shards == 1 ? run_plane_classic(16)
                                       : run_plane_sharded(shards, 16);
    EXPECT_LE(r.admission.max_queue_depth, 16u);
    EXPECT_GT(r.admission.deferred, 0u);
    EXPECT_GT(r.computed, 0u);
    EXPECT_GT(r.delivered, 0u);
  }
}

}  // namespace
}  // namespace onfiber
