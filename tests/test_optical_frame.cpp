// Tests for the waveform-level Fig. 4 receive pipeline.
#include "core/optical_frame.hpp"

#include <gtest/gtest.h>

#include "core/compute_packets.hpp"
#include "photonics/fiber.hpp"

namespace onfiber::core {
namespace {

struct pipeline_fixture {
  commodity_transponder tx{{}, 1};
  commodity_transponder rx{{}, 2};
  photonic_engine engine;

  pipeline_fixture() : engine({}, 3) {
    gemv_task task;
    task.weights = phot::matrix(2, 8);
    for (double& w : task.weights.data) w = 0.5;
    engine.configure_gemv(task);
  }
};

TEST(OpticalFrame, ComputePacketGetsPreamble) {
  pipeline_fixture f;
  const std::vector<double> x(8, 0.5);
  const net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 2),
                                            net::ipv4(10, 3, 0, 2), x, 2);
  const optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  EXPECT_EQ(frame.preamble.size(), 17u);  // pilot + 16 bits
  EXPECT_FALSE(frame.body.empty());
}

TEST(OpticalFrame, PlainPacketHasNoPreamble) {
  pipeline_fixture f;
  net::packet pkt;
  pkt.payload.assign(64, 0x55);
  const optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  EXPECT_TRUE(frame.preamble.empty());
}

TEST(OpticalFrame, FullPipelineComputes) {
  pipeline_fixture f;
  const std::vector<double> x(8, 0.5);
  net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 2),
                                      net::ipv4(10, 3, 0, 2), x, 2);
  const optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  const auto report = receive_frame(frame, f.rx, f.engine, pkt.payload);
  EXPECT_TRUE(report.preamble_detected);
  EXPECT_TRUE(report.computed);
  EXPECT_EQ(report.symbol_errors, 0u);
  ASSERT_TRUE(report.packet.has_value());
  const auto result = read_gemv_result(*report.packet);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR((*result)[0], 0.5 * 8 * 0.5, 0.3);
}

TEST(OpticalFrame, PlainFrameSkipsEngine) {
  pipeline_fixture f;
  net::packet pkt;
  pkt.payload.assign(32, 0xA5);
  const optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  const auto report = receive_frame(frame, f.rx, f.engine, pkt.payload);
  EXPECT_FALSE(report.preamble_detected);
  EXPECT_FALSE(report.computed);
  ASSERT_TRUE(report.packet.has_value());
  EXPECT_EQ(report.packet->payload, pkt.payload);  // untouched
}

TEST(OpticalFrame, SurvivesAmplifiedSpan) {
  pipeline_fixture f;
  const std::vector<double> x(8, 0.4);
  net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 2),
                                      net::ipv4(10, 3, 0, 2), x, 2);
  optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  phot::fiber_config fc;
  fc.length_km = 80.0;
  fc.amplified = true;
  fc.symbol_rate_hz = f.tx.config().symbol_rate_hz;
  phot::fiber_span span(fc, phot::rng{9});
  frame.preamble = span.propagate(frame.preamble);
  frame.body = span.propagate(frame.body);
  const auto report = receive_frame(frame, f.rx, f.engine, pkt.payload);
  EXPECT_TRUE(report.preamble_detected);
  EXPECT_TRUE(report.computed);
  EXPECT_EQ(report.symbol_errors, 0u);
}

TEST(OpticalFrame, CorruptedPreambleBypassesEngine) {
  pipeline_fixture f;
  const std::vector<double> x(8, 0.5);
  net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 2),
                                      net::ipv4(10, 3, 0, 2), x, 2);
  optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  // Scramble the preamble phases: detection must fail closed (packet
  // still delivered, just not computed on).
  for (std::size_t i = 1; i < frame.preamble.size(); i += 2) {
    frame.preamble[i] = -frame.preamble[i];
  }
  const auto report = receive_frame(frame, f.rx, f.engine, pkt.payload);
  EXPECT_FALSE(report.preamble_detected);
  EXPECT_FALSE(report.computed);
  ASSERT_TRUE(report.packet.has_value());
  EXPECT_EQ(report.packet->payload, pkt.payload);
}

TEST(OpticalFrame, LatencyAccountsAllStages) {
  pipeline_fixture f;
  const std::vector<double> x(8, 0.5);
  net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 2),
                                      net::ipv4(10, 3, 0, 2), x, 2);
  const optical_frame frame = frame_packet(pkt, f.tx, f.engine);
  const auto report = receive_frame(frame, f.rx, f.engine);
  // At least: preamble symbols + body serialization + DSP + compute.
  const double floor = f.rx.config().dsp_latency_s +
                       f.rx.serialize_latency_s(pkt.payload.size());
  EXPECT_GT(report.latency_s, floor);
}

}  // namespace
}  // namespace onfiber::core
