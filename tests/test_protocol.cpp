// Tests for the compute-communication protocol (§3): header wire format,
// robustness against corruption, packet helpers, two-field routing.
#include <gtest/gtest.h>

#include "photonics/rng.hpp"
#include "protocol/codec.hpp"
#include "protocol/compute_header.hpp"
#include "protocol/compute_routing.hpp"

namespace onfiber::proto {
namespace {

compute_header sample_header() {
  compute_header h;
  h.primitive = primitive_id::p1_dot_product;
  h.task_id = 0xdeadbeef;
  h.input_offset = 4;
  h.input_length = 64;
  h.result_offset = 68;
  h.result_length = 16;
  h.flags = flag_require_compute | flag_intensity_encoded;
  h.hops = 2;
  return h;
}

TEST(ComputeHeader, WireSizeFixed) {
  EXPECT_EQ(serialize(sample_header()).size(), compute_header_bytes);
}

TEST(ComputeHeader, RoundTrip) {
  const compute_header h = sample_header();
  const auto wire = serialize(h);
  const parse_result r = parse(wire);
  ASSERT_TRUE(r);
  EXPECT_EQ(r.header.primitive, h.primitive);
  EXPECT_EQ(r.header.task_id, h.task_id);
  EXPECT_EQ(r.header.input_offset, h.input_offset);
  EXPECT_EQ(r.header.input_length, h.input_length);
  EXPECT_EQ(r.header.result_offset, h.result_offset);
  EXPECT_EQ(r.header.result_length, h.result_length);
  EXPECT_EQ(r.header.flags, h.flags);
  EXPECT_EQ(r.header.hops, h.hops);
}

TEST(ComputeHeader, RoundTripFuzz) {
  phot::rng g(1);
  for (int i = 0; i < 500; ++i) {
    compute_header h;
    h.primitive = static_cast<primitive_id>(g.below(5));
    h.task_id = static_cast<std::uint32_t>(g());
    h.input_offset = static_cast<std::uint16_t>(g());
    h.input_length = static_cast<std::uint16_t>(g());
    h.result_offset = static_cast<std::uint16_t>(g());
    h.result_length = static_cast<std::uint16_t>(g());
    h.flags = static_cast<std::uint8_t>(g());
    h.hops = static_cast<std::uint8_t>(g());
    const parse_result r = parse(serialize(h));
    ASSERT_TRUE(r) << "iteration " << i;
    EXPECT_EQ(r.header.task_id, h.task_id);
    EXPECT_EQ(r.header.input_length, h.input_length);
  }
}

TEST(ComputeHeader, TooShortRejected) {
  const auto wire = serialize(sample_header());
  for (std::size_t n = 0; n < compute_header_bytes; ++n) {
    const parse_result r =
        parse(std::span<const std::uint8_t>(wire.data(), n));
    EXPECT_EQ(r.error, parse_error::too_short);
  }
}

/// Recompute and refresh the checksum of a (possibly mutated) wire
/// header, so structural errors can be observed past the checksum gate.
std::vector<std::uint8_t> with_fixed_checksum(std::vector<std::uint8_t> wire) {
  wire[compute_header_bytes - 2] = 0;
  wire[compute_header_bytes - 1] = 0;
  const std::uint16_t sum = internet_checksum(wire);
  wire[compute_header_bytes - 2] = static_cast<std::uint8_t>(sum >> 8);
  wire[compute_header_bytes - 1] = static_cast<std::uint8_t>(sum & 0xff);
  return wire;
}

TEST(ComputeHeader, BadMagicRejected) {
  // Structural errors are reported only for intact (checksum-valid)
  // buffers; a sender that genuinely framed a different protocol.
  auto wire = serialize(sample_header());
  wire[0] ^= 0xff;
  EXPECT_EQ(parse(wire).error, parse_error::bad_checksum);
  EXPECT_EQ(parse(with_fixed_checksum(wire)).error, parse_error::bad_magic);
}

TEST(ComputeHeader, BadVersionRejected) {
  auto wire = serialize(sample_header());
  wire[2] = 99;
  EXPECT_EQ(parse(wire).error, parse_error::bad_checksum);
  EXPECT_EQ(parse(with_fixed_checksum(wire)).error, parse_error::bad_version);
}

TEST(ComputeHeader, BadPrimitiveRejected) {
  auto wire = serialize(sample_header());
  wire[3] = 200;
  EXPECT_EQ(parse(wire).error, parse_error::bad_checksum);
  EXPECT_EQ(parse(with_fixed_checksum(wire)).error,
            parse_error::bad_primitive);
  // Chain stages validate the same way.
  auto stage = serialize(sample_header());
  stage[18] = 7;
  EXPECT_EQ(parse(with_fixed_checksum(stage)).error,
            parse_error::bad_primitive);
}

TEST(ComputeHeader, SingleBitCorruptionIsBadChecksum) {
  // The checksum is verified before any framing or semantic field, so a
  // bit-flip anywhere — magic, version, primitive, stages, even the
  // checksum itself — must classify as bad_checksum, never as
  // bad_magic/bad_version/bad_primitive. The robustness benches' error
  // taxonomy (in-flight corruption vs malformed request) depends on it.
  const auto wire = serialize(sample_header());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = wire;
      corrupted[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_EQ(parse(corrupted).error, parse_error::bad_checksum)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ComputeHeader, EveryByteValueCorruptionIsBadChecksum) {
  // Exhaustive per-byte fuzz: every wrong value of every header byte.
  phot::rng g(42);
  for (int iter = 0; iter < 8; ++iter) {
    compute_header h;
    h.primitive = static_cast<primitive_id>(1 + g.below(4));
    h.task_id = static_cast<std::uint32_t>(g());
    h.input_offset = static_cast<std::uint16_t>(g());
    h.input_length = static_cast<std::uint16_t>(g());
    h.result_offset = static_cast<std::uint16_t>(g());
    h.result_length = static_cast<std::uint16_t>(g());
    h.flags = static_cast<std::uint8_t>(g());
    h.hops = static_cast<std::uint8_t>(g());
    const auto wire = serialize(h);
    for (std::size_t byte = 0; byte < wire.size(); ++byte) {
      for (int v = 0; v < 256; ++v) {
        if (static_cast<std::uint8_t>(v) == wire[byte]) continue;
        auto corrupted = wire;
        corrupted[byte] = static_cast<std::uint8_t>(v);
        // A single-byte substitution shifts the ones'-complement sum by
        // less than 0xffff, so it can never alias — detection is
        // guaranteed, and it must always be classified as corruption.
        EXPECT_EQ(parse(corrupted).error, parse_error::bad_checksum)
            << "iter " << iter << " byte " << byte << " value " << v;
      }
    }
  }
}

TEST(ComputeHeader, ChecksumKnownValue) {
  // Internet checksum of 0x0001 0x0203 is ~(0x0204) = 0xFDFB.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0x02, 0x03};
  EXPECT_EQ(internet_checksum(data), 0xFDFB);
}

TEST(ComputeHeader, ChecksumOddLength) {
  const std::vector<std::uint8_t> data{0xAB};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xAB00u));
}

// ----------------------------------------------------- packet-level helpers

TEST(PacketHelpers, AttachAndPeek) {
  net::packet pkt;
  pkt.payload = {1, 2, 3, 4};
  compute_header h;
  h.primitive = primitive_id::p2_pattern_match;
  h.input_length = 4;
  h.result_offset = 0;
  h.result_length = 0;
  attach_compute_header(pkt, h);
  EXPECT_EQ(pkt.proto, net::ip_proto::compute);
  EXPECT_EQ(pkt.payload.size(), compute_header_bytes + 4);
  const auto peeked = peek_compute_header(pkt);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->primitive, primitive_id::p2_pattern_match);
}

TEST(PacketHelpers, PeekRequiresComputeProto) {
  net::packet pkt;
  pkt.payload = serialize(sample_header());
  pkt.proto = net::ip_proto::udp;
  EXPECT_FALSE(peek_compute_header(pkt).has_value());
}

TEST(PacketHelpers, RewriteUpdatesInPlace) {
  net::packet pkt;
  pkt.payload = {9, 9};
  compute_header h = sample_header();
  h.input_offset = 0;
  h.input_length = 2;
  h.result_length = 0;
  attach_compute_header(pkt, h);
  h.flags |= flag_has_result;
  h.hops = 7;
  EXPECT_TRUE(rewrite_compute_header(pkt, h));
  const auto peeked = peek_compute_header(pkt);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_TRUE(peeked->has_result());
  EXPECT_EQ(peeked->hops, 7);
  // Payload beyond the header untouched.
  EXPECT_EQ(pkt.payload[compute_header_bytes], 9);
}

TEST(PacketHelpers, RewriteFailsWithoutHeader) {
  net::packet pkt;
  pkt.payload = {1, 2, 3};
  EXPECT_FALSE(rewrite_compute_header(pkt, sample_header()));
}

TEST(PacketHelpers, InputViewBounds) {
  net::packet pkt;
  pkt.payload = {10, 20, 30, 40};
  compute_header h;
  h.input_offset = 1;
  h.input_length = 2;
  attach_compute_header(pkt, h);
  const auto in = compute_input(pkt, *peek_compute_header(pkt));
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0], 20);
  EXPECT_EQ(in[1], 30);
}

TEST(PacketHelpers, InputViewRejectsOutOfBounds) {
  net::packet pkt;
  pkt.payload = {1, 2};
  compute_header h;
  h.input_offset = 0;
  h.input_length = 10;  // beyond payload
  attach_compute_header(pkt, h);
  EXPECT_TRUE(compute_input(pkt, *peek_compute_header(pkt)).empty());
}

TEST(PacketHelpers, ResultRegionWritable) {
  net::packet pkt;
  pkt.payload = {0, 0, 0};
  compute_header h;
  h.result_offset = 1;
  h.result_length = 2;
  attach_compute_header(pkt, h);
  auto region = compute_result_region(pkt, *peek_compute_header(pkt));
  ASSERT_EQ(region.size(), 2u);
  region[0] = 0xaa;
  EXPECT_EQ(pkt.payload[compute_header_bytes + 1], 0xaa);
}

// ------------------------------------------------------------------ codec

TEST(Codec, UnitRoundTripWithinLsb) {
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    EXPECT_NEAR(decode_unit_u8(encode_unit_u8(x)), x, 1.0 / 255.0);
  }
}

TEST(Codec, SignedRoundTripWithinLsb) {
  for (double x = -1.0; x <= 1.0; x += 0.01) {
    EXPECT_NEAR(decode_signed_u8(encode_signed_u8(x)), x, 2.0 / 255.0);
  }
}

TEST(Codec, ClampsOutOfRange) {
  EXPECT_EQ(encode_unit_u8(2.0), 255);
  EXPECT_EQ(encode_unit_u8(-1.0), 0);
  EXPECT_EQ(encode_signed_u8(5.0), 255);
  // The symmetric grid bottoms out at byte 1 (byte 0 is never produced;
  // decode clamps it to -1).
  EXPECT_EQ(encode_signed_u8(-5.0), 1);
  EXPECT_DOUBLE_EQ(decode_signed_u8(0), -1.0);
}

TEST(Codec, SignedZeroRoundTripsExactly) {
  // The old (x+1)*127.5 offset-binary map had no code for 0.0 —
  // encode(0) = 128 decoded to +1/255, a DC bias on every
  // differential-rail vector. The symmetric map must be exact at zero.
  EXPECT_EQ(encode_signed_u8(0.0), 128);
  EXPECT_EQ(decode_signed_u8(encode_signed_u8(0.0)), 0.0);
  EXPECT_EQ(decode_signed_u8(128), 0.0);
  // ... and exact at the endpoints.
  EXPECT_DOUBLE_EQ(decode_signed_u8(encode_signed_u8(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(decode_signed_u8(encode_signed_u8(-1.0)), -1.0);
}

TEST(Codec, SignedRoundTripIsOdd) {
  // decode(encode(x)) must be odd in x: quantization error may not
  // introduce a sign asymmetry anywhere on the grid.
  for (int i = 0; i <= 1000; ++i) {
    const double x = static_cast<double>(i) / 1000.0;
    EXPECT_DOUBLE_EQ(decode_signed_u8(encode_signed_u8(x)),
                     -decode_signed_u8(encode_signed_u8(-x)))
        << "x = " << x;
  }
}

TEST(Codec, ScalarI16ZeroAndSymmetry) {
  // Audit of the midpoint issue on the 16-bit codec: zero is exact and
  // the map is odd (two's-complement grid is already symmetric).
  const auto [zh, zl] = encode_scalar_i16(0.0, 4.0);
  EXPECT_EQ(zh, 0);
  EXPECT_EQ(zl, 0);
  EXPECT_EQ(decode_scalar_i16(zh, zl, 4.0), 0.0);
  for (int i = 0; i <= 100; ++i) {
    const double v = 4.0 * static_cast<double>(i) / 100.0;
    const auto [ph, pl] = encode_scalar_i16(v, 4.0);
    const auto [nh, nl] = encode_scalar_i16(-v, 4.0);
    EXPECT_DOUBLE_EQ(decode_scalar_i16(ph, pl, 4.0),
                     -decode_scalar_i16(nh, nl, 4.0))
        << "v = " << v;
  }
  // 0x8000 is never produced by encode; decode clamps it to -scale.
  EXPECT_DOUBLE_EQ(decode_scalar_i16(0x80, 0x00, 4.0), -4.0);
}

TEST(Codec, ScalarI16RoundTrip) {
  for (const double v : {-10.0, -1.5, 0.0, 0.25, 3.0, 10.0}) {
    const auto [hi, lo] = encode_scalar_i16(v, 10.0);
    EXPECT_NEAR(decode_scalar_i16(hi, lo, 10.0), v, 10.0 / 32767.0 + 1e-9);
  }
}

TEST(Codec, VectorHelpers) {
  const std::vector<double> xs{0.0, 0.5, 1.0};
  const auto bytes = encode_unit_vector(xs);
  const auto back = decode_unit_vector(bytes);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_NEAR(back[1], 0.5, 1.0 / 255.0);
}

// ------------------------------------------------------- two-field routing

TEST(ComputeRouting, ComputeRoutePreferred) {
  compute_routing_table<int> t;
  const net::prefix dst(net::ipv4(10, 2, 0, 0), 16);
  t.insert_plain(dst, 1);
  t.insert_compute(dst, primitive_id::p1_dot_product, 2);
  EXPECT_EQ(t.lookup(net::ipv4(10, 2, 3, 4), primitive_id::p1_dot_product)
                .value(),
            2);
  // Other primitives fall back to the plain route.
  EXPECT_EQ(
      t.lookup(net::ipv4(10, 2, 3, 4), primitive_id::p2_pattern_match).value(),
      1);
  EXPECT_EQ(t.lookup(net::ipv4(10, 2, 3, 4), primitive_id::none).value(), 1);
}

TEST(ComputeRouting, MissEverywhere) {
  const compute_routing_table<int> t;
  EXPECT_FALSE(
      t.lookup(net::ipv4(1, 1, 1, 1), primitive_id::p1_dot_product).has_value());
}

TEST(ComputeRouting, SizeCountsAllTables) {
  compute_routing_table<int> t;
  t.insert_plain(net::prefix(net::ipv4(10, 0, 0, 0), 8), 1);
  t.insert_compute(net::prefix(net::ipv4(10, 0, 0, 0), 8),
                   primitive_id::p3_nonlinear, 2);
  EXPECT_EQ(t.size(), 2u);
}

TEST(ComputeRouting, PreambleShape) {
  EXPECT_EQ(optical_preamble_bits.size(), 16u);
  // Not all-zero / all-one (needs structure for correlation detection).
  int ones = 0;
  for (const auto b : optical_preamble_bits) ones += b;
  EXPECT_GT(ones, 4);
  EXPECT_LT(ones, 12);
}

}  // namespace
}  // namespace onfiber::proto
