// Tests for the network substrate: addressing, LPM tables, event
// simulator, topology, fabric, traffic, stats.
#include <gtest/gtest.h>

#include <vector>

#include "network/address.hpp"
#include "network/event_sim.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "network/stats.hpp"
#include "network/topology.hpp"
#include "network/traffic.hpp"
#include "photonics/rng.hpp"

namespace onfiber::net {
namespace {

// ---------------------------------------------------------------- address

TEST(Address, RoundTripText) {
  const ipv4 a(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(parse_ipv4("192.168.1.42"), a);
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_THROW((void)parse_ipv4(""), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1..2.3"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("a.b.c.d"), std::invalid_argument);
}

TEST(Address, PrefixContains) {
  const prefix p(ipv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(ipv4(10, 1, 2, 3)));
  EXPECT_TRUE(p.contains(ipv4(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(ipv4(10, 2, 0, 0)));
}

TEST(Address, ZeroLengthPrefixMatchesEverything) {
  const prefix p(ipv4(0), 0);
  EXPECT_TRUE(p.contains(ipv4(255, 255, 255, 255)));
  EXPECT_TRUE(p.contains(ipv4(0)));
}

TEST(Address, HostPrefixMatchesOnlyItself) {
  const prefix p(ipv4(10, 0, 0, 7), 32);
  EXPECT_TRUE(p.contains(ipv4(10, 0, 0, 7)));
  EXPECT_FALSE(p.contains(ipv4(10, 0, 0, 6)));
}

// ---------------------------------------------------------------- routing

TEST(Routing, LongestPrefixWins) {
  routing_table<int> t;
  t.insert(prefix(ipv4(10, 0, 0, 0), 8), 1);
  t.insert(prefix(ipv4(10, 1, 0, 0), 16), 2);
  t.insert(prefix(ipv4(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(t.lookup(ipv4(10, 1, 2, 3)).value(), 3);
  EXPECT_EQ(t.lookup(ipv4(10, 1, 9, 9)).value(), 2);
  EXPECT_EQ(t.lookup(ipv4(10, 9, 9, 9)).value(), 1);
  EXPECT_FALSE(t.lookup(ipv4(11, 0, 0, 0)).has_value());
}

TEST(Routing, DefaultRoute) {
  routing_table<int> t;
  t.insert(prefix(ipv4(0), 0), 99);
  EXPECT_EQ(t.lookup(ipv4(1, 2, 3, 4)).value(), 99);
}

TEST(Routing, EraseRemovesEntry) {
  routing_table<int> t;
  t.insert(prefix(ipv4(10, 0, 0, 0), 8), 1);
  EXPECT_TRUE(t.erase(prefix(ipv4(10, 0, 0, 0), 8)));
  EXPECT_FALSE(t.lookup(ipv4(10, 1, 1, 1)).has_value());
  EXPECT_FALSE(t.erase(prefix(ipv4(10, 0, 0, 0), 8)));
}

TEST(Routing, InsertReplaces) {
  routing_table<int> t;
  t.insert(prefix(ipv4(10, 0, 0, 0), 8), 1);
  t.insert(prefix(ipv4(10, 0, 0, 0), 8), 2);
  EXPECT_EQ(t.lookup(ipv4(10, 1, 1, 1)).value(), 2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Routing, TrieMatchesLinearReferenceFuzz) {
  phot::rng g(77);
  routing_table<std::uint32_t> trie;
  linear_routing_ref<std::uint32_t> ref;
  // Random inserts and erases.
  for (int i = 0; i < 400; ++i) {
    const int len = static_cast<int>(g.below(33));
    const std::uint32_t mask =
        len == 0 ? 0U : ~std::uint32_t{0} << (32 - len);
    const prefix p(ipv4(static_cast<std::uint32_t>(g()) & mask), len);
    if (g.uniform() < 0.8) {
      const auto v = static_cast<std::uint32_t>(g.below(1000));
      trie.insert(p, v);
      ref.insert(p, v);
    } else {
      EXPECT_EQ(trie.erase(p), ref.erase(p));
    }
  }
  // Random lookups must agree exactly.
  for (int i = 0; i < 2000; ++i) {
    const ipv4 addr(static_cast<std::uint32_t>(g()));
    EXPECT_EQ(trie.lookup(addr), ref.lookup(addr));
  }
}

// --------------------------------------------------------------- event sim

TEST(EventSim, ExecutesInTimeOrder) {
  simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventSim, SimultaneousEventsFifo) {
  simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventSim, HandlersCanSchedule) {
  simulator sim;
  int count = 0;
  std::function<void()> reschedule = [&] {
    if (++count < 5) sim.schedule(1.0, reschedule);
  };
  sim.schedule(0.0, reschedule);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(EventSim, RunUntilStopsAtBoundary) {
  simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventSim, NegativeDelayClamped) {
  simulator sim;
  sim.schedule(1.0, [&] {
    sim.schedule(-5.0, [] {});  // must not go back in time
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(EventSim, RunUntilClearsStaleOverrun) {
  // Regression: a capped run() used to leave overran_ set forever; a
  // subsequent run_until() that drained the queue still reported a
  // phantom overrun.
  simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule(1.0 * i, [] {});
  sim.run(2);
  EXPECT_TRUE(sim.overran());
  sim.run_until(10.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_FALSE(sim.overran());
}

TEST(EventSim, RunUntilHonorsEventCap) {
  simulator sim;
  int fired = 0;
  for (int i = 0; i < 6; ++i) sim.schedule(0.1 * i, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(5.0, 3), 3u);
  EXPECT_TRUE(sim.overran());
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.run_until(5.0), 3u);
  EXPECT_FALSE(sim.overran());
  EXPECT_EQ(fired, 6);
}

TEST(EventSim, RunUntilNoOverrunWhenRemainingWorkIsLater) {
  // Events beyond the time boundary don't count as overrun work.
  simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(9.0, [] {});
  sim.run_until(2.0, 1);
  EXPECT_FALSE(sim.overran());
  EXPECT_EQ(sim.pending(), 1u);
}

namespace {
/// Records typed packet-event dispatches for the EventSim tests.
struct recording_sink final : packet_event_sink {
  std::vector<std::pair<std::uint8_t, std::uint32_t>> seen;
  std::vector<std::uint64_t> ids;
  void on_packet_event(std::uint8_t op, packet&& pkt,
                       std::uint32_t node) override {
    seen.emplace_back(op, node);
    ids.push_back(pkt.id);
  }
};
}  // namespace

TEST(EventSim, TypedAndCallbackEventsShareOneOrder) {
  simulator sim;
  recording_sink sink;
  std::vector<int> order;
  packet a;
  a.id = 1;
  sim.schedule(1.0, [&] { order.push_back(10); });
  sim.schedule_packet(1.0, std::move(a), 7, 2, &sink);
  sim.schedule(1.0, [&] { order.push_back(11); });
  packet b;
  b.id = 2;
  sim.schedule_packet_at(0.5, std::move(b), 3, 9, &sink);
  sim.run();
  // t=0.5: packet b; t=1.0 FIFO: callback 10, packet a, callback 11.
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0], (std::pair<std::uint8_t, std::uint32_t>{9, 3u}));
  EXPECT_EQ(sink.seen[1], (std::pair<std::uint8_t, std::uint32_t>{2, 7u}));
  EXPECT_EQ(sink.ids, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(order, (std::vector<int>{10, 11}));
}

TEST(EventSim, RecordSlotsAreRecycled) {
  // A ping-pong of typed events must not grow the record slab: the slot
  // released at dispatch is reused for the hop scheduled from inside it.
  simulator sim;
  struct chain_sink final : packet_event_sink {
    simulator* sim = nullptr;
    int hops = 0;
    void on_packet_event(std::uint8_t op, packet&& pkt,
                         std::uint32_t node) override {
      if (++hops < 1000) {
        sim->schedule_packet(1e-6, std::move(pkt), node + 1, op, this);
      }
    }
  } sink;
  sink.sim = &sim;
  packet pkt;
  pkt.payload.assign(64, 0x5a);
  sim.schedule_packet(0.0, std::move(pkt), 0, 0, &sink);
  sim.run();
  EXPECT_EQ(sink.hops, 1000);
}

// ------------------------------------------------------------ payload pool

TEST(PayloadPool, RecyclesAllocations) {
  payload_pool pool;
  std::vector<std::uint8_t> buf;
  buf.assign(512, 0xab);
  const std::uint8_t* data = buf.data();
  pool.recycle(std::move(buf));
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::uint8_t> reused = pool.acquire();
  EXPECT_TRUE(reused.empty());           // cleared before reuse
  EXPECT_GE(reused.capacity(), 512u);    // same allocation
  EXPECT_EQ(reused.data(), data);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.acquire().empty());   // empty pool: fresh buffer
}

TEST(PayloadPool, IgnoresEmptyAndRespectsCap) {
  payload_pool pool;
  pool.set_max_buffers(2);
  pool.recycle(std::vector<std::uint8_t>{});  // capacity 0: ignored
  EXPECT_EQ(pool.size(), 0u);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> buf;
    buf.assign(16, 0);
    pool.recycle(std::move(buf));
  }
  EXPECT_EQ(pool.size(), 2u);
}

// ---------------------------------------------------------------- topology

TEST(Topology, Figure1Shape) {
  const topology t = make_figure1_topology();
  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_EQ(t.links().size(), 5u);
  EXPECT_EQ(t.node_at(0).name, "A");
  EXPECT_EQ(t.node_at(3).name, "D");
}

TEST(Topology, ShortestPathPrefersLowDelay) {
  const topology t = make_figure1_topology();
  // A -> D: direct link is 1200 km; A-B-D is 850 km; A-C-D is 850 km.
  const auto path = t.shortest_path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(Topology, PathDelayMatchesSum) {
  const topology t = make_linear_topology(4, 100.0);
  const auto path = t.shortest_path(0, 3);
  EXPECT_NEAR(t.path_delay_s(path), 3.0 * phot::fiber_delay_s(100.0), 1e-12);
}

TEST(Topology, UnreachableReturnsEmpty) {
  topology t;
  t.add_node("x");
  t.add_node("y");
  EXPECT_TRUE(t.shortest_path(0, 1).empty());
}

TEST(Topology, NodeForAddress) {
  const topology t = make_linear_topology(3);
  const auto n = t.node_for_address(t.node_at(1).address);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  EXPECT_FALSE(t.node_for_address(ipv4(192, 0, 2, 1)).has_value());
}

TEST(Topology, RejectsBadLinks) {
  topology t;
  const node_id a = t.add_node("a");
  EXPECT_THROW(t.add_link(a, a, 10.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99, 10.0), std::invalid_argument);
}

TEST(Topology, UswanIsConnected) {
  const topology t = make_uswan_topology();
  EXPECT_EQ(t.node_count(), 12u);
  for (node_id v = 1; v < t.node_count(); ++v) {
    EXPECT_FALSE(t.shortest_path(0, v).empty()) << "node " << v;
  }
}

TEST(Topology, FatTreeCounts) {
  const topology t = make_fattree_topology(4);
  // k=4: 4 core + 4 pods x (2 agg + 2 edge) = 20 switches.
  EXPECT_EQ(t.node_count(), 20u);
  // Links: per pod 2x2 agg-edge + 2x2 agg-core = 8 -> 32 total.
  EXPECT_EQ(t.links().size(), 32u);
  EXPECT_THROW(make_fattree_topology(3), std::invalid_argument);
}

// ------------------------------------------------------------------ fabric

TEST(Fabric, DeliversAlongShortestPath) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(4, 100.0));
  fabric.install_shortest_path_routes();
  bool delivered = false;
  double at_time = 0.0;
  fabric.set_deliver_callback(
      [&](const packet&, node_id at, double t) {
        delivered = true;
        at_time = t;
        EXPECT_EQ(at, 3u);
      });
  packet pkt;
  pkt.src = fabric.topo().node_at(0).address;
  pkt.dst = fabric.topo().node_at(3).address;
  pkt.payload.resize(100);
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_TRUE(delivered);
  // 3 hops of 100 km each, plus serialization.
  EXPECT_GT(at_time, 3.0 * phot::fiber_delay_s(100.0));
  EXPECT_LT(at_time, 3.0 * phot::fiber_delay_s(100.0) + 1e-3);
  EXPECT_EQ(fabric.delivered(), 1u);
}

TEST(Fabric, TtlExpiryDrops) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(5, 10.0));
  fabric.install_shortest_path_routes();
  packet pkt;
  pkt.src = fabric.topo().node_at(0).address;
  pkt.dst = fabric.topo().node_at(4).address;
  pkt.ttl = 2;  // needs 4 hops
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(fabric.delivered(), 0u);
  EXPECT_EQ(fabric.dropped(), 1u);
}

TEST(Fabric, HookConsume) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(3, 10.0));
  fabric.install_shortest_path_routes();
  int seen = 0;
  fabric.set_hook(1, [&](node_id, packet&, double) {
    ++seen;
    return hook_decision{hook_decision::action_type::consume, invalid_node};
  });
  packet pkt;
  pkt.dst = fabric.topo().node_at(2).address;
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(fabric.delivered(), 0u);
}

TEST(Fabric, HookRedirect) {
  simulator sim;
  // Triangle: 0-1, 1-2, 0-2. Send 0->2 but redirect at 0 via 1.
  topology topo;
  const node_id n0 = topo.add_node("a");
  const node_id n1 = topo.add_node("b");
  const node_id n2 = topo.add_node("c");
  topo.add_link(n0, n1, 10.0);
  topo.add_link(n1, n2, 10.0);
  topo.add_link(n0, n2, 10.0);
  wan_fabric fabric(sim, topo);
  fabric.install_shortest_path_routes();
  std::vector<node_id> visits;
  fabric.set_hook(n1, [&](node_id at, packet&, double) {
    visits.push_back(at);
    return hook_decision{};
  });
  fabric.set_hook(n0, [&](node_id, packet& pkt, double) {
    if (pkt.ttl == 64) {  // only redirect on first visit
      return hook_decision{hook_decision::action_type::redirect, n1};
    }
    return hook_decision{};
  });
  packet pkt;
  pkt.dst = fabric.topo().node_at(n2).address;
  fabric.send(pkt, n0);
  sim.run();
  EXPECT_EQ(visits.size(), 1u);
  EXPECT_EQ(fabric.delivered(), 1u);
}

TEST(Fabric, SerializationQueueing) {
  simulator sim;
  topology topo = make_linear_topology(2, 1.0);
  wan_fabric fabric(sim, topo);
  fabric.install_shortest_path_routes();
  std::vector<double> arrivals;
  fabric.set_deliver_callback(
      [&](const packet&, node_id, double t) { arrivals.push_back(t); });
  // Two back-to-back 1250-byte packets on a 100 Gb/s link: the second
  // is delayed by one serialization time (~0.1 us... 1270B*8/100e9).
  for (int i = 0; i < 2; ++i) {
    packet pkt;
    pkt.dst = fabric.topo().node_at(1).address;
    pkt.payload.resize(1250);
    fabric.send(pkt, 0);
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double serialize = 1270.0 * 8.0 / 100e9;
  EXPECT_NEAR(arrivals[1] - arrivals[0], serialize, 1e-12);
}

TEST(Fabric, LinkBytesAccounted) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(3, 10.0));
  fabric.install_shortest_path_routes();
  packet pkt;
  pkt.dst = fabric.topo().node_at(2).address;
  pkt.payload.resize(80);
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_DOUBLE_EQ(fabric.link_bytes()[0], 100.0);  // 20B header + 80B
  EXPECT_DOUBLE_EQ(fabric.link_bytes()[1], 100.0);
}

TEST(Fabric, DropStatsPerReason) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(5, 10.0));
  fabric.install_shortest_path_routes();
  const auto send_to_end = [&](std::uint8_t ttl) {
    packet pkt;
    pkt.src = fabric.topo().node_at(0).address;
    pkt.dst = fabric.topo().node_at(4).address;
    pkt.ttl = ttl;
    fabric.send(pkt, 0);
    sim.run();
  };

  send_to_end(2);  // needs 4 hops
  EXPECT_EQ(fabric.drops().ttl_expired, 1u);

  packet stray;
  stray.dst = ipv4(192, 168, 0, 1);  // no attached prefix anywhere
  fabric.send(stray, 0);
  sim.run();
  EXPECT_EQ(fabric.drops().no_route, 1u);

  fabric.set_hook(1, [&](node_id, packet&, double) {
    return hook_decision{hook_decision::action_type::drop, invalid_node};
  });
  send_to_end(64);
  EXPECT_EQ(fabric.drops().hook_drop, 1u);

  fabric.set_hook(1, [&](node_id, packet&, double) {
    return hook_decision{hook_decision::action_type::redirect, invalid_node};
  });
  send_to_end(64);
  EXPECT_EQ(fabric.drops().bad_redirect, 1u);

  fabric.set_hook(1, wan_fabric::hook_fn{});  // clear the hook
  fabric.fail_link(1);  // routes still point at it: black hole
  send_to_end(64);
  EXPECT_EQ(fabric.drops().link_down, 1u);

  EXPECT_EQ(fabric.drops().total(), 5u);
  EXPECT_EQ(fabric.dropped(), 5u);  // aggregate stays the sum
  EXPECT_EQ(fabric.delivered(), 0u);
}

TEST(Fabric, HighBerFlipCountClampedToPayloadBits) {
  // Seed 7's stream for (link 0, dir 0, seq 0) opens with a
  // poisson(0.9 * 8) draw of 12 — more flips than a 1-byte payload has
  // bits. The clamp caps it at 8; the packet still traverses and the
  // corruption counter advances exactly once.
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(2, 10.0));
  fabric.install_shortest_path_routes();
  fabric.set_bit_error_rate(0.9, 7);
  std::vector<std::uint8_t> delivered_payload;
  fabric.set_deliver_callback([&](const packet& pkt, node_id, double) {
    delivered_payload = pkt.payload;
  });
  packet pkt;
  pkt.dst = fabric.topo().node_at(1).address;
  pkt.payload.assign(1, 0x00);
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(fabric.corrupted(), 1u);
  ASSERT_EQ(delivered_payload.size(), 1u);
  // Replay the counter stream for this traversal: node 0 -> 1 is the
  // first transmit on link 0 direction 0. The fabric must apply the
  // clamped flip count.
  phot::counter_rng replay{phot::counter_rng::key_of(7, 0, 0, 0)};
  std::uint64_t flips = replay.poisson(0.9 * 8.0);
  ASSERT_GT(flips, 8u);
  flips = 8;
  std::uint8_t expect = 0x00;
  for (std::uint64_t i = 0; i < flips; ++i) {
    expect ^= static_cast<std::uint8_t>(1U << (replay.below(8) % 8));
  }
  EXPECT_EQ(delivered_payload[0], expect);
}

TEST(Fabric, BitErrorCountsNetCorruptionOnly) {
  // Positions are drawn with replacement, so a bit flipped an even
  // number of times cancels out and the payload arrives intact. The
  // corruption counter must track packets whose payload actually
  // changed, not packets that merely drew flips (the old behavior).
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(2, 10.0));
  fabric.install_shortest_path_routes();
  constexpr double ber = 0.25;
  constexpr std::uint64_t seed = 5;
  constexpr int packets = 200;
  fabric.set_bit_error_rate(ber, seed);

  std::uint64_t changed = 0;
  fabric.set_deliver_callback([&](const packet& pkt, node_id, double) {
    if (pkt.payload[0] != 0x00) ++changed;
  });
  for (int i = 0; i < packets; ++i) {
    packet pkt;
    pkt.dst = fabric.topo().node_at(1).address;
    pkt.payload.assign(1, 0x00);
    fabric.send(std::move(pkt), 0);
  }
  sim.run();

  // Replay the counter streams: packets traverse the single link in
  // send order, so the i-th packet is transmit seq i on (link 0, dir 0)
  // and draws from the stream keyed by (seed, 0, 0, i).
  std::uint64_t flip_events = 0;
  for (int i = 0; i < packets; ++i) {
    phot::counter_rng replay{phot::counter_rng::key_of(
        seed, 0, 0, static_cast<std::uint64_t>(i))};
    std::uint64_t flips = replay.poisson(ber * 8.0);
    if (flips == 0) continue;
    if (flips > 8) flips = 8;
    ++flip_events;
    for (std::uint64_t f = 0; f < flips; ++f) (void)replay.below(8);
  }
  EXPECT_EQ(fabric.delivered(), static_cast<std::uint64_t>(packets));
  EXPECT_EQ(fabric.corrupted(), changed);
  // The scenario really exercises cancellation — some packets drew
  // flips yet arrived intact (this is what the old counter overcounted).
  EXPECT_LT(changed, flip_events);
  EXPECT_GT(changed, 0u);
}

TEST(Fabric, MidRunReseedIsOrderIndependent) {
  // set_bit_error_rate is an ordinary control-plane event: draws are
  // keyed by per-link-direction transmit sequence, which advances on
  // every traversal whether BER is on or off, so the corruption a
  // packet suffers depends only on the traffic that preceded it on the
  // link — never on when BER was (re)configured.
  const auto run = [](bool late) {
    simulator sim;
    wan_fabric fabric(sim, make_linear_topology(2, 10.0));
    fabric.install_shortest_path_routes();
    if (!late) fabric.set_bit_error_rate(0.25, 11);
    std::vector<std::vector<std::uint8_t>> payloads;
    fabric.set_deliver_callback([&](const packet& pkt, node_id, double) {
      payloads.push_back(pkt.payload);
    });
    for (int i = 0; i < 10; ++i) {
      packet pkt;
      pkt.dst = fabric.topo().node_at(1).address;
      pkt.payload.assign(4, 0x00);
      fabric.send(std::move(pkt), 0);
      sim.run();  // drain so traversals happen in send order
      if (late && i == 4) fabric.set_bit_error_rate(0.25, 11);
    }
    return payloads;
  };
  const auto from_start = run(false);
  const auto enabled_late = run(true);
  ASSERT_EQ(from_start.size(), 10u);
  ASSERT_EQ(enabled_late.size(), 10u);
  const std::vector<std::uint8_t> clean(4, 0x00);
  // Packets before the late enable pass through untouched...
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(enabled_late[i], clean);
  // ...and packets after it corrupt exactly as if BER had been on from
  // the start: same link, same transmit sequence, same stream.
  bool any_corrupted = false;
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(enabled_late[i], from_start[i]);
    if (from_start[i] != clean) any_corrupted = true;
  }
  EXPECT_TRUE(any_corrupted);  // the shared suffix really exercises BER
}

TEST(Fabric, RecommendedTtlTracksTopologyDiameter) {
  // Small topologies clamp to the historical default floor of 64; a
  // 128-node chain (hop diameter 127) wants 2*127 + 8 = 262, clamped
  // to the field's ceiling of 255.
  {
    simulator sim;
    wan_fabric fabric(sim, make_linear_topology(4, 10.0));
    EXPECT_EQ(fabric.recommended_ttl(), 64u);
  }
  {
    simulator sim;
    wan_fabric fabric(sim, make_linear_topology(128, 1.0));
    EXPECT_EQ(fabric.recommended_ttl(), 255u);
  }
}

TEST(Fabric, DefaultTtlDeliversAcrossLongChain) {
  // Regression: a default-constructed packet (ttl = 64) crossing a
  // 128-node chain needs 127 hops. send() must stamp recommended_ttl()
  // instead of letting the fabric silently black-hole it at hop 64.
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(128, 1.0));
  fabric.install_shortest_path_routes();
  node_id delivered_at = invalid_node;
  fabric.set_deliver_callback(
      [&](const packet&, node_id at, double) { delivered_at = at; });
  packet pkt;  // ttl left at the struct default
  pkt.dst = fabric.topo().node_at(127).address;
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(delivered_at, 127u);
  EXPECT_EQ(fabric.delivered(), 1u);
  EXPECT_EQ(fabric.drops().ttl_expired, 0u);
}

TEST(Fabric, TtlBlackholeWarnsOnStderrOnce) {
  // An explicitly small TTL is honored as-is (only the exact default is
  // restamped). When ttl-expired drops exceed deliveries the fabric
  // warns once — and only once — on stderr.
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(128, 1.0));
  fabric.install_shortest_path_routes();
  const auto send_small_ttl = [&] {
    packet pkt;
    pkt.ttl = 5;
    pkt.dst = fabric.topo().node_at(127).address;
    fabric.send(pkt, 0);
  };
  testing::internal::CaptureStderr();
  send_small_ttl();
  sim.run();
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("ttl-expired"), std::string::npos);
  EXPECT_NE(first.find("recommended_ttl"), std::string::npos);
  EXPECT_EQ(fabric.drops().ttl_expired, 1u);

  testing::internal::CaptureStderr();
  send_small_ttl();
  sim.run();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(fabric.drops().ttl_expired, 2u);
}

TEST(Fabric, DestHintRevalidatedWhenHookRewritesDst) {
  // A hook rewriting dst mid-path invalidates the flat-cache hint; the
  // packet must fall back to the trie and deliver at the new target.
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(4, 10.0));
  fabric.install_shortest_path_routes();
  fabric.set_hook(1, [&](node_id, packet& pkt, double) {
    pkt.dst = fabric.topo().node_at(2).address;  // was node 3
    return hook_decision{};
  });
  node_id delivered_at = invalid_node;
  fabric.set_deliver_callback(
      [&](const packet&, node_id at, double) { delivered_at = at; });
  packet pkt;
  pkt.dst = fabric.topo().node_at(3).address;
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(delivered_at, 2u);
  EXPECT_EQ(fabric.delivered(), 1u);
  EXPECT_EQ(fabric.dropped(), 0u);
}

TEST(Fabric, FlatCacheFollowsReconvergence) {
  // Triangle: after the direct link fails AND routes reconverge, the
  // flat caches must steer around it (no stale fast-path entries).
  simulator sim;
  topology topo;
  const node_id n0 = topo.add_node("a");
  const node_id n1 = topo.add_node("b");
  const node_id n2 = topo.add_node("c");
  topo.add_link(n0, n2, 10.0);  // direct, preferred
  topo.add_link(n0, n1, 10.0);
  topo.add_link(n1, n2, 10.0);
  wan_fabric fabric(sim, topo);
  fabric.install_shortest_path_routes();
  EXPECT_EQ(fabric.next_hop(n0, topo.node_at(n2).address).value(), n2);
  fabric.fail_link(0);
  fabric.install_shortest_path_routes();
  EXPECT_EQ(fabric.next_hop(n0, topo.node_at(n2).address).value(), n1);
  packet pkt;
  pkt.dst = fabric.topo().node_at(n2).address;
  fabric.send(pkt, n0);
  sim.run();
  EXPECT_EQ(fabric.delivered(), 1u);
  EXPECT_EQ(fabric.dropped(), 0u);
}

TEST(Fabric, DeliveredPayloadBuffersReturnToPool) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(3, 10.0));
  fabric.install_shortest_path_routes();
  for (int i = 0; i < 4; ++i) {
    packet pkt;
    pkt.dst = fabric.topo().node_at(2).address;
    pkt.payload = fabric.pool().acquire();
    pkt.payload.assign(128, static_cast<std::uint8_t>(i));
    fabric.send(std::move(pkt), 0);
    sim.run();
  }
  EXPECT_EQ(fabric.delivered(), 4u);
  // After the first delivery every send reuses the recycled buffer.
  EXPECT_EQ(fabric.pool().size(), 1u);
}

// ----------------------------------------------------------------- traffic

TEST(Traffic, DeterministicPerSeed) {
  traffic_config cfg;
  traffic_generator g1(cfg, ipv4(10, 0, 0, 1), ipv4(10, 1, 0, 1), 5);
  traffic_generator g2(cfg, ipv4(10, 0, 0, 1), ipv4(10, 1, 0, 1), 5);
  const auto a = g1.generate_count(50);
  const auto b = g2.generate_count(50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].pkt.payload, b[i].pkt.payload);
  }
}

TEST(Traffic, RateApproximatelyRespected) {
  traffic_config cfg;
  cfg.packet_rate_pps = 1e4;
  traffic_generator g(cfg, ipv4(1, 0, 0, 1), ipv4(2, 0, 0, 1), 7);
  const auto arrivals = g.generate(1.0);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1e4, 400.0);
}

TEST(Traffic, PayloadBoundsRespected) {
  traffic_config cfg;
  cfg.min_payload_bytes = 100;
  cfg.max_payload_bytes = 200;
  traffic_generator g(cfg, ipv4(1, 0, 0, 1), ipv4(2, 0, 0, 1), 9);
  for (const auto& a : g.generate_count(200)) {
    EXPECT_GE(a.pkt.payload.size(), 100u);
    EXPECT_LE(a.pkt.payload.size(), 200u);
  }
}

TEST(Traffic, RejectsBadConfig) {
  traffic_config cfg;
  cfg.packet_rate_pps = 0.0;
  EXPECT_THROW(traffic_generator(cfg, ipv4(1, 0, 0, 1), ipv4(2, 0, 0, 1), 1),
               std::invalid_argument);
}

TEST(Traffic, PlantSignatureBounds) {
  std::vector<std::uint8_t> payload(16, 0);
  const std::vector<std::uint8_t> sig{1, 2, 3, 4};
  plant_signature(payload, sig, 12);
  EXPECT_EQ(payload[12], 1);
  EXPECT_EQ(payload[15], 4);
  EXPECT_THROW(plant_signature(payload, sig, 13), std::invalid_argument);
}

// ------------------------------------------------------------------- stats

TEST(Stats, SummaryPercentiles) {
  summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, SummaryEmpty) {
  const summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Stats, PercentileRangeChecked) {
  summary s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(Stats, JainFairness) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(Stats, SummaryKeepsInsertionOrder) {
  // samples() is documented to return insertion order; the order
  // statistics used to sort the internal vector in place as a side
  // effect, silently reordering what samples() exposed.
  summary s;
  const std::vector<double> inserted{5.0, 1.0, 4.0, 2.0, 3.0};
  for (const double v : inserted) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.samples(), inserted);
  // Interleaved adds keep both views consistent.
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_EQ(s.samples().back(), 0.5);
}

TEST(Stats, SummaryStddev) {
  summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  summary one;
  one.add(1.0);
  EXPECT_DOUBLE_EQ(one.stddev(), 0.0);
}

TEST(Traffic, EmptyHorizonYieldsNothing) {
  traffic_config cfg;
  cfg.packet_rate_pps = 1.0;  // ~1 packet/s
  traffic_generator g(cfg, ipv4(1, 0, 0, 1), ipv4(2, 0, 0, 1), 3);
  EXPECT_TRUE(g.generate(1e-9).empty());
}

TEST(Fabric, SendInvalidIngressThrows) {
  simulator sim;
  wan_fabric fabric(sim, make_linear_topology(2, 10.0));
  packet pkt;
  EXPECT_THROW(fabric.send(pkt, 7), std::out_of_range);
}

TEST(Stats, FlowHashStable) {
  const auto h1 = flow_hash_of(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 80, 443, 6);
  const auto h2 = flow_hash_of(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 80, 443, 6);
  EXPECT_EQ(h1, h2);
  const auto h3 = flow_hash_of(ipv4(1, 2, 3, 4), ipv4(5, 6, 7, 8), 81, 443, 6);
  EXPECT_NE(h1, h3);
}

}  // namespace
}  // namespace onfiber::net
