// Tests for the dynamic pieces: the controller service epoch loop,
// fabric failure injection (bit errors), and the Waxman topology
// generator.
#include <gtest/gtest.h>

#include "controller/service.hpp"
#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/fabric.hpp"
#include "network/topology.hpp"

namespace onfiber {
namespace {

// -------------------------------------------------------- controller svc

ctrl::compute_demand simple_demand(std::uint32_t id, net::node_id src,
                                   net::node_id dst,
                                   proto::primitive_id prim) {
  ctrl::compute_demand d;
  d.id = id;
  d.src = src;
  d.dst = dst;
  d.chain = {prim};
  d.rate_ops_s = 1e3;
  d.value = 1.0;
  return d;
}

TEST(ControllerService, TracksDemandChurn) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  std::vector<ctrl::transponder_info> inventory{
      {0, 1, {proto::primitive_id::p2_pattern_match}, 1e6},
      {1, 2, {proto::primitive_id::p1_p3_dnn}, 1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 1.0;
  ctrl::controller_service svc(sim, topo, inventory, cfg);

  // Demand A active [0, 2.5), demand B active [1.5, 4).
  svc.add_demand(simple_demand(0, 0, 3, proto::primitive_id::p2_pattern_match),
                 0.0, 2.5);
  svc.add_demand(simple_demand(1, 0, 3, proto::primitive_id::p1_p3_dnn), 1.5,
                 4.0);
  svc.start();
  sim.run();

  const auto& hist = svc.history();
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[0].active_demands, 1u);  // t=0: only A
  EXPECT_EQ(hist[2].active_demands, 2u);  // t=2: A and B
  EXPECT_EQ(hist[3].active_demands, 1u);  // t=3: only B
  EXPECT_DOUBLE_EQ(hist[0].satisfied_value, 1.0);
  EXPECT_DOUBLE_EQ(hist[2].satisfied_value, 2.0);
}

TEST(ControllerService, ReconfiguresOnChurnOnly) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  std::vector<ctrl::transponder_info> inventory{
      {0, 1,
       {proto::primitive_id::p2_pattern_match,
        proto::primitive_id::p1_p3_dnn},
       1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 1.0;
  ctrl::controller_service svc(sim, topo, inventory, cfg);
  // One steady demand across all epochs: one initial install, then none.
  svc.add_demand(simple_demand(0, 0, 3, proto::primitive_id::p1_p3_dnn), 0.0,
                 3.5);
  svc.start();
  sim.run();
  ASSERT_GE(svc.history().size(), 3u);
  EXPECT_EQ(svc.history()[0].reconfig_ops, 1u);
  EXPECT_EQ(svc.history()[1].reconfig_ops, 0u);
  EXPECT_EQ(svc.history()[2].reconfig_ops, 0u);
  EXPECT_EQ(svc.total_reconfigs(), 1u);
}

TEST(ControllerService, PublishesRoutesIntoRuntime) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(2, {}, 5).configure_gemv(task);

  std::vector<ctrl::transponder_info> inventory{
      {0, 2, {proto::primitive_id::p1_dot_product}, 1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 0.5;
  ctrl::controller_service svc(sim, rt.fabric().topo(), inventory, cfg);
  svc.add_demand(simple_demand(0, 0, 3, proto::primitive_id::p1_dot_product),
                 0.0, 1.0);
  svc.set_publish_callback(
      [&rt](const std::vector<ctrl::compute_route_entry>& routes) {
        for (const auto& r : routes) {
          rt.set_compute_route(r.at, r.dst_prefix, r.primitive, r.next_hop);
        }
      });
  svc.start();

  // Send a compute packet after the first epoch installed routes.
  const std::vector<double> x(4, 0.5);
  sim.schedule(0.1, [&rt, x] {
    rt.submit(core::make_gemv_request(
                  rt.fabric().topo().node_at(0).address,
                  rt.fabric().topo().node_at(3).address, x, 1),
              0);
  });
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
}

TEST(ControllerService, ReconfigDowntimeAccounted) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  std::vector<ctrl::transponder_info> inventory{
      {0, 1, {proto::primitive_id::p1_p3_dnn}, 1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 1.0;
  cfg.reconfig.task_bytes = 1e6;        // 1 MB model
  cfg.reconfig.control_rate_bps = 1e9;  // 8 ms transfer
  cfg.reconfig.install_s = 2e-3;
  ctrl::controller_service svc(sim, topo, inventory, cfg);
  svc.add_demand(simple_demand(0, 0, 3, proto::primitive_id::p1_p3_dnn), 0.0,
                 2.5);
  svc.start();
  sim.run();
  EXPECT_EQ(svc.total_reconfigs(), 1u);
  EXPECT_NEAR(svc.total_downtime_s(), 8e-3 + 2e-3, 1e-9);
  EXPECT_NEAR(cfg.reconfig.op_downtime_s(), 10e-3, 1e-9);
}

TEST(ControllerService, ExactSolverWorksInService) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  std::vector<ctrl::transponder_info> inventory{
      {0, 1, {proto::primitive_id::p2_pattern_match}, 1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 1.0;
  cfg.solver = ctrl::solver_kind::exact;
  ctrl::controller_service svc(sim, topo, inventory, cfg);
  svc.add_demand(simple_demand(0, 0, 3, proto::primitive_id::p2_pattern_match),
                 0.0, 1.5);
  svc.start();
  sim.run();
  ASSERT_FALSE(svc.history().empty());
  EXPECT_DOUBLE_EQ(svc.history()[0].satisfied_value, 1.0);
}

TEST(ControllerService, Validation) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  ctrl::service_config bad;
  bad.epoch_s = 0.0;
  EXPECT_THROW(ctrl::controller_service(sim, topo, {}, bad),
               std::invalid_argument);
  ctrl::controller_service svc(sim, topo, {});
  EXPECT_THROW(
      svc.add_demand(simple_demand(0, 0, 3,
                                   proto::primitive_id::p3_nonlinear),
                     2.0, 1.0),
      std::invalid_argument);
}

// ---------------------------------------------------------- bit errors

TEST(BitErrors, CleanFabricByDefault) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(3, 10.0));
  fabric.install_shortest_path_routes();
  net::packet pkt;
  pkt.dst = fabric.topo().node_at(2).address;
  pkt.payload.assign(512, 0xAA);
  std::vector<std::uint8_t> delivered;
  fabric.set_deliver_callback(
      [&](const net::packet& p, net::node_id, double) {
        delivered = p.payload;
      });
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(delivered, std::vector<std::uint8_t>(512, 0xAA));
  EXPECT_EQ(fabric.corrupted(), 0u);
}

TEST(BitErrors, HighBerFlipsBits) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(2, 10.0));
  fabric.install_shortest_path_routes();
  fabric.set_bit_error_rate(1e-3, 7);
  int changed = 0;
  fabric.set_deliver_callback(
      [&](const net::packet& p, net::node_id, double) {
        for (const auto b : p.payload) {
          if (b != 0xAA) ++changed;
        }
      });
  net::packet pkt;
  pkt.dst = fabric.topo().node_at(1).address;
  pkt.payload.assign(4096, 0xAA);  // ~33 expected flips at 1e-3
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_GT(changed, 5);
  EXPECT_EQ(fabric.corrupted(), 1u);
}

TEST(BitErrors, CorruptedComputeHeadersDropped) {
  // End-to-end failure injection: with a harsh BER, corrupted compute
  // packets are caught by the header checksum and dropped instead of
  // being mis-executed.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_linear_topology(4, 200.0));
  core::gemv_task task;
  task.weights = phot::matrix(1, 8);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 3).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();
  rt.fabric().set_bit_error_rate(2e-3, 11);

  const std::vector<double> x(8, 0.5);
  constexpr int packets = 50;
  for (int i = 0; i < packets; ++i) {
    rt.submit(core::make_gemv_request(
                  rt.fabric().topo().node_at(0).address,
                  rt.fabric().topo().node_at(3).address, x, 1,
                  static_cast<std::uint32_t>(i)),
              0);
  }
  sim.run();
  // Some were corrupted; every corruption in the header region must be
  // dropped (not delivered with a bogus header).
  EXPECT_GT(rt.fabric().corrupted(), 0u);
  EXPECT_GT(rt.stats().malformed_dropped, 0u);
  EXPECT_EQ(rt.deliveries().size() + rt.stats().malformed_dropped,
            static_cast<std::size_t>(packets));
  for (const auto& d : rt.deliveries()) {
    // Whatever got through parses cleanly.
    EXPECT_TRUE(proto::peek_compute_header(d.pkt).has_value());
  }
}

TEST(BitErrors, Validation) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(2, 10.0));
  EXPECT_THROW(fabric.set_bit_error_rate(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(fabric.set_bit_error_rate(1.0, 1), std::invalid_argument);
}

// ------------------------------------------------------- spread steering

TEST(SpreadSteering, SplitsFlowsAcrossReplicas) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(2, 8);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 21).configure_gemv(task);  // B
  rt.deploy_engine(2, {}, 22).configure_gemv(task);  // C replica
  rt.install_compute_routes_via_nearest_site();
  rt.set_steering_policy(
      core::onfiber_runtime::steering_policy::flow_spread);

  const std::vector<double> x(8, 0.5);
  phot::rng g(31);
  constexpr int packets = 40;
  for (int i = 0; i < packets; ++i) {
    net::packet pkt = core::make_gemv_request(
        rt.fabric().topo().node_at(0).address,
        rt.fabric().topo().node_at(3).address, x, 2,
        static_cast<std::uint32_t>(i));
    pkt.flow_hash = static_cast<std::uint32_t>(g());
    rt.submit(std::move(pkt), 0);
  }
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), static_cast<std::size_t>(packets));
  EXPECT_EQ(rt.stats().computed, static_cast<std::uint64_t>(packets));
  // Both replicas did real work (hashes split the flows).
  EXPECT_GT(rt.site_busy_s(1), 0.0);
  EXPECT_GT(rt.site_busy_s(2), 0.0);
}

TEST(SpreadSteering, NearestPolicyUsesOneSite) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(2, 8);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 23).configure_gemv(task);
  rt.deploy_engine(2, {}, 24).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();  // default steering

  const std::vector<double> x(8, 0.5);
  phot::rng g(33);
  for (int i = 0; i < 20; ++i) {
    net::packet pkt = core::make_gemv_request(
        rt.fabric().topo().node_at(0).address,
        rt.fabric().topo().node_at(3).address, x, 2);
    pkt.flow_hash = static_cast<std::uint32_t>(g());
    rt.submit(std::move(pkt), 0);
  }
  sim.run();
  // All flows converge on one site under nearest steering; A->D traffic
  // transits B (shortest path via B or C tie-broken consistently).
  const bool one_sided =
      rt.site_busy_s(1) == 0.0 || rt.site_busy_s(2) == 0.0;
  EXPECT_TRUE(one_sided);
}

TEST(SpreadSteering, FollowsReconvergedRoutesAfterFlap) {
  // Regression: the spread-steering first-hop matrix used to be computed
  // once at install time, so after A-B flapped and the routing plane
  // reconverged, flow_spread kept redirecting A's traffic for site B
  // straight into the dead link. The fabric's reconvergence callback now
  // rebuilds the matrix, so the post-reconvergence packet detours via C.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(2, 8);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 25).configure_gemv(task);  // B
  rt.deploy_engine(2, {}, 26).configure_gemv(task);  // C
  rt.install_compute_routes_via_nearest_site();
  rt.set_steering_policy(
      core::onfiber_runtime::steering_policy::flow_spread);

  // A-B down at 1 ms, reconverged at 1.5 ms, restored at 2 ms.
  const net::wan_fabric::link_flap flap{0, 0.001, 0.002};
  rt.fabric().schedule_flaps({&flap, 1}, 0.0005);

  const std::vector<double> x(8, 0.5);
  const auto send_at = [&](double t, std::uint32_t id) {
    sim.schedule_at(t, [&rt, &x, id] {
      net::packet pkt = core::make_gemv_request(
          rt.fabric().topo().node_at(0).address,
          rt.fabric().topo().node_at(3).address, x, 2, id);
      pkt.flow_hash = 0;  // candidates [B, C]: 0 % 2 -> site B
      rt.submit(std::move(pkt), 0);
    });
  };
  send_at(0.0012, 1);  // stale window: black-holed (intended behavior)
  send_at(0.0017, 2);  // post-reconvergence: must detour via C toward B
  sim.run();

  EXPECT_EQ(rt.fabric().drops().link_down, 1u);  // only the in-window one
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
  // The detour toward B transits C, a capable site, so the compute
  // happens there — the point is the packet survived instead of chasing
  // the stale first hop into the dead A-B link.
  EXPECT_GT(rt.site_busy_s(2), 0.0);
  const auto h = proto::peek_compute_header(rt.deliveries()[0].pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->task_id, 2u);
}

// --------------------------------------------------------- link failures

TEST(LinkFailure, TrafficBlackholedUntilReconvergence) {
  net::simulator sim;
  // Figure-1: A->D shortest goes A-B-D (link 0 then 2).
  net::wan_fabric fabric(sim, net::make_figure1_topology());
  fabric.install_shortest_path_routes();

  const auto send_one = [&] {
    net::packet pkt;
    pkt.src = fabric.topo().node_at(0).address;
    pkt.dst = fabric.topo().node_at(3).address;
    fabric.send(pkt, 0);
    sim.run();
  };

  send_one();
  EXPECT_EQ(fabric.delivered(), 1u);

  // Fail A-B (link 0). Routes still point at it: packet black-holed.
  fabric.fail_link(0);
  EXPECT_FALSE(fabric.link_is_up(0));
  send_one();
  EXPECT_EQ(fabric.delivered(), 1u);
  EXPECT_EQ(fabric.dropped(), 1u);

  // Reconverge: traffic flows via C.
  fabric.install_shortest_path_routes();
  send_one();
  EXPECT_EQ(fabric.delivered(), 2u);

  // Restore + reconverge: back to normal.
  fabric.restore_link(0);
  fabric.install_shortest_path_routes();
  send_one();
  EXPECT_EQ(fabric.delivered(), 3u);
}

TEST(LinkFailure, PartitionRetractsRoutes) {
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(3, 50.0));
  fabric.install_shortest_path_routes();
  fabric.fail_link(1);  // cut 1-2: node 2 unreachable
  fabric.install_shortest_path_routes();
  net::packet pkt;
  pkt.src = fabric.topo().node_at(0).address;
  pkt.dst = fabric.topo().node_at(2).address;
  fabric.send(pkt, 0);
  sim.run();
  // No stale route: dropped for lack of a route, not looped.
  EXPECT_EQ(fabric.delivered(), 0u);
  EXPECT_EQ(fabric.dropped(), 1u);
}

TEST(LinkFailure, ComputePathSurvivesViaAlternateSite) {
  // Fig-1 with engines at B and C under spread steering: failing the A-B
  // link and reconverging, flows still reach an engine via C.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 61).configure_gemv(task);
  rt.deploy_engine(2, {}, 62).configure_gemv(task);
  rt.fabric().fail_link(0);  // A-B down
  rt.fabric().install_shortest_path_routes();
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x(4, 0.5);
  rt.submit(core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                    rt.fabric().topo().node_at(3).address, x,
                                    1),
            0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
  EXPECT_GT(rt.site_busy_s(2), 0.0);  // served by C
  EXPECT_DOUBLE_EQ(rt.site_busy_s(1), 0.0);
}

// -------------------------------------------------------------- waxman

TEST(Waxman, DeterministicAndConnected) {
  const net::topology a = net::make_waxman_topology(24, 9);
  const net::topology b = net::make_waxman_topology(24, 9);
  ASSERT_EQ(a.node_count(), 24u);
  EXPECT_EQ(a.links().size(), b.links().size());
  for (net::node_id v = 1; v < a.node_count(); ++v) {
    EXPECT_FALSE(a.shortest_path(0, v).empty()) << "node " << v;
  }
}

TEST(Waxman, MoreAlphaMoreLinks) {
  const net::topology sparse = net::make_waxman_topology(32, 5, 0.1, 0.25);
  const net::topology dense = net::make_waxman_topology(32, 5, 0.9, 0.25);
  EXPECT_GT(dense.links().size(), sparse.links().size());
}

TEST(Waxman, Validation) {
  EXPECT_THROW((void)net::make_waxman_topology(1, 1), std::invalid_argument);
  EXPECT_THROW((void)net::make_waxman_topology(8, 1, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace onfiber
