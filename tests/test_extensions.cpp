// Tests for the paper's §4/§5 extension features: distributed compute
// chains, WDM-parallel engines, chip-area model, noise-mitigation
// averaging.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "photonics/area.hpp"
#include "photonics/engine/wdm_engine.hpp"
#include "photonics/rng.hpp"

namespace onfiber {
namespace {

// ------------------------------------------------------------- chains

TEST(Chains, HeaderStageFieldsRoundTrip) {
  proto::compute_header h;
  h.primitive = proto::primitive_id::p1_dot_product;
  h.stage2 = proto::primitive_id::p3_nonlinear;
  h.stage3 = proto::primitive_id::p2_pattern_match;
  const auto r = proto::parse(proto::serialize(h));
  ASSERT_TRUE(r);
  EXPECT_EQ(r.header.stage2, proto::primitive_id::p3_nonlinear);
  EXPECT_EQ(r.header.stage3, proto::primitive_id::p2_pattern_match);
  EXPECT_TRUE(r.header.has_more_stages());
}

TEST(Chains, BadStagePrimitiveRejected) {
  auto wire = proto::serialize(proto::compute_header{});
  wire[18] = 200;  // invalid stage2
  // Recompute nothing: corruption must be rejected (primitive check or
  // checksum — either way the parse fails).
  EXPECT_FALSE(proto::parse(wire));
}

TEST(Chains, AdvanceStagePromotes) {
  proto::compute_header h;
  h.primitive = proto::primitive_id::p1_dot_product;
  h.stage2 = proto::primitive_id::p3_nonlinear;
  h.input_offset = 0;
  h.input_length = 16;
  h.result_offset = 16;
  h.advance_stage(8);
  EXPECT_EQ(h.primitive, proto::primitive_id::p3_nonlinear);
  EXPECT_EQ(h.stage2, proto::primitive_id::none);
  EXPECT_EQ(h.input_offset, 16);
  EXPECT_EQ(h.input_length, 8);
  EXPECT_EQ(h.result_offset, 24);
  EXPECT_FALSE(h.has_more_stages());
}

TEST(Chains, BuilderValidation) {
  const std::vector<double> x(4, 0.5);
  const net::ipv4 a(1, 0, 0, 1), b(2, 0, 0, 1);
  std::vector<proto::primitive_id> empty;
  EXPECT_THROW((void)core::make_chain_request(a, b, empty, x, 8),
               std::invalid_argument);
  std::vector<proto::primitive_id> too_many(4,
                                            proto::primitive_id::p3_nonlinear);
  EXPECT_THROW((void)core::make_chain_request(a, b, too_many, x, 8),
               std::invalid_argument);
  std::vector<proto::primitive_id> has_none{proto::primitive_id::none};
  EXPECT_THROW((void)core::make_chain_request(a, b, has_none, x, 8),
               std::invalid_argument);
}

TEST(Chains, GemvThenNonlinearOnOneEngine) {
  // One engine supports both stages: it must execute stage 1, promote,
  // and on a second pass execute stage 2, then mark the result final.
  core::photonic_engine engine({}, 7);
  core::gemv_task task;
  task.weights = phot::matrix(4, 8);
  for (double& w : task.weights.data) w = 0.5;
  task.relu_output = true;
  engine.configure_gemv(task);

  const std::vector<double> x(8, 0.5);
  const std::vector<proto::primitive_id> stages{
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p3_nonlinear};
  net::packet pkt = core::make_chain_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), stages, x,
      /*result_capacity=*/4 + 4);

  // Stage 1: GEMV.
  const auto rep1 = engine.process(pkt);
  ASSERT_TRUE(rep1.computed);
  auto h = proto::peek_compute_header(pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(h->has_result());  // chain not finished
  EXPECT_EQ(h->primitive, proto::primitive_id::p3_nonlinear);
  EXPECT_EQ(h->hops, 1);
  EXPECT_EQ(h->input_length, 4);  // stage-1 output became the input

  // Stage 2: nonlinear.
  const auto rep2 = engine.process(pkt);
  ASSERT_TRUE(rep2.computed);
  h = proto::peek_compute_header(pkt);
  EXPECT_TRUE(h->has_result());
  EXPECT_EQ(h->hops, 2);

  // Final result: P3 activations of the normalized GEMV outputs.
  const auto result = core::read_nonlinear_result(pkt);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 4u);
  // GEMV output per row = 8 * 0.5 * 0.5 / scale(8) = 0.25 (unit coded);
  // P3(0.25) ~ 0.25 * sin^2(pi/8) ~ 0.037.
  for (const double y : *result) EXPECT_NEAR(y, 0.037, 0.05);
}

TEST(Chains, DistributedAcrossTwoSites) {
  // Stage 1 (P1) only at site B, stage 2 (P3) available everywhere; the
  // packet must be computed at B, promoted, then finished at the next
  // capable site on the way to D.
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(2, 4);
  for (double& w : task.weights.data) w = 0.6;
  task.relu_output = true;
  rt.deploy_engine(1, {}, 21).configure_gemv(task);  // B: P1 (+P3 built-in)
  rt.deploy_engine(2, {}, 22);                       // C: P3 only
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x{0.5, 0.5, 0.5, 0.5};
  const std::vector<proto::primitive_id> stages{
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p3_nonlinear};
  rt.submit(core::make_chain_request(rt.fabric().topo().node_at(0).address,
                                     rt.fabric().topo().node_at(3).address,
                                     stages, x, 8),
            0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  const auto h = proto::peek_compute_header(rt.deliveries()[0].pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->has_result());
  EXPECT_EQ(h->hops, 2);  // two stages executed
  EXPECT_EQ(rt.stats().computed, 2u);
  EXPECT_EQ(rt.stats().uncomputed_delivered, 0u);
  EXPECT_TRUE(core::read_nonlinear_result(rt.deliveries()[0].pkt).has_value());
}

TEST(Chains, InsufficientCapacityNotComputed) {
  core::photonic_engine engine({}, 9);
  core::gemv_task task;
  task.weights = phot::matrix(4, 8);
  engine.configure_gemv(task);
  const std::vector<double> x(8, 0.5);
  const std::vector<proto::primitive_id> stages{
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p3_nonlinear};
  // Only 4 bytes of result capacity: stage 1 fits, stage 2 does not.
  net::packet pkt = core::make_chain_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), stages, x, 4);
  ASSERT_TRUE(engine.process(pkt).computed);  // stage 1 ok
  EXPECT_FALSE(engine.process(pkt).computed); // stage 2 cannot fit
}

// --------------------------------------------------------- WDM engine

TEST(WdmEngine, MatchesSingleLaneValues) {
  phot::matrix w(8, 16);
  phot::rng g(31);
  for (double& v : w.data) v = g.uniform(-1.0, 1.0);
  std::vector<double> x(16);
  for (double& v : x) v = g.uniform(-1.0, 1.0);
  const auto exact = phot::gemv_reference(w, x);

  phot::wdm_gemv_engine engine({}, 4, 77);
  const auto y = engine.gemv_signed(w, x);
  ASSERT_EQ(y.values.size(), 8u);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(y.values[r], exact[r], 0.5) << "row " << r;
  }
}

TEST(WdmEngine, LatencyShrinksWithLanes) {
  phot::matrix w(16, 32);
  for (double& v : w.data) v = 0.3;
  const std::vector<double> x(32, 0.4);
  double prev_latency = 1e9;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
    phot::wdm_gemv_engine engine({}, lanes, 99);
    const auto y = engine.gemv_signed(w, x);
    EXPECT_LT(y.latency_s, prev_latency);
    prev_latency = y.latency_s;
  }
}

TEST(WdmEngine, LatencyScalesInversely) {
  phot::matrix w(16, 64);
  for (double& v : w.data) v = 0.3;
  const std::vector<double> x(64, 0.4);
  phot::wdm_gemv_engine one({}, 1, 5);
  phot::wdm_gemv_engine sixteen({}, 16, 5);
  const double t1 = one.gemv_signed(w, x).latency_s;
  const double t16 = sixteen.gemv_signed(w, x).latency_s;
  // 16 lanes, 16 rows: each lane does exactly one row.
  EXPECT_NEAR(t1 / t16, 16.0, 1.0);
}

TEST(WdmEngine, NonDivisibleRowsBalanceRoundRobin) {
  // 7 rows over 3 lanes: lanes get 3/2/2 rows; latency equals the
  // 3-row lane's serial time, not 7 rows.
  phot::matrix w(7, 16);
  for (double& v : w.data) v = 0.3;
  const std::vector<double> x(16, 0.4);
  phot::wdm_gemv_engine three({}, 3, 5);
  phot::wdm_gemv_engine one({}, 1, 5);
  const double t3 = three.gemv_signed(w, x).latency_s;
  const double t1 = one.gemv_signed(w, x).latency_s;
  EXPECT_NEAR(t1 / t3, 7.0 / 3.0, 0.05);
}

TEST(WdmEngine, Validation) {
  EXPECT_THROW(phot::wdm_gemv_engine({}, 0, 1), std::invalid_argument);
  EXPECT_THROW(phot::wdm_gemv_engine({}, 2, 1, nullptr, {}, +3.0),
               std::invalid_argument);
  phot::wdm_gemv_engine engine({}, 2, 1);
  const phot::matrix w(2, 4);
  const std::vector<double> x(3, 0.0);
  EXPECT_THROW((void)engine.gemv_signed(w, x), std::invalid_argument);
  EXPECT_GT(engine.peak_mac_rate(), 0.0);
}

TEST(WdmEngine, CrosstalkPerturbsNeighbors) {
  // Row 0 large, row 1 zero: with strong crosstalk row 1 reads a leak of
  // row 0; with -100 dB it reads ~0.
  phot::matrix w(2, 8);
  for (std::size_t c = 0; c < 8; ++c) w.at(0, c) = 1.0;  // row 1 all zero
  const std::vector<double> x(8, 1.0);

  phot::wdm_gemv_engine clean({}, 2, 9, nullptr, {}, -100.0);
  phot::wdm_gemv_engine leaky({}, 2, 9, nullptr, {}, -13.0);  // ~5% leak
  const auto yc = clean.gemv_signed(w, x);
  const auto yl = leaky.gemv_signed(w, x);
  EXPECT_NEAR(yc.values[1], 0.0, 0.1);
  EXPECT_NEAR(yl.values[1], 0.05 * yl.values[0], 0.15);
  EXPECT_GT(std::abs(yl.values[1]), std::abs(yc.values[1]));
}

TEST(WdmEngine, RealisticCrosstalkNegligible) {
  // At -30 dB (AWG-class isolation) accuracy is indistinguishable.
  phot::matrix w(8, 16);
  phot::rng g(11);
  for (double& v : w.data) v = g.uniform(-1.0, 1.0);
  std::vector<double> x(16);
  for (double& v : x) v = g.uniform(-1.0, 1.0);
  phot::wdm_gemv_engine clean({}, 4, 13, nullptr, {}, -100.0);
  phot::wdm_gemv_engine awg({}, 4, 13, nullptr, {}, -30.0);
  const auto yc = clean.gemv_signed(w, x);
  const auto ya = awg.gemv_signed(w, x);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(ya.values[r], yc.values[r], 0.05);
  }
}

// ----------------------------------------------------------- area model

TEST(Area, ComponentCompositionsAddUp) {
  const phot::component_areas c;
  EXPECT_NEAR(phot::p1_lane_area_mm2(c),
              c.laser_mm2 + 2 * c.mzm_modulator_mm2 + c.photodetector_mm2 +
                  c.tia_mm2 + 2 * c.dac_mm2 + c.adc_mm2,
              1e-12);
  EXPECT_GT(phot::p2_correlator_area_mm2(c), 0.0);
  EXPECT_GT(phot::p3_unit_area_mm2(c), 0.0);
}

TEST(Area, EngineGrowsWithLanes) {
  const double a1 = phot::engine_area_mm2(1, 64.0);
  const double a8 = phot::engine_area_mm2(8, 64.0);
  EXPECT_GT(a8, a1);
  EXPECT_NEAR(a8 - a1, 7.0 * phot::p1_lane_area_mm2(), 1e-9);
}

TEST(Area, FormFactorOrdering) {
  // Bigger modules fit more lanes.
  const std::size_t in_qsfp = phot::max_lanes(phot::qsfp_dd, 64.0);
  const std::size_t in_osfp = phot::max_lanes(phot::osfp, 64.0);
  const std::size_t in_cfp2 = phot::max_lanes(phot::cfp2, 64.0);
  EXPECT_GT(in_qsfp, 0u);  // at least one lane fits a QSFP-DD
  EXPECT_LE(in_qsfp, in_osfp);
  EXPECT_LE(in_osfp, in_cfp2);
}

TEST(Area, FitsIsConsistentWithMaxLanes) {
  const std::size_t lanes = phot::max_lanes(phot::qsfp_dd, 64.0);
  EXPECT_TRUE(phot::fits(phot::qsfp_dd, lanes, 64.0));
  EXPECT_FALSE(phot::fits(phot::qsfp_dd, lanes + 1, 64.0));
}

// ----------------------------------------------------- noise averaging

TEST(Averaging, ReducesError) {
  // At low optical power the analog noise dominates; averaging K
  // evaluations must shrink the RMS error roughly as 1/sqrt(K).
  phot::dot_product_config cfg;
  cfg.laser.power_mw = 0.05;
  cfg.dac.bits = 12;
  cfg.adc.bits = 12;
  phot::rng g(41);
  std::vector<double> a(32), b(32);
  for (double& v : a) v = g.uniform();
  for (double& v : b) v = g.uniform();
  const double exact =
      std::inner_product(a.begin(), a.end(), b.begin(), 0.0);

  const auto rms = [&](int repeats) {
    phot::dot_product_unit unit(cfg, 43);
    double sq = 0.0;
    constexpr int trials = 40;
    for (int t = 0; t < trials; ++t) {
      const auto r = unit.dot_unit_range_averaged(a, b, repeats);
      sq += (r.value - exact) * (r.value - exact);
    }
    return std::sqrt(sq / trials);
  };
  const double e1 = rms(1);
  const double e16 = rms(16);
  EXPECT_LT(e16, e1 / 2.0);  // >= 2x improvement (ideal would be 4x)
}

TEST(Averaging, LatencyScalesWithRepeats) {
  phot::dot_product_unit unit({}, 47);
  const std::vector<double> a(16, 0.5);
  const auto r1 = unit.dot_unit_range_averaged(a, a, 1);
  const auto r8 = unit.dot_unit_range_averaged(a, a, 8);
  EXPECT_NEAR(r8.latency_s / r1.latency_s, 8.0, 0.01);
  EXPECT_EQ(r8.symbols, 8u * 16u);
}

TEST(Averaging, RejectsBadRepeats) {
  phot::dot_product_unit unit({}, 49);
  const std::vector<double> a(4, 0.5);
  EXPECT_THROW((void)unit.dot_unit_range_averaged(a, a, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace onfiber
