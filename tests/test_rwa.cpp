// Tests for routing and wavelength assignment (controller/rwa).
#include "controller/rwa.hpp"

#include <gtest/gtest.h>

#include "photonics/rng.hpp"

namespace onfiber::ctrl {
namespace {

lightpath_request make_req(std::uint32_t id,
                           std::vector<net::node_id> path) {
  lightpath_request r;
  r.id = id;
  r.path = std::move(path);
  return r;
}

TEST(Rwa, DisjointPathsShareWavelengthZero) {
  const net::topology topo = net::make_linear_topology(5, 50.0);
  // 0-1 and 3-4 are link-disjoint: both get wavelength 0.
  const std::vector<lightpath_request> reqs{make_req(0, {0, 1}),
                                            make_req(1, {3, 4})};
  const rwa_result r = assign_wavelengths_first_fit(topo, reqs);
  EXPECT_EQ(r.wavelengths_used, 1);
  EXPECT_EQ(r.blocked, 0u);
  EXPECT_EQ(r.assignments[0].wavelength, 0);
  EXPECT_EQ(r.assignments[1].wavelength, 0);
  EXPECT_TRUE(assignment_is_conflict_free(topo, reqs, r));
}

TEST(Rwa, OverlappingPathsGetDistinctWavelengths) {
  const net::topology topo = net::make_linear_topology(4, 50.0);
  // Both cross link 1-2.
  const std::vector<lightpath_request> reqs{make_req(0, {0, 1, 2}),
                                            make_req(1, {1, 2, 3})};
  const rwa_result r = assign_wavelengths_first_fit(topo, reqs);
  EXPECT_EQ(r.wavelengths_used, 2);
  EXPECT_NE(r.assignments[0].wavelength, r.assignments[1].wavelength);
  EXPECT_TRUE(assignment_is_conflict_free(topo, reqs, r));
  EXPECT_EQ(r.max_congestion, 2u);
}

TEST(Rwa, ContinuityConstraintCosts) {
  // The classic RWA pathology: wavelength continuity can need more
  // wavelengths than max congestion... but first-fit on a chain with
  // nested paths stays at the bound here; verify the bound holds.
  const net::topology topo = net::make_linear_topology(6, 50.0);
  std::vector<lightpath_request> reqs;
  reqs.push_back(make_req(0, {0, 1, 2, 3}));
  reqs.push_back(make_req(1, {2, 3, 4}));
  reqs.push_back(make_req(2, {3, 4, 5}));
  reqs.push_back(make_req(3, {0, 1}));
  const rwa_result r = assign_wavelengths_first_fit(topo, reqs);
  EXPECT_EQ(r.blocked, 0u);
  EXPECT_GE(static_cast<std::size_t>(r.wavelengths_used),
            r.max_congestion);
  EXPECT_TRUE(assignment_is_conflict_free(topo, reqs, r));
}

TEST(Rwa, BlocksWhenGridExhausted) {
  const net::topology topo = net::make_linear_topology(3, 50.0);
  std::vector<lightpath_request> reqs;
  for (std::uint32_t i = 0; i < 4; ++i) {
    reqs.push_back(make_req(i, {0, 1, 2}));
  }
  const rwa_result r = assign_wavelengths_first_fit(topo, reqs, 2);
  EXPECT_EQ(r.blocked, 2u);
  EXPECT_EQ(r.wavelengths_used, 2);
  EXPECT_TRUE(assignment_is_conflict_free(topo, reqs, r));
}

TEST(Rwa, Validation) {
  const net::topology topo = net::make_linear_topology(3, 50.0);
  EXPECT_THROW(
      (void)assign_wavelengths_first_fit(topo, {make_req(0, {0, 1})}, 0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)assign_wavelengths_first_fit(topo, {make_req(0, {0})}, 8),
      std::invalid_argument);
  // Non-adjacent hop.
  EXPECT_THROW(
      (void)assign_wavelengths_first_fit(topo, {make_req(0, {0, 2})}, 8),
      std::invalid_argument);
}

TEST(Rwa, FuzzConflictFreeOnWaxman) {
  const net::topology topo = net::make_waxman_topology(16, 5);
  phot::rng g(9);
  std::vector<lightpath_request> reqs;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const auto src = static_cast<net::node_id>(g.below(16));
    net::node_id dst;
    do {
      dst = static_cast<net::node_id>(g.below(16));
    } while (dst == src);
    auto path = topo.shortest_path(src, dst);
    if (path.size() >= 2) reqs.push_back(make_req(i, std::move(path)));
  }
  const rwa_result r = assign_wavelengths_first_fit(topo, reqs);
  EXPECT_TRUE(assignment_is_conflict_free(topo, reqs, r));
  EXPECT_GE(static_cast<std::size_t>(r.wavelengths_used), r.max_congestion);
  // First-fit stays within the classic ~2x-of-bound regime on these sizes.
  EXPECT_LE(static_cast<std::size_t>(r.wavelengths_used),
            2 * r.max_congestion + 1);
}

TEST(Rwa, LightpathsFollowAllocation) {
  net::topology topo = net::make_figure1_topology();
  allocation_problem p;
  p.topo = &topo;
  p.transponders = {
      {0, 2, {proto::primitive_id::p1_p3_dnn}, 1e6},  // site C
  };
  compute_demand d;
  d.id = 7;
  d.src = 0;
  d.dst = 3;
  d.chain = {proto::primitive_id::p1_p3_dnn};
  p.demands = {d};
  const allocation_result alloc = solve_greedy(p);
  ASSERT_TRUE(alloc.assignments[0].satisfied);
  const auto paths = lightpaths_for_allocation(p, alloc);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].id, 7u);
  // A -> C -> D via direct links.
  EXPECT_EQ(paths[0].path, (std::vector<net::node_id>{0, 2, 3}));
  const rwa_result r = assign_wavelengths_first_fit(topo, paths);
  EXPECT_EQ(r.blocked, 0u);
  EXPECT_TRUE(assignment_is_conflict_free(topo, paths, r));
}

}  // namespace
}  // namespace onfiber::ctrl
