// Tests for the P1 photonic dot-product unit (Fig. 2a).
#include "photonics/engine/dot_product_unit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "photonics/rng.hpp"

namespace onfiber::phot {
namespace {

std::vector<double> random_unit_vector(std::size_t n, rng& g) {
  std::vector<double> v(n);
  for (double& x : v) x = g.uniform();
  return v;
}

double exact_dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

TEST(DotProduct, SmallExactCase) {
  dot_product_unit u({}, 1);
  const std::vector<double> a{1.0, 0.0, 1.0, 0.0};
  const std::vector<double> b{1.0, 1.0, 0.0, 0.0};
  const dot_result r = u.dot_unit_range(a, b);
  EXPECT_NEAR(r.value, 1.0, 0.1);
}

TEST(DotProduct, AllOnes) {
  dot_product_unit u({}, 2);
  const std::vector<double> ones(16, 1.0);
  const dot_result r = u.dot_unit_range(ones, ones);
  EXPECT_NEAR(r.value, 16.0, 0.6);
}

TEST(DotProduct, AllZeros) {
  dot_product_unit u({}, 3);
  const std::vector<double> zeros(16, 0.0);
  const dot_result r = u.dot_unit_range(zeros, zeros);
  EXPECT_NEAR(r.value, 0.0, 0.3);
}

TEST(DotProduct, ThrowsOnMismatchedSizes) {
  dot_product_unit u({}, 4);
  const std::vector<double> a(4, 0.5), b(5, 0.5);
  EXPECT_THROW((void)u.dot_unit_range(a, b), std::invalid_argument);
}

TEST(DotProduct, ThrowsOnEmpty) {
  dot_product_unit u({}, 5);
  const std::vector<double> e;
  EXPECT_THROW((void)u.dot_unit_range(e, e), std::invalid_argument);
}

TEST(DotProduct, DeterministicPerSeed) {
  const std::vector<double> a{0.2, 0.8, 0.5, 0.9};
  const std::vector<double> b{0.7, 0.1, 0.6, 0.4};
  dot_product_unit u1({}, 42), u2({}, 42);
  EXPECT_DOUBLE_EQ(u1.dot_unit_range(a, b).value,
                   u2.dot_unit_range(a, b).value);
}

TEST(DotProduct, LatencyAndSymbols) {
  dot_product_config cfg;
  cfg.symbol_rate_hz = 10e9;
  cfg.fixed_latency_s = 5e-9;
  dot_product_unit u(cfg, 6);
  const std::vector<double> a(100, 0.5);
  const dot_result r = u.dot_unit_range(a, a);
  EXPECT_EQ(r.symbols, 100u);
  EXPECT_NEAR(r.latency_s, 100.0 / 10e9 + 5e-9, 1e-12);
}

TEST(DotProduct, SignedFourPass) {
  dot_product_unit u({}, 7);
  const std::vector<double> a{0.5, -0.5, 1.0, -1.0};
  const std::vector<double> b{-1.0, -1.0, 0.5, 0.5};
  const dot_result r = u.dot_signed(a, b);
  EXPECT_NEAR(r.value, exact_dot(a, b), 0.15);
  EXPECT_EQ(r.symbols, 16u);  // 4 passes x 4 elements
}

TEST(DotProduct, OpticalInputMatchesElectrical) {
  dot_product_unit u({}, 8);
  rng g(100);
  const auto a = random_unit_vector(32, g);
  const auto b = random_unit_vector(32, g);
  const waveform wave = u.encode_to_optical(a);
  const double ref_mw =
      u.config().laser.power_mw *
      db_to_ratio(-u.config().modulator.insertion_loss_db);
  const dot_result r = u.dot_with_optical_input(wave, b, ref_mw);
  EXPECT_NEAR(r.value, exact_dot(a, b), 0.06 * 32);
}

TEST(DotProduct, OpticalInputValidation) {
  dot_product_unit u({}, 9);
  const std::vector<double> b(4, 0.5);
  const waveform wave(4, make_field(1.0));
  EXPECT_THROW((void)u.dot_with_optical_input(wave, b, 0.0),
               std::invalid_argument);
  const waveform short_wave(3, make_field(1.0));
  EXPECT_THROW((void)u.dot_with_optical_input(short_wave, b, 1.0),
               std::invalid_argument);
}

TEST(DotProduct, ChargesPhotonicMacEnergy) {
  energy_ledger ledger;
  dot_product_unit u({}, 10, &ledger);
  const std::vector<double> a(64, 0.5);
  (void)u.dot_unit_range(a, a);
  EXPECT_EQ(ledger.ops("photonic_mac"), 64u);
  EXPECT_GT(ledger.ops("dac"), 0u);
  EXPECT_EQ(ledger.ops("adc"), 1u);  // one readout per dot product
}

// Property: relative error stays within the quantization + noise budget
// across dimensions and converter resolutions.
class DotAccuracy
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DotAccuracy, ErrorBoundedByConverterBudget) {
  const auto [dim, bits] = GetParam();
  dot_product_config cfg;
  cfg.dac.bits = bits;
  cfg.adc.bits = bits;
  dot_product_unit u(cfg, 1000 + static_cast<std::uint64_t>(dim) * 37 +
                              static_cast<std::uint64_t>(bits));
  rng g(2000 + static_cast<std::uint64_t>(dim));
  double worst = 0.0;
  constexpr int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto a = random_unit_vector(dim, g);
    const auto b = random_unit_vector(dim, g);
    const dot_result r = u.dot_unit_range(a, b);
    worst = std::max(worst, std::abs(r.value - exact_dot(a, b)));
  }
  // Error budget: element-wise quantization (2 converters) accumulated
  // over n symbols plus the readout ADC quantizing a value of scale n.
  const double lsb = 1.0 / (std::pow(2.0, bits) - 1.0);
  const double n = static_cast<double>(dim);
  const double budget = 3.0 * (n * lsb * 0.75 + n * lsb) / 2.0 + 0.05 * n * lsb + 0.2;
  EXPECT_LT(worst, budget) << "dim=" << dim << " bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBits, DotAccuracy,
    ::testing::Combine(::testing::Values<std::size_t>(4, 16, 64, 256),
                       ::testing::Values(6, 8, 10)));

// Property: accuracy improves with optical power (shot-noise limit).
TEST(DotProduct, AccuracyImprovesWithPower) {
  rng g(3000);
  const auto a = random_unit_vector(64, g);
  const auto b = random_unit_vector(64, g);
  const double exact = exact_dot(a, b);

  const auto rms_error = [&](double power_mw_value) {
    dot_product_config cfg;
    cfg.laser.power_mw = power_mw_value;
    cfg.adc.bits = 14;  // converter fine enough to expose analog noise
    cfg.dac.bits = 14;
    cfg.adc.enob_penalty = 0.0;
    cfg.dac.enob_penalty = 0.0;
    cfg.laser.enable_rin = false;
    dot_product_unit u(cfg, 4000);
    double sq = 0.0;
    constexpr int trials = 40;
    for (int t = 0; t < trials; ++t) {
      const dot_result r = u.dot_unit_range(a, b);
      sq += (r.value - exact) * (r.value - exact);
    }
    return std::sqrt(sq / trials);
  };

  const double weak = rms_error(0.01);   // 10 uW: noise dominated
  const double strong = rms_error(10.0); // 10 mW
  EXPECT_LT(strong, weak);
}

}  // namespace
}  // namespace onfiber::phot
