// Tests for batched inference (header `batch` field): one packet carries
// many samples, amortizing the per-packet overheads at a compute site.
#include <gtest/gtest.h>

#include "apps/ml_inference.hpp"
#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "digital/dnn.hpp"

namespace onfiber {
namespace {

digital::dnn_model trained_model(const digital::dataset& data) {
  return digital::train_mlp(data, {12}, 40, 0.08, 11,
                            digital::activation_kind::photonic_sin2, 2.0);
}

TEST(Batching, HeaderFieldRoundTrips) {
  proto::compute_header h;
  h.batch = 17;
  const auto r = proto::parse(proto::serialize(h));
  ASSERT_TRUE(r);
  EXPECT_EQ(r.header.batch, 17);
  // A zero on the wire reads back as 1 (legacy packets pre-batching).
  proto::compute_header legacy;
  legacy.batch = 0;
  EXPECT_EQ(proto::parse(proto::serialize(legacy)).header.batch, 1);
}

TEST(Batching, BatchedDnnMatchesSingles) {
  const auto data = digital::make_synthetic_dataset(16, 4, 2, 0.08, 7);
  const auto model = trained_model(data);

  // Batched: 8 samples in one packet.
  std::vector<double> flat;
  for (const auto& s : data.samples) flat.insert(flat.end(), s.begin(), s.end());
  core::photonic_engine batched_engine({}, 99);
  batched_engine.configure_dnn(apps::to_photonic_task(model));
  net::packet pkt = core::make_dnn_batch_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), flat, 16,
      model.output_dim());
  ASSERT_TRUE(batched_engine.process(pkt).computed);
  const auto batch = core::read_dnn_batch_result(pkt);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), data.samples.size());

  // Singles on an identically seeded engine.
  core::photonic_engine single_engine({}, 99);
  single_engine.configure_dnn(apps::to_photonic_task(model));
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    net::packet one = core::make_dnn_request(
        net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), data.samples[i],
        model.output_dim());
    ASSERT_TRUE(single_engine.process(one).computed);
    const auto r = core::read_dnn_result(one);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ((*batch)[i].predicted_class, r->predicted_class)
        << "sample " << i;
  }
}

TEST(Batching, FirstSampleReaderWorksOnBatch) {
  const auto data = digital::make_synthetic_dataset(16, 4, 3, 0.08, 7);
  const auto model = trained_model(data);
  std::vector<double> flat;
  for (const auto& s : data.samples) flat.insert(flat.end(), s.begin(), s.end());
  core::photonic_engine engine({}, 5);
  engine.configure_dnn(apps::to_photonic_task(model));
  net::packet pkt = core::make_dnn_batch_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), flat, 16,
      model.output_dim());
  ASSERT_TRUE(engine.process(pkt).computed);
  const auto first = core::read_dnn_result(pkt);
  const auto all = core::read_dnn_batch_result(pkt);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(first->predicted_class, (*all)[0].predicted_class);
  EXPECT_EQ(first->logits.size(), (*all)[0].logits.size());
}

TEST(Batching, GemvBatchComputesEachSample) {
  core::photonic_engine engine({}, 7);
  core::gemv_task task;
  task.weights = phot::matrix(1, 2);
  task.weights.at(0, 0) = 1.0;
  engine.configure_gemv(task);
  // Two samples: [0.8, 0] and [-0.6, 0].
  net::packet pkt = core::make_gemv_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1),
      std::vector<double>{0.8, 0.0, -0.6, 0.0}, 2);
  auto h = proto::peek_compute_header(pkt);
  h->batch = 2;
  ASSERT_TRUE(proto::rewrite_compute_header(pkt, *h));
  ASSERT_TRUE(engine.process(pkt).computed);
  const auto result = core::read_gemv_result(pkt);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_NEAR((*result)[0], 0.8, 0.15);
  EXPECT_NEAR((*result)[1], -0.6, 0.15);
}

TEST(Batching, WrongSizeRejected) {
  const auto data = digital::make_synthetic_dataset(16, 4, 2, 0.08, 7);
  const auto model = trained_model(data);
  core::photonic_engine engine({}, 9);
  engine.configure_dnn(apps::to_photonic_task(model));
  net::packet pkt = core::make_dnn_batch_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1),
      std::vector<double>(32, 0.5), 16, model.output_dim());
  auto h = proto::peek_compute_header(pkt);
  h->batch = 3;  // claims 3 samples, carries 2
  ASSERT_TRUE(proto::rewrite_compute_header(pkt, *h));
  EXPECT_FALSE(engine.process(pkt).computed);
}

TEST(Batching, BuilderValidation) {
  EXPECT_THROW((void)core::make_dnn_batch_request(
                   net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1),
                   std::vector<double>(10, 0.5), 16, 4),
               std::invalid_argument);  // not a multiple of in_dim
  EXPECT_THROW((void)core::make_dnn_batch_request(
                   net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1),
                   std::vector<double>(16 * 300, 0.5), 16, 4),
               std::invalid_argument);  // batch > 255
}

TEST(Batching, AmortizesSiteOverheadOnTheWan) {
  // 16 samples as 16 packets vs 1 batched packet: the batch spends far
  // less wall-clock at the site (one preamble + one queueing slot).
  const auto data = digital::make_synthetic_dataset(16, 4, 4, 0.08, 7);
  const auto model = trained_model(data);
  std::vector<double> flat;
  for (const auto& s : data.samples) flat.insert(flat.end(), s.begin(), s.end());

  const auto run = [&](bool batched) {
    net::simulator sim;
    core::onfiber_runtime rt(sim, net::make_figure1_topology());
    rt.deploy_engine(1, {}, 42).configure_dnn(apps::to_photonic_task(model));
    rt.install_compute_routes_via_nearest_site();
    const net::ipv4 src = rt.fabric().topo().node_at(0).address;
    const net::ipv4 dst = rt.fabric().topo().node_at(3).address;
    if (batched) {
      rt.submit(core::make_dnn_batch_request(src, dst, flat, 16,
                                             model.output_dim()),
                0);
    } else {
      for (const auto& s : data.samples) {
        rt.submit(core::make_dnn_request(src, dst, s, model.output_dim()),
                  0);
      }
    }
    sim.run();
    std::size_t results = 0;
    for (const auto& d : rt.deliveries()) {
      const auto all = core::read_dnn_batch_result(d.pkt);
      if (all) results += all->size();
    }
    return std::pair(results, rt.site_busy_s(1));
  };

  const auto [n_single, busy_single] = run(false);
  const auto [n_batch, busy_batch] = run(true);
  EXPECT_EQ(n_single, 16u);
  EXPECT_EQ(n_batch, 16u);
  // Same analog compute, but 15 fewer preamble/insertion overheads.
  EXPECT_LT(busy_batch, busy_single);
}

TEST(Batching, SiteBatchingPoolsArrivingPackets) {
  // Site batching (runtime opt-in): 16 per-sample packets arriving within
  // the window execute as ONE process_batch() flush — all samples pool
  // into layer-major GEMMs and the site pays the preamble/insertion
  // overhead once — versus 16 serial engine runs without it.
  const auto data = digital::make_synthetic_dataset(16, 4, 4, 0.08, 7);
  const auto model = trained_model(data);

  const auto run = [&](bool batching) {
    net::simulator sim;
    core::onfiber_runtime rt(sim, net::make_figure1_topology());
    rt.deploy_engine(1, {}, 42).configure_dnn(apps::to_photonic_task(model));
    rt.install_compute_routes_via_nearest_site();
    if (batching) rt.enable_site_batching(50e-6);
    const net::ipv4 src = rt.fabric().topo().node_at(0).address;
    const net::ipv4 dst = rt.fabric().topo().node_at(3).address;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
      rt.submit(core::make_dnn_request(src, dst, data.samples[i],
                                       model.output_dim(),
                                       static_cast<std::uint32_t>(i)),
                0);
    }
    sim.run();
    std::size_t results = 0;
    for (const auto& d : rt.deliveries()) {
      if (core::read_dnn_result(d.pkt)) ++results;
    }
    return std::tuple(results, rt.site_busy_s(1), rt.stats());
  };

  const auto [n_plain, busy_plain, stats_plain] = run(false);
  const auto [n_batch, busy_batch, stats_batch] = run(true);
  EXPECT_EQ(n_plain, 16u);
  EXPECT_EQ(n_batch, 16u);
  EXPECT_EQ(stats_batch.computed, 16u);
  EXPECT_EQ(stats_batch.uncomputed_delivered, 0u);
  EXPECT_EQ(stats_batch.malformed_dropped, 0u);
  // One flush: 15 fewer site overheads than per-packet processing.
  EXPECT_LT(busy_batch, busy_plain);
}

}  // namespace
}  // namespace onfiber
