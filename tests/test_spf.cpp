// Incremental SPF engine: the delta passes must be provably identical —
// exact double dists, exact parents, exact next hops — to a from-scratch
// rebuild (and to the seed topology::shortest_path Dijkstra) after every
// link event, on chains, meshes, and equal-cost-heavy fat-trees. The
// fabric's patch-based reconvergence must produce bit-identical routing
// tables and flat caches to a fresh full install, and the golden
// delivery/recovery traces must stay unchanged across shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/fabric.hpp"
#include "network/shard_engine.hpp"
#include "network/spf.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Deterministic xorshift64 for randomized flap sequences.
struct xorshift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }
};

/// Every tree of the incrementally maintained engine must bit-match a
/// freshly built engine under the same link state: dist (exact double),
/// parent, parent link, and first hop, for every (source, node) pair.
void expect_trees_match_fresh(net::spf_engine& inc, const net::topology& topo,
                              const std::string& where) {
  net::spf_engine fresh(topo, &inc.links_up());
  const auto n = static_cast<net::node_id>(topo.node_count());
  for (net::node_id s = 0; s < n; ++s) {
    for (net::node_id v = 0; v < n; ++v) {
      const bool same = inc.dist(s, v) == fresh.dist(s, v) &&
                        inc.parent(s, v) == fresh.parent(s, v) &&
                        inc.parent_link(s, v) == fresh.parent_link(s, v) &&
                        inc.first_hop(s, v) == fresh.first_hop(s, v);
      if (!same) {
        ADD_FAILURE() << where << ": tree mismatch at src=" << s
                      << " v=" << v << " dist " << inc.dist(s, v) << " vs "
                      << fresh.dist(s, v) << ", parent " << inc.parent(s, v)
                      << " vs " << fresh.parent(s, v) << ", plink "
                      << inc.parent_link(s, v) << " vs "
                      << fresh.parent_link(s, v) << ", fh "
                      << inc.first_hop(s, v) << " vs "
                      << fresh.first_hop(s, v);
        return;
      }
    }
  }
}

/// Every engine path must equal the seed Dijkstra's path node-for-node,
/// and the engine dist must equal the seed path's delay sum exactly.
void expect_matches_seed(net::spf_engine& eng, const net::topology& topo,
                         const std::string& where) {
  const auto n = static_cast<net::node_id>(topo.node_count());
  const std::vector<bool>& links = eng.links_up();
  for (net::node_id u = 0; u < n; ++u) {
    for (net::node_id v = 0; v < n; ++v) {
      const auto seed = topo.shortest_path(u, v, &links);
      const auto mine = eng.path(u, v);
      if (seed != mine) {
        ADD_FAILURE() << where << ": path mismatch " << u << "->" << v;
        return;
      }
      if (seed.empty()) {
        EXPECT_EQ(eng.dist(u, v), inf) << where << " " << u << "->" << v;
        EXPECT_EQ(eng.first_hop(u, v), net::invalid_node);
      } else {
        // Exact: same float accumulation order as the seed path sum.
        EXPECT_EQ(eng.dist(u, v), topo.path_delay_s(seed))
            << where << " " << u << "->" << v;
        EXPECT_EQ(eng.first_hop(u, v),
                  seed.size() >= 2 ? seed[1] : net::invalid_node);
      }
    }
  }
}

TEST(SpfEngine, MatchesSeedDijkstraAllPairs) {
  for (const auto& [name, topo] :
       {std::pair<std::string, net::topology>{"figure1",
                                              net::make_figure1_topology()},
        {"uswan", net::make_uswan_topology()},
        {"fattree4", net::make_fattree_topology(4)}}) {
    net::spf_engine eng(topo);
    eng.ensure_all_trees();
    expect_matches_seed(eng, topo, name);
  }
}

TEST(SpfEngine, DeltaMatchesFullRebuildUnderRandomFlaps) {
  // Chain (every link is a tree edge everywhere), Waxman mesh (mixed
  // tree/non-tree edges, long detours), small fat-tree (dense equal-cost
  // ties). After every toggle the incremental trees must bit-match a
  // from-scratch build.
  const std::pair<std::string, net::topology> cases[] = {
      {"chain24", net::make_linear_topology(24)},
      {"waxman48", net::make_waxman_topology(48, 7)},
      {"fattree4", net::make_fattree_topology(4)},
  };
  for (const auto& [name, topo] : cases) {
    net::spf_engine eng(topo);
    eng.ensure_all_trees();
    std::vector<bool> up(topo.links().size(), true);
    xorshift rng{0x9e3779b97f4a7c15ull ^ topo.links().size()};
    for (int event = 0; event < 60; ++event) {
      const std::size_t li = rng.below(topo.links().size());
      up[li] = !up[li];
      eng.set_link_state(li, up[li]);
      expect_trees_match_fresh(
          eng, topo, name + " event " + std::to_string(event));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(SpfEngine, EqualCostTieBreaksMatchSeedUnderFailures) {
  // The fat-tree's uniform 100 m links make almost every pair
  // equal-cost-multipath; the canonical (dist, id) argmin must pick the
  // seed heap's parent everywhere, including after failures reshuffle
  // which predecessors are tight.
  const net::topology topo = net::make_fattree_topology(4);
  net::spf_engine eng(topo);
  eng.ensure_all_trees();
  xorshift rng{42};
  std::vector<bool> up(topo.links().size(), true);
  for (int event = 0; event < 12; ++event) {
    const std::size_t li = rng.below(topo.links().size());
    up[li] = !up[li];
    eng.set_link_state(li, up[li]);
    expect_matches_seed(eng, topo, "event " + std::to_string(event));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(SpfEngine, UnreachablePartitionAndHeal) {
  const net::topology topo = net::make_linear_topology(8);
  net::spf_engine eng(topo);
  eng.ensure_all_trees();
  eng.fail_link(3);  // cut between nodes 3 and 4
  for (net::node_id u = 0; u < 4; ++u) {
    for (net::node_id v = 4; v < 8; ++v) {
      EXPECT_EQ(eng.dist(u, v), inf);
      EXPECT_EQ(eng.first_hop(u, v), net::invalid_node);
      EXPECT_TRUE(eng.path(u, v).empty());
      EXPECT_EQ(eng.dist(v, u), inf);
    }
  }
  EXPECT_EQ(eng.dist(0, 3), eng.dist(0, 3));  // intact side still finite
  EXPECT_LT(eng.dist(0, 3), inf);
  eng.restore_link(3);
  expect_trees_match_fresh(eng, topo, "healed");
  expect_matches_seed(eng, topo, "healed");
}

TEST(SpfEngine, ParallelLinksKeepLowestIndexTieBreak) {
  net::topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  topo.add_link(a, b, 100.0);  // link 0
  topo.add_link(a, b, 100.0);  // link 1: equal-cost parallel
  topo.add_link(b, c, 100.0);  // link 2
  net::spf_engine eng(topo);
  eng.ensure_all_trees();
  EXPECT_EQ(eng.parent_link(a, b), 0u);  // lowest-index tight link
  // Failing the preferred parallel link changes no dist and no first
  // hop — only the parent link migrates to the surviving fiber.
  const std::uint64_t touched = eng.fail_link(0);
  EXPECT_EQ(touched, 0u);
  EXPECT_EQ(eng.dirty_count(), 0u);
  EXPECT_EQ(eng.parent_link(a, b), 1u);
  expect_trees_match_fresh(eng, topo, "parallel fail");
  expect_matches_seed(eng, topo, "parallel fail");
  eng.restore_link(0);
  EXPECT_EQ(eng.parent_link(a, b), 0u);
  expect_trees_match_fresh(eng, topo, "parallel restore");
}

TEST(SpfEngine, TouchedCountsAreExactOnChainTailFailure) {
  // Chain of 32: failing the last link strands exactly node 31 in every
  // other tree (31 routes) and every destination in 31's own tree
  // (31 routes) — 62 first-hop changes, nothing else may be touched.
  const net::topology topo = net::make_linear_topology(32);
  net::spf_engine eng(topo);
  eng.ensure_all_trees();
  EXPECT_EQ(eng.fail_link(30), 62u);
  EXPECT_EQ(eng.dirty_count(), 62u);
  EXPECT_EQ(eng.restore_link(30), 62u);
  // The same 62 pairs flipped back — the dirty set is deduplicated.
  EXPECT_EQ(eng.dirty_count(), 62u);
  std::size_t drained = 0;
  eng.drain_dirty([&](net::node_id, net::node_id) { ++drained; });
  EXPECT_EQ(drained, 62u);
  EXPECT_EQ(eng.dirty_count(), 0u);
  expect_trees_match_fresh(eng, topo, "after drain");
}

// ---------------------------------------------------------------------
// Fabric patch-based reconvergence vs fresh full install.

/// Apply `down` links to a freshly constructed fabric and install once
/// (the full-rebuild reference path).
void expect_fabrics_equal(net::wan_fabric& incr, const net::topology& topo,
                          const std::vector<bool>& up,
                          const std::string& where) {
  net::simulator sim;
  net::wan_fabric fresh(sim, topo);
  for (std::size_t li = 0; li < up.size(); ++li) {
    if (!up[li]) fresh.fail_link(li);
  }
  fresh.install_shortest_path_routes();
  const auto n = static_cast<net::node_id>(topo.node_count());
  for (net::node_id at = 0; at < n; ++at) {
    for (net::node_id dst = 0; dst < n; ++dst) {
      if (at == dst) continue;
      // Flat post-convergence caches.
      const net::node_id got = incr.next_hop_to_node(at, dst);
      const net::node_id want = fresh.next_hop_to_node(at, dst);
      // LPM trie routes.
      const auto trie_got = incr.next_hop(at, topo.node_at(dst).address);
      const auto trie_want = fresh.next_hop(at, topo.node_at(dst).address);
      // From-scratch seed Dijkstra under the same link state.
      const auto seed = topo.shortest_path(at, dst, &up);
      const net::node_id seed_hop =
          seed.size() >= 2 ? seed[1] : net::invalid_node;
      if (got != want || trie_got != trie_want || got != seed_hop) {
        ADD_FAILURE() << where << ": route mismatch at=" << at
                      << " dst=" << dst << " patched=" << got
                      << " fresh=" << want << " seed=" << seed_hop;
        return;
      }
    }
  }
}

TEST(RoutingPatch, PatchedTablesMatchFreshInstallUnderFlapSequence) {
  const net::topology topo = net::make_waxman_topology(24, 3);
  net::simulator sim;
  net::wan_fabric fabric(sim, topo);
  fabric.install_shortest_path_routes();
  std::vector<bool> up(topo.links().size(), true);
  xorshift rng{1234567};
  for (int event = 0; event < 40; ++event) {
    const std::size_t li = rng.below(topo.links().size());
    up[li] = !up[li];
    if (up[li]) {
      fabric.restore_link(li);
    } else {
      fabric.fail_link(li);
    }
    fabric.install_shortest_path_routes();
    expect_fabrics_equal(fabric, topo, up, "event " + std::to_string(event));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(RoutingPatch, ReconvergenceWindowSemanticsPreserved) {
  // On figure-1, A->D prefers A-B-D (equal delay to A-C-D; B wins the
  // canonical tie-break). Failing A-B must leave the *installed* route
  // stale until install_shortest_path_routes() — the reconvergence
  // window — even though the engine's trees update eagerly.
  const net::topology topo = net::make_figure1_topology();
  net::simulator sim;
  net::wan_fabric fabric(sim, topo);
  fabric.install_shortest_path_routes();
  ASSERT_EQ(fabric.next_hop_to_node(0, 3), 1u);
  fabric.fail_link(0);  // A-B down
  EXPECT_EQ(fabric.next_hop_to_node(0, 3), 1u)  // datapath still stale
      << "fail_link must not touch installed routes";
  EXPECT_EQ(fabric.spf().first_hop(0, 3), 2u)  // engine already live
      << "engine must reflect live link state eagerly";
  fabric.install_shortest_path_routes();
  EXPECT_EQ(fabric.next_hop_to_node(0, 3), 2u);  // now via C
  fabric.restore_link(0);
  fabric.install_shortest_path_routes();
  EXPECT_EQ(fabric.next_hop_to_node(0, 3), 1u);
}

TEST(RoutingObs, RoutesTouchedAndReconvergeLatencySurface) {
  obs::registry& reg = obs::registry::global();
  obs::counter& touched = reg.get_counter("routing.routes_touched");
  obs::histogram& latency = reg.get_histogram("routing.reconverge_ns");
  const std::uint64_t touched0 = touched.value();
  const std::uint64_t count0 = latency.count();

  obs::set_enabled(true);
  {
    const net::topology topo = net::make_uswan_topology();
    net::simulator sim;
    net::wan_fabric fabric(sim, topo);
    fabric.install_shortest_path_routes();  // full sweep
    fabric.fail_link(0);
    fabric.install_shortest_path_routes();  // delta patch
  }
  obs::set_enabled(false);

  const std::uint64_t full = touched.value() - touched0;
  EXPECT_GT(full, 0u);
  // 12-node uswan: the full install writes all 132 pairs; the single
  // link failure may touch only a strict subset on top.
  EXPECT_GE(full, 132u);
  EXPECT_LT(full, 2u * 132u);
  EXPECT_EQ(latency.count() - count0, 2u);
}

// ---------------------------------------------------------------------
// Golden delivery/recovery traces across shard counts {1, 2, 4}: the
// patch-based reconvergence path must not move a single timestamp.

struct golden_run {
  std::vector<std::uint32_t> delivery_tasks;
  std::vector<double> delivery_times;
  std::vector<core::onfiber_runtime::reliability_event> recovery;
  std::uint64_t delivered = 0;
  std::uint64_t reconvergences = 0;
};

template <class ScheduleAt>
void drive_golden(core::onfiber_runtime& rt, ScheduleAt&& schedule_at) {
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 71).configure_gemv(task);
  rt.deploy_engine(2, {}, 72).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.000, 0.050},  // A-B
      {2, 0.010, 0.060},  // B-D
  };
  rt.fabric().schedule_flaps(flaps, 0.004, /*jitter_seed=*/5,
                             /*reconvergence_jitter_s=*/0.002);

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.020;
  cfg.backoff = 2.0;
  cfg.failover_after = 2;
  rt.enable_reliability(cfg);

  schedule_at(0.0, [&rt] {
    const std::vector<double> x(4, 0.5);
    for (std::uint32_t id = 0; id < 12; ++id) {
      rt.submit_reliable(
          core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                  rt.fabric().topo().node_at(3).address, x,
                                  1, id),
          0);
    }
  });
}

golden_run collect_golden(core::onfiber_runtime& rt) {
  golden_run g;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    g.delivery_tasks.push_back(h ? h->task_id : ~std::uint32_t{0});
    g.delivery_times.push_back(d.time_s);
  }
  g.recovery = rt.recovery_trace();
  g.delivered = rt.fabric().delivered();
  g.reconvergences = rt.fabric().reconvergences();
  return g;
}

golden_run run_golden(std::size_t shards) {
  if (shards == 0) {
    net::simulator sim;
    core::onfiber_runtime rt(sim, net::make_figure1_topology());
    drive_golden(rt, [&sim](double t, auto fn) {
      sim.schedule_at(t, std::move(fn));
    });
    sim.run(5'000'000);
    EXPECT_FALSE(sim.overran());
    return collect_golden(rt);
  }
  net::shard_engine engine(shards);
  core::onfiber_runtime rt(engine, net::make_figure1_topology());
  drive_golden(rt, [&engine](double t, auto fn) {
    engine.schedule_global(t, std::move(fn));
  });
  engine.run(5'000'000);
  EXPECT_FALSE(engine.overran());
  return collect_golden(rt);
}

TEST(RoutingGolden, DeliveryAndRecoveryTracesAcrossShardCounts) {
  const golden_run classic = run_golden(0);
  EXPECT_GT(classic.delivered, 0u);
  EXPECT_EQ(classic.reconvergences, 4u);  // two flaps, fail + restore
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const golden_run got = run_golden(shards);
    EXPECT_EQ(classic.delivery_tasks, got.delivery_tasks);
    // Exact doubles: reconvergence-by-patch may not move a timestamp.
    EXPECT_EQ(classic.delivery_times, got.delivery_times);
    ASSERT_EQ(classic.recovery.size(), got.recovery.size());
    for (std::size_t i = 0; i < classic.recovery.size(); ++i) {
      EXPECT_EQ(static_cast<int>(classic.recovery[i].what),
                static_cast<int>(got.recovery[i].what));
      EXPECT_EQ(classic.recovery[i].task_id, got.recovery[i].task_id);
      EXPECT_EQ(classic.recovery[i].time_s, got.recovery[i].time_s);
      EXPECT_EQ(classic.recovery[i].site, got.recovery[i].site);
    }
    EXPECT_EQ(classic.delivered, got.delivered);
    EXPECT_EQ(classic.reconvergences, got.reconvergences);
  }
}

// ---------------------------------------------------------------------
// Satellite lookups.

TEST(RoutingLookups, NodeForAddressMatchesLinearScan) {
  const net::topology topo = net::make_fattree_topology(8);  // 80 nodes
  for (const net::node& n : topo.nodes()) {
    // The indexed lookup must return what the old first-contains scan
    // returned: the lowest node id whose prefix covers the address.
    net::node_id want = net::invalid_node;
    for (const net::node& m : topo.nodes()) {
      if (m.attached_prefix.contains(n.address)) {
        want = m.id;
        break;
      }
    }
    const auto got = topo.node_for_address(n.address);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(topo.node_for_address(net::ipv4(192, 168, 0, 1)).has_value());
}

TEST(RoutingLookups, LinkBetweenMatchesAdjacencyScanAndInvalidates) {
  net::topology topo = net::make_uswan_topology();
  for (std::size_t li = 0; li < topo.links().size(); ++li) {
    const net::link& l = topo.links()[li];
    EXPECT_EQ(topo.link_between(l.a, l.b), li);
    EXPECT_EQ(topo.link_between(l.b, l.a), li);
  }
  EXPECT_THROW((void)topo.link_between(0, 5), std::invalid_argument);
  // Growing the graph must invalidate the cached maps.
  const auto x = topo.add_node("x");
  topo.add_link(0, x, 10.0);
  EXPECT_EQ(topo.link_between(0, x), topo.links().size() - 1);
  EXPECT_EQ(topo.node_for_address(topo.node_at(x).address).value_or(999), x);
  // Parallel link: lowest index still wins.
  const std::size_t first = topo.link_between(0, x);
  topo.add_link(0, x, 20.0);
  EXPECT_EQ(topo.link_between(0, x), first);
}

}  // namespace
}  // namespace onfiber
