// Property-based tests: parameterized sweeps and randomized invariants
// across the whole stack.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "apps/intrusion_detection.hpp"
#include "apps/ip_routing.hpp"
#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "core/transponder.hpp"
#include "photonics/fiber.hpp"
#include "photonics/rng.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

// --------------------------------------------- transponder BER properties

class TransponderSweep
    : public ::testing::TestWithParam<std::tuple<core::line_coding, double>> {
};

TEST_P(TransponderSweep, BerMonotoneInLoss) {
  const auto [coding, loss_db] = GetParam();
  core::transponder_config cfg;
  cfg.coding = coding;
  core::commodity_transponder t(cfg, 1000 + static_cast<int>(loss_db));
  phot::rng g(7);
  std::vector<std::uint8_t> bytes(256);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(g.below(256));
  auto wave = t.transmit(bytes);
  for (auto& e : wave) e *= phot::field_loss_scale(loss_db);
  const auto r = t.receive(wave, bytes);
  if (loss_db <= 0.25) {
    // Clean link: error free. (PAM-4's top eye closes already around
    // 1 dB of *uncompensated* loss — real links equalize/amplify.)
    EXPECT_EQ(r.symbol_errors, 0u) << "loss " << loss_db;
    EXPECT_EQ(r.bytes, bytes);
  } else if (loss_db >= 14.0) {
    // Deep uncompensated loss: the slicer must fail visibly, never
    // silently pass corrupted data as clean.
    EXPECT_GT(r.symbol_errors, 0u) << "loss " << loss_db;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodingAndLoss, TransponderSweep,
    ::testing::Combine(::testing::Values(core::line_coding::pam2,
                                         core::line_coding::pam4),
                       ::testing::Values(0.0, 0.25, 14.0, 20.0)));

TEST(TransponderProperty, Pam2MoreRobustThanPam4) {
  // At the same uncompensated loss, PAM-2's larger eye must not have a
  // worse symbol-error *rate* (it carries half the bits per symbol).
  const double loss_db = 11.0;
  double rate[2] = {0.0, 0.0};
  int idx = 0;
  for (const auto coding : {core::line_coding::pam2, core::line_coding::pam4}) {
    core::transponder_config cfg;
    cfg.coding = coding;
    core::commodity_transponder t(cfg, 55);
    phot::rng g(9);
    std::vector<std::uint8_t> bytes(512);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(g.below(256));
    auto wave = t.transmit(bytes);
    const double symbols = static_cast<double>(wave.size());
    for (auto& e : wave) e *= phot::field_loss_scale(loss_db);
    rate[idx++] =
        static_cast<double>(t.receive(wave, bytes).symbol_errors) / symbols;
  }
  EXPECT_LE(rate[0], rate[1]);
}

// ------------------------------------------------- protocol fuzz robustness

TEST(ProtocolFuzz, ParseNeverAcceptsRandomBytes) {
  phot::rng g(42);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::uint8_t buf[proto::compute_header_bytes];
    for (auto& b : buf) b = static_cast<std::uint8_t>(g.below(256));
    if (proto::parse({buf, sizeof buf})) ++accepted;
  }
  // Random bytes must essentially never pass magic+version+checksum.
  EXPECT_EQ(accepted, 0);
}

TEST(ProtocolFuzz, ParseHandlesAllLengths) {
  phot::rng g(43);
  for (std::size_t len = 0; len <= 64; ++len) {
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(g.below(256));
    (void)proto::parse(buf);  // must not crash for any length
  }
  SUCCEED();
}

TEST(ProtocolFuzz, TruncatedRealHeaderRejected) {
  proto::compute_header h;
  h.primitive = proto::primitive_id::p1_dot_product;
  const auto wire = proto::serialize(h);
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    EXPECT_FALSE(
        proto::parse(std::span<const std::uint8_t>(wire.data(), keep)));
  }
}

// ------------------------------------------------- engine mode properties

class EngineModeSweep
    : public ::testing::TestWithParam<std::tuple<core::compute_mode,
                                                 std::size_t>> {};

TEST_P(EngineModeSweep, GemvAccuracyHolds) {
  const auto [mode, dim] = GetParam();
  core::engine_config cfg;
  cfg.mode = mode;
  core::photonic_engine engine(cfg, 77 + dim);
  core::gemv_task task;
  task.weights = phot::matrix(4, dim);
  phot::rng g(31 + dim);
  for (double& w : task.weights.data) w = g.uniform(-1.0, 1.0);
  engine.configure_gemv(task);

  std::vector<double> x(dim);
  for (double& v : x) v = g.uniform(-1.0, 1.0);
  net::packet pkt = core::make_gemv_request(net::ipv4(1, 0, 0, 1),
                                            net::ipv4(2, 0, 0, 1), x, 4);
  ASSERT_TRUE(engine.process(pkt).computed);
  const auto result = core::read_gemv_result(pkt);
  ASSERT_TRUE(result.has_value());

  const auto exact = phot::gemv_reference(task.weights, x);
  // Error budget: input codec (2/255 per element) propagated through the
  // rows plus analog noise plus result codec at scale dim.
  const double budget = 0.05 * static_cast<double>(dim) + 0.3;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR((*result)[r], exact[r], budget)
        << "mode " << static_cast<int>(mode) << " dim " << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndDims, EngineModeSweep,
    ::testing::Combine(::testing::Values(core::compute_mode::on_fiber,
                                         core::compute_mode::oeo_per_hop),
                       ::testing::Values<std::size_t>(4, 16, 64)));

// ------------------------------------------------ runtime conservation law

TEST(RuntimeProperty, EveryComputePacketAccountedFor) {
  // Random Waxman topologies, random deployments, random request mix:
  // delivered + malformed_dropped == submitted, and every delivered
  // require_compute packet either has a result or is counted uncomputed.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    phot::rng g(seed);
    net::simulator sim;
    core::onfiber_runtime rt(sim,
                             net::make_waxman_topology(10, 100 + seed));
    // Deploy 2 engines at random distinct nodes with a GEMV task.
    core::gemv_task task;
    task.weights = phot::matrix(2, 8);
    for (double& w : task.weights.data) w = 0.5;
    const net::node_id s1 = static_cast<net::node_id>(g.below(10));
    net::node_id s2;
    do {
      s2 = static_cast<net::node_id>(g.below(10));
    } while (s2 == s1);
    rt.deploy_engine(s1, {}, 7).configure_gemv(task);
    rt.deploy_engine(s2, {}, 8);
    rt.install_compute_routes_via_nearest_site();

    constexpr int packets = 30;
    const std::vector<double> x(8, 0.5);
    for (int i = 0; i < packets; ++i) {
      const auto src = static_cast<net::node_id>(g.below(10));
      net::node_id dst;
      do {
        dst = static_cast<net::node_id>(g.below(10));
      } while (dst == src);
      net::packet pkt;
      switch (g.below(3)) {
        case 0:
          pkt = core::make_gemv_request(
              rt.fabric().topo().node_at(src).address,
              rt.fabric().topo().node_at(dst).address, x, 2);
          break;
        case 1:
          pkt = core::make_nonlinear_request(
              rt.fabric().topo().node_at(src).address,
              rt.fabric().topo().node_at(dst).address, x);
          break;
        default: {
          const std::vector<std::uint8_t> word{0xab, 0xcd};
          pkt = core::make_match_request(
              rt.fabric().topo().node_at(src).address,
              rt.fabric().topo().node_at(dst).address, word);
          break;
        }
      }
      rt.submit(std::move(pkt), src);
    }
    sim.run();

    EXPECT_EQ(rt.deliveries().size() + rt.stats().malformed_dropped,
              static_cast<std::size_t>(packets))
        << "seed " << seed;
    for (const auto& d : rt.deliveries()) {
      const auto h = proto::peek_compute_header(d.pkt);
      ASSERT_TRUE(h.has_value());
      // Either it carries a result or the runtime noticed it didn't.
      if (!h->has_result()) {
        EXPECT_GT(rt.stats().uncomputed_delivered, 0u);
      }
    }
  }
}

// --------------------------------------------- parallel-bank equivalences

TEST(ParallelBank, FibLookupAgreesWithSerial) {
  const auto entries = apps::make_synthetic_fib(24, 3, true);
  apps::photonic_fib serial(entries, {}, 5);
  apps::photonic_fib parallel(entries, {}, 5);
  phot::rng g(17);
  for (int i = 0; i < 30; ++i) {
    const net::ipv4 addr(static_cast<std::uint32_t>(g()));
    EXPECT_EQ(serial.lookup(addr), parallel.lookup_parallel(addr));
  }
}

TEST(ParallelBank, FibParallelIsFasterPerLookup) {
  const auto entries = apps::make_synthetic_fib(64, 9, true);
  apps::photonic_fib serial(entries, {}, 5);
  apps::photonic_fib parallel(entries, {}, 5);
  phot::rng g(19);
  constexpr int lookups = 20;
  for (int i = 0; i < lookups; ++i) {
    const net::ipv4 addr(static_cast<std::uint32_t>(g()));
    (void)serial.lookup(addr);
    (void)parallel.lookup_parallel(addr);
  }
  EXPECT_LT(parallel.analog_time_s(), serial.analog_time_s());
}

TEST(ParallelBank, IdsScanAgreesWithSerial) {
  const std::vector<std::vector<std::uint8_t>> sigs{
      {'e', 'v', 'i', 'l', '!'}, {0x13, 0x37, 0x42}};
  const auto w = apps::make_ids_workload(sigs, 6, 48, 0.7, 23);
  apps::photonic_ids serial(sigs, {}, 7);
  apps::photonic_ids parallel(sigs, {}, 7);
  for (const auto& payload : w.payloads) {
    EXPECT_EQ(serial.scan(payload), parallel.scan_parallel(payload));
  }
  EXPECT_LT(parallel.analog_time_s(), serial.analog_time_s());
}

// --------------------------------------------- end-to-end physical chains

class FiberChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(FiberChainSweep, AmplifiedSpansStayClean) {
  // A packet crossing N amplified 80 km spans must still decode cleanly:
  // ASE accumulates but stays above the PAM-4 margin for realistic N.
  const int spans = GetParam();
  core::commodity_transponder t({}, 500 + spans);
  phot::rng g(600 + spans);
  std::vector<std::uint8_t> bytes(128);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(g.below(256));
  phot::waveform wave = t.transmit(bytes);
  for (int s = 0; s < spans; ++s) {
    phot::fiber_config fc;
    fc.length_km = 80.0;
    fc.amplified = true;
    fc.symbol_rate_hz = t.config().symbol_rate_hz;
    phot::fiber_span span(fc, phot::rng{700 + static_cast<std::uint64_t>(
                                                  spans * 10 + s)});
    wave = span.propagate(wave);
  }
  const auto r = t.receive(wave, bytes);
  EXPECT_EQ(r.symbol_errors, 0u) << spans << " spans";
}

INSTANTIATE_TEST_SUITE_P(SpanCounts, FiberChainSweep,
                         ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------- dot-unit determinism

TEST(DeterminismProperty, WholeStackReproducible) {
  // Two identical runs of a nontrivial scenario must agree bit-for-bit.
  const auto run_once = [] {
    net::simulator sim;
    core::onfiber_runtime rt(sim, net::make_figure1_topology());
    core::gemv_task task;
    task.weights = phot::matrix(3, 12);
    for (double& w : task.weights.data) w = 0.3;
    rt.deploy_engine(1, {}, 42).configure_gemv(task);
    rt.install_compute_routes_via_nearest_site();
    const std::vector<double> x(12, 0.4);
    for (int i = 0; i < 5; ++i) {
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(0).address,
                    rt.fabric().topo().node_at(3).address, x, 3,
                    static_cast<std::uint32_t>(i)),
                0);
    }
    sim.run();
    std::vector<std::vector<std::uint8_t>> payloads;
    for (const auto& d : rt.deliveries()) payloads.push_back(d.pkt.payload);
    return payloads;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace onfiber
