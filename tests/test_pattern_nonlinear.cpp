// Tests for P2 (pattern matching) and P3 (nonlinear function).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "photonics/engine/nonlinear_unit.hpp"
#include "photonics/engine/pattern_matcher.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, rng& g) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(g.below(2));
  return bits;
}

// ------------------------------------------------------------ P2 matching

TEST(PatternMatch, ExactMatchHasNearZeroMismatch) {
  pattern_matcher m({}, 1);
  rng g(10);
  const auto bits = random_bits(32, g);
  const match_result r = m.match_bits(bits, bits);
  EXPECT_TRUE(r.matched);
  EXPECT_LT(r.mismatch_fraction, 0.02);
}

TEST(PatternMatch, MismatchFractionTracksHammingDistance) {
  pattern_matcher m({}, 2);
  rng g(11);
  const auto bits = random_bits(64, g);
  for (const std::size_t flips : {1u, 4u, 16u, 32u}) {
    auto other = bits;
    for (std::size_t i = 0; i < flips; ++i) other[i] ^= 1;
    const match_result r = m.match_bits(bits, other);
    const double expected = static_cast<double>(flips) / 64.0;
    EXPECT_NEAR(r.mismatch_fraction, expected, 0.03)
        << "flips=" << flips;
    EXPECT_FALSE(r.matched) << "flips=" << flips;
  }
}

TEST(PatternMatch, AllFlippedIsFullMismatch) {
  pattern_matcher m({}, 3);
  std::vector<std::uint8_t> zeros(16, 0), ones(16, 1);
  const match_result r = m.match_bits(zeros, ones);
  EXPECT_GT(r.mismatch_fraction, 0.9);
}

TEST(PatternMatch, WildcardsNeverMismatch) {
  pattern_matcher m({}, 4);
  rng g(12);
  const auto bits = random_bits(32, g);
  std::vector<tbit> pattern = to_ternary(bits);
  // Corrupt bits 3..10 but mark them wildcard.
  auto corrupted = bits;
  for (std::size_t i = 3; i <= 10; ++i) {
    corrupted[i] ^= 1;
    pattern[i] = tbit::wildcard;
  }
  const match_result r = m.match_ternary(corrupted, pattern);
  EXPECT_TRUE(r.matched);
}

TEST(PatternMatch, AllWildcardThrows) {
  pattern_matcher m({}, 5);
  std::vector<std::uint8_t> bits(8, 0);
  std::vector<tbit> pattern(8, tbit::wildcard);
  EXPECT_THROW((void)m.match_ternary(bits, pattern), std::invalid_argument);
}

TEST(PatternMatch, SizeMismatchThrows) {
  pattern_matcher m({}, 6);
  std::vector<std::uint8_t> bits(8, 0);
  std::vector<std::uint8_t> pattern(9, 0);
  EXPECT_THROW((void)m.match_bits(bits, pattern), std::invalid_argument);
}

TEST(PatternMatch, ByteInterface) {
  pattern_matcher m({}, 7);
  const std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef};
  EXPECT_TRUE(m.match_bytes(data, data).matched);
  const std::vector<std::uint8_t> other{0xde, 0xad, 0xbe, 0xee};
  EXPECT_FALSE(m.match_bytes(data, other).matched);
}

TEST(PatternMatch, BytesToBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes{0x80, 0x01};
  const auto bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16u);
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[7], 0);
  EXPECT_EQ(bits[15], 1);
}

TEST(PatternMatch, OpticalPilotRoundTrip) {
  pattern_matcher m({}, 8);
  rng g(13);
  const auto bits = random_bits(48, g);
  const waveform wave = m.encode_bits_to_optical(bits);
  ASSERT_EQ(wave.size(), 49u);  // pilot + data
  EXPECT_TRUE(m.match_optical(wave, to_ternary(bits)).matched);
  auto flipped = bits;
  flipped[20] ^= 1;
  EXPECT_FALSE(m.match_optical(wave, to_ternary(flipped)).matched);
}

TEST(PatternMatch, OpticalSurvivesCarrierPhaseOffset) {
  // Rotate the whole waveform (unknown carrier phase after transit); the
  // pilot-aided recovery must still match.
  pattern_matcher m({}, 9);
  rng g(14);
  const auto bits = random_bits(32, g);
  waveform wave = m.encode_bits_to_optical(bits);
  const field rot = std::polar(1.0, 1.2345);
  for (field& e : wave) e *= rot;
  EXPECT_TRUE(m.match_optical(wave, to_ternary(bits)).matched);
}

TEST(PatternMatch, OpticalSurvivesAttenuation) {
  pattern_matcher m({}, 10);
  rng g(15);
  const auto bits = random_bits(32, g);
  waveform wave = m.encode_bits_to_optical(bits);
  for (field& e : wave) e *= field_loss_scale(6.0);  // -6 dB
  EXPECT_TRUE(m.match_optical(wave, to_ternary(bits)).matched);
}

TEST(PatternMatch, OpticalLengthValidation) {
  pattern_matcher m({}, 11);
  const waveform wave(8, make_field(1.0));
  const std::vector<tbit> pattern(8, tbit::zero);  // needs 9 samples
  EXPECT_THROW((void)m.match_optical(wave, pattern), std::invalid_argument);
}

TEST(PatternMatch, OpticalDeadPilotThrows) {
  pattern_matcher m({}, 12);
  waveform wave(9, make_field(1.0));
  wave[0] = field{0.0, 0.0};
  const std::vector<tbit> pattern(8, tbit::zero);
  EXPECT_THROW((void)m.match_optical(wave, pattern), std::invalid_argument);
}

TEST(PatternMatch, ScanFindsAllOffsets) {
  pattern_matcher m({}, 13);
  // Stream 0^8 1 0 1 0^8: pattern "101" occurs at offset 8.
  std::vector<std::uint8_t> stream(19, 0);
  stream[8] = 1;
  stream[10] = 1;
  const std::vector<tbit> pattern{tbit::one, tbit::zero, tbit::one};
  const auto hits = m.scan(stream, pattern);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 8u);
}

TEST(PatternMatch, ScanEmptyCases) {
  pattern_matcher m({}, 14);
  const std::vector<std::uint8_t> stream(4, 0);
  const std::vector<tbit> long_pattern(8, tbit::zero);
  EXPECT_TRUE(m.scan(stream, long_pattern).empty());
  EXPECT_TRUE(m.scan(stream, {}).empty());
}

TEST(PatternMatch, LatencyScalesWithLength) {
  pattern_match_config cfg;
  cfg.symbol_rate_hz = 10e9;
  pattern_matcher m(cfg, 15);
  rng g(16);
  const auto short_bits = random_bits(16, g);
  const auto long_bits = random_bits(160, g);
  const double t_short = m.match_bits(short_bits, short_bits).latency_s;
  const double t_long = m.match_bits(long_bits, long_bits).latency_s;
  EXPECT_GT(t_long, t_short);
  EXPECT_NEAR(t_long - t_short, 144.0 / 10e9, 1e-12);
}

// --------------------------------------------------------- P3 nonlinearity

TEST(Nonlinear, ZeroInZeroOut) {
  nonlinear_unit nl({}, 1);
  EXPECT_NEAR(nl.transfer_mw(0.0), 0.0, 1e-9);
}

TEST(Nonlinear, MonotoneIncreasingTransfer) {
  nonlinear_unit nl({}, 2);
  double prev = -1.0;
  for (double p = 0.0; p <= 10.0; p += 0.25) {
    const double y = nl.transfer_mw(p);
    EXPECT_GE(y, prev - 1e-12) << "at p=" << p;
    prev = y;
  }
}

TEST(Nonlinear, ReluLikeShape) {
  // Convex at the bottom (suppresses small inputs more than
  // proportionally), significant transmission at the top.
  nonlinear_unit nl({}, 3);
  const double y_low = nl.transfer_mw(1.0);
  const double y_high = nl.transfer_mw(10.0);
  EXPECT_LT(y_low / 1.0, 0.1 * (y_high / 10.0) * 10.0);  // strong suppression
  EXPECT_GT(y_high / 10.0, 0.3);  // passes a good fraction at full scale
}

TEST(Nonlinear, FullScaleReachesFullTransmission) {
  // Defaults calibrated: 10 mW drives the modulator to V_pi.
  nonlinear_config cfg;
  cfg.modulator.insertion_loss_db = 0.0;
  nonlinear_unit nl(cfg, 4);
  EXPECT_NEAR(nl.transfer_mw(10.0), 10.0 * (1.0 - cfg.tap_ratio), 0.05);
}

TEST(Nonlinear, ActivateBounds) {
  nonlinear_unit nl({}, 5);
  for (const double x : {-0.5, 0.0, 0.3, 0.7, 1.0, 1.5}) {
    const double y = nl.activate(x, 10.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(Nonlinear, ActivateMatchesNormalizedTransfer) {
  // Noiseless config: activate(x) ~ x * sin^2(pi/2 x) with the default
  // calibration (output power = input power x transmission).
  nonlinear_config cfg;
  cfg.detector.noise.enable_shot = false;
  cfg.detector.noise.enable_thermal = false;
  cfg.detector.dark_current_a = 0.0;
  nonlinear_unit nl(cfg, 6);
  for (const double x : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double expected = x * std::pow(std::sin(0.5 * M_PI * x), 2.0);
    EXPECT_NEAR(nl.activate(x, 10.0), expected, 0.02) << "x=" << x;
  }
}

TEST(Nonlinear, ApplyWaveform) {
  nonlinear_unit nl({}, 7);
  const waveform in(16, make_field(5.0));
  const waveform out = nl.apply(in);
  ASSERT_EQ(out.size(), 16u);
  for (const field& e : out) {
    EXPECT_LT(power_mw(e), 5.0);  // tap + nonlinearity always lose power
  }
}

TEST(Nonlinear, OffsetShiftsKnee) {
  nonlinear_config base;
  nonlinear_config shifted = base;
  shifted.drive_offset_v = 1.0;  // pre-biased toward transmission
  nonlinear_unit nl0(base, 8);
  nonlinear_unit nl1(shifted, 8);
  EXPECT_GT(nl1.transfer_mw(2.0), nl0.transfer_mw(2.0));
}

}  // namespace
}  // namespace onfiber::phot
