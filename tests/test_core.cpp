// Tests for the core library: commodity transponder (Fig. 3), photonic
// engine + compute packets (Fig. 4), and the on-fiber runtime (Fig. 1).
#include <gtest/gtest.h>

#include <numeric>

#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "core/transponder.hpp"
#include "photonics/fiber.hpp"
#include "photonics/rng.hpp"

namespace onfiber::core {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  phot::rng g(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(g.below(256));
  return out;
}

// -------------------------------------------------------------- transponder

TEST(Transponder, Pam4RoundTripClean) {
  commodity_transponder t({}, 1);
  const auto bytes = random_bytes(256, 11);
  const auto wave = t.transmit(bytes);
  const receive_report r = t.receive(wave, bytes);
  EXPECT_EQ(r.bytes, bytes);
  EXPECT_EQ(r.symbol_errors, 0u);
}

TEST(Transponder, Pam2RoundTripClean) {
  transponder_config cfg;
  cfg.coding = line_coding::pam2;
  commodity_transponder t(cfg, 2);
  const auto bytes = random_bytes(128, 12);
  const receive_report r = t.receive(t.transmit(bytes), bytes);
  EXPECT_EQ(r.bytes, bytes);
}

TEST(Transponder, SymbolsForBytes) {
  transponder_config cfg;
  cfg.coding = line_coding::pam4;
  commodity_transponder t4(cfg, 3);
  EXPECT_EQ(t4.symbols_for_bytes(1), 4u);   // 8 bits / 2
  EXPECT_EQ(t4.symbols_for_bytes(100), 400u);
  cfg.coding = line_coding::pam2;
  commodity_transponder t2(cfg, 4);
  EXPECT_EQ(t2.symbols_for_bytes(1), 8u);
}

TEST(Transponder, SurvivesModerateFiberLoss) {
  commodity_transponder t({}, 5);
  const auto bytes = random_bytes(64, 13);
  auto wave = t.transmit(bytes);
  phot::fiber_config fc;
  fc.length_km = 40.0;  // 8 dB loss
  phot::fiber_span span(fc, phot::rng{6});
  const auto attenuated = span.propagate(wave);
  // PAM-4 slicer references full power; with 8 dB loss uncorrected the
  // link breaks — commodity links run amplified. Verify the amplified
  // span keeps the link clean instead.
  phot::fiber_config amplified = fc;
  amplified.amplified = true;
  amplified.symbol_rate_hz = t.config().symbol_rate_hz;
  phot::fiber_span good_span(amplified, phot::rng{7});
  const receive_report r = t.receive(good_span.propagate(wave), bytes);
  EXPECT_EQ(r.bytes, bytes);
  (void)attenuated;
}

TEST(Transponder, ErrorsAppearAtHighLoss) {
  commodity_transponder t({}, 8);
  const auto bytes = random_bytes(64, 14);
  auto wave = t.transmit(bytes);
  for (auto& e : wave) e *= phot::field_loss_scale(12.0);  // uncompensated
  const receive_report r = t.receive(wave, bytes);
  EXPECT_GT(r.symbol_errors, 0u);
}

TEST(Transponder, LatencyModel) {
  transponder_config cfg;
  cfg.symbol_rate_hz = 50e9;
  cfg.dsp_latency_s = 100e-9;
  commodity_transponder t(cfg, 9);
  const auto bytes = random_bytes(100, 15);
  const auto wave = t.transmit(bytes);
  const receive_report r = t.receive(wave);
  EXPECT_NEAR(r.latency_s, 400.0 / 50e9 + 100e-9, 1e-12);
}

TEST(Transponder, ConversionsCharged) {
  phot::energy_ledger ledger;
  commodity_transponder t({}, 10, &ledger);
  const auto bytes = random_bytes(10, 16);  // 40 PAM-4 symbols
  const auto wave = t.transmit(bytes);
  EXPECT_EQ(ledger.ops("dac"), 40u);
  (void)t.receive(wave);
  EXPECT_EQ(ledger.ops("adc"), 40u);
}

// ------------------------------------------------------------ photonic engine

engine_config quiet_engine_config() { return {}; }

TEST(Engine, GemvTaskComputes) {
  photonic_engine e(quiet_engine_config(), 1);
  gemv_task task;
  task.weights = phot::matrix(2, 4);
  // Row 0 = identity-ish selector, row 1 = negations.
  task.weights.at(0, 0) = 1.0;
  task.weights.at(0, 1) = 0.5;
  task.weights.at(1, 2) = -1.0;
  task.weights.at(1, 3) = 0.25;
  e.configure_gemv(task);

  const std::vector<double> x{0.8, -0.4, 0.6, 0.2};
  net::packet pkt = make_gemv_request(net::ipv4(10, 0, 0, 1),
                                      net::ipv4(10, 1, 0, 1), x, 2);
  const engine_report rep = e.process(pkt);
  ASSERT_TRUE(rep.computed);
  const auto result = read_gemv_result(pkt);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_NEAR((*result)[0], 0.8 * 1.0 - 0.4 * 0.5, 0.15);
  EXPECT_NEAR((*result)[1], -0.6 + 0.05, 0.15);
}

TEST(Engine, GemvShapeMismatchNotComputed) {
  photonic_engine e(quiet_engine_config(), 2);
  gemv_task task;
  task.weights = phot::matrix(2, 8);
  e.configure_gemv(task);
  const std::vector<double> x(4, 0.5);  // wrong length
  net::packet pkt = make_gemv_request(net::ipv4(1, 0, 0, 1),
                                      net::ipv4(2, 0, 0, 1), x, 2);
  EXPECT_FALSE(e.process(pkt).computed);
  EXPECT_FALSE(read_gemv_result(pkt).has_value());
}

TEST(Engine, MatchTaskPriorityOrder) {
  photonic_engine e(quiet_engine_config(), 3);
  const std::vector<std::uint8_t> word{0xca, 0xfe};
  const auto word_bits = phot::bytes_to_bits(word);
  match_task task;
  task.patterns.push_back(phot::to_ternary(word_bits));  // index 0
  task.patterns.push_back(std::vector<phot::tbit>(16, phot::tbit::wildcard));
  task.patterns[1][0] = phot::tbit::one;  // also matches 0xca...
  e.configure_match(task);

  net::packet pkt = make_match_request(net::ipv4(1, 0, 0, 1),
                                       net::ipv4(2, 0, 0, 1), word);
  const engine_report rep = e.process(pkt);
  ASSERT_TRUE(rep.computed);
  EXPECT_EQ(read_match_result(pkt).value(), 0);  // first pattern wins
}

TEST(Engine, MatchNoHit) {
  photonic_engine e(quiet_engine_config(), 4);
  match_task task;
  task.patterns.push_back(
      phot::to_ternary(phot::bytes_to_bits(std::vector<std::uint8_t>{0xff})));
  e.configure_match(task);
  const std::vector<std::uint8_t> word{0x00};
  net::packet pkt = make_match_request(net::ipv4(1, 0, 0, 1),
                                       net::ipv4(2, 0, 0, 1), word);
  ASSERT_TRUE(e.process(pkt).computed);
  EXPECT_EQ(read_match_result(pkt).value(), match_no_hit);
}

TEST(Engine, NonlinearAlwaysSupported) {
  photonic_engine e(quiet_engine_config(), 5);
  EXPECT_TRUE(e.supports(proto::primitive_id::p3_nonlinear));
  const std::vector<double> x{0.0, 0.25, 0.5, 1.0};
  net::packet pkt = make_nonlinear_request(net::ipv4(1, 0, 0, 1),
                                           net::ipv4(2, 0, 0, 1), x);
  ASSERT_TRUE(e.process(pkt).computed);
  const auto y = read_nonlinear_result(pkt);
  ASSERT_TRUE(y.has_value());
  ASSERT_EQ(y->size(), 4u);
  // Monotone nondecreasing (allowing converter noise at the low end).
  EXPECT_LE((*y)[0], (*y)[3]);
  EXPECT_GT((*y)[3], 0.5);  // full-scale passes most power
  EXPECT_LT((*y)[1], 0.2);  // knee suppresses small inputs
}

TEST(Engine, UnsupportedPrimitiveLeavesPacket) {
  photonic_engine e(quiet_engine_config(), 6);  // no gemv configured
  const std::vector<double> x(4, 0.5);
  net::packet pkt = make_gemv_request(net::ipv4(1, 0, 0, 1),
                                      net::ipv4(2, 0, 0, 1), x, 4);
  const auto before = pkt.payload;
  EXPECT_FALSE(e.process(pkt).computed);
  EXPECT_EQ(pkt.payload, before);
}

TEST(Engine, AlreadyComputedSkipped) {
  photonic_engine e(quiet_engine_config(), 7);
  gemv_task task;
  task.weights = phot::matrix(1, 2);
  task.weights.at(0, 0) = 1.0;
  e.configure_gemv(task);
  const std::vector<double> x{0.5, 0.5};
  net::packet pkt = make_gemv_request(net::ipv4(1, 0, 0, 1),
                                      net::ipv4(2, 0, 0, 1), x, 1);
  ASSERT_TRUE(e.process(pkt).computed);
  // Second engine must not recompute.
  EXPECT_FALSE(e.process(pkt).computed);
  const auto h = proto::peek_compute_header(pkt);
  EXPECT_EQ(h->hops, 1);
}

TEST(Engine, NonComputePacketIgnored) {
  photonic_engine e(quiet_engine_config(), 8);
  net::packet pkt;
  pkt.payload = {1, 2, 3};
  EXPECT_FALSE(e.process(pkt).computed);
}

TEST(Engine, OnFiberAvoidsInputConversions) {
  gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (double& w : task.weights.data) w = 0.3;

  engine_config on_cfg = quiet_engine_config();
  on_cfg.mode = compute_mode::on_fiber;
  photonic_engine on_fiber(on_cfg, 9);
  on_fiber.configure_gemv(task);

  engine_config oeo_cfg = quiet_engine_config();
  oeo_cfg.mode = compute_mode::oeo_per_hop;
  photonic_engine oeo(oeo_cfg, 9);
  oeo.configure_gemv(task);

  const std::vector<double> x(16, 0.4);
  net::packet p1 = make_gemv_request(net::ipv4(1, 0, 0, 1),
                                     net::ipv4(2, 0, 0, 1), x, 4);
  net::packet p2 = p1;
  const engine_report r_on = on_fiber.process(p1);
  const engine_report r_oeo = oeo.process(p2);
  ASSERT_TRUE(r_on.computed);
  ASSERT_TRUE(r_oeo.computed);
  EXPECT_EQ(r_on.input_conversions, 0u);
  // OEO: 16 receive-ADC + 4 rows x 4 passes x 16 DAC re-encodes.
  EXPECT_EQ(r_oeo.input_conversions, 16u + 4u * 4u * 16u);
}

TEST(Engine, ModesAgreeOnValues) {
  gemv_task task;
  task.weights = phot::matrix(2, 8);
  for (std::size_t c = 0; c < 8; ++c) {
    task.weights.at(0, c) = 0.5;
    task.weights.at(1, c) = c % 2 == 0 ? 0.8 : -0.8;
  }
  const std::vector<double> x{0.1, 0.9, -0.4, 0.6, -0.2, 0.3, 0.7, -0.5};
  std::vector<double> expected(2, 0.0);
  for (std::size_t c = 0; c < 8; ++c) {
    expected[0] += 0.5 * x[c];
    expected[1] += (c % 2 == 0 ? 0.8 : -0.8) * x[c];
  }
  for (const auto mode :
       {compute_mode::on_fiber, compute_mode::oeo_per_hop}) {
    engine_config cfg = quiet_engine_config();
    cfg.mode = mode;
    photonic_engine e(cfg, 10);
    e.configure_gemv(task);
    net::packet pkt = make_gemv_request(net::ipv4(1, 0, 0, 1),
                                        net::ipv4(2, 0, 0, 1), x, 2);
    ASSERT_TRUE(e.process(pkt).computed);
    const auto result = read_gemv_result(pkt);
    ASSERT_TRUE(result.has_value());
    EXPECT_NEAR((*result)[0], expected[0], 0.3);
    EXPECT_NEAR((*result)[1], expected[1], 0.3);
  }
}

TEST(Engine, PreambleDetection) {
  photonic_engine e(quiet_engine_config(), 11);
  const phot::waveform good = e.encode_preamble();
  EXPECT_TRUE(e.detect_preamble(good));
  // A wrong-length waveform is rejected outright.
  const phot::waveform junk(8, phot::make_field(1.0));
  EXPECT_FALSE(e.detect_preamble(junk));
  // A corrupted preamble (several symbols flipped) must not match.
  phot::waveform bad = good;
  for (std::size_t i = 1; i <= 6; ++i) bad[i] = -bad[i];  // pi phase flips
  EXPECT_FALSE(e.detect_preamble(bad));
}

TEST(Engine, ConfigValidation) {
  photonic_engine e(quiet_engine_config(), 12);
  EXPECT_THROW(e.configure_gemv(gemv_task{}), std::invalid_argument);
  EXPECT_THROW(e.configure_match(match_task{}), std::invalid_argument);
  EXPECT_THROW(e.configure_dnn(dnn_task{}), std::invalid_argument);
  gemv_task bad_bias;
  bad_bias.weights = phot::matrix(2, 2);
  bad_bias.bias = {1.0};  // wrong length
  EXPECT_THROW(e.configure_gemv(bad_bias), std::invalid_argument);
}

TEST(Engine, ClearTasksDropsSupport) {
  photonic_engine e(quiet_engine_config(), 13);
  gemv_task task;
  task.weights = phot::matrix(1, 1);
  task.weights.at(0, 0) = 1.0;
  e.configure_gemv(task);
  EXPECT_TRUE(e.supports(proto::primitive_id::p1_dot_product));
  e.clear_tasks();
  EXPECT_FALSE(e.supports(proto::primitive_id::p1_dot_product));
}

// --------------------------------------------------------- compute packets

TEST(ComputePackets, GemvRequestLayout) {
  const std::vector<double> x(8, 0.5);
  const net::packet pkt =
      make_gemv_request(net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), x, 3, 42);
  const auto h = proto::peek_compute_header(pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->task_id, 42u);
  EXPECT_EQ(h->input_length, 8);
  EXPECT_EQ(h->result_length, 3);
  EXPECT_TRUE(h->requires_compute());
  EXPECT_FALSE(h->has_result());
  EXPECT_EQ(pkt.payload.size(), proto::compute_header_bytes + 8 + 3);
}

TEST(ComputePackets, ReadersRejectWrongPrimitive) {
  const std::vector<double> x(4, 0.5);
  net::packet pkt =
      make_nonlinear_request(net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), x);
  photonic_engine e({}, 14);
  ASSERT_TRUE(e.process(pkt).computed);
  EXPECT_TRUE(read_nonlinear_result(pkt).has_value());
  EXPECT_FALSE(read_gemv_result(pkt).has_value());
  EXPECT_FALSE(read_match_result(pkt).has_value());
  EXPECT_FALSE(read_dnn_result(pkt).has_value());
}

TEST(ComputePackets, ReadersRequireResultFlag) {
  const std::vector<double> x(4, 0.5);
  const net::packet pkt =
      make_nonlinear_request(net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), x);
  EXPECT_FALSE(read_nonlinear_result(pkt).has_value());
}

// ----------------------------------------------------------------- runtime

net::packet fig1_gemv_packet(const onfiber_runtime& rt,
                             const std::vector<double>& x, std::size_t out) {
  return make_gemv_request(rt.fabric().topo().node_at(0).address,
                           rt.fabric().topo().node_at(3).address, x, out);
}

TEST(Runtime, ComputeOnPathSite) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (std::size_t c = 0; c < 4; ++c) task.weights.at(0, c) = 0.5;
  rt.deploy_engine(1, {}, 77).configure_gemv(task);  // site B (on A-B-D path)
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x{0.2, 0.4, 0.6, 0.8};
  rt.submit(fig1_gemv_packet(rt, x, 1), 0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
  EXPECT_EQ(rt.stats().uncomputed_delivered, 0u);
  const auto result = read_gemv_result(rt.deliveries()[0].pkt);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR((*result)[0], 0.5 * (0.2 + 0.4 + 0.6 + 0.8), 0.15);
}

TEST(Runtime, PlainTrafficUnaffected) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 78);
  rt.install_compute_routes_via_nearest_site();
  net::packet pkt;
  pkt.src = rt.fabric().topo().node_at(0).address;
  pkt.dst = rt.fabric().topo().node_at(3).address;
  pkt.payload.resize(64);
  rt.submit(pkt, 0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 0u);
  EXPECT_EQ(rt.stats().redirected, 0u);
}

TEST(Runtime, NoCapableSiteDeliversUncomputed) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  // Engine with no gemv task: cannot serve p1.
  rt.deploy_engine(1, {}, 79);
  rt.install_compute_routes_via_nearest_site();
  const std::vector<double> x(4, 0.5);
  rt.submit(fig1_gemv_packet(rt, x, 1), 0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().uncomputed_delivered, 1u);
}

TEST(Runtime, MalformedComputeDropped) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  net::packet pkt;
  pkt.src = rt.fabric().topo().node_at(0).address;
  pkt.dst = rt.fabric().topo().node_at(3).address;
  pkt.proto = net::ip_proto::compute;
  pkt.payload = {1, 2, 3};  // no valid header
  rt.submit(pkt, 0);
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), 0u);
  EXPECT_EQ(rt.stats().malformed_dropped, 1u);
}

TEST(Runtime, OffPathSiteReachedViaComputeRoutes) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  gemv_task task;
  task.weights = phot::matrix(1, 2);
  task.weights.at(0, 0) = 1.0;
  task.weights.at(0, 1) = 1.0;
  // Deploy only at C; A->D shortest path goes via B, so compute packets
  // must be steered through C.
  rt.deploy_engine(2, {}, 80).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();
  const std::vector<double> x{0.3, 0.4};
  rt.submit(fig1_gemv_packet(rt, x, 1), 0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
  EXPECT_GE(rt.stats().redirected, 1u);
  EXPECT_TRUE(read_gemv_result(rt.deliveries()[0].pkt).has_value());
}

TEST(Runtime, SerialEngineQueuesPackets) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  gemv_task task;
  task.weights = phot::matrix(4, 64);
  for (double& w : task.weights.data) w = 0.1;
  rt.deploy_engine(1, {}, 81).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x(64, 0.5);
  for (int i = 0; i < 4; ++i) rt.submit(fig1_gemv_packet(rt, x, 4), 0);
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), 4u);
  EXPECT_EQ(rt.stats().computed, 4u);
  // All packets queued behind one analog engine: total busy time is the
  // sum of the individual compute times.
  EXPECT_GT(rt.site_busy_s(1), 0.0);
  // Deliveries are spread out, not simultaneous.
  EXPECT_GT(rt.deliveries()[3].time_s, rt.deliveries()[0].time_s);
}

TEST(Runtime, SiteQueries) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(2, {}, 82);
  EXPECT_EQ(rt.sites(), (std::vector<net::node_id>{2}));
  EXPECT_TRUE(rt.site_supports(2, proto::primitive_id::p3_nonlinear));
  EXPECT_FALSE(rt.site_supports(2, proto::primitive_id::p1_dot_product));
  EXPECT_FALSE(rt.site_supports(0, proto::primitive_id::p3_nonlinear));
  EXPECT_DOUBLE_EQ(rt.site_busy_s(0), 0.0);
}

}  // namespace
}  // namespace onfiber::core
