// Sharded parallel event engine: golden delivery traces must be
// bit-identical across shard counts {1, 2, 4} and across reruns, and a
// 1-shard engine must reproduce the classic single-threaded simulator
// exactly (same queue, same seq stream — not merely the same trace).
//
// The scenario is a 16-node chain with GEMV compute sites at nodes 5
// and 10, bidirectional compute traffic (node 0 -> 15 and 15 -> 0), and
// a flapping mid-chain link with jittered reconvergence — so packets
// cross every shard boundary, die in the flap window, and reroute,
// while the control plane (flaps, reconvergence) runs as global events.
// Arrival timestamps are compared with exact double equality.
//
// Bit errors stay off in the cross-shard-count runs: the BER stream is
// per-shard (a single global stream cannot be shard-count invariant),
// which is exercised by the classic-vs-1-shard equivalence test below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/shard_channel.hpp"
#include "network/shard_engine.hpp"
#include "network/topology.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

struct trace_entry {
  std::uint32_t task_id;
  net::node_id at;
  double time_s;

  bool operator==(const trace_entry&) const = default;
};

struct scenario_result {
  std::vector<trace_entry> trace;
  std::uint64_t delivered = 0;
  std::uint64_t computed = 0;
  net::drop_stats drops;
  net::shard_engine_stats engine;  ///< zeros for the classic simulator
};

/// 16-node chain, GEMV sites at 5 and 10, nearest-site compute routing,
/// link 7 flapping, 40 interleaved up/down requests. `schedule_at` is
/// the scenario's injection clock: sim.schedule_at for the classic
/// engine, engine.schedule_global for the sharded one.
template <class ScheduleAt>
void drive_chain_scenario(core::onfiber_runtime& rt,
                          ScheduleAt&& schedule_at, double ber) {
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(5, {}, 21).configure_gemv(task);
  rt.deploy_engine(10, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {{7, 0.004, 0.007}};
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  if (ber > 0.0) rt.fabric().set_bit_error_rate(ber, 99);

  for (int i = 0; i < 40; ++i) {
    schedule_at(0.0004 * i, [&rt, i] {
      std::vector<double> x(16);
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] = -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      const bool up = i % 2 == 0;
      const net::node_id src = up ? 0 : 15;
      const net::node_id dst = up ? 15 : 0;
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(src).address,
                    rt.fabric().topo().node_at(dst).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                src);
    });
  }
}

scenario_result collect(core::onfiber_runtime& rt) {
  scenario_result r;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    r.trace.push_back(trace_entry{h ? h->task_id : ~std::uint32_t{0}, d.at,
                                  d.time_s});
  }
  r.delivered = rt.fabric().delivered();
  r.computed = rt.stats().computed;
  r.drops = rt.fabric().drops();
  return r;
}

scenario_result run_classic(double ber = 0.0) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_linear_topology(16));
  drive_chain_scenario(
      rt, [&sim](double t, auto fn) { sim.schedule_at(t, std::move(fn)); },
      ber);
  sim.run(5'000'000);
  EXPECT_FALSE(sim.overran());
  return collect(rt);
}

scenario_result run_sharded(std::size_t shards, double ber = 0.0) {
  net::shard_engine engine(shards);
  core::onfiber_runtime rt(engine, net::make_linear_topology(16));
  drive_chain_scenario(
      rt,
      [&engine](double t, auto fn) {
        engine.schedule_global(t, std::move(fn));
      },
      ber);
  engine.run(5'000'000);
  EXPECT_FALSE(engine.overran());
  scenario_result r = collect(rt);
  r.engine = engine.stats();
  return r;
}

/// deliveries() returns raw event order at 1 shard and a (time, node)
/// merge at more; normalize both to the merge order so traces from
/// different shard counts are comparable element-wise.
std::vector<trace_entry> normalized(const scenario_result& r) {
  std::vector<trace_entry> t = r.trace;
  std::stable_sort(t.begin(), t.end(),
                   [](const trace_entry& a, const trace_entry& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.at < b.at;
                   });
  return t;
}

void expect_same(const scenario_result& a, const scenario_result& b) {
  const auto ta = normalized(a);
  const auto tb = normalized(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].task_id, tb[i].task_id) << "entry " << i;
    EXPECT_EQ(ta[i].at, tb[i].at) << "entry " << i;
    // Exact: sharding may not perturb a single ULP.
    EXPECT_EQ(ta[i].time_s, tb[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.computed, b.computed);
  EXPECT_EQ(a.drops.total(), b.drops.total());
  EXPECT_EQ(a.drops.link_down, b.drops.link_down);
  EXPECT_EQ(a.drops.no_route, b.drops.no_route);
}

TEST(ShardedDeterminism, OneShardMatchesClassicExactly) {
  const scenario_result classic = run_classic();
  const scenario_result one = run_sharded(1);
  // Raw traces, not normalized: 1-shard mode shares the classic queue
  // and seq stream, so even same-timestamp ordering must match.
  ASSERT_EQ(classic.trace.size(), one.trace.size());
  EXPECT_TRUE(classic.trace == one.trace);
  expect_same(classic, one);
  EXPECT_EQ(one.engine.windows, 0u);
  EXPECT_EQ(one.engine.parcels, 0u);
}

TEST(ShardedDeterminism, OneShardMatchesClassicWithBitErrors) {
  // The BER stream is seeded per shard (shard 0 = the user seed), so
  // classic equivalence must hold with bit errors on at 1 shard.
  const scenario_result classic = run_classic(1e-4);
  const scenario_result one = run_sharded(1, 1e-4);
  EXPECT_TRUE(classic.trace == one.trace);
  expect_same(classic, one);
}

TEST(ShardedDeterminism, GoldenTraceBitIdenticalAcrossShardCounts) {
  const scenario_result classic = run_classic();
  // Sanity on the reference itself: traffic flowed, flaps killed some.
  EXPECT_GE(classic.delivered, 20u);
  EXPECT_GT(classic.drops.total(), 0u);

  std::vector<std::size_t> counts = {1, 2, 4};
  if (const char* env = std::getenv("ONFIBER_SHARDS")) {
    const std::size_t extra = static_cast<std::size_t>(std::atoi(env));
    if (extra > 1) counts.push_back(extra);
  }
  for (const std::size_t shards : counts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const scenario_result r = run_sharded(shards);
    expect_same(classic, r);
    if (shards > 1) {
      // The parallel machinery must actually have been exercised.
      EXPECT_GT(r.engine.windows, 0u);
      EXPECT_GT(r.engine.parcels, 0u);
    }
  }
}

TEST(ShardedDeterminism, BitIdenticalAcrossReruns) {
  const scenario_result a = run_sharded(4);
  const scenario_result b = run_sharded(4);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_TRUE(a.trace == b.trace);
  EXPECT_EQ(a.engine.parcels, b.engine.parcels);
}

// ---------------------------------------------------------------------
// Backpressure: a bounded cross-shard channel that fills must stall the
// producer (stalls counted, producer drains its own inbound to stay
// live) and never drop a parcel.

TEST(ShardedBackpressure, FullChannelStallsProducerWithoutDrops) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kPackets = 400;
  net::shard_engine engine(2, kCapacity);
  net::wan_fabric fabric(engine, net::make_linear_topology(8));
  fabric.install_shortest_path_routes();

  std::uint64_t delivered_cb = 0;
  fabric.set_deliver_callback(
      [&](const net::packet&, net::node_id at, double) {
        EXPECT_EQ(at, 7u);
        ++delivered_cb;
      });
  // One burst: every packet crosses the shard boundary (3-4) within a
  // few conservative windows, far exceeding the 8-parcel channel.
  engine.schedule_global(0.0, [&fabric] {
    for (int i = 0; i < kPackets; ++i) {
      net::packet pkt;
      pkt.src = fabric.topo().node_at(0).address;
      pkt.dst = fabric.topo().node_at(7).address;
      pkt.payload.resize(64);
      fabric.send(pkt, 0);
    }
  });
  engine.run();
  EXPECT_FALSE(engine.overran());

  EXPECT_EQ(fabric.delivered(), static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(delivered_cb, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(fabric.drops().total(), 0u);
  const net::shard_engine_stats& s = engine.stats();
  EXPECT_EQ(s.parcels, static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(s.producer_stalls, 0u);
  EXPECT_LE(s.max_channel_depth, kCapacity);
}

TEST(ShardedChannel, SpscPushPopBounds) {
  net::spsc_channel ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  net::parcel p;
  for (std::uint64_t i = 0; i < 4; ++i) {
    p.seq = i;
    EXPECT_TRUE(ch.try_push(std::move(p)));
  }
  p.seq = 99;
  EXPECT_FALSE(ch.try_push(std::move(p)));
  EXPECT_EQ(p.seq, 99u);  // rejected parcel is left intact
  net::parcel out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.try_pop(out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(ch.try_pop(out));
  EXPECT_TRUE(ch.empty());
}

// ---------------------------------------------------------------------
// Partitioning: contiguous blocks for chains, balanced regions for
// meshes, deterministic everywhere.

TEST(ShardedPartition, ChainCutsIntoContiguousBlocks) {
  const net::topology chain = net::make_linear_topology(32);
  const auto part = net::partition_topology(chain, 4);
  ASSERT_EQ(part.size(), 32u);
  for (std::size_t u = 0; u < part.size(); ++u) {
    EXPECT_EQ(part[u], u / 8) << "node " << u;
  }
}

TEST(ShardedPartition, MeshPartitionIsBalancedAndDeterministic) {
  const net::topology wan = net::make_uswan_topology();
  const auto part = net::partition_topology(wan, 3);
  ASSERT_EQ(part.size(), wan.node_count());
  std::vector<std::size_t> sizes(3, 0);
  for (const std::uint32_t s : part) {
    ASSERT_LT(s, 3u);
    ++sizes[s];
  }
  for (const std::size_t n : sizes) {
    EXPECT_GE(n, 2u);  // 12 nodes over 3 shards: no shard starved
    EXPECT_LE(n, 6u);
  }
  EXPECT_EQ(part, net::partition_topology(wan, 3));
}

TEST(ShardedPartition, MoreShardsThanNodesClamps) {
  const net::topology chain = net::make_linear_topology(3);
  const auto part = net::partition_topology(chain, 8);
  ASSERT_EQ(part.size(), 3u);
  for (const std::uint32_t s : part) EXPECT_LT(s, 3u);
}

// ---------------------------------------------------------------------
// Guard rails.

TEST(ShardedGuards, ReliabilityUnsupportedAtMultipleShards) {
  net::shard_engine engine(2);
  core::onfiber_runtime rt(engine, net::make_linear_topology(8));
  EXPECT_THROW(rt.enable_reliability(), std::logic_error);
}

TEST(ShardedGuards, ReliabilityAllowedAtOneShard) {
  net::shard_engine engine(1);
  core::onfiber_runtime rt(engine, net::make_linear_topology(8));
  EXPECT_NO_THROW(rt.enable_reliability());
}

}  // namespace
}  // namespace onfiber
