// Sharded parallel event engine: golden delivery traces must be
// bit-identical across shard counts {1, 2, 4} and across reruns, and a
// 1-shard engine must reproduce the classic single-threaded simulator
// exactly (same queue, same seq stream — not merely the same trace).
//
// The scenario is a 16-node chain with GEMV compute sites at nodes 5
// and 10, bidirectional compute traffic (node 0 -> 15 and 15 -> 0), and
// a flapping mid-chain link with jittered reconvergence — so packets
// cross every shard boundary, die in the flap window, and reroute,
// while the control plane (flaps, reconvergence) runs as global events.
// Arrival timestamps are compared with exact double equality.
//
// Bit errors are exercised both ways: corruption draws come from
// counter-based streams keyed on (seed, link, direction, transmit
// sequence), so the flip pattern is a pure function of each packet's
// traversal history and the golden trace holds with BER on at any
// shard count. The reliability layer is likewise shard-aware (per-shard
// task tables on the submitting node's shard, acks as ordinary
// packets), so recovery traces are compared across shard counts too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/shard_channel.hpp"
#include "network/shard_engine.hpp"
#include "network/topology.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

struct trace_entry {
  std::uint32_t task_id;
  net::node_id at;
  double time_s;

  bool operator==(const trace_entry&) const = default;
};

struct scenario_result {
  std::vector<trace_entry> trace;
  std::uint64_t delivered = 0;
  std::uint64_t computed = 0;
  std::uint64_t corrupted = 0;
  net::drop_stats drops;
  net::shard_engine_stats engine;  ///< zeros for the classic simulator
};

/// 16-node chain, GEMV sites at 5 and 10, nearest-site compute routing,
/// link 7 flapping, 40 interleaved up/down requests. `schedule_at` is
/// the scenario's injection clock: sim.schedule_at for the classic
/// engine, engine.schedule_global for the sharded one.
template <class ScheduleAt>
void drive_chain_scenario(core::onfiber_runtime& rt,
                          ScheduleAt&& schedule_at, double ber) {
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(5, {}, 21).configure_gemv(task);
  rt.deploy_engine(10, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {{7, 0.004, 0.007}};
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  if (ber > 0.0) rt.fabric().set_bit_error_rate(ber, 99);

  for (int i = 0; i < 40; ++i) {
    schedule_at(0.0004 * i, [&rt, i] {
      std::vector<double> x(16);
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] = -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      const bool up = i % 2 == 0;
      const net::node_id src = up ? 0 : 15;
      const net::node_id dst = up ? 15 : 0;
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(src).address,
                    rt.fabric().topo().node_at(dst).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                src);
    });
  }
}

scenario_result collect(core::onfiber_runtime& rt) {
  scenario_result r;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    r.trace.push_back(trace_entry{h ? h->task_id : ~std::uint32_t{0}, d.at,
                                  d.time_s});
  }
  r.delivered = rt.fabric().delivered();
  r.computed = rt.stats().computed;
  r.corrupted = rt.fabric().corrupted();
  r.drops = rt.fabric().drops();
  return r;
}

scenario_result run_classic(double ber = 0.0) {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_linear_topology(16));
  drive_chain_scenario(
      rt, [&sim](double t, auto fn) { sim.schedule_at(t, std::move(fn)); },
      ber);
  sim.run(5'000'000);
  EXPECT_FALSE(sim.overran());
  return collect(rt);
}

scenario_result run_sharded(std::size_t shards, double ber = 0.0) {
  net::shard_engine engine(shards);
  core::onfiber_runtime rt(engine, net::make_linear_topology(16));
  drive_chain_scenario(
      rt,
      [&engine](double t, auto fn) {
        engine.schedule_global(t, std::move(fn));
      },
      ber);
  engine.run(5'000'000);
  EXPECT_FALSE(engine.overran());
  scenario_result r = collect(rt);
  r.engine = engine.stats();
  return r;
}

/// deliveries() returns raw event order at 1 shard and a (time, node)
/// merge at more; normalize both to the merge order so traces from
/// different shard counts are comparable element-wise.
std::vector<trace_entry> normalized(const scenario_result& r) {
  std::vector<trace_entry> t = r.trace;
  std::stable_sort(t.begin(), t.end(),
                   [](const trace_entry& a, const trace_entry& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.at < b.at;
                   });
  return t;
}

void expect_same(const scenario_result& a, const scenario_result& b) {
  const auto ta = normalized(a);
  const auto tb = normalized(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].task_id, tb[i].task_id) << "entry " << i;
    EXPECT_EQ(ta[i].at, tb[i].at) << "entry " << i;
    // Exact: sharding may not perturb a single ULP.
    EXPECT_EQ(ta[i].time_s, tb[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.computed, b.computed);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.drops.total(), b.drops.total());
  EXPECT_EQ(a.drops.link_down, b.drops.link_down);
  EXPECT_EQ(a.drops.no_route, b.drops.no_route);
}

/// Shard counts to sweep: {1, 2, 4} plus an optional extra from the
/// ONFIBER_SHARDS environment variable (the CI sharded gates set it).
std::vector<std::size_t> shard_count_sweep() {
  std::vector<std::size_t> counts = {1, 2, 4};
  if (const char* env = std::getenv("ONFIBER_SHARDS")) {
    const std::size_t extra = static_cast<std::size_t>(std::atoi(env));
    if (extra > 1 &&
        std::find(counts.begin(), counts.end(), extra) == counts.end()) {
      counts.push_back(extra);
    }
  }
  return counts;
}

TEST(ShardedDeterminism, OneShardMatchesClassicExactly) {
  const scenario_result classic = run_classic();
  const scenario_result one = run_sharded(1);
  // Raw traces, not normalized: 1-shard mode shares the classic queue
  // and seq stream, so even same-timestamp ordering must match.
  ASSERT_EQ(classic.trace.size(), one.trace.size());
  EXPECT_TRUE(classic.trace == one.trace);
  expect_same(classic, one);
  EXPECT_EQ(one.engine.windows, 0u);
  EXPECT_EQ(one.engine.parcels, 0u);
}

TEST(ShardedDeterminism, OneShardMatchesClassicWithBitErrors) {
  // Raw-trace equivalence at 1 shard with bit errors on: the counter
  // streams depend only on traversal history, which a 1-shard engine
  // shares event-for-event with the classic simulator.
  const scenario_result classic = run_classic(1e-4);
  const scenario_result one = run_sharded(1, 1e-4);
  EXPECT_TRUE(classic.trace == one.trace);
  expect_same(classic, one);
}

TEST(ShardedDeterminism, GoldenTraceBitIdenticalAcrossShardCounts) {
  const scenario_result classic = run_classic();
  // Sanity on the reference itself: traffic flowed, flaps killed some.
  EXPECT_GE(classic.delivered, 20u);
  EXPECT_GT(classic.drops.total(), 0u);

  for (const std::size_t shards : shard_count_sweep()) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const scenario_result r = run_sharded(shards);
    expect_same(classic, r);
    if (shards > 1) {
      // The parallel machinery must actually have been exercised.
      EXPECT_GT(r.engine.windows, 0u);
      EXPECT_GT(r.engine.parcels, 0u);
    }
  }
}

TEST(ShardedDeterminism, GoldenTraceWithBitErrorsAcrossShardCounts) {
  // Same chain-flap scenario with BER on: corruption draws come from
  // counter streams keyed by traversal history, so the delivery trace —
  // including which packets corrupt — is exact-double identical at any
  // shard count.
  const scenario_result classic = run_classic(1e-4);
  EXPECT_GE(classic.delivered, 10u);  // some corrupted headers get dropped
  EXPECT_GT(classic.drops.total(), 0u);
  EXPECT_GT(classic.corrupted, 0u);  // BER must actually bite
  for (const std::size_t shards : shard_count_sweep()) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_same(classic, run_sharded(shards, 1e-4));
  }
}

TEST(ShardedDeterminism, BitIdenticalAcrossReruns) {
  const scenario_result a = run_sharded(4);
  const scenario_result b = run_sharded(4);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_TRUE(a.trace == b.trace);
  EXPECT_EQ(a.engine.parcels, b.engine.parcels);
}

// ---------------------------------------------------------------------
// Backpressure: a bounded cross-shard channel that fills must stall the
// producer (stalls counted, producer drains its own inbound to stay
// live) and never drop a parcel.

TEST(ShardedBackpressure, FullChannelStallsProducerWithoutDrops) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kPackets = 400;
  net::shard_engine engine(2, kCapacity);
  net::wan_fabric fabric(engine, net::make_linear_topology(8));
  fabric.install_shortest_path_routes();

  std::uint64_t delivered_cb = 0;
  fabric.set_deliver_callback(
      [&](const net::packet&, net::node_id at, double) {
        EXPECT_EQ(at, 7u);
        ++delivered_cb;
      });
  // One burst: every packet crosses the shard boundary (3-4) within a
  // few conservative windows, far exceeding the 8-parcel channel.
  engine.schedule_global(0.0, [&fabric] {
    for (int i = 0; i < kPackets; ++i) {
      net::packet pkt;
      pkt.src = fabric.topo().node_at(0).address;
      pkt.dst = fabric.topo().node_at(7).address;
      pkt.payload.resize(64);
      fabric.send(pkt, 0);
    }
  });
  engine.run();
  EXPECT_FALSE(engine.overran());

  EXPECT_EQ(fabric.delivered(), static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(delivered_cb, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(fabric.drops().total(), 0u);
  const net::shard_engine_stats& s = engine.stats();
  EXPECT_EQ(s.parcels, static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(s.producer_stalls, 0u);
  EXPECT_LE(s.max_channel_depth, kCapacity);
}

TEST(ShardedChannel, SpscPushPopBounds) {
  net::spsc_channel ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  net::parcel p;
  for (std::uint64_t i = 0; i < 4; ++i) {
    p.seq = i;
    EXPECT_TRUE(ch.try_push(std::move(p)));
  }
  p.seq = 99;
  EXPECT_FALSE(ch.try_push(std::move(p)));
  EXPECT_EQ(p.seq, 99u);  // rejected parcel is left intact
  net::parcel out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.try_pop(out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(ch.try_pop(out));
  EXPECT_TRUE(ch.empty());
}

// ---------------------------------------------------------------------
// Partitioning: contiguous blocks for chains, balanced regions for
// meshes, deterministic everywhere.

TEST(ShardedPartition, ChainCutsIntoContiguousBlocks) {
  const net::topology chain = net::make_linear_topology(32);
  const auto part = net::partition_topology(chain, 4);
  ASSERT_EQ(part.size(), 32u);
  for (std::size_t u = 0; u < part.size(); ++u) {
    EXPECT_EQ(part[u], u / 8) << "node " << u;
  }
}

TEST(ShardedPartition, MeshPartitionIsBalancedAndDeterministic) {
  const net::topology wan = net::make_uswan_topology();
  const auto part = net::partition_topology(wan, 3);
  ASSERT_EQ(part.size(), wan.node_count());
  std::vector<std::size_t> sizes(3, 0);
  for (const std::uint32_t s : part) {
    ASSERT_LT(s, 3u);
    ++sizes[s];
  }
  for (const std::size_t n : sizes) {
    EXPECT_GE(n, 2u);  // 12 nodes over 3 shards: no shard starved
    EXPECT_LE(n, 6u);
  }
  EXPECT_EQ(part, net::partition_topology(wan, 3));
}

TEST(ShardedPartition, MoreShardsThanNodesClamps) {
  const net::topology chain = net::make_linear_topology(3);
  const auto part = net::partition_topology(chain, 8);
  ASSERT_EQ(part.size(), 3u);
  for (const std::uint32_t s : part) EXPECT_LT(s, 3u);
}

// ---------------------------------------------------------------------
// Guard rails.

TEST(ShardedGuards, ReliabilityAllowedAtAnyShardCount) {
  // The single-shard restriction is gone: task tables live on the
  // submitting node's shard and acks travel as ordinary packets, so
  // enabling reliability is legal at any shard count.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    net::shard_engine engine(shards);
    core::onfiber_runtime rt(engine, net::make_linear_topology(8));
    EXPECT_NO_THROW(rt.enable_reliability()) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------
// Reliability across shards: the PR 2 flap scenario (figure-1, two
// flapping links, retransmit + backoff + failover) must complete every
// task and produce a bit-identical recovery trace at any shard count.

struct reliable_run {
  std::vector<core::onfiber_runtime::reliability_event> trace;
  core::onfiber_runtime::reliability_stats stats;
};

/// Figure-1 topology (4 nodes: A=0, B=1, C=2, D=3; links 0 A-B, 2 B-D
/// flap), GEMV sites at B and C, 12 reliable A -> D tasks submitted at
/// t = 0. Mirrors test_reliability.cpp's run_flap_scenario so the
/// classic run here is the same scenario PR 2 pinned.
template <class ScheduleAt>
void drive_flap_reliable(core::onfiber_runtime& rt,
                         ScheduleAt&& schedule_at) {
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (double& w : task.weights.data) w = 0.5;
  rt.deploy_engine(1, {}, 71).configure_gemv(task);
  rt.deploy_engine(2, {}, 72).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.000, 0.050},  // A-B
      {2, 0.010, 0.060},  // B-D
  };
  rt.fabric().schedule_flaps(flaps, 0.004, /*jitter_seed=*/5,
                             /*reconvergence_jitter_s=*/0.002);

  core::onfiber_runtime::reliability_config cfg;
  cfg.initial_rto_s = 0.020;
  cfg.backoff = 2.0;
  cfg.failover_after = 2;
  rt.enable_reliability(cfg);

  schedule_at(0.0, [&rt] {
    const std::vector<double> x(4, 0.5);
    for (std::uint32_t id = 0; id < 12; ++id) {
      rt.submit_reliable(
          core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                  rt.fabric().topo().node_at(3).address, x,
                                  1, id),
          0);
    }
  });
}

reliable_run run_flap_reliable_classic() {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  drive_flap_reliable(
      rt, [&sim](double t, auto fn) { sim.schedule_at(t, std::move(fn)); });
  sim.run(5'000'000);
  EXPECT_FALSE(sim.overran());
  return reliable_run{rt.recovery_trace(), rt.reliability()};
}

reliable_run run_flap_reliable_sharded(std::size_t shards) {
  net::shard_engine engine(shards);
  core::onfiber_runtime rt(engine, net::make_figure1_topology());
  drive_flap_reliable(rt, [&engine](double t, auto fn) {
    engine.schedule_global(t, std::move(fn));
  });
  engine.run(5'000'000);
  EXPECT_FALSE(engine.overran());
  return reliable_run{rt.recovery_trace(), rt.reliability()};
}

void expect_same_recovery(const reliable_run& a, const reliable_run& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.trace[i].what),
              static_cast<int>(b.trace[i].what))
        << "event " << i;
    EXPECT_EQ(a.trace[i].task_id, b.trace[i].task_id) << "event " << i;
    // Exact doubles: sharding may not perturb a single ULP.
    EXPECT_EQ(a.trace[i].time_s, b.trace[i].time_s) << "event " << i;
    EXPECT_EQ(a.trace[i].site, b.trace[i].site) << "event " << i;
  }
  EXPECT_EQ(a.stats.submitted, b.stats.submitted);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.retransmits, b.stats.retransmits);
  EXPECT_EQ(a.stats.failovers, b.stats.failovers);
  EXPECT_EQ(a.stats.acks_sent, b.stats.acks_sent);
  EXPECT_EQ(a.stats.duplicate_deliveries, b.stats.duplicate_deliveries);
  EXPECT_EQ(a.stats.max_completion_s, b.stats.max_completion_s);
}

TEST(ShardedReliability, FlapRecoveryEquivalentAcrossShardCounts) {
  const reliable_run classic = run_flap_reliable_classic();
  // The reference really exercises recovery and everything completes.
  EXPECT_EQ(classic.stats.submitted, 12u);
  EXPECT_EQ(classic.stats.completed, 12u);
  EXPECT_EQ(classic.stats.failed, 0u);
  EXPECT_GT(classic.stats.retransmits, 0u);
  for (const std::size_t shards : shard_count_sweep()) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_same_recovery(classic, run_flap_reliable_sharded(shards));
  }
}

TEST(ShardedReliability, RecoveryTraceBitIdenticalAcrossReruns) {
  const reliable_run a = run_flap_reliable_sharded(4);
  const reliable_run b = run_flap_reliable_sharded(4);
  expect_same_recovery(a, b);
  EXPECT_EQ(a.stats.completed, 12u);
}

}  // namespace
}  // namespace onfiber
