// Integration tests: full paper scenarios across multiple subsystems.
#include <gtest/gtest.h>

#include "apps/ml_inference.hpp"
#include "controller/controller.hpp"
#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "core/transponder.hpp"
#include "digital/dnn.hpp"
#include "network/traffic.hpp"
#include "photonics/fiber.hpp"

namespace onfiber {
namespace {

using core::compute_mode;
using core::engine_config;
using core::onfiber_runtime;

/// The paper's Figure-1 scenario: a laptop flow needing packet
/// classification (P2 at site B) and a phone flow needing image
/// recognition (DNN at site C), both A -> D, running concurrently.
TEST(Integration, Figure1TwoApplications) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());

  // Site B: packet classifier (two traffic classes by first payload byte).
  core::match_task classifier;
  std::vector<std::uint8_t> class_a{0x11};
  std::vector<std::uint8_t> class_b{0x22};
  classifier.patterns.push_back(
      phot::to_ternary(phot::bytes_to_bits(class_a)));
  classifier.patterns.push_back(
      phot::to_ternary(phot::bytes_to_bits(class_b)));
  rt.deploy_engine(1, {}, 101).configure_match(classifier);

  // Site C: image recognition (DNN on the synthetic dataset).
  const digital::dataset data =
      digital::make_synthetic_dataset(16, 4, 12, 0.08, 7);
  const digital::dnn_model model =
      digital::train_mlp(data, {12}, 40, 0.08, 11,
                         digital::activation_kind::photonic_sin2, 2.0);
  rt.deploy_engine(2, {}, 102).configure_dnn(apps::to_photonic_task(model));
  rt.install_compute_routes_via_nearest_site();

  const net::ipv4 src = rt.fabric().topo().node_at(0).address;
  const net::ipv4 dst = rt.fabric().topo().node_at(3).address;

  // Laptop: classify a class-B packet.
  rt.submit(core::make_match_request(src, dst, class_b, 1), 0);
  // Phone: recognize sample 0.
  rt.submit(core::make_dnn_request(src, dst, data.samples[0],
                                   model.output_dim(), 2),
            0);
  sim.run();

  ASSERT_EQ(rt.deliveries().size(), 2u);
  EXPECT_EQ(rt.stats().computed, 2u);
  EXPECT_EQ(rt.stats().uncomputed_delivered, 0u);

  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    ASSERT_TRUE(h.has_value());
    if (h->task_id == 1) {
      EXPECT_EQ(core::read_match_result(d.pkt).value(), 1);  // class B
    } else {
      const auto r = core::read_dnn_result(d.pkt);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->predicted_class, data.labels[0]);
    }
  }
}

/// Controller-planned allocation drives the data plane: solve, install
/// the two-field routes, and verify packets reach the planned sites.
TEST(Integration, ControllerDrivesRuntimeRoutes) {
  net::topology topo = net::make_uswan_topology();
  net::simulator sim;
  onfiber_runtime rt(sim, topo);

  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (std::size_t c = 0; c < 4; ++c) task.weights.at(0, c) = 0.25;

  // Transponders at Denver(4) and Chicago(7).
  rt.deploy_engine(4, {}, 201).configure_gemv(task);
  rt.deploy_engine(7, {}, 202).configure_gemv(task);

  ctrl::allocation_problem p;
  p.topo = &topo;
  p.transponders = {
      {0, 4, {proto::primitive_id::p1_dot_product}, 1e6},
      {1, 7, {proto::primitive_id::p1_dot_product}, 1e6},
  };
  ctrl::compute_demand d;
  d.id = 0;
  d.src = 0;   // Seattle
  d.dst = 10;  // New York
  d.chain = {proto::primitive_id::p1_dot_product};
  p.demands = {d};

  const ctrl::allocation_result alloc = ctrl::solve_greedy(p);
  ASSERT_TRUE(alloc.assignments[0].satisfied);
  for (const auto& route : ctrl::routes_for_allocation(p, alloc)) {
    rt.set_compute_route(route.at, route.dst_prefix, route.primitive,
                         route.next_hop);
  }

  const std::vector<double> x{0.4, 0.4, 0.4, 0.4};
  rt.submit(core::make_gemv_request(topo.node_at(0).address,
                                    topo.node_at(10).address, x, 1),
            0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  EXPECT_EQ(rt.stats().computed, 1u);
  const auto result = core::read_gemv_result(rt.deliveries()[0].pkt);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR((*result)[0], 0.4, 0.15);
}

/// Failure injection: the allocated site dies; the controller re-plans
/// onto the surviving transponder and traffic flows again.
TEST(Integration, TransponderFailureReallocation) {
  net::topology topo = net::make_uswan_topology();

  ctrl::allocation_problem p;
  p.topo = &topo;
  p.transponders = {
      {0, 4, {proto::primitive_id::p2_pattern_match}, 1e6},
      {1, 7, {proto::primitive_id::p2_pattern_match}, 1e6},
  };
  ctrl::compute_demand d;
  d.id = 0;
  d.src = 0;
  d.dst = 10;
  d.chain = {proto::primitive_id::p2_pattern_match};
  p.demands = {d};

  const ctrl::allocation_result before = ctrl::solve_greedy(p);
  ASSERT_TRUE(before.assignments[0].satisfied);
  const std::uint32_t original = before.assignments[0].transponder_ids[0];

  // Kill the allocated transponder: zero capacity.
  ctrl::allocation_problem degraded = p;
  degraded.transponders[original].capacity_ops_s = 0.0;
  const ctrl::allocation_result after = ctrl::solve_greedy(degraded);
  ASSERT_TRUE(after.assignments[0].satisfied);
  EXPECT_NE(after.assignments[0].transponder_ids[0], original);

  // The reconfiguration plan must install the primitive on the survivor.
  const auto ops = ctrl::plan_reconfiguration(degraded, before, after);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].transponder_id, after.assignments[0].transponder_ids[0]);
}

/// Corrupted compute headers in flight are dropped, not misrouted.
TEST(Integration, CorruptedHeaderDropped) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  rt.deploy_engine(1, {}, 301);
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x(4, 0.5);
  net::packet pkt =
      core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                              rt.fabric().topo().node_at(3).address, x, 1);
  pkt.payload[5] ^= 0xff;  // corrupt the header body
  rt.submit(pkt, 0);
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), 0u);
  EXPECT_EQ(rt.stats().malformed_dropped, 1u);
}

/// Physical layer end to end: compute packet serialized by a commodity
/// transponder, carried over an amplified fiber span, received intact,
/// then computed on by an engine.
TEST(Integration, PhysicalLayerCarriesComputePacket) {
  core::commodity_transponder tx({}, 401);
  const std::vector<double> x{0.3, 0.6, 0.9, 0.1};
  net::packet pkt = core::make_gemv_request(net::ipv4(10, 0, 0, 2),
                                            net::ipv4(10, 3, 0, 2), x, 1);
  const auto wire_in = pkt.payload;

  const phot::waveform wave = tx.transmit(wire_in);
  phot::fiber_config fc;
  fc.length_km = 80.0;
  fc.amplified = true;
  fc.symbol_rate_hz = tx.config().symbol_rate_hz;
  phot::fiber_span span(fc, phot::rng{402});
  const core::receive_report rx = tx.receive(span.propagate(wave), wire_in);
  ASSERT_EQ(rx.bytes, wire_in);  // link is clean
  EXPECT_EQ(rx.symbol_errors, 0u);

  net::packet received = pkt;
  received.payload = rx.bytes;
  core::photonic_engine engine({}, 403);
  core::gemv_task task;
  task.weights = phot::matrix(1, 4);
  for (std::size_t c = 0; c < 4; ++c) task.weights.at(0, c) = 0.5;
  engine.configure_gemv(task);
  ASSERT_TRUE(engine.process(received).computed);
  const auto result = core::read_gemv_result(received);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR((*result)[0], 0.5 * (0.3 + 0.6 + 0.9 + 0.1), 0.15);
}

/// Heavy load: many concurrent compute packets through one serial engine
/// keep FIFO order and all complete.
TEST(Integration, EngineQueueUnderLoad) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(2, 32);
  for (double& w : task.weights.data) w = 0.2;
  rt.deploy_engine(1, {}, 501).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x(32, 0.5);
  constexpr int packets = 20;
  for (int i = 0; i < packets; ++i) {
    rt.submit(core::make_gemv_request(
                  rt.fabric().topo().node_at(0).address,
                  rt.fabric().topo().node_at(3).address, x, 2,
                  static_cast<std::uint32_t>(i)),
              0);
  }
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), static_cast<std::size_t>(packets));
  EXPECT_EQ(rt.stats().computed, static_cast<std::uint64_t>(packets));
  // FIFO through the serial engine: deliveries in task order.
  for (std::size_t i = 1; i < rt.deliveries().size(); ++i) {
    const auto prev = proto::peek_compute_header(rt.deliveries()[i - 1].pkt);
    const auto cur = proto::peek_compute_header(rt.deliveries()[i].pkt);
    EXPECT_LT(prev->task_id, cur->task_id);
    EXPECT_LE(rt.deliveries()[i - 1].time_s, rt.deliveries()[i].time_s);
  }
}

/// Mixed compute + bulk background traffic share the fabric.
TEST(Integration, ComputeAndPlainTrafficCoexist) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(1, 8);
  for (double& w : task.weights.data) w = 0.1;
  rt.deploy_engine(1, {}, 601).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::ipv4 src = rt.fabric().topo().node_at(0).address;
  const net::ipv4 dst = rt.fabric().topo().node_at(3).address;

  // Background: 100 plain packets.
  net::traffic_config tc;
  tc.packet_rate_pps = 1e6;
  net::traffic_generator gen(tc, src, dst, 602);
  for (auto& a : gen.generate_count(100)) {
    sim.schedule(a.time_s, [&rt, pkt = a.pkt]() mutable {
      rt.submit(std::move(pkt), 0);
    });
  }
  // Foreground: 5 compute packets.
  const std::vector<double> x(8, 0.5);
  for (int i = 0; i < 5; ++i) {
    rt.submit(core::make_gemv_request(src, dst, x, 1), 0);
  }
  sim.run();
  EXPECT_EQ(rt.deliveries().size(), 105u);
  EXPECT_EQ(rt.stats().computed, 5u);
  EXPECT_EQ(rt.fabric().dropped(), 0u);
}

/// Controller-planned two-stage chain: the controller places P1 at one
/// site and P3 at another, emits per-stage routes, and the data plane
/// executes the chain across both — §3's task DAG meeting §5's
/// distributed execution.
TEST(Integration, ControllerPlannedChainAcrossSites) {
  net::topology topo = net::make_uswan_topology();
  net::simulator sim;
  onfiber_runtime rt(sim, topo);

  core::gemv_task task;
  task.weights = phot::matrix(4, 8);
  for (double& w : task.weights.data) w = 0.4;
  task.relu_output = true;
  // Denver(4): P1 engine; Chicago(7): plain engine (P3 built-in).
  rt.deploy_engine(4, {}, 801).configure_gemv(task);
  rt.deploy_engine(7, {}, 802);

  ctrl::allocation_problem p;
  p.topo = &topo;
  p.transponders = {
      {0, 4, {proto::primitive_id::p1_dot_product}, 1e6},
      {1, 7, {proto::primitive_id::p3_nonlinear}, 1e6},
  };
  ctrl::compute_demand d;
  d.id = 0;
  d.src = 0;   // Seattle
  d.dst = 10;  // New York
  d.chain = {proto::primitive_id::p1_dot_product,
             proto::primitive_id::p3_nonlinear};
  p.demands = {d};

  const auto alloc = ctrl::solve_greedy(p);
  ASSERT_TRUE(alloc.assignments[0].satisfied);
  ASSERT_EQ(alloc.assignments[0].transponder_ids.size(), 2u);
  for (const auto& route : ctrl::routes_for_allocation(p, alloc)) {
    rt.set_compute_route(route.at, route.dst_prefix, route.primitive,
                         route.next_hop);
  }

  const std::vector<double> x(8, 0.5);
  const std::vector<proto::primitive_id> stages = d.chain;
  rt.submit(core::make_chain_request(topo.node_at(0).address,
                                     topo.node_at(10).address, stages, x,
                                     /*result_capacity=*/8),
            0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  const auto h = proto::peek_compute_header(rt.deliveries()[0].pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->has_result());
  EXPECT_EQ(h->hops, 2);
  EXPECT_EQ(rt.stats().computed, 2u);
}

/// Robustness: a mis-programmed circular compute route must be broken by
/// TTL, not loop forever.
TEST(Integration, CircularComputeRoutesBoundedByTtl) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  // No capable site anywhere; bogus routes bounce A <-> B for P1 packets
  // destined to D.
  const net::prefix dst_prefix =
      rt.fabric().topo().node_at(3).attached_prefix;
  rt.set_compute_route(0, dst_prefix, proto::primitive_id::p1_dot_product, 1);
  rt.set_compute_route(1, dst_prefix, proto::primitive_id::p1_dot_product, 0);

  const std::vector<double> x(4, 0.5);
  rt.submit(core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                    rt.fabric().topo().node_at(3).address, x,
                                    1),
            0);
  const auto executed = sim.run();
  EXPECT_LT(executed, 1000u);  // terminated, not an infinite loop
  EXPECT_EQ(rt.deliveries().size(), 0u);
  EXPECT_EQ(rt.fabric().dropped(), 1u);  // TTL kill
}

/// OEO-per-hop mode also completes end to end (the ablation baseline is a
/// working system, not a strawman).
TEST(Integration, OeoModeEndToEnd) {
  net::simulator sim;
  onfiber_runtime rt(sim, net::make_figure1_topology());
  engine_config cfg;
  cfg.mode = compute_mode::oeo_per_hop;
  core::gemv_task task;
  task.weights = phot::matrix(1, 8);
  for (double& w : task.weights.data) w = 0.25;
  rt.deploy_engine(1, cfg, 701).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const std::vector<double> x(8, 0.4);
  rt.submit(core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                    rt.fabric().topo().node_at(3).address, x,
                                    1),
            0);
  sim.run();
  ASSERT_EQ(rt.deliveries().size(), 1u);
  const auto result = core::read_gemv_result(rt.deliveries()[0].pkt);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR((*result)[0], 0.25 * 8 * 0.4, 0.2);
}

}  // namespace
}  // namespace onfiber
