// Tests for the observability plane (src/obs): the metrics registry,
// the packet-lifecycle tracer, the site timeline, the exporter — and the
// load-bearing guarantee that enabling any of it cannot move a single
// bit of the simulation. The golden-parity tests rerun the determinism
// suite's flap + bit-error scenario and the reliability recovery
// scenario with tracing on and off and compare the traces with exact
// double equality.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/topology.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber {
namespace {

/// Every test in this file mutates the process-wide obs state; the
/// guard restores the enabled flag (the whole suite may run under
/// ONFIBER_TRACE=1) and leaves the rings/metrics zeroed.
struct obs_state_guard {
  bool prev = obs::enabled();
  obs_state_guard() {
    obs::registry::global().reset_values();
    obs::tracer::global().clear();
    obs::timeline::global().clear();
  }
  ~obs_state_guard() {
    obs::set_enabled(prev);
    obs::registry::global().reset_values();
    obs::tracer::global().clear();
    obs::timeline::global().clear();
  }
};

// ------------------------------------------------------------ registry

TEST(ObsRegistry, HandlesAreStableAcrossReset) {
  obs_state_guard guard;
  obs::registry& reg = obs::registry::global();
  obs::counter& c = reg.get_counter("test.obs.counter");
  obs::gauge& g = reg.get_gauge("test.obs.gauge");
  obs::histogram& h = reg.get_histogram("test.obs.hist");

  c.add();
  c.add(4);
  g.set(2.5);
  h.observe(0.25);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  EXPECT_EQ(h.count(), 1u);

  reg.reset_values();
  // Same objects, zeroed values: cached raw pointers stay valid.
  EXPECT_EQ(&reg.get_counter("test.obs.counter"), &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsRegistry, HistogramBucketsAndAggregates) {
  obs_state_guard guard;
  obs::histogram h;
  h.observe(1.0);
  h.observe(1.5);   // same power-of-two bucket as 1.0
  h.observe(0.001);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.501);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 102.501 / 4.0);
  // The bucket ladder is monotone and covers the observations.
  std::uint64_t total = 0;
  for (int i = 0; i < obs::histogram::kBuckets; ++i) total += h.bucket(i);
  EXPECT_EQ(total, 4u);
  EXPECT_LT(obs::histogram::bucket_upper_bound(3),
            obs::histogram::bucket_upper_bound(4));
}

// ------------------------------------------------------------- tracer

TEST(ObsTracer, RingWrapsAndKeepsNewest) {
  obs_state_guard guard;
  obs::tracer& tr = obs::tracer::global();
  tr.set_capacity(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    obs::hop_record r;
    r.trace_id = 1;
    r.node = i;
    r.time_s = static_cast<double>(i);
    tr.record(r);
  }
  EXPECT_EQ(tr.total_recorded(), 10u);
  const auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest to newest: records 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].node, 6u + i);
  }
  tr.set_capacity(obs::tracer::kDefaultCapacity);
}

// ---------------------------------------------- golden-parity scenario
//
// The determinism suite's Fig. 1 flap + BER scenario, parameterized on
// tracing. The delivery trace, counters and recovery trace must be
// bit-identical either way.

struct trace_entry {
  std::uint32_t task_id;
  net::node_id at;
  double time_s;

  bool operator==(const trace_entry&) const = default;
};

struct scenario_result {
  std::vector<trace_entry> trace;
  std::uint64_t delivered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t computed = 0;
  std::uint64_t redirected = 0;
  std::uint64_t malformed = 0;
  net::drop_stats drops;
};

scenario_result run_flap_ber_scenario(bool tracing) {
  obs::set_enabled(tracing);
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(1, {}, 21).configure_gemv(task);
  rt.deploy_engine(2, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.004, 0.011},
      {2, 0.006, 0.013},
  };
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  rt.fabric().set_bit_error_rate(1e-4, 99);

  std::vector<double> x(16);
  for (int i = 0; i < 48; ++i) {
    sim.schedule_at(0.0004 * i, [&rt, &x, i]() mutable {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] =
            -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(0).address,
                    rt.fabric().topo().node_at(3).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                0);
    });
  }
  sim.run(1'000'000);
  EXPECT_FALSE(sim.overran());

  scenario_result r;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    r.trace.push_back(trace_entry{h ? h->task_id : ~std::uint32_t{0}, d.at,
                                  d.time_s});
  }
  r.delivered = rt.fabric().delivered();
  r.corrupted = rt.fabric().corrupted();
  r.computed = rt.stats().computed;
  r.redirected = rt.stats().redirected;
  r.malformed = rt.stats().malformed_dropped;
  r.drops = rt.fabric().drops();
  return r;
}

TEST(ObsParity, GoldenDeliveryTraceBitIdenticalWithTracingOn) {
  obs_state_guard guard;
  const scenario_result off = run_flap_ber_scenario(false);
  obs::registry::global().reset_values();
  obs::tracer::global().clear();
  const scenario_result on = run_flap_ber_scenario(true);

  ASSERT_EQ(off.trace.size(), on.trace.size());
  for (std::size_t i = 0; i < off.trace.size(); ++i) {
    EXPECT_EQ(off.trace[i].task_id, on.trace[i].task_id) << "entry " << i;
    EXPECT_EQ(off.trace[i].at, on.trace[i].at) << "entry " << i;
    // Exact: tracing may not perturb a single ULP.
    EXPECT_EQ(off.trace[i].time_s, on.trace[i].time_s) << "entry " << i;
  }
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(off.corrupted, on.corrupted);
  EXPECT_EQ(off.computed, on.computed);
  EXPECT_EQ(off.drops.total(), on.drops.total());
}

TEST(ObsParity, CountersMatchLegacyTotalsOnGoldenRun) {
  obs_state_guard guard;
  obs::set_enabled(true);
  obs::registry::global().reset_values();
  obs::tracer::global().clear();
  const scenario_result r = run_flap_ber_scenario(true);

  obs::registry& reg = obs::registry::global();
  EXPECT_EQ(reg.get_counter("fabric.delivered").value(), r.delivered);
  EXPECT_EQ(reg.get_counter("fabric.corrupted").value(), r.corrupted);
  EXPECT_EQ(reg.get_counter("runtime.computed").value(), r.computed);
  EXPECT_EQ(reg.get_counter("runtime.redirected").value(), r.redirected);
  EXPECT_EQ(reg.get_counter("runtime.malformed_dropped").value(),
            r.malformed);
  EXPECT_EQ(reg.get_counter("fabric.drop.link_down").value(),
            r.drops.link_down);
  EXPECT_EQ(reg.get_counter("fabric.drop.no_route").value(),
            r.drops.no_route);
  EXPECT_EQ(reg.get_counter("fabric.drop.hook_drop").value(),
            r.drops.hook_drop);
  EXPECT_EQ(reg.get_counter("fabric.drop.ttl_expired").value() +
                reg.get_counter("fabric.drop.link_down").value() +
                reg.get_counter("fabric.drop.no_route").value() +
                reg.get_counter("fabric.drop.hook_drop").value() +
                reg.get_counter("fabric.drop.bad_redirect").value(),
            r.drops.total());
  // The timeline sampled the compute sites.
  EXPECT_GT(obs::timeline::global().total_recorded(), 0u);
}

TEST(ObsParity, PacketLifeCoversInjectToDeliver) {
  obs_state_guard guard;
  obs::set_enabled(true);
  obs::registry::global().reset_values();
  obs::tracer::global().clear();
  (void)run_flap_ber_scenario(true);

  // Find the first healthy A -> D request: injected at A, computed en
  // route, delivered at D. (Which trace id that is depends on the flap
  // and bit-error schedules, so scan instead of pinning one.)
  std::vector<obs::hop_record> life;
  for (std::uint64_t id = 1; id <= 48; ++id) {
    auto candidate = obs::tracer::global().packet_life(id);
    if (!candidate.empty() &&
        candidate.back().action == obs::hop_action::deliver) {
      life = std::move(candidate);
      break;
    }
  }
  ASSERT_GE(life.size(), 3u);
  EXPECT_EQ(life.front().action, obs::hop_action::inject);
  EXPECT_EQ(life.front().node, 0u);
  EXPECT_EQ(life.back().action, obs::hop_action::deliver);
  EXPECT_EQ(life.back().node, 3u);
  const std::uint64_t id = life.front().trace_id;
  bool computed = false;
  for (const auto& rec : life) {
    if (rec.action == obs::hop_action::compute) computed = true;
    EXPECT_EQ(rec.trace_id, id);
  }
  EXPECT_TRUE(computed);
  // Times are monotone along one packet's life.
  for (std::size_t i = 1; i < life.size(); ++i) {
    EXPECT_LE(life[i - 1].time_s, life[i].time_s);
  }
}

TEST(ObsParity, RecoveryTraceBitIdenticalWithTracingOn) {
  obs_state_guard guard;
  const auto run = [](bool tracing) {
    obs::set_enabled(tracing);
    net::simulator sim;
    core::onfiber_runtime rt(sim, net::make_figure1_topology());
    core::gemv_task task;
    task.weights = phot::matrix(1, 4);
    for (double& w : task.weights.data) w = 0.5;
    rt.deploy_engine(1, {}, 71).configure_gemv(task);
    rt.deploy_engine(2, {}, 72).configure_gemv(task);
    rt.install_compute_routes_via_nearest_site();

    const net::wan_fabric::link_flap flaps[] = {
        {0, 0.000, 0.050},
        {2, 0.010, 0.060},
    };
    rt.fabric().schedule_flaps(flaps, 0.004, 5, 0.002);

    core::onfiber_runtime::reliability_config cfg;
    cfg.initial_rto_s = 0.020;
    cfg.backoff = 2.0;
    cfg.failover_after = 2;
    rt.enable_reliability(cfg);
    const std::vector<double> x(4, 0.5);
    for (std::uint32_t id = 0; id < 12; ++id) {
      rt.submit_reliable(
          core::make_gemv_request(rt.fabric().topo().node_at(0).address,
                                  rt.fabric().topo().node_at(3).address, x,
                                  1, id),
          0);
    }
    sim.run();
    return rt.recovery_trace();
  };

  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(off.size(), on.size());
  ASSERT_GT(off.size(), 12u);  // submits plus actual recovery activity
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(static_cast<int>(off[i].what), static_cast<int>(on[i].what))
        << "event " << i;
    EXPECT_EQ(off[i].task_id, on[i].task_id) << i;
    EXPECT_EQ(off[i].time_s, on[i].time_s) << i;  // exact
    EXPECT_EQ(off[i].site, on[i].site) << i;
  }
}

// ----------------------------------------------------------- exporter

TEST(ObsExporter, FlatJsonAndCsvAreDeterministic) {
  obs_state_guard guard;
  obs::registry& reg = obs::registry::global();
  reg.get_counter("test.export.b").add(2);
  reg.get_counter("test.export.a").add(1);
  reg.get_histogram("test.export.h").observe(0.5);

  const std::string json = obs::exporter::metrics_json();
  // Sorted by name: a before b before h.
  EXPECT_NE(json.find("\"test.export.a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.h.count\": 1"), std::string::npos);
  EXPECT_LT(json.find("test.export.a"), json.find("test.export.b"));

  const std::string csv = obs::exporter::metrics_csv();
  EXPECT_NE(csv.find("test.export.a,metric,1"), std::string::npos);
  EXPECT_EQ(obs::exporter::metrics_json(), json);  // stable across calls

  obs::hop_record r;
  r.trace_id = 7;
  r.node = 2;
  r.time_s = 0.5;
  r.action = obs::hop_action::drop;
  r.reason = obs::drop_reason::link_down;
  obs::tracer::global().record(r);
  const std::string trace = obs::exporter::trace_csv();
  EXPECT_NE(trace.find("trace_id,time_s,node,action,reason,aux"),
            std::string::npos);
  EXPECT_NE(trace.find("drop,link_down"), std::string::npos);
}

TEST(ObsExporter, AppendFlatPrefixesKeys) {
  obs_state_guard guard;
  obs::registry::global().get_counter("test.append.x").add(3);
  std::vector<std::pair<std::string, double>> sunk;
  obs::exporter::append_flat(
      [&](const std::string& k, double v) { sunk.emplace_back(k, v); });
  bool found = false;
  for (const auto& [k, v] : sunk) {
    EXPECT_EQ(k.rfind("obs.", 0), 0u) << k;
    if (k == "obs.test.append.x") {
      found = true;
      EXPECT_DOUBLE_EQ(v, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

// -------------------------------------------------------- scoped timer

TEST(ObsScopedTimer, RecordsOnlyWhenEnabled) {
  obs_state_guard guard;
  obs::histogram h;
  obs::set_enabled(false);
  { obs::scoped_timer t(h); }
  EXPECT_EQ(h.count(), 0u);
  obs::set_enabled(true);
  { obs::scoped_timer t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
}

}  // namespace
}  // namespace onfiber
