// test_kernels.cpp — batched sample-plane kernels and the deterministic
// threading model.
//
// Two contracts are pinned here:
//   1. Golden values: every batch device API draws the same noise sequence
//      and computes the same arithmetic as its scalar counterpart, so
//      batch == scalar bit-for-bit at a fixed seed. The fused dot kernel
//      reorders floating-point operations (intensity domain vs field
//      domain), so it is pinned to the scalar reference within tight
//      relative tolerance instead.
//   2. Determinism: parallel GEMV produces bit-identical outputs and
//      energy-ledger totals at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "photonics/converter.hpp"
#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/kernels.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/rng.hpp"

namespace onfiber {
namespace {

// ------------------------------------------------------------ RNG batching

TEST(KernelsRng, FillNormalMatchesRepeatedNormal) {
  phot::rng a(123), b(123);
  std::vector<double> batch(257);
  a.fill_normal(batch);
  for (double v : batch) {
    EXPECT_EQ(v, b.normal());
  }
}

TEST(KernelsRng, SpareDeviateKeepsPairsConsistent) {
  // Box-Muller produces deviates in pairs; the spare must survive
  // interleaved uniform() draws untouched (it is cached, not recomputed).
  phot::rng a(9), b(9);
  const double first_a = a.normal();
  const double second_a = a.normal();
  const double first_b = b.normal();
  const double second_b = b.normal();
  EXPECT_EQ(first_a, first_b);
  EXPECT_EQ(second_a, second_b);
  EXPECT_NE(first_a, second_a);
}

// --------------------------------------------------------- device batching

TEST(KernelsDevices, LaserBatchEmitMatchesScalar) {
  phot::laser batch_laser({}, phot::rng{77});
  phot::laser scalar_laser({}, phot::rng{77});
  phot::waveform batch;
  batch_laser.emit(64, batch);
  ASSERT_EQ(batch.size(), 64u);
  for (const phot::field& e : batch) {
    EXPECT_EQ(e, scalar_laser.emit_one());
  }
}

TEST(KernelsDevices, LaserEmitPowersMatchesScalarPowers) {
  // emit_powers returns the power directly; the scalar path round-trips it
  // through sqrt/polar/norm, so agreement is to rounding error, not bits.
  phot::laser power_laser({}, phot::rng{78});
  phot::laser scalar_laser({}, phot::rng{78});
  std::vector<double> powers(48);
  power_laser.emit_powers(powers);
  for (double p : powers) {
    EXPECT_NEAR(p, phot::power_mw(scalar_laser.emit_one()), 1e-12 * p);
  }
}

TEST(KernelsDevices, DacBatchConvertMatchesScalar) {
  phot::dac batch_dac({}, phot::rng{11});
  phot::dac scalar_dac({}, phot::rng{11});
  std::vector<double> in(97), out(97);
  phot::rng gen(5);
  for (double& v : in) v = gen.uniform();
  batch_dac.convert(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], scalar_dac.convert(in[i]));
  }
}

TEST(KernelsDevices, AdcBatchConvertMatchesScalar) {
  phot::adc batch_adc({}, phot::rng{12});
  phot::adc scalar_adc({}, phot::rng{12});
  std::vector<double> in(97), out(97);
  phot::rng gen(6);
  for (double& v : in) v = gen.uniform();
  batch_adc.convert(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], scalar_adc.convert(in[i]));
  }
}

TEST(KernelsDevices, MzmBatchEncodeMatchesScalar) {
  phot::modulator_config cfg;
  cfg.bias_error_sigma_rad = 0.01;  // exercise the imperfect-bias path
  phot::mzm_modulator batch_mod(cfg, 0.0, phot::rng{21});
  phot::mzm_modulator scalar_mod(cfg, 0.0, phot::rng{21});
  phot::laser source({}, phot::rng{22});
  phot::waveform carrier = source.emit(33);
  phot::waveform batch = carrier;
  std::vector<double> x(carrier.size());
  phot::rng gen(7);
  for (double& v : x) v = gen.uniform();
  batch_mod.encode(x, batch);
  for (std::size_t i = 0; i < carrier.size(); ++i) {
    EXPECT_EQ(batch[i], scalar_mod.encode_unit(carrier[i], x[i]));
  }
}

TEST(KernelsDevices, EncodeToOpticalUnchangedByBatching) {
  // The composed launch path (DAC -> laser -> MZM) batches per device and
  // must still be bit-identical to the element-wise loop.
  phot::dot_product_unit unit({}, 31);
  phot::dot_product_unit twin({}, 31);
  std::vector<double> a(41);
  phot::rng gen(8);
  for (double& v : a) v = gen.uniform();
  const phot::waveform batched = unit.encode_to_optical(a);
  // Reproduce the scalar loop with the twin's (identically seeded) devices
  // via length-1 batches.
  phot::waveform expected;
  for (double v : a) {
    const phot::waveform one = twin.encode_to_optical(std::vector<double>{v});
    ASSERT_EQ(one.size(), 1u);
    expected.push_back(one[0]);
  }
  ASSERT_EQ(batched.size(), expected.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], expected[i]);
  }
}

// ------------------------------------------------------- fused dot kernel

TEST(KernelsFusedDot, MatchesScalarReferenceClosely) {
  // Same seed -> same noise draws; the only difference is field-domain vs
  // intensity-domain arithmetic, which must agree to rounding error.
  phot::dot_product_unit fused({}, 91);
  phot::dot_product_unit scalar({}, 91);
  std::vector<double> a(128), b(128);
  phot::rng gen(13);
  for (double& v : a) v = gen.uniform();
  for (double& v : b) v = gen.uniform();
  const auto rf = fused.dot_unit_range(a, b);
  const auto rs = scalar.dot_unit_range_scalar(a, b);
  EXPECT_EQ(rf.symbols, rs.symbols);
  EXPECT_EQ(rf.latency_s, rs.latency_s);
  EXPECT_NEAR(rf.value, rs.value, 1e-9 * std::max(1.0, std::abs(rs.value)));
}

TEST(KernelsFusedDot, MatchesScalarWithBiasError) {
  // Imperfect bias forces the transcendental branch of encode_intensity.
  phot::dot_product_config cfg;
  cfg.modulator.bias_error_sigma_rad = 0.02;
  phot::dot_product_unit fused(cfg, 92);
  phot::dot_product_unit scalar(cfg, 92);
  std::vector<double> a(64), b(64);
  phot::rng gen(14);
  for (double& v : a) v = gen.uniform();
  for (double& v : b) v = gen.uniform();
  const auto rf = fused.dot_unit_range(a, b);
  const auto rs = scalar.dot_unit_range_scalar(a, b);
  EXPECT_NEAR(rf.value, rs.value, 1e-9 * std::max(1.0, std::abs(rs.value)));
}

TEST(KernelsFusedDot, SignedDotUsesArenaAndStaysAccurate) {
  phot::dot_product_unit unit({}, 93);
  std::vector<double> a(96), b(96);
  phot::rng gen(15);
  double exact = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 2.0 * gen.uniform() - 1.0;
    b[i] = 2.0 * gen.uniform() - 1.0;
    exact += a[i] * b[i];
  }
  const auto r = unit.dot_signed(a, b);
  EXPECT_EQ(r.symbols, 4 * a.size());
  EXPECT_NEAR(r.value, exact, 2.0);  // analog-noise tolerance
}

TEST(KernelsFusedDot, LedgerOpsMatchScalarReference) {
  phot::energy_ledger fused_ledger, scalar_ledger;
  phot::dot_product_unit fused({}, 94, &fused_ledger);
  phot::dot_product_unit scalar({}, 94, &scalar_ledger);
  std::vector<double> a(32, 0.5), b(32, 0.25);
  (void)fused.dot_unit_range(a, b);
  (void)scalar.dot_unit_range_scalar(a, b);
  for (const auto& [name, e] : scalar_ledger.entries()) {
    EXPECT_EQ(fused_ledger.ops(name), e.ops) << name;
    EXPECT_NEAR(fused_ledger.joules(name), e.joules, 1e-12 * e.joules)
        << name;
  }
}

// ----------------------------------------------------- threading utilities

TEST(KernelsThreading, ParallelRowsCoversAllRowsOnce) {
  std::vector<std::atomic<int>> hits(103);
  phot::parallel_rows(hits.size(), 8, [&](std::size_t r) { hits[r]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(KernelsThreading, ParallelRowsPropagatesExceptions) {
  EXPECT_THROW(
      phot::parallel_rows(16, 4,
                          [](std::size_t r) {
                            if (r == 7) throw std::runtime_error("row 7");
                          }),
      std::runtime_error);
}

TEST(KernelsThreading, ThreadCountHonorsOverride) {
  EXPECT_EQ(phot::kernel_thread_count(3), 3u);
  EXPECT_GE(phot::kernel_thread_count(0), 1u);
}

TEST(KernelsLedger, MergeAddsJoulesAndOps) {
  phot::energy_ledger total, part;
  total.charge("laser", 1.0, 2);
  part.charge("laser", 0.5, 3);
  part.charge("adc", 0.25);
  total.merge(part);
  EXPECT_DOUBLE_EQ(total.joules("laser"), 1.5);
  EXPECT_EQ(total.ops("laser"), 5u);
  EXPECT_DOUBLE_EQ(total.joules("adc"), 0.25);
  EXPECT_EQ(total.ops("adc"), 1u);
}

// ------------------------------------------------- GEMV thread determinism

TEST(KernelsGemv, BitIdenticalAcrossThreadCounts) {
  phot::matrix w(12, 40);
  std::vector<double> x(40);
  phot::rng gen(16);
  for (double& v : w.data) v = 2.0 * gen.uniform() - 1.0;
  for (double& v : x) v = 2.0 * gen.uniform() - 1.0;

  std::vector<phot::gemv_result> results;
  std::vector<phot::energy_ledger> ledgers(3);
  const std::size_t thread_counts[] = {1, 2, 8};
  for (std::size_t t = 0; t < 3; ++t) {
    phot::vector_matrix_engine engine({}, 314, &ledgers[t]);
    engine.set_threads(thread_counts[t]);
    results.push_back(engine.gemv_signed(w, x));
  }
  for (std::size_t t = 1; t < 3; ++t) {
    ASSERT_EQ(results[t].values.size(), results[0].values.size());
    for (std::size_t r = 0; r < results[0].values.size(); ++r) {
      EXPECT_EQ(results[t].values[r], results[0].values[r]);
    }
    EXPECT_EQ(results[t].latency_s, results[0].latency_s);
    EXPECT_EQ(results[t].symbols, results[0].symbols);
    // Ledger totals must be thread-invariant to the last bit (merged in
    // row order).
    ASSERT_EQ(ledgers[t].entries().size(), ledgers[0].entries().size());
    for (const auto& [name, e] : ledgers[0].entries()) {
      EXPECT_EQ(ledgers[t].joules(name), e.joules) << name;
      EXPECT_EQ(ledgers[t].ops(name), e.ops) << name;
    }
  }
}

TEST(KernelsGemv, UnitRangeAlsoDeterministic) {
  phot::matrix w(9, 24);
  std::vector<double> x(24);
  phot::rng gen(17);
  for (double& v : w.data) v = gen.uniform();
  for (double& v : x) v = gen.uniform();
  phot::vector_matrix_engine e1({}, 55), e2({}, 55);
  e1.set_threads(1);
  e2.set_threads(6);
  const auto r1 = e1.gemv_unit_range(w, x);
  const auto r2 = e2.gemv_unit_range(w, x);
  for (std::size_t r = 0; r < r1.values.size(); ++r) {
    EXPECT_EQ(r1.values[r], r2.values[r]);
  }
}

TEST(KernelsGemv, EngineProcessDeterministicAcrossThreads) {
  // Whole-packet determinism through photonic_engine (both DNN-free GEMV
  // and both compute modes).
  for (const auto mode :
       {core::compute_mode::on_fiber, core::compute_mode::oeo_per_hop}) {
    core::gemv_task task;
    task.weights = phot::matrix(6, 16);
    phot::rng gen(18);
    for (double& v : task.weights.data) v = 2.0 * gen.uniform() - 1.0;
    std::vector<double> x(16);
    for (double& v : x) v = 2.0 * gen.uniform() - 1.0;

    core::engine_config cfg;
    cfg.mode = mode;
    std::vector<std::vector<std::uint8_t>> payloads;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      core::photonic_engine engine(cfg, 777);
      engine.set_threads(threads);
      engine.configure_gemv(task);
      net::packet pkt = core::make_gemv_request(net::ipv4(10, 0, 0, 1),
                                                net::ipv4(10, 0, 0, 2), x, 6);
      const auto rep = engine.process(pkt);
      EXPECT_TRUE(rep.computed);
      payloads.push_back(pkt.payload);
    }
    EXPECT_EQ(payloads[0], payloads[1]);
    EXPECT_EQ(payloads[0], payloads[2]);
  }
}

}  // namespace
}  // namespace onfiber
