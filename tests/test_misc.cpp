// Miscellaneous coverage: small behaviors not exercised elsewhere.
#include <gtest/gtest.h>

#include "controller/rwa.hpp"
#include "controller/service.hpp"
#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "network/fabric.hpp"
#include "photonics/laser.hpp"
#include "photonics/photodetector.hpp"
#include "protocol/codec.hpp"

namespace onfiber {
namespace {

TEST(Misc, PhotodetectorSpanDetect) {
  phot::photodetector_config cfg;
  cfg.noise.enable_shot = false;
  cfg.noise.enable_thermal = false;
  phot::photodetector d(cfg, phot::rng{1});
  const phot::waveform wave{phot::make_field(1.0), phot::make_field(2.0),
                            phot::make_field(0.0)};
  const auto currents = d.detect(wave);
  ASSERT_EQ(currents.size(), 3u);
  EXPECT_GT(currents[1], currents[0]);
  EXPECT_GT(currents[0], currents[2]);
}

TEST(Misc, LaserPhaseContinuityAcrossCalls) {
  // emit_one and emit(n) draw from the same phase walk: consecutive calls
  // continue the stream rather than restarting it.
  phot::laser_config cfg;
  cfg.enable_rin = false;
  phot::laser l1(cfg, phot::rng{7});
  phot::laser l2(cfg, phot::rng{7});
  const auto batch = l1.emit(4);
  phot::waveform singles;
  for (int i = 0; i < 4; ++i) singles.push_back(l2.emit_one());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(std::arg(batch[i]), std::arg(singles[i]));
  }
}

TEST(Misc, EnergyEntriesDeterministicOrder) {
  phot::energy_ledger l;
  l.charge("zeta", 1.0);
  l.charge("alpha", 2.0);
  l.charge("mid", 3.0);
  std::vector<std::string> names;
  for (const auto& [name, e] : l.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Misc, CodecExactEndpoints) {
  EXPECT_EQ(proto::encode_unit_u8(0.0), 0);
  EXPECT_EQ(proto::encode_unit_u8(1.0), 255);
  EXPECT_DOUBLE_EQ(proto::decode_unit_u8(0), 0.0);
  EXPECT_DOUBLE_EQ(proto::decode_unit_u8(255), 1.0);
  // The signed grid is symmetric about byte 128 == exact 0.0.
  EXPECT_EQ(proto::encode_signed_u8(0.0), 128);
  EXPECT_DOUBLE_EQ(proto::decode_signed_u8(128), 0.0);
  EXPECT_DOUBLE_EQ(proto::decode_signed_u8(255), 1.0);
  EXPECT_DOUBLE_EQ(proto::decode_signed_u8(1), -1.0);
}

TEST(Misc, TopologyNeighborErrors) {
  net::topology t = net::make_linear_topology(3, 10.0);
  EXPECT_THROW((void)t.neighbor(2, 0), std::invalid_argument);  // link 0 is 0-1
  EXPECT_THROW((void)t.incident_links(9), std::out_of_range);
  EXPECT_THROW((void)t.node_at(9), std::out_of_range);
}

TEST(Misc, FabricWithoutDeliverCallback) {
  // No callback installed: delivery still counts, nothing crashes.
  net::simulator sim;
  net::wan_fabric fabric(sim, net::make_linear_topology(2, 10.0));
  fabric.install_shortest_path_routes();
  net::packet pkt;
  pkt.dst = fabric.topo().node_at(1).address;
  fabric.send(pkt, 0);
  sim.run();
  EXPECT_EQ(fabric.delivered(), 1u);
}

TEST(Misc, PacketWireBytes) {
  net::packet pkt;
  EXPECT_EQ(pkt.wire_bytes(), 20u);  // bare IP header
  pkt.payload.resize(100);
  EXPECT_EQ(pkt.wire_bytes(), 120u);
}

TEST(Misc, RoutesForEmptyAllocation) {
  net::topology topo = net::make_figure1_topology();
  ctrl::allocation_problem p;
  p.topo = &topo;
  const ctrl::allocation_result r = ctrl::solve_greedy(p);
  EXPECT_TRUE(ctrl::routes_for_allocation(p, r).empty());
  EXPECT_TRUE(ctrl::lightpaths_for_allocation(p, r).empty());
}

TEST(Misc, ServiceWithNoDemandsRunsOneEpoch) {
  net::simulator sim;
  const net::topology topo = net::make_figure1_topology();
  ctrl::controller_service svc(sim, topo, {});
  svc.start();
  sim.run();
  ASSERT_EQ(svc.history().size(), 1u);
  EXPECT_EQ(svc.history()[0].active_demands, 0u);
  EXPECT_DOUBLE_EQ(svc.total_downtime_s(), 0.0);
}

TEST(Misc, EngineConfiguredListing) {
  core::photonic_engine e({}, 5);
  auto prims = e.configured();
  // P3 always on.
  ASSERT_EQ(prims.size(), 1u);
  EXPECT_EQ(prims[0], proto::primitive_id::p3_nonlinear);
  core::gemv_task g;
  g.weights = phot::matrix(1, 1);
  g.weights.at(0, 0) = 1.0;
  e.configure_gemv(g);
  prims = e.configured();
  EXPECT_EQ(prims.size(), 2u);
}

TEST(Misc, ChainReaderMatchesFinalStagePrimitive) {
  // After a P1 -> P3 chain completes, the header's primitive is P3, so
  // only the nonlinear reader accepts it.
  core::photonic_engine e({}, 6);
  core::gemv_task g;
  g.weights = phot::matrix(2, 4);
  for (double& w : g.weights.data) w = 0.5;
  g.relu_output = true;
  e.configure_gemv(g);
  const std::vector<double> x(4, 0.5);
  const std::vector<proto::primitive_id> stages{
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p3_nonlinear};
  net::packet pkt = core::make_chain_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), stages, x, 4);
  ASSERT_TRUE(e.process(pkt).computed);
  ASSERT_TRUE(e.process(pkt).computed);
  EXPECT_TRUE(core::read_nonlinear_result(pkt).has_value());
  EXPECT_FALSE(core::read_gemv_result(pkt).has_value());
}

}  // namespace
}  // namespace onfiber
