// Tests for noise models and the energy ledger.
#include <gtest/gtest.h>

#include <cmath>

#include "photonics/energy.hpp"
#include "photonics/noise.hpp"

namespace onfiber::phot {
namespace {

TEST(Noise, ShotNoiseFormula) {
  // sigma^2 = 2 q I B
  const double sigma = shot_noise_sigma_a(1e-3, 10e9);
  const double expected = 2.0 * electron_charge * 1e-3 * 10e9;
  EXPECT_NEAR(sigma * sigma, expected, 1e-9 * expected);
}

TEST(Noise, ShotNoiseGrowsWithSqrtCurrent) {
  const double s1 = shot_noise_sigma_a(1e-3, 10e9);
  const double s4 = shot_noise_sigma_a(4e-3, 10e9);
  EXPECT_NEAR(s4 / s1, 2.0, 1e-9);
}

TEST(Noise, ShotNoiseHandlesNegativeCurrentMagnitude) {
  EXPECT_DOUBLE_EQ(shot_noise_sigma_a(-1e-3, 1e9),
                   shot_noise_sigma_a(1e-3, 1e9));
}

TEST(Noise, ThermalNoiseFormula) {
  const double sigma = thermal_noise_sigma_a(50.0, 300.0, 10e9);
  EXPECT_NEAR(sigma * sigma, 4.0 * boltzmann_k * 300.0 * 10e9 / 50.0, 1e-25);
}

TEST(Noise, ThermalNoiseIndependentOfSignal) {
  // Only R, T, B matter.
  EXPECT_DOUBLE_EQ(thermal_noise_sigma_a(50.0, 300.0, 1e9),
                   thermal_noise_sigma_a(50.0, 300.0, 1e9));
}

TEST(Noise, RinScalesWithPower) {
  const double s1 = rin_sigma_mw(1.0, -155.0, 10e9);
  const double s2 = rin_sigma_mw(2.0, -155.0, 10e9);
  EXPECT_NEAR(s2 / s1, 2.0, 1e-9);
}

TEST(Noise, RinTypicalMagnitude) {
  // -155 dB/Hz over 10 GHz on 10 mW: sigma = 10 * sqrt(10^-15.5 * 1e10)
  const double sigma = rin_sigma_mw(10.0, -155.0, 10e9);
  EXPECT_NEAR(sigma, 10.0 * std::sqrt(std::pow(10.0, -15.5) * 1e10), 1e-9);
  EXPECT_LT(sigma, 0.1);  // well under 1% of carrier
}

TEST(Noise, ReceiverConfigSamplesZeroWhenDisabled) {
  receiver_noise_config cfg;
  cfg.enable_shot = false;
  cfg.enable_thermal = false;
  rng g(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(cfg.sample_current_noise_a(1e-3, g), 0.0);
  }
}

TEST(Noise, ReceiverNoiseVarianceMatchesSum) {
  receiver_noise_config cfg;
  rng g(2);
  const double i_sig = 1e-3;
  double sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = cfg.sample_current_noise_a(i_sig, g);
    sq += x * x;
  }
  const double shot = shot_noise_sigma_a(i_sig, cfg.bandwidth_hz);
  const double thermal =
      thermal_noise_sigma_a(cfg.load_ohm, cfg.temperature_k, cfg.bandwidth_hz);
  const double expected_var = shot * shot + thermal * thermal;
  EXPECT_NEAR(sq / n, expected_var, 0.03 * expected_var);
}

// ---------------------------------------------------------------- energy

TEST(Energy, LedgerAccumulates) {
  energy_ledger l;
  l.charge("dac", 1e-12);
  l.charge("dac", 2e-12);
  l.charge("adc", 5e-12);
  EXPECT_NEAR(l.joules("dac"), 3e-12, 1e-20);
  EXPECT_EQ(l.ops("dac"), 2u);
  EXPECT_NEAR(l.total_joules(), 8e-12, 1e-20);
}

TEST(Energy, LedgerBulkCharge) {
  energy_ledger l;
  l.charge("mac", 40e-18 * 1000, 1000);
  EXPECT_EQ(l.ops("mac"), 1000u);
  EXPECT_NEAR(l.joules("mac"), 4e-14, 1e-22);
}

TEST(Energy, MissingCategoryIsZero) {
  const energy_ledger l;
  EXPECT_DOUBLE_EQ(l.joules("nothing"), 0.0);
  EXPECT_EQ(l.ops("nothing"), 0u);
}

TEST(Energy, ResetClears) {
  energy_ledger l;
  l.charge("x", 1.0);
  l.reset();
  EXPECT_DOUBLE_EQ(l.total_joules(), 0.0);
  EXPECT_TRUE(l.entries().empty());
}

TEST(Energy, PaperEnergyRatioIs1750x) {
  // The §2.2 headline: 70 fJ (TPU MAC) / 40 aJ (photonic MAC) = 1750.
  const energy_costs c;
  EXPECT_NEAR(c.digital_tpu_mac_j / c.photonic_mac_j, 1750.0, 1.0);
}

}  // namespace
}  // namespace onfiber::phot
