// Tests for the runtime SIMD dispatch layer (simd.hpp): every ISA tier
// the host supports must produce bit-identical doubles to the scalar
// tier, kernel by kernel and through full laser -> photodetector chains.
// This is the contract that makes the dispatch level — like the thread
// count — a pure wall-clock knob.
#include "photonics/simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {
namespace {

/// Restore the env-resolved active level when a test that forces levels
/// exits (including via an assertion failure).
struct level_guard {
  ~level_guard() { simd::refresh(); }
};

std::vector<simd::level> supported_levels() {
  std::vector<simd::level> out;
  for (const simd::level l : {simd::level::scalar, simd::level::sse4,
                              simd::level::avx2, simd::level::avx512}) {
    if (simd::level_supported(l)) out.push_back(l);
  }
  return out;
}

TEST(SimdDispatch, DetectedLevelIsSupportedAndOrdered) {
  const simd::level detected = simd::detected_level();
  EXPECT_TRUE(simd::level_supported(detected));
  EXPECT_TRUE(simd::level_supported(simd::level::scalar));
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    EXPECT_TRUE(simd::level_supported(static_cast<simd::level>(l)));
  }
}

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(simd::level_name(simd::level::scalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::level::sse4), "sse4");
  EXPECT_STREQ(simd::level_name(simd::level::avx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::level::avx512), "avx512");
}

TEST(SimdDispatch, SetLevelRejectsUnsupported) {
  level_guard guard;
  const simd::level detected = simd::detected_level();
  if (detected == simd::level::avx512) {
    GTEST_SKIP() << "host supports every tier";
  }
  const auto above = static_cast<simd::level>(static_cast<int>(detected) + 1);
  const char* active_before = simd::active().name;
  EXPECT_FALSE(simd::set_level(above));
  EXPECT_STREQ(simd::active().name, active_before);
}

TEST(SimdDispatch, SetLevelSwitchesActiveTable) {
  level_guard guard;
  for (const simd::level l : supported_levels()) {
    ASSERT_TRUE(simd::set_level(l));
    EXPECT_EQ(simd::active().lvl, l);
    EXPECT_STREQ(simd::active().name, simd::level_name(l));
  }
}

TEST(SimdDispatch, EnvOverrideClampsAndSelects) {
  level_guard guard;
  ASSERT_EQ(setenv("ONFIBER_SIMD", "scalar", 1), 0);
  simd::refresh();
  EXPECT_EQ(simd::active().lvl, simd::level::scalar);
  // avx512 request clamps to whatever the host has.
  ASSERT_EQ(setenv("ONFIBER_SIMD", "avx512", 1), 0);
  simd::refresh();
  EXPECT_EQ(simd::active().lvl, simd::detected_level());
  ASSERT_EQ(unsetenv("ONFIBER_SIMD"), 0);
  simd::refresh();
  EXPECT_EQ(simd::active().lvl, simd::detected_level());
}

TEST(SimdDispatch, FillNormalBitIdenticalAcrossLevels) {
  const std::uint64_t key = counter_rng::key_of(1234, 5);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{511},
        std::size_t{512}, std::size_t{513}, std::size_t{4096}}) {
    std::vector<double> reference(n);
    simd::table_for(simd::level::scalar)
        .fill_normal(key, /*base=*/17, reference.data(), n);
    // Spot-check the scalar table against the pure per-index function.
    EXPECT_EQ(reference[0], counter_normal(key, 17));
    EXPECT_EQ(reference[n - 1], counter_normal(key, 17 + n - 1));
    for (const simd::level l : supported_levels()) {
      std::vector<double> out(n, -1.0);
      simd::table_for(l).fill_normal(key, 17, out.data(), n);
      EXPECT_EQ(out, reference) << "level " << simd::level_name(l)
                                << ", n = " << n;
    }
  }
}

TEST(SimdDispatch, ElementwiseKernelsBitIdenticalAcrossLevels) {
  constexpr std::size_t n = 1027;  // deliberately not a vector multiple
  rng gen(4242);
  std::vector<double> in(n), noise(n), a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = gen.uniform();
    noise[i] = gen.normal();
    a[i] = gen.uniform();
    b[i] = gen.uniform();
  }
  const auto& scalar = simd::table_for(simd::level::scalar);
  std::vector<double> ref_rin(n), ref_dac(n), ref_adc(n), ref_prod(n);
  scalar.rin_power(noise.data(), n, 10.0, 0.02, ref_rin.data());
  scalar.dac_pass(in.data(), noise.data(), n, 1.0, 255.0, 1e-3,
                  ref_dac.data());
  scalar.adc_pass(in.data(), noise.data(), n, 1.0, 255.0, 1e-3,
                  ref_adc.data());
  scalar.triple_product(in.data(), a.data(), b.data(), n, ref_prod.data());
  const double ref_sum = scalar.blocked_sum(in.data(), n);

  for (const simd::level l : supported_levels()) {
    const auto& table = simd::table_for(l);
    std::vector<double> out(n, -1.0);
    table.rin_power(noise.data(), n, 10.0, 0.02, out.data());
    EXPECT_EQ(out, ref_rin) << simd::level_name(l);
    table.dac_pass(in.data(), noise.data(), n, 1.0, 255.0, 1e-3, out.data());
    EXPECT_EQ(out, ref_dac) << simd::level_name(l);
    table.adc_pass(in.data(), noise.data(), n, 1.0, 255.0, 1e-3, out.data());
    EXPECT_EQ(out, ref_adc) << simd::level_name(l);
    table.triple_product(in.data(), a.data(), b.data(), n, out.data());
    EXPECT_EQ(out, ref_prod) << simd::level_name(l);
    EXPECT_EQ(table.blocked_sum(in.data(), n), ref_sum)
        << simd::level_name(l);
  }
}

TEST(SimdDispatch, BlockedSumHandlesShortAndRaggedLengths) {
  std::vector<double> x(67);
  rng gen(99);
  for (double& v : x) v = gen.uniform() - 0.5;
  const auto& scalar = simd::table_for(simd::level::scalar);
  for (std::size_t n = 0; n <= x.size(); ++n) {
    const double ref = scalar.blocked_sum(x.data(), n);
    for (const simd::level l : supported_levels()) {
      EXPECT_EQ(simd::table_for(l).blocked_sum(x.data(), n), ref)
          << simd::level_name(l) << " n=" << n;
    }
  }
}

// Full laser -> DAC -> MZM -> photodetector -> ADC chains, evaluated with
// the dispatch pinned to each supported tier: the digitized dot products
// must be exactly equal doubles.
TEST(SimdDispatch, FusedDotChainBitIdenticalAcrossLevels) {
  constexpr std::size_t dim = 300;
  rng gen(777);
  std::vector<double> a(dim), b(dim);
  for (double& x : a) x = 2.0 * gen.uniform() - 1.0;
  for (double& x : b) x = 2.0 * gen.uniform() - 1.0;

  level_guard guard;
  ASSERT_TRUE(simd::set_level(simd::level::scalar));
  phot::dot_product_unit ref_unit({}, 31337);
  const dot_result ref = ref_unit.dot_signed(a, b);

  for (const simd::level l : supported_levels()) {
    ASSERT_TRUE(simd::set_level(l));
    phot::dot_product_unit unit({}, 31337);
    const dot_result r = unit.dot_signed(a, b);
    EXPECT_EQ(r.value, ref.value) << simd::level_name(l);
    EXPECT_EQ(r.symbols, ref.symbols);
  }
}

TEST(SimdDispatch, GemmBitIdenticalAcrossLevelsThreadsAndBatch) {
  constexpr std::size_t rows = 3, cols = 64, batch = 11;
  rng gen(4321);
  matrix w(rows, cols);
  for (double& v : w.data) v = 2.0 * gen.uniform() - 1.0;
  std::vector<double> xs(batch * cols);
  for (double& v : xs) v = 2.0 * gen.uniform() - 1.0;

  level_guard guard;
  ASSERT_TRUE(simd::set_level(simd::level::scalar));
  vector_matrix_engine ref_engine({}, 555);
  ref_engine.set_threads(1);
  const gemm_result ref = ref_engine.gemm_signed(w, xs);

  for (const simd::level l : supported_levels()) {
    ASSERT_TRUE(simd::set_level(l));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      vector_matrix_engine engine({}, 555);
      engine.set_threads(threads);
      const gemm_result r = engine.gemm_signed(w, xs);
      EXPECT_EQ(r.values, ref.values)
          << simd::level_name(l) << " threads=" << threads;
    }
  }

  // Batch decomposition: sample s of the batch equals a fresh engine's
  // GEMV on that sample alone (row seeds fork identically), at the
  // native level.
  simd::refresh();
  vector_matrix_engine single({}, 555);
  const gemv_result first =
      single.gemv_signed(w, std::span<const double>(xs.data(), cols));
  const gemm_result full = [&] {
    vector_matrix_engine engine({}, 555);
    return engine.gemm_signed(w, xs);
  }();
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(full.values[r], first.values[r]);
  }
}

}  // namespace
}  // namespace onfiber::phot
