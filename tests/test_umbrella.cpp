// Compile-and-link check of the umbrella header plus a few cross-module
// smoke assertions — guarantees `#include "onfiber.hpp"` keeps working as
// the library grows.
#include "onfiber.hpp"

#include <gtest/gtest.h>

namespace onfiber {
namespace {

TEST(Umbrella, EveryLayerReachable) {
  // photonics
  phot::rng gen(1);
  EXPECT_GE(gen.uniform(), 0.0);
  EXPECT_GT(phot::p1_lane_area_mm2(), 0.0);
  // network
  const net::topology topo = net::make_figure1_topology();
  EXPECT_EQ(topo.node_count(), 4u);
  // protocol
  EXPECT_EQ(proto::compute_header_bytes, 24u);
  // core
  core::photonic_engine engine({}, 2);
  EXPECT_TRUE(engine.supports(proto::primitive_id::p3_nonlinear));
  // controller
  ctrl::allocation_problem problem;
  problem.topo = &topo;
  EXPECT_EQ(ctrl::solve_greedy(problem).satisfied_value, 0.0);
  // digital
  EXPECT_GT(digital::make_tpu_model().clock_hz, 0.0);
  // apps
  EXPECT_EQ(apps::make_edge_kernel_bank().kernels.size(), 5u);
}

TEST(Umbrella, ThreeStageChainEndToEnd) {
  // P1 -> P3 -> P3: maximum chain depth through one engine.
  core::photonic_engine engine({}, 3);
  core::gemv_task task;
  task.weights = phot::matrix(4, 8);
  for (double& w : task.weights.data) w = 0.5;
  task.relu_output = true;
  engine.configure_gemv(task);

  const std::vector<double> x(8, 0.6);
  const std::vector<proto::primitive_id> stages{
      proto::primitive_id::p1_dot_product, proto::primitive_id::p3_nonlinear,
      proto::primitive_id::p3_nonlinear};
  net::packet pkt = core::make_chain_request(
      net::ipv4(1, 0, 0, 1), net::ipv4(2, 0, 0, 1), stages, x,
      /*result_capacity=*/4 * 3);
  for (int stage = 0; stage < 3; ++stage) {
    ASSERT_TRUE(engine.process(pkt).computed) << "stage " << stage;
  }
  const auto h = proto::peek_compute_header(pkt);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->has_result());
  EXPECT_EQ(h->hops, 3);
  EXPECT_FALSE(engine.process(pkt).computed);  // chain complete
  EXPECT_TRUE(core::read_nonlinear_result(pkt).has_value());
}

TEST(Umbrella, WdmLanesUseDistinctWavelengths) {
  // Indirect check through the grid math the engine uses.
  phot::wdm_channel ch0, ch1;
  ch0.index = 0;
  ch1.index = 1;
  EXPECT_NE(ch0.center_wavelength_m(), ch1.center_wavelength_m());
  EXPECT_NEAR(ch0.center_frequency_hz() - ch1.center_frequency_hz(),
              -100e9, 1.0);
}

}  // namespace
}  // namespace onfiber
