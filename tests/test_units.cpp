// Unit tests for photonics/units.hpp: dB math, photon energetics, fiber
// delay.
#include "photonics/units.hpp"

#include <gtest/gtest.h>

namespace onfiber::phot {
namespace {

TEST(Units, DbRatioRoundTrip) {
  for (const double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(ratio_to_db(db_to_ratio(db)), db, 1e-12);
  }
}

TEST(Units, KnownDbAnchors) {
  EXPECT_NEAR(db_to_ratio(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_ratio(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_ratio(3.0), 2.0, 0.01);  // 3 dB ~ 2x
  EXPECT_NEAR(db_to_ratio(-3.0), 0.5, 0.01);
}

TEST(Units, DbmConversions) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);   // 0 dBm = 1 mW
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-10.0), 0.1, 1e-12);
  EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(7.3)), 7.3, 1e-12);
}

TEST(Units, ApplyLossAttenuates) {
  EXPECT_NEAR(apply_loss_mw(10.0, 3.0), 5.0, 0.02);
  EXPECT_NEAR(apply_loss_mw(10.0, 0.0), 10.0, 1e-12);
  // Negative loss (gain) amplifies.
  EXPECT_NEAR(apply_loss_mw(10.0, -10.0), 100.0, 1e-9);
}

TEST(Units, FieldLossIsSqrtOfPowerLoss) {
  const double scale = field_loss_scale(3.0);
  EXPECT_NEAR(scale * scale, db_to_ratio(-3.0), 1e-12);
}

TEST(Units, PhotonEnergyAt1550nm) {
  // E = hc/lambda ~ 1.282e-19 J at 1550 nm (0.8 eV).
  EXPECT_NEAR(photon_energy(1550e-9), 1.282e-19, 0.002e-19);
}

TEST(Units, PhotonFluxScalesWithPower) {
  const double f1 = photon_flux(1.0, c_band_wavelength);
  const double f2 = photon_flux(2.0, c_band_wavelength);
  EXPECT_NEAR(f2 / f1, 2.0, 1e-12);
  // 1 mW at 1550 nm ~ 7.8e15 photons/s.
  EXPECT_NEAR(f1, 7.8e15, 0.1e15);
}

TEST(Units, WavelengthFrequencyAnchor) {
  // 1550 nm ~ 193.4 THz.
  EXPECT_NEAR(wavelength_to_frequency(1550e-9), 193.4e12, 0.1e12);
}

TEST(Units, FiberDelayPerKm) {
  // ~4.9 us per km of SMF.
  EXPECT_NEAR(fiber_delay_s(1.0), 4.9e-6, 0.05e-6);
  EXPECT_NEAR(fiber_delay_s(100.0) / fiber_delay_s(1.0), 100.0, 1e-9);
}

TEST(Units, FiberDelayZeroLength) {
  EXPECT_DOUBLE_EQ(fiber_delay_s(0.0), 0.0);
}

}  // namespace
}  // namespace onfiber::phot
