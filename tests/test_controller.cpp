// Tests for the centralized controller: allocation solvers, routes,
// reconfiguration planning.
#include "controller/controller.hpp"

#include <gtest/gtest.h>

#include <set>

#include "network/topology.hpp"
#include "photonics/rng.hpp"

namespace onfiber::ctrl {
namespace {

using proto::primitive_id;

/// Small fixture: Figure-1 topology, transponders at B and C.
struct fig1_problem {
  net::topology topo = net::make_figure1_topology();
  allocation_problem p;

  fig1_problem() {
    p.topo = &topo;
    p.transponders.push_back(
        transponder_info{0, 1, {primitive_id::p2_pattern_match}, 10e3});
    p.transponders.push_back(
        transponder_info{1, 2, {primitive_id::p1_p3_dnn}, 10e3});
  }

  compute_demand demand(std::uint32_t id, primitive_id prim,
                        double rate = 1e3, double value = 1.0) const {
    compute_demand d;
    d.id = id;
    d.src = 0;
    d.dst = 3;
    d.chain = {prim};
    d.rate_ops_s = rate;
    d.value = value;
    return d;
  }
};

/// Check allocation invariants: capacity respected, primitives supported.
void check_feasible(const allocation_problem& p, const allocation_result& r) {
  std::vector<double> used(p.transponders.size(), 0.0);
  for (const auto& a : r.assignments) {
    if (!a.satisfied) continue;
    const auto& d = p.demands[a.demand_id];
    ASSERT_EQ(a.transponder_ids.size(), d.chain.size());
    for (std::size_t s = 0; s < d.chain.size(); ++s) {
      const auto tid = a.transponder_ids[s];
      ASSERT_LT(tid, p.transponders.size());
      EXPECT_TRUE(p.transponders[tid].supports(d.chain[s]))
          << "demand " << d.id << " stage " << s;
      used[tid] += d.rate_ops_s;
    }
  }
  for (std::size_t t = 0; t < used.size(); ++t) {
    EXPECT_LE(used[t], p.transponders[t].capacity_ops_s + 1e-9)
        << "transponder " << t;
  }
}

TEST(Controller, GreedySatisfiesFeasibleDemands) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p2_pattern_match),
                 f.demand(1, primitive_id::p1_p3_dnn)};
  const allocation_result r = solve_greedy(f.p);
  check_feasible(f.p, r);
  EXPECT_DOUBLE_EQ(r.satisfied_value, 2.0);
  EXPECT_EQ(r.transponders_used, 2u);
}

TEST(Controller, UnservableDemandUnsatisfied) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p1_dot_product)};  // nobody has P1
  const allocation_result r = solve_greedy(f.p);
  EXPECT_FALSE(r.assignments[0].satisfied);
  EXPECT_DOUBLE_EQ(r.satisfied_value, 0.0);
}

TEST(Controller, CapacityLimitsSatisfaction) {
  fig1_problem f;
  // Transponder 0 capacity 10e3; three demands of 4e3 each -> only 2 fit.
  for (std::uint32_t i = 0; i < 3; ++i) {
    f.p.demands.push_back(
        f.demand(i, primitive_id::p2_pattern_match, 4e3));
  }
  const allocation_result r = solve_greedy(f.p);
  check_feasible(f.p, r);
  EXPECT_DOUBLE_EQ(r.satisfied_value, 2.0);
}

TEST(Controller, HigherValueDemandsWin) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p2_pattern_match, 8e3, 1.0),
                 f.demand(1, primitive_id::p2_pattern_match, 8e3, 5.0)};
  const allocation_result r = solve_greedy(f.p);
  EXPECT_FALSE(r.assignments[0].satisfied);
  EXPECT_TRUE(r.assignments[1].satisfied);
}

TEST(Controller, ChainUsesTwoSites) {
  fig1_problem f;
  compute_demand d = f.demand(0, primitive_id::p2_pattern_match);
  d.chain = {primitive_id::p2_pattern_match, primitive_id::p1_p3_dnn};
  f.p.demands = {d};
  const allocation_result r = solve_greedy(f.p);
  check_feasible(f.p, r);
  ASSERT_TRUE(r.assignments[0].satisfied);
  EXPECT_EQ(r.assignments[0].transponder_ids.size(), 2u);
  EXPECT_EQ(r.assignments[0].transponder_ids[0], 0u);  // B: P2
  EXPECT_EQ(r.assignments[0].transponder_ids[1], 1u);  // C: DNN
}

TEST(Controller, PathDelayIncludesDetour) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p1_p3_dnn)};
  const allocation_result r = solve_greedy(f.p);
  ASSERT_TRUE(r.assignments[0].satisfied);
  // A -> C -> D distances: 500 + 350 km.
  const double expected =
      phot::fiber_delay_s(500.0) + phot::fiber_delay_s(350.0);
  EXPECT_NEAR(r.assignments[0].path_delay_s, expected, 1e-9);
}

TEST(Controller, LocalSearchAtLeastGreedy) {
  fig1_problem f;
  for (std::uint32_t i = 0; i < 6; ++i) {
    f.p.demands.push_back(f.demand(
        i, i % 2 == 0 ? primitive_id::p2_pattern_match
                      : primitive_id::p1_p3_dnn,
        3e3, 1.0 + i * 0.1));
  }
  const allocation_result greedy = solve_greedy(f.p);
  const allocation_result local = solve_local_search(f.p);
  check_feasible(f.p, local);
  EXPECT_GE(local.score(), greedy.score() - 1e-12);
}

TEST(Controller, ExactAtLeastLocalSearch) {
  // Construct a case where greedy is suboptimal: one shared transponder,
  // a big demand grabbed first blocks two smaller ones of higher total.
  net::topology topo = net::make_linear_topology(3, 100.0);
  allocation_problem p;
  p.topo = &topo;
  p.transponders.push_back(
      transponder_info{0, 1, {primitive_id::p1_dot_product}, 10e3});
  compute_demand big;
  big.id = 0;
  big.src = 0;
  big.dst = 2;
  big.chain = {primitive_id::p1_dot_product};
  big.rate_ops_s = 10e3;
  big.value = 3.0;
  compute_demand small1 = big, small2 = big;
  small1.id = 1;
  small1.rate_ops_s = 5e3;
  small1.value = 2.0;
  small2.id = 2;
  small2.rate_ops_s = 5e3;
  small2.value = 2.0;
  p.demands = {big, small1, small2};

  const allocation_result greedy = solve_greedy(p);
  const allocation_result exact = solve_exact(p);
  check_feasible(p, exact);
  // Greedy takes the value-3 demand (value ordering); exact prefers 2+2.
  EXPECT_DOUBLE_EQ(greedy.satisfied_value, 3.0);
  EXPECT_DOUBLE_EQ(exact.satisfied_value, 4.0);
  EXPECT_GE(exact.score(), greedy.score());
}

TEST(Controller, LocalSearchEvictionUnblocks) {
  // Greedy parks demand A (value 3, P1) on the flexible transponder t0,
  // which starves demand B (value 2, P2) that ONLY t0 can serve. Local
  // search must relocate A to the P1-only t1 so B fits: eviction move.
  net::topology topo = net::make_linear_topology(3, 100.0);
  allocation_problem p;
  p.topo = &topo;
  p.transponders = {
      {0, 1, {primitive_id::p1_dot_product, primitive_id::p2_pattern_match},
       8e3},
      {1, 1, {primitive_id::p1_dot_product}, 8e3},
  };
  compute_demand a;
  a.id = 0;
  a.src = 0;
  a.dst = 2;
  a.chain = {primitive_id::p1_dot_product};
  a.rate_ops_s = 4e3;
  a.value = 3.0;
  compute_demand b = a;
  b.id = 1;
  b.chain = {primitive_id::p2_pattern_match};
  b.rate_ops_s = 6e3;
  b.value = 2.0;
  p.demands = {a, b};

  const allocation_result greedy = solve_greedy(p);
  const allocation_result local = solve_local_search(p);
  check_feasible(p, local);
  // Greedy satisfies only A (it grabs t0 first and B cannot fit).
  EXPECT_DOUBLE_EQ(greedy.satisfied_value, 3.0);
  // Local search relocates A and satisfies both.
  EXPECT_DOUBLE_EQ(local.satisfied_value, 5.0);
  EXPECT_EQ(local.assignments[0].transponder_ids[0], 1u);
  EXPECT_EQ(local.assignments[1].transponder_ids[0], 0u);
}

TEST(Controller, ExactGuardsInstanceSize) {
  fig1_problem f;
  for (std::uint32_t i = 0; i < 20; ++i) {
    f.p.demands.push_back(f.demand(i, primitive_id::p2_pattern_match));
  }
  EXPECT_THROW((void)solve_exact(f.p, 16), std::invalid_argument);
}

TEST(Controller, ValidatesInput) {
  allocation_problem p;  // missing topology
  EXPECT_THROW((void)solve_greedy(p), std::invalid_argument);

  fig1_problem f;
  compute_demand bad = f.demand(0, primitive_id::p2_pattern_match);
  bad.chain.clear();
  f.p.demands = {bad};
  EXPECT_THROW((void)solve_greedy(f.p), std::invalid_argument);

  fig1_problem f2;
  compute_demand bad2 = f2.demand(0, primitive_id::p2_pattern_match);
  bad2.rate_ops_s = -1.0;
  f2.p.demands = {bad2};
  EXPECT_THROW((void)solve_greedy(f2.p), std::invalid_argument);
}

TEST(Controller, RoutesSteerTowardSites) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p1_p3_dnn)};  // served at C
  const allocation_result r = solve_greedy(f.p);
  const auto routes = routes_for_allocation(f.p, r);
  ASSERT_FALSE(routes.empty());
  // There must be an entry at A steering p1_p3_dnn packets for D's prefix
  // toward C (next hop on the A->C path, which is C itself: direct link).
  bool found = false;
  for (const auto& e : routes) {
    if (e.at == 0 && e.primitive == primitive_id::p1_p3_dnn) {
      EXPECT_EQ(e.next_hop, 2u);
      EXPECT_TRUE(e.dst_prefix.contains(f.topo.node_at(3).address));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Controller, RoutesDedupeConflicts) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p1_p3_dnn),
                 f.demand(1, primitive_id::p1_p3_dnn)};
  const allocation_result r = solve_greedy(f.p);
  const auto routes = routes_for_allocation(f.p, r);
  std::set<std::tuple<net::node_id, std::uint32_t, int, std::uint8_t>> keys;
  for (const auto& e : routes) {
    const auto key = std::make_tuple(e.at, e.dst_prefix.network.value,
                                     e.dst_prefix.length,
                                     static_cast<std::uint8_t>(e.primitive));
    EXPECT_TRUE(keys.insert(key).second) << "duplicate route entry";
  }
}

TEST(Controller, ReconfigurationPlan) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p2_pattern_match)};
  const allocation_result before = solve_greedy(f.p);

  // New epoch: the demand now needs the DNN primitive instead.
  fig1_problem f2;
  f2.p.demands = {f2.demand(0, primitive_id::p1_p3_dnn)};
  const allocation_result after = solve_greedy(f2.p);

  const auto ops = plan_reconfiguration(f2.p, before, after);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].transponder_id, 1u);
  EXPECT_EQ(ops[0].install, primitive_id::p1_p3_dnn);
}

TEST(Controller, ReconfigurationNoopWhenUnchanged) {
  fig1_problem f;
  f.p.demands = {f.demand(0, primitive_id::p2_pattern_match)};
  const allocation_result r = solve_greedy(f.p);
  EXPECT_TRUE(plan_reconfiguration(f.p, r, r).empty());
}

TEST(Controller, ScalesToUswan) {
  net::topology topo = net::make_uswan_topology();
  allocation_problem p;
  p.topo = &topo;
  // Transponders at every third node, alternating primitives.
  std::uint32_t tid = 0;
  for (net::node_id n = 0; n < topo.node_count(); n += 3) {
    p.transponders.push_back(transponder_info{
        tid++, n,
        {tid % 2 == 0 ? primitive_id::p1_dot_product
                      : primitive_id::p2_pattern_match},
        50e3});
  }
  phot::rng g(5);
  for (std::uint32_t i = 0; i < 40; ++i) {
    compute_demand d;
    d.id = i;
    d.src = static_cast<net::node_id>(g.below(topo.node_count()));
    do {
      d.dst = static_cast<net::node_id>(g.below(topo.node_count()));
    } while (d.dst == d.src);
    d.chain = {i % 2 == 0 ? primitive_id::p1_dot_product
                          : primitive_id::p2_pattern_match};
    d.rate_ops_s = 1e3 + static_cast<double>(g.below(5000));
    d.value = 1.0;
    p.demands.push_back(d);
  }
  const allocation_result greedy = solve_greedy(p);
  const allocation_result local = solve_local_search(p);
  check_feasible(p, greedy);
  check_feasible(p, local);
  EXPECT_GT(greedy.satisfied_value, 20.0);  // most demands servable
  EXPECT_GE(local.score(), greedy.score() - 1e-12);
}

}  // namespace
}  // namespace onfiber::ctrl
