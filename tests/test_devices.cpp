// Tests for the active device models: laser, modulators, photodetector,
// DAC/ADC, passives, fiber, WDM.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "photonics/converter.hpp"
#include "photonics/fiber.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/passives.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/wdm.hpp"

namespace onfiber::phot {
namespace {

constexpr double pi = std::numbers::pi;

// ------------------------------------------------------------------ laser

TEST(Laser, MeanPowerMatchesConfig) {
  laser_config cfg;
  cfg.power_mw = 10.0;
  laser l(cfg, rng{1});
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += power_mw(l.emit_one());
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Laser, NoiselessLaserIsConstant) {
  laser_config cfg;
  cfg.enable_rin = false;
  cfg.enable_phase_noise = false;
  laser l(cfg, rng{2});
  const field e0 = l.emit_one();
  for (int i = 0; i < 100; ++i) {
    const field e = l.emit_one();
    EXPECT_DOUBLE_EQ(std::abs(e), std::abs(e0));
    EXPECT_DOUBLE_EQ(std::arg(e), std::arg(e0));
  }
}

TEST(Laser, RinVarianceMatchesSpec) {
  laser_config cfg;
  cfg.power_mw = 10.0;
  cfg.enable_phase_noise = false;
  cfg.rin_db_hz = -150.0;
  cfg.symbol_rate_hz = 10e9;
  laser l(cfg, rng{3});
  double sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double p = power_mw(l.emit_one());
    sq += (p - 10.0) * (p - 10.0);
  }
  const double expected = rin_sigma_mw(10.0, -150.0, 10e9);
  EXPECT_NEAR(std::sqrt(sq / n), expected, 0.05 * expected);
}

TEST(Laser, PhaseWalksWithLinewidth) {
  laser_config cfg;
  cfg.enable_rin = false;
  cfg.linewidth_hz = 1e6;
  cfg.symbol_rate_hz = 10e9;
  laser l(cfg, rng{4});
  // After n steps the phase variance should be ~ n * 2 pi dv / Rs.
  constexpr int n = 10000;
  double phase_end = 0.0;
  for (int i = 0; i < n; ++i) phase_end = std::arg(l.emit_one());
  const double sigma = std::sqrt(n * 2.0 * pi * 1e6 / 10e9);
  EXPECT_LT(std::abs(phase_end), 6.0 * sigma);  // sanity: bounded walk
  EXPECT_NE(phase_end, 0.0);
}

TEST(Laser, EmitBatch) {
  laser l({}, rng{5});
  const waveform w = l.emit(64);
  EXPECT_EQ(w.size(), 64u);
}

TEST(Laser, ChargesLedger) {
  energy_ledger ledger;
  laser l({}, rng{6}, &ledger);
  (void)l.emit(10);
  EXPECT_EQ(ledger.ops("laser"), 10u);
}

// -------------------------------------------------------------- modulator

TEST(Mzm, FullAndNullTransmission) {
  modulator_config cfg;
  cfg.insertion_loss_db = 0.0;
  cfg.extinction_ratio_db = 60.0;
  mzm_modulator m(cfg, /*bias=*/0.0, rng{7});
  // Bias 0, drive 0: full transmission.
  EXPECT_NEAR(m.intensity_transfer(0.0), 1.0, 1e-9);
  // Drive V_pi: null (bounded by extinction ratio).
  EXPECT_LE(m.intensity_transfer(cfg.v_pi), db_to_ratio(-60.0) + 1e-9);
}

TEST(Mzm, RaisedCosineShape) {
  modulator_config cfg;
  cfg.insertion_loss_db = 0.0;
  mzm_modulator m(cfg, 0.0, rng{8});
  // cos^2(pi/2 * v/Vpi) at v = Vpi/2 is 0.5.
  EXPECT_NEAR(m.intensity_transfer(cfg.v_pi / 2.0), 0.5, 1e-9);
}

TEST(Mzm, InsertionLossApplied) {
  modulator_config cfg;
  cfg.insertion_loss_db = 3.0;
  mzm_modulator m(cfg, 0.0, rng{9});
  EXPECT_NEAR(m.intensity_transfer(0.0), db_to_ratio(-3.0), 1e-9);
}

TEST(Mzm, EncodeUnitIsLinearInIntensity) {
  modulator_config cfg;
  cfg.insertion_loss_db = 0.0;
  mzm_modulator m(cfg, 0.0, rng{10});
  const field carrier = make_field(10.0);
  for (const double x : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const field out = m.encode_unit(carrier, x);
    EXPECT_NEAR(power_mw(out), 10.0 * x, 10.0 * 0.002 + 1e-9);
  }
}

TEST(Mzm, EncodeUnitClampsOutOfRange) {
  mzm_modulator m({}, 0.0, rng{11});
  const field carrier = make_field(1.0);
  const double low = power_mw(m.encode_unit(carrier, -0.5));
  const double high = power_mw(m.encode_unit(carrier, 1.5));
  EXPECT_NEAR(low, power_mw(m.encode_unit(carrier, 0.0)), 1e-9);
  EXPECT_NEAR(high, power_mw(m.encode_unit(carrier, 1.0)), 1e-9);
}

TEST(Mzm, DriveClipping) {
  modulator_config cfg;
  mzm_modulator m(cfg, 0.0, rng{12});
  // Beyond max_drive_v the transfer stops changing.
  EXPECT_DOUBLE_EQ(m.intensity_transfer(cfg.max_drive_v),
                   m.intensity_transfer(cfg.max_drive_v + 5.0));
}

TEST(Mzm, BiasErrorIsDeterministicPerSeed) {
  modulator_config cfg;
  cfg.bias_error_sigma_rad = 0.05;
  mzm_modulator m1(cfg, 0.0, rng{13});
  mzm_modulator m2(cfg, 0.0, rng{13});
  const field c = make_field(1.0);
  EXPECT_DOUBLE_EQ(power_mw(m1.encode_unit(c, 0.5)),
                   power_mw(m2.encode_unit(c, 0.5)));
}

TEST(PhaseMod, EncodesPhase) {
  modulator_config cfg;
  cfg.insertion_loss_db = 0.0;
  phase_modulator m(cfg, rng{14});
  const field in = make_field(1.0, 0.0);
  const field out = m.encode_phase(in, pi / 3.0);
  EXPECT_NEAR(std::arg(out), pi / 3.0, 1e-9);
  EXPECT_NEAR(power_mw(out), 1.0, 1e-9);  // phase mod preserves power
}

TEST(PhaseMod, VoltageToPhase) {
  modulator_config cfg;
  cfg.insertion_loss_db = 0.0;
  phase_modulator m(cfg, rng{15});
  const field out = m.modulate(make_field(1.0), cfg.v_pi);
  EXPECT_NEAR(std::abs(std::arg(out)), pi, 1e-9);
}

// ----------------------------------------------------------- photodetector

TEST(Photodetector, ResponsivityAndDark) {
  photodetector_config cfg;
  cfg.noise.enable_shot = false;
  cfg.noise.enable_thermal = false;
  photodetector d(cfg, rng{16});
  const double i = d.detect(make_field(1.0));  // 1 mW
  EXPECT_NEAR(i, cfg.responsivity_a_w * 1e-3 + cfg.dark_current_a, 1e-12);
}

TEST(Photodetector, PhaseInsensitive) {
  photodetector_config cfg;
  cfg.noise.enable_shot = false;
  cfg.noise.enable_thermal = false;
  photodetector d(cfg, rng{17});
  EXPECT_DOUBLE_EQ(d.detect(make_field(2.0, 0.0)),
                   d.detect(make_field(2.0, 1.234)));
}

TEST(Photodetector, Saturates) {
  photodetector_config cfg;
  cfg.saturation_current_a = 1e-3;
  cfg.noise.enable_shot = false;
  cfg.noise.enable_thermal = false;
  photodetector d(cfg, rng{18});
  EXPECT_DOUBLE_EQ(d.detect(make_field(1e4)), 1e-3);
}

TEST(Photodetector, IntegrationReducesNoise) {
  photodetector_config cfg;
  photodetector d1(cfg, rng{19});
  photodetector d2(cfg, rng{20});
  // Repeated single-sample detection vs 64-sample integration of the same
  // power: integration should show smaller spread.
  const field e = make_field(1.0);
  const waveform burst(64, e);
  double sq_single = 0.0, sq_int = 0.0;
  const double expected = d1.expected_current_a(1.0);
  constexpr int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const double a = d1.detect(e) - expected;
    const double b = d2.integrate(burst) - expected;
    sq_single += a * a;
    sq_int += b * b;
  }
  EXPECT_LT(sq_int, sq_single / 16.0);  // ~64x variance reduction ideally
}

TEST(Photodetector, IntegrateEmptyIsZero) {
  photodetector d({}, rng{21});
  EXPECT_DOUBLE_EQ(d.integrate(waveform{}), 0.0);
}

// -------------------------------------------------------------- converters

TEST(Converter, QuantizeGridEndpoints) {
  EXPECT_DOUBLE_EQ(quantize_to_grid(0.0, 1.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(quantize_to_grid(1.0, 1.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(quantize_to_grid(-0.5, 1.0, 8), 0.0);  // clips
  EXPECT_DOUBLE_EQ(quantize_to_grid(1.5, 1.0, 8), 1.0);   // clips
}

TEST(Converter, QuantizeErrorBoundedByHalfLsb) {
  const double lsb = 1.0 / 255.0;
  rng g(22);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform();
    EXPECT_LE(std::abs(quantize_to_grid(x, 1.0, 8) - x), lsb / 2.0 + 1e-12);
  }
}

TEST(Converter, MoreBitsSmallerError) {
  rng g(23);
  double e4 = 0.0, e10 = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = g.uniform();
    e4 += std::abs(quantize_to_grid(x, 1.0, 4) - x);
    e10 += std::abs(quantize_to_grid(x, 1.0, 10) - x);
  }
  EXPECT_LT(e10, e4 / 16.0);
}

TEST(Converter, QuantizationNoiseRmsFormula) {
  EXPECT_NEAR(quantization_noise_rms(1.0, 8),
              (1.0 / 255.0) / std::sqrt(12.0), 1e-12);
}

class ConverterBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(ConverterBitsTest, DacRmsErrorTracksEnob) {
  const int bits = GetParam();
  converter_config cfg;
  cfg.bits = bits;
  cfg.enob_penalty = 0.5;
  dac d(cfg, rng{static_cast<std::uint64_t>(bits)});
  rng g(99);
  double sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = g.uniform();
    const double y = d.convert(x);
    sq += (y - x) * (y - x);
  }
  // Total converter noise at ENOB = bits - 0.5.
  const double expected =
      1.0 / (std::pow(2.0, bits - 0.5) * std::sqrt(12.0));
  const double measured = std::sqrt(sq / n);
  EXPECT_NEAR(measured, expected, 0.25 * expected);
}

INSTANTIATE_TEST_SUITE_P(BitSweep, ConverterBitsTest,
                         ::testing::Values(4, 6, 8, 10, 12));

TEST(Converter, AdcOutputOnGrid) {
  converter_config cfg;
  cfg.enob_penalty = 0.0;
  adc a(cfg, rng{24});
  const double levels = 255.0;
  for (int i = 0; i < 100; ++i) {
    const double y = a.convert(static_cast<double>(i) / 100.0);
    const double snapped = std::round(y * levels) / levels;
    EXPECT_NEAR(y, snapped, 1e-12);
  }
}

TEST(Converter, ChargesLedger) {
  energy_ledger ledger;
  energy_costs costs;
  dac d({}, rng{25}, &ledger, costs);
  adc a({}, rng{26}, &ledger, costs);
  (void)d.convert(0.5);
  (void)a.convert(0.5);
  EXPECT_EQ(ledger.ops("dac"), 1u);
  EXPECT_EQ(ledger.ops("adc"), 1u);
  EXPECT_NEAR(ledger.joules("dac"), costs.dac_conversion_j, 1e-20);
}

// ---------------------------------------------------------------- passives

TEST(Passives, CouplerConservesEnergy) {
  const field a = make_field(3.0, 0.4);
  const field b = make_field(1.5, -1.1);
  const coupler_output out = couple_50_50(a, b);
  EXPECT_NEAR(power_mw(out.port1) + power_mw(out.port2),
              power_mw(a) + power_mw(b), 1e-12);
}

TEST(Passives, CouplerSingleInputSplitsEvenly) {
  const coupler_output out = couple_50_50(make_field(2.0), field{0.0, 0.0});
  EXPECT_NEAR(power_mw(out.port1), 1.0, 1e-12);
  EXPECT_NEAR(power_mw(out.port2), 1.0, 1e-12);
}

TEST(Passives, SplitterHalvesPlusExcess) {
  const auto [o1, o2] = split_50_50(make_field(2.0), 0.0);
  EXPECT_NEAR(power_mw(o1), 1.0, 1e-12);
  EXPECT_NEAR(power_mw(o2), 1.0, 1e-12);
  const auto [l1, l2] = split_50_50(make_field(2.0), 3.0);
  EXPECT_NEAR(power_mw(l1), 0.5, 0.01);
}

TEST(Passives, AttenuatorMatchesDb) {
  const field out = attenuate(make_field(10.0), 10.0);
  EXPECT_NEAR(power_mw(out), 1.0, 1e-9);
}

TEST(Passives, InterferenceExtremes) {
  // In-phase fields on port1 after the +90 port convention: use the
  // closed-form helper and verify constructive/destructive bounds.
  const field a = make_field(1.0, 0.0);
  const double in_phase = interference_intensity_mw(a, make_field(1.0, 0.0));
  const double anti_phase =
      interference_intensity_mw(a, make_field(1.0, pi));
  // Coupler convention: |a + i b|^2 / 2; equal phases give equal split.
  EXPECT_NEAR(in_phase + anti_phase, 2.0, 1e-9);
}

// ------------------------------------------------------------------- fiber

TEST(Fiber, LossMatchesLengthTimesAttenuation) {
  fiber_config cfg;
  cfg.length_km = 50.0;
  cfg.attenuation_db_km = 0.2;
  fiber_span span(cfg, rng{27});
  EXPECT_NEAR(span.loss_db(), 10.0, 1e-9);
  const waveform in(8, make_field(10.0));
  const waveform out = span.propagate(in);
  EXPECT_NEAR(power_mw(out[0]), 1.0, 1e-9);
}

TEST(Fiber, DelayMatchesGroupIndex) {
  fiber_config cfg;
  cfg.length_km = 100.0;
  fiber_span span(cfg, rng{28});
  EXPECT_NEAR(span.delay_s(), fiber_delay_s(100.0), 1e-15);
}

TEST(Fiber, AmplifiedSpanRestoresPowerWithAse) {
  fiber_config cfg;
  cfg.length_km = 80.0;
  cfg.amplified = true;
  fiber_span span(cfg, rng{29});
  const waveform in(5000, make_field(1.0));
  const waveform out = span.propagate(in);
  double mean = 0.0;
  for (const field& e : out) mean += power_mw(e);
  mean /= static_cast<double>(out.size());
  // Mean power restored to ~input (+ small ASE power).
  EXPECT_NEAR(mean, 1.0, 0.05);
  // But samples are noisy now.
  bool varied = false;
  for (const field& e : out) {
    if (std::abs(power_mw(e) - 1.0) > 1e-6) varied = true;
  }
  EXPECT_TRUE(varied);
}

// -------------------------------------------------------------------- wdm

TEST(Wdm, The800GChannel) {
  const wdm_channel ch = make_800g_channel();
  // ~819 Gb/s net: the "800G" the paper cites [12].
  EXPECT_NEAR(ch.net_rate_bps(), 819.2e9, 1e9);
}

TEST(Wdm, GridFrequencies) {
  wdm_channel ch;
  ch.index = 0;
  EXPECT_NEAR(ch.center_frequency_hz(), 193.1e12, 1.0);
  ch.index = 4;
  EXPECT_NEAR(ch.center_frequency_hz(), 193.5e12, 1.0);
}

TEST(Wdm, LineRejectsCollision) {
  wdm_line line;
  line.add_channel(make_800g_channel(0));
  EXPECT_THROW(line.add_channel(make_800g_channel(0)), std::invalid_argument);
}

TEST(Wdm, TotalCapacitySums) {
  wdm_line line;
  line.add_channel(make_800g_channel(0));
  line.add_channel(make_800g_channel(1));
  EXPECT_NEAR(line.total_capacity_bps(), 2.0 * 819.2e9, 1e9);
}

TEST(Wdm, FairShareDivides) {
  const wdm_channel ch = make_800g_channel();
  EXPECT_NEAR(wdm_line::fair_share_bps(ch, 8),
              ch.net_rate_bps() / 8.0, 1.0);
  EXPECT_DOUBLE_EQ(wdm_line::fair_share_bps(ch, 0), 0.0);
}

}  // namespace
}  // namespace onfiber::phot
