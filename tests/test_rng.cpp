// Tests for the deterministic RNG: reproducibility, distribution moments,
// stream independence.
#include "photonics/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace onfiber::phot {
namespace {

TEST(Rng, SameSeedSameStream) {
  rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  rng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  rng g(11);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = g.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  rng g(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BelowStaysInRange) {
  rng g(17);
  for (const std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 255ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.below(n), n);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  rng g(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  rng g(23);
  constexpr std::uint64_t buckets = 8;
  std::vector<int> counts(buckets, 0);
  constexpr int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[g.below(buckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 0.05 * n / 8.0);
  }
}

TEST(Rng, NormalMoments) {
  rng g(29);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  rng g(31);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal(3.0, 2.0);
    sum += x;
    sq += (x - 3.0) * (x - 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  rng g(37);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(g.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanGaussianRegime) {
  rng g(41);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 20000;
  constexpr double mean = 1e4;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(g.poisson(mean));
    sum += x;
    sq += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(sum / n, mean, 5.0);
  // Poisson variance == mean.
  EXPECT_NEAR(sq / n, mean, 0.05 * mean);
}

TEST(Rng, PoissonZeroMean) {
  rng g(43);
  EXPECT_EQ(g.poisson(0.0), 0u);
  EXPECT_EQ(g.poisson(-1.0), 0u);
}

TEST(Rng, ExponentialMean) {
  rng g(47);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += g.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  rng parent(53);
  rng child = parent.fork();
  // The child stream should not reproduce the parent's outputs.
  rng parent_copy(53);
  (void)parent_copy();  // parent consumed one draw for the fork
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent_copy()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitMixExpansionIsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

// ------------------------------------------------- counter-based streams

TEST(CounterRng, StreamIsPureFunctionOfKey) {
  // Two generators built from the same key replay the same draws — no
  // hidden global state, no dependence on construction order.
  const std::uint64_t key = counter_rng::key_of(42, 7, 1, 1234);
  counter_rng a{key};
  counter_rng b{counter_rng::key_of(42, 7, 1, 1234)};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(CounterRng, KeyComponentsAllMatter) {
  // Changing any single key component (seed, link, direction, sequence)
  // must decorrelate the stream, including zero <-> nonzero swaps in the
  // trailing components.
  const std::uint64_t base = counter_rng::key_of(1, 2, 3, 4);
  const std::uint64_t variants[] = {
      counter_rng::key_of(9, 2, 3, 4), counter_rng::key_of(1, 9, 3, 4),
      counter_rng::key_of(1, 2, 9, 4), counter_rng::key_of(1, 2, 3, 9),
      counter_rng::key_of(1, 2, 3, 0), counter_rng::key_of(1, 2, 0, 4),
  };
  for (const std::uint64_t v : variants) {
    EXPECT_NE(v, base);
    counter_rng a{base}, b{v};
    int same = 0;
    for (int i = 0; i < 100; ++i) {
      if (a() == b()) ++same;
    }
    EXPECT_EQ(same, 0);
  }
}

TEST(CounterRng, BelowStaysInRange) {
  counter_rng g{counter_rng::key_of(17)};
  for (const std::uint64_t n : {1ULL, 2ULL, 8ULL, 255ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.below(n), n);
  }
}

TEST(CounterRng, UniformInUnitInterval) {
  counter_rng g{counter_rng::key_of(7)};
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, PoissonMomentsAcrossKeys) {
  // The fabric draws one poisson per (key) stream; the ensemble over
  // consecutive sequence numbers must still have Poisson moments.
  constexpr double mean = 3.5;
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    counter_rng g{counter_rng::key_of(37, 0, 0, static_cast<std::uint64_t>(i))};
    const double x = static_cast<double>(g.poisson(mean));
    sum += x;
    sq += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(sum / n, mean, 0.1);
  EXPECT_NEAR(sq / n, mean, 0.1 * mean);
}

TEST(CounterRng, PoissonZeroAndNegativeMean) {
  counter_rng g{counter_rng::key_of(43)};
  EXPECT_EQ(g.poisson(0.0), 0u);
  EXPECT_EQ(g.poisson(-1.0), 0u);
}

// ------------------------------------------------ counter-based normals

TEST(CounterNormal, Moments) {
  const std::uint64_t key = counter_rng::key_of(61);
  double sum = 0.0, sq = 0.0, cube = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = counter_normal(key, static_cast<std::uint64_t>(i));
    sum += x;
    sq += x * x;
    cube += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);     // mean
  EXPECT_NEAR(sq / n, 1.0, 0.02);      // variance
  EXPECT_NEAR(cube / n, 0.0, 0.05);    // skew
}

TEST(CounterNormal, TailQuantilesMatchNormalCdf) {
  // The inverse-CDF construction must populate the tails with the right
  // mass (the polar method gets this implicitly; here it is the explicit
  // contract of the Acklam approximation + tail branch).
  const std::uint64_t key = counter_rng::key_of(67);
  constexpr int n = 200000;
  int beyond_1 = 0, beyond_2 = 0, beyond_3 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = std::abs(counter_normal(key, i));
    beyond_1 += x > 1.0;
    beyond_2 += x > 2.0;
    beyond_3 += x > 3.0;
  }
  EXPECT_NEAR(beyond_1 / static_cast<double>(n), 0.3173, 0.01);
  EXPECT_NEAR(beyond_2 / static_cast<double>(n), 0.0455, 0.004);
  EXPECT_NEAR(beyond_3 / static_cast<double>(n), 0.0027, 0.001);
}

TEST(CounterNormal, DrawIndexIsDirectlyAddressable) {
  // Draw i is a pure function of (key, i): reading draws out of order, or
  // twice, reproduces the in-order stream exactly.
  const std::uint64_t key = counter_rng::key_of(71);
  std::vector<double> forward(257);
  for (std::size_t i = 0; i < forward.size(); ++i) {
    forward[i] = counter_normal(key, i);
  }
  for (std::size_t i = forward.size(); i-- > 0;) {
    EXPECT_EQ(counter_normal(key, i), forward[i]);
  }
}

TEST(CounterNormal, KeysAreIndependent) {
  const std::uint64_t a = counter_rng::key_of(73, 1);
  const std::uint64_t b = counter_rng::key_of(73, 2);
  int same = 0;
  double corr = 0.0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double xa = counter_normal(a, i);
    const double xb = counter_normal(b, i);
    same += xa == xb;
    corr += xa * xb;
  }
  EXPECT_EQ(same, 0);
  EXPECT_NEAR(corr / n, 0.0, 0.05);
}

TEST(CounterStream, SequentialMatchesDirectIndexing) {
  const std::uint64_t key = counter_rng::key_of(79);
  counter_stream s(key);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(s.normal(), counter_normal(key, i));
  }
  EXPECT_EQ(s.cursor(), 100u);
}

TEST(CounterStream, SkipEqualsDrawingAndDiscarding) {
  const std::uint64_t key = counter_rng::key_of(83);
  counter_stream skipped(key), drawn(key);
  skipped.skip(1000);
  for (int i = 0; i < 1000; ++i) (void)drawn.normal();
  EXPECT_EQ(skipped.cursor(), drawn.cursor());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(skipped.normal(), drawn.normal());
}

TEST(CounterStream, FillMatchesScalarDraws) {
  // fill_normal routes through the dispatched SIMD kernel; it must hand
  // out exactly the draws that repeated normal() calls would, and leave
  // the cursor in the same place.
  const std::uint64_t key = counter_rng::key_of(89);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{513}, std::size_t{2048}}) {
    counter_stream bulk(key), scalar(key);
    std::vector<double> out(n);
    bulk.fill_normal(out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], scalar.normal());
    EXPECT_EQ(bulk.cursor(), scalar.cursor());
  }
}

TEST(CounterStream, SeekRewindsExactly) {
  counter_stream s(counter_rng::key_of(97));
  std::vector<double> first(32);
  for (double& x : first) x = s.normal();
  s.seek(0);
  for (const double x : first) EXPECT_EQ(s.normal(), x);
}

TEST(CounterStream, ScaledNormalAppliesMeanAndSigma) {
  const std::uint64_t key = counter_rng::key_of(101);
  counter_stream a(key), b(key);
  for (int i = 0; i < 100; ++i) {
    const double raw = a.normal();
    EXPECT_EQ(b.normal(3.0, 2.0), 3.0 + 2.0 * raw);
  }
}

}  // namespace
}  // namespace onfiber::phot
