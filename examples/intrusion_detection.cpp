// intrusion_detection.cpp — Table-1 C2 use case as a standalone tool:
// scan synthetic packet payloads for byte signatures with the photonic
// P2 correlator and cross-check against the Aho-Corasick baseline.
#include <cstdio>
#include <string>

#include "apps/intrusion_detection.hpp"
#include "digital/pattern.hpp"

using namespace onfiber;

namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

int main() {
  std::printf("on-fiber intrusion detection demo\n\n");

  // Signature set (a miniature Snort ruleset).
  const std::vector<std::vector<std::uint8_t>> signatures{
      bytes_of("GET /etc/passwd"),
      bytes_of("\\x90\\x90\\x90\\x90"),
      bytes_of("DROP TABLE"),
  };
  std::printf("signatures: %zu rules, %zu-%zu bytes\n", signatures.size(),
              signatures[2].size(), signatures[0].size());

  // Deterministic workload: 20 payloads of 96 bytes, 40% carrying a
  // planted signature at a random offset.
  const apps::ids_workload workload =
      apps::make_ids_workload(signatures, 20, 96, 0.4, 2024);

  apps::photonic_ids photonic(signatures, {}, 77);
  const digital::aho_corasick baseline(signatures);

  std::printf("\n%-8s %-28s %-28s\n", "payload", "photonic detections",
              "digital detections");
  std::vector<std::vector<apps::detection>> photonic_all, digital_all;
  for (std::size_t i = 0; i < workload.payloads.size(); ++i) {
    const auto ph = photonic.scan(workload.payloads[i]);
    const auto dg =
        apps::digital_ids_scan(baseline, workload.payloads[i], signatures);
    std::string ph_str, dg_str;
    for (const auto& d : ph) {
      ph_str += "rule" + std::to_string(d.signature_index) + "@" +
                std::to_string(d.byte_offset) + " ";
    }
    for (const auto& d : dg) {
      dg_str += "rule" + std::to_string(d.signature_index) + "@" +
                std::to_string(d.byte_offset) + " ";
    }
    if (ph_str.empty()) ph_str = "-";
    if (dg_str.empty()) dg_str = "-";
    std::printf("%-8zu %-28s %-28s%s\n", i, ph_str.c_str(), dg_str.c_str(),
                ph == dg ? "" : "  <-- DISAGREE");
    photonic_all.push_back(ph);
    digital_all.push_back(dg);
  }

  const auto pq = apps::score_detections(workload.truth, photonic_all);
  const auto dq = apps::score_detections(workload.truth, digital_all);
  std::printf(
      "\nphotonic: recall %.1f%% precision %.1f%% | digital: recall %.1f%% "
      "precision %.1f%%\n",
      100.0 * pq.recall, 100.0 * pq.precision, 100.0 * dq.recall,
      100.0 * dq.precision);
  std::printf("photonic analog work: %llu correlator evaluations, %.2f us\n",
              static_cast<unsigned long long>(photonic.evaluations()),
              photonic.analog_time_s() * 1e6);
  return 0;
}
