// inference_service.cpp — the whole system in one run: a controller
// service allocates DNN transponders on the US-WAN against churning user
// demands, publishes two-field routes into the live data plane, and
// inference packets from several cities are computed in flight.
#include <cstdio>

#include "apps/ml_inference.hpp"
#include "controller/service.hpp"
#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "digital/dnn.hpp"
#include "network/stats.hpp"

using namespace onfiber;

int main() {
  std::printf("on-fiber inference service on the US-WAN\n\n");

  // Model + data.
  const auto data = digital::make_synthetic_dataset(16, 4, 40, 0.08, 7);
  const auto model =
      digital::train_mlp(data, {12}, 40, 0.08, 11,
                         digital::activation_kind::photonic_sin2, 2.0);

  // Data plane: DNN transponders at Salt Lake (3) and Chicago (7).
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_uswan_topology());
  const core::dnn_task task = apps::to_photonic_task(model);
  rt.deploy_engine(3, {}, 21).configure_dnn(task);
  rt.deploy_engine(7, {}, 22).configure_dnn(task);

  // Controller service: tracks demands, publishes routes into the runtime.
  std::vector<ctrl::transponder_info> inventory{
      {0, 3, {proto::primitive_id::p1_p3_dnn}, 1e6},
      {1, 7, {proto::primitive_id::p1_p3_dnn}, 1e6},
  };
  ctrl::service_config cfg;
  cfg.epoch_s = 5e-3;
  ctrl::controller_service svc(sim, rt.fabric().topo(), inventory, cfg);
  svc.set_publish_callback(
      [&rt](const std::vector<ctrl::compute_route_entry>& routes) {
        for (const auto& r : routes) {
          rt.set_compute_route(r.at, r.dst_prefix, r.primitive, r.next_hop);
        }
      });

  // Three user populations with different lifetimes.
  struct population {
    net::node_id src, dst;
    const char* name;
  };
  const population pops[] = {
      {0, 10, "Seattle -> NewYork"},
      {2, 11, "LosAngeles -> Boston"},
      {5, 9, "Houston -> WashingtonDC"},
  };
  std::uint32_t demand_id = 0;
  for (const auto& p : pops) {
    ctrl::compute_demand d;
    d.id = demand_id++;
    d.src = p.src;
    d.dst = p.dst;
    d.chain = {proto::primitive_id::p1_p3_dnn};
    d.rate_ops_s = 1e3;
    d.value = 1.0;
    svc.add_demand(d, 0.0, 60e-3);
  }
  svc.start();

  // Each population fires 20 inference requests over 50 ms.
  phot::rng gen(5);
  std::uint32_t req_id = 0;
  for (const auto& p : pops) {
    double t = 1e-3;  // after the first controller epoch
    for (int i = 0; i < 20; ++i) {
      t += gen.exponential(400.0);
      const auto sample = static_cast<std::size_t>(gen.below(160));
      net::packet pkt = core::make_dnn_request(
          rt.fabric().topo().node_at(p.src).address,
          rt.fabric().topo().node_at(p.dst).address, data.samples[sample],
          model.output_dim(), (req_id++ << 8) | static_cast<std::uint32_t>(sample));
      sim.schedule(t, [&rt, pkt = std::move(pkt), src = p.src]() mutable {
        pkt.created_s = rt.sim().now();
        rt.submit(std::move(pkt), src);
      });
    }
  }
  sim.run();

  // Report.
  net::summary latency;
  std::size_t correct = 0, with_result = 0;
  for (const auto& d : rt.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    const auto r = core::read_dnn_result(d.pkt);
    if (!h || !r) continue;
    ++with_result;
    latency.add(d.time_s - d.pkt.created_s);
    if (r->predicted_class == data.labels[h->task_id & 0xff]) ++correct;
  }
  std::printf("requests delivered : %zu (of 60)\n", rt.deliveries().size());
  std::printf("computed in flight : %llu at %zu sites (busy: SLC %.1f us, CHI %.1f us)\n",
              static_cast<unsigned long long>(rt.stats().computed),
              rt.sites().size(), rt.site_busy_s(3) * 1e6,
              rt.site_busy_s(7) * 1e6);
  std::printf("accuracy           : %.1f%% (%zu/%zu)\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(with_result),
              correct, with_result);
  std::printf("latency            : p50 %.2f ms, p99 %.2f ms\n",
              latency.percentile(50) * 1e3, latency.percentile(99) * 1e3);
  std::printf("controller         : %zu epochs, %zu reconfigs, %.2f ms install downtime\n",
              svc.history().size(), svc.total_reconfigs(),
              svc.total_downtime_s() * 1e3);
  return 0;
}
