// wan_inference.cpp — the paper's Figure-1 scenario, end to end.
//
// A 4-node WAN (A, B, C, D). A photonic compute transponder at site C is
// configured with a trained DNN (image recognition). A phone at site A
// sends images to a user at site D; the classification result is computed
// *while the packet crosses the WAN* and arrives at D inside the packet.
#include <cstdio>

#include "apps/ml_inference.hpp"
#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "digital/dnn.hpp"

using namespace onfiber;

int main() {
  std::printf("Figure-1 scenario: on-fiber image recognition A -> C -> D\n\n");

  // 1. Train a model (stands in for the models the controller distributes
  //    "across network devices in advance", §4). Photonic-aware training
  //    uses the P3 transfer as the activation so the analog engine
  //    reproduces the trained behaviour.
  const auto data = digital::make_synthetic_dataset(
      /*dim=*/16, /*classes=*/4, /*per_class=*/25, /*sigma=*/0.08, 7);
  const auto model =
      digital::train_mlp(data, {12}, 40, 0.08, 11,
                         digital::activation_kind::photonic_sin2, 2.0);
  std::printf("trained model: 16-12-4 MLP, reference accuracy %.1f%%\n",
              100.0 * digital::reference_accuracy(model, data));

  // 2. Build the WAN and deploy the photonic compute transponder at C.
  net::simulator sim;
  core::onfiber_runtime runtime(sim, net::make_figure1_topology());
  core::photonic_engine& site_c = runtime.deploy_engine(/*node=*/2, {}, 99);
  site_c.configure_dnn(apps::to_photonic_task(model));
  runtime.install_compute_routes_via_nearest_site();

  // 3. Send 10 "images" from A addressed to D.
  const net::ipv4 phone = runtime.fabric().topo().node_at(0).address;
  const net::ipv4 viewer = runtime.fabric().topo().node_at(3).address;
  for (std::uint32_t i = 0; i < 10; ++i) {
    runtime.submit(core::make_dnn_request(phone, viewer, data.samples[i * 9],
                                          model.output_dim(), i),
                   /*ingress=*/0);
  }
  sim.run();

  // 4. At D, read the results out of the delivered packets.
  std::printf("\n%-8s %-12s %-10s %-12s\n", "image", "predicted", "label",
              "latency");
  int correct = 0;
  for (const auto& d : runtime.deliveries()) {
    const auto h = proto::peek_compute_header(d.pkt);
    const auto result = core::read_dnn_result(d.pkt);
    if (!h || !result) continue;
    const bool ok =
        result->predicted_class == data.labels[h->task_id * 9];
    correct += ok;
    std::printf("%-8u class %-6u %-10zu %8.3f ms %s\n", h->task_id,
                result->predicted_class, data.labels[h->task_id * 9],
                (d.time_s - d.pkt.created_s) * 1e3, ok ? "" : "  <-- wrong");
  }
  std::printf(
      "\n%d/10 correct; computed at site C in transit "
      "(%llu computed, %llu redirected, %llu reached D uncomputed)\n",
      correct,
      static_cast<unsigned long long>(runtime.stats().computed),
      static_cast<unsigned long long>(runtime.stats().redirected),
      static_cast<unsigned long long>(runtime.stats().uncomputed_delivered));
  return 0;
}
