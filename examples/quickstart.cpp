// quickstart.cpp — the 5-minute tour of the on-fiber photonic computing
// library: exercise the three photonic primitives of paper §2.1 directly,
// then run one compute packet through a photonic engine.
//
//   build:  cmake -B build -G Ninja && cmake --build build
//   run:    ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/photonic_engine.hpp"
#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/nonlinear_unit.hpp"
#include "photonics/engine/pattern_matcher.hpp"

using namespace onfiber;

int main() {
  std::printf("on-fiber photonic computing — quickstart\n\n");

  // ------------------------------------------------------------------ P1
  // Photonic vector dot product (Fig. 2a): two cascaded Mach-Zehnder
  // modulators multiply element-wise in the intensity domain; the
  // photodetector integrates (sums); DAC/ADC bound the precision.
  {
    phot::dot_product_unit unit({}, /*seed=*/42);
    const std::vector<double> a{0.9, 0.2, 0.7, 0.4};
    const std::vector<double> b{0.5, 0.8, 0.1, 0.6};
    const auto r = unit.dot_unit_range(a, b);
    double exact = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) exact += a[i] * b[i];
    std::printf("P1 dot product : analog %.4f  exact %.4f  (%.1f ns)\n",
                r.value, exact, r.latency_s * 1e9);
  }

  // ------------------------------------------------------------------ P2
  // Photonic pattern matching (Fig. 2b): phase-encode data and pattern,
  // interfere; the dark port's power counts mismatched bits. Wildcards
  // give TCAM semantics.
  {
    phot::pattern_matcher matcher({}, 7);
    const std::vector<std::uint8_t> data{0xca, 0xfe};
    const std::vector<std::uint8_t> same{0xca, 0xfe};
    const std::vector<std::uint8_t> close{0xca, 0xff};
    std::printf("P2 match       : exact=%d   1-byte-off=%d (mismatch %.3f)\n",
                matcher.match_bytes(data, same).matched,
                matcher.match_bytes(data, close).matched,
                matcher.match_bytes(data, close).mismatch_fraction);
  }

  // ------------------------------------------------------------------ P3
  // Photonic nonlinear function (Fig. 2c): a tapped photodetector drives
  // a null-biased modulator — a ReLU-like transfer, all optical.
  {
    phot::nonlinear_unit nl({}, 9);
    std::printf("P3 activation  : f(0.1)=%.3f  f(0.5)=%.3f  f(1.0)=%.3f\n",
                nl.activate(0.1, 10.0), nl.activate(0.5, 10.0),
                nl.activate(1.0, 10.0));
  }

  // ------------------------------------------------ a compute packet
  // The protocol view (§3): a compute header layered over IP asks for a
  // GEMV; the photonic engine at a transponder fills in the result field.
  {
    core::photonic_engine engine({}, 11);
    core::gemv_task task;
    task.weights = phot::matrix(2, 4);
    task.weights.at(0, 0) = 1.0;   // y0 = x0
    task.weights.at(1, 3) = -1.0;  // y1 = -x3
    engine.configure_gemv(task);

    const std::vector<double> x{0.8, 0.1, 0.3, 0.5};
    net::packet pkt = core::make_gemv_request(
        net::ipv4(10, 0, 0, 2), net::ipv4(10, 3, 0, 2), x, /*out_dim=*/2);
    const auto report = engine.process(pkt);
    const auto result = core::read_gemv_result(pkt);
    std::printf(
        "compute packet : computed=%d  y=[%.3f, %.3f]  expect [0.8, -0.5]\n",
        report.computed, (*result)[0], (*result)[1]);
  }

  std::printf("\nnext: examples/wan_inference, examples/intrusion_detection,\n"
              "      examples/controller_demo, examples/load_balancer\n");
  return 0;
}
