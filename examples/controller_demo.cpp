// controller_demo.cpp — the centralized controller (§3) at work: register
// photonic compute transponders across a US-WAN, submit user demands
// (compute chains), solve the allocation three ways, and print the
// assignments, routes and a failure-driven reconfiguration.
#include <cstdio>

#include "controller/controller.hpp"
#include "network/topology.hpp"

using namespace onfiber;

namespace {

const char* prim_name(proto::primitive_id p) {
  switch (p) {
    case proto::primitive_id::p1_dot_product: return "P1:dot";
    case proto::primitive_id::p2_pattern_match: return "P2:match";
    case proto::primitive_id::p3_nonlinear: return "P3:nonlin";
    case proto::primitive_id::p1_p3_dnn: return "P1+P3:dnn";
    case proto::primitive_id::none: return "none";
  }
  return "?";
}

void print_allocation(const ctrl::allocation_problem& p,
                      const ctrl::allocation_result& r, const char* name) {
  std::printf("\n%s: value %.1f, delay %.2f ms, %zu transponders used\n",
              name, r.satisfied_value, r.total_delay_s * 1e3,
              r.transponders_used);
  for (const auto& a : r.assignments) {
    const auto& d = p.demands[a.demand_id];
    std::printf("  demand %u (%s -> %s, %s): ", d.id,
                p.topo->node_at(d.src).name.c_str(),
                p.topo->node_at(d.dst).name.c_str(),
                prim_name(d.chain[0]));
    if (!a.satisfied) {
      std::printf("UNSATISFIED\n");
      continue;
    }
    for (const auto tid : a.transponder_ids) {
      std::printf("site %s ", p.topo->node_at(
          p.transponders[tid].node).name.c_str());
    }
    std::printf("(+%.2f ms path)\n", a.path_delay_s * 1e3);
  }
}

}  // namespace

int main() {
  std::printf("centralized controller demo on the US-WAN\n");

  net::topology topo = net::make_uswan_topology();
  ctrl::allocation_problem p;
  p.topo = &topo;

  // Transponder inventory: (id, node, primitives, capacity).
  p.transponders = {
      {0, 3, {proto::primitive_id::p1_dot_product,
              proto::primitive_id::p1_p3_dnn}, 6e3},   // Salt Lake
      {1, 6, {proto::primitive_id::p2_pattern_match}, 6e3},  // Kansas City
      {2, 7, {proto::primitive_id::p1_p3_dnn}, 6e3},   // Chicago
      {3, 9, {proto::primitive_id::p2_pattern_match,
              proto::primitive_id::p1_dot_product}, 6e3},  // Washington DC
  };
  std::printf("inventory: %zu transponders\n", p.transponders.size());

  // User demands: inference and classification chains across the country.
  const auto demand = [&](std::uint32_t id, net::node_id src, net::node_id dst,
                          std::vector<proto::primitive_id> chain, double rate,
                          double value) {
    ctrl::compute_demand d;
    d.id = id;
    d.src = src;
    d.dst = dst;
    d.chain = std::move(chain);
    d.rate_ops_s = rate;
    d.value = value;
    return d;
  };
  p.demands = {
      demand(0, 0, 10, {proto::primitive_id::p1_p3_dnn}, 4e3, 3.0),
      demand(1, 1, 11, {proto::primitive_id::p1_p3_dnn}, 4e3, 2.0),
      demand(2, 2, 9, {proto::primitive_id::p2_pattern_match}, 3e3, 1.0),
      demand(3, 5, 10, {proto::primitive_id::p2_pattern_match,
                        proto::primitive_id::p1_dot_product}, 2e3, 2.5),
      demand(4, 4, 11, {proto::primitive_id::p1_dot_product}, 5e3, 1.5),
  };
  std::printf("demands: %zu (one is a two-stage chain)\n", p.demands.size());

  const auto greedy = ctrl::solve_greedy(p);
  const auto local = ctrl::solve_local_search(p);
  const auto exact = ctrl::solve_exact(p);
  print_allocation(p, greedy, "greedy");
  print_allocation(p, local, "local search");
  print_allocation(p, exact, "exact (branch & bound)");

  // Routes the controller would push to routers (§3: "delivering next-hop
  // updates to all routers").
  const auto routes = ctrl::routes_for_allocation(p, exact);
  std::printf("\ntwo-field route entries pushed to routers: %zu\n",
              routes.size());
  for (std::size_t i = 0; i < routes.size() && i < 6; ++i) {
    const auto& e = routes[i];
    std::printf("  at %-14s dst %-18s prim %-10s -> next hop %s\n",
                topo.node_at(e.at).name.c_str(),
                e.dst_prefix.to_string().c_str(), prim_name(e.primitive),
                topo.node_at(e.next_hop).name.c_str());
  }
  if (routes.size() > 6) std::printf("  ... %zu more\n", routes.size() - 6);

  // Failure: Chicago's transponder dies; re-plan and print the reconfig.
  std::printf("\nfailure: Chicago transponder (id 2) goes down; re-planning\n");
  ctrl::allocation_problem degraded = p;
  degraded.transponders[2].capacity_ops_s = 0.0;
  const auto replanned = ctrl::solve_local_search(degraded);
  print_allocation(degraded, replanned, "re-planned");
  const auto ops = ctrl::plan_reconfiguration(degraded, exact, replanned);
  std::printf("\nreconfiguration ops: %zu\n", ops.size());
  for (const auto& op : ops) {
    std::printf("  install %s on transponder %u (%s)\n",
                prim_name(op.install), op.transponder_id,
                topo.node_at(degraded.transponders[op.transponder_id].node)
                    .name.c_str());
  }
  return 0;
}
