// load_balancer.cpp — Table-1 C2 use case: flowlet load balancing with
// the photonic comparator, compared against ECMP hashing and exact
// digital flowlet switching.
#include <cstdio>

#include "apps/load_balancing.hpp"

using namespace onfiber;

int main() {
  std::printf("photonic load balancer demo: 4 uplinks, heavy-tailed flows\n\n");

  const auto flows = apps::make_lb_flows(/*count=*/500,
                                         /*arrival_rate_fps=*/2000.0,
                                         /*seed=*/7);
  double total_mb = 0.0;
  std::size_t elephants = 0;
  for (const auto& f : flows) {
    total_mb += f.size_bytes / 1e6;
    if (f.size_bytes > 100e3) ++elephants;
  }
  std::printf("workload: %zu flows (%zu elephants), %.1f MB total\n\n",
              flows.size(), elephants, total_mb);

  const auto show = [](const char* name, const apps::lb_result& r) {
    std::printf("%-22s Jain %.3f  max/mean %.2f  per-path MB:", name,
                r.jain_fairness, r.max_over_mean);
    for (const double b : r.path_bytes) std::printf(" %.1f", b / 1e6);
    std::printf("\n");
  };

  show("ECMP hash",
       apps::run_load_balancer(flows, 4, apps::lb_policy::ecmp_hash, 0.5e-3,
                               nullptr, 1));
  show("flowlet (digital)",
       apps::run_load_balancer(flows, 4, apps::lb_policy::flowlet_digital,
                               0.5e-3, nullptr, 1));

  apps::photonic_comparator comparator({}, 99);
  show("flowlet (photonic)",
       apps::run_load_balancer(flows, 4, apps::lb_policy::flowlet_photonic,
                               0.5e-3, &comparator, 1));
  std::printf(
      "\nphotonic comparator made %llu analog comparisons — and keeps NO\n"
      "per-flow table state (the Table-1 'limited memory' bottleneck).\n",
      static_cast<unsigned long long>(comparator.comparisons()));
  return 0;
}
