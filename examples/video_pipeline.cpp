// video_pipeline.cpp — Table-1 C1 use case: in-network video encoding.
//
// Encodes a synthetic frame with the 8x8 DCT on the photonic GEMV engine
// (the transform an on-fiber encoder would apply to raw video in flight),
// decodes at the "receiver", and prints quality vs the exact digital
// encoder — plus an ASCII preview so the result is visible.
#include <cstdio>

#include "apps/video_encoding.hpp"

using namespace onfiber;

namespace {

void ascii_preview(const apps::frame& f, const char* title) {
  // 2:1 downsample into ASCII luminance.
  static const char* ramp = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (std::size_t y = 0; y < f.height; y += 4) {
    std::printf("  ");
    for (std::size_t x = 0; x < f.width; x += 2) {
      const double v = f.at(x, y);
      const int idx = static_cast<int>(v * 9.999);
      std::printf("%c", ramp[idx < 0 ? 0 : (idx > 9 ? 9 : idx)]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("on-fiber video encoding demo (8x8 DCT on P1)\n\n");

  const apps::frame src = apps::make_synthetic_frame(64, 64, 5);
  apps::video_config cfg;
  cfg.quant_step = 1.0 / 64.0;

  // Digital (exact) pipeline.
  const auto digital = apps::encode_digital(src, cfg);
  const apps::frame digital_out = apps::decode(digital, 64, 64, cfg);

  // Photonic pipeline: both matrix products of every block run on the
  // analog GEMV unit.
  phot::vector_matrix_engine engine({}, 42);
  const auto photonic = apps::encode_photonic(src, cfg, engine);
  const apps::frame photonic_out = apps::decode(photonic, 64, 64, cfg);

  std::printf("frame 64x64, quantizer step 1/64\n");
  std::printf("  digital encode : PSNR %.1f dB\n",
              apps::psnr_db(src, digital_out));
  std::printf(
      "  photonic encode: PSNR %.1f dB, %.1f us analog time, %llu optical symbols\n\n",
      apps::psnr_db(src, photonic_out), photonic.latency_s * 1e6,
      static_cast<unsigned long long>(photonic.optical_symbols));

  ascii_preview(src, "source:");
  std::printf("\n");
  ascii_preview(photonic_out, "photonic encode -> decode:");
  return 0;
}
