// onfiber_trace — inspector for the observability plane (src/obs).
//
// Runs the flap + bit-error scenario from the determinism suite with
// tracing enabled, then answers questions from the retained records:
//
//   onfiber_trace --list
//       One line per traced packet: record count, first/last action,
//       and where it ended up (delivered / dropped+reason / in flight).
//
//   onfiber_trace --packet N
//       Pretty-print packet N's life, hop by hop.
//
//   onfiber_trace --metrics
//       Flat metrics JSON on stdout.
//
//   onfiber_trace --trace-csv F | --timeline-csv F | --metrics-json F
//   | --metrics-csv F
//       Dump the corresponding exporter output to file F.
//
// With no arguments it prints a run summary (counters + ring usage).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/compute_packets.hpp"
#include "core/runtime.hpp"
#include "network/topology.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace {

using namespace onfiber;

/// Fig. 1 WAN, GEMV engines at B and C, both of B's links flapping, BER
/// 1e-4 — the determinism suite's scenario, instrumented.
void run_scenario() {
  net::simulator sim;
  core::onfiber_runtime rt(sim, net::make_figure1_topology());
  core::gemv_task task;
  task.weights = phot::matrix(4, 16);
  for (std::size_t i = 0; i < task.weights.data.size(); ++i) {
    task.weights.data[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  rt.deploy_engine(1, {}, 21).configure_gemv(task);
  rt.deploy_engine(2, {}, 22).configure_gemv(task);
  rt.install_compute_routes_via_nearest_site();

  const net::wan_fabric::link_flap flaps[] = {
      {0, 0.004, 0.011},
      {2, 0.006, 0.013},
  };
  rt.fabric().schedule_flaps(flaps, 0.002, 17, 0.0005);
  rt.fabric().set_bit_error_rate(1e-4, 99);

  std::vector<double> x(16);
  for (int i = 0; i < 48; ++i) {
    sim.schedule_at(0.0004 * i, [&rt, &x, i]() mutable {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] =
            -1.0 + 2.0 * static_cast<double>((k * 31 + i * 7) % 97) / 96.0;
      }
      rt.submit(core::make_gemv_request(
                    rt.fabric().topo().node_at(0).address,
                    rt.fabric().topo().node_at(3).address, x, 4,
                    static_cast<std::uint32_t>(i)),
                0);
    });
  }
  sim.run(1'000'000);
}

void print_record(const obs::hop_record& r) {
  std::printf("  %12.9fs  node %-3u %-9s", r.time_s, r.node,
              obs::to_string(r.action));
  switch (r.action) {
    case obs::hop_action::forward:
    case obs::hop_action::redirect:
      std::printf("  -> node %u", r.aux);
      break;
    case obs::hop_action::drop:
      std::printf("  (%s)", obs::to_string(r.reason));
      break;
    case obs::hop_action::batch:
      std::printf("  (flush of %u)", r.aux);
      break;
    default:
      break;
  }
  std::printf("\n");
}

int cmd_list() {
  struct life_summary {
    std::size_t records = 0;
    obs::hop_record last;
  };
  std::map<std::uint32_t, life_summary> lives;
  for (const obs::hop_record& r : obs::tracer::global().snapshot()) {
    life_summary& s = lives[r.trace_id];
    ++s.records;
    s.last = r;
  }
  std::printf("trace_id  records  fate\n");
  for (const auto& [id, s] : lives) {
    std::printf("%8u  %7zu  %s", id, s.records, obs::to_string(s.last.action));
    if (s.last.action == obs::hop_action::drop) {
      std::printf(" (%s)", obs::to_string(s.last.reason));
    }
    std::printf(" at node %u, t=%.9fs\n", s.last.node, s.last.time_s);
  }
  return 0;
}

int cmd_packet(std::uint32_t id) {
  const auto life = obs::tracer::global().packet_life(id);
  if (life.empty()) {
    std::fprintf(stderr, "no retained records for trace_id %u\n", id);
    return 1;
  }
  std::printf("packet %u (%zu records):\n", id, life.size());
  for (const obs::hop_record& r : life) print_record(r);
  return 0;
}

int dump(const std::string& path, const std::string& body) {
  if (!obs::exporter::write_file(path, body)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), body.size());
  return 0;
}

int cmd_summary() {
  const obs::tracer& tr = obs::tracer::global();
  std::printf("hop records: %llu recorded, %zu retained (capacity %zu)\n",
              static_cast<unsigned long long>(tr.total_recorded()),
              tr.snapshot().size(), tr.capacity());
  std::printf("site samples: %llu recorded\n",
              static_cast<unsigned long long>(
                  obs::timeline::global().total_recorded()));
  std::printf("%s", obs::exporter::metrics_json().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::set_enabled(true);
  obs::registry::global().reset_values();
  obs::tracer::global().clear();
  obs::timeline::global().clear();
  run_scenario();

  if (argc <= 1) return cmd_summary();
  const std::string cmd = argv[1];
  const auto arg = [&](int i) -> std::string {
    return i < argc ? argv[i] : "";
  };
  if (cmd == "--list") return cmd_list();
  if (cmd == "--packet" && argc >= 3) {
    return cmd_packet(static_cast<std::uint32_t>(std::stoul(arg(2))));
  }
  if (cmd == "--metrics") {
    std::printf("%s", obs::exporter::metrics_json().c_str());
    return 0;
  }
  if (cmd == "--trace-csv" && argc >= 3) {
    return dump(arg(2), obs::exporter::trace_csv());
  }
  if (cmd == "--timeline-csv" && argc >= 3) {
    return dump(arg(2), obs::exporter::timeline_csv());
  }
  if (cmd == "--metrics-json" && argc >= 3) {
    return dump(arg(2), obs::exporter::metrics_json());
  }
  if (cmd == "--metrics-csv" && argc >= 3) {
    return dump(arg(2), obs::exporter::metrics_csv());
  }
  std::fprintf(stderr,
               "usage: onfiber_trace [--list | --packet N | --metrics |\n"
               "                      --trace-csv F | --timeline-csv F |\n"
               "                      --metrics-json F | --metrics-csv F]\n");
  return 2;
}
