// onfiber_cli — command-line driver for the on-fiber photonic computing
// simulator.
//
//   onfiber_cli simulate   --topology {fig1|uswan|linear:N|waxman:N}
//                          --sites N --requests N --dim N
//                          [--spread] [--seed S]
//       Deploy GEMV engines on the chosen topology, fire inference-style
//       requests between random endpoints, report latency/compute stats.
//
//   onfiber_cli allocate   --topology ... --transponders N --demands N
//                          [--solver greedy|local|exact] [--seed S]
//       Run the centralized controller on a synthetic demand set; print
//       the allocation, the route count and the RWA provisioning.
//
//   onfiber_cli primitives [--seed S]
//       Characterize P1/P2/P3 quickly (the Fig. 2 micro-summary).
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <string>

#include "onfiber.hpp"
#include "controller/rwa.hpp"

namespace {

using namespace onfiber;

struct cli_args {
  std::map<std::string, std::string> options;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) != 0;
  }
};

cli_args parse_args(int argc, char** argv, int first) {
  cli_args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

net::topology build_topology(const std::string& spec, std::uint64_t seed) {
  if (spec == "fig1") return net::make_figure1_topology();
  if (spec == "uswan") return net::make_uswan_topology();
  if (spec.rfind("linear:", 0) == 0) {
    return net::make_linear_topology(
        static_cast<std::size_t>(std::stol(spec.substr(7))), 100.0);
  }
  if (spec.rfind("waxman:", 0) == 0) {
    return net::make_waxman_topology(
        static_cast<std::size_t>(std::stol(spec.substr(7))), seed);
  }
  throw std::invalid_argument("unknown topology: " + spec);
}

int cmd_simulate(const cli_args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto site_count = static_cast<std::size_t>(args.get_int("sites", 2));
  const auto requests = static_cast<int>(args.get_int("requests", 50));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 32));

  net::simulator sim;
  core::onfiber_runtime rt(sim,
                           build_topology(args.get("topology", "fig1"), seed));
  const auto n = rt.fabric().topo().node_count();
  if (site_count == 0 || site_count >= n) {
    std::fprintf(stderr, "sites must be in [1, %zu)\n", n);
    return 2;
  }

  core::gemv_task task;
  task.weights = phot::matrix(8, dim);
  phot::rng wgen(seed);
  for (double& w : task.weights.data) w = wgen.uniform(-1.0, 1.0);
  for (std::size_t s = 0; s < site_count; ++s) {
    const auto node = static_cast<net::node_id>(1 + (s * (n - 1)) / site_count);
    rt.deploy_engine(node, {}, seed + s).configure_gemv(task);
  }
  rt.install_compute_routes_via_nearest_site();
  if (args.has("spread")) {
    rt.set_steering_policy(
        core::onfiber_runtime::steering_policy::flow_spread);
  }

  phot::rng g(seed ^ 0x1234);
  const std::vector<double> x(dim, 0.5);
  for (int i = 0; i < requests; ++i) {
    const auto src = static_cast<net::node_id>(g.below(n));
    net::node_id dst;
    do {
      dst = static_cast<net::node_id>(g.below(n));
    } while (dst == src);
    net::packet pkt = core::make_gemv_request(
        rt.fabric().topo().node_at(src).address,
        rt.fabric().topo().node_at(dst).address, x, 8,
        static_cast<std::uint32_t>(i));
    pkt.flow_hash = static_cast<std::uint32_t>(g());
    rt.submit(std::move(pkt), src);
  }
  sim.run();

  net::summary latency;
  for (const auto& d : rt.deliveries()) {
    latency.add(d.time_s - d.pkt.created_s);
  }
  std::printf("topology            : %s (%zu nodes)\n",
              args.get("topology", "fig1").c_str(), n);
  std::printf("engines             : %zu sites, steering %s\n",
              rt.sites().size(), args.has("spread") ? "spread" : "nearest");
  std::printf("requests delivered  : %zu / %d\n", rt.deliveries().size(),
              requests);
  std::printf("computed in transit : %llu (redirected %llu, uncomputed %llu)\n",
              static_cast<unsigned long long>(rt.stats().computed),
              static_cast<unsigned long long>(rt.stats().redirected),
              static_cast<unsigned long long>(
                  rt.stats().uncomputed_delivered));
  std::printf("latency             : p50 %.3f ms, p99 %.3f ms\n",
              latency.percentile(50) * 1e3, latency.percentile(99) * 1e3);
  return 0;
}

int cmd_allocate(const cli_args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const net::topology topo =
      build_topology(args.get("topology", "uswan"), seed);
  const auto n = topo.node_count();

  ctrl::allocation_problem p;
  p.topo = &topo;
  phot::rng g(seed);
  const auto transponders =
      static_cast<std::uint32_t>(args.get_int("transponders", 6));
  constexpr proto::primitive_id prims[] = {
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p2_pattern_match,
      proto::primitive_id::p1_p3_dnn};
  for (std::uint32_t t = 0; t < transponders; ++t) {
    p.transponders.push_back(ctrl::transponder_info{
        t, static_cast<net::node_id>(g.below(n)), {prims[t % 3]}, 8e3});
  }
  const auto demand_count =
      static_cast<std::uint32_t>(args.get_int("demands", 16));
  for (std::uint32_t d = 0; d < demand_count; ++d) {
    ctrl::compute_demand dem;
    dem.id = d;
    dem.src = static_cast<net::node_id>(g.below(n));
    do {
      dem.dst = static_cast<net::node_id>(g.below(n));
    } while (dem.dst == dem.src);
    dem.chain = {prims[d % 3]};
    dem.rate_ops_s = 1e3 + static_cast<double>(g.below(4000));
    dem.value = 1.0;
    p.demands.push_back(dem);
  }

  const std::string solver = args.get("solver", "local");
  ctrl::allocation_result r;
  if (solver == "greedy") {
    r = ctrl::solve_greedy(p);
  } else if (solver == "exact") {
    r = ctrl::solve_exact(p);
  } else {
    r = ctrl::solve_local_search(p);
  }

  std::printf("solver     : %s\n", solver.c_str());
  std::printf("satisfied  : %.0f / %u demands\n", r.satisfied_value,
              demand_count);
  std::printf("transponders used : %zu / %u\n", r.transponders_used,
              transponders);
  std::printf("total path delay  : %.2f ms\n", r.total_delay_s * 1e3);
  const auto routes = ctrl::routes_for_allocation(p, r);
  std::printf("route entries     : %zu\n", routes.size());
  const auto paths = ctrl::lightpaths_for_allocation(p, r);
  const auto rwa = ctrl::assign_wavelengths_first_fit(topo, paths, 96);
  std::printf("RWA               : %zu lightpaths, %d wavelengths (bound %zu), %zu blocked\n",
              paths.size(), rwa.wavelengths_used, rwa.max_congestion,
              rwa.blocked);
  return 0;
}

int cmd_primitives(const cli_args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  // P1
  phot::dot_product_unit unit({}, seed);
  phot::rng g(seed ^ 0x77);
  std::vector<double> a(64), b(64);
  for (double& v : a) v = g.uniform();
  for (double& v : b) v = g.uniform();
  const double exact = std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
  const auto dot = unit.dot_unit_range(a, b);
  std::printf("P1 dot(64)   : %.4f vs exact %.4f (err %.4f), %.0f ns\n",
              dot.value, exact, dot.value - exact, dot.latency_s * 1e9);
  // P2
  phot::pattern_matcher matcher({}, seed);
  std::vector<std::uint8_t> bits(64);
  for (auto& v : bits) v = static_cast<std::uint8_t>(g.below(2));
  auto flipped = bits;
  flipped[5] ^= 1;
  std::printf("P2 match(64) : exact matched=%d, 1-flip matched=%d (frac %.4f)\n",
              matcher.match_bits(bits, bits).matched,
              matcher.match_bits(bits, flipped).matched,
              matcher.match_bits(bits, flipped).mismatch_fraction);
  // P3
  phot::nonlinear_unit nl({}, seed);
  std::printf("P3 transfer  : f(0.25)=%.4f f(0.5)=%.4f f(1.0)=%.4f (normalized)\n",
              nl.activate(0.25, 10.0), nl.activate(0.5, 10.0),
              nl.activate(1.0, 10.0));
  return 0;
}

void usage() {
  std::printf(
      "usage: onfiber_cli <simulate|allocate|primitives> [--options]\n"
      "  simulate   --topology fig1|uswan|linear:N|waxman:N --sites N\n"
      "             --requests N --dim N [--spread] [--seed S]\n"
      "  allocate   --topology ... --transponders N --demands N\n"
      "             [--solver greedy|local|exact] [--seed S]\n"
      "  primitives [--seed S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const cli_args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "allocate") return cmd_allocate(args);
    if (cmd == "primitives") return cmd_primitives(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 1;
}
