#include "apps/ip_routing.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "photonics/rng.hpp"

namespace onfiber::apps {

std::vector<std::uint8_t> address_bits(net::ipv4 addr) {
  std::vector<std::uint8_t> bits(32);
  for (int i = 0; i < 32; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((addr.value >> (31 - i)) & 1U);
  }
  return bits;
}

std::vector<phot::tbit> prefix_pattern(net::prefix p) {
  std::vector<phot::tbit> pattern(32, phot::tbit::wildcard);
  for (int i = 0; i < p.length; ++i) {
    const bool bit = (p.network.value >> (31 - i)) & 1U;
    pattern[static_cast<std::size_t>(i)] =
        bit ? phot::tbit::one : phot::tbit::zero;
  }
  return pattern;
}

photonic_fib::photonic_fib(std::vector<fib_entry> entries,
                           phot::pattern_match_config config,
                           std::uint64_t seed, phot::energy_ledger* ledger,
                           phot::energy_costs costs)
    : matcher_(config, seed, ledger, costs) {
  // Longest-first: the first hit is the longest prefix match. Default
  // routes (/0) carry no cared bits, which P2 cannot express — they are
  // kept as an implicit terminal fallback entry.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const fib_entry& a, const fib_entry& b) {
                     return a.dst.length > b.dst.length;
                   });
  entries_.reserve(entries.size());
  for (auto& e : entries) {
    prepared pr;
    pr.pattern = prefix_pattern(e.dst);
    pr.entry = e;
    entries_.push_back(std::move(pr));
  }
}

std::optional<std::uint32_t> photonic_fib::lookup(net::ipv4 addr) {
  const std::vector<std::uint8_t> bits = address_bits(addr);
  for (const prepared& pr : entries_) {
    if (pr.entry.dst.length == 0) {
      // Default route: always matches (no optical evaluation needed).
      return pr.entry.next_hop;
    }
    const phot::match_result m = matcher_.match_ternary(bits, pr.pattern);
    ++evaluations_;
    analog_time_s_ += m.latency_s;
    if (m.matched) return pr.entry.next_hop;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> photonic_fib::lookup_parallel(net::ipv4 addr) {
  const std::vector<std::uint8_t> bits = address_bits(addr);
  // All correlators fire on the same symbols; the priority encoder picks
  // the longest matching entry. Analog time: one evaluation.
  std::optional<std::uint32_t> best;
  double slowest = 0.0;
  for (const prepared& pr : entries_) {
    if (pr.entry.dst.length == 0) {
      if (!best) best = pr.entry.next_hop;
      continue;
    }
    const phot::match_result m = matcher_.match_ternary(bits, pr.pattern);
    ++evaluations_;
    slowest = std::max(slowest, m.latency_s);
    if (m.matched && !best) best = pr.entry.next_hop;  // longest-first order
  }
  analog_time_s_ += slowest;
  return best;
}

std::vector<fib_entry> make_synthetic_fib(std::size_t n, std::uint64_t seed,
                                          bool with_default) {
  phot::rng gen(seed);
  std::vector<fib_entry> out;
  out.reserve(n + 1);
  std::set<std::pair<std::uint32_t, int>> seen;
  while (out.size() < n) {
    // Realistic length mix: mostly /16-/24, some shorter aggregates.
    const int length = 8 + static_cast<int>(gen.below(17));  // 8..24
    const std::uint32_t addr =
        static_cast<std::uint32_t>(gen()) &
        (length == 0 ? 0U : ~std::uint32_t{0} << (32 - length));
    if (!seen.insert({addr, length}).second) continue;  // unique prefixes
    out.push_back(fib_entry{net::prefix(net::ipv4(addr), length),
                            static_cast<std::uint32_t>(out.size() + 1)});
  }
  if (with_default) {
    out.push_back(fib_entry{net::prefix(net::ipv4(0), 0), 0});
  }
  return out;
}

net::routing_table<std::uint32_t> make_trie_fib(
    const std::vector<fib_entry>& entries) {
  net::routing_table<std::uint32_t> table;
  // Insert shortest-first so that ties on identical prefixes resolve the
  // same way as the photonic path's stable longest-first ordering.
  std::vector<fib_entry> sorted = entries;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const fib_entry& a, const fib_entry& b) {
                     return a.dst.length < b.dst.length;
                   });
  for (const auto& e : sorted) table.insert(e.dst, e.next_hop);
  return table;
}

}  // namespace onfiber::apps
