// video_encoding.hpp — Table 1, C1: in-network video encoding.
//
// Intra-frame transform coding on the photonic engine: the 8x8 DCT-II at
// the heart of HEVC-style intra encoding [53] is a pair of matrix
// products per block (Y = D·X·Dᵀ), i.e. pure P1 work. The photonic path
// runs both products on the analog GEMV unit; the digital path uses exact
// float math. Quantization + inverse transform reconstruct the frame, and
// PSNR against the source measures how much the analog noise costs.
#pragma once

#include <cstdint>
#include <vector>

#include "photonics/engine/vector_matrix_engine.hpp"

namespace onfiber::apps {

/// A grayscale frame, pixel values in [0,1], row-major.
struct frame {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<double> pixels;

  frame() = default;
  frame(std::size_t w, std::size_t h)
      : width(w), height(h), pixels(w * h, 0.0) {}

  [[nodiscard]] double& at(std::size_t x, std::size_t y) {
    return pixels[y * width + x];
  }
  [[nodiscard]] double at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
};

/// Deterministic synthetic test frame: smooth gradients + texture + a few
/// sharp edges (so the DCT has meaningful low/high frequency content).
[[nodiscard]] frame make_synthetic_frame(std::size_t width,
                                         std::size_t height,
                                         std::uint64_t seed);

/// The 8x8 DCT-II basis matrix (orthonormal).
[[nodiscard]] phot::matrix dct8_matrix();

/// Result of encoding one frame.
struct encode_result {
  std::vector<double> coefficients;  ///< per block, 64 quantized coeffs
  double latency_s = 0.0;            ///< analog compute time (photonic path)
  std::uint64_t optical_symbols = 0;
};

/// Encoder configuration.
struct video_config {
  double quant_step = 1.0 / 64.0;  ///< uniform quantizer step
};

/// Digital (exact) encode: float DCT + quantization.
[[nodiscard]] encode_result encode_digital(const frame& f,
                                           const video_config& cfg);

/// Photonic encode: both per-block matrix products on the P1 GEMV engine.
/// Requires width and height to be multiples of 8.
[[nodiscard]] encode_result encode_photonic(const frame& f,
                                            const video_config& cfg,
                                            phot::vector_matrix_engine& engine);

/// Decode (inverse quantize + inverse DCT, always digital — decoding
/// happens at the receiving end host).
[[nodiscard]] frame decode(const encode_result& enc, std::size_t width,
                           std::size_t height, const video_config& cfg);

/// Peak signal-to-noise ratio between two equal-size frames [dB].
[[nodiscard]] double psnr_db(const frame& a, const frame& b);

}  // namespace onfiber::apps
