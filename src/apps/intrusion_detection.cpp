#include "apps/intrusion_detection.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "network/traffic.hpp"
#include "photonics/rng.hpp"

namespace onfiber::apps {

photonic_ids::photonic_ids(std::vector<std::vector<std::uint8_t>> signatures,
                           phot::pattern_match_config config,
                           std::uint64_t seed, phot::energy_ledger* ledger,
                           phot::energy_costs costs)
    : matcher_(config, seed, ledger, costs) {
  if (signatures.empty()) {
    throw std::invalid_argument("photonic_ids: no signatures");
  }
  signatures_.reserve(signatures.size());
  for (auto& s : signatures) {
    if (s.empty()) {
      throw std::invalid_argument("photonic_ids: empty signature");
    }
    prepared p;
    const auto bits = phot::bytes_to_bits(s);
    p.pattern_bits = phot::to_ternary(bits);
    p.bytes = std::move(s);
    signatures_.push_back(std::move(p));
  }
}

std::vector<detection> photonic_ids::scan(
    std::span<const std::uint8_t> payload) {
  std::vector<detection> out;
  const std::vector<std::uint8_t> payload_bits = phot::bytes_to_bits(payload);
  for (std::size_t si = 0; si < signatures_.size(); ++si) {
    const prepared& sig = signatures_[si];
    if (sig.bytes.size() > payload.size()) continue;
    const std::size_t window_bits = sig.bytes.size() * 8;
    for (std::size_t off = 0; off + sig.bytes.size() <= payload.size();
         ++off) {
      const auto window = std::span<const std::uint8_t>(payload_bits)
                              .subspan(off * 8, window_bits);
      const phot::match_result m =
          matcher_.match_ternary(window, sig.pattern_bits);
      ++evaluations_;
      analog_time_s_ += m.latency_s;
      if (m.matched) out.push_back(detection{si, off});
    }
  }
  std::sort(out.begin(), out.end(), [](const detection& a, const detection& b) {
    if (a.byte_offset != b.byte_offset) return a.byte_offset < b.byte_offset;
    return a.signature_index < b.signature_index;
  });
  return out;
}

std::vector<detection> photonic_ids::scan_parallel(
    std::span<const std::uint8_t> payload) {
  std::vector<detection> out;
  const std::vector<std::uint8_t> payload_bits = phot::bytes_to_bits(payload);
  std::size_t max_sig_bytes = 0;
  for (const prepared& sig : signatures_) {
    max_sig_bytes = std::max(max_sig_bytes, sig.bytes.size());
  }
  for (std::size_t off = 0; off < payload.size(); ++off) {
    double slowest = 0.0;
    bool any = false;
    for (std::size_t si = 0; si < signatures_.size(); ++si) {
      const prepared& sig = signatures_[si];
      if (off + sig.bytes.size() > payload.size()) continue;
      const auto window = std::span<const std::uint8_t>(payload_bits)
                              .subspan(off * 8, sig.bytes.size() * 8);
      const phot::match_result m =
          matcher_.match_ternary(window, sig.pattern_bits);
      ++evaluations_;
      any = true;
      slowest = std::max(slowest, m.latency_s);
      if (m.matched) out.push_back(detection{si, off});
    }
    if (any) analog_time_s_ += slowest;  // bank fires concurrently
  }
  std::sort(out.begin(), out.end(), [](const detection& a, const detection& b) {
    if (a.byte_offset != b.byte_offset) return a.byte_offset < b.byte_offset;
    return a.signature_index < b.signature_index;
  });
  return out;
}

std::vector<detection> digital_ids_scan(
    const digital::aho_corasick& matcher,
    std::span<const std::uint8_t> payload,
    std::span<const std::vector<std::uint8_t>> signatures) {
  std::vector<detection> out;
  for (const auto& hit : matcher.find_all(payload)) {
    out.push_back(detection{
        hit.pattern_index,
        hit.end_offset - signatures[hit.pattern_index].size()});
  }
  std::sort(out.begin(), out.end(), [](const detection& a, const detection& b) {
    if (a.byte_offset != b.byte_offset) return a.byte_offset < b.byte_offset;
    return a.signature_index < b.signature_index;
  });
  return out;
}

ids_workload make_ids_workload(
    std::span<const std::vector<std::uint8_t>> signatures,
    std::size_t payload_count, std::size_t payload_bytes,
    double plant_fraction, std::uint64_t seed) {
  if (signatures.empty()) {
    throw std::invalid_argument("make_ids_workload: no signatures");
  }
  phot::rng gen(seed);
  ids_workload w;
  w.payloads.reserve(payload_count);
  w.truth.reserve(payload_count);

  // Ground truth computed with the exact reference matcher so accidental
  // occurrences in the random filler are also counted.
  const std::vector<std::vector<std::uint8_t>> sigs(signatures.begin(),
                                                    signatures.end());

  for (std::size_t i = 0; i < payload_count; ++i) {
    std::vector<std::uint8_t> payload(payload_bytes);
    net::fill_random_bytes(payload, gen());
    if (gen.uniform() < plant_fraction) {
      const std::size_t si = gen.below(sigs.size());
      if (sigs[si].size() <= payload.size()) {
        const std::size_t max_off = payload.size() - sigs[si].size();
        net::plant_signature(payload, sigs[si], gen.below(max_off + 1));
      }
    }
    std::vector<detection> truth;
    for (const auto& hit : digital::naive_scan(payload, sigs)) {
      truth.push_back(detection{hit.pattern_index,
                                hit.end_offset - sigs[hit.pattern_index].size()});
    }
    std::sort(truth.begin(), truth.end(),
              [](const detection& a, const detection& b) {
                if (a.byte_offset != b.byte_offset) {
                  return a.byte_offset < b.byte_offset;
                }
                return a.signature_index < b.signature_index;
              });
    w.payloads.push_back(std::move(payload));
    w.truth.push_back(std::move(truth));
  }
  return w;
}

detection_quality score_detections(
    const std::vector<std::vector<detection>>& truth,
    const std::vector<std::vector<detection>>& found) {
  if (truth.size() != found.size()) {
    throw std::invalid_argument("score_detections: size mismatch");
  }
  std::size_t truth_total = 0, found_total = 0, correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth_total += truth[i].size();
    found_total += found[i].size();
    std::set<std::pair<std::size_t, std::size_t>> t;
    for (const auto& d : truth[i]) t.insert({d.signature_index, d.byte_offset});
    for (const auto& d : found[i]) {
      if (t.count({d.signature_index, d.byte_offset}) != 0) ++correct;
    }
  }
  detection_quality q;
  q.recall = truth_total == 0
                 ? 1.0
                 : static_cast<double>(correct) /
                       static_cast<double>(truth_total);
  q.precision = found_total == 0
                    ? 1.0
                    : static_cast<double>(correct) /
                          static_cast<double>(found_total);
  return q;
}

}  // namespace onfiber::apps
