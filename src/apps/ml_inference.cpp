#include "apps/ml_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/compute_packets.hpp"
#include "digital/device_model.hpp"

namespace onfiber::apps {

core::dnn_task to_photonic_task(const digital::dnn_model& model) {
  if (model.layers.empty()) {
    throw std::invalid_argument("to_photonic_task: empty model");
  }
  core::dnn_task task;
  for (const auto& layer : model.layers) {
    core::photonic_layer pl;
    pl.weights = layer.weights;
    pl.bias = layer.bias;
    pl.activation = layer.relu;
    pl.activation_scale = model.activation_scale;
    task.layers.push_back(std::move(pl));
  }
  return task;
}

photonic_eval evaluate_photonic(core::photonic_engine& engine,
                                const digital::dnn_model& model,
                                const digital::dataset& data) {
  if (!engine.supports(proto::primitive_id::p1_p3_dnn)) {
    throw std::invalid_argument("evaluate_photonic: engine lacks DNN task");
  }
  photonic_eval eval;
  std::size_t correct = 0;
  double total_latency = 0.0;
  const net::ipv4 src(10, 0, 0, 2);
  const net::ipv4 dst(10, 0, 1, 2);
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    net::packet pkt = core::make_dnn_request(
        src, dst, data.samples[i], model.output_dim(),
        static_cast<std::uint32_t>(i));
    const core::engine_report report = engine.process(pkt);
    if (!report.computed) {
      throw std::runtime_error("evaluate_photonic: engine did not compute");
    }
    total_latency += report.compute_latency_s;
    eval.optical_symbols += report.optical_symbols;
    const auto result = core::read_dnn_result(pkt);
    if (result && result->predicted_class == data.labels[i]) ++correct;
  }
  const auto n = static_cast<double>(data.samples.size());
  eval.accuracy = n > 0 ? static_cast<double>(correct) / n : 0.0;
  eval.mean_compute_latency_s = n > 0 ? total_latency / n : 0.0;
  return eval;
}

photonic_eval evaluate_photonic_batched(core::photonic_engine& engine,
                                        const digital::dnn_model& model,
                                        const digital::dataset& data,
                                        std::size_t batch_size) {
  if (!engine.supports(proto::primitive_id::p1_p3_dnn)) {
    throw std::invalid_argument(
        "evaluate_photonic_batched: engine lacks DNN task");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("evaluate_photonic_batched: batch_size 0");
  }
  photonic_eval eval;
  std::size_t correct = 0;
  double total_latency = 0.0;
  const net::ipv4 src(10, 0, 0, 2);
  const net::ipv4 dst(10, 0, 1, 2);
  for (std::size_t begin = 0; begin < data.samples.size();
       begin += batch_size) {
    const std::size_t end =
        std::min(begin + batch_size, data.samples.size());
    std::vector<net::packet> packets;
    packets.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      packets.push_back(core::make_dnn_request(
          src, dst, data.samples[i], model.output_dim(),
          static_cast<std::uint32_t>(i)));
    }
    std::vector<net::packet*> ptrs;
    ptrs.reserve(packets.size());
    for (net::packet& p : packets) ptrs.push_back(&p);
    const core::batch_report report = engine.process_batch(ptrs);
    if (report.computed_packets != packets.size()) {
      throw std::runtime_error(
          "evaluate_photonic_batched: engine did not compute a packet");
    }
    total_latency += report.compute_latency_s;
    eval.optical_symbols += report.optical_symbols;
    for (std::size_t i = begin; i < end; ++i) {
      const auto result = core::read_dnn_result(packets[i - begin]);
      if (result && result->predicted_class == data.labels[i]) ++correct;
    }
  }
  const auto n = static_cast<double>(data.samples.size());
  eval.accuracy = n > 0 ? static_cast<double>(correct) / n : 0.0;
  eval.mean_compute_latency_s = n > 0 ? total_latency / n : 0.0;
  return eval;
}

deployment_latency compare_deployments(const net::topology& topo,
                                       net::node_id src, net::node_id dst,
                                       net::node_id cloud,
                                       net::node_id on_fiber_site,
                                       const digital::dnn_model& model,
                                       double photonic_compute_s) {
  deployment_latency out;
  const auto delay = [&](net::node_id a, net::node_id b) {
    if (a == b) return 0.0;
    const auto path = topo.shortest_path(a, b);
    if (path.empty()) {
      throw std::invalid_argument("compare_deployments: unreachable pair");
    }
    return topo.path_delay_s(path);
  };

  const std::uint64_t macs = model.mac_count();

  // Cloud: detour through the datacenter, TPU-class compute there.
  const digital::device_model tpu = digital::make_tpu_model();
  out.cloud_s = delay(src, cloud) + tpu.gemv_latency_s(macs) +
                delay(cloud, dst);

  // Edge: compute at the source on a weak CPU, then ship the result.
  const digital::device_model edge = digital::make_edge_cpu_model();
  out.edge_s = edge.gemv_latency_s(macs) + delay(src, dst);

  // On-fiber: the packet flows src -> site -> dst; the analog evaluation
  // happens at the site while the packet is in transit.
  out.on_fiber_s =
      delay(src, on_fiber_site) + photonic_compute_s + delay(on_fiber_site, dst);
  return out;
}

}  // namespace onfiber::apps
