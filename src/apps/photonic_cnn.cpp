#include "apps/photonic_cnn.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/compute_packets.hpp"
#include "apps/ml_inference.hpp"
#include "photonics/rng.hpp"

namespace onfiber::apps {

image_dataset make_image_dataset(std::size_t width, std::size_t height,
                                 std::size_t per_class, std::uint64_t seed) {
  if (width < 8 || height < 8 || per_class == 0) {
    throw std::invalid_argument("make_image_dataset: images >= 8x8");
  }
  phot::rng gen(seed);
  image_dataset d;
  d.width = width;
  d.height = height;
  for (std::size_t cls = 0; cls < image_dataset::classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      frame img(width, height);
      const double phase = gen.uniform(0.0, 2.0 * std::numbers::pi);
      const double freq = gen.uniform(1.5, 2.5);
      const double contrast = gen.uniform(0.3, 0.45);
      for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
          const double u =
              static_cast<double>(x) / static_cast<double>(width);
          const double v =
              static_cast<double>(y) / static_cast<double>(height);
          double value = 0.5;
          switch (cls) {
            case 0:  // vertical stripes
              value += contrast *
                       std::sin(2.0 * std::numbers::pi * freq * u + phase);
              break;
            case 1:  // horizontal stripes
              value += contrast *
                       std::sin(2.0 * std::numbers::pi * freq * v + phase);
              break;
            case 2:  // checkerboard
              value += contrast *
                       std::sin(2.0 * std::numbers::pi * freq * u + phase) *
                       std::sin(2.0 * std::numbers::pi * freq * v + phase);
              break;
            default: {  // radial blob
              const double dx = u - 0.5, dy = v - 0.5;
              value += contrast *
                       std::cos(2.0 * std::numbers::pi * freq *
                                    std::sqrt(dx * dx + dy * dy) +
                                phase);
              break;
            }
          }
          value += gen.normal(0.0, 0.02);
          img.at(x, y) = std::clamp(value, 0.0, 1.0);
        }
      }
      d.images.push_back(std::move(img));
      d.labels.push_back(cls);
    }
  }
  return d;
}

namespace {

/// 2x2 average pooling + affine normalization into [0, 1].
/// Conv outputs with unit-range kernels and centered pixels lie within
/// roughly [-s, s] with s = kernel taps * 0.5; we use a fixed scale so
/// the mapping is identical for the reference and photonic paths.
std::vector<double> pool_and_normalize(const feature_maps& maps,
                                       std::size_t pooled_w,
                                       std::size_t pooled_h,
                                       double feature_scale) {
  std::vector<double> out;
  out.reserve(maps.maps.size() * pooled_w * pooled_h);
  for (const auto& map : maps.maps) {
    for (std::size_t py = 0; py < pooled_h; ++py) {
      for (std::size_t px = 0; px < pooled_w; ++px) {
        double acc = 0.0;
        int count = 0;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t x = px * 2 + dx;
            const std::size_t y = py * 2 + dy;
            if (x < maps.width && y < maps.height) {
              acc += map[y * maps.width + x];
              ++count;
            }
          }
        }
        const double mean = count > 0 ? acc / count : 0.0;
        // Magnitude features: edge kernels are signed, texture energy is
        // what separates the classes.
        out.push_back(std::clamp(std::abs(mean) / feature_scale, 0.0, 1.0));
      }
    }
  }
  return out;
}

constexpr double feature_scale = 0.6;

}  // namespace

std::vector<double> cnn_features_reference(const photonic_cnn& cnn,
                                           const frame& image) {
  const feature_maps maps = conv2d_reference(image, cnn.bank);
  return pool_and_normalize(maps, cnn.pooled_w, cnn.pooled_h, feature_scale);
}

std::vector<double> cnn_features_photonic(const photonic_cnn& cnn,
                                          const frame& image,
                                          phot::wdm_gemv_engine& conv_engine) {
  const feature_maps maps = conv2d_photonic(image, cnn.bank, conv_engine);
  return pool_and_normalize(maps, cnn.pooled_w, cnn.pooled_h, feature_scale);
}

photonic_cnn train_photonic_cnn(const image_dataset& data, std::size_t hidden,
                                std::size_t epochs, std::uint64_t seed) {
  if (data.images.empty()) {
    throw std::invalid_argument("train_photonic_cnn: empty dataset");
  }
  photonic_cnn cnn;
  cnn.bank = make_edge_kernel_bank();
  const std::size_t conv_w = data.width - cnn.bank.size + 1;
  const std::size_t conv_h = data.height - cnn.bank.size + 1;
  cnn.pooled_w = (conv_w + 1) / 2;
  cnn.pooled_h = (conv_h + 1) / 2;

  // Train the head on float features (photonic-aware activation so the
  // analog engine reproduces it).
  digital::dataset features;
  features.dim = cnn.feature_dim();
  features.classes = image_dataset::classes;
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    features.samples.push_back(cnn_features_reference(cnn, data.images[i]));
    features.labels.push_back(data.labels[i]);
  }
  cnn.head = digital::train_mlp(features, {hidden}, epochs, 0.08, seed,
                                digital::activation_kind::photonic_sin2, 2.0);
  return cnn;
}

cnn_eval evaluate_cnn_reference(const photonic_cnn& cnn,
                                const image_dataset& data) {
  cnn_eval eval;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    const auto features = cnn_features_reference(cnn, data.images[i]);
    const auto logits = digital::infer_reference(cnn.head, features);
    if (digital::argmax(logits) == data.labels[i]) ++correct;
  }
  eval.accuracy = data.images.empty()
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(data.images.size());
  return eval;
}

cnn_eval evaluate_cnn_photonic(const photonic_cnn& cnn,
                               const image_dataset& data,
                               phot::wdm_gemv_engine& conv_engine,
                               core::photonic_engine& head_engine) {
  if (!head_engine.supports(proto::primitive_id::p1_p3_dnn)) {
    throw std::invalid_argument(
        "evaluate_cnn_photonic: head engine lacks the DNN task");
  }
  cnn_eval eval;
  std::size_t correct = 0;
  double latency = 0.0;
  const net::ipv4 src(10, 0, 0, 2), dst(10, 3, 0, 2);
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    const feature_maps maps =
        conv2d_photonic(data.images[i], cnn.bank, conv_engine);
    latency += maps.latency_s;
    const auto features =
        pool_and_normalize(maps, cnn.pooled_w, cnn.pooled_h, feature_scale);
    net::packet pkt = core::make_dnn_request(
        src, dst, features, cnn.head.output_dim(),
        static_cast<std::uint32_t>(i));
    const auto rep = head_engine.process(pkt);
    if (!rep.computed) {
      throw std::runtime_error("evaluate_cnn_photonic: head did not compute");
    }
    latency += rep.compute_latency_s;
    const auto result = core::read_dnn_result(pkt);
    if (result && result->predicted_class == data.labels[i]) ++correct;
  }
  const auto n = static_cast<double>(data.images.size());
  eval.accuracy = n > 0 ? static_cast<double>(correct) / n : 0.0;
  eval.mean_latency_s = n > 0 ? latency / n : 0.0;
  return eval;
}

}  // namespace onfiber::apps
