#include "apps/mimo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace onfiber::apps {

namespace {

using cplx = std::complex<double>;

/// Hermitian transpose.
cmatrix hermitian(const cmatrix& a) {
  const std::size_t rows = a.size();
  const std::size_t cols = a.empty() ? 0 : a[0].size();
  cmatrix out(cols, cvector(rows));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out[c][r] = std::conj(a[r][c]);
  }
  return out;
}

cmatrix multiply(const cmatrix& a, const cmatrix& b) {
  const std::size_t n = a.size();
  const std::size_t k = b.size();
  const std::size_t m = b.empty() ? 0 : b[0].size();
  cmatrix out(n, cvector(m, cplx{0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const cplx aip = a[i][p];
      for (std::size_t j = 0; j < m; ++j) out[i][j] += aip * b[p][j];
    }
  }
  return out;
}

/// Gauss-Jordan inverse of a square complex matrix.
cmatrix invert(cmatrix a) {
  const std::size_t n = a.size();
  cmatrix inv(n, cvector(n, cplx{0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot by magnitude.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("mimo: singular matrix in ZF inverse");
    }
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    const cplx d = a[col][col];
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] /= d;
      inv[col][j] /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const cplx f = a[r][col];
      if (f == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a[r][j] -= f * a[col][j];
        inv[r][j] -= f * inv[col][j];
      }
    }
  }
  return inv;
}

cvector matvec(const cmatrix& a, const cvector& x) {
  cvector y(a.size(), cplx{0.0, 0.0});
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < x.size(); ++c) y[r] += a[r][c] * x[c];
  }
  return y;
}

}  // namespace

cmatrix make_rayleigh_channel(std::size_t antennas, std::size_t users,
                              std::uint64_t seed) {
  if (antennas == 0 || users == 0 || antennas < users) {
    throw std::invalid_argument("make_rayleigh_channel: need M >= K >= 1");
  }
  phot::rng gen(seed);
  cmatrix h(antennas, cvector(users));
  const double sigma = std::sqrt(0.5);
  for (auto& row : h) {
    for (auto& v : row) {
      v = cplx{gen.normal(0.0, sigma), gen.normal(0.0, sigma)};
    }
  }
  return h;
}

cmatrix zero_forcing_matrix(const cmatrix& h) {
  const cmatrix hh = hermitian(h);
  return multiply(invert(multiply(hh, h)), hh);
}

cmatrix mmse_matrix(const cmatrix& h, double noise_var) {
  if (noise_var < 0.0) {
    throw std::invalid_argument("mmse_matrix: negative noise variance");
  }
  const cmatrix hh = hermitian(h);
  cmatrix gram = multiply(hh, h);
  for (std::size_t i = 0; i < gram.size(); ++i) gram[i][i] += noise_var;
  return multiply(invert(std::move(gram)), hh);
}

stacked_real stack_real(const cmatrix& w) {
  const std::size_t k = w.size();
  const std::size_t m = w.empty() ? 0 : w[0].size();
  double max_abs = 1e-12;
  for (const auto& row : w) {
    for (const cplx v : row) {
      max_abs = std::max({max_abs, std::abs(v.real()), std::abs(v.imag())});
    }
  }
  stacked_real out;
  out.scale = max_abs;
  out.w = phot::matrix(2 * k, 2 * m);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const double re = w[r][c].real() / max_abs;
      const double im = w[r][c].imag() / max_abs;
      out.w.at(r, c) = re;
      out.w.at(r, m + c) = -im;
      out.w.at(k + r, c) = im;
      out.w.at(k + r, m + c) = re;
    }
  }
  return out;
}

std::complex<double> qpsk_modulate(std::uint8_t two_bits) {
  constexpr double a = 0.70710678118654752440;
  switch (two_bits & 0x3) {
    case 0b00: return {+a, +a};
    case 0b01: return {+a, -a};
    case 0b11: return {-a, -a};
    default:   return {-a, +a};  // 0b10
  }
}

std::uint8_t qpsk_slice(std::complex<double> y) {
  const bool re_neg = y.real() < 0.0;
  const bool im_neg = y.imag() < 0.0;
  if (!re_neg && !im_neg) return 0b00;
  if (!re_neg && im_neg) return 0b01;
  if (re_neg && im_neg) return 0b11;
  return 0b10;
}

mimo_trial_result run_mimo_trial(const cmatrix& h, double snr_db,
                                 std::size_t vectors,
                                 phot::vector_matrix_engine& engine,
                                 std::uint64_t seed) {
  return run_mimo_trial_with(h, zero_forcing_matrix(h), snr_db, vectors,
                             engine, seed);
}

mimo_trial_result run_mimo_trial_with(const cmatrix& h, const cmatrix& w,
                                      double snr_db, std::size_t vectors,
                                      phot::vector_matrix_engine& engine,
                                      std::uint64_t seed) {
  const std::size_t m = h.size();
  const std::size_t k = h.empty() ? 0 : h[0].size();
  if (m == 0 || k == 0 || vectors == 0) {
    throw std::invalid_argument("run_mimo_trial: empty problem");
  }
  if (w.size() != k || w[0].size() != m) {
    throw std::invalid_argument("run_mimo_trial: detector shape mismatch");
  }
  phot::rng gen(seed);
  const stacked_real sw = stack_real(w);

  // Receive-side normalization: y entries can exceed 1; scale into the
  // photonic input range by the largest |y| component seen per vector.
  const double noise_var = std::pow(10.0, -snr_db / 10.0);
  const double noise_sigma = std::sqrt(noise_var / 2.0);

  std::size_t bit_errors_dig = 0, bit_errors_phot = 0;
  double evm_dig = 0.0, evm_phot = 0.0;
  double analog_latency = 0.0;
  const std::size_t total_bits = vectors * k * 2;

  for (std::size_t t = 0; t < vectors; ++t) {
    // Transmit QPSK for each user.
    std::vector<std::uint8_t> tx_bits(k);
    cvector x(k);
    for (std::size_t u = 0; u < k; ++u) {
      tx_bits[u] = static_cast<std::uint8_t>(gen.below(4));
      x[u] = qpsk_modulate(tx_bits[u]);
    }
    // y = H x + n
    cvector y = matvec(h, x);
    for (auto& v : y) {
      v += cplx{gen.normal(0.0, noise_sigma), gen.normal(0.0, noise_sigma)};
    }

    // Exact digital ZF.
    const cvector xd = matvec(w, y);

    // Photonic ZF: stacked-real GEMV, inputs normalized to [-1, 1].
    std::vector<double> yr(2 * m);
    double ymax = 1e-12;
    for (std::size_t i = 0; i < m; ++i) {
      ymax = std::max({ymax, std::abs(y[i].real()), std::abs(y[i].imag())});
    }
    for (std::size_t i = 0; i < m; ++i) {
      yr[i] = y[i].real() / ymax;
      yr[m + i] = y[i].imag() / ymax;
    }
    const auto res = engine.gemv_signed(sw.w, yr);
    analog_latency += res.latency_s;

    for (std::size_t u = 0; u < k; ++u) {
      const cplx xp{res.values[u] * sw.scale * ymax,
                    res.values[k + u] * sw.scale * ymax};
      const cplx ideal = qpsk_modulate(tx_bits[u]);
      evm_dig += std::norm(xd[u] - ideal);
      evm_phot += std::norm(xp - ideal);

      const std::uint8_t bd = qpsk_slice(xd[u]);
      const std::uint8_t bp = qpsk_slice(xp);
      bit_errors_dig += static_cast<std::size_t>((bd ^ tx_bits[u]) & 1) +
                        static_cast<std::size_t>(((bd ^ tx_bits[u]) >> 1) & 1);
      bit_errors_phot += static_cast<std::size_t>((bp ^ tx_bits[u]) & 1) +
                         static_cast<std::size_t>(((bp ^ tx_bits[u]) >> 1) & 1);
    }
  }

  mimo_trial_result out;
  out.ber_digital =
      static_cast<double>(bit_errors_dig) / static_cast<double>(total_bits);
  out.ber_photonic =
      static_cast<double>(bit_errors_phot) / static_cast<double>(total_bits);
  out.evm_digital = std::sqrt(evm_dig / static_cast<double>(vectors * k));
  out.evm_photonic = std::sqrt(evm_phot / static_cast<double>(vectors * k));
  out.photonic_latency_s = analog_latency;
  return out;
}

}  // namespace onfiber::apps
