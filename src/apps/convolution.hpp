// convolution.hpp — convolutional processing on the photonic tensor core.
//
// The paper's P1 citation chain runs through Feldmann et al. [19]
// ("Parallel convolutional processing using an integrated photonic tensor
// core"): convolution is the marquee photonic workload. This module maps
// 2-D convolution onto the P1 GEMV engine via im2col — each output pixel
// is a dot product between a flattened image patch and a flattened
// kernel, i.e. exactly what the analog unit computes — with a digital
// reference for accuracy comparison.
//
// Used by the ML-inference use case as a feature extractor (conv bank +
// trained MLP head) and by bench E22.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/video_encoding.hpp"  // frame
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/engine/wdm_engine.hpp"

namespace onfiber::apps {

/// A bank of square convolution kernels (all k x k, values in [-1, 1]).
struct kernel_bank {
  std::size_t size = 3;  ///< k
  std::vector<std::vector<double>> kernels;  ///< each k*k, row-major
};

/// Classic 3x3 edge/texture kernel bank (Sobel x/y, Laplacian, blur,
/// diagonal edges) — a deterministic feature extractor.
[[nodiscard]] kernel_bank make_edge_kernel_bank();

/// Gabor-like oriented kernels of the given size (deterministic).
[[nodiscard]] kernel_bank make_gabor_kernel_bank(std::size_t size,
                                                 std::size_t orientations,
                                                 std::uint64_t seed);

/// One output feature map per kernel, valid-convolution (no padding):
/// output dims (w-k+1) x (h-k+1).
struct feature_maps {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::vector<double>> maps;  ///< per kernel, row-major
  double latency_s = 0.0;                 ///< analog time (photonic path)
  std::uint64_t optical_symbols = 0;
};

/// Exact float convolution (reference).
[[nodiscard]] feature_maps conv2d_reference(const frame& image,
                                            const kernel_bank& bank);

/// Photonic convolution: im2col patches through the signed GEMV engine.
/// The weight matrix has one row per kernel, so all kernels of the bank
/// evaluate per patch in one GEMV — the "parallel convolutional
/// processing" of [19] (with a WDM engine, rows map to wavelengths).
[[nodiscard]] feature_maps conv2d_photonic(const frame& image,
                                           const kernel_bank& bank,
                                           phot::wdm_gemv_engine& engine);

/// Mean absolute error between two same-shape feature map sets.
[[nodiscard]] double feature_error(const feature_maps& a,
                                   const feature_maps& b);

}  // namespace onfiber::apps
