#include "apps/load_balancing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "network/stats.hpp"
#include "photonics/passives.hpp"

namespace onfiber::apps {

photonic_comparator::photonic_comparator(config cfg, std::uint64_t seed,
                                         phot::energy_ledger* ledger,
                                         phot::energy_costs costs)
    : config_(cfg),
      laser_(cfg.laser, phot::rng{seed}, ledger, costs),
      mod_a_(cfg.modulator, 0.0, phot::rng{seed ^ 0x61}, ledger, costs),
      mod_b_(cfg.modulator, 0.0, phot::rng{seed ^ 0x62}, ledger, costs),
      det_a_(cfg.detector, phot::rng{seed ^ 0x63}, ledger, costs),
      det_b_(cfg.detector, phot::rng{seed ^ 0x64}, ledger, costs) {
  if (cfg.full_scale_load <= 0.0) {
    throw std::invalid_argument("photonic_comparator: bad full scale");
  }
}

bool photonic_comparator::less(double load_a, double load_b) {
  ++comparisons_;
  const double xa =
      std::clamp(load_a / config_.full_scale_load, 0.0, 1.0);
  const double xb =
      std::clamp(load_b / config_.full_scale_load, 0.0, 1.0);
  // Encode both loads as intensities off a shared carrier; balanced
  // detection decides which photocurrent is larger.
  const phot::field carrier = laser_.emit_one();
  const auto [arm_a, arm_b] = phot::split_50_50(carrier);
  const double ia = det_a_.detect(mod_a_.encode_unit(arm_a, xa));
  const double ib = det_b_.detect(mod_b_.encode_unit(arm_b, xb));
  return ia < ib;
}

std::size_t photonic_comparator::argmin(std::span<const double> loads) {
  if (loads.empty()) {
    throw std::invalid_argument("photonic_comparator: empty candidates");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (!less(loads[best], loads[i])) best = i;
  }
  return best;
}

std::vector<lb_flow> make_lb_flows(std::size_t count,
                                   double arrival_rate_fps,
                                   std::uint64_t seed) {
  phot::rng gen(seed);
  std::vector<lb_flow> flows;
  flows.reserve(count);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    lb_flow f;
    t += gen.exponential(arrival_rate_fps);
    f.start_s = t;
    // Heavy-tailed mix: 80% mice (~10 kB), 20% elephants (0.5-8 MB).
    if (gen.uniform() < 0.8) {
      f.size_bytes = gen.uniform(2e3, 30e3);
    } else {
      f.size_bytes = gen.uniform(0.5e6, 8e6);
    }
    f.packets = std::max<std::size_t>(
        1, static_cast<std::size_t>(f.size_bytes / 1500.0));
    f.inter_packet_gap_s = gen.uniform(50e-6, 2e-3);
    f.flow_hash = static_cast<std::uint32_t>(gen());
    flows.push_back(f);
  }
  return flows;
}

lb_result run_load_balancer(const std::vector<lb_flow>& flows,
                            std::size_t path_count, lb_policy policy,
                            double flowlet_gap_s,
                            photonic_comparator* comparator,
                            std::uint64_t seed) {
  if (path_count == 0) {
    throw std::invalid_argument("run_load_balancer: need >= 1 path");
  }
  if (policy == lb_policy::flowlet_photonic && comparator == nullptr) {
    throw std::invalid_argument(
        "run_load_balancer: photonic policy needs a comparator");
  }
  (void)seed;

  // Flatten flows into a time-ordered packet schedule.
  struct scheduled_packet {
    double time_s;
    std::size_t flow;
    double bytes;
    bool new_flowlet;  ///< first packet, or preceded by a long idle gap
  };
  std::vector<scheduled_packet> packets;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const lb_flow& f = flows[fi];
    const double per_packet =
        f.size_bytes / static_cast<double>(f.packets);
    const bool gap_opens_flowlet = f.inter_packet_gap_s >= flowlet_gap_s;
    for (std::size_t p = 0; p < f.packets; ++p) {
      packets.push_back(scheduled_packet{
          f.start_s + static_cast<double>(p) * f.inter_packet_gap_s, fi,
          per_packet, p == 0 || gap_opens_flowlet});
    }
  }
  std::sort(packets.begin(), packets.end(),
            [](const scheduled_packet& a, const scheduled_packet& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.flow < b.flow;
            });

  // Per-path load tracked with a decaying rate estimator (DRE), the
  // congestion signal CONGA-style load balancers maintain per uplink.
  constexpr double dre_tau_s = 2e-3;
  std::vector<double> dre_load(path_count, 0.0);
  std::vector<double> total_bytes(path_count, 0.0);
  std::vector<std::ptrdiff_t> flow_path(flows.size(), -1);
  double last_t = 0.0;

  lb_result result;
  std::vector<double> normalized(path_count, 0.0);
  for (const auto& pkt : packets) {
    // Decay the rate estimators.
    const double dt = pkt.time_s - last_t;
    if (dt > 0.0) {
      const double decay = std::exp(-dt / dre_tau_s);
      for (double& l : dre_load) l *= decay;
      last_t = pkt.time_s;
    }

    std::size_t path = 0;
    const std::ptrdiff_t sticky = flow_path[pkt.flow];
    switch (policy) {
      case lb_policy::ecmp_hash:
        path = flows[pkt.flow].flow_hash % path_count;
        break;
      case lb_policy::flowlet_digital:
      case lb_policy::flowlet_photonic: {
        if (!pkt.new_flowlet && sticky >= 0) {
          path = static_cast<std::size_t>(sticky);
        } else {
          if (policy == lb_policy::flowlet_digital) {
            path = static_cast<std::size_t>(
                std::min_element(dre_load.begin(), dre_load.end()) -
                dre_load.begin());
          } else {
            // The analog comparator sees the DRE counters normalized to
            // its full-scale input (automatic gain control).
            double peak = 1e-9;
            for (const double l : dre_load) peak = std::max(peak, l);
            for (std::size_t i = 0; i < path_count; ++i) {
              normalized[i] = dre_load[i] / peak;
            }
            path = comparator->argmin(normalized);
          }
          if (sticky >= 0 && static_cast<std::size_t>(sticky) != path) {
            ++result.flowlet_switches;
          }
        }
        break;
      }
    }
    flow_path[pkt.flow] = static_cast<std::ptrdiff_t>(path);
    dre_load[path] += pkt.bytes;
    total_bytes[path] += pkt.bytes;
  }

  result.path_bytes = total_bytes;
  result.jain_fairness = net::jain_fairness(total_bytes);
  double mean = 0.0, peak = 0.0;
  for (double b : total_bytes) {
    mean += b;
    peak = std::max(peak, b);
  }
  mean /= static_cast<double>(path_count);
  result.max_over_mean = mean > 0.0 ? peak / mean : 1.0;
  return result;
}

}  // namespace onfiber::apps
