// intrusion_detection.hpp — Table 1, C2: intrusion detection on fiber.
//
// Signature scanning of packet payloads. The photonic path slides each
// byte-aligned window of the payload through the P2 correlator (the
// "photonic regular expression matching hardware" the paper calls for,
// restricted here to exact byte signatures — the same restriction early
// TCAM-based IDS hardware had). The digital baseline is Aho-Corasick,
// which is what software IDS like Pigasus [69] builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "digital/pattern.hpp"
#include "photonics/engine/pattern_matcher.hpp"

namespace onfiber::apps {

/// A detection event.
struct detection {
  std::size_t signature_index = 0;
  std::size_t byte_offset = 0;  ///< offset of the signature's first byte

  friend bool operator==(const detection&, const detection&) = default;
};

/// Photonic signature scanner.
class photonic_ids {
 public:
  photonic_ids(std::vector<std::vector<std::uint8_t>> signatures,
               phot::pattern_match_config config, std::uint64_t seed,
               phot::energy_ledger* ledger = nullptr,
               phot::energy_costs costs = {});

  /// Scan a payload; byte-aligned windows, all signatures per window.
  /// Serial: one analog evaluation per (window, signature).
  [[nodiscard]] std::vector<detection> scan(
      std::span<const std::uint8_t> payload);

  /// Same detections with a parallel correlator bank: all signatures of
  /// one window evaluate concurrently, so analog time per payload is one
  /// evaluation per window (signature count buys area, not time).
  [[nodiscard]] std::vector<detection> scan_parallel(
      std::span<const std::uint8_t> payload);

  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] double analog_time_s() const { return analog_time_s_; }

 private:
  struct prepared {
    std::vector<std::uint8_t> bytes;
    std::vector<phot::tbit> pattern_bits;
  };
  std::vector<prepared> signatures_;
  phot::pattern_matcher matcher_;
  std::uint64_t evaluations_ = 0;
  double analog_time_s_ = 0.0;
};

/// Digital baseline wrapper producing the same `detection` records.
[[nodiscard]] std::vector<detection> digital_ids_scan(
    const digital::aho_corasick& matcher,
    std::span<const std::uint8_t> payload,
    std::span<const std::vector<std::uint8_t>> signatures);

/// Deterministic workload: payloads of `payload_bytes` random bytes, with
/// a known signature planted in a `plant_fraction` of them. Returns the
/// payloads and the ground-truth detections per payload.
struct ids_workload {
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<detection>> truth;
};
[[nodiscard]] ids_workload make_ids_workload(
    std::span<const std::vector<std::uint8_t>> signatures,
    std::size_t payload_count, std::size_t payload_bytes,
    double plant_fraction, std::uint64_t seed);

/// Recall / precision of `found` against `truth` (exact offset+index).
struct detection_quality {
  double recall = 1.0;
  double precision = 1.0;
};
[[nodiscard]] detection_quality score_detections(
    const std::vector<std::vector<detection>>& truth,
    const std::vector<std::vector<detection>>& found);

}  // namespace onfiber::apps
