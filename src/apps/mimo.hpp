// mimo.hpp — Table 1, C2: massive MIMO baseband processing on fiber.
//
// Uplink detection for an M-antenna base station serving K single-antenna
// users: given the channel H (M x K, complex) the zero-forcing detector
// x̂ = W y with W = (Hᴴ H)⁻¹ Hᴴ is a complex matrix-vector product per
// received symbol vector — the workload the paper cites [24, 29] as
// "computing resource hungry" on datacenter servers.
//
// The pseudo-inverse W is computed once, digitally, by the controller
// (channel estimation cadence). The per-symbol GEMV — the high-rate part —
// runs on P1: a complex matrix product expands into real arithmetic as
//   [Re x̂; Im x̂] = [Re W, -Im W; Im W, Re W] [Re y; Im y].
// QPSK slicing then recovers the transmitted bits; BER/EVM vs SNR is the
// quality metric, photonic vs exact digital detection.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/rng.hpp"

namespace onfiber::apps {

using cmatrix = std::vector<std::vector<std::complex<double>>>;
using cvector = std::vector<std::complex<double>>;

/// Draw an i.i.d. Rayleigh channel H (M x K), unit average gain.
[[nodiscard]] cmatrix make_rayleigh_channel(std::size_t antennas,
                                            std::size_t users,
                                            std::uint64_t seed);

/// Zero-forcing detector W = (Hᴴ H)⁻¹ Hᴴ (K x M). Throws if Hᴴ H is
/// singular (never for i.i.d. Rayleigh with M >= K in practice).
[[nodiscard]] cmatrix zero_forcing_matrix(const cmatrix& h);

/// MMSE detector W = (Hᴴ H + noise_var I)⁻¹ Hᴴ — regularized against the
/// noise enhancement that hurts ZF at low SNR. `noise_var` is the
/// per-component complex noise variance (10^(-SNR/10) for unit-power
/// QPSK).
[[nodiscard]] cmatrix mmse_matrix(const cmatrix& h, double noise_var);

/// Map a K x M complex detector onto the stacked-real form used by the
/// photonic GEMV: a 2K x 2M real matrix, entries scaled into [-1,1] by
/// `scale` (returned), so results must be multiplied back by scale.
struct stacked_real {
  phot::matrix w;
  double scale = 1.0;
};
[[nodiscard]] stacked_real stack_real(const cmatrix& w);

/// QPSK symbols for a bit pair (Gray): 00 -> (+1+i)/√2, etc.
[[nodiscard]] std::complex<double> qpsk_modulate(std::uint8_t two_bits);
[[nodiscard]] std::uint8_t qpsk_slice(std::complex<double> y);

/// One Monte-Carlo uplink experiment.
struct mimo_trial_result {
  double ber_digital = 0.0;
  double ber_photonic = 0.0;
  double evm_digital = 0.0;   ///< RMS error vector magnitude
  double evm_photonic = 0.0;
  double photonic_latency_s = 0.0;  ///< analog time across all vectors
};

/// Simulate `vectors` uplink symbol vectors through H at the given SNR,
/// detect with exact digital ZF and with the photonic GEMV, and compare.
[[nodiscard]] mimo_trial_result run_mimo_trial(
    const cmatrix& h, double snr_db, std::size_t vectors,
    phot::vector_matrix_engine& engine, std::uint64_t seed);

/// Same experiment with a caller-supplied detector matrix W (K x M) —
/// lets benches compare ZF against MMSE on identical channel draws.
[[nodiscard]] mimo_trial_result run_mimo_trial_with(
    const cmatrix& h, const cmatrix& w, double snr_db, std::size_t vectors,
    phot::vector_matrix_engine& engine, std::uint64_t seed);

}  // namespace onfiber::apps
