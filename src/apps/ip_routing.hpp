// ip_routing.hpp — Table 1, C2: IP routing via photonic ternary matching.
//
// A router's longest-prefix match is a ternary (TCAM) lookup: prefix bits
// care, suffix bits are wildcards. TCAMs are the power-hungry part of a
// line card (§4: "Current Bottleneck(s): Power hungry"). This app builds
// the photonic equivalent on P2: one ternary pattern per prefix, searched
// in decreasing prefix-length order so the first hit IS the longest
// match. The digital baseline is the binary trie from src/network.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "network/address.hpp"
#include "network/routing.hpp"
#include "photonics/engine/pattern_matcher.hpp"

namespace onfiber::apps {

/// One forwarding entry.
struct fib_entry {
  net::prefix dst{};
  std::uint32_t next_hop = 0;  ///< opaque next-hop identifier
};

/// Photonic LPM engine: P2 ternary patterns in longest-first priority.
class photonic_fib {
 public:
  photonic_fib(std::vector<fib_entry> entries,
               phot::pattern_match_config config, std::uint64_t seed,
               phot::energy_ledger* ledger = nullptr,
               phot::energy_costs costs = {});

  /// Longest-prefix match; nullopt if no entry covers the address.
  /// Serial priority search: one analog evaluation per pattern until the
  /// first (longest) hit.
  [[nodiscard]] std::optional<std::uint32_t> lookup(net::ipv4 addr);

  /// Same semantics with a parallel correlator bank (one correlator per
  /// entry, TCAM-style): every pattern is evaluated concurrently, so the
  /// analog time per lookup is a single evaluation regardless of FIB
  /// size — at `entry_count()` times the chip area (see photonics/area).
  [[nodiscard]] std::optional<std::uint32_t> lookup_parallel(net::ipv4 addr);

  /// Analog evaluations performed so far (one per pattern tried).
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }

  /// Total analog time spent matching [s].
  [[nodiscard]] double analog_time_s() const { return analog_time_s_; }

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

 private:
  struct prepared {
    fib_entry entry;
    std::vector<phot::tbit> pattern;  ///< 32 ternary bits
  };

  std::vector<prepared> entries_;  ///< sorted longest prefix first
  phot::pattern_matcher matcher_;
  std::uint64_t evaluations_ = 0;
  double analog_time_s_ = 0.0;
};

/// Expand an address into 32 bits (MSB first).
[[nodiscard]] std::vector<std::uint8_t> address_bits(net::ipv4 addr);

/// Expand a prefix into a 32-slot ternary pattern.
[[nodiscard]] std::vector<phot::tbit> prefix_pattern(net::prefix p);

/// Deterministic synthetic FIB: `n` prefixes of assorted lengths with
/// distinct next hops, plus a default route if `with_default`.
[[nodiscard]] std::vector<fib_entry> make_synthetic_fib(std::size_t n,
                                                        std::uint64_t seed,
                                                        bool with_default = true);

/// Build the trie baseline from the same entries.
[[nodiscard]] net::routing_table<std::uint32_t> make_trie_fib(
    const std::vector<fib_entry>& entries);

}  // namespace onfiber::apps
