#include "apps/encryption.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace onfiber::apps {

namespace {

constexpr double pi = std::numbers::pi;

/// Expand bytes to MSB-first bits, truncated/padded to `nbits`.
std::vector<std::uint8_t> to_bits(std::span<const std::uint8_t> bytes,
                                  std::size_t nbits) {
  std::vector<std::uint8_t> bits;
  bits.reserve(nbits);
  for (std::uint8_t byte : bytes) {
    for (int k = 7; k >= 0 && bits.size() < nbits; --k) {
      bits.push_back(static_cast<std::uint8_t>((byte >> k) & 1U));
    }
    if (bits.size() >= nbits) break;
  }
  bits.resize(nbits, 0);
  return bits;
}

/// Pack MSB-first bits into bytes.
std::vector<std::uint8_t> to_bytes(const std::vector<std::uint8_t>& bits,
                                   std::size_t nbytes) {
  std::vector<std::uint8_t> bytes(nbytes, 0);
  for (std::size_t i = 0; i < bits.size() && i / 8 < nbytes; ++i) {
    if (bits[i]) {
      bytes[i / 8] |= static_cast<std::uint8_t>(1U << (7 - i % 8));
    }
  }
  return bytes;
}

}  // namespace

photonic_crypto::photonic_crypto(photonic_crypto_config config,
                                 std::uint64_t seed,
                                 phot::energy_ledger* ledger,
                                 phot::energy_costs costs)
    : config_([&] {
        config.laser.symbol_rate_hz = config.symbol_rate_hz;
        config.detector.noise.bandwidth_hz = config.symbol_rate_hz;
        return config;
      }()),
      laser_(config_.laser, phot::rng{seed}, ledger, costs),
      data_mod_(config_.modulator, phot::rng{seed ^ 0x51}, ledger, costs),
      mask_mod_(config_.modulator, phot::rng{seed ^ 0x52}, ledger, costs),
      detector_(config_.detector, phot::rng{seed ^ 0x53}, ledger, costs) {}

phot::waveform photonic_crypto::encrypt(std::span<const std::uint8_t> plain,
                                        digital::stream_cipher& key) {
  const std::size_t nbits = plain.size() * 8;
  const std::vector<std::uint8_t> data_bits = to_bits(plain, nbits);
  const std::vector<std::uint8_t> key_bytes = key.keystream(plain.size());
  const std::vector<std::uint8_t> key_bits = to_bits(key_bytes, nbits);

  phot::waveform wave;
  wave.reserve(nbits + 1);
  // Pilot symbol: phase reference, NOT masked (carries no data).
  wave.push_back(data_mod_.encode_phase(laser_.emit_one(), 0.0));
  for (std::size_t i = 0; i < nbits; ++i) {
    phot::field s =
        data_mod_.encode_phase(laser_.emit_one(), data_bits[i] ? pi : 0.0);
    // The optical XOR: the mask modulator adds 0 or pi.
    s = mask_mod_.encode_phase(s, key_bits[i] ? pi : 0.0);
    wave.push_back(s);
  }
  return wave;
}

std::vector<std::uint8_t> photonic_crypto::detect_bits(
    std::span<const phot::field> wave, std::size_t plain_bytes,
    std::span<const std::uint8_t> mask_bits) {
  const std::size_t nbits = plain_bytes * 8;
  if (wave.size() != nbits + 1) {
    throw std::invalid_argument("photonic_crypto: waveform length mismatch");
  }
  const phot::field pilot = wave[0];
  const double ref_power = phot::power_mw(pilot);
  if (ref_power <= 0.0) {
    throw std::invalid_argument("photonic_crypto: dead pilot");
  }
  const phot::field derot = std::polar(1.0, -std::arg(pilot));
  const phot::field reference = phot::make_field(ref_power);

  std::vector<std::uint8_t> bits(nbits, 0);
  constexpr double inv_sqrt2 = 0.70710678118654752440;
  for (std::size_t i = 0; i < nbits; ++i) {
    phot::field s = wave[i + 1] * derot;
    if (!mask_bits.empty() && mask_bits[i]) {
      // Remove the mask: add pi again (XOR with the same key bit).
      s = mask_mod_.encode_phase(s, pi);
    }
    // Balanced coherent detection against the pilot-power reference.
    const phot::field plus = (s + reference) * inv_sqrt2;
    const phot::field minus = (s - reference) * inv_sqrt2;
    const double i_plus = detector_.detect(plus);
    const double i_minus = detector_.detect(minus);
    bits[i] = i_minus > i_plus ? 1 : 0;
  }
  return to_bytes(bits, plain_bytes);
}

std::vector<std::uint8_t> photonic_crypto::decrypt(
    std::span<const phot::field> wave, std::size_t plain_bytes,
    digital::stream_cipher& key) {
  const std::size_t nbits = plain_bytes * 8;
  const std::vector<std::uint8_t> key_bytes = key.keystream(plain_bytes);
  const std::vector<std::uint8_t> key_bits = to_bits(key_bytes, nbits);
  return detect_bits(wave, plain_bytes, key_bits);
}

std::vector<std::uint8_t> photonic_crypto::eavesdrop(
    std::span<const phot::field> wave, std::size_t plain_bytes) {
  return detect_bits(wave, plain_bytes, {});
}

double bit_error_fraction(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("bit_error_fraction: size mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint8_t diff = a[i] ^ b[i];
    while (diff != 0) {
      errors += diff & 1U;
      diff >>= 1;
    }
  }
  return static_cast<double>(errors) / (static_cast<double>(a.size()) * 8.0);
}

}  // namespace onfiber::apps
