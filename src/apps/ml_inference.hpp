// ml_inference.hpp — Table 1, C1: machine learning inference on fiber.
//
// Maps a trained digital::dnn_model onto the photonic engine's fused
// P1+P3 DNN task and evaluates it three ways:
//   * accuracy: photonic (noisy, quantized) vs float reference vs int8
//     digital, over the synthetic dataset;
//   * deployment latency: cloud offload (detour to a datacenter node) vs
//     edge device (slow local compute) vs on-fiber (computed in transit) —
//     the §4 comparison that motivates the whole paper.
#pragma once

#include <cstdint>
#include <vector>

#include "core/photonic_engine.hpp"
#include "digital/dnn.hpp"
#include "network/topology.hpp"

namespace onfiber::apps {

/// Convert a trained model into the engine's task form.
[[nodiscard]] core::dnn_task to_photonic_task(const digital::dnn_model& model);

/// Classification accuracy of the photonic engine on a dataset. Each
/// sample is wrapped in a compute packet and pushed through
/// photonic_engine::process, exercising the same code path packets take
/// in the network.
struct photonic_eval {
  double accuracy = 0.0;
  double mean_compute_latency_s = 0.0;
  std::uint64_t optical_symbols = 0;
};
[[nodiscard]] photonic_eval evaluate_photonic(core::photonic_engine& engine,
                                              const digital::dnn_model& model,
                                              const digital::dataset& data);

/// Same evaluation through the batched datapath: samples are wrapped in
/// per-sample packets and handed to photonic_engine::process_batch in
/// chunks of `batch_size`, so each chunk's layers run as pooled GEMMs
/// (weight rails split once per row per chunk). Accuracy is statistically
/// equivalent to evaluate_photonic — noise draws differ because the
/// batched engine runs layer-major — and throughput is what
/// bench_table1_ml_inference reports as table1.batch_inferences_per_s.
[[nodiscard]] photonic_eval evaluate_photonic_batched(
    core::photonic_engine& engine, const digital::dnn_model& model,
    const digital::dataset& data, std::size_t batch_size = 64);

/// Deployment latency model for one inference request of `input_bytes`
/// issued at `src` for a consumer at `dst` (§4's three compute locations).
struct deployment_latency {
  double cloud_s = 0.0;     ///< src -> datacenter -> dst + accelerator time
  double edge_s = 0.0;      ///< compute at src on an edge CPU, then send
  double on_fiber_s = 0.0;  ///< compute in transit at a site on the path
};
[[nodiscard]] deployment_latency compare_deployments(
    const net::topology& topo, net::node_id src, net::node_id dst,
    net::node_id cloud, net::node_id on_fiber_site,
    const digital::dnn_model& model, double photonic_compute_s);

}  // namespace onfiber::apps
