// load_balancing.hpp — Table 1, C2: load balancing with a photonic
// comparator.
//
// Switch load balancers keep per-path utilization counters and need to
// pick the least-loaded path per flowlet; precise schemes replicate big
// tables (§4: "Limited memory for precise load balancing"). The photonic
// comparator encodes candidate path loads as optical intensities and lets
// balanced photodetection pick the smaller — constant memory, analog
// speed, at the cost of occasional wrong picks when loads are close
// (shot-noise limited resolution).
//
// Policies implemented:
//   * ecmp_hash        — static flow hashing (the status quo);
//   * flowlet_digital  — "Let it flow"-style flowlet switching with exact
//                        digital comparison [58];
//   * flowlet_photonic — the same flowlet logic, least-loaded choice made
//                        by the photonic comparator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/rng.hpp"

namespace onfiber::apps {

/// Analog two-input comparator: which of two loads is smaller?
class photonic_comparator {
 public:
  struct config {
    phot::laser_config laser{};
    phot::modulator_config modulator{};
    phot::photodetector_config detector{};
    double full_scale_load = 1.0;  ///< loads normalized by this before encode
  };

  photonic_comparator(config cfg, std::uint64_t seed,
                      phot::energy_ledger* ledger = nullptr,
                      phot::energy_costs costs = {});

  /// true if load_a < load_b according to the analog measurement.
  [[nodiscard]] bool less(double load_a, double load_b);

  /// Index of the (analog-measured) smallest load among candidates.
  /// Tournament of pairwise comparisons.
  [[nodiscard]] std::size_t argmin(std::span<const double> loads);

  [[nodiscard]] std::uint64_t comparisons() const { return comparisons_; }

 private:
  config config_;
  phot::laser laser_;
  phot::mzm_modulator mod_a_;
  phot::mzm_modulator mod_b_;
  phot::photodetector det_a_;
  phot::photodetector det_b_;
  std::uint64_t comparisons_ = 0;
};

// ------------------------------------------------------- LB simulation

/// A synthetic flow arrival for the LB experiment.
struct lb_flow {
  double start_s = 0.0;
  double size_bytes = 0.0;
  std::uint32_t flow_hash = 0;
  std::size_t packets = 0;
  double inter_packet_gap_s = 0.0;
};

/// Generate heavy-tailed flows (mice + elephants), Poisson arrivals.
[[nodiscard]] std::vector<lb_flow> make_lb_flows(std::size_t count,
                                                 double arrival_rate_fps,
                                                 std::uint64_t seed);

enum class lb_policy : std::uint8_t {
  ecmp_hash,
  flowlet_digital,
  flowlet_photonic,
};

struct lb_result {
  std::vector<double> path_bytes;  ///< bytes placed on each path
  double jain_fairness = 0.0;
  double max_over_mean = 0.0;      ///< peak path load / mean path load
  std::uint64_t flowlet_switches = 0;
};

/// Run a policy over the flows on `path_count` equal-capacity paths.
/// `flowlet_gap_s` is the idle gap that opens a new flowlet.
[[nodiscard]] lb_result run_load_balancer(
    const std::vector<lb_flow>& flows, std::size_t path_count,
    lb_policy policy, double flowlet_gap_s,
    photonic_comparator* comparator,  ///< required for flowlet_photonic
    std::uint64_t seed);

}  // namespace onfiber::apps
