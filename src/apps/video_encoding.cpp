#include "apps/video_encoding.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "photonics/rng.hpp"

namespace onfiber::apps {

namespace {
constexpr std::size_t block = 8;
}

frame make_synthetic_frame(std::size_t width, std::size_t height,
                           std::uint64_t seed) {
  phot::rng gen(seed);
  frame f(width, height);
  // Gradient base + low-frequency waves + texture noise + sharp bars.
  const double fx = gen.uniform(1.0, 3.0);
  const double fy = gen.uniform(1.0, 3.0);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double u = static_cast<double>(x) / static_cast<double>(width);
      const double v = static_cast<double>(y) / static_cast<double>(height);
      double p = 0.35 + 0.25 * u + 0.15 * v;
      p += 0.12 * std::sin(2.0 * std::numbers::pi * fx * u) *
           std::cos(2.0 * std::numbers::pi * fy * v);
      p += gen.normal(0.0, 0.01);
      if (x % 32 < 2) p = 0.9;  // vertical bars: sharp edges
      f.at(x, y) = std::clamp(p, 0.0, 1.0);
    }
  }
  return f;
}

phot::matrix dct8_matrix() {
  phot::matrix d(block, block);
  for (std::size_t k = 0; k < block; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / block)
                                : std::sqrt(2.0 / block);
    for (std::size_t n = 0; n < block; ++n) {
      d.at(k, n) = scale * std::cos(std::numbers::pi *
                                    (static_cast<double>(n) + 0.5) *
                                    static_cast<double>(k) /
                                    static_cast<double>(block));
    }
  }
  return d;
}

namespace {

void check_dims(const frame& f) {
  if (f.width % block != 0 || f.height % block != 0 || f.width == 0) {
    throw std::invalid_argument("video: dimensions must be multiples of 8");
  }
}

/// Extract block (bx,by) into an 8x8 matrix with pixels centered to
/// [-0.5, 0.5] (standard DC removal before the transform).
phot::matrix load_block(const frame& f, std::size_t bx, std::size_t by) {
  phot::matrix m(block, block);
  for (std::size_t y = 0; y < block; ++y) {
    for (std::size_t x = 0; x < block; ++x) {
      m.at(y, x) = f.at(bx * block + x, by * block + y) - 0.5;
    }
  }
  return m;
}

double quantize(double v, double step) {
  return std::round(v / step) * step;
}

}  // namespace

encode_result encode_digital(const frame& f, const video_config& cfg) {
  check_dims(f);
  const phot::matrix d = dct8_matrix();
  encode_result out;
  for (std::size_t by = 0; by < f.height / block; ++by) {
    for (std::size_t bx = 0; bx < f.width / block; ++bx) {
      const phot::matrix x = load_block(f, bx, by);
      // t = D * X
      phot::matrix t(block, block);
      for (std::size_t r = 0; r < block; ++r) {
        for (std::size_t c = 0; c < block; ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < block; ++k) {
            acc += d.at(r, k) * x.at(k, c);
          }
          t.at(r, c) = acc;
        }
      }
      // y = T * D^T
      for (std::size_t r = 0; r < block; ++r) {
        for (std::size_t c = 0; c < block; ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < block; ++k) {
            acc += t.at(r, k) * d.at(c, k);
          }
          out.coefficients.push_back(quantize(acc, cfg.quant_step));
        }
      }
    }
  }
  return out;
}

encode_result encode_photonic(const frame& f, const video_config& cfg,
                              phot::vector_matrix_engine& engine) {
  check_dims(f);
  const phot::matrix d = dct8_matrix();
  // D's entries lie in (-1, 1) so it maps directly onto the signed GEMV.
  encode_result out;
  for (std::size_t by = 0; by < f.height / block; ++by) {
    for (std::size_t bx = 0; bx < f.width / block; ++bx) {
      const phot::matrix x = load_block(f, bx, by);
      // t = D * X : one analog GEMV per column of X.
      phot::matrix t(block, block);
      std::vector<double> col(block);
      for (std::size_t c = 0; c < block; ++c) {
        for (std::size_t k = 0; k < block; ++k) col[k] = x.at(k, c);
        const auto r = engine.gemv_signed(d, col);
        for (std::size_t k = 0; k < block; ++k) t.at(k, c) = r.values[k];
        out.latency_s += r.latency_s;
        out.optical_symbols += r.symbols;
      }
      // y = T * D^T == D * T^T per column; feed rows of T.
      std::vector<double> row(block);
      phot::matrix y(block, block);
      for (std::size_t rr = 0; rr < block; ++rr) {
        for (std::size_t k = 0; k < block; ++k) row[k] = t.at(rr, k);
        const auto r = engine.gemv_signed(d, row);
        for (std::size_t k = 0; k < block; ++k) y.at(rr, k) = r.values[k];
        out.latency_s += r.latency_s;
        out.optical_symbols += r.symbols;
      }
      for (std::size_t rr = 0; rr < block; ++rr) {
        for (std::size_t c = 0; c < block; ++c) {
          out.coefficients.push_back(quantize(y.at(rr, c), cfg.quant_step));
        }
      }
    }
  }
  return out;
}

frame decode(const encode_result& enc, std::size_t width, std::size_t height,
             const video_config& cfg) {
  (void)cfg;  // coefficients are already dequantized values
  if (width % block != 0 || height % block != 0) {
    throw std::invalid_argument("video: dimensions must be multiples of 8");
  }
  const std::size_t blocks_x = width / block;
  const std::size_t blocks_y = height / block;
  if (enc.coefficients.size() != blocks_x * blocks_y * block * block) {
    throw std::invalid_argument("video: coefficient count mismatch");
  }
  const phot::matrix d = dct8_matrix();
  frame f(width, height);
  std::size_t idx = 0;
  for (std::size_t by = 0; by < blocks_y; ++by) {
    for (std::size_t bx = 0; bx < blocks_x; ++bx) {
      phot::matrix y(block, block);
      for (std::size_t r = 0; r < block; ++r) {
        for (std::size_t c = 0; c < block; ++c) y.at(r, c) = enc.coefficients[idx++];
      }
      // X = D^T * Y * D
      phot::matrix t(block, block);
      for (std::size_t r = 0; r < block; ++r) {
        for (std::size_t c = 0; c < block; ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < block; ++k) {
            acc += d.at(k, r) * y.at(k, c);
          }
          t.at(r, c) = acc;
        }
      }
      for (std::size_t r = 0; r < block; ++r) {
        for (std::size_t c = 0; c < block; ++c) {
          double acc = 0.0;
          for (std::size_t k = 0; k < block; ++k) {
            acc += t.at(r, k) * d.at(k, c);
          }
          f.at(bx * block + c, by * block + r) =
              std::clamp(acc + 0.5, 0.0, 1.0);
        }
      }
    }
  }
  return f;
}

double psnr_db(const frame& a, const frame& b) {
  if (a.width != b.width || a.height != b.height || a.pixels.empty()) {
    throw std::invalid_argument("psnr_db: frame size mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = a.pixels[i] - b.pixels[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse <= 0.0) return 99.0;  // identical frames: report a ceiling
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace onfiber::apps
