#include "apps/convolution.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "photonics/rng.hpp"

namespace onfiber::apps {

namespace {

/// Normalize a kernel into [-1, 1] (photonic weight range).
void normalize_kernel(std::vector<double>& k) {
  double max_abs = 1e-12;
  for (const double v : k) max_abs = std::max(max_abs, std::abs(v));
  for (double& v : k) v /= max_abs;
}

}  // namespace

kernel_bank make_edge_kernel_bank() {
  kernel_bank bank;
  bank.size = 3;
  bank.kernels = {
      {-1, 0, 1, -2, 0, 2, -1, 0, 1},      // Sobel x
      {-1, -2, -1, 0, 0, 0, 1, 2, 1},      // Sobel y
      {0, 1, 0, 1, -4, 1, 0, 1, 0},        // Laplacian
      {1, 1, 1, 1, 1, 1, 1, 1, 1},         // box blur
      {2, 1, 0, 1, 0, -1, 0, -1, -2},      // diagonal edge
  };
  for (auto& k : bank.kernels) normalize_kernel(k);
  return bank;
}

kernel_bank make_gabor_kernel_bank(std::size_t size,
                                   std::size_t orientations,
                                   std::uint64_t seed) {
  if (size < 3 || size % 2 == 0 || orientations == 0) {
    throw std::invalid_argument(
        "make_gabor_kernel_bank: odd size >= 3, orientations >= 1");
  }
  phot::rng gen(seed);
  kernel_bank bank;
  bank.size = size;
  const double sigma = static_cast<double>(size) / 3.0;
  const double lambda = static_cast<double>(size) / 1.5 *
                        gen.uniform(0.9, 1.1);
  const double half = static_cast<double>(size - 1) / 2.0;
  for (std::size_t o = 0; o < orientations; ++o) {
    const double theta =
        std::numbers::pi * static_cast<double>(o) /
        static_cast<double>(orientations);
    std::vector<double> k(size * size);
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        const double dx = static_cast<double>(x) - half;
        const double dy = static_cast<double>(y) - half;
        const double xr = dx * std::cos(theta) + dy * std::sin(theta);
        const double yr = -dx * std::sin(theta) + dy * std::cos(theta);
        k[y * size + x] =
            std::exp(-(xr * xr + yr * yr) / (2.0 * sigma * sigma)) *
            std::cos(2.0 * std::numbers::pi * xr / lambda);
      }
    }
    normalize_kernel(k);
    bank.kernels.push_back(std::move(k));
  }
  return bank;
}

namespace {

void check_conv_args(const frame& image, const kernel_bank& bank) {
  if (bank.kernels.empty()) {
    throw std::invalid_argument("conv2d: empty kernel bank");
  }
  for (const auto& k : bank.kernels) {
    if (k.size() != bank.size * bank.size) {
      throw std::invalid_argument("conv2d: kernel size mismatch");
    }
  }
  if (image.width < bank.size || image.height < bank.size) {
    throw std::invalid_argument("conv2d: image smaller than kernel");
  }
}

/// Flatten the k x k patch at (x, y), centered to [-0.5, 0.5].
void load_patch(const frame& image, std::size_t x, std::size_t y,
                std::size_t k, std::vector<double>& out) {
  out.resize(k * k);
  for (std::size_t dy = 0; dy < k; ++dy) {
    for (std::size_t dx = 0; dx < k; ++dx) {
      out[dy * k + dx] = image.at(x + dx, y + dy) - 0.5;
    }
  }
}

}  // namespace

feature_maps conv2d_reference(const frame& image, const kernel_bank& bank) {
  check_conv_args(image, bank);
  feature_maps out;
  out.width = image.width - bank.size + 1;
  out.height = image.height - bank.size + 1;
  out.maps.assign(bank.kernels.size(),
                  std::vector<double>(out.width * out.height, 0.0));
  std::vector<double> patch;
  for (std::size_t y = 0; y < out.height; ++y) {
    for (std::size_t x = 0; x < out.width; ++x) {
      load_patch(image, x, y, bank.size, patch);
      for (std::size_t ki = 0; ki < bank.kernels.size(); ++ki) {
        double acc = 0.0;
        const auto& k = bank.kernels[ki];
        for (std::size_t i = 0; i < patch.size(); ++i) {
          acc += k[i] * patch[i];
        }
        out.maps[ki][y * out.width + x] = acc;
      }
    }
  }
  return out;
}

feature_maps conv2d_photonic(const frame& image, const kernel_bank& bank,
                             phot::wdm_gemv_engine& engine) {
  check_conv_args(image, bank);
  // Weight matrix: one kernel per row -> one GEMV per patch covers the
  // whole bank (rows ride parallel wavelengths on the WDM engine).
  phot::matrix w(bank.kernels.size(), bank.size * bank.size);
  for (std::size_t ki = 0; ki < bank.kernels.size(); ++ki) {
    for (std::size_t i = 0; i < bank.kernels[ki].size(); ++i) {
      w.at(ki, i) = bank.kernels[ki][i];
    }
  }

  feature_maps out;
  out.width = image.width - bank.size + 1;
  out.height = image.height - bank.size + 1;
  out.maps.assign(bank.kernels.size(),
                  std::vector<double>(out.width * out.height, 0.0));
  std::vector<double> patch;
  for (std::size_t y = 0; y < out.height; ++y) {
    for (std::size_t x = 0; x < out.width; ++x) {
      load_patch(image, x, y, bank.size, patch);
      const auto r = engine.gemv_signed(w, patch);
      for (std::size_t ki = 0; ki < bank.kernels.size(); ++ki) {
        out.maps[ki][y * out.width + x] = r.values[ki];
      }
      out.latency_s += r.latency_s;
      out.optical_symbols += r.symbols;
    }
  }
  return out;
}

double feature_error(const feature_maps& a, const feature_maps& b) {
  if (a.maps.size() != b.maps.size() || a.width != b.width ||
      a.height != b.height) {
    throw std::invalid_argument("feature_error: shape mismatch");
  }
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t m = 0; m < a.maps.size(); ++m) {
    for (std::size_t i = 0; i < a.maps[m].size(); ++i) {
      err += std::abs(a.maps[m][i] - b.maps[m][i]);
      ++n;
    }
  }
  return n > 0 ? err / static_cast<double>(n) : 0.0;
}

}  // namespace onfiber::apps
