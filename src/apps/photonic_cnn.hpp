// photonic_cnn.hpp — end-to-end photonic image recognition.
//
// The Figure-1 use case ("image recognition" at site C) done properly: a
// convolutional front end (edge-kernel bank on the P1 tensor core, per
// [19]) feeding pooled features into a photonic-aware-trained MLP head
// executed on the fused P1+P3 engine. Both stages run on analog photonic
// hardware; the digital float pipeline is the accuracy reference.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/convolution.hpp"
#include "core/photonic_engine.hpp"
#include "digital/dnn.hpp"

namespace onfiber::apps {

/// Synthetic image-classification dataset: `per_class` images of each of
/// four texture classes (vertical stripes, horizontal stripes,
/// checkerboard, radial blob), with random phase/contrast and pixel
/// noise. Deterministic per seed.
struct image_dataset {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<frame> images;
  std::vector<std::size_t> labels;
  static constexpr std::size_t classes = 4;
};
[[nodiscard]] image_dataset make_image_dataset(std::size_t width,
                                               std::size_t height,
                                               std::size_t per_class,
                                               std::uint64_t seed);

/// The CNN: conv bank -> 2x2 average pooling -> normalized flat features
/// -> MLP head.
struct photonic_cnn {
  kernel_bank bank;
  digital::dnn_model head;
  std::size_t pooled_w = 0;
  std::size_t pooled_h = 0;

  [[nodiscard]] std::size_t feature_dim() const {
    return bank.kernels.size() * pooled_w * pooled_h;
  }
};

/// Extract the flat feature vector of one image (float conv path).
[[nodiscard]] std::vector<double> cnn_features_reference(
    const photonic_cnn& cnn, const frame& image);

/// Extract features with the photonic conv engine.
[[nodiscard]] std::vector<double> cnn_features_photonic(
    const photonic_cnn& cnn, const frame& image,
    phot::wdm_gemv_engine& conv_engine);

/// Train a CNN on the dataset: the conv bank is the fixed edge extractor,
/// the MLP head is trained (photonic-aware) on the float features.
[[nodiscard]] photonic_cnn train_photonic_cnn(const image_dataset& data,
                                              std::size_t hidden,
                                              std::size_t epochs,
                                              std::uint64_t seed);

/// Accuracy over the dataset.
struct cnn_eval {
  double accuracy = 0.0;
  double mean_latency_s = 0.0;  ///< analog time per image (photonic path)
};

/// Digital float pipeline (reference).
[[nodiscard]] cnn_eval evaluate_cnn_reference(const photonic_cnn& cnn,
                                              const image_dataset& data);

/// Fully photonic pipeline: photonic conv + photonic DNN head on the
/// engine (which must be configured with the head via configure_dnn).
[[nodiscard]] cnn_eval evaluate_cnn_photonic(const photonic_cnn& cnn,
                                             const image_dataset& data,
                                             phot::wdm_gemv_engine& conv_engine,
                                             core::photonic_engine& head_engine);

}  // namespace onfiber::apps
