#include "protocol/compute_header.hpp"

#include <algorithm>

namespace onfiber::proto {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> d,
                                    std::size_t off) {
  return static_cast<std::uint16_t>((std::uint16_t{d[off]} << 8) |
                                    std::uint16_t{d[off + 1]});
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> d,
                                    std::size_t off) {
  return (std::uint32_t{d[off]} << 24) | (std::uint32_t{d[off + 1]} << 16) |
         (std::uint32_t{d[off + 2]} << 8) | std::uint32_t{d[off + 3]};
}

[[nodiscard]] bool valid_primitive(std::uint8_t p) {
  return p <= static_cast<std::uint8_t>(primitive_id::p1_p3_dnn);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | std::uint32_t{data[i + 1]};
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> serialize(const compute_header& h) {
  std::vector<std::uint8_t> out;
  out.reserve(compute_header_bytes);
  put_u16(out, compute_magic);
  out.push_back(h.version);
  out.push_back(static_cast<std::uint8_t>(h.primitive));
  put_u32(out, h.task_id);
  put_u16(out, h.input_offset);
  put_u16(out, h.input_length);
  put_u16(out, h.result_offset);
  put_u16(out, h.result_length);
  out.push_back(h.flags);
  out.push_back(h.hops);
  out.push_back(static_cast<std::uint8_t>(h.stage2));
  out.push_back(static_cast<std::uint8_t>(h.stage3));
  out.push_back(h.batch == 0 ? 1 : h.batch);
  out.push_back(0);  // reserved (alignment)
  // Checksum over the header with the checksum field zeroed.
  put_u16(out, 0);
  const std::uint16_t sum = internet_checksum(out);
  out[compute_header_bytes - 2] = static_cast<std::uint8_t>(sum >> 8);
  out[compute_header_bytes - 1] = static_cast<std::uint8_t>(sum & 0xff);
  return out;
}

parse_result parse(std::span<const std::uint8_t> data) {
  parse_result r;
  if (data.size() < compute_header_bytes) {
    r.error = parse_error::too_short;
    return r;
  }
  // Verify the checksum before any framing or semantic field: a bit-flip
  // anywhere in the header must classify as bad_checksum, never as
  // bad_magic/bad_version/bad_primitive — the robustness benches build
  // their error taxonomy on that distinction (in-flight corruption vs.
  // genuinely malformed requests). bad_magic etc. remain reachable only
  // for intact buffers that really carry something else.
  std::uint8_t scratch[compute_header_bytes];
  std::copy_n(data.begin(), compute_header_bytes, scratch);
  scratch[compute_header_bytes - 2] = 0;
  scratch[compute_header_bytes - 1] = 0;
  if (internet_checksum({scratch, compute_header_bytes}) !=
      get_u16(data, compute_header_bytes - 2)) {
    r.error = parse_error::bad_checksum;
    return r;
  }
  if (get_u16(data, 0) != compute_magic) {
    r.error = parse_error::bad_magic;
    return r;
  }
  if (data[2] != compute_version) {
    r.error = parse_error::bad_version;
    return r;
  }
  if (!valid_primitive(data[3]) || !valid_primitive(data[18]) ||
      !valid_primitive(data[19])) {
    r.error = parse_error::bad_primitive;
    return r;
  }
  compute_header& h = r.header;
  h.version = data[2];
  h.primitive = static_cast<primitive_id>(data[3]);
  h.task_id = get_u32(data, 4);
  h.input_offset = get_u16(data, 8);
  h.input_length = get_u16(data, 10);
  h.result_offset = get_u16(data, 12);
  h.result_length = get_u16(data, 14);
  h.flags = data[16];
  h.hops = data[17];
  h.stage2 = static_cast<primitive_id>(data[18]);
  h.stage3 = static_cast<primitive_id>(data[19]);
  h.batch = data[20] == 0 ? 1 : data[20];
  r.error = parse_error::ok;
  return r;
}

void attach_compute_header(net::packet& pkt, const compute_header& h) {
  const std::vector<std::uint8_t> wire = serialize(h);
  pkt.payload.insert(pkt.payload.begin(), wire.begin(), wire.end());
  pkt.proto = net::ip_proto::compute;
}

std::optional<compute_header> peek_compute_header(const net::packet& pkt) {
  if (pkt.proto != net::ip_proto::compute) return std::nullopt;
  const parse_result r = parse(pkt.payload);
  if (!r) return std::nullopt;
  return r.header;
}

bool rewrite_compute_header(net::packet& pkt, const compute_header& h) {
  if (pkt.proto != net::ip_proto::compute ||
      pkt.payload.size() < compute_header_bytes) {
    return false;
  }
  if (!parse(pkt.payload)) return false;
  const std::vector<std::uint8_t> wire = serialize(h);
  std::copy(wire.begin(), wire.end(), pkt.payload.begin());
  return true;
}

std::span<const std::uint8_t> compute_input(const net::packet& pkt,
                                            const compute_header& h) {
  const std::size_t begin = compute_header_bytes + h.input_offset;
  const std::size_t end = begin + h.input_length;
  if (end > pkt.payload.size() || h.input_length == 0) return {};
  return std::span<const std::uint8_t>(pkt.payload).subspan(begin,
                                                            h.input_length);
}

std::span<std::uint8_t> compute_result_region(net::packet& pkt,
                                              const compute_header& h) {
  const std::size_t begin = compute_header_bytes + h.result_offset;
  const std::size_t end = begin + h.result_length;
  if (end > pkt.payload.size() || h.result_length == 0) return {};
  return std::span<std::uint8_t>(pkt.payload).subspan(begin, h.result_length);
}

}  // namespace onfiber::proto
