// compute_header.hpp — the paper's compute-communication protocol (§3).
//
// "Our additional photonic computing packet header is layered on top of
//  the IP header to identify the photonic computing primitive ID."
//
// Wire format (big-endian, 24 bytes), carried as the first payload bytes
// of packets whose ip_proto == compute:
//
//   0        2     3          4        8         10        12
//   +--------+-----+----------+--------+---------+---------+
//   | magic  | ver | primitive| task_id| in_off  | in_len  |
//   +--------+-----+----------+--------+---------+---------+
//   12        14        16      17      18       19       20    21    22
//   +---------+---------+------+-------+--------+--------+------+-----+
//   | res_off | res_len | flags| hops  | stage2 | stage3 | rsvd | cks |
//   +---------+---------+------+-------+--------+--------+------+-----+
//
// Offsets are relative to the end of the compute header (i.e. into the
// application payload). `primitive` is the *current* stage; `stage2` and
// `stage3` (primitive ids, none = 0) are the remaining stages of the
// task chain — the path-shaped "computation DAG" of §3, executed across
// multiple transponders ("distributed on-fiber photonic computing", §5).
// When an engine finishes a non-final stage it promotes the chain: the
// result region becomes the next stage's input region and the next
// primitive becomes current. `hops` counts stages already applied.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "network/packet.hpp"

namespace onfiber::proto {

/// The photonic computing primitives of §2.1.
enum class primitive_id : std::uint8_t {
  none = 0,
  p1_dot_product = 1,
  p2_pattern_match = 2,
  p3_nonlinear = 3,
  p1_p3_dnn = 4,  ///< fused vector-product + nonlinearity (DNN layer/graph)
};

/// Header flag bits.
enum header_flags : std::uint8_t {
  flag_has_result = 0x01,      ///< a transponder already wrote the result
  flag_require_compute = 0x02, ///< drop at dst if never computed
  flag_intensity_encoded = 0x04,  ///< compute input is intensity-modulated
  flag_phase_encoded = 0x08,      ///< compute input is BPSK phase-encoded
  flag_ack = 0x10,  ///< end-to-end delivery ack (reliability layer); the
                    ///< header is the whole message, task_id names the
                    ///< acknowledged task
  flag_deferred = 0x40,  ///< a site's admission control deferred this
                         ///< packet (queue at the bound): it forwards
                         ///< raw and must not be steered back toward
                         ///< compute sites — it may still compute at a
                         ///< capable site it happens to transit
  flag_tracked = 0x20,  ///< reliability layer tracks this task: the
                        ///< destination acks every result delivery and
                        ///< counts duplicates from the wire bit alone —
                        ///< no task-table lookup, so the decision is
                        ///< shard-local on the parallel engine
};

inline constexpr std::uint16_t compute_magic = 0x0F1B;  // "OFIBer"
inline constexpr std::uint8_t compute_version = 2;
inline constexpr std::size_t compute_header_bytes = 24;

struct compute_header {
  std::uint8_t version = compute_version;
  primitive_id primitive = primitive_id::none;  ///< current stage
  std::uint32_t task_id = 0;
  std::uint16_t input_offset = 0;   ///< payload offset of compute input
  std::uint16_t input_length = 0;   ///< bytes of compute input
  std::uint16_t result_offset = 0;  ///< payload offset reserved for result
  std::uint16_t result_length = 0;  ///< bytes of result (set by the engine)
  std::uint8_t flags = 0;
  std::uint8_t hops = 0;            ///< compute stages applied so far
  primitive_id stage2 = primitive_id::none;  ///< next stage, if any
  primitive_id stage3 = primitive_id::none;  ///< stage after that, if any
  /// Samples batched in this packet (>= 1). Batching amortizes the
  /// per-packet preamble/queueing overhead at a compute site; the input
  /// region holds `batch` equal-size samples back to back and the result
  /// region receives `batch` equal-size results.
  std::uint8_t batch = 1;

  [[nodiscard]] bool has_result() const { return flags & flag_has_result; }
  [[nodiscard]] bool is_ack() const { return flags & flag_ack; }
  [[nodiscard]] bool is_tracked() const { return flags & flag_tracked; }
  [[nodiscard]] bool requires_compute() const {
    return flags & flag_require_compute;
  }
  [[nodiscard]] bool has_more_stages() const {
    return stage2 != primitive_id::none;
  }

  /// Promote the chain after the current stage produced `result_len`
  /// bytes at `result_offset`: that region becomes the next stage's
  /// input and the next primitive becomes current. Requires
  /// has_more_stages().
  void advance_stage(std::uint16_t result_len) {
    input_offset = result_offset;
    input_length = result_len;
    result_offset = static_cast<std::uint16_t>(result_offset + result_len);
    result_length = 0;
    primitive = stage2;
    stage2 = stage3;
    stage3 = primitive_id::none;
  }
};

/// Internet-style 16-bit ones'-complement checksum.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Serialize to the 20-byte wire format (checksum computed and filled in).
[[nodiscard]] std::vector<std::uint8_t> serialize(const compute_header& h);

enum class parse_error {
  ok,
  too_short,
  bad_magic,
  bad_version,
  bad_checksum,
  bad_primitive,
};

struct parse_result {
  parse_error error = parse_error::ok;
  compute_header header{};
  [[nodiscard]] explicit operator bool() const {
    return error == parse_error::ok;
  }
};

/// Parse a compute header from the first bytes of `data`.
[[nodiscard]] parse_result parse(std::span<const std::uint8_t> data);

// --------------------------------------------------- packet-level helpers

/// Prepend a compute header to the packet payload and mark the protocol.
/// Offsets in `h` refer to the payload as it is before this call.
void attach_compute_header(net::packet& pkt, const compute_header& h);

/// Parse the compute header of a compute packet (nullopt if absent/bad).
[[nodiscard]] std::optional<compute_header> peek_compute_header(
    const net::packet& pkt);

/// Rewrite the compute header in place (e.g. after computing a result).
/// Returns false if the packet carries no valid header.
bool rewrite_compute_header(net::packet& pkt, const compute_header& h);

/// View of the compute input bytes (into pkt.payload, past the header).
/// Empty span if the header/bounds are invalid.
[[nodiscard]] std::span<const std::uint8_t> compute_input(
    const net::packet& pkt, const compute_header& h);

/// Mutable view of the result region. Empty span if bounds are invalid.
[[nodiscard]] std::span<std::uint8_t> compute_result_region(
    net::packet& pkt, const compute_header& h);

}  // namespace onfiber::proto
