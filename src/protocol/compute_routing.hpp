// compute_routing.hpp — two-field next-hop lookup (§3).
//
// "routers perform next-hop lookup based on two fields: the destination
//  IP address in the IP header and the photonic computing primitive ID
//  specified in the photonic computing header."
//
// Implemented as one LPM table per primitive id, falling back to the
// plain (primitive = none) table when no compute-specific route exists.
#pragma once

#include <array>
#include <optional>

#include "network/routing.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber::proto {

template <typename Value>
class compute_routing_table {
 public:
  /// Route for plain (non-compute) traffic.
  void insert_plain(net::prefix p, Value v) {
    table_for(primitive_id::none).insert(p, std::move(v));
  }

  /// Route for compute traffic needing `prim` toward `p`.
  void insert_compute(net::prefix p, primitive_id prim, Value v) {
    table_for(prim).insert(p, std::move(v));
  }

  /// Two-field lookup: compute-specific route first, else plain route.
  [[nodiscard]] std::optional<Value> lookup(net::ipv4 dst,
                                            primitive_id prim) const {
    if (prim != primitive_id::none) {
      if (auto hit = table_for(prim).lookup(dst)) return hit;
    }
    return table_for(primitive_id::none).lookup(dst);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& t : tables_) total += t.size();
    return total;
  }

 private:
  [[nodiscard]] net::routing_table<Value>& table_for(primitive_id p) {
    return tables_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const net::routing_table<Value>& table_for(
      primitive_id p) const {
    return tables_[static_cast<std::size_t>(p)];
  }

  std::array<net::routing_table<Value>,
             static_cast<std::size_t>(primitive_id::p1_p3_dnn) + 1>
      tables_;
};

// ------------------------------------------------------- optical preamble

/// The optical preamble announcing a compute packet to a photonic engine
/// (§3: "an optical preamble detection module to identify the arrival of
/// a new packet"). A 16-bit Barker-like pattern with good autocorrelation,
/// detected in the optical domain by the P2 matcher.
inline constexpr std::array<std::uint8_t, 16> optical_preamble_bits = {
    1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 1, 0};

}  // namespace onfiber::proto
