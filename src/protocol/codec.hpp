// codec.hpp — fixed-point vector codecs for compute payloads.
//
// Compute inputs and results travel inside packets as bytes; the analog
// engine works on values in [0,1] (intensity) or [-1,1] (signed,
// differential rails). These codecs define the mapping. 8-bit elements
// match the converter resolution assumed throughout (§2.2 compares 8-bit
// MACs).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace onfiber::proto {

/// Encode x in [0,1] as one byte (round-to-nearest).
[[nodiscard]] inline std::uint8_t encode_unit_u8(double x) {
  const double c = std::clamp(x, 0.0, 1.0);
  return static_cast<std::uint8_t>(std::lround(c * 255.0));
}

/// Decode one byte to [0,1].
[[nodiscard]] inline double decode_unit_u8(std::uint8_t b) {
  return static_cast<double>(b) / 255.0;
}

/// Encode x in [-1,1] as one byte (offset binary around 128 with a
/// 1/127 step: 1 -> -1, 128 -> 0, 255 -> +1). The grid is symmetric
/// about an exact zero, so encode/decode is odd in x and 0.0 round-trips
/// exactly — the old (x+1)*127.5 mapping had no code for zero and put a
/// +1/255 DC bias on every differential-rail vector. Byte 0 is never
/// produced (decode clamps it to -1).
[[nodiscard]] inline std::uint8_t encode_signed_u8(double x) {
  const double c = std::clamp(x, -1.0, 1.0);
  return static_cast<std::uint8_t>(128 + std::lround(c * 127.0));
}

/// Decode offset-binary byte to [-1,1].
[[nodiscard]] inline double decode_signed_u8(std::uint8_t b) {
  return std::max(-1.0, (static_cast<double>(b) - 128.0) / 127.0);
}

[[nodiscard]] inline std::vector<std::uint8_t> encode_unit_vector(
    std::span<const double> xs) {
  std::vector<std::uint8_t> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(encode_unit_u8(x));
  return out;
}

[[nodiscard]] inline std::vector<double> decode_unit_vector(
    std::span<const std::uint8_t> bytes) {
  std::vector<double> out;
  out.reserve(bytes.size());
  for (std::uint8_t b : bytes) out.push_back(decode_unit_u8(b));
  return out;
}

[[nodiscard]] inline std::vector<std::uint8_t> encode_signed_vector(
    std::span<const double> xs) {
  std::vector<std::uint8_t> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(encode_signed_u8(x));
  return out;
}

[[nodiscard]] inline std::vector<double> decode_signed_vector(
    std::span<const std::uint8_t> bytes) {
  std::vector<double> out;
  out.reserve(bytes.size());
  for (std::uint8_t b : bytes) out.push_back(decode_signed_u8(b));
  return out;
}

/// Encode a scalar result with a caller-chosen scale into 2 bytes
/// (big-endian fixed point, value/scale in [-1, 1]). Audited for the u8
/// midpoint issue: the two's-complement grid q = round(norm * 32767) is
/// already symmetric about an exact zero (0.0 -> 0x0000 -> 0.0), so no
/// remapping is needed; encode never emits -32768, and decode clamps that
/// byte pattern to -scale to keep the map odd on all 2^16 inputs.
[[nodiscard]] inline std::array<std::uint8_t, 2> encode_scalar_i16(
    double value, double scale) {
  const double norm = scale != 0.0 ? std::clamp(value / scale, -1.0, 1.0) : 0.0;
  const auto q = static_cast<std::int16_t>(std::lround(norm * 32767.0));
  const auto u = static_cast<std::uint16_t>(q);
  return {static_cast<std::uint8_t>(u >> 8),
          static_cast<std::uint8_t>(u & 0xff)};
}

[[nodiscard]] inline double decode_scalar_i16(std::uint8_t hi, std::uint8_t lo,
                                              double scale) {
  const auto u = static_cast<std::uint16_t>((std::uint16_t{hi} << 8) | lo);
  const auto q = static_cast<std::int16_t>(u);
  return std::max(-1.0, static_cast<double>(q) / 32767.0) * scale;
}

}  // namespace onfiber::proto
