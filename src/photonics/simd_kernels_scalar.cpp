// simd_kernels_scalar.cpp — reference tier. Compiled with the
// auto-vectorizer disabled (see src/photonics/CMakeLists.txt) so
// ONFIBER_SIMD=scalar really exercises the one-element-at-a-time code
// every other tier must match bit-for-bit.
#include "photonics/simd_kernels_impl.hpp"

namespace onfiber::phot::simd::detail_tables {

kernel_table make_table_scalar() {
  return make_kernel_table(level::scalar, "scalar");
}

}  // namespace onfiber::phot::simd::detail_tables
