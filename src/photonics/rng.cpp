// rng.cpp — compiled-once definitions of the counter-based normal path.
//
// counter_normal lives here (not inline in the header) so exactly one
// bit pattern of the scalar reference exists in the binary: this TU is
// part of the photonics target, which forces -ffp-contract=off, and the
// per-ISA SIMD fills are held to equality against it by
// test_simd_dispatch.cpp.
#include "photonics/rng.hpp"

#include "photonics/rng_counter_detail.hpp"
#include "photonics/simd.hpp"

namespace onfiber::phot {

double counter_normal(std::uint64_t key, std::uint64_t index) {
  return detail::inv_normal(detail::counter_uniform_open(key, index));
}

void counter_stream::fill_normal(std::span<double> out) {
  if (out.empty()) return;
  simd::active().fill_normal(key_, cursor_, out.data(), out.size());
  cursor_ += out.size();
}

}  // namespace onfiber::phot
