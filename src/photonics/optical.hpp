// optical.hpp — representation of optical signals.
//
// Signals are sequences of complex field samples, one per symbol slot.
// The instantaneous optical power of a sample E is |E|^2 in mW; the phase
// of E is the optical carrier phase relative to an arbitrary reference.
// This "one complex amplitude per symbol" abstraction is the standard one
// for system-level simulation of intensity/phase-modulated links and is
// exactly what the paper's primitives (Fig. 2) manipulate.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace onfiber::phot {

/// One optical symbol: complex field amplitude, |E|^2 = power in mW.
using field = std::complex<double>;

/// A burst of optical symbols (e.g. the optical form of a packet).
using waveform = std::vector<field>;

/// Power [mW] of one field sample.
[[nodiscard]] inline double power_mw(field e) { return std::norm(e); }

/// Field amplitude with the given power [mW] and phase [rad].
[[nodiscard]] inline field make_field(double power_mw_value,
                                      double phase_rad = 0.0) {
  const double amplitude =
      power_mw_value <= 0.0 ? 0.0 : std::sqrt(power_mw_value);
  return std::polar(amplitude, phase_rad);
}

/// Total energy-equivalent power sum [mW·symbols] over a waveform.
[[nodiscard]] inline double total_power_mw(std::span<const field> wf) {
  double sum = 0.0;
  for (const field& e : wf) sum += std::norm(e);
  return sum;
}

}  // namespace onfiber::phot
