// pattern_matcher.hpp — P2: photonic pattern matching (paper Fig. 2b).
//
// Two phase modulators encode, symbol-by-symbol, the data word and the
// target pattern onto two arms split from one carrier (binary phase keying:
// bit 0 -> 0 rad, bit 1 -> pi rad). A combiner interferes the arms; with a
// static 90-degree shim the two output ports are
//     P_match    = P * (1 + cos(dphi)) / 2       (constructive on match)
//     P_mismatch = P * (1 - cos(dphi)) / 2       (destructive on match)
// so the integrated mismatch-port power is proportional to the Hamming
// distance between data and pattern. Balanced detection of both ports and
// normalization makes the metric independent of absolute optical power.
//
// Ternary (wildcard) positions are masked to zero amplitude on both arms,
// contributing nothing to either port; this is what makes P2 usable as a
// TCAM for IP routing (Table 1, C2) and as a signature scanner for
// intrusion detection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "photonics/converter.hpp"
#include "photonics/energy.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

struct pattern_match_config {
  laser_config laser{};
  modulator_config modulator{};
  photodetector_config detector{};
  converter_config adc{};
  double symbol_rate_hz = 10e9;
  double fixed_latency_s = 5e-9;
  /// Normalized mismatch fraction at/below which the word is declared a
  /// match. 0 bits differing reads ~0 (the readout ADC quantizes the
  /// metric to ~1/255 steps); 1 bit differing in an n-bit word reads
  /// ~1/n, so the default rejects any real flip for words up to ~125
  /// bits while sitting well above the exact-match noise floor.
  double decision_threshold = 0.008;
};

/// Outcome of one photonic match evaluation.
struct match_result {
  bool matched = false;
  double mismatch_fraction = 0.0;  ///< ~ Hamming distance / cared bits
  double latency_s = 0.0;
  std::uint64_t symbols = 0;
};

/// Ternary bit: 0, 1, or wildcard (don't-care).
enum class tbit : std::uint8_t { zero = 0, one = 1, wildcard = 2 };

/// Convert a plain bit vector to ternary (no wildcards).
[[nodiscard]] std::vector<tbit> to_ternary(std::span<const std::uint8_t> bits);

/// Expand bytes into a most-significant-bit-first bit vector.
[[nodiscard]] std::vector<std::uint8_t> bytes_to_bits(
    std::span<const std::uint8_t> bytes);

/// P2 primitive.
class pattern_matcher {
 public:
  pattern_matcher(pattern_match_config config, std::uint64_t seed,
                  energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Match a binary data word against a binary pattern of equal length.
  [[nodiscard]] match_result match_bits(std::span<const std::uint8_t> data,
                                        std::span<const std::uint8_t> pattern);

  /// Match against a ternary pattern (wildcards never mismatch).
  /// Requires data.size() == pattern.size() and at least one cared bit.
  [[nodiscard]] match_result match_ternary(std::span<const std::uint8_t> data,
                                           std::span<const tbit> pattern);

  /// Byte-level convenience (MSB-first expansion).
  [[nodiscard]] match_result match_bytes(std::span<const std::uint8_t> data,
                                         std::span<const std::uint8_t> pattern);

  /// Encode a bit word as a phase-modulated optical waveform — the form in
  /// which compute packets arrive at an on-fiber matcher. Sample 0 is a
  /// pilot symbol (bit 0, phase reference) used by `match_optical` for
  /// carrier-phase and power recovery, so the waveform has bits.size()+1
  /// samples.
  [[nodiscard]] waveform encode_bits_to_optical(
      std::span<const std::uint8_t> bits);

  /// On-fiber variant: data arrives already phase-encoded (pilot-first,
  /// as produced by `encode_bits_to_optical`, possibly after fiber
  /// propagation); only the pattern arm is modulated locally. Carrier
  /// phase and reference power are recovered from the pilot — the
  /// pilot-aided homodyne used by the live-signal correlators the paper
  /// cites [6, 75]. Requires data_wave.size() == pattern.size() + 1.
  [[nodiscard]] match_result match_optical(std::span<const field> data_wave,
                                           std::span<const tbit> pattern);

  /// Scan a long bit stream for the pattern at every alignment; returns
  /// the offsets that matched. Each alignment is one analog evaluation.
  [[nodiscard]] std::vector<std::size_t> scan(
      std::span<const std::uint8_t> stream_bits,
      std::span<const tbit> pattern, std::size_t stride_bits = 1);

  [[nodiscard]] const pattern_match_config& config() const { return config_; }

 private:
  /// Core evaluation over pre-built arm waveforms.
  [[nodiscard]] match_result interfere_and_decide(const waveform& arm_data,
                                                  const waveform& arm_pattern,
                                                  std::size_t cared);

  pattern_match_config config_;
  laser laser_;
  phase_modulator mod_data_;
  phase_modulator mod_pattern_;
  photodetector det_match_;
  photodetector det_mismatch_;
  adc adc_out_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
