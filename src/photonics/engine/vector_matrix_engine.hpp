// vector_matrix_engine.hpp — time-multiplexed matrix-vector products on P1.
//
// A single dot-product unit evaluates one row at a time (the
// time-multiplexed architecture of Lightning [71] and [50]); this engine
// schedules a full GEMV over it and aggregates latency/energy. Combined
// with a P3 nonlinear unit it executes whole DNN layers, which is how the
// paper's C1 "machine learning inference" use case runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/nonlinear_unit.hpp"

namespace onfiber::phot {

/// Dense row-major matrix of doubles. Minimal on purpose — this is a
/// simulation payload type, not a linear algebra library.
struct matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;  ///< rows * cols, row-major

  matrix() = default;
  matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data[r * cols + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data).subspan(r * cols, cols);
  }
};

/// Aggregated result of a GEMV / layer evaluation.
struct gemv_result {
  std::vector<double> values;
  double latency_s = 0.0;
  std::uint64_t symbols = 0;
};

/// Aggregated result of a batched GEMM evaluation: `batch` input vectors
/// streamed through one weight matrix.
struct gemm_result {
  std::size_t batch = 0;
  std::vector<double> values;  ///< sample-major: values[s * rows + r]
  double latency_s = 0.0;      ///< total time on the time-multiplexed unit
  std::uint64_t symbols = 0;
};

class vector_matrix_engine {
 public:
  vector_matrix_engine(dot_product_config config, std::uint64_t seed,
                       energy_ledger* ledger = nullptr,
                       energy_costs costs = {});

  /// y = W x for signed W, x in [-1, 1]. Rows run on a deterministic
  /// worker pool: per-row noise streams are forked from the engine's
  /// row-seed stream in row order before dispatch, so the result (values,
  /// latency, symbols, energy totals) is bit-identical at any thread
  /// count. Latency still models the time-multiplexed single analog unit
  /// and adds up across rows.
  [[nodiscard]] gemv_result gemv_signed(const matrix& w,
                                        std::span<const double> x);

  /// y = W x for non-negative W, x in [0, 1] (single-pass per row).
  [[nodiscard]] gemv_result gemv_unit_range(const matrix& w,
                                            std::span<const double> x);

  /// Batched GEMM: `xs` holds batch = xs.size() / w.cols signed input
  /// vectors back to back; every sample streams through the same per-row
  /// weight rails (the photonic analogue of holding the MZM weight bank
  /// steady while symbols fly by). Per-row seeds are forked in row order
  /// exactly as in gemv_signed, so a batch of one is bit-identical to
  /// gemv_signed. Work is decomposed into rows x fixed-size sample
  /// chunks: the counter-based device streams are seekable in O(1), so a
  /// chunk starting mid-row draws the exact noise indices the serial
  /// loop would — large batches parallelize beyond the row count while
  /// every sample stays bit-identical at any thread count, batch size,
  /// or chunk boundary.
  [[nodiscard]] gemm_result gemm_signed(const matrix& w,
                                        std::span<const double> xs);

  /// Override the worker count (0 = auto: ONFIBER_THREADS env var, else
  /// hardware concurrency). Any value yields bit-identical results.
  void set_threads(std::size_t threads) { threads_override_ = threads; }

  [[nodiscard]] dot_product_unit& unit() { return unit_; }

 private:
  [[nodiscard]] gemv_result run_gemv(const matrix& w,
                                     std::span<const double> x,
                                     bool signed_inputs);

  dot_product_config config_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
  dot_product_unit unit_;       ///< direct-access unit (scalar experiments)
  rng row_seed_stream_;         ///< forked per GEMV row, in row order
  std::size_t threads_override_ = 0;
};

/// Reference (infinite-precision) GEMV for accuracy comparisons.
[[nodiscard]] std::vector<double> gemv_reference(const matrix& w,
                                                 std::span<const double> x);

}  // namespace onfiber::phot
