#include "photonics/engine/pattern_matcher.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "photonics/passives.hpp"

namespace onfiber::phot {

namespace {
constexpr double pi = std::numbers::pi;
}

std::vector<tbit> to_ternary(std::span<const std::uint8_t> bits) {
  std::vector<tbit> out;
  out.reserve(bits.size());
  for (std::uint8_t b : bits) out.push_back(b ? tbit::one : tbit::zero);
  return out;
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int k = 7; k >= 0; --k) {
      bits.push_back(static_cast<std::uint8_t>((byte >> k) & 1U));
    }
  }
  return bits;
}

pattern_matcher::pattern_matcher(pattern_match_config config,
                                 std::uint64_t seed, energy_ledger* ledger,
                                 energy_costs costs)
    : config_([&] {
        config.laser.symbol_rate_hz = config.symbol_rate_hz;
        config.detector.noise.bandwidth_hz = config.symbol_rate_hz;
        return config;
      }()),
      laser_(config_.laser, rng{seed}, ledger, costs),
      mod_data_(config_.modulator, rng{seed ^ 0xaaaa}, ledger, costs),
      mod_pattern_(config_.modulator, rng{seed ^ 0xbbbb}, ledger, costs),
      det_match_(config_.detector, rng{seed ^ 0xcccc}, ledger, costs),
      det_mismatch_(config_.detector, rng{seed ^ 0xdddd}, ledger, costs),
      adc_out_(config_.adc, rng{seed ^ 0xeeee}, ledger, costs),
      ledger_(ledger),
      costs_(costs) {}

match_result pattern_matcher::interfere_and_decide(const waveform& arm_data,
                                                   const waveform& arm_pattern,
                                                   std::size_t cared) {
  if (arm_data.size() != arm_pattern.size() || cared == 0) {
    throw std::invalid_argument(
        "pattern_matcher: arms must be equal length with >=1 cared bit");
  }
  waveform port_match, port_mismatch;
  port_match.reserve(arm_data.size());
  port_mismatch.reserve(arm_data.size());
  const field shim = std::polar(1.0, -pi / 2.0);  // 90-degree static shim
  for (std::size_t i = 0; i < arm_data.size(); ++i) {
    const coupler_output ports =
        couple_50_50(arm_data[i], arm_pattern[i] * shim);
    port_match.push_back(ports.port1);
    port_mismatch.push_back(ports.port2);
  }

  // Balanced integrate-and-dump on both ports; normalization removes the
  // dependence on absolute power and on how many symbols were masked out.
  const double i_match = det_match_.integrate(port_match);
  const double i_mismatch = det_mismatch_.integrate(port_mismatch);
  const double dark = det_match_.config().dark_current_a;
  const double num = i_mismatch - dark;
  const double den = (i_match - dark) + (i_mismatch - dark);

  double fraction = den > 0.0 ? num / den : 1.0;
  // Rescale from "fraction of unmasked symbols" to "fraction of cared
  // bits": masked symbols carry zero power in both ports so they do not
  // enter num/den at all — only the cared count matters for the caller,
  // and num/den is already per-cared-power. Clamp for noise excursions.
  fraction = std::clamp(fraction, 0.0, 1.0);

  // Digitize the decision metric the way the real readout would.
  fraction = adc_out_.convert(fraction);

  match_result r;
  r.mismatch_fraction = fraction;
  r.matched = fraction <= config_.decision_threshold;
  r.symbols = arm_data.size();
  r.latency_s = static_cast<double>(arm_data.size()) / config_.symbol_rate_hz +
                config_.fixed_latency_s;
  if (ledger_ != nullptr) {
    ledger_->charge("photonic_match", costs_.photonic_mac_j *
                                          static_cast<double>(cared),
                    static_cast<std::uint64_t>(cared));
  }
  return r;
}

match_result pattern_matcher::match_ternary(std::span<const std::uint8_t> data,
                                            std::span<const tbit> pattern) {
  if (data.size() != pattern.size() || data.empty()) {
    throw std::invalid_argument(
        "pattern_matcher: data/pattern must be non-empty, equal length");
  }
  std::size_t cared = 0;
  waveform arm_data, arm_pattern;
  arm_data.reserve(data.size());
  arm_pattern.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    field carrier = laser_.emit_one();
    auto [d_arm, p_arm] = split_50_50(carrier);
    if (pattern[i] == tbit::wildcard) {
      // Mask modulator blanks both arms at don't-care positions.
      arm_data.push_back(field{0.0, 0.0});
      arm_pattern.push_back(field{0.0, 0.0});
      continue;
    }
    ++cared;
    const double data_phase = data[i] ? pi : 0.0;
    const double pattern_phase = pattern[i] == tbit::one ? pi : 0.0;
    arm_data.push_back(mod_data_.encode_phase(d_arm, data_phase));
    arm_pattern.push_back(mod_pattern_.encode_phase(p_arm, pattern_phase));
  }
  if (cared == 0) {
    throw std::invalid_argument(
        "pattern_matcher: pattern must have at least one cared bit");
  }
  return interfere_and_decide(arm_data, arm_pattern, cared);
}

match_result pattern_matcher::match_bits(std::span<const std::uint8_t> data,
                                         std::span<const std::uint8_t> pattern) {
  const std::vector<tbit> ternary = to_ternary(pattern);
  return match_ternary(data, ternary);
}

match_result pattern_matcher::match_bytes(
    std::span<const std::uint8_t> data,
    std::span<const std::uint8_t> pattern) {
  const std::vector<std::uint8_t> data_bits = bytes_to_bits(data);
  const std::vector<std::uint8_t> pattern_bits = bytes_to_bits(pattern);
  return match_bits(data_bits, pattern_bits);
}

waveform pattern_matcher::encode_bits_to_optical(
    std::span<const std::uint8_t> bits) {
  waveform out;
  out.reserve(bits.size() + 1);
  // Pilot: known phase 0 at full carrier power.
  out.push_back(mod_data_.encode_phase(laser_.emit_one(), 0.0));
  for (std::uint8_t b : bits) {
    out.push_back(mod_data_.encode_phase(laser_.emit_one(), b ? pi : 0.0));
  }
  return out;
}

match_result pattern_matcher::match_optical(std::span<const field> data_wave,
                                            std::span<const tbit> pattern) {
  if (data_wave.size() != pattern.size() + 1 || pattern.empty()) {
    throw std::invalid_argument(
        "pattern_matcher: waveform must be pattern length + 1 (pilot)");
  }
  // Pilot-aided recovery: the pilot's phase is the carrier reference and
  // its power is the per-symbol reference power of the incoming word.
  const field pilot = data_wave[0];
  const double reference_power_mw = power_mw(pilot);
  if (reference_power_mw <= 0.0) {
    throw std::invalid_argument("pattern_matcher: pilot carries no power");
  }
  const field derotate = std::polar(1.0, -std::arg(pilot));

  // The pattern arm passes through the local pattern modulator (insertion
  // loss and all); pre-scale its launch power so both interferometer arms
  // land at the same power — arm imbalance would otherwise put a floor
  // under the mismatch metric.
  const double arm_compensation =
      db_to_ratio(config_.modulator.insertion_loss_db);

  std::size_t cared = 0;
  waveform arm_data, arm_pattern;
  arm_data.reserve(pattern.size());
  arm_pattern.reserve(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == tbit::wildcard) {
      arm_data.push_back(field{0.0, 0.0});
      arm_pattern.push_back(field{0.0, 0.0});
      continue;
    }
    ++cared;
    arm_data.push_back(data_wave[i + 1] * derotate);
    const double pattern_phase = pattern[i] == tbit::one ? pi : 0.0;
    arm_pattern.push_back(mod_pattern_.encode_phase(
        make_field(reference_power_mw * arm_compensation), pattern_phase));
  }
  if (cared == 0) {
    throw std::invalid_argument(
        "pattern_matcher: pattern must have at least one cared bit");
  }
  return interfere_and_decide(arm_data, arm_pattern, cared);
}

std::vector<std::size_t> pattern_matcher::scan(
    std::span<const std::uint8_t> stream_bits, std::span<const tbit> pattern,
    std::size_t stride_bits) {
  std::vector<std::size_t> hits;
  if (pattern.empty() || stream_bits.size() < pattern.size() ||
      stride_bits == 0) {
    return hits;
  }
  for (std::size_t off = 0; off + pattern.size() <= stream_bits.size();
       off += stride_bits) {
    const match_result r =
        match_ternary(stream_bits.subspan(off, pattern.size()), pattern);
    if (r.matched) hits.push_back(off);
  }
  return hits;
}

}  // namespace onfiber::phot
