#include "photonics/engine/dot_product_unit.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "photonics/simd.hpp"

namespace onfiber::phot {

namespace {

/// Split a signed [-1,1] vector into non-negative rails (x+, x-).
void split_rails(std::span<const double> x, std::vector<double>& pos,
                 std::vector<double>& neg) {
  pos.resize(x.size());
  neg.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    pos[i] = x[i] > 0.0 ? x[i] : 0.0;
    neg[i] = x[i] < 0.0 ? -x[i] : 0.0;
  }
}

void require_pair(std::size_t a, std::size_t b) {
  if (a != b || a == 0) {
    throw std::invalid_argument(
        "dot_product_unit: vectors must be non-empty and equal length");
  }
}

}  // namespace

dot_product_unit::dot_product_unit(dot_product_config config,
                                   std::uint64_t seed, energy_ledger* ledger,
                                   energy_costs costs)
    : config_([&] {
        // The laser's symbol rate must match the compute symbol rate so
        // RIN is integrated over the right bandwidth.
        config.laser.symbol_rate_hz = config.symbol_rate_hz;
        config.detector.noise.bandwidth_hz = config.symbol_rate_hz;
        return config;
      }()),
      laser_(config_.laser, rng{seed}, ledger, costs),
      mod_a_(config_.modulator, /*bias_rad=*/0.0, rng{seed ^ 0x1111}, ledger,
             costs),
      mod_b_(config_.modulator, /*bias_rad=*/0.0, rng{seed ^ 0x2222}, ledger,
             costs),
      detector_(config_.detector, rng{seed ^ 0x3333}, ledger, costs),
      dac_a_(config_.dac, rng{seed ^ 0x4444}, ledger, costs),
      dac_b_(config_.dac, rng{seed ^ 0x5555}, ledger, costs),
      adc_out_(config_.adc, rng{seed ^ 0x6666}, ledger, costs),
      ledger_(ledger),
      costs_(costs) {}

double dot_product_unit::full_scale_power_mw() const {
  // Both modulators at unit transmission leave only their insertion loss.
  return config_.laser.power_mw *
         db_to_ratio(-2.0 * config_.modulator.insertion_loss_db);
}

dot_result dot_product_unit::read_out(const waveform& products,
                                      double full_scale_mw,
                                      std::size_t length) {
  return read_out_current(detector_.integrate(products), full_scale_mw,
                          length);
}

dot_result dot_product_unit::read_out_power(std::span<const double> product_mw,
                                            double full_scale_mw,
                                            std::size_t length) {
  return read_out_current(detector_.integrate_power(product_mw),
                          full_scale_mw, length);
}

dot_result dot_product_unit::read_out_current(double current_a,
                                              double full_scale_mw,
                                              std::size_t length) {
  const double full_scale_a = detector_.expected_current_a(full_scale_mw);

  // ADC sees the photocurrent normalized to the calibrated full scale.
  const double normalized =
      full_scale_a > 0.0 ? current_a / full_scale_a : 0.0;
  const double digitized = adc_out_.convert(normalized);

  // Undo calibration: digitized * i_fs ~= R * mean(P) + dark, so the mean
  // product is recoverable, and the dot product is mean * n. A dead
  // carrier (zero full-scale power) carries no information: read zero
  // rather than dividing by it.
  const double responsivity_term =
      detector_.config().responsivity_a_w * full_scale_mw * 1e-3;
  const double recovered_mean =
      responsivity_term > 0.0
          ? (digitized * full_scale_a - detector_.config().dark_current_a) /
                responsivity_term
          : 0.0;
  const double n = static_cast<double>(length);

  dot_result r;
  r.value = recovered_mean * n;
  r.symbols = length;
  r.latency_s = n / config_.symbol_rate_hz + config_.fixed_latency_s;
  if (ledger_ != nullptr) {
    // Optical energy of the analog MACs themselves (paper §2.2 number).
    ledger_->charge("photonic_mac", costs_.photonic_mac_j * n,
                    static_cast<std::uint64_t>(length));
  }
  return r;
}

dot_result dot_product_unit::dot_unit_range(std::span<const double> a,
                                            std::span<const double> b) {
  require_pair(a.size(), b.size());
  const std::size_t n = a.size();

  // Batched device passes. Each device owns an independent noise stream,
  // so running devices batch-by-batch (instead of symbol-by-symbol) leaves
  // every stream's draw order unchanged.
  scratch_.dac_a.resize(n);
  scratch_.dac_b.resize(n);
  scratch_.trans_a.resize(n);
  scratch_.trans_b.resize(n);
  scratch_.power.resize(n);
  scratch_.product.resize(n);

  dac_a_.convert(a, scratch_.dac_a, scratch_.dac_noise_a);
  dac_b_.convert(b, scratch_.dac_b, scratch_.dac_noise_b);
  laser_.emit_powers(scratch_.power);
  mod_a_.encode_intensity(scratch_.dac_a, scratch_.trans_a);
  mod_b_.encode_intensity(scratch_.dac_b, scratch_.trans_b);

  // Product pass: P_i = P_laser,i * T_a,i * T_b,i. This is the
  // cascaded-MZM intensity product the field pipeline computes, minus the
  // phasor bookkeeping a square-law detector cannot see. Dispatched to
  // the active SIMD level.
  simd::active().triple_product(scratch_.power.data(), scratch_.trans_a.data(),
                                scratch_.trans_b.data(), n,
                                scratch_.product.data());
  return read_out_power(scratch_.product, full_scale_power_mw(), n);
}

dot_result dot_product_unit::dot_unit_range_scalar(std::span<const double> a,
                                                   std::span<const double> b) {
  require_pair(a.size(), b.size());
  waveform products;
  products.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = dac_a_.convert(a[i]);
    const double xb = dac_b_.convert(b[i]);
    field e = laser_.emit_one();
    e = mod_a_.encode_unit(e, xa);
    e = mod_b_.encode_unit(e, xb);
    products.push_back(e);
  }
  return read_out(products, full_scale_power_mw(), a.size());
}

void dot_product_unit::skip_signed_samples(std::uint64_t samples,
                                           std::uint64_t dim) {
  // Per dot_signed_rails sample of dimension n: four dot_unit_range
  // passes, each consuming n DAC-a, n DAC-b, n RIN and n phase indices
  // plus one detector readout and one ADC conversion.
  const std::uint64_t per_device = 4 * samples * dim;
  dac_a_.skip_draws(per_device);
  dac_b_.skip_draws(per_device);
  laser_.skip_symbols(per_device);
  detector_.skip_readouts(4 * samples);
  adc_out_.skip_draws(4 * samples);
}

dot_result dot_product_unit::dot_signed(std::span<const double> a,
                                        std::span<const double> b) {
  split_rails(a, scratch_.rail_a_pos, scratch_.rail_a_neg);
  split_rails(b, scratch_.rail_b_pos, scratch_.rail_b_neg);
  return dot_signed_rails(scratch_.rail_a_pos, scratch_.rail_a_neg,
                          scratch_.rail_b_pos, scratch_.rail_b_neg);
}

dot_result dot_product_unit::dot_signed_rails(std::span<const double> a_pos,
                                              std::span<const double> a_neg,
                                              std::span<const double> b_pos,
                                              std::span<const double> b_neg) {
  const dot_result pp = dot_unit_range(a_pos, b_pos);
  const dot_result nn = dot_unit_range(a_neg, b_neg);
  const dot_result pn = dot_unit_range(a_pos, b_neg);
  const dot_result np = dot_unit_range(a_neg, b_pos);

  dot_result r;
  r.value = pp.value + nn.value - pn.value - np.value;
  r.symbols = pp.symbols + nn.symbols + pn.symbols + np.symbols;
  r.latency_s = pp.latency_s + nn.latency_s + pn.latency_s + np.latency_s;
  return r;
}

dot_result dot_product_unit::dot_unit_range_averaged(
    std::span<const double> a, std::span<const double> b, int repeats) {
  if (repeats < 1) {
    throw std::invalid_argument(
        "dot_product_unit: repeats must be positive");
  }
  dot_result acc;
  for (int k = 0; k < repeats; ++k) {
    const dot_result r = dot_unit_range(a, b);
    acc.value += r.value;
    acc.latency_s += r.latency_s;
    acc.symbols += r.symbols;
  }
  acc.value /= static_cast<double>(repeats);
  return acc;
}

waveform dot_product_unit::encode_to_optical(std::span<const double> a) {
  waveform out;
  encode_to_optical(a, out);
  return out;
}

void dot_product_unit::encode_to_optical(std::span<const double> a,
                                         waveform& out) {
  // Launch path keeps the full field representation (the waveform really
  // travels down a fiber), but runs each device as one batch. Per-device
  // streams make this bit-identical to the symbol-by-symbol loop.
  scratch_.dac_a.resize(a.size());
  dac_a_.convert(a, scratch_.dac_a, scratch_.dac_noise_a);
  laser_.emit(a.size(), out);
  mod_a_.encode(scratch_.dac_a, out);
}

dot_result dot_product_unit::dot_with_optical_input(
    std::span<const field> optical_a, std::span<const double> b,
    double reference_power_mw) {
  if (optical_a.size() != b.size() || optical_a.empty()) {
    throw std::invalid_argument(
        "dot_product_unit: waveform/vector must be non-empty, equal length");
  }
  if (reference_power_mw <= 0.0) {
    throw std::invalid_argument(
        "dot_product_unit: reference power must be positive");
  }
  const std::size_t n = optical_a.size();
  scratch_.dac_b.resize(n);
  scratch_.trans_b.resize(n);
  scratch_.product.resize(n);

  dac_b_.convert(b, scratch_.dac_b, scratch_.dac_noise_b);
  mod_b_.encode_intensity(scratch_.dac_b, scratch_.trans_b);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_.product[i] = power_mw(optical_a[i]) * scratch_.trans_b[i];
  }
  // Full scale: the incoming reference power through the b modulator.
  const double full_scale_mw =
      reference_power_mw * db_to_ratio(-config_.modulator.insertion_loss_db);
  return read_out_power(scratch_.product, full_scale_mw, n);
}

}  // namespace onfiber::phot
