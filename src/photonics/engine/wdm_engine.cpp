#include "photonics/engine/wdm_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace onfiber::phot {

wdm_gemv_engine::wdm_gemv_engine(dot_product_config config, std::size_t lanes,
                                 std::uint64_t seed, energy_ledger* ledger,
                                 energy_costs costs,
                                 double adjacent_crosstalk_db)
    : config_(config),
      crosstalk_ratio_(db_to_ratio(adjacent_crosstalk_db)) {
  if (lanes == 0) {
    throw std::invalid_argument("wdm_gemv_engine: need >= 1 lane");
  }
  if (adjacent_crosstalk_db > 0.0) {
    throw std::invalid_argument(
        "wdm_gemv_engine: crosstalk must be <= 0 dB");
  }
  lanes_.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    dot_product_config lane_cfg = config;
    // Each lane rides its own 100 GHz grid slot.
    wdm_channel ch;
    ch.index = static_cast<int>(lane);
    lane_cfg.laser.wavelength_m = ch.center_wavelength_m();
    lanes_.push_back(std::make_unique<dot_product_unit>(
        lane_cfg, seed ^ (0x9e3779b97f4a7c15ULL * (lane + 1)), ledger,
        costs));
  }
}

gemv_result wdm_gemv_engine::gemv_signed(const matrix& w,
                                         std::span<const double> x) {
  if (w.cols != x.size() || w.rows == 0) {
    throw std::invalid_argument("wdm_gemv_engine: shape mismatch");
  }
  gemv_result out;
  out.values.assign(w.rows, 0.0);
  std::vector<double> lane_latency(lanes_.size(), 0.0);
  for (std::size_t r = 0; r < w.rows; ++r) {
    const std::size_t lane = r % lanes_.size();
    const dot_result d = lanes_[lane]->dot_signed(w.row(r), x);
    out.values[r] = d.value;
    lane_latency[lane] += d.latency_s;
    out.symbols += d.symbols;
  }
  // Adjacent-channel crosstalk: rows detected concurrently on
  // neighboring wavelengths leak a fraction of their power into each
  // other's detectors. Rows r-1/r+1 (mod lane striping) are the grid
  // neighbors of row r within the same evaluation round.
  if (crosstalk_ratio_ > 0.0 && lanes_.size() > 1) {
    const std::vector<double> clean = out.values;
    for (std::size_t r = 0; r < w.rows; ++r) {
      const std::size_t round = r / lanes_.size();
      double leak = 0.0;
      if (r > 0 && (r - 1) / lanes_.size() == round) leak += clean[r - 1];
      if (r + 1 < w.rows && (r + 1) / lanes_.size() == round) {
        leak += clean[r + 1];
      }
      out.values[r] += crosstalk_ratio_ * leak;
    }
  }
  out.latency_s =
      *std::max_element(lane_latency.begin(), lane_latency.end());
  return out;
}

double wdm_gemv_engine::peak_mac_rate() const {
  return static_cast<double>(lanes_.size()) * config_.symbol_rate_hz / 4.0;
}

}  // namespace onfiber::phot
