// nonlinear_unit.hpp — P3: photonic nonlinear function (paper Fig. 2c).
//
// Implementation follows Bandyopadhyay et al. [9] as described in §2.1: a
// tap splits off a fraction of the incoming light onto a photodetector;
// the resulting photocurrent, through a transimpedance stage, drives a
// modulator sitting on the through path. With the modulator biased at its
// null, low input powers keep the through path dark and high input powers
// open it — a ReLU-like transfer realized entirely with devices already
// present in a transponder.
//
// The electro-optic transfer is
//     P_out = P_in * (1 - tap) * IL * sin^2( (pi/2) * g * R * tap * P_in / V_pi )
// which for small arguments is quadratic (soft knee) and saturates at
// full transmission — qualitatively the "ReLU-like function" of [9].
#pragma once

#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/modulator.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

struct nonlinear_config {
  modulator_config modulator{};
  photodetector_config detector{};
  double tap_ratio = 0.1;          ///< optical fraction sent to the tap PD
  /// Volts of modulator drive per amp of tap photocurrent. The default is
  /// chosen so a 10 mW full-scale input drives the modulator to V_pi
  /// (full transmission): 10 mW * 0.1 tap * 1 A/W * 4e3 V/A = 4 V = V_pi.
  double transimpedance_v_a = 4.0e3;
  double drive_offset_v = 0.0;     ///< electrical offset shifting the knee
  double symbol_rate_hz = 10e9;
};

/// P3 primitive: per-sample optical activation function.
class nonlinear_unit {
 public:
  nonlinear_unit(nonlinear_config config, std::uint64_t seed,
                 energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Apply the activation to one optical sample (noise included).
  [[nodiscard]] field apply(field in);

  /// Apply to a whole waveform.
  [[nodiscard]] waveform apply(std::span<const field> in);

  /// Noiseless transfer curve: output power for a given input power [mW].
  /// Tests and the Fig. 2c bench sample this.
  [[nodiscard]] double transfer_mw(double input_power_mw) const;

  /// Digital-value activation used by DNN layers: `x` is the input as a
  /// fraction of `full_scale_mw` optical power; returns the output power
  /// as a fraction of the same scale (noisy, physical path).
  [[nodiscard]] double activate(double x, double full_scale_mw);

  [[nodiscard]] const nonlinear_config& config() const { return config_; }

 private:
  nonlinear_config config_;
  mzm_modulator through_mod_;
  photodetector tap_detector_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
