#include "photonics/engine/nonlinear_unit.hpp"

#include <cmath>
#include <numbers>

namespace onfiber::phot {

namespace {
constexpr double pi = std::numbers::pi;
}

nonlinear_unit::nonlinear_unit(nonlinear_config config, std::uint64_t seed,
                               energy_ledger* ledger, energy_costs costs)
    : config_([&] {
        config.detector.noise.bandwidth_hz = config.symbol_rate_hz;
        return config;
      }()),
      // Biased at the null: zero drive -> zero transmission.
      through_mod_(config_.modulator, /*bias_rad=*/pi, rng{seed ^ 0x7777},
                   ledger, costs),
      tap_detector_(config_.detector, rng{seed ^ 0x8888}, ledger, costs),
      ledger_(ledger),
      costs_(costs) {}

field nonlinear_unit::apply(field in) {
  // Tap a fraction of the optical power onto the control photodetector.
  const double tap_scale = std::sqrt(config_.tap_ratio);
  const double through_scale = std::sqrt(1.0 - config_.tap_ratio);
  const field tap_field = in * tap_scale;
  const field through_field = in * through_scale;

  const double tap_current_a = tap_detector_.detect(tap_field);
  const double drive_v =
      config_.transimpedance_v_a * tap_current_a + config_.drive_offset_v;
  return through_mod_.modulate(through_field, drive_v);
}

waveform nonlinear_unit::apply(std::span<const field> in) {
  waveform out;
  out.reserve(in.size());
  for (const field& e : in) out.push_back(apply(e));
  return out;
}

double nonlinear_unit::transfer_mw(double input_power_mw) const {
  const double tap_power_mw = input_power_mw * config_.tap_ratio;
  const double through_power_mw = input_power_mw * (1.0 - config_.tap_ratio);
  const double tap_current_a =
      tap_detector_.expected_current_a(tap_power_mw);
  const double drive_v =
      config_.transimpedance_v_a * tap_current_a + config_.drive_offset_v;
  return through_power_mw * through_mod_.intensity_transfer(drive_v);
}

double nonlinear_unit::activate(double x, double full_scale_mw) {
  const double clamped = x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  const field in = make_field(clamped * full_scale_mw);
  const field out = apply(in);
  // Normalize by the unit's own peak output so activations stay in [0,1].
  const double peak = transfer_mw(full_scale_mw);
  if (peak <= 0.0) return 0.0;
  const double y = power_mw(out) / peak;
  return y < 0.0 ? 0.0 : (y > 1.0 ? 1.0 : y);
}

}  // namespace onfiber::phot
