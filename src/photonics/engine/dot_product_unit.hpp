// dot_product_unit.hpp — P1: photonic vector dot product (paper Fig. 2a).
//
// Physics of the primitive (following Feldmann et al. [19] and Sludds et
// al. [50] as cited by the paper):
//   1. a DAC converts each element a_i to a drive voltage,
//   2. an MZM encodes a_i as the intensity transmission of the carrier,
//   3. a second, back-to-back MZM multiplies by b_i (element-wise product
//      in the analog intensity domain),
//   4. a photodetector integrates the symbol train — analog accumulation —
//      yielding a photocurrent proportional to sum_i a_i * b_i,
//   5. an ADC digitizes the result.
//
// Signed values use the standard differential (positive/negative rail)
// decomposition: x = x+ - x-, so a·b expands into four non-negative
// passes. `dot_signed` hides this; `dot_unit_range` is the raw primitive.
//
// On-fiber mode: when the data is *already optical* (arriving from the
// fiber, per the paper's receive-path design in Fig. 4) the a-side DAC and
// modulator are skipped — `dot_with_optical_input` starts from a waveform
// whose per-symbol power encodes a_i. This is the paper's key saving and
// is what bench E17 ablates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/converter.hpp"
#include "photonics/energy.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

struct dot_product_config {
  laser_config laser{};
  modulator_config modulator{};
  photodetector_config detector{};
  converter_config dac{};
  converter_config adc{};
  double symbol_rate_hz = 10e9;   ///< analog compute rate
  double fixed_latency_s = 5e-9;  ///< optical path + driver latency
};

/// Result of one analog dot-product evaluation.
struct dot_result {
  double value = 0.0;        ///< estimated dot product (caller's scale)
  double latency_s = 0.0;    ///< analog evaluation time
  std::uint64_t symbols = 0; ///< optical symbols consumed
};

/// P1 primitive. One instance owns its devices and noise streams; a single
/// experiment seed makes every evaluation reproducible.
class dot_product_unit {
 public:
  dot_product_unit(dot_product_config config, std::uint64_t seed,
                   energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Dot product of two vectors with elements in [0, 1].
  /// Requires a.size() == b.size() and both non-empty.
  ///
  /// Hot path: fused intensity-domain kernel. Device noise streams are
  /// consumed in the same per-device order as the element-wise reference
  /// path, but the computation stays in the power domain (a square-law
  /// detector cannot observe phase) and reuses the scratch arena — no
  /// allocations after warm-up, no per-sample transcendentals when the
  /// modulator bias is calibrated.
  [[nodiscard]] dot_result dot_unit_range(std::span<const double> a,
                                          std::span<const double> b);

  /// Element-wise reference implementation of `dot_unit_range`: walks the
  /// full field-domain pipeline one symbol at a time. Numerically agrees
  /// with the fused kernel to floating-point rounding (tests pin this);
  /// kept as the correctness oracle and the bench baseline.
  [[nodiscard]] dot_result dot_unit_range_scalar(std::span<const double> a,
                                                 std::span<const double> b);

  /// Dot product of two vectors with elements in [-1, 1], via the
  /// differential four-pass decomposition.
  [[nodiscard]] dot_result dot_signed(std::span<const double> a,
                                      std::span<const double> b);

  /// dot_signed with the rails already split. The batched GEMM path uses
  /// this to split each weight row once and stream many sample rails
  /// through it; `dot_signed` is exactly `split + dot_signed_rails`, so a
  /// batch of one is bit-identical to the unbatched call. Rail spans must
  /// be non-empty, equal length, and must not alias this unit's scratch.
  [[nodiscard]] dot_result dot_signed_rails(std::span<const double> a_pos,
                                            std::span<const double> a_neg,
                                            std::span<const double> b_pos,
                                            std::span<const double> b_neg);

  /// §4 noise mitigation ("new algorithms to mitigate photonic noise
  /// during computation"): repeat the analog evaluation `repeats` times
  /// and average. Analog noise shrinks ~1/sqrt(repeats); the readout
  /// quantization floor is also averaged down because laser RIN dithers
  /// the ADC input across repetitions. Latency scales with repeats.
  [[nodiscard]] dot_result dot_unit_range_averaged(std::span<const double> a,
                                                   std::span<const double> b,
                                                   int repeats);

  /// On-fiber variant: `optical_a` is the incoming waveform whose sample
  /// powers encode a_i in [0,1] relative to `reference_power_mw` (the
  /// calibrated full-scale receive power). Only the b-side modulator and
  /// the shared detector/ADC run; no a-side DAC conversion is charged.
  [[nodiscard]] dot_result dot_with_optical_input(
      std::span<const field> optical_a, std::span<const double> b,
      double reference_power_mw);

  /// Encode a [0,1] vector onto the carrier as an optical waveform — the
  /// transmit half of the on-fiber story (used by transponders to launch
  /// compute data).
  [[nodiscard]] waveform encode_to_optical(std::span<const double> a);

  /// Same, writing into caller-owned storage (resized to a.size()) so
  /// repeated launches reuse one buffer.
  void encode_to_optical(std::span<const double> a, waveform& out);

  /// Advance every device noise stream past `samples` signed-rail dot
  /// products of dimension `dim`, in O(1), without computing anything:
  /// each dot_signed_rails call consumes exactly 4*dim draw indices on
  /// the a/b DACs and the laser's RIN/phase streams, and 4 on the
  /// detector and output ADC. Only valid for the intensity-domain fused
  /// path (the laser's phase accumulator is not walked forward). The
  /// batched GEMM uses this to split one row's sample range into
  /// independent work cells that still draw the exact indices the serial
  /// loop would.
  void skip_signed_samples(std::uint64_t samples, std::uint64_t dim);

  /// Calibrated full-scale receive power of this unit's own encode path
  /// [mW]: power seen when encoding 1.0 through both modulators at b=1.
  [[nodiscard]] double full_scale_power_mw() const;

  [[nodiscard]] const dot_product_config& config() const { return config_; }

 private:
  /// Reusable buffers for the fused kernels. Owned by the unit and resized
  /// monotonically: after the first call at a given length every evaluation
  /// is allocation-free.
  struct kernel_scratch {
    std::vector<double> rail_a_pos, rail_a_neg;  ///< signed-input rails
    std::vector<double> rail_b_pos, rail_b_neg;
    std::vector<double> dac_a, dac_b;      ///< post-DAC drive levels
    std::vector<double> dac_noise_a, dac_noise_b;  ///< DAC two-pass draws
    std::vector<double> trans_a, trans_b;  ///< MZM intensity transmissions
    std::vector<double> power;             ///< laser per-symbol powers [mW]
    std::vector<double> product;           ///< per-symbol product powers [mW]
  };

  /// Shared analog core: waveform of per-symbol products -> scalar.
  [[nodiscard]] dot_result read_out(const waveform& products,
                                    double full_scale_mw,
                                    std::size_t length);

  /// Intensity-domain twin: per-symbol product powers -> scalar.
  [[nodiscard]] dot_result read_out_power(std::span<const double> product_mw,
                                          double full_scale_mw,
                                          std::size_t length);

  /// Common back half: integrated photocurrent -> digitized dot result.
  [[nodiscard]] dot_result read_out_current(double current_a,
                                            double full_scale_mw,
                                            std::size_t length);

  dot_product_config config_;
  laser laser_;
  mzm_modulator mod_a_;
  mzm_modulator mod_b_;
  photodetector detector_;
  dac dac_a_;
  dac dac_b_;
  adc adc_out_;
  kernel_scratch scratch_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
