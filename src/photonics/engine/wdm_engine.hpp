// wdm_engine.hpp — wavelength-parallel GEMV engine.
//
// The single dot-product unit is one wavelength lane; published photonic
// accelerators ([50], Lightning [71]) fan the same input out over many
// wavelengths and evaluate many weight rows concurrently. This engine
// models that: N lanes (each its own laser wavelength, modulators and
// detector) evaluate rows round-robin, so GEMV latency is the slowest
// lane's serial share instead of the full row count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/wdm.hpp"

namespace onfiber::phot {

class wdm_gemv_engine {
 public:
  /// `lanes` parallel dot-product units on a 100 GHz grid starting at
  /// grid index 0; each lane gets an independent noise stream derived
  /// from `seed`. `adjacent_crosstalk_db` models imperfect demux
  /// isolation: each lane's detected value leaks into its neighbors at
  /// the given (negative-dB) power ratio; -100 dB effectively disables
  /// it, real AWG demuxes sit around -25 to -35 dB.
  wdm_gemv_engine(dot_product_config config, std::size_t lanes,
                  std::uint64_t seed, energy_ledger* ledger = nullptr,
                  energy_costs costs = {},
                  double adjacent_crosstalk_db = -100.0);

  /// y = W x, signed, rows distributed round-robin over the lanes.
  /// Latency is the maximum per-lane serial latency (lanes run
  /// concurrently); energy is the sum over all lanes.
  [[nodiscard]] gemv_result gemv_signed(const matrix& w,
                                        std::span<const double> x);

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  /// Aggregate MAC throughput at the configured symbol rate [MAC/s]:
  /// lanes x symbol rate (a signed GEMV uses 4 symbols per MAC).
  [[nodiscard]] double peak_mac_rate() const;

 private:
  dot_product_config config_;
  std::vector<std::unique_ptr<dot_product_unit>> lanes_;
  double crosstalk_ratio_ = 0.0;  ///< linear power leak between neighbors
};

}  // namespace onfiber::phot
