#include "photonics/engine/vector_matrix_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/scoped_timer.hpp"
#include "photonics/kernels.hpp"

namespace onfiber::phot {

namespace {
// Lazily resolved stage-timing histograms (the engine is constructed
// long before tracing may be flipped on).
obs::histogram& gemv_wall_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("kernel.gemv_wall_s");
  return h;
}
obs::histogram& gemm_wall_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("kernel.gemm_wall_s");
  return h;
}
}  // namespace

vector_matrix_engine::vector_matrix_engine(dot_product_config config,
                                           std::uint64_t seed,
                                           energy_ledger* ledger,
                                           energy_costs costs)
    : config_(config),
      ledger_(ledger),
      costs_(costs),
      unit_(config, seed, ledger, costs),
      row_seed_stream_(seed ^ 0x726f7773ULL /* "rows" */) {}

gemv_result vector_matrix_engine::run_gemv(const matrix& w,
                                           std::span<const double> x,
                                           bool signed_inputs) {
  if (w.cols != x.size() || w.rows == 0) {
    throw std::invalid_argument("vector_matrix_engine: shape mismatch");
  }
  const obs::scoped_timer timer(gemv_wall_hist());
  const std::size_t rows = w.rows;

  // Fork every row's seed up front, in row order: the only RNG state the
  // workers touch afterwards is row-private, so scheduling cannot change
  // any draw.
  std::vector<std::uint64_t> seeds(rows);
  for (std::uint64_t& s : seeds) s = row_seed_stream_();

  std::vector<dot_result> row_results(rows);
  std::vector<energy_ledger> row_ledgers(ledger_ != nullptr ? rows : 0);

  parallel_rows(rows, kernel_thread_count(threads_override_),
                [&](std::size_t r) {
                  dot_product_unit unit(
                      config_, seeds[r],
                      ledger_ != nullptr ? &row_ledgers[r] : nullptr, costs_);
                  row_results[r] = signed_inputs
                                       ? unit.dot_signed(w.row(r), x)
                                       : unit.dot_unit_range(w.row(r), x);
                });

  gemv_result out;
  out.values.reserve(rows);
  for (const dot_result& d : row_results) {
    out.values.push_back(d.value);
    out.latency_s += d.latency_s;
    out.symbols += d.symbols;
  }
  if (ledger_ != nullptr) {
    // Merge in row order so the ledger's float sums are thread-invariant.
    for (const energy_ledger& l : row_ledgers) ledger_->merge(l);
  }
  return out;
}

gemm_result vector_matrix_engine::gemm_signed(const matrix& w,
                                              std::span<const double> xs) {
  if (w.rows == 0 || w.cols == 0 || xs.empty() ||
      xs.size() % w.cols != 0) {
    throw std::invalid_argument("vector_matrix_engine: gemm shape mismatch");
  }
  const obs::scoped_timer timer(gemm_wall_hist());
  const std::size_t rows = w.rows;
  const std::size_t cols = w.cols;
  const std::size_t batch = xs.size() / cols;

  // Exactly one seed fork per row, independent of batch size: a batch of
  // one advances the row-seed stream the same way gemv_signed does.
  std::vector<std::uint64_t> seeds(rows);
  for (std::uint64_t& s : seeds) s = row_seed_stream_();

  // Split every sample's rails once up front; rows share them read-only.
  std::vector<double> xs_pos(xs.size());
  std::vector<double> xs_neg(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs_pos[i] = xs[i] > 0.0 ? xs[i] : 0.0;
    xs_neg[i] = xs[i] < 0.0 ? -xs[i] : 0.0;
  }

  std::vector<dot_result> cells(rows * batch);

  // Work decomposition: rows x sample-chunks. The counter-based device
  // streams make draw index i addressable directly, so a chunk starting
  // at sample s0 seeks its unit's streams past s0 samples in O(1) and
  // then draws the exact indices the serial row loop would — splitting a
  // row across workers changes nothing but wall-clock time. The chunk
  // size is a fixed constant (NOT derived from the thread count), so the
  // cell structure — and with it every float fold — is identical at any
  // ONFIBER_THREADS value.
  constexpr std::size_t kSamplesPerCell = 8;
  const std::size_t chunks = (batch + kSamplesPerCell - 1) / kSamplesPerCell;
  const std::size_t n_cells = rows * chunks;
  std::vector<energy_ledger> cell_ledgers(ledger_ != nullptr ? n_cells : 0);

  parallel_rows(
      n_cells, kernel_thread_count(threads_override_), [&](std::size_t cell) {
        const std::size_t r = cell / chunks;
        const std::size_t chunk = cell % chunks;
        const std::size_t s_begin = chunk * kSamplesPerCell;
        const std::size_t s_end =
            std::min(batch, s_begin + kSamplesPerCell);
        dot_product_unit unit(
            config_, seeds[r],
            ledger_ != nullptr ? &cell_ledgers[cell] : nullptr, costs_);
        unit.skip_signed_samples(s_begin, cols);
        // Split this row's weight rails once per cell; every sample then
        // streams through the same rails on the unit's noise streams.
        const auto row = w.row(r);
        std::vector<double> w_pos(cols);
        std::vector<double> w_neg(cols);
        for (std::size_t c = 0; c < cols; ++c) {
          w_pos[c] = row[c] > 0.0 ? row[c] : 0.0;
          w_neg[c] = row[c] < 0.0 ? -row[c] : 0.0;
        }
        for (std::size_t s = s_begin; s < s_end; ++s) {
          const std::span<const double> xp(xs_pos.data() + s * cols, cols);
          const std::span<const double> xn(xs_neg.data() + s * cols, cols);
          cells[r * batch + s] = unit.dot_signed_rails(w_pos, w_neg, xp, xn);
        }
      });

  gemm_result out;
  out.batch = batch;
  out.values.assign(batch * rows, 0.0);
  // Fold rows-outer / samples-inner — a fixed order, so aggregate float
  // sums are thread-invariant and a batch of one folds exactly like gemv.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t s = 0; s < batch; ++s) {
      const dot_result& d = cells[r * batch + s];
      out.values[s * rows + r] = d.value;
      out.latency_s += d.latency_s;
      out.symbols += d.symbols;
    }
  }
  if (ledger_ != nullptr) {
    // Merge in (row, chunk) order — fixed, thread-invariant.
    for (const energy_ledger& l : cell_ledgers) ledger_->merge(l);
  }
  return out;
}

gemv_result vector_matrix_engine::gemv_signed(const matrix& w,
                                              std::span<const double> x) {
  return run_gemv(w, x, /*signed_inputs=*/true);
}

gemv_result vector_matrix_engine::gemv_unit_range(const matrix& w,
                                                  std::span<const double> x) {
  return run_gemv(w, x, /*signed_inputs=*/false);
}

std::vector<double> gemv_reference(const matrix& w,
                                   std::span<const double> x) {
  if (w.cols != x.size()) {
    throw std::invalid_argument("gemv_reference: shape mismatch");
  }
  std::vector<double> y(w.rows, 0.0);
  for (std::size_t r = 0; r < w.rows; ++r) {
    double acc = 0.0;
    const auto row = w.row(r);
    for (std::size_t c = 0; c < w.cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace onfiber::phot
