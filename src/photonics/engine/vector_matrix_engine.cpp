#include "photonics/engine/vector_matrix_engine.hpp"

#include <stdexcept>

#include "photonics/kernels.hpp"

namespace onfiber::phot {

vector_matrix_engine::vector_matrix_engine(dot_product_config config,
                                           std::uint64_t seed,
                                           energy_ledger* ledger,
                                           energy_costs costs)
    : config_(config),
      ledger_(ledger),
      costs_(costs),
      unit_(config, seed, ledger, costs),
      row_seed_stream_(seed ^ 0x726f7773ULL /* "rows" */) {}

gemv_result vector_matrix_engine::run_gemv(const matrix& w,
                                           std::span<const double> x,
                                           bool signed_inputs) {
  if (w.cols != x.size() || w.rows == 0) {
    throw std::invalid_argument("vector_matrix_engine: shape mismatch");
  }
  const std::size_t rows = w.rows;

  // Fork every row's seed up front, in row order: the only RNG state the
  // workers touch afterwards is row-private, so scheduling cannot change
  // any draw.
  std::vector<std::uint64_t> seeds(rows);
  for (std::uint64_t& s : seeds) s = row_seed_stream_();

  std::vector<dot_result> row_results(rows);
  std::vector<energy_ledger> row_ledgers(ledger_ != nullptr ? rows : 0);

  parallel_rows(rows, kernel_thread_count(threads_override_),
                [&](std::size_t r) {
                  dot_product_unit unit(
                      config_, seeds[r],
                      ledger_ != nullptr ? &row_ledgers[r] : nullptr, costs_);
                  row_results[r] = signed_inputs
                                       ? unit.dot_signed(w.row(r), x)
                                       : unit.dot_unit_range(w.row(r), x);
                });

  gemv_result out;
  out.values.reserve(rows);
  for (const dot_result& d : row_results) {
    out.values.push_back(d.value);
    out.latency_s += d.latency_s;
    out.symbols += d.symbols;
  }
  if (ledger_ != nullptr) {
    // Merge in row order so the ledger's float sums are thread-invariant.
    for (const energy_ledger& l : row_ledgers) ledger_->merge(l);
  }
  return out;
}

gemv_result vector_matrix_engine::gemv_signed(const matrix& w,
                                              std::span<const double> x) {
  return run_gemv(w, x, /*signed_inputs=*/true);
}

gemv_result vector_matrix_engine::gemv_unit_range(const matrix& w,
                                                  std::span<const double> x) {
  return run_gemv(w, x, /*signed_inputs=*/false);
}

std::vector<double> gemv_reference(const matrix& w,
                                   std::span<const double> x) {
  if (w.cols != x.size()) {
    throw std::invalid_argument("gemv_reference: shape mismatch");
  }
  std::vector<double> y(w.rows, 0.0);
  for (std::size_t r = 0; r < w.rows; ++r) {
    double acc = 0.0;
    const auto row = w.row(r);
    for (std::size_t c = 0; c < w.cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace onfiber::phot
