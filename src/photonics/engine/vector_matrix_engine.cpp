#include "photonics/engine/vector_matrix_engine.hpp"

#include <stdexcept>

namespace onfiber::phot {

vector_matrix_engine::vector_matrix_engine(dot_product_config config,
                                           std::uint64_t seed,
                                           energy_ledger* ledger,
                                           energy_costs costs)
    : unit_(config, seed, ledger, costs) {}

gemv_result vector_matrix_engine::gemv_signed(const matrix& w,
                                              std::span<const double> x) {
  if (w.cols != x.size() || w.rows == 0) {
    throw std::invalid_argument("vector_matrix_engine: shape mismatch");
  }
  gemv_result out;
  out.values.reserve(w.rows);
  for (std::size_t r = 0; r < w.rows; ++r) {
    const dot_result d = unit_.dot_signed(w.row(r), x);
    out.values.push_back(d.value);
    out.latency_s += d.latency_s;
    out.symbols += d.symbols;
  }
  return out;
}

gemv_result vector_matrix_engine::gemv_unit_range(const matrix& w,
                                                  std::span<const double> x) {
  if (w.cols != x.size() || w.rows == 0) {
    throw std::invalid_argument("vector_matrix_engine: shape mismatch");
  }
  gemv_result out;
  out.values.reserve(w.rows);
  for (std::size_t r = 0; r < w.rows; ++r) {
    const dot_result d = unit_.dot_unit_range(w.row(r), x);
    out.values.push_back(d.value);
    out.latency_s += d.latency_s;
    out.symbols += d.symbols;
  }
  return out;
}

std::vector<double> gemv_reference(const matrix& w,
                                   std::span<const double> x) {
  if (w.cols != x.size()) {
    throw std::invalid_argument("gemv_reference: shape mismatch");
  }
  std::vector<double> y(w.rows, 0.0);
  for (std::size_t r = 0; r < w.rows; ++r) {
    double acc = 0.0;
    const auto row = w.row(r);
    for (std::size_t c = 0; c < w.cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace onfiber::phot
