// converter.hpp — DAC and ADC models (the digital/analog boundary).
//
// The paper's second §2.2 argument is that on-fiber computing avoids the
// per-hop DAC/ADC conversions conventional photonic accelerators pay.
// These models make that cost explicit: every conversion is quantized,
// clipped, jittered and charged to the energy ledger.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

struct converter_config {
  int bits = 8;              ///< nominal resolution
  double full_scale = 1.0;   ///< input/output range is [0, full_scale]
  double enob_penalty = 0.5; ///< effective-bits loss from jitter/nonlinearity
};

/// Digital-to-analog converter: maps a digital code in [0, full_scale]
/// onto an analog level with `bits` of quantization. (Codes are carried as
/// doubles already normalized by the driver.)
class dac {
 public:
  /// `noise_stream` keys the converter's counter-based noise stream (one
  /// u64 is drawn from it); every converted element consumes exactly one
  /// draw index, noisy or not, so stream position is a pure function of
  /// elements converted.
  dac(converter_config config, rng noise_stream,
      energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Convert one value. Clips to [0, full_scale], quantizes to the grid,
  /// and adds the ENOB-penalty noise.
  [[nodiscard]] double convert(double value);

  /// Batch convert into preallocated storage (`in.size()` values written
  /// to `out`). Bit-identical to the scalar loop; one bulk ledger charge.
  /// Two-pass: a counter-indexed noise fill into `noise_scratch` (same
  /// draw indices as the scalar path, but generated branch-free through
  /// the dispatched SIMD kernel), then a branch-free math pass over
  /// contiguous data — both passes vectorize at the active ISA level.
  void convert(std::span<const double> in, std::span<double> out,
               std::vector<double>& noise_scratch);
  void convert(std::span<const double> in, std::span<double> out);

  [[nodiscard]] std::vector<double> convert(std::span<const double> values);

  /// Advance the noise stream past `elements` conversions in O(1).
  void skip_draws(std::uint64_t elements) { noise_.skip(elements); }

  [[nodiscard]] const converter_config& config() const { return config_; }

  /// Quantization step size.
  [[nodiscard]] double lsb() const { return lsb_; }

  /// Effective resolution implied by the modeled noise: the configured
  /// quantization floor plus the ENOB-penalty Gaussian, folded back into
  /// bits — log2(full_scale / (total_rms * sqrt(12))). Reported by the
  /// benches next to ns/MAC.
  [[nodiscard]] double effective_bits() const;

 private:
  [[nodiscard]] double convert_core(double value);

  converter_config config_;
  counter_stream noise_;
  double lsb_;
  double noise_sigma_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
  std::vector<double> noise_scratch_;
};

/// Analog-to-digital converter: same model in the opposite direction.
class adc {
 public:
  adc(converter_config config, rng noise_stream,
      energy_ledger* ledger = nullptr, energy_costs costs = {});

  [[nodiscard]] double convert(double value);

  /// Batch convert into preallocated storage; see dac::convert for the
  /// two-pass (noise fill, then branch-free math) structure.
  void convert(std::span<const double> in, std::span<double> out,
               std::vector<double>& noise_scratch);
  void convert(std::span<const double> in, std::span<double> out);

  [[nodiscard]] std::vector<double> convert(std::span<const double> values);

  /// Advance the noise stream past `elements` conversions in O(1).
  void skip_draws(std::uint64_t elements) { noise_.skip(elements); }

  [[nodiscard]] const converter_config& config() const { return config_; }
  [[nodiscard]] double lsb() const { return lsb_; }

  /// Effective resolution implied by the modeled noise (see dac).
  [[nodiscard]] double effective_bits() const;

 private:
  [[nodiscard]] double convert_core(double value);

  converter_config config_;
  counter_stream noise_;
  double lsb_;
  double noise_sigma_;
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
  std::vector<double> noise_scratch_;
};

/// Shared quantizer math: clip to [0, full_scale] and snap to an N-bit grid.
[[nodiscard]] double quantize_to_grid(double value, double full_scale,
                                      int bits);

/// RMS quantization noise of an N-bit converter over [0, full_scale]:
/// lsb / sqrt(12). Used by tests to bound observed error analytically.
[[nodiscard]] double quantization_noise_rms(double full_scale, int bits);

}  // namespace onfiber::phot
