// fiber.hpp — fiber span model: attenuation + propagation delay (+ ASE
// noise when an inline EDFA compensates the span loss).
#pragma once

#include <span>
#include <vector>

#include "photonics/optical.hpp"
#include "photonics/rng.hpp"
#include "photonics/units.hpp"

namespace onfiber::phot {

struct fiber_config {
  double length_km = 80.0;
  double attenuation_db_km = 0.2;   ///< SMF-28 @1550nm
  bool amplified = false;           ///< EDFA at span end restores power
  double amplifier_noise_figure_db = 5.0;
  double symbol_rate_hz = 10e9;     ///< for ASE noise bandwidth
  double wavelength_m = c_band_wavelength;
};

/// Propagate a waveform through one fiber span.
class fiber_span {
 public:
  fiber_span(fiber_config config, rng noise_stream);

  /// Apply loss (and, if amplified, gain + ASE noise) to each sample.
  [[nodiscard]] waveform propagate(std::span<const field> in);

  /// One-way latency of this span [s].
  [[nodiscard]] double delay_s() const {
    return fiber_delay_s(config_.length_km);
  }

  /// Total span loss [dB].
  [[nodiscard]] double loss_db() const {
    return config_.length_km * config_.attenuation_db_km;
  }

  [[nodiscard]] const fiber_config& config() const { return config_; }

 private:
  fiber_config config_;
  counter_stream ase_;  ///< two draw indices per amplified sample (I, Q)
  double field_scale_;
  double ase_sigma_;  ///< per-quadrature ASE field noise after EDFA
  std::vector<double> noise_scratch_;  ///< batched ASE draws, reused
};

}  // namespace onfiber::phot
