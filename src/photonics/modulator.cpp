#include "photonics/modulator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace onfiber::phot {

namespace {
constexpr double pi = std::numbers::pi;
}

// ----------------------------------------------------------- mzm_modulator

mzm_modulator::mzm_modulator(modulator_config config, double bias_rad,
                             rng bias_noise, energy_ledger* ledger,
                             energy_costs costs)
    : config_(config),
      bias_rad_(bias_rad),
      ledger_(ledger),
      costs_(costs) {
  if (config_.bias_error_sigma_rad > 0.0) {
    bias_error_rad_ = bias_noise.normal(0.0, config_.bias_error_sigma_rad);
  }
  // Finite extinction ratio: transmission never falls below this floor.
  floor_transmission_ = db_to_ratio(-config_.extinction_ratio_db);
  field_loss_scale_ = field_loss_scale(config_.insertion_loss_db);
  intensity_loss_ratio_ = db_to_ratio(-config_.insertion_loss_db);
}

field mzm_modulator::apply_phase_arg(field in, double total_phase_rad) const {
  // Field transfer of a balanced MZM: cos(theta), where theta is half the
  // differential arm phase. Intensity transfer = cos^2(theta).
  double t_field = std::cos(total_phase_rad);
  double t_intensity = t_field * t_field;
  t_intensity = std::max(t_intensity, floor_transmission_);
  const double scale = std::sqrt(t_intensity) * field_loss_scale_;
  // The sign of the field transfer matters for coherent cascades.
  return in * (t_field < 0.0 ? -scale : scale);
}

field mzm_modulator::modulate(field in, double drive_v) {
  const double v =
      std::clamp(drive_v, -config_.max_drive_v, config_.max_drive_v);
  if (ledger_ != nullptr) ledger_->charge("modulator", costs_.modulator_drive_j);
  const double theta =
      0.5 * (bias_rad_ + bias_error_rad_) + 0.5 * pi * v / config_.v_pi;
  return apply_phase_arg(in, theta);
}

double mzm_modulator::intensity_transfer(double drive_v) const {
  const double v =
      std::clamp(drive_v, -config_.max_drive_v, config_.max_drive_v);
  const double theta = 0.5 * bias_rad_ + 0.5 * pi * v / config_.v_pi;
  const double t = std::cos(theta);
  return std::max(t * t, floor_transmission_) * intensity_loss_ratio_;
}

field mzm_modulator::encode_unit_core(field in, double x) const {
  // Invert intensity transfer cos^2(theta) = x  =>  theta = acos(sqrt(x)).
  // The driver solves for the voltage; bias error still perturbs theta,
  // so calibration is imperfect exactly the way real hardware is.
  const double clamped = std::clamp(x, 0.0, 1.0);
  const double theta = std::acos(std::sqrt(clamped));
  return apply_phase_arg(in, theta + 0.5 * bias_error_rad_);
}

field mzm_modulator::encode_unit(field in, double x) {
  if (ledger_ != nullptr) ledger_->charge("modulator", costs_.modulator_drive_j);
  return encode_unit_core(in, x);
}

void mzm_modulator::encode(std::span<const double> x, waveform& io) {
  const std::size_t n = std::min(x.size(), io.size());
  for (std::size_t i = 0; i < n; ++i) {
    io[i] = encode_unit_core(io[i], x[i]);
  }
  if (ledger_ != nullptr && n > 0) {
    ledger_->charge("modulator",
                    costs_.modulator_drive_j * static_cast<double>(n), n);
  }
}

void mzm_modulator::encode_intensity(std::span<const double> x,
                                     std::span<double> t_out) {
  const std::size_t n = std::min(x.size(), t_out.size());
  if (bias_error_rad_ == 0.0) {
    // Calibrated encode with a perfect bias: cos^2(acos(sqrt(x))) == x, so
    // the transmission is the clamped input held above the extinction
    // floor — the hot path needs no transcendentals at all. Written as
    // conditional moves so rail inputs (exact zeros mixed with positives)
    // cannot stall on clamp branches.
    const double floor_t = floor_transmission_;
    const double loss = intensity_loss_ratio_;
    for (std::size_t i = 0; i < n; ++i) {
      double c = x[i];
      c = c < 0.0 ? 0.0 : c;
      c = c > 1.0 ? 1.0 : c;
      c = c < floor_t ? floor_t : c;
      t_out[i] = c * loss;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double clamped = std::clamp(x[i], 0.0, 1.0);
      const double theta =
          std::acos(std::sqrt(clamped)) + 0.5 * bias_error_rad_;
      const double t_field = std::cos(theta);
      const double t_intensity =
          std::max(t_field * t_field, floor_transmission_);
      t_out[i] = t_intensity * intensity_loss_ratio_;
    }
  }
  if (ledger_ != nullptr && n > 0) {
    ledger_->charge("modulator",
                    costs_.modulator_drive_j * static_cast<double>(n), n);
  }
}

// --------------------------------------------------------- phase_modulator

phase_modulator::phase_modulator(modulator_config config, rng bias_noise,
                                 energy_ledger* ledger, energy_costs costs)
    : config_(config), ledger_(ledger), costs_(costs) {
  if (config_.bias_error_sigma_rad > 0.0) {
    phase_error_rad_ = bias_noise.normal(0.0, config_.bias_error_sigma_rad);
  }
  field_loss_scale_ = field_loss_scale(config_.insertion_loss_db);
}

field phase_modulator::modulate(field in, double drive_v) {
  const double v =
      std::clamp(drive_v, -config_.max_drive_v, config_.max_drive_v);
  return encode_phase(in, pi * v / config_.v_pi);
}

field phase_modulator::encode_phase(field in, double phase_rad) {
  if (ledger_ != nullptr) ledger_->charge("modulator", costs_.modulator_drive_j);
  return in * std::polar(field_loss_scale_, phase_rad + phase_error_rad_);
}

}  // namespace onfiber::phot
