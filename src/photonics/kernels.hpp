// kernels.hpp — deterministic parallel execution for sample-plane kernels.
//
// The simulator's determinism contract is seed-based: one experiment seed
// must produce one bit-exact result. Parallel GEMV keeps that contract by
// construction — per-row RNG streams are forked from a row-seed stream *in
// row order before any work starts*, each row runs on its own device set
// and its own energy ledger, and row results/ledgers are folded back in
// row order at the barrier. The worker count then only changes wall-clock
// time, never a single bit of output.
#pragma once

#include <cstddef>
#include <functional>

namespace onfiber::phot {

/// Worker count for parallel kernels. Resolution order:
///   1. `override_count` if non-zero (e.g. engine::set_threads),
///   2. the ONFIBER_THREADS environment variable if set and positive,
///   3. std::thread::hardware_concurrency().
/// Never returns 0.
[[nodiscard]] std::size_t kernel_thread_count(std::size_t override_count = 0);

/// Re-read ONFIBER_THREADS from the environment. The variable is cached
/// on first use (hot kernels must not call getenv per dispatch); tests
/// that setenv mid-process call this to make the change visible. Not
/// safe to call while parallel kernels are running.
void refresh_kernel_thread_count_cache();

/// Run `fn(row)` for every row in [0, rows) on up to `threads` workers.
/// Rows are claimed from a shared atomic counter, so scheduling is dynamic
/// — correctness must not depend on which thread runs which row (see the
/// determinism contract above). Runs inline when threads <= 1 or rows <= 1,
/// or when called from inside another parallel_rows batch; otherwise the
/// rows are dispatched to the persistent worker pool (thread_pool.hpp) —
/// no threads are constructed per call once the pool is warm. The first
/// exception thrown by any row is rethrown on the caller after the batch
/// drains; a cancel flag stops remaining workers from claiming more rows.
void parallel_rows(std::size_t rows, std::size_t threads,
                   const std::function<void(std::size_t)>& fn);

}  // namespace onfiber::phot
