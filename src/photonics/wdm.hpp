// wdm.hpp — wavelength-division multiplexing grid and capacity model.
//
// §5 of the paper claims a photonic compute transponder can support up to
// 800 Gbps on one wavelength [12], shared among many users. This module
// models the ITU-T flexible grid, per-channel capacity as a function of
// symbol rate and modulation order, and a proportional sharing model used
// by bench E16.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "photonics/units.hpp"

namespace onfiber::phot {

/// One WDM channel on the ITU C-band grid.
struct wdm_channel {
  int index = 0;                 ///< grid slot index (0 == 193.1 THz anchor)
  double spacing_ghz = 100.0;    ///< grid spacing
  double symbol_rate_gbaud = 128.0;  ///< e.g. 128 GBd for 800G [12]
  int bits_per_symbol = 6;       ///< e.g. PCS-64QAM ~ 6 b/sym (minus FEC)
  double fec_overhead = 0.15;    ///< fraction of raw rate spent on FEC

  /// Center frequency [Hz] on the anchored grid.
  [[nodiscard]] double center_frequency_hz() const {
    return 193.1e12 + static_cast<double>(index) * spacing_ghz * 1e9;
  }

  /// Center wavelength [m].
  [[nodiscard]] double center_wavelength_m() const {
    return speed_of_light / center_frequency_hz();
  }

  /// Net information rate after FEC [bit/s]. A dual-polarization channel
  /// doubles the single-pol rate; commodity coherent transponders are DP.
  [[nodiscard]] double net_rate_bps(bool dual_polarization = true) const {
    const double raw = symbol_rate_gbaud * 1e9 *
                       static_cast<double>(bits_per_symbol) *
                       (dual_polarization ? 2.0 : 1.0);
    return raw * (1.0 - fec_overhead);
  }
};

/// A populated WDM line system: a set of channels on one fiber.
class wdm_line {
 public:
  explicit wdm_line(double spacing_ghz = 100.0) : spacing_ghz_(spacing_ghz) {}

  /// Add a channel at the given grid index. Throws if occupied.
  void add_channel(wdm_channel ch) {
    for (const auto& existing : channels_) {
      if (existing.index == ch.index) {
        throw std::invalid_argument("wdm_line: grid slot already occupied");
      }
    }
    ch.spacing_ghz = spacing_ghz_;
    channels_.push_back(ch);
  }

  [[nodiscard]] const std::vector<wdm_channel>& channels() const {
    return channels_;
  }

  /// Aggregate net capacity of the line [bit/s].
  [[nodiscard]] double total_capacity_bps() const {
    double sum = 0.0;
    for (const auto& ch : channels_) sum += ch.net_rate_bps();
    return sum;
  }

  /// Max-min fair share for `users` equal users of one channel [bit/s].
  /// The paper's sharing story (§5): one 800G wavelength divided among
  /// many on-fiber computing users.
  [[nodiscard]] static double fair_share_bps(const wdm_channel& ch,
                                             std::uint64_t users) {
    if (users == 0) return 0.0;
    return ch.net_rate_bps() / static_cast<double>(users);
  }

 private:
  double spacing_ghz_;
  std::vector<wdm_channel> channels_;
};

/// Convenience: the 800G configuration the paper cites (Che, OFC'22 [12]).
[[nodiscard]] inline wdm_channel make_800g_channel(int index = 0) {
  wdm_channel ch;
  ch.index = index;
  ch.symbol_rate_gbaud = 128.0;
  ch.bits_per_symbol = 4;   // DP-16QAM at 128 GBd
  ch.fec_overhead = 0.20;
  // net = 128e9 * 4 * 2 * 0.8 = 819.2 Gb/s ≈ "800G"
  return ch;
}

}  // namespace onfiber::phot
