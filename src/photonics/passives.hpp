// passives.hpp — passive optical components: couplers, splitters,
// attenuators. Pure functions of the field; no state, no noise.
#pragma once

#include <utility>

#include "photonics/optical.hpp"
#include "photonics/units.hpp"

namespace onfiber::phot {

/// 2x2 directional coupler output ports for inputs (a, b).
///
/// Standard lossless 50/50 coupler transfer matrix:
///   out1 = (a + i*b) / sqrt(2)
///   out2 = (i*a + b) / sqrt(2)
/// Port powers |out1|^2 + |out2|^2 == |a|^2 + |b|^2 (energy conserving).
struct coupler_output {
  field port1;
  field port2;
};

[[nodiscard]] inline coupler_output couple_50_50(field a, field b) {
  constexpr double inv_sqrt2 = 0.70710678118654752440;
  const field j{0.0, 1.0};
  return {(a + j * b) * inv_sqrt2, (j * a + b) * inv_sqrt2};
}

/// Y-splitter: divides one input into two equal outputs, with an excess
/// loss in dB applied on top of the inherent 3 dB split.
[[nodiscard]] inline std::pair<field, field> split_50_50(
    field in, double excess_loss_db = 0.1) {
  const double scale =
      0.70710678118654752440 * field_loss_scale(excess_loss_db);
  return {in * scale, in * scale};
}

/// Fixed attenuator (loss_db >= 0).
[[nodiscard]] inline field attenuate(field in, double loss_db) {
  return in * field_loss_scale(loss_db);
}

/// Interference intensity at the constructive port of a 50/50 combiner for
/// two phase-encoded fields. For equal input powers P and phase difference
/// d: I = P * (1 + cos d). This closed form is what P2's analysis uses.
[[nodiscard]] inline double interference_intensity_mw(field a, field b) {
  const coupler_output out = couple_50_50(a, b);
  return power_mw(out.port1);
}

}  // namespace onfiber::phot
