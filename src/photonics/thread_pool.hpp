// thread_pool.hpp — persistent worker pool for deterministic row kernels.
//
// `parallel_rows` used to spawn and join fresh std::threads on every GEMV;
// at WAN packet rates that start-up cost dominates the sample plane. This
// pool starts workers lazily, keeps them parked on a condition variable
// between batches, and hands each batch out through the same dynamic
// row-claim counter as before — so the determinism contract of
// kernels.hpp (per-row RNG streams forked in row order, results folded in
// row order) is untouched: the pool only changes *which thread* runs a
// row, which the contract already declares irrelevant.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace onfiber::phot {

class thread_pool {
 public:
  /// The process-wide pool used by parallel_rows. Constructed on first
  /// use; workers are joined at static destruction.
  [[nodiscard]] static thread_pool& instance();

  thread_pool() = default;
  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;
  ~thread_pool();

  /// Run `fn(r)` for every row in [0, rows) on up to `max_workers`
  /// participants (the calling thread included). Rows are claimed from a
  /// shared atomic counter. Blocks until every claimed row finished; the
  /// first exception thrown by any row is rethrown here, and a relaxed
  /// cancel flag stops the remaining workers from claiming further rows.
  /// Concurrent run() calls from different threads serialize.
  void run(std::size_t rows, std::size_t max_workers,
           const std::function<void(std::size_t)>& fn);

  /// True while the current thread is executing rows of a pool batch
  /// (worker or participating caller). Nested parallel_rows calls use
  /// this to fall back to inline execution instead of deadlocking on the
  /// batch serialization mutex.
  [[nodiscard]] static bool in_worker();

  /// Total worker threads ever constructed by this pool. A warm pool
  /// reuses its workers, so repeated run() calls must not grow this —
  /// the determinism suite pins that (no per-call thread construction).
  [[nodiscard]] std::uint64_t startups() const {
    return startups_.load(std::memory_order_relaxed);
  }

  /// Workers currently parked/alive.
  [[nodiscard]] std::size_t workers_alive() const;

 private:
  void worker_loop_from(std::size_t index, std::uint64_t seen_generation);
  void ensure_workers(std::size_t helpers);
  void claim_rows();

  // Batch state (valid between run() setup and the last participant's
  // acknowledgement; guarded by m_ except for the atomics).
  std::atomic<std::size_t> next_row_{0};
  std::atomic<bool> cancelled_{false};
  std::size_t rows_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::exception_ptr first_error_;
  std::mutex error_m_;

  mutable std::mutex m_;
  std::condition_variable work_cv_;   ///< wakes parked workers on a batch
  std::condition_variable done_cv_;   ///< wakes the caller on completion
  std::uint64_t generation_ = 0;      ///< batch sequence number
  std::size_t helpers_wanted_ = 0;    ///< workers asked to join this batch
  std::size_t helpers_remaining_ = 0; ///< workers still running this batch
  bool shutdown_ = false;

  std::mutex run_m_;  ///< serializes whole batches (one at a time)
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> startups_{0};
};

}  // namespace onfiber::phot
