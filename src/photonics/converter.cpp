#include "photonics/converter.hpp"

#include <algorithm>
#include <cmath>

namespace onfiber::phot {

double quantize_to_grid(double value, double full_scale, int bits) {
  const double clipped = std::clamp(value, 0.0, full_scale);
  const double levels = static_cast<double>((1ULL << bits) - 1);
  return std::round(clipped / full_scale * levels) / levels * full_scale;
}

double quantization_noise_rms(double full_scale, int bits) {
  const double lsb = full_scale / static_cast<double>((1ULL << bits) - 1);
  return lsb / std::sqrt(12.0);
}

namespace {

/// ENOB penalty translates to extra Gaussian noise so that the converter's
/// effective resolution is (bits - penalty).
double enob_noise_sigma(const converter_config& c) {
  if (c.enob_penalty <= 0.0) return 0.0;
  const double ideal = quantization_noise_rms(c.full_scale, c.bits);
  const double effective_bits = static_cast<double>(c.bits) - c.enob_penalty;
  // Total noise of an ENOB-limited converter: q_fs / (2^enob * sqrt(12))
  const double total = c.full_scale /
                       (std::pow(2.0, effective_bits) * std::sqrt(12.0));
  const double extra_var = total * total - ideal * ideal;
  return extra_var > 0.0 ? std::sqrt(extra_var) : 0.0;
}

}  // namespace

// ------------------------------------------------------------------- dac

dac::dac(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double dac::convert_core(double value) {
  double out = quantize_to_grid(value, config_.full_scale, config_.bits);
  if (noise_sigma_ > 0.0) out += gen_.normal(0.0, noise_sigma_);
  return std::clamp(out, 0.0, config_.full_scale);
}

double dac::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("dac", costs_.dac_conversion_j);
  return convert_core(value);
}

void dac::convert(std::span<const double> in, std::span<double> out) {
  const std::size_t n = std::min(in.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = convert_core(in[i]);
  if (ledger_ != nullptr && n > 0) {
    ledger_->charge("dac", costs_.dac_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> dac::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

// ------------------------------------------------------------------- adc

adc::adc(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double adc::convert_core(double value) {
  double in = value;
  if (noise_sigma_ > 0.0) in += gen_.normal(0.0, noise_sigma_);
  return quantize_to_grid(in, config_.full_scale, config_.bits);
}

double adc::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("adc", costs_.adc_conversion_j);
  return convert_core(value);
}

void adc::convert(std::span<const double> in, std::span<double> out) {
  const std::size_t n = std::min(in.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = convert_core(in[i]);
  if (ledger_ != nullptr && n > 0) {
    ledger_->charge("adc", costs_.adc_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> adc::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

}  // namespace onfiber::phot
