#include "photonics/converter.hpp"

#include <algorithm>
#include <cmath>

namespace onfiber::phot {

double quantize_to_grid(double value, double full_scale, int bits) {
  const double clipped = std::clamp(value, 0.0, full_scale);
  const double levels = static_cast<double>((1ULL << bits) - 1);
  return std::round(clipped / full_scale * levels) / levels * full_scale;
}

double quantization_noise_rms(double full_scale, int bits) {
  const double lsb = full_scale / static_cast<double>((1ULL << bits) - 1);
  return lsb / std::sqrt(12.0);
}

namespace {

/// ENOB penalty translates to extra Gaussian noise so that the converter's
/// effective resolution is (bits - penalty).
double enob_noise_sigma(const converter_config& c) {
  if (c.enob_penalty <= 0.0) return 0.0;
  const double ideal = quantization_noise_rms(c.full_scale, c.bits);
  const double effective_bits = static_cast<double>(c.bits) - c.enob_penalty;
  // Total noise of an ENOB-limited converter: q_fs / (2^enob * sqrt(12))
  const double total = c.full_scale /
                       (std::pow(2.0, effective_bits) * std::sqrt(12.0));
  const double extra_var = total * total - ideal * ideal;
  return extra_var > 0.0 ? std::sqrt(extra_var) : 0.0;
}

/// Branch-free quantize_to_grid: same arithmetic in the same order, with
/// the clip written as conditional moves (min/max) instead of the branchy
/// std::clamp — identical results for all non-NaN inputs.
inline double quantize_branch_free(double value, double full_scale,
                                   double levels) {
  double c = value;
  c = c < 0.0 ? 0.0 : c;
  c = c > full_scale ? full_scale : c;
  return std::round(c / full_scale * levels) / levels * full_scale;
}

}  // namespace

// ------------------------------------------------------------------- dac

dac::dac(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double dac::convert_core(double value) {
  double out = quantize_to_grid(value, config_.full_scale, config_.bits);
  if (noise_sigma_ > 0.0) out += gen_.normal(0.0, noise_sigma_);
  return std::clamp(out, 0.0, config_.full_scale);
}

double dac::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("dac", costs_.dac_conversion_j);
  return convert_core(value);
}

void dac::convert(std::span<const double> in, std::span<double> out) {
  convert(in, out, noise_scratch_);
}

void dac::convert(std::span<const double> in, std::span<double> out,
                  std::vector<double>& noise_scratch) {
  const std::size_t n = std::min(in.size(), out.size());
  if (n == 0) return;
  const double fs = config_.full_scale;
  const double levels = static_cast<double>((1ULL << config_.bits) - 1);
  const double sigma = noise_sigma_;
  if (sigma > 0.0) {
    // Pass 1 (scalar, sequence-preserving): element i consumes draw i,
    // exactly as the scalar loop does.
    noise_scratch.resize(n);
    gen_.fill_normal(std::span<double>(noise_scratch.data(), n));
    // Pass 2 (branch-free math): quantize, add noise, clip — all
    // conditional moves over contiguous arrays.
    for (std::size_t i = 0; i < n; ++i) {
      const double q = quantize_branch_free(in[i], fs, levels);
      double o = q + sigma * noise_scratch[i];
      o = o < 0.0 ? 0.0 : o;
      o = o > fs ? fs : o;
      out[i] = o;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      // No noise: quantize already lands in [0, full_scale].
      out[i] = quantize_branch_free(in[i], fs, levels);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->charge("dac", costs_.dac_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> dac::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

// ------------------------------------------------------------------- adc

adc::adc(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double adc::convert_core(double value) {
  double in = value;
  if (noise_sigma_ > 0.0) in += gen_.normal(0.0, noise_sigma_);
  return quantize_to_grid(in, config_.full_scale, config_.bits);
}

double adc::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("adc", costs_.adc_conversion_j);
  return convert_core(value);
}

void adc::convert(std::span<const double> in, std::span<double> out) {
  convert(in, out, noise_scratch_);
}

void adc::convert(std::span<const double> in, std::span<double> out,
                  std::vector<double>& noise_scratch) {
  const std::size_t n = std::min(in.size(), out.size());
  if (n == 0) return;
  const double fs = config_.full_scale;
  const double levels = static_cast<double>((1ULL << config_.bits) - 1);
  const double sigma = noise_sigma_;
  if (sigma > 0.0) {
    noise_scratch.resize(n);
    gen_.fill_normal(std::span<double>(noise_scratch.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = quantize_branch_free(in[i] + sigma * noise_scratch[i], fs,
                                    levels);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = quantize_branch_free(in[i], fs, levels);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->charge("adc", costs_.adc_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> adc::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

}  // namespace onfiber::phot
