#include "photonics/converter.hpp"

#include <algorithm>
#include <cmath>

#include "photonics/simd.hpp"

namespace onfiber::phot {

double quantize_to_grid(double value, double full_scale, int bits) {
  const double clipped = std::clamp(value, 0.0, full_scale);
  const double levels = static_cast<double>((1ULL << bits) - 1);
  return std::round(clipped / full_scale * levels) / levels * full_scale;
}

double quantization_noise_rms(double full_scale, int bits) {
  const double lsb = full_scale / static_cast<double>((1ULL << bits) - 1);
  return lsb / std::sqrt(12.0);
}

namespace {

/// Purpose tags separating DAC and ADC streams derived from equal seeds.
constexpr std::uint64_t kDacTag = 0x646163ULL;  // "dac"
constexpr std::uint64_t kAdcTag = 0x616463ULL;  // "adc"

/// ENOB penalty translates to extra Gaussian noise so that the converter's
/// effective resolution is (bits - penalty).
double enob_noise_sigma(const converter_config& c) {
  if (c.enob_penalty <= 0.0) return 0.0;
  const double ideal = quantization_noise_rms(c.full_scale, c.bits);
  const double effective_bits = static_cast<double>(c.bits) - c.enob_penalty;
  // Total noise of an ENOB-limited converter: q_fs / (2^enob * sqrt(12))
  const double total = c.full_scale /
                       (std::pow(2.0, effective_bits) * std::sqrt(12.0));
  const double extra_var = total * total - ideal * ideal;
  return extra_var > 0.0 ? std::sqrt(extra_var) : 0.0;
}

/// Measured-style ENOB: total modeled noise (quantization floor + ENOB
/// penalty) folded back into effective bits.
double effective_bits_of(const converter_config& c, double noise_sigma) {
  const double ideal = quantization_noise_rms(c.full_scale, c.bits);
  const double total = std::sqrt(ideal * ideal + noise_sigma * noise_sigma);
  if (total <= 0.0 || c.full_scale <= 0.0) {
    return static_cast<double>(c.bits);
  }
  return std::log2(c.full_scale / (total * std::sqrt(12.0)));
}

/// Branch-free quantize_to_grid: same arithmetic in the same order, with
/// the clip written as conditional moves (min/max) instead of the branchy
/// std::clamp — identical results for all non-NaN inputs. Mirrors
/// quantize_bf in simd_kernels_impl.hpp (the dispatched batch pass).
inline double quantize_branch_free(double value, double full_scale,
                                   double levels) {
  double c = value;
  c = c < 0.0 ? 0.0 : c;
  c = c > full_scale ? full_scale : c;
  return std::round(c / full_scale * levels) / levels * full_scale;
}

}  // namespace

// ------------------------------------------------------------------- dac

dac::dac(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      noise_(counter_rng::key_of(noise_stream(), kDacTag)),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double dac::effective_bits() const {
  return effective_bits_of(config_, noise_sigma_);
}

double dac::convert_core(double value) {
  double out = quantize_to_grid(value, config_.full_scale, config_.bits);
  if (noise_sigma_ > 0.0) {
    out += noise_sigma_ * noise_.normal();
  } else {
    noise_.skip(1);  // every element consumes one index, noisy or not
  }
  return std::clamp(out, 0.0, config_.full_scale);
}

double dac::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("dac", costs_.dac_conversion_j);
  return convert_core(value);
}

void dac::convert(std::span<const double> in, std::span<double> out) {
  convert(in, out, noise_scratch_);
}

void dac::convert(std::span<const double> in, std::span<double> out,
                  std::vector<double>& noise_scratch) {
  const std::size_t n = std::min(in.size(), out.size());
  if (n == 0) return;
  const double fs = config_.full_scale;
  const double levels = static_cast<double>((1ULL << config_.bits) - 1);
  const double sigma = noise_sigma_;
  const simd::kernel_table& k = simd::active();
  if (sigma > 0.0) {
    // Pass 1: counter-indexed noise fill — element i consumes draw index
    // cursor + i, exactly as the scalar loop does, generated branch-free
    // at the active SIMD level.
    noise_scratch.resize(n);
    noise_.fill_normal(std::span<double>(noise_scratch.data(), n));
    // Pass 2: quantize, add noise, clip — conditional moves over
    // contiguous arrays, dispatched.
    k.dac_pass(in.data(), noise_scratch.data(), n, fs, levels, sigma,
               out.data());
  } else {
    noise_.skip(n);
    for (std::size_t i = 0; i < n; ++i) {
      // No noise: quantize already lands in [0, full_scale].
      out[i] = quantize_branch_free(in[i], fs, levels);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->charge("dac", costs_.dac_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> dac::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

// ------------------------------------------------------------------- adc

adc::adc(converter_config config, rng noise_stream, energy_ledger* ledger,
         energy_costs costs)
    : config_(config),
      noise_(counter_rng::key_of(noise_stream(), kAdcTag)),
      lsb_(config.full_scale / static_cast<double>((1ULL << config.bits) - 1)),
      noise_sigma_(enob_noise_sigma(config)),
      ledger_(ledger),
      costs_(costs) {}

double adc::effective_bits() const {
  return effective_bits_of(config_, noise_sigma_);
}

double adc::convert_core(double value) {
  double in = value;
  if (noise_sigma_ > 0.0) {
    in += noise_sigma_ * noise_.normal();
  } else {
    noise_.skip(1);
  }
  return quantize_to_grid(in, config_.full_scale, config_.bits);
}

double adc::convert(double value) {
  if (ledger_ != nullptr) ledger_->charge("adc", costs_.adc_conversion_j);
  return convert_core(value);
}

void adc::convert(std::span<const double> in, std::span<double> out) {
  convert(in, out, noise_scratch_);
}

void adc::convert(std::span<const double> in, std::span<double> out,
                  std::vector<double>& noise_scratch) {
  const std::size_t n = std::min(in.size(), out.size());
  if (n == 0) return;
  const double fs = config_.full_scale;
  const double levels = static_cast<double>((1ULL << config_.bits) - 1);
  const double sigma = noise_sigma_;
  const simd::kernel_table& k = simd::active();
  if (sigma > 0.0) {
    noise_scratch.resize(n);
    noise_.fill_normal(std::span<double>(noise_scratch.data(), n));
    k.adc_pass(in.data(), noise_scratch.data(), n, fs, levels, sigma,
               out.data());
  } else {
    noise_.skip(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = quantize_branch_free(in[i], fs, levels);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->charge("adc", costs_.adc_conversion_j * static_cast<double>(n),
                    n);
  }
}

std::vector<double> adc::convert(std::span<const double> values) {
  std::vector<double> out(values.size());
  convert(values, out);
  return out;
}

}  // namespace onfiber::phot
