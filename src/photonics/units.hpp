// units.hpp — physical constants and unit helpers for the photonic substrate.
//
// Conventions used throughout the photonics library:
//   * optical power:      milliwatts (mW) unless a name says otherwise
//   * optical field:      complex amplitude E with |E|^2 in mW
//   * voltage:            volts
//   * current:            amperes
//   * energy:             joules
//   * time:               seconds
//   * wavelength:         meters (1550 nm band typical)
//   * loss/gain:          dB (positive number == loss for "loss" parameters)
#pragma once

#include <cmath>

namespace onfiber::phot {

// ---------------------------------------------------------------- constants

/// Planck constant [J*s].
inline constexpr double planck_h = 6.626'070'15e-34;

/// Speed of light in vacuum [m/s].
inline constexpr double speed_of_light = 2.997'924'58e8;

/// Elementary charge [C].
inline constexpr double electron_charge = 1.602'176'634e-19;

/// Boltzmann constant [J/K].
inline constexpr double boltzmann_k = 1.380'649e-23;

/// Group index of standard single-mode fiber (SMF-28) at 1550 nm.
inline constexpr double smf_group_index = 1.468;

/// Conventional C-band carrier wavelength [m].
inline constexpr double c_band_wavelength = 1550e-9;

// ------------------------------------------------------------- dB helpers

/// Convert a linear power ratio to dB. Requires ratio > 0.
[[nodiscard]] inline double ratio_to_db(double ratio) {
  return 10.0 * std::log10(ratio);
}

/// Convert dB to a linear power ratio.
[[nodiscard]] inline double db_to_ratio(double db) {
  return std::pow(10.0, db / 10.0);
}

/// Convert absolute power in mW to dBm. Requires mw > 0.
[[nodiscard]] inline double mw_to_dbm(double mw) {
  return 10.0 * std::log10(mw);
}

/// Convert dBm to absolute power in mW.
[[nodiscard]] inline double dbm_to_mw(double dbm) {
  return std::pow(10.0, dbm / 10.0);
}

/// Apply a loss given in dB (loss_db >= 0 attenuates) to a linear power.
[[nodiscard]] inline double apply_loss_mw(double power_mw, double loss_db) {
  return power_mw * db_to_ratio(-loss_db);
}

/// Field-amplitude scale factor corresponding to a power loss in dB.
/// (Power scales with the square of the field.)
[[nodiscard]] inline double field_loss_scale(double loss_db) {
  return std::sqrt(db_to_ratio(-loss_db));
}

// -------------------------------------------------------- photon energetics

/// Energy of a single photon at the given wavelength [J].
[[nodiscard]] inline double photon_energy(double wavelength_m) {
  return planck_h * speed_of_light / wavelength_m;
}

/// Photon flux [photons/s] carried by `power_mw` at `wavelength_m`.
[[nodiscard]] inline double photon_flux(double power_mw, double wavelength_m) {
  return (power_mw * 1e-3) / photon_energy(wavelength_m);
}

/// Optical frequency [Hz] for a wavelength [m].
[[nodiscard]] inline double wavelength_to_frequency(double wavelength_m) {
  return speed_of_light / wavelength_m;
}

// --------------------------------------------------------------- time/dist

/// One-way propagation delay of `length_km` of fiber [s].
[[nodiscard]] inline double fiber_delay_s(double length_km) {
  return (length_km * 1e3) * smf_group_index / speed_of_light;
}

}  // namespace onfiber::phot
