// simd.hpp — runtime ISA dispatch for the sample-plane kernels.
//
// The hot per-symbol passes (counter-noise fill, DAC/ADC math, laser RIN
// power, MZM-cascade product, blocked readout sum) are compiled four
// times — scalar, SSE4.1, AVX2, AVX-512 — in per-ISA translation units
// (simd_kernels_*.cpp, each with its own -m flags), and the best level
// the host supports is selected once at startup via cpuid.
//
// Contract: every level produces bit-identical doubles. The kernels are
// element-wise IEEE arithmetic (plus a fixed 8-accumulator reduction
// whose partial-sum order is the same at every vector width), all TUs
// are compiled with -ffp-contract=off, and the rare transcendental paths
// (inverse-CDF tails) run through one shared scalar function. So the
// dispatch level — like the thread count — changes wall-clock time only,
// never a bit of output; test_simd_dispatch.cpp pins this with exact
// double equality on full laser->photodetector chains.
//
// ONFIBER_SIMD=scalar|sse4|avx2|avx512 overrides the choice (clamped to
// what the host actually supports), so every level is testable anywhere.
#pragma once

#include <cstddef>
#include <cstdint>

namespace onfiber::phot::simd {

/// Instruction-set tiers, ordered: a host that supports level L supports
/// every level below it.
enum class level : int { scalar = 0, sse4 = 1, avx2 = 2, avx512 = 3 };

/// The dispatched kernel set. One instance per ISA tier; all members of
/// one table come from the same translation unit (same -m flags).
struct kernel_table {
  level lvl;
  const char* name;

  /// Counter-noise fill: out[i] = counter_normal(key, base + i).
  void (*fill_normal)(std::uint64_t key, std::uint64_t base, double* out,
                      std::size_t n);

  /// Laser RIN power pass: out[i] = max(base_mw + sigma_mw * noise[i], 0).
  void (*rin_power)(const double* noise, std::size_t n, double base_mw,
                    double sigma_mw, double* out);

  /// DAC math pass: quantize to the N-level grid, add ENOB noise, clip to
  /// [0, full_scale]. Same arithmetic order as the scalar convert_core.
  void (*dac_pass)(const double* in, const double* noise, std::size_t n,
                   double full_scale, double levels, double sigma,
                   double* out);

  /// ADC math pass: add ENOB noise, then quantize to the grid.
  void (*adc_pass)(const double* in, const double* noise, std::size_t n,
                   double full_scale, double levels, double sigma,
                   double* out);

  /// Cascaded-MZM product pass: out[i] = p[i] * a[i] * b[i].
  void (*triple_product)(const double* p, const double* a, const double* b,
                         std::size_t n, double* out);

  /// Readout accumulation: 8-accumulator blocked sum with a fixed fold
  /// order, identical at every vector width (including scalar).
  double (*blocked_sum)(const double* x, std::size_t n);
};

/// Best level this host supports (cpuid; cached after the first call).
[[nodiscard]] level detected_level();

/// Whether the host supports `l` (i.e. l <= detected_level()).
[[nodiscard]] bool level_supported(level l);

/// Short name ("scalar", "sse4", "avx2", "avx512") for reports and logs.
[[nodiscard]] const char* level_name(level l);

/// The kernel table compiled for `l`, regardless of what is active. Used
/// by tests that compare levels directly; callers must not invoke a
/// table above detected_level().
[[nodiscard]] const kernel_table& table_for(level l);

/// The active kernel table: min(detected level, ONFIBER_SIMD override).
/// Resolved once on first use; cheap enough for per-batch calls.
[[nodiscard]] const kernel_table& active();

/// Force the active level (test hook). Returns false — and leaves the
/// active table unchanged — if the host does not support `l`.
bool set_level(level l);

/// Re-resolve the active level from ONFIBER_SIMD (tests that setenv
/// mid-process). Not safe to call while kernels are running.
void refresh();

}  // namespace onfiber::phot::simd
