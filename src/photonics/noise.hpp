// noise.hpp — physical noise processes of the analog optical datapath.
//
// Analog precision is the central engineering question for photonic
// computing (paper §4: "new algorithms to mitigate photonic noise during
// computation"). Three processes bound it:
//
//   * shot noise       — Poisson statistics of photon arrival at the
//                        photodetector; variance grows with signal power,
//                        SNR grows as sqrt(P).
//   * thermal noise    — Johnson noise of the photodetector's load /
//                        transimpedance amplifier; signal independent.
//   * RIN              — laser relative intensity noise; multiplicative.
//
// All three are expressed as per-symbol current or power perturbations so
// device models can apply them sample by sample.
#pragma once

#include "photonics/rng.hpp"
#include "photonics/units.hpp"

namespace onfiber::phot {

/// Shot-noise standard deviation [A] of a photocurrent `current_a` [A]
/// observed in an electrical bandwidth `bandwidth_hz`.
///   sigma^2 = 2 q I B
[[nodiscard]] inline double shot_noise_sigma_a(double current_a,
                                               double bandwidth_hz) {
  const double i = current_a < 0.0 ? -current_a : current_a;
  return std::sqrt(2.0 * electron_charge * i * bandwidth_hz);
}

/// Thermal (Johnson) noise standard deviation [A] of a load resistance
/// `load_ohm` at temperature `temperature_k` in bandwidth `bandwidth_hz`.
///   sigma^2 = 4 k T B / R
[[nodiscard]] inline double thermal_noise_sigma_a(double load_ohm,
                                                  double temperature_k,
                                                  double bandwidth_hz) {
  return std::sqrt(4.0 * boltzmann_k * temperature_k * bandwidth_hz / load_ohm);
}

/// RIN-induced power standard deviation [mW] for laser power `power_mw`
/// with relative intensity noise `rin_db_hz` (e.g. -155 dB/Hz) integrated
/// over `bandwidth_hz`.
///   sigma_P = P * sqrt(10^(RIN/10) * B)
[[nodiscard]] inline double rin_sigma_mw(double power_mw, double rin_db_hz,
                                         double bandwidth_hz) {
  return power_mw * std::sqrt(db_to_ratio(rin_db_hz) * bandwidth_hz);
}

/// Bundled receiver noise configuration shared by photodetector-based
/// devices.
struct receiver_noise_config {
  double bandwidth_hz = 10e9;    ///< electrical bandwidth (10 GHz detector)
  double load_ohm = 50.0;        ///< TIA input impedance
  double temperature_k = 300.0;  ///< room temperature
  bool enable_shot = true;
  bool enable_thermal = true;

  /// Sample the total additive current noise [A] for a photocurrent
  /// `current_a`, drawing from `gen`.
  [[nodiscard]] double sample_current_noise_a(double current_a,
                                              rng& gen) const {
    double variance = 0.0;
    if (enable_shot) {
      const double s = shot_noise_sigma_a(current_a, bandwidth_hz);
      variance += s * s;
    }
    if (enable_thermal) {
      const double t =
          thermal_noise_sigma_a(load_ohm, temperature_k, bandwidth_hz);
      variance += t * t;
    }
    if (variance <= 0.0) return 0.0;
    return gen.normal(0.0, std::sqrt(variance));
  }

  /// Counter-stream variant: consumes exactly one draw index whether or
  /// not the variance is positive (zero-variance readouts skip the index
  /// instead of leaving it unconsumed). Stream position therefore stays
  /// a pure function of readouts taken — the invariant every batched /
  /// skippable photodetector path relies on.
  [[nodiscard]] double sample_current_noise_a(double current_a,
                                              counter_stream& stream) const {
    double variance = 0.0;
    if (enable_shot) {
      const double s = shot_noise_sigma_a(current_a, bandwidth_hz);
      variance += s * s;
    }
    if (enable_thermal) {
      const double t =
          thermal_noise_sigma_a(load_ohm, temperature_k, bandwidth_hz);
      variance += t * t;
    }
    if (variance <= 0.0) {
      stream.skip(1);
      return 0.0;
    }
    return std::sqrt(variance) * stream.normal();
  }
};

}  // namespace onfiber::phot
