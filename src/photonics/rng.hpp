// rng.hpp — deterministic, seedable random number generation.
//
// Every stochastic component in the library (noise processes, traffic
// generators, synthetic datasets) draws from an explicitly seeded
// xoshiro256++ stream. The same seed produces bit-identical results on
// every platform, which the test suite relies on.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace onfiber::phot {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based generator (splitmix-style). Every output is a pure
/// function of (key, draw index): the stream for a given key is the
/// same no matter when, where, or in what order other streams are
/// consumed. That is the property sequential generators cannot give a
/// parallel simulation — construct one stream per logical event
/// (e.g. per link traversal) and the draws are reproducible at any
/// shard or thread count.
///
/// Distribution helpers mirror `rng`'s semantics but are independent
/// implementations; they do not match xoshiro draw-for-draw.
class counter_rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr counter_rng(std::uint64_t key) : state_(key) {}

  /// Collapse up to four key words into one stream key. Each word is
  /// fully mixed before the next is absorbed, so (seed, id, 0, 1) and
  /// (seed, id, 1, 0) land in unrelated streams.
  [[nodiscard]] static constexpr std::uint64_t key_of(std::uint64_t a,
                                                      std::uint64_t b = 0,
                                                      std::uint64_t c = 0,
                                                      std::uint64_t d = 0) {
    std::uint64_t s = a;
    std::uint64_t k = splitmix64(s);
    s = k ^ b;
    k = splitmix64(s);
    s = k ^ c;
    k = splitmix64(s);
    s = k ^ d;
    return splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return splitmix64(state_); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0 (Lemire multiply-shift).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    __extension__ using u128 = unsigned __int128;
    const u128 wide = static_cast<u128>((*this)()) * static_cast<u128>(n);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Standard normal deviate (polar method, no spare caching — streams
  /// here are short-lived, purity matters more than amortization).
  [[nodiscard]] double normal() {
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Poisson deviate: Knuth for small means, Gaussian approximation for
  /// large ones (same thresholds as `rng::poisson`).
  [[nodiscard]] std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 256.0) {
      const double v =
          std::round(mean + std::sqrt(mean) * normal());
      return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

 private:
  std::uint64_t state_;
};

/// Standard normal deviate `index` of counter stream `key`, as a pure
/// function of both (counter-mode splitmix64 uniform through the inverse
/// normal CDF). Draw i of stream k is independent of every other draw:
/// no state, no draw order, no spare caching — which is what lets the
/// sample-plane noise fills vectorize and split across threads while
/// staying bit-identical. Defined in rng.cpp (compiled exactly once,
/// with -ffp-contract=off) so every caller sees one bit pattern.
[[nodiscard]] double counter_normal(std::uint64_t key, std::uint64_t index);

/// A positioned view over one counter-based normal stream: (key, cursor).
/// Scalar draws and bulk fills consume consecutive draw indices; `skip`
/// advances the cursor in O(1) without generating (the property the
/// batched GEMM uses to hand disjoint sample ranges of one row to
/// different workers). Copying a stream copies its position.
class counter_stream {
 public:
  explicit constexpr counter_stream(std::uint64_t key) : key_(key) {}

  [[nodiscard]] constexpr std::uint64_t key() const { return key_; }
  [[nodiscard]] constexpr std::uint64_t cursor() const { return cursor_; }
  constexpr void seek(std::uint64_t index) { cursor_ = index; }
  constexpr void skip(std::uint64_t draws) { cursor_ += draws; }

  /// Next standard normal deviate (consumes one draw index).
  [[nodiscard]] double normal() { return counter_normal(key_, cursor_++); }

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Fill `out` with the next out.size() deviates of this stream, via the
  /// runtime-dispatched SIMD kernel (simd.hpp). Bit-identical to calling
  /// `normal()` out.size() times, at every dispatch level.
  void fill_normal(std::span<double> out);

 private:
  std::uint64_t key_;
  std::uint64_t cursor_ = 0;
};

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, high quality, deterministic.
/// Satisfies std::uniform_random_bit_generator.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; the full 256-bit state is derived with
  /// SplitMix64 so that nearby seeds yield unrelated streams.
  explicit constexpr rng(std::uint64_t seed = 0x9d2c5680f1a3c4e7ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire-style
  /// multiply-shift bounded generation (bias negligible for simulation n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    __extension__ using u128 = unsigned __int128;
    const u128 wide = static_cast<u128>((*this)()) * static_cast<u128>(n);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Standard normal deviate via the polar (Marsaglia) Box-Muller variant:
  /// one (log, sqrt, div) evaluation and no trigonometry produces two
  /// independent deviates; the second is cached as a spare so every other
  /// call is a single load. Noise sampling is the hot path of every device
  /// model, and this halves its transcendental cost twice over.
  [[nodiscard]] double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);  // ~21% rejection; s == 0 guards log(0)
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Fill `out` with standard normal deviates, drawing exactly the same
  /// sequence as repeated `normal()` calls (the batch device kernels rely
  /// on this equivalence to stay bit-identical with the scalar paths).
  /// The bulk of the fill runs pairwise — each polar iteration stores both
  /// deviates of the pair directly, skipping the spare-cache store/branch
  /// that repeated normal() pays — which is observably identical because
  /// normal() hands out exactly those pairs in the same order.
  void fill_normal(std::span<double> out) {
    std::size_t i = 0;
    const std::size_t n = out.size();
    if (i < n && has_spare_) {
      has_spare_ = false;
      out[i++] = spare_;
    }
    for (; i + 1 < n; i += 2) {
      double u, v, s;
      do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
      } while (s >= 1.0 || s == 0.0);
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      out[i] = u * factor;
      out[i + 1] = v * factor;
    }
    if (i < n) out[i] = normal();  // odd tail: leaves the spare cached
  }

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Poisson deviate. For large means uses the Gaussian approximation,
  /// which is accurate to within the sampling error of the physical
  /// processes modelled (photon counts are typically >> 1e3).
  [[nodiscard]] std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 256.0) {
      const double v = std::round(normal(mean, std::sqrt(mean)));
      return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
    }
    // Knuth's method for small means.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Exponential deviate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Fork a child stream that is statistically independent of this one.
  /// Used to give each device its own stream from one experiment seed.
  [[nodiscard]] rng fork() { return rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;      ///< cached second deviate of the polar pair
  bool has_spare_ = false;  ///< whether `spare_` is valid
};

}  // namespace onfiber::phot
