// simd_kernels_avx512.cpp — AVX-512 tier (8 doubles). Compiled with
// -mavx512f -mavx512dq -mavx512vl: DQ supplies the packed 64-bit multiply
// (vpmullq) the counter mix wants, VL lets the compiler use 256-bit ops
// for remainders. Dispatch gates on all three cpuid bits.
#include "photonics/simd_kernels_impl.hpp"

namespace onfiber::phot::simd::detail_tables {

kernel_table make_table_avx512() {
  return make_kernel_table(level::avx512, "avx512");
}

}  // namespace onfiber::phot::simd::detail_tables
