// laser.hpp — continuous-wave laser source model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/noise.hpp"
#include "photonics/optical.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

/// Configuration of a CW laser used as the carrier source of a transponder
/// transmit path or a photonic engine.
struct laser_config {
  double power_mw = 10.0;            ///< emitted CW power
  double wavelength_m = c_band_wavelength;
  double rin_db_hz = -155.0;         ///< relative intensity noise
  double linewidth_hz = 100e3;       ///< Lorentzian linewidth (phase noise)
  double symbol_rate_hz = 10e9;      ///< symbol slot rate of downstream path
  bool enable_rin = true;
  bool enable_phase_noise = true;
};

/// CW laser emitting one field sample per symbol slot. Each sample carries
/// RIN power fluctuation and a phase random walk with variance
/// 2*pi*linewidth/symbol_rate per step (standard Wiener phase-noise model).
class laser {
 public:
  /// `noise_stream` seeds the laser's two counter-based noise streams
  /// (RIN and phase walk) — one u64 is drawn from it to key them.
  laser(laser_config config, rng noise_stream,
        energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Emit `symbols` consecutive carrier samples.
  [[nodiscard]] waveform emit(std::size_t symbols);

  /// Batch emit into preallocated storage (`out` is overwritten). Noise is
  /// drawn with a single batched RNG fill; the result is bit-identical to
  /// calling `emit_one` `symbols` times.
  void emit(std::size_t symbols, waveform& out);

  /// Emit a single carrier sample (advances the phase walk).
  [[nodiscard]] field emit_one();

  /// Intensity-path kernel: per-symbol optical powers [mW] without the
  /// phasor construction. Draws the same counter-stream indices as
  /// `emit_one` (so the streams stay aligned), but the trigonometric
  /// projection of the phase is skipped — the carrier phase is
  /// unobservable under direct square-law detection.
  void emit_powers(std::span<double> out_powers);

  /// Advance both noise streams past `symbols` symbols in O(1) without
  /// generating anything — the counter streams make draw index i
  /// addressable directly. The phase accumulator is NOT walked forward,
  /// so this is only valid on intensity-domain paths (emit_powers),
  /// where phase is unobservable; the batched GEMM uses it to hand
  /// disjoint sample ranges of one row to different workers.
  void skip_symbols(std::uint64_t symbols);

  [[nodiscard]] const laser_config& config() const { return config_; }

 private:
  laser_config config_;
  counter_stream rin_stream_;    ///< one draw index per symbol, always
  counter_stream phase_stream_;  ///< one draw index per symbol, always
  double phase_ = 0.0;
  double phase_step_sigma_ = 0.0;
  double rin_sigma_mw_ = 0.0;  ///< RIN power fluctuation, hoisted from config
  std::vector<double> rin_scratch_;    ///< batched RIN draws, reused
  std::vector<double> phase_scratch_;  ///< batched phase draws, reused
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
