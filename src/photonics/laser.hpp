// laser.hpp — continuous-wave laser source model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/noise.hpp"
#include "photonics/optical.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

/// Configuration of a CW laser used as the carrier source of a transponder
/// transmit path or a photonic engine.
struct laser_config {
  double power_mw = 10.0;            ///< emitted CW power
  double wavelength_m = c_band_wavelength;
  double rin_db_hz = -155.0;         ///< relative intensity noise
  double linewidth_hz = 100e3;       ///< Lorentzian linewidth (phase noise)
  double symbol_rate_hz = 10e9;      ///< symbol slot rate of downstream path
  bool enable_rin = true;
  bool enable_phase_noise = true;
};

/// CW laser emitting one field sample per symbol slot. Each sample carries
/// RIN power fluctuation and a phase random walk with variance
/// 2*pi*linewidth/symbol_rate per step (standard Wiener phase-noise model).
class laser {
 public:
  laser(laser_config config, rng noise_stream,
        energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Emit `symbols` consecutive carrier samples.
  [[nodiscard]] waveform emit(std::size_t symbols);

  /// Batch emit into preallocated storage (`out` is overwritten). Noise is
  /// drawn with a single batched RNG fill; the result is bit-identical to
  /// calling `emit_one` `symbols` times.
  void emit(std::size_t symbols, waveform& out);

  /// Emit a single carrier sample (advances the phase walk).
  [[nodiscard]] field emit_one();

  /// Intensity-path kernel: per-symbol optical powers [mW] without the
  /// phasor construction. RIN and phase-walk noise are drawn in exactly
  /// the scalar order (so the stream stays aligned with `emit_one`), but
  /// the trigonometric projection of the phase is skipped — the carrier
  /// phase is unobservable under direct square-law detection.
  void emit_powers(std::span<double> out_powers);

  [[nodiscard]] const laser_config& config() const { return config_; }

 private:
  /// Noise draws consumed per emitted symbol (RIN + phase walk).
  [[nodiscard]] std::size_t draws_per_symbol() const;

  /// Apply one symbol's pre-drawn noise; returns the symbol power [mW]
  /// and advances the phase walk.
  double step_power(const double*& draw);

  laser_config config_;
  rng gen_;
  double phase_ = 0.0;
  double phase_step_sigma_ = 0.0;
  double rin_sigma_mw_ = 0.0;  ///< RIN power fluctuation, hoisted from config
  std::vector<double> noise_scratch_;  ///< batched noise draws, reused
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
