// photodetector.hpp — photodiode + transimpedance receiver model.
//
// The photodetector is the analog summation element of P1 (its finite
// bandwidth integrates consecutive symbol powers into one photocurrent)
// and the readout element of P2/P3. The model converts optical power to
// photocurrent via responsivity, adds shot + thermal noise, and applies
// saturation.
#pragma once

#include <span>
#include <vector>

#include "photonics/energy.hpp"
#include "photonics/noise.hpp"
#include "photonics/optical.hpp"
#include "photonics/rng.hpp"

namespace onfiber::phot {

struct photodetector_config {
  double responsivity_a_w = 1.0;     ///< A/W (InGaAs @ 1550 nm ~ 0.9-1.1)
  double dark_current_a = 5e-9;      ///< dark current
  double saturation_current_a = 10e-3;  ///< clipping level
  receiver_noise_config noise{};     ///< shot/thermal configuration
};

/// Square-law detector: photocurrent i = R * P + dark + noise.
class photodetector {
 public:
  photodetector(photodetector_config config, rng noise_stream,
                energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Detect a single field sample -> photocurrent [A].
  [[nodiscard]] double detect(field in);

  /// Detect a whole waveform sample-by-sample -> currents [A].
  [[nodiscard]] std::vector<double> detect(std::span<const field> in);

  /// Integrate-and-dump over a waveform: the averaged photocurrent of all
  /// samples, i.e. the analog accumulation used by P1. Noise is applied to
  /// the integrated value with the noise bandwidth reduced by the symbol
  /// count (coherent integration gain).
  [[nodiscard]] double integrate(std::span<const field> in);

  /// Intensity-domain twin of `integrate`: the per-symbol optical powers
  /// [mW] are already known (fused kernels track power directly, since a
  /// square-law detector cannot observe the field phase anyway).
  [[nodiscard]] double integrate_power(std::span<const double> power_mw);

  /// Advance the noise stream past `readouts` detect/integrate readouts
  /// in O(1) — each readout consumes exactly one counter draw index.
  void skip_readouts(std::uint64_t readouts) { noise_.skip(readouts); }

  [[nodiscard]] const photodetector_config& config() const { return config_; }

  /// Noiseless expected current for a given optical power [mW] — the
  /// calibration reference used by converters and tests.
  [[nodiscard]] double expected_current_a(double power_mw) const {
    return config_.responsivity_a_w * power_mw * 1e-3 +
           config_.dark_current_a;
  }

 private:
  [[nodiscard]] double clip(double current_a) const;
  [[nodiscard]] double integrate_mean(double mean_power_mw,
                                      std::size_t symbols);

  photodetector_config config_;
  counter_stream noise_;  ///< one draw index per readout, always
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
  std::vector<double> noise_scratch_;  ///< batched noise draws, reused
  std::vector<double> power_scratch_;  ///< per-sample powers for integrate
};

}  // namespace onfiber::phot
