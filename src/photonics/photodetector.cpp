#include "photonics/photodetector.hpp"

#include <algorithm>
#include <cmath>

#include "photonics/simd.hpp"

namespace onfiber::phot {

namespace {
constexpr std::uint64_t kDetectorTag = 0x706474ULL;  // "pdt"
}  // namespace

photodetector::photodetector(photodetector_config config, rng noise_stream,
                             energy_ledger* ledger, energy_costs costs)
    : config_(config),
      noise_(counter_rng::key_of(noise_stream(), kDetectorTag)),
      ledger_(ledger),
      costs_(costs) {}

double photodetector::clip(double current_a) const {
  return std::clamp(current_a, -config_.saturation_current_a,
                    config_.saturation_current_a);
}

double photodetector::detect(field in) {
  const double signal_a = expected_current_a(power_mw(in));
  const double noise_a =
      config_.noise.sample_current_noise_a(signal_a, noise_);
  if (ledger_ != nullptr) {
    ledger_->charge("photodetector", costs_.photodetector_readout_j);
  }
  return clip(signal_a + noise_a);
}

std::vector<double> photodetector::detect(std::span<const field> in) {
  const std::size_t n = in.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  // Two-pass, unconditionally: a readout consumes one counter draw index
  // whether or not its variance is positive (a zero variance multiplies
  // the draw by exactly 0.0), so the fill needs no gating on the noise
  // configuration and batch stays bit-identical to the scalar loop.
  const receiver_noise_config& nz = config_.noise;
  const double t_sigma =
      nz.enable_thermal
          ? thermal_noise_sigma_a(nz.load_ohm, nz.temperature_k,
                                  nz.bandwidth_hz)
          : 0.0;
  const double t_var = t_sigma * t_sigma;
  noise_scratch_.resize(n);
  noise_.fill_normal(noise_scratch_);
  const double sat = config_.saturation_current_a;
  const bool shot = nz.enable_shot;
  const double bandwidth = nz.bandwidth_hz;
  for (std::size_t i = 0; i < n; ++i) {
    const double signal_a = expected_current_a(power_mw(in[i]));
    double variance = 0.0;
    if (shot) {
      const double s = shot_noise_sigma_a(signal_a, bandwidth);
      variance += s * s;
    }
    variance += t_var;
    double c = signal_a + std::sqrt(variance) * noise_scratch_[i];
    c = c < -sat ? -sat : c;
    c = c > sat ? sat : c;
    out[i] = c;
  }
  if (ledger_ != nullptr) {
    // Per-element charges, same sequence as the scalar loop (one bulk
    // joules multiply would round the ledger total differently).
    for (std::size_t i = 0; i < n; ++i) {
      ledger_->charge("photodetector", costs_.photodetector_readout_j);
    }
  }
  return out;
}

double photodetector::integrate_mean(double mean_power_mw,
                                     std::size_t symbols) {
  const double signal_a = expected_current_a(mean_power_mw);

  // Integrating N symbols narrows the effective noise bandwidth by N:
  // sample the noise with B' = B / N by scaling the variance, which for
  // Gaussian noise equals scaling sigma by 1/sqrt(N).
  receiver_noise_config narrowed = config_.noise;
  narrowed.bandwidth_hz /= static_cast<double>(symbols);
  const double noise_a = narrowed.sample_current_noise_a(signal_a, noise_);

  if (ledger_ != nullptr) {
    ledger_->charge("photodetector", costs_.photodetector_readout_j);
  }
  return clip(signal_a + noise_a);
}

double photodetector::integrate(std::span<const field> in) {
  if (in.empty()) return 0.0;
  // Project to powers first so field- and power-domain integration sum
  // identical values in the identical (blocked) order.
  power_scratch_.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    power_scratch_[i] = power_mw(in[i]);
  }
  return integrate_power(power_scratch_);
}

double photodetector::integrate_power(std::span<const double> power_mw) {
  if (power_mw.empty()) return 0.0;
  const double mean_power_mw =
      simd::active().blocked_sum(power_mw.data(), power_mw.size()) /
      static_cast<double>(power_mw.size());
  return integrate_mean(mean_power_mw, power_mw.size());
}

}  // namespace onfiber::phot
