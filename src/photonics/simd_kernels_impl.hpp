// simd_kernels_impl.hpp — the one source of truth for the dispatched
// kernel loops. Each simd_kernels_<level>.cpp includes this header and is
// compiled with that level's -m flags; the loops are written as plain
// branch-free element-wise passes so the auto-vectorizer can widen them
// without changing a single result (see the contract in simd.hpp).
//
// Everything here has internal linkage on purpose: four copies of these
// functions exist in the binary, one per ISA, and the tables hand out
// pointers to their own TU's copies.
#pragma once

#include <cstddef>
#include <cstdint>

#include "photonics/rng_counter_detail.hpp"
#include "photonics/simd.hpp"

namespace onfiber::phot::simd {
namespace {

void fill_normal_kernel(std::uint64_t key, std::uint64_t base, double* out,
                        std::size_t n) {
  // Blocked: uniforms land in a stack buffer so the tail fixup still has
  // them after the central pass overwrites `out`. Both hot passes are
  // branch-free and vectorize; the tail pass (~4.85% taken) calls the
  // shared scalar function, so every ISA produces the same tail bits.
  constexpr std::size_t kBlock = 512;
  double u[kBlock];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = n - done < kBlock ? n - done : kBlock;
    const std::uint64_t b = base + done;
    for (std::size_t i = 0; i < m; ++i) {
      u[i] = detail::counter_uniform_open(key, b + i);
    }
    for (std::size_t i = 0; i < m; ++i) {
      out[done + i] = detail::inv_normal_central(u[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (u[i] < detail::kInvNormPLow || u[i] > detail::kInvNormPHigh) {
        out[done + i] = detail::inv_normal_tail(u[i]);
      }
    }
    done += m;
  }
}

void rin_power_kernel(const double* noise, std::size_t n, double base_mw,
                      double sigma_mw, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double p = base_mw + sigma_mw * noise[i];
    out[i] = p < 0.0 ? 0.0 : p;
  }
}

/// Branch-free quantize-to-grid (clip as min/max, then snap). Must stay
/// in this exact arithmetic order: the scalar converter paths compute the
/// same expression.
inline double quantize_bf(double value, double full_scale, double levels) {
  double c = value < 0.0 ? 0.0 : value;
  c = c > full_scale ? full_scale : c;
  return std::round(c / full_scale * levels) / levels * full_scale;
}

void dac_pass_kernel(const double* in, const double* noise, std::size_t n,
                     double full_scale, double levels, double sigma,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double q = quantize_bf(in[i], full_scale, levels);
    double o = q + sigma * noise[i];
    o = o < 0.0 ? 0.0 : o;
    o = o > full_scale ? full_scale : o;
    out[i] = o;
  }
}

void adc_pass_kernel(const double* in, const double* noise, std::size_t n,
                     double full_scale, double levels, double sigma,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = quantize_bf(in[i] + sigma * noise[i], full_scale, levels);
  }
}

void triple_product_kernel(const double* p, const double* a, const double* b,
                           std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = p[i] * a[i] * b[i];
  }
}

double blocked_sum_kernel(const double* x, std::size_t n) {
  // Eight independent accumulators, folded in a fixed tree: accumulator j
  // sees x[j], x[8+j], x[16+j], ... in order at every vector width, so
  // scalar, SSE (2 lanes), AVX2 (4) and AVX-512 (8) all round the same.
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) acc[j] += x[i + j];
  }
  for (std::size_t j = 0; i < n; ++i, ++j) acc[j] += x[i];
  const double a01 = acc[0] + acc[1];
  const double a23 = acc[2] + acc[3];
  const double a45 = acc[4] + acc[5];
  const double a67 = acc[6] + acc[7];
  return (a01 + a23) + (a45 + a67);
}

[[maybe_unused]] kernel_table make_kernel_table(level lvl, const char* name) {
  kernel_table t;
  t.lvl = lvl;
  t.name = name;
  t.fill_normal = &fill_normal_kernel;
  t.rin_power = &rin_power_kernel;
  t.dac_pass = &dac_pass_kernel;
  t.adc_pass = &adc_pass_kernel;
  t.triple_product = &triple_product_kernel;
  t.blocked_sum = &blocked_sum_kernel;
  return t;
}

}  // namespace
}  // namespace onfiber::phot::simd
