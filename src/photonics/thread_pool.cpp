#include "thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace onfiber::phot {

namespace {

// Upper bound on helper threads: requests beyond this (e.g. a test asking
// for 64 workers on a 1-core container) still execute correctly — extra
// workers would only fight over the row counter without changing results,
// so capping is purely a resource guard.
constexpr std::size_t kMaxHelpers = 64;

bool& in_worker_flag() {
  thread_local bool flag = false;
  return flag;
}

}  // namespace

thread_pool& thread_pool::instance() {
  static thread_pool pool;
  return pool;
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool thread_pool::in_worker() { return in_worker_flag(); }

std::size_t thread_pool::workers_alive() const {
  std::lock_guard<std::mutex> lk(m_);
  return workers_.size();
}

void thread_pool::ensure_workers(std::size_t helpers) {
  std::lock_guard<std::mutex> lk(m_);
  while (workers_.size() < helpers) {
    const std::size_t index = workers_.size();
    // A worker spawned mid-life must not mistake the previous batch's
    // generation for new work: seed its "last seen" counter with the
    // current generation under the same lock that publishes batches.
    const std::uint64_t seen = generation_;
    startups_.fetch_add(1, std::memory_order_relaxed);
    workers_.emplace_back([this, index, seen] { worker_loop_from(index, seen); });
  }
}

void thread_pool::worker_loop_from(std::size_t index, std::uint64_t seen) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      if (index >= helpers_wanted_) continue;  // parked for this batch
    }
    claim_rows();
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--helpers_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void thread_pool::claim_rows() {
  struct scope_flag {
    scope_flag() { in_worker_flag() = true; }
    ~scope_flag() { in_worker_flag() = false; }
  } flag;
  const std::size_t rows = rows_;
  const auto& fn = *fn_;
  while (!cancelled_.load(std::memory_order_relaxed)) {
    const std::size_t r = next_row_.fetch_add(1, std::memory_order_relaxed);
    if (r >= rows) break;
    try {
      fn(r);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_m_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      cancelled_.store(true, std::memory_order_relaxed);
      break;
    }
  }
}

void thread_pool::run(std::size_t rows, std::size_t max_workers,
                      const std::function<void(std::size_t)>& fn) {
  if (rows == 0) return;
  if (obs::enabled()) {
    // Function-local statics: the pool outlives any fabric/runtime, so
    // it resolves its handles lazily rather than at construction.
    static obs::counter& dispatches =
        obs::registry::global().get_counter("pool.dispatches");
    static obs::counter& dispatched_rows =
        obs::registry::global().get_counter("pool.rows");
    dispatches.add();
    dispatched_rows.add(rows);
  }
  if (max_workers <= 1 || rows <= 1 || in_worker_flag()) {
    // Nested call from inside a batch (or a degenerate request): run
    // inline; taking run_m_ from a worker would deadlock.
    for (std::size_t r = 0; r < rows; ++r) fn(r);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_m_);
  const std::size_t participants = std::min(max_workers, rows);
  const std::size_t helpers = std::min(participants - 1, kMaxHelpers);
  ensure_workers(helpers);
  {
    std::lock_guard<std::mutex> lk(m_);
    rows_ = rows;
    fn_ = &fn;
    next_row_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    helpers_wanted_ = helpers;
    helpers_remaining_ = helpers;
    ++generation_;
  }
  work_cv_.notify_all();

  claim_rows();  // the caller is a participant too

  {
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return helpers_remaining_ == 0; });
    fn_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace onfiber::phot
