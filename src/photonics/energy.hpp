// energy.hpp — per-operation energy accounting.
//
// The paper's §2.2 argues two quantitative points:
//   1. a photonic 8-bit MAC costs ~40 aJ vs ~70 fJ on a TPU (1750x), and
//   2. keeping data optical removes the DAC/ADC conversions that dominate
//      conventional photonic accelerators (Lightning-style designs).
// Reproducing those claims requires every simulated device to report the
// energy it spends. `energy_ledger` is a passive observer that devices
// charge; benches read it out per experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace onfiber::phot {

/// Default energy costs per elementary operation [J]. Values follow the
/// paper's citations: photonic MAC from Sludds et al. [50] (40 aJ / 8-bit
/// MAC); TPU MAC from Jouppi et al. [28] as quoted in §2.2 (7e-14 J);
/// converter costs from published 8-bit multi-GS/s DAC/ADC surveys
/// (~1 pJ/conversion class devices used in coherent transponders).
struct energy_costs {
  double photonic_mac_j = 40e-18;       ///< photonic multiply-accumulate
  double digital_tpu_mac_j = 70e-15;    ///< TPU 8-bit MAC (paper §2.2)
  double digital_gpu_mac_j = 150e-15;   ///< GPU 8-bit MAC (A100 class)
  double digital_cpu_mac_j = 5e-12;     ///< general-purpose CPU MAC
  double dac_conversion_j = 1e-12;      ///< one 8-bit DAC sample
  double adc_conversion_j = 1.5e-12;    ///< one 8-bit ADC sample
  double modulator_drive_j = 50e-15;    ///< charging a modulator electrode
  double photodetector_readout_j = 10e-15;  ///< TIA readout per symbol
  double laser_j_per_symbol = 100e-15;  ///< amortized laser wall power
  double sram_access_j = 10e-12;        ///< weight fetch in digital baseline
};

/// Accumulates energy [J] and op counts under named categories.
///
/// Devices take a `energy_ledger*` observer; passing nullptr disables
/// accounting with zero overhead beyond a branch.
class energy_ledger {
 public:
  /// Charge `joules` under `category`, counting one operation.
  void charge(std::string_view category, double joules) {
    auto& e = entries_[std::string(category)];
    e.joules += joules;
    e.ops += 1;
  }

  /// Charge `joules` under `category` spread over `ops` operations.
  void charge(std::string_view category, double joules, std::uint64_t ops) {
    auto& e = entries_[std::string(category)];
    e.joules += joules;
    e.ops += ops;
  }

  /// Total energy across all categories [J].
  [[nodiscard]] double total_joules() const {
    double sum = 0.0;
    for (const auto& [name, e] : entries_) sum += e.joules;
    return sum;
  }

  /// Energy recorded under one category [J] (0 if absent).
  [[nodiscard]] double joules(std::string_view category) const {
    const auto it = entries_.find(std::string(category));
    return it == entries_.end() ? 0.0 : it->second.joules;
  }

  /// Operation count recorded under one category (0 if absent).
  [[nodiscard]] std::uint64_t ops(std::string_view category) const {
    const auto it = entries_.find(std::string(category));
    return it == entries_.end() ? 0 : it->second.ops;
  }

  struct entry {
    double joules = 0.0;
    std::uint64_t ops = 0;
  };

  /// All categories, for report printing. Ordered (std::map) so output
  /// is deterministic.
  [[nodiscard]] const std::map<std::string, entry>& entries() const {
    return entries_;
  }

  /// Fold another ledger's entries into this one. Used by the parallel
  /// GEMV path: each row charges a private ledger, and rows are merged in
  /// row order at the barrier so totals are independent of thread count.
  void merge(const energy_ledger& other) {
    for (const auto& [name, e] : other.entries_) {
      auto& mine = entries_[name];
      mine.joules += e.joules;
      mine.ops += e.ops;
    }
  }

  void reset() { entries_.clear(); }

 private:
  std::map<std::string, entry> entries_;
};

}  // namespace onfiber::phot
