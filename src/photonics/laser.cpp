#include "photonics/laser.hpp"

#include <cmath>
#include <numbers>

namespace onfiber::phot {

laser::laser(laser_config config, rng noise_stream, energy_ledger* ledger,
             energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      ledger_(ledger),
      costs_(costs) {
  if (config_.enable_phase_noise && config_.symbol_rate_hz > 0.0) {
    phase_step_sigma_ = std::sqrt(2.0 * std::numbers::pi *
                                  config_.linewidth_hz /
                                  config_.symbol_rate_hz);
  }
  if (config_.enable_rin) {
    // RIN integrated over the symbol bandwidth, as a multiplicative
    // Gaussian power fluctuation. The sigma depends only on the configured
    // carrier power, so it is evaluated once here instead of per symbol.
    rin_sigma_mw_ =
        rin_sigma_mw(config_.power_mw, config_.rin_db_hz,
                     config_.symbol_rate_hz);
  }
}

std::size_t laser::draws_per_symbol() const {
  return (config_.enable_rin ? 1u : 0u) +
         (phase_step_sigma_ > 0.0 ? 1u : 0u);
}

double laser::step_power(const double*& draw) {
  double power = config_.power_mw;
  if (config_.enable_rin) {
    power += rin_sigma_mw_ * *draw++;
    if (power < 0.0) power = 0.0;
  }
  if (phase_step_sigma_ > 0.0) {
    phase_ += phase_step_sigma_ * *draw++;
    // Keep the accumulated phase bounded for numerical hygiene.
    if (phase_ > 1e6 || phase_ < -1e6) {
      phase_ = std::remainder(phase_, 2.0 * std::numbers::pi);
    }
  }
  return power;
}

field laser::emit_one() {
  double draws[2];
  const std::size_t n_draws = draws_per_symbol();
  for (std::size_t i = 0; i < n_draws; ++i) draws[i] = gen_.normal();
  const double* cursor = draws;
  const double power = step_power(cursor);
  if (ledger_ != nullptr) {
    ledger_->charge("laser", costs_.laser_j_per_symbol);
  }
  return make_field(power, phase_);
}

void laser::emit(std::size_t symbols, waveform& out) {
  out.resize(symbols);
  const std::size_t per_symbol = draws_per_symbol();
  noise_scratch_.resize(per_symbol * symbols);
  gen_.fill_normal(noise_scratch_);
  const double* cursor = noise_scratch_.data();
  for (std::size_t i = 0; i < symbols; ++i) {
    // Sequence the power step before reading phase_ (step_power mutates it).
    const double power = step_power(cursor);
    out[i] = make_field(power, phase_);
  }
  if (ledger_ != nullptr && symbols > 0) {
    ledger_->charge("laser",
                    costs_.laser_j_per_symbol * static_cast<double>(symbols),
                    symbols);
  }
}

void laser::emit_powers(std::span<double> out_powers) {
  const std::size_t symbols = out_powers.size();
  const std::size_t per_symbol = draws_per_symbol();
  noise_scratch_.resize(per_symbol * symbols);
  // Pass 1 (scalar, sequence-preserving): all noise draws up front, in
  // exactly the interleaved [RIN, phase] order step_power consumes them.
  gen_.fill_normal(noise_scratch_);
  const double* draws = noise_scratch_.data();
  const bool has_rin = config_.enable_rin;
  const bool has_phase = phase_step_sigma_ > 0.0;
  // Pass 2a (branch-free, vectorizable): symbol powers from the RIN draws.
  if (has_rin) {
    const double base = config_.power_mw;
    const double sigma = rin_sigma_mw_;
    for (std::size_t i = 0; i < symbols; ++i) {
      const double p = base + sigma * draws[i * per_symbol];
      out_powers[i] = p < 0.0 ? 0.0 : p;
    }
  } else {
    for (std::size_t i = 0; i < symbols; ++i) out_powers[i] = config_.power_mw;
  }
  // Pass 2b (scalar, order-preserving): the phase walk is a running sum,
  // so its additions must stay in symbol order to keep phase_ bit-exact.
  if (has_phase) {
    const std::size_t offset = has_rin ? 1 : 0;
    const double sigma = phase_step_sigma_;
    double ph = phase_;
    for (std::size_t i = 0; i < symbols; ++i) {
      ph += sigma * draws[i * per_symbol + offset];
      if (ph > 1e6 || ph < -1e6) {
        ph = std::remainder(ph, 2.0 * std::numbers::pi);
      }
    }
    phase_ = ph;
  }
  if (ledger_ != nullptr && symbols > 0) {
    ledger_->charge("laser",
                    costs_.laser_j_per_symbol * static_cast<double>(symbols),
                    symbols);
  }
}

waveform laser::emit(std::size_t symbols) {
  waveform out;
  emit(symbols, out);
  return out;
}

}  // namespace onfiber::phot
