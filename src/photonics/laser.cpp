#include "photonics/laser.hpp"

#include <cmath>
#include <numbers>

namespace onfiber::phot {

laser::laser(laser_config config, rng noise_stream, energy_ledger* ledger,
             energy_costs costs)
    : config_(config),
      gen_(noise_stream),
      ledger_(ledger),
      costs_(costs) {
  if (config_.enable_phase_noise && config_.symbol_rate_hz > 0.0) {
    phase_step_sigma_ = std::sqrt(2.0 * std::numbers::pi *
                                  config_.linewidth_hz /
                                  config_.symbol_rate_hz);
  }
}

field laser::emit_one() {
  double power = config_.power_mw;
  if (config_.enable_rin) {
    // RIN integrated over the symbol bandwidth, as a multiplicative
    // Gaussian power fluctuation.
    const double sigma =
        rin_sigma_mw(power, config_.rin_db_hz, config_.symbol_rate_hz);
    power += gen_.normal(0.0, sigma);
    if (power < 0.0) power = 0.0;
  }
  if (phase_step_sigma_ > 0.0) {
    phase_ += gen_.normal(0.0, phase_step_sigma_);
    // Keep the accumulated phase bounded for numerical hygiene.
    if (phase_ > 1e6 || phase_ < -1e6) {
      phase_ = std::remainder(phase_, 2.0 * std::numbers::pi);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->charge("laser", costs_.laser_j_per_symbol);
  }
  return make_field(power, phase_);
}

waveform laser::emit(std::size_t symbols) {
  waveform out;
  out.reserve(symbols);
  for (std::size_t i = 0; i < symbols; ++i) out.push_back(emit_one());
  return out;
}

}  // namespace onfiber::phot
