#include "photonics/laser.hpp"

#include <cmath>
#include <numbers>

#include "photonics/simd.hpp"

namespace onfiber::phot {

namespace {

/// Purpose tags separating the laser's two streams under one seed.
constexpr std::uint64_t kRinTag = 0x6c61735249ULL;    // "lasRI"
constexpr std::uint64_t kPhaseTag = 0x6c61735048ULL;  // "lasPH"

std::uint64_t stream_base(rng& noise_stream) { return noise_stream(); }

}  // namespace

laser::laser(laser_config config, rng noise_stream, energy_ledger* ledger,
             energy_costs costs)
    : config_(config),
      rin_stream_(0),
      phase_stream_(0),
      ledger_(ledger),
      costs_(costs) {
  // Derive the two per-purpose counter keys from one draw of the seed
  // stream: RIN and phase draws live on unrelated streams, so either can
  // be filled, skipped, or vectorized without disturbing the other.
  const std::uint64_t base = stream_base(noise_stream);
  rin_stream_ = counter_stream(counter_rng::key_of(base, kRinTag));
  phase_stream_ = counter_stream(counter_rng::key_of(base, kPhaseTag));
  if (config_.enable_phase_noise && config_.symbol_rate_hz > 0.0) {
    phase_step_sigma_ = std::sqrt(2.0 * std::numbers::pi *
                                  config_.linewidth_hz /
                                  config_.symbol_rate_hz);
  }
  if (config_.enable_rin) {
    // RIN integrated over the symbol bandwidth, as a multiplicative
    // Gaussian power fluctuation. The sigma depends only on the configured
    // carrier power, so it is evaluated once here instead of per symbol.
    rin_sigma_mw_ =
        rin_sigma_mw(config_.power_mw, config_.rin_db_hz,
                     config_.symbol_rate_hz);
  }
}

void laser::skip_symbols(std::uint64_t symbols) {
  rin_stream_.skip(symbols);
  phase_stream_.skip(symbols);
}

field laser::emit_one() {
  // Every symbol consumes exactly one index of each stream — disabled
  // noise skips the index rather than not consuming it — so stream
  // positions are a pure function of symbols emitted, whatever the
  // config. That invariant is what makes skip_symbols O(1).
  double power = config_.power_mw;
  if (config_.enable_rin) {
    power += rin_sigma_mw_ * rin_stream_.normal();
    if (power < 0.0) power = 0.0;
  } else {
    rin_stream_.skip(1);
  }
  if (phase_step_sigma_ > 0.0) {
    phase_ += phase_step_sigma_ * phase_stream_.normal();
    // Keep the accumulated phase bounded for numerical hygiene.
    if (phase_ > 1e6 || phase_ < -1e6) {
      phase_ = std::remainder(phase_, 2.0 * std::numbers::pi);
    }
  } else {
    phase_stream_.skip(1);
  }
  if (ledger_ != nullptr) {
    ledger_->charge("laser", costs_.laser_j_per_symbol);
  }
  return make_field(power, phase_);
}

void laser::emit(std::size_t symbols, waveform& out) {
  out.resize(symbols);
  const bool has_rin = config_.enable_rin;
  const bool has_phase = phase_step_sigma_ > 0.0;
  const double* rin_draws = nullptr;
  const double* phase_draws = nullptr;
  if (has_rin) {
    rin_scratch_.resize(symbols);
    rin_stream_.fill_normal(rin_scratch_);
    rin_draws = rin_scratch_.data();
  } else {
    rin_stream_.skip(symbols);
  }
  if (has_phase) {
    phase_scratch_.resize(symbols);
    phase_stream_.fill_normal(phase_scratch_);
    phase_draws = phase_scratch_.data();
  } else {
    phase_stream_.skip(symbols);
  }
  const double base = config_.power_mw;
  const double rin_sigma = rin_sigma_mw_;
  const double phase_sigma = phase_step_sigma_;
  for (std::size_t i = 0; i < symbols; ++i) {
    double power = base;
    if (has_rin) {
      power += rin_sigma * rin_draws[i];
      if (power < 0.0) power = 0.0;
    }
    if (has_phase) {
      phase_ += phase_sigma * phase_draws[i];
      if (phase_ > 1e6 || phase_ < -1e6) {
        phase_ = std::remainder(phase_, 2.0 * std::numbers::pi);
      }
    }
    out[i] = make_field(power, phase_);
  }
  if (ledger_ != nullptr && symbols > 0) {
    ledger_->charge("laser",
                    costs_.laser_j_per_symbol * static_cast<double>(symbols),
                    symbols);
  }
}

void laser::emit_powers(std::span<double> out_powers) {
  const std::size_t symbols = out_powers.size();
  const bool has_rin = config_.enable_rin;
  const bool has_phase = phase_step_sigma_ > 0.0;
  // RIN pass: dispatched counter fill + branch-free power pass, both
  // vectorized at the active SIMD level (same draw indices as emit_one).
  if (has_rin) {
    rin_scratch_.resize(symbols);
    rin_stream_.fill_normal(rin_scratch_);
    simd::active().rin_power(rin_scratch_.data(), symbols, config_.power_mw,
                             rin_sigma_mw_, out_powers.data());
  } else {
    rin_stream_.skip(symbols);
    for (std::size_t i = 0; i < symbols; ++i) out_powers[i] = config_.power_mw;
  }
  // Phase pass: the walk is a running sum, so its additions stay in
  // symbol order to keep phase_ bit-exact with the scalar path; only the
  // draw generation is vectorized.
  if (has_phase) {
    phase_scratch_.resize(symbols);
    phase_stream_.fill_normal(phase_scratch_);
    const double sigma = phase_step_sigma_;
    double ph = phase_;
    for (std::size_t i = 0; i < symbols; ++i) {
      ph += sigma * phase_scratch_[i];
      if (ph > 1e6 || ph < -1e6) {
        ph = std::remainder(ph, 2.0 * std::numbers::pi);
      }
    }
    phase_ = ph;
  } else {
    phase_stream_.skip(symbols);
  }
  if (ledger_ != nullptr && symbols > 0) {
    ledger_->charge("laser",
                    costs_.laser_j_per_symbol * static_cast<double>(symbols),
                    symbols);
  }
}

waveform laser::emit(std::size_t symbols) {
  waveform out;
  emit(symbols, out);
  return out;
}

}  // namespace onfiber::phot
