#include "photonics/kernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "photonics/thread_pool.hpp"

namespace onfiber::phot {

namespace {

std::size_t parse_env_thread_count() {
  if (const char* env = std::getenv("ONFIBER_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;
}

// ONFIBER_THREADS is parsed once per process: the lookup sat on every
// parallel kernel call, and getenv is not something to hammer from the
// GEMV hot path. Tests that change the variable mid-process call
// refresh_kernel_thread_count_cache().
std::size_t& env_thread_count_cache() {
  static std::size_t cached = 0;
  return cached;
}

std::once_flag env_thread_count_once;

}  // namespace

void refresh_kernel_thread_count_cache() {
  // Re-arm the cache from the current environment. Test-only: not safe
  // against concurrently running kernels.
  std::call_once(env_thread_count_once, [] {});
  env_thread_count_cache() = parse_env_thread_count();
}

std::size_t kernel_thread_count(std::size_t override_count) {
  if (override_count > 0) return override_count;
  std::call_once(env_thread_count_once,
                 [] { env_thread_count_cache() = parse_env_thread_count(); });
  if (const std::size_t env = env_thread_count_cache(); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_rows(std::size_t rows, std::size_t threads,
                   const std::function<void(std::size_t)>& fn) {
  if (rows == 0) return;
  if (threads <= 1 || rows <= 1 || thread_pool::in_worker()) {
    // Inline: degenerate shapes, single-threaded runs, and nested calls
    // from inside a pool batch (which must not re-enter the pool).
    for (std::size_t r = 0; r < rows; ++r) fn(r);
    return;
  }
  thread_pool::instance().run(rows, threads, fn);
}

}  // namespace onfiber::phot
