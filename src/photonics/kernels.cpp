#include "photonics/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace onfiber::phot {

std::size_t kernel_thread_count(std::size_t override_count) {
  if (override_count > 0) return override_count;
  if (const char* env = std::getenv("ONFIBER_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_rows(std::size_t rows, std::size_t threads,
                   const std::function<void(std::size_t)>& fn) {
  if (rows == 0) return;
  if (threads <= 1 || rows <= 1) {
    for (std::size_t r = 0; r < rows; ++r) fn(r);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t r = next.fetch_add(1, std::memory_order_relaxed);
      if (r >= rows) return;
      try {
        fn(r);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const std::size_t n_workers = std::min(threads, rows);
  std::vector<std::thread> pool;
  pool.reserve(n_workers - 1);
  for (std::size_t t = 1; t < n_workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace onfiber::phot
