// modulator.hpp — electro-optic modulator models.
//
// Two modulator types appear in the paper's primitives (Fig. 2):
//
//   * `mzm_modulator`   — Mach-Zehnder intensity modulator. The field
//     transfer is cos(pi/2 * v/V_pi + bias); intensity follows the
//     familiar raised-cosine curve. Cascading two MZMs multiplies their
//     intensity transmissions, which is how P1 computes a_i * b_i.
//   * `phase_modulator` — pure phase encoder, used by P2 to put data and
//     pattern onto the carrier phase before interference.
//
// Both models include insertion loss, finite extinction ratio and bias
// drift, which are the dominant static error sources in fabricated PICs.
#pragma once

#include <span>

#include "photonics/energy.hpp"
#include "photonics/optical.hpp"
#include "photonics/rng.hpp"
#include "photonics/units.hpp"

namespace onfiber::phot {

/// Common electro-optic parameters.
struct modulator_config {
  double v_pi = 4.0;              ///< half-wave voltage [V]
  double insertion_loss_db = 3.0; ///< on-chip insertion loss
  double extinction_ratio_db = 30.0;  ///< finite extinction (min transmission)
  double bias_error_sigma_rad = 0.0;  ///< static bias-point error, sampled once
  double max_drive_v = 8.0;       ///< driver clipping voltage
};

/// Mach-Zehnder intensity modulator.
///
/// Drive conventions: `modulate(E, v)` applies the physical transfer
/// directly. For computing, `encode_unit(E, x)` maps x in [0,1] to an
/// intensity transmission of x by inverting the sin^2 transfer (arcsine
/// pre-compensation), which is what calibrated photonic MAC hardware does.
class mzm_modulator {
 public:
  /// `bias_rad` sets the static operating point added to the drive phase:
  /// pi/2 = quadrature (linear-ish region), 0 = peak transmission.
  mzm_modulator(modulator_config config, double bias_rad, rng bias_noise,
                energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Physical transfer: field out for field in at drive voltage v.
  [[nodiscard]] field modulate(field in, double drive_v);

  /// Calibrated encode: intensity transmission == clamp(x, 0, 1)
  /// (up to extinction-ratio floor and bias error).
  [[nodiscard]] field encode_unit(field in, double x);

  /// Batch calibrated encode, in place: io[i] <- encode_unit(io[i], x[i]).
  /// Bit-identical to the scalar loop; a single bulk ledger charge.
  void encode(std::span<const double> x, waveform& io);

  /// Intensity-domain kernel for direct-detection paths: writes the
  /// calibrated intensity transmission (extinction floor, bias error and
  /// insertion loss included) of each x into `t_out`. With a calibrated
  /// bias (no bias error) the transfer collapses algebraically to
  /// max(clamp(x), floor) * loss — no trigonometry per symbol.
  void encode_intensity(std::span<const double> x, std::span<double> t_out);

  /// Intensity transmission at drive voltage v (no noise), for tests.
  [[nodiscard]] double intensity_transfer(double drive_v) const;

  [[nodiscard]] const modulator_config& config() const { return config_; }
  [[nodiscard]] double bias_rad() const { return bias_rad_; }

 private:
  [[nodiscard]] field apply_phase_arg(field in, double total_phase_rad) const;
  [[nodiscard]] field encode_unit_core(field in, double x) const;

  modulator_config config_;
  double bias_rad_;
  double bias_error_rad_ = 0.0;  ///< fixed fabrication/bias-control error
  double floor_transmission_ = 0.0;
  double field_loss_scale_ = 1.0;      ///< insertion loss, field amplitude
  double intensity_loss_ratio_ = 1.0;  ///< insertion loss, intensity
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

/// Pure phase modulator: multiplies the field by exp(i * pi * v / V_pi).
class phase_modulator {
 public:
  phase_modulator(modulator_config config, rng bias_noise,
                  energy_ledger* ledger = nullptr, energy_costs costs = {});

  /// Apply a drive voltage; phase shift = pi * v / V_pi (+ static error).
  [[nodiscard]] field modulate(field in, double drive_v);

  /// Encode a phase directly in radians (driver computes v = phi*V_pi/pi).
  [[nodiscard]] field encode_phase(field in, double phase_rad);

  [[nodiscard]] const modulator_config& config() const { return config_; }

 private:
  modulator_config config_;
  double phase_error_rad_ = 0.0;
  double field_loss_scale_ = 1.0;  ///< insertion loss, field amplitude
  energy_ledger* ledger_ = nullptr;
  energy_costs costs_{};
};

}  // namespace onfiber::phot
