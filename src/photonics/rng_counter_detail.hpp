// rng_counter_detail.hpp — shared implementation of the counter-based
// normal transform.
//
// Included by rng.cpp (the scalar reference path) and by every per-ISA
// simd_kernels_*.cpp translation unit (the vectorized fills). The two
// must agree bit-for-bit, which holds only when every including TU is
// compiled with -ffp-contract=off (the photonics target forces this):
// with contraction disabled, each floating-point expression here rounds
// operation by operation in source order, so scalar and SIMD lanes — and
// every ISA — produce identical doubles.
//
// The transform is Acklam's rational approximation to the inverse normal
// CDF (relative error < 1.2e-9, far below every physical sigma in the
// device models). The central region (95.15% of draws) is a pure
// polynomial ratio — add/mul/div only, branch-free, vectorizable. The
// tails need log and sqrt and stay scalar; the vector fills call the
// same inline tail function per lane, so tail values match trivially.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace onfiber::phot::detail {

/// splitmix64 increment; (index+1)*gamma keys draw 0 away from the raw key.
inline constexpr std::uint64_t kCounterGamma = 0x9e3779b97f4a7c15ULL;

/// Central/tail split of the Acklam approximation: draws with uniform in
/// [kInvNormPLow, kInvNormPHigh] take the polynomial-only central branch.
inline constexpr double kInvNormPLow = 0.02425;
inline constexpr double kInvNormPHigh = 1.0 - 0.02425;

/// Counter-mode splitmix64: draw `index` of stream `key`, as a pure
/// function of both. Same finalizer as splitmix64(state&), evaluated at
/// the state the sequential form would reach after index+1 steps of a
/// stream whose initial state is `key`.
[[nodiscard]] inline constexpr std::uint64_t counter_draw_u64(
    std::uint64_t key, std::uint64_t index) {
  std::uint64_t z = key + (index + 1) * kCounterGamma;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform in the open interval (0, 1) from the top 52 bits of a draw:
/// ((bits >> 12) + 0.5) * 2^-52, built with an exponent-OR bit trick so
/// the u64 -> double conversion stays in the integer domain (AVX2 has no
/// packed u64 -> f64 instruction; this form vectorizes on every ISA and
/// is exact, so all levels agree). Never returns 0 or 1, so log() in the
/// tail branch is always finite.
[[nodiscard]] inline double counter_uniform_open(std::uint64_t key,
                                                 std::uint64_t index) {
  const std::uint64_t bits =
      (counter_draw_u64(key, index) >> 12) | 0x3ff0000000000000ULL;
  // bit pattern is 1.f in [1, 2); subtract 1 for [0, 1), then shift by
  // half an ulp into (0, 1). Both steps are exact in double.
  return (std::bit_cast<double>(bits) - 1.0) + 0x1.0p-53;
}

/// Acklam central region, valid for p in [kInvNormPLow, kInvNormPHigh].
/// Polynomial ratio only: vectorizes branch-free on every ISA.
[[nodiscard]] inline double inv_normal_central(double p) {
  const double q = p - 0.5;
  const double r = q * q;
  const double num =
      (((((-3.969683028665376e+01 * r + 2.209460984245205e+02) * r -
          2.759285104469687e+02) *
             r +
         1.383577518672690e+02) *
            r -
        3.066479806614716e+01) *
           r +
       2.506628277459239e+00) *
      q;
  const double den =
      ((((-5.447609879822406e+01 * r + 1.615858368580409e+02) * r -
         1.556989798598866e+02) *
            r +
        6.680131188771972e+01) *
           r -
       1.328068155288572e+01) *
          r +
      1.0;
  return num / den;
}

/// Acklam tail region, valid for p outside the central band. Scalar only
/// (log + sqrt); the vector fills call this per tail lane (~4.85% of
/// draws), so all ISAs share the one definition.
[[nodiscard]] inline double inv_normal_tail(double p) {
  const bool upper = p > 0.5;
  const double pp = upper ? 1.0 - p : p;
  const double q = std::sqrt(-2.0 * std::log(pp));
  const double x =
      (((((-7.784894002430293e-03 * q - 3.223964580411365e-01) * q -
          2.400758277161838e+00) *
             q -
         2.549732539343734e+00) *
            q +
        4.374664141464968e+00) *
           q +
       2.938163982698783e+00) /
      ((((7.784695709041462e-03 * q + 3.224671290700398e-01) * q +
         2.445134137142996e+00) *
            q +
        3.754408661907416e+00) *
           q +
       1.0);
  return upper ? -x : x;
}

/// Full inverse normal CDF (reference composition of the two regions).
[[nodiscard]] inline double inv_normal(double p) {
  if (p < kInvNormPLow || p > kInvNormPHigh) return inv_normal_tail(p);
  return inv_normal_central(p);
}

}  // namespace onfiber::phot::detail
