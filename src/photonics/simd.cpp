#include "photonics/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace onfiber::phot::simd {

namespace detail_tables {
// Defined in simd_kernels_<level>.cpp, each compiled with its own -m
// flags. On non-x86 hosts only the scalar TU is built and the others
// alias it (see ONFIBER_SIMD_X86 below).
kernel_table make_table_scalar();
#if defined(ONFIBER_SIMD_X86)
kernel_table make_table_sse4();
kernel_table make_table_avx2();
kernel_table make_table_avx512();
#endif
}  // namespace detail_tables

namespace {

const kernel_table& table_slot(level l) {
  static const kernel_table scalar = detail_tables::make_table_scalar();
#if defined(ONFIBER_SIMD_X86)
  static const kernel_table sse4 = detail_tables::make_table_sse4();
  static const kernel_table avx2 = detail_tables::make_table_avx2();
  static const kernel_table avx512 = detail_tables::make_table_avx512();
  switch (l) {
    case level::sse4:
      return sse4;
    case level::avx2:
      return avx2;
    case level::avx512:
      return avx512;
    case level::scalar:
      break;
  }
#else
  (void)l;
#endif
  return scalar;
}

level detect_host_level() {
#if defined(ONFIBER_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return level::avx512;
  }
  if (__builtin_cpu_supports("avx2")) return level::avx2;
  if (__builtin_cpu_supports("sse4.1")) return level::sse4;
#endif
  return level::scalar;
}

/// ONFIBER_SIMD parse; returns detected (no clamp needed) when unset or
/// unrecognized, and clamps explicit requests to what the host supports.
level resolve_level(level detected) {
  const char* env = std::getenv("ONFIBER_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  level requested = detected;
  if (std::strcmp(env, "scalar") == 0) {
    requested = level::scalar;
  } else if (std::strcmp(env, "sse4") == 0) {
    requested = level::sse4;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = level::avx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = level::avx512;
  } else {
    return detected;
  }
  return requested <= detected ? requested : detected;
}

std::atomic<const kernel_table*>& active_slot() {
  static std::atomic<const kernel_table*> slot{
      &table_slot(resolve_level(detect_host_level()))};
  return slot;
}

}  // namespace

level detected_level() {
  static const level cached = detect_host_level();
  return cached;
}

bool level_supported(level l) { return l <= detected_level(); }

const char* level_name(level l) {
  switch (l) {
    case level::scalar:
      return "scalar";
    case level::sse4:
      return "sse4";
    case level::avx2:
      return "avx2";
    case level::avx512:
      return "avx512";
  }
  return "unknown";
}

const kernel_table& table_for(level l) { return table_slot(l); }

const kernel_table& active() {
  return *active_slot().load(std::memory_order_acquire);
}

bool set_level(level l) {
  if (!level_supported(l)) return false;
  active_slot().store(&table_slot(l), std::memory_order_release);
  return true;
}

void refresh() {
  active_slot().store(&table_slot(resolve_level(detected_level())),
                      std::memory_order_release);
}

}  // namespace onfiber::phot::simd
