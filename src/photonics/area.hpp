// area.hpp — chip-area model for the photonic engine.
//
// §5 ("Form factor"): "Our proposed scheme necessitates incorporating
// supplementary components ... leading to increased chip area and power
// consumption of transponders. We leave an in-depth analysis of the chip
// area for future work." This module is that analysis, at the fidelity a
// simulation can support: per-component silicon-photonics footprints from
// the foundry-PDK literature, composed into engine-level area estimates
// and checked against pluggable form-factor budgets.
#pragma once

#include <cstddef>

namespace onfiber::phot {

/// Component footprints [mm^2] for a standard silicon-photonics process
/// (AIM/IMEC PDK-class device sizes; electronics in an adjacent ASIC).
struct component_areas {
  double laser_mm2 = 0.5;            ///< hybrid-integrated DFB + coupler
  double mzm_modulator_mm2 = 1.2;    ///< traveling-wave MZM
  double phase_modulator_mm2 = 0.6;
  double photodetector_mm2 = 0.05;   ///< Ge-on-Si PD
  double tia_mm2 = 0.10;             ///< transimpedance amplifier (ASIC)
  double dac_mm2 = 0.30;             ///< 8-bit multi-GS/s DAC (ASIC)
  double adc_mm2 = 0.50;             ///< 8-bit multi-GS/s ADC (ASIC)
  double coupler_mm2 = 0.01;
  double control_logic_mm2 = 2.0;    ///< digital config/control block
  double memory_mm2_per_kb = 0.02;   ///< task weights/patterns SRAM
};

/// Area of one P1 dot-product lane (Fig. 2a): laser + 2 MZM + PD + TIA +
/// 2 DAC + 1 ADC.
[[nodiscard]] inline double p1_lane_area_mm2(const component_areas& c = {}) {
  return c.laser_mm2 + 2.0 * c.mzm_modulator_mm2 + c.photodetector_mm2 +
         c.tia_mm2 + 2.0 * c.dac_mm2 + c.adc_mm2;
}

/// Area of one P2 correlator (Fig. 2b): laser + 2 phase modulators +
/// coupler + 2 PD + TIA + ADC.
[[nodiscard]] inline double p2_correlator_area_mm2(
    const component_areas& c = {}) {
  return c.laser_mm2 + 2.0 * c.phase_modulator_mm2 + c.coupler_mm2 +
         2.0 * (c.photodetector_mm2 + c.tia_mm2) + c.adc_mm2;
}

/// Area of one P3 nonlinear unit (Fig. 2c): tap coupler + PD + TIA + MZM.
[[nodiscard]] inline double p3_unit_area_mm2(const component_areas& c = {}) {
  return c.coupler_mm2 + c.photodetector_mm2 + c.tia_mm2 +
         c.mzm_modulator_mm2;
}

/// Full photonic engine: `p1_lanes` WDM GEMV lanes + one P2 correlator +
/// one P3 unit + control logic + task memory.
[[nodiscard]] inline double engine_area_mm2(std::size_t p1_lanes,
                                            double task_memory_kb,
                                            const component_areas& c = {}) {
  return static_cast<double>(p1_lanes) * p1_lane_area_mm2(c) +
         p2_correlator_area_mm2(c) + p3_unit_area_mm2(c) +
         c.control_logic_mm2 + task_memory_kb * c.memory_mm2_per_kb;
}

/// Usable die budgets of pluggable transponder form factors [mm^2]
/// (board area available for the photonic/electronic engine chiplets on
/// top of the existing coherent components).
struct form_factor_budget {
  const char* name;
  double budget_mm2;
};

inline constexpr form_factor_budget qsfp_dd{"QSFP-DD", 120.0};
inline constexpr form_factor_budget osfp{"OSFP", 180.0};
inline constexpr form_factor_budget cfp2{"CFP2-DCO", 450.0};

/// Does an engine with `p1_lanes` lanes fit the form factor?
[[nodiscard]] inline bool fits(const form_factor_budget& ff,
                               std::size_t p1_lanes, double task_memory_kb,
                               const component_areas& c = {}) {
  return engine_area_mm2(p1_lanes, task_memory_kb, c) <= ff.budget_mm2;
}

/// Largest lane count that fits the form factor (0 if even one lane
/// does not fit).
[[nodiscard]] inline std::size_t max_lanes(const form_factor_budget& ff,
                                           double task_memory_kb,
                                           const component_areas& c = {}) {
  std::size_t lanes = 0;
  while (fits(ff, lanes + 1, task_memory_kb, c)) ++lanes;
  return lanes;
}

// ------------------------------------------------------------ wall power

/// Static (wall) power of the engine's components [W]. Marginal per-op
/// energies live in energy_costs; this is the always-on part that counts
/// against a pluggable module's power class.
struct component_power {
  double laser_w = 0.35;       ///< DFB + TEC share, per lane
  double modulator_driver_w = 0.45;  ///< per MZM driver at 10 GBd
  double tia_w = 0.15;
  double dac_w = 0.30;         ///< per 8-bit multi-GS/s DAC
  double adc_w = 0.45;
  double control_w = 1.5;      ///< digital control/config block
};

/// Wall power of one P1 lane: laser + 2 drivers + TIA + 2 DAC + ADC.
[[nodiscard]] inline double p1_lane_power_w(const component_power& p = {}) {
  return p.laser_w + 2.0 * p.modulator_driver_w + p.tia_w + 2.0 * p.dac_w +
         p.adc_w;
}

/// Wall power of the full engine with `p1_lanes` lanes (P2/P3 units are
/// a small constant on top; folded into control here).
[[nodiscard]] inline double engine_power_w(std::size_t p1_lanes,
                                           const component_power& p = {}) {
  return static_cast<double>(p1_lanes) * p1_lane_power_w(p) + p.control_w;
}

/// Power classes of pluggable modules [W] (max module dissipation).
struct power_budget {
  const char* name;
  double watts;
};
inline constexpr power_budget qsfp_dd_power{"QSFP-DD (class 8)", 25.0};
inline constexpr power_budget osfp_power{"OSFP", 33.0};
inline constexpr power_budget cfp2_power{"CFP2-DCO", 40.0};

/// Max lanes under a power budget, leaving `reserved_w` for the existing
/// coherent transponder functions.
[[nodiscard]] inline std::size_t max_lanes_by_power(
    const power_budget& budget, double reserved_w,
    const component_power& p = {}) {
  std::size_t lanes = 0;
  while (engine_power_w(lanes + 1, p) + reserved_w <= budget.watts) ++lanes;
  return lanes;
}

}  // namespace onfiber::phot
