// simd_kernels_avx2.cpp — AVX2 tier (4 doubles). Compiled with -mavx2;
// note the 52-bit uniform construction in rng_counter_detail.hpp exists
// precisely so this tier needs no packed u64->f64 conversion (AVX2 has
// none).
#include "photonics/simd_kernels_impl.hpp"

namespace onfiber::phot::simd::detail_tables {

kernel_table make_table_avx2() { return make_kernel_table(level::avx2, "avx2"); }

}  // namespace onfiber::phot::simd::detail_tables
