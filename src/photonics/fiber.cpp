#include "photonics/fiber.hpp"

#include <cmath>

namespace onfiber::phot {

namespace {
constexpr std::uint64_t kAseTag = 0x617365ULL;  // "ase"
}  // namespace

fiber_span::fiber_span(fiber_config config, rng noise_stream)
    : config_(config),
      ase_(counter_rng::key_of(noise_stream(), kAseTag)) {
  const double span_loss_db = loss_db();
  if (config_.amplified) {
    // EDFA exactly compensates the span loss; the net field scale is 1
    // but amplified spontaneous emission is added.
    field_scale_ = 1.0;
    // ASE power spectral density: S_ase = (G-1) * F/2 * h * nu  [W/Hz],
    // integrated over the symbol bandwidth, split across two quadratures.
    const double gain = db_to_ratio(span_loss_db);
    const double noise_factor =
        db_to_ratio(config_.amplifier_noise_figure_db);
    const double h_nu = photon_energy(config_.wavelength_m);
    const double ase_power_w = (gain - 1.0) * 0.5 * noise_factor * h_nu *
                               config_.symbol_rate_hz;
    const double ase_power_mw = ase_power_w * 1e3;
    // Per-quadrature field std-dev such that E[|n|^2] == ase_power_mw.
    ase_sigma_ = std::sqrt(ase_power_mw / 2.0);
  } else {
    field_scale_ = field_loss_scale(span_loss_db);
    ase_sigma_ = 0.0;
  }
}

waveform fiber_span::propagate(std::span<const field> in) {
  waveform out;
  out.reserve(in.size());
  if (ase_sigma_ > 0.0 && !in.empty()) {
    // Counter-indexed ASE fill: sample i consumes draw indices 2i (I) and
    // 2i + 1 (Q) of the span's stream — a single vectorizable fill
    // replaces the per-sample sequential draws.
    noise_scratch_.resize(2 * in.size());
    ase_.fill_normal(noise_scratch_);
    for (std::size_t i = 0; i < in.size(); ++i) {
      field sample = in[i] * field_scale_;
      sample += field{ase_sigma_ * noise_scratch_[2 * i],
                      ase_sigma_ * noise_scratch_[2 * i + 1]};
      out.push_back(sample);
    }
  } else {
    for (const field& e : in) out.push_back(e * field_scale_);
  }
  return out;
}

}  // namespace onfiber::phot
