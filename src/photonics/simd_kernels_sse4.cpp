// simd_kernels_sse4.cpp — SSE4.1 tier (2 doubles per lane group).
// Compiled with -msse4.1; the loops in simd_kernels_impl.hpp are widened
// by the auto-vectorizer.
#include "photonics/simd_kernels_impl.hpp"

namespace onfiber::phot::simd::detail_tables {

kernel_table make_table_sse4() { return make_kernel_table(level::sse4, "sse4"); }

}  // namespace onfiber::phot::simd::detail_tables
