// pattern.hpp — digital pattern-matching baselines.
//
// Baselines for the C2 use cases built on P2:
//   * `aho_corasick`   — multi-pattern byte matcher (the IDS baseline;
//     what software like Snort/Pigasus [69] builds on);
//   * `naive_scan`     — memcmp-at-every-offset reference for tests;
// plus lookup-cost accounting against `asic_model`/`device_model`.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <string>
#include <vector>

namespace onfiber::digital {

/// A match hit: which pattern, at which end offset.
struct pattern_hit {
  std::size_t pattern_index = 0;
  std::size_t end_offset = 0;  ///< offset one past the last matched byte

  friend bool operator==(const pattern_hit&, const pattern_hit&) = default;
};

/// Classic Aho-Corasick automaton over bytes.
class aho_corasick {
 public:
  /// Build from a set of non-empty patterns.
  explicit aho_corasick(std::vector<std::vector<std::uint8_t>> patterns);

  /// All hits in `text`, in increasing end_offset order.
  [[nodiscard]] std::vector<pattern_hit> find_all(
      std::span<const std::uint8_t> text) const;

  /// Does any pattern occur?
  [[nodiscard]] bool any_match(std::span<const std::uint8_t> text) const;

  [[nodiscard]] std::size_t pattern_count() const { return patterns_.size(); }
  [[nodiscard]] std::size_t state_count() const { return nodes_.size(); }

 private:
  struct node {
    std::vector<std::int32_t> next;  ///< 256-way transitions (built dense)
    std::int32_t fail = 0;
    std::vector<std::size_t> output;  ///< pattern indices ending here
    node() : next(256, -1) {}
  };

  std::vector<node> nodes_;
  std::vector<std::vector<std::uint8_t>> patterns_;
};

/// Reference matcher: test every offset with memcmp semantics.
[[nodiscard]] std::vector<pattern_hit> naive_scan(
    std::span<const std::uint8_t> text,
    std::span<const std::vector<std::uint8_t>> patterns);

}  // namespace onfiber::digital
