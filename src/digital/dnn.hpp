// dnn.hpp — feed-forward DNN model definition plus digital reference
// inference (float and int8-quantized).
//
// The model type is shared: the digital baselines here execute it with
// device cost accounting, and apps/ml maps the *same* weights onto the
// photonic engines (P1 GEMV + P3 activation). A tiny deterministic
// trainer is included so tests and benches can build a model that
// actually separates the synthetic dataset — substituting for the
// pre-trained models the paper assumes are "distributed across network
// devices in advance" (§4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digital/device_model.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/rng.hpp"

namespace onfiber::digital {

/// Hidden-layer activation function.
///
/// `photonic_sin2` is the normalized transfer of the P3 electro-optic
/// nonlinearity (Fig. 2c): with u = clamp(z/scale, 0, 1),
/// h(z) = u * sin^2((pi/2) * u) — input power times the self-driven
/// modulator transmission.
/// Training with it ("photonic-aware training", following the
/// accelerated-training approach of Bandyopadhyay et al. [9]) is what
/// makes models survive execution on the analog engine; training with
/// plain ReLU and deploying photonically measurably degrades accuracy —
/// an ablation bench E7 runs.
enum class activation_kind : std::uint8_t { relu, photonic_sin2 };

/// Evaluate the activation (scale only affects photonic_sin2).
[[nodiscard]] double apply_activation(activation_kind kind, double z,
                                      double scale);
/// Its derivative dz (for backprop).
[[nodiscard]] double activation_derivative(activation_kind kind, double z,
                                           double scale);

/// One dense layer: y = act(W x + b), weights in [-1, 1].
struct dense_layer {
  phot::matrix weights;        ///< rows = out_dim, cols = in_dim
  std::vector<double> bias;    ///< out_dim
  bool relu = true;            ///< apply the model's activation (final
                               ///< layer typically false)
};

/// Multi-layer perceptron.
struct dnn_model {
  std::vector<dense_layer> layers;
  activation_kind activation = activation_kind::relu;
  double activation_scale = 2.0;  ///< pre-activation full scale (photonic)

  [[nodiscard]] std::size_t input_dim() const {
    return layers.empty() ? 0 : layers.front().weights.cols;
  }
  [[nodiscard]] std::size_t output_dim() const {
    return layers.empty() ? 0 : layers.back().weights.rows;
  }
  /// Total multiply-accumulates of one inference.
  [[nodiscard]] std::uint64_t mac_count() const {
    std::uint64_t macs = 0;
    for (const auto& l : layers) {
      macs += static_cast<std::uint64_t>(l.weights.rows) * l.weights.cols;
    }
    return macs;
  }
};

/// Float (reference) forward pass.
[[nodiscard]] std::vector<double> infer_reference(const dnn_model& model,
                                                  std::span<const double> x);

/// Result of an accounted digital inference.
struct digital_inference_result {
  std::vector<double> logits;
  double latency_s = 0.0;
  double energy_j = 0.0;
};

/// Int8-quantized inference on a digital device model: weights and
/// activations quantized to 8 bits (same resolution as the photonic
/// DAC/ADC path), latency/energy charged per the device model.
[[nodiscard]] digital_inference_result infer_int8(const dnn_model& model,
                                                  std::span<const double> x,
                                                  const device_model& device);

/// argmax helper for classification outputs.
[[nodiscard]] std::size_t argmax(std::span<const double> v);

// ------------------------------------------------------------ training

/// Deterministic synthetic classification dataset: `classes` Gaussian
/// clusters in [0,1]^dim (class means drawn from the seed), n per class.
struct dataset {
  std::size_t dim = 0;
  std::size_t classes = 0;
  std::vector<std::vector<double>> samples;
  std::vector<std::size_t> labels;
};

[[nodiscard]] dataset make_synthetic_dataset(std::size_t dim,
                                             std::size_t classes,
                                             std::size_t per_class,
                                             double cluster_sigma,
                                             std::uint64_t seed);

/// Train an MLP with plain SGD + backprop on the dataset (deterministic).
/// Hidden layers use `activation`; weights are clipped to [-1,1] each step
/// so the model is directly mappable onto the photonic engine's dynamic
/// range.
[[nodiscard]] dnn_model train_mlp(
    const dataset& data, const std::vector<std::size_t>& hidden_dims,
    std::size_t epochs, double learning_rate, std::uint64_t seed,
    activation_kind activation = activation_kind::relu,
    double activation_scale = 2.0);

/// Classification accuracy of `infer` outputs on the dataset using the
/// float reference path.
[[nodiscard]] double reference_accuracy(const dnn_model& model,
                                        const dataset& data);

}  // namespace onfiber::digital
