#include "digital/pattern.hpp"

#include <algorithm>
#include <stdexcept>

namespace onfiber::digital {

aho_corasick::aho_corasick(std::vector<std::vector<std::uint8_t>> patterns)
    : patterns_(std::move(patterns)) {
  for (const auto& p : patterns_) {
    if (p.empty()) {
      throw std::invalid_argument("aho_corasick: empty pattern");
    }
  }
  nodes_.emplace_back();  // root

  // Build the trie.
  for (std::size_t pi = 0; pi < patterns_.size(); ++pi) {
    std::int32_t cur = 0;
    for (std::uint8_t byte : patterns_[pi]) {
      std::int32_t& slot = nodes_[static_cast<std::size_t>(cur)].next[byte];
      if (slot < 0) {
        slot = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      cur = slot;
    }
    nodes_[static_cast<std::size_t>(cur)].output.push_back(pi);
  }

  // BFS to set failure links and convert to a full goto function.
  std::queue<std::int32_t> bfs;
  for (int b = 0; b < 256; ++b) {
    std::int32_t& slot = nodes_[0].next[static_cast<std::size_t>(b)];
    if (slot < 0) {
      slot = 0;
    } else {
      nodes_[static_cast<std::size_t>(slot)].fail = 0;
      bfs.push(slot);
    }
  }
  while (!bfs.empty()) {
    const std::int32_t u = bfs.front();
    bfs.pop();
    const std::int32_t fail_u = nodes_[static_cast<std::size_t>(u)].fail;
    // Merge outputs along the failure chain.
    const auto& fail_out = nodes_[static_cast<std::size_t>(fail_u)].output;
    auto& out = nodes_[static_cast<std::size_t>(u)].output;
    out.insert(out.end(), fail_out.begin(), fail_out.end());
    for (int b = 0; b < 256; ++b) {
      std::int32_t& slot =
          nodes_[static_cast<std::size_t>(u)].next[static_cast<std::size_t>(b)];
      const std::int32_t via_fail =
          nodes_[static_cast<std::size_t>(fail_u)].next[static_cast<std::size_t>(b)];
      if (slot < 0) {
        slot = via_fail;
      } else {
        nodes_[static_cast<std::size_t>(slot)].fail = via_fail;
        bfs.push(slot);
      }
    }
  }
}

std::vector<pattern_hit> aho_corasick::find_all(
    std::span<const std::uint8_t> text) const {
  std::vector<pattern_hit> hits;
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = nodes_[static_cast<std::size_t>(state)].next[text[i]];
    for (std::size_t pi : nodes_[static_cast<std::size_t>(state)].output) {
      hits.push_back(pattern_hit{pi, i + 1});
    }
  }
  return hits;
}

bool aho_corasick::any_match(std::span<const std::uint8_t> text) const {
  std::int32_t state = 0;
  for (std::uint8_t byte : text) {
    state = nodes_[static_cast<std::size_t>(state)].next[byte];
    if (!nodes_[static_cast<std::size_t>(state)].output.empty()) return true;
  }
  return false;
}

std::vector<pattern_hit> naive_scan(
    std::span<const std::uint8_t> text,
    std::span<const std::vector<std::uint8_t>> patterns) {
  std::vector<pattern_hit> hits;
  for (std::size_t end = 1; end <= text.size(); ++end) {
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const auto& p = patterns[pi];
      if (p.empty() || p.size() > end) continue;
      if (std::equal(p.begin(), p.end(),
                     text.begin() + static_cast<std::ptrdiff_t>(end - p.size()))) {
        hits.push_back(pattern_hit{pi, end});
      }
    }
  }
  return hits;
}

}  // namespace onfiber::digital
