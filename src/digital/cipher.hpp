// cipher.hpp — digital stream-cipher baseline for the data-encryption use
// case (Table 1, C2).
//
// A ChaCha20-style ARX keystream generator (reduced to a compact,
// dependency-free core). This is the digital comparator; the photonic
// path implements the same keystream XOR with the masking done optically
// (see apps/crypto). Not intended as production cryptography — it is a
// faithful *cost and dataflow* stand-in, which is what the reproduction
// needs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace onfiber::digital {

/// ARX quarter-round based keystream cipher (ChaCha-like, 8 rounds).
class stream_cipher {
 public:
  /// 256-bit key + 64-bit nonce.
  stream_cipher(std::span<const std::uint8_t> key_32bytes,
                std::uint64_t nonce);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data);

  /// Produce `n` keystream bytes (used by the photonic masking path,
  /// which needs the keystream itself to drive the mask modulator).
  [[nodiscard]] std::vector<std::uint8_t> keystream(std::size_t n);

  /// Reset the block counter (restart the stream).
  void reset() { counter_ = 0; buffer_used_ = buffer_.size(); }

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_used_ = 64;
  std::uint64_t counter_ = 0;
};

}  // namespace onfiber::digital
