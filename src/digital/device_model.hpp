// device_model.hpp — cost models of digital compute devices.
//
// The paper's §2.2 comparison points: TPU at ~1.05 GHz and 7e-14 J per
// 8-bit MAC [28], GPU (A100) at ~1.41 GHz [2], photonics at 40 aJ/MAC
// [50]. These models convert operation counts into latency and energy so
// every use-case bench can print the photonic-vs-digital rows.
#pragma once

#include <cstdint>
#include <string>

namespace onfiber::digital {

/// A digital accelerator/processor abstracted as (clock, parallelism,
/// energy/op). Latency of N MACs = N / (clock * macs_per_cycle) + fixed
/// offload overhead; energy = N * mac_j + memory traffic.
struct device_model {
  std::string name;
  double clock_hz = 1e9;
  double macs_per_cycle = 1.0;   ///< effective parallel MAC lanes used
  double mac_energy_j = 1e-13;   ///< per 8-bit MAC
  double sram_energy_j = 1e-12;  ///< per operand byte fetched
  double offload_latency_s = 0.0;  ///< fixed invocation overhead

  [[nodiscard]] double gemv_latency_s(std::uint64_t macs) const {
    return offload_latency_s +
           static_cast<double>(macs) / (clock_hz * macs_per_cycle);
  }

  [[nodiscard]] double gemv_energy_j(std::uint64_t macs,
                                     std::uint64_t operand_bytes) const {
    return static_cast<double>(macs) * mac_energy_j +
           static_cast<double>(operand_bytes) * sram_energy_j;
  }
};

/// TPU-class accelerator (paper §2.2: 1.05 GHz, 7e-14 J / 8-bit MAC).
/// `macs_per_cycle` reflects a matrix unit but is kept modest so a single
/// inference stream (the in-network scenario) does not fill the array.
[[nodiscard]] inline device_model make_tpu_model() {
  return device_model{.name = "TPU",
                      .clock_hz = 1.05e9,
                      .macs_per_cycle = 256.0,
                      .mac_energy_j = 70e-15,
                      .sram_energy_j = 1e-12,
                      .offload_latency_s = 10e-6};
}

/// GPU-class accelerator (A100: 1.41 GHz boost clock).
[[nodiscard]] inline device_model make_gpu_model() {
  return device_model{.name = "GPU",
                      .clock_hz = 1.41e9,
                      .macs_per_cycle = 128.0,
                      .mac_energy_j = 150e-15,
                      .sram_energy_j = 1.5e-12,
                      .offload_latency_s = 30e-6};
}

/// Edge-device CPU (the paper's "limited computing resources" tier).
[[nodiscard]] inline device_model make_edge_cpu_model() {
  return device_model{.name = "EdgeCPU",
                      .clock_hz = 1.8e9,
                      .macs_per_cycle = 4.0,
                      .mac_energy_j = 5e-12,
                      .sram_energy_j = 10e-12,
                      .offload_latency_s = 1e-6};
}

/// Switch/router ASIC match-action stage (for the C2 network functions):
/// per-lookup latency and energy of a TCAM access.
struct asic_model {
  double lookup_latency_s = 20e-9;
  double tcam_lookup_energy_j = 5e-9;  ///< TCAMs are power hungry (§4, C2)
  double sram_lookup_energy_j = 50e-12;
};

[[nodiscard]] inline asic_model make_router_asic_model() { return {}; }

}  // namespace onfiber::digital
