#include "digital/dnn.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace onfiber::digital {

double apply_activation(activation_kind kind, double z, double scale) {
  switch (kind) {
    case activation_kind::relu:
      return z > 0.0 ? z : 0.0;
    case activation_kind::photonic_sin2: {
      // Normalized P3 transfer: output power = input power x modulator
      // transmission, so h(u) = u * sin^2(pi/2 * u) on u in [0, 1].
      const double u = std::clamp(z / scale, 0.0, 1.0);
      const double s = std::sin(0.5 * std::numbers::pi * u);
      return u * s * s;
    }
  }
  return 0.0;
}

double activation_derivative(activation_kind kind, double z, double scale) {
  switch (kind) {
    case activation_kind::relu:
      return z > 0.0 ? 1.0 : 0.0;
    case activation_kind::photonic_sin2: {
      const double u = z / scale;
      if (u <= 0.0 || u >= 1.0) return 0.0;
      // d/dz [u sin^2(pi/2 u)] = (sin^2(pi/2 u) + u pi/2 sin(pi u)) / s
      const double s = std::sin(0.5 * std::numbers::pi * u);
      return (s * s +
              u * 0.5 * std::numbers::pi * std::sin(std::numbers::pi * u)) /
             scale;
    }
  }
  return 0.0;
}

std::vector<double> infer_reference(const dnn_model& model,
                                    std::span<const double> x) {
  std::vector<double> act(x.begin(), x.end());
  for (const auto& layer : model.layers) {
    if (layer.weights.cols != act.size()) {
      throw std::invalid_argument("infer_reference: dimension mismatch");
    }
    std::vector<double> next = phot::gemv_reference(layer.weights, act);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] += layer.bias[i];
      if (layer.relu) {
        next[i] = apply_activation(model.activation, next[i],
                                   model.activation_scale);
      }
    }
    act = std::move(next);
  }
  return act;
}

namespace {

[[nodiscard]] double quantize_sym(double v, double scale) {
  // Symmetric int8 quantization around zero.
  if (scale <= 0.0) return 0.0;
  const double q = std::round(std::clamp(v / scale, -1.0, 1.0) * 127.0);
  return q / 127.0 * scale;
}

[[nodiscard]] double max_abs(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

digital_inference_result infer_int8(const dnn_model& model,
                                    std::span<const double> x,
                                    const device_model& device) {
  digital_inference_result out;
  std::vector<double> act(x.begin(), x.end());
  std::uint64_t total_macs = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& layer : model.layers) {
    if (layer.weights.cols != act.size()) {
      throw std::invalid_argument("infer_int8: dimension mismatch");
    }
    // Quantize activations to int8 with a per-tensor scale.
    const double a_scale = std::max(max_abs(act), 1e-12);
    for (double& a : act) a = quantize_sym(a, a_scale);

    std::vector<double> next(layer.weights.rows, 0.0);
    for (std::size_t r = 0; r < layer.weights.rows; ++r) {
      double acc = 0.0;
      const auto row = layer.weights.row(r);
      for (std::size_t c = 0; c < layer.weights.cols; ++c) {
        // Weights already live in [-1,1]; quantize per-element.
        acc += quantize_sym(row[c], 1.0) * act[c];
      }
      next[r] = acc + layer.bias[r];
      if (layer.relu) {
        next[r] = apply_activation(model.activation, next[r],
                                   model.activation_scale);
      }
    }
    total_macs +=
        static_cast<std::uint64_t>(layer.weights.rows) * layer.weights.cols;
    // Operand traffic: weights once + activations per row.
    total_bytes +=
        static_cast<std::uint64_t>(layer.weights.rows) * layer.weights.cols +
        layer.weights.cols;
    act = std::move(next);
  }
  out.logits = std::move(act);
  out.latency_s = device.gemv_latency_s(total_macs);
  out.energy_j = device.gemv_energy_j(total_macs, total_bytes);
  return out;
}

std::size_t argmax(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("argmax: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

dataset make_synthetic_dataset(std::size_t dim, std::size_t classes,
                               std::size_t per_class, double cluster_sigma,
                               std::uint64_t seed) {
  if (dim == 0 || classes == 0 || per_class == 0) {
    throw std::invalid_argument("make_synthetic_dataset: empty shape");
  }
  phot::rng gen(seed);
  dataset d;
  d.dim = dim;
  d.classes = classes;
  // Class means well separated in [0.15, 0.85]^dim.
  std::vector<std::vector<double>> means(classes);
  for (auto& m : means) {
    m.resize(dim);
    for (double& v : m) v = gen.uniform(0.15, 0.85);
  }
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<double> s(dim);
      for (std::size_t k = 0; k < dim; ++k) {
        s[k] = std::clamp(means[c][k] + gen.normal(0.0, cluster_sigma), 0.0,
                          1.0);
      }
      d.samples.push_back(std::move(s));
      d.labels.push_back(c);
    }
  }
  return d;
}

dnn_model train_mlp(const dataset& data,
                    const std::vector<std::size_t>& hidden_dims,
                    std::size_t epochs, double learning_rate,
                    std::uint64_t seed, activation_kind activation,
                    double activation_scale) {
  if (data.samples.empty()) {
    throw std::invalid_argument("train_mlp: empty dataset");
  }
  if (activation_scale <= 0.0) {
    throw std::invalid_argument("train_mlp: activation_scale must be > 0");
  }
  phot::rng gen(seed);

  // Build layer dims: input -> hidden... -> classes.
  std::vector<std::size_t> dims;
  dims.push_back(data.dim);
  for (std::size_t h : hidden_dims) dims.push_back(h);
  dims.push_back(data.classes);

  dnn_model model;
  model.activation = activation;
  model.activation_scale = activation_scale;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    dense_layer layer;
    layer.weights = phot::matrix(dims[l + 1], dims[l]);
    layer.bias.assign(dims[l + 1], 0.0);
    layer.relu = (l + 2 < dims.size());  // no activation on the output layer
    const double scale = std::sqrt(2.0 / static_cast<double>(dims[l]));
    for (double& w : layer.weights.data) w = gen.normal(0.0, scale);
    model.layers.push_back(std::move(layer));
  }

  const std::size_t n = data.samples.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    // Deterministic Fisher-Yates shuffle.
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[gen.below(i + 1)]);
    }
    for (std::size_t idx : order) {
      const auto& x = data.samples[idx];
      const std::size_t label = data.labels[idx];

      // Forward pass, keeping activations and pre-activations.
      std::vector<std::vector<double>> acts;      // post-activation
      std::vector<std::vector<double>> preacts;   // z = Wx + b per layer
      acts.emplace_back(x.begin(), x.end());
      for (const auto& layer : model.layers) {
        std::vector<double> z = phot::gemv_reference(layer.weights,
                                                     acts.back());
        for (std::size_t i = 0; i < z.size(); ++i) z[i] += layer.bias[i];
        preacts.push_back(z);
        if (layer.relu) {
          for (double& v : z) {
            v = apply_activation(activation, v, activation_scale);
          }
        }
        acts.push_back(std::move(z));
      }

      // Softmax cross-entropy gradient at the output.
      std::vector<double>& logits = acts.back();
      double mx = *std::max_element(logits.begin(), logits.end());
      double sum = 0.0;
      std::vector<double> grad(logits.size());
      for (std::size_t i = 0; i < logits.size(); ++i) {
        grad[i] = std::exp(logits[i] - mx);
        sum += grad[i];
      }
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] = grad[i] / sum - (i == label ? 1.0 : 0.0);
      }

      // Backward pass.
      for (std::size_t l = model.layers.size(); l-- > 0;) {
        dense_layer& layer = model.layers[l];
        const std::vector<double>& input = acts[l];
        const std::vector<double>& z = preacts[l];

        if (layer.relu) {
          for (std::size_t i = 0; i < grad.size(); ++i) {
            grad[i] *= activation_derivative(activation, z[i],
                                             activation_scale);
          }
        }

        std::vector<double> grad_in(layer.weights.cols, 0.0);
        for (std::size_t r = 0; r < layer.weights.rows; ++r) {
          const double g = grad[r];
          layer.bias[r] -= learning_rate * g;
          for (std::size_t c = 0; c < layer.weights.cols; ++c) {
            grad_in[c] += layer.weights.at(r, c) * g;
            double w = layer.weights.at(r, c) - learning_rate * g * input[c];
            // Keep weights in the photonic engine's dynamic range.
            layer.weights.at(r, c) = std::clamp(w, -1.0, 1.0);
          }
        }
        grad = std::move(grad_in);
      }
    }
  }
  return model;
}

double reference_accuracy(const dnn_model& model, const dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    const auto logits = infer_reference(model, data.samples[i]);
    if (argmax(logits) == data.labels[i]) ++correct;
  }
  return data.samples.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(data.samples.size());
}

}  // namespace onfiber::digital
