#include "digital/cipher.hpp"

#include <bit>
#include <stdexcept>

namespace onfiber::digital {

namespace {

constexpr void quarter_round(std::uint32_t& a, std::uint32_t& b,
                             std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

stream_cipher::stream_cipher(std::span<const std::uint8_t> key_32bytes,
                             std::uint64_t nonce) {
  if (key_32bytes.size() != 32) {
    throw std::invalid_argument("stream_cipher: key must be 32 bytes");
  }
  // "expand 32-byte k" constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * 4;
    state_[static_cast<std::size_t>(4 + i)] =
        std::uint32_t{key_32bytes[off]} |
        (std::uint32_t{key_32bytes[off + 1]} << 8) |
        (std::uint32_t{key_32bytes[off + 2]} << 16) |
        (std::uint32_t{key_32bytes[off + 3]} << 24);
  }
  state_[12] = 0;  // counter low
  state_[13] = 0;  // counter high
  state_[14] = static_cast<std::uint32_t>(nonce & 0xffffffff);
  state_[15] = static_cast<std::uint32_t>(nonce >> 32);
}

void stream_cipher::refill() {
  std::array<std::uint32_t, 16> x = state_;
  x[12] = static_cast<std::uint32_t>(counter_ & 0xffffffff);
  x[13] = static_cast<std::uint32_t>(counter_ >> 32);
  std::array<std::uint32_t, 16> w = x;
  for (int round = 0; round < 4; ++round) {  // 8 rounds (4 double rounds)
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + x[i];
    buffer_[i * 4 + 0] = static_cast<std::uint8_t>(v & 0xff);
    buffer_[i * 4 + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
    buffer_[i * 4 + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
    buffer_[i * 4 + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
  }
  ++counter_;
  buffer_used_ = 0;
}

void stream_cipher::apply(std::span<std::uint8_t> data) {
  for (auto& byte : data) {
    if (buffer_used_ >= buffer_.size()) refill();
    byte ^= buffer_[buffer_used_++];
  }
}

std::vector<std::uint8_t> stream_cipher::keystream(std::size_t n) {
  std::vector<std::uint8_t> out(n, 0);
  apply(out);
  return out;
}

}  // namespace onfiber::digital
