#include "core/optical_frame.hpp"

namespace onfiber::core {

optical_frame frame_packet(const net::packet& pkt,
                           commodity_transponder& tx,
                           photonic_engine& engine) {
  optical_frame frame;
  frame.src = pkt.src;
  frame.dst = pkt.dst;
  frame.proto = pkt.proto;
  if (pkt.proto == net::ip_proto::compute) {
    frame.preamble = engine.encode_preamble();
  }
  frame.body = tx.transmit(pkt.payload);
  return frame;
}

receive_pipeline_report receive_frame(
    const optical_frame& frame, commodity_transponder& rx,
    photonic_engine& engine, std::span<const std::uint8_t> sent_bytes) {
  receive_pipeline_report report;

  // Stage 1: optical preamble detection (engages the engine, §3). A
  // frame without the preamble is indistinguishable from legacy traffic
  // and takes the commodity path untouched.
  if (!frame.preamble.empty()) {
    report.preamble_detected = engine.detect_preamble(frame.preamble);
    report.latency_s +=
        static_cast<double>(frame.preamble.size()) / 10e9;
  }

  // Stage 2: commodity receive (photodetector + ADC -> bytes). In the
  // proposed hardware the engine computes *before* this conversion; the
  // simulation recovers the bytes first and lets the engine's on-fiber
  // mode account the conversions as if it had tapped the light directly
  // (its upstream-encoder reconstruction, see photonic_engine).
  const receive_report rxr = rx.receive(frame.body, sent_bytes);
  report.symbol_errors = rxr.symbol_errors;
  report.latency_s += rxr.latency_s;

  net::packet pkt;
  pkt.src = frame.src;
  pkt.dst = frame.dst;
  pkt.proto = frame.proto;
  pkt.payload = rxr.bytes;

  // Stage 3: the photonic engine, gated by the preamble.
  if (report.preamble_detected) {
    const engine_report er = engine.process(pkt);
    report.computed = er.computed;
    report.latency_s += er.compute_latency_s;
  }
  report.packet = std::move(pkt);
  return report;
}

}  // namespace onfiber::core
