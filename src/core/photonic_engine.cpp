#include "core/photonic_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/scoped_timer.hpp"
#include "photonics/kernels.hpp"
#include "protocol/codec.hpp"

namespace onfiber::core {

namespace {

// Lazily resolved wall-clock stage histograms (host-side telemetry;
// never feeds the simulation).
obs::histogram& process_wall_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("engine.process_wall_s");
  return h;
}
obs::histogram& batch_wall_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("engine.batch_wall_s");
  return h;
}

/// Writable view of `out_len` result bytes at the header's result offset.
/// Engines size their own results (the client cannot always know the
/// output length of every chain stage); empty if it does not fit.
[[nodiscard]] std::span<std::uint8_t> result_span(
    net::packet& pkt, const proto::compute_header& h, std::size_t out_len) {
  const std::size_t begin = proto::compute_header_bytes + h.result_offset;
  if (out_len == 0 || begin + out_len > pkt.payload.size()) return {};
  return std::span<std::uint8_t>(pkt.payload).subspan(begin, out_len);
}

/// Split a signed vector into non-negative rails.
void split_rails(std::span<const double> x, std::vector<double>& pos,
                 std::vector<double>& neg) {
  pos.resize(x.size());
  neg.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    pos[i] = x[i] > 0.0 ? x[i] : 0.0;
    neg[i] = x[i] < 0.0 ? -x[i] : 0.0;
  }
}

}  // namespace

photonic_engine::photonic_engine(engine_config config, std::uint64_t seed,
                                 phot::energy_ledger* ledger,
                                 phot::energy_costs costs)
    : config_(config),
      upstream_encoder_(config.dot, seed ^ 0xf00d, nullptr, costs),
      matcher_(config.match, seed ^ 0xbeef, ledger, costs),
      upstream_phase_encoder_(config.match, seed ^ 0xcafe, nullptr, costs),
      nonlinear_(config.nonlinear, seed ^ 0xd00d, ledger, costs),
      row_seed_stream_(seed ^ 0x726f7773ULL /* "rows" */),
      ledger_(ledger),
      costs_(costs) {}

void photonic_engine::configure_gemv(gemv_task task) {
  if (task.weights.rows == 0 || task.weights.cols == 0) {
    throw std::invalid_argument("photonic_engine: empty GEMV task");
  }
  if (!task.bias.empty() && task.bias.size() != task.weights.rows) {
    throw std::invalid_argument("photonic_engine: bias/rows mismatch");
  }
  gemv_ = std::move(task);
}

void photonic_engine::configure_match(match_task task) {
  if (task.patterns.empty()) {
    throw std::invalid_argument("photonic_engine: no patterns");
  }
  for (const auto& p : task.patterns) {
    if (p.empty()) {
      throw std::invalid_argument("photonic_engine: empty pattern");
    }
  }
  if (task.patterns.size() >= match_no_hit) {
    throw std::invalid_argument("photonic_engine: too many patterns");
  }
  match_ = std::move(task);
}

void photonic_engine::configure_dnn(dnn_task task) {
  if (task.layers.empty()) {
    throw std::invalid_argument("photonic_engine: empty DNN task");
  }
  for (std::size_t l = 1; l < task.layers.size(); ++l) {
    if (task.layers[l].weights.cols != task.layers[l - 1].weights.rows) {
      throw std::invalid_argument("photonic_engine: DNN layer shape chain");
    }
  }
  dnn_ = std::move(task);
}

void photonic_engine::clear_tasks() {
  gemv_.reset();
  match_.reset();
  dnn_.reset();
}

bool photonic_engine::supports(proto::primitive_id p) const {
  switch (p) {
    case proto::primitive_id::p1_dot_product:
      return gemv_.has_value();
    case proto::primitive_id::p2_pattern_match:
      return match_.has_value();
    case proto::primitive_id::p3_nonlinear:
      return true;  // the nonlinear unit is always present
    case proto::primitive_id::p1_p3_dnn:
      return dnn_.has_value();
    case proto::primitive_id::none:
      return false;
  }
  return false;
}

std::vector<proto::primitive_id> photonic_engine::configured() const {
  std::vector<proto::primitive_id> out;
  if (gemv_) out.push_back(proto::primitive_id::p1_dot_product);
  if (match_) out.push_back(proto::primitive_id::p2_pattern_match);
  out.push_back(proto::primitive_id::p3_nonlinear);
  if (dnn_) out.push_back(proto::primitive_id::p1_p3_dnn);
  return out;
}

phot::gemv_result photonic_engine::analog_gemv(const phot::matrix& w,
                                               std::span<const double> x,
                                               bool input_is_optical,
                                               engine_report& report) {
  phot::gemm_result g = analog_gemm(w, x, input_is_optical, report);
  phot::gemv_result out;
  out.values = std::move(g.values);
  out.latency_s = g.latency_s;
  out.symbols = g.symbols;
  return out;
}

phot::gemm_result photonic_engine::analog_gemm(const phot::matrix& w,
                                               std::span<const double> xs,
                                               bool input_is_optical,
                                               engine_report& report) {
  const std::size_t rows = w.rows;
  const std::size_t cols = w.cols;
  const std::size_t batch = xs.size() / cols;  // callers validate the shape

  // Determinism contract (photonics/kernels.hpp): every row's noise
  // stream is forked here, in row order, before any worker starts. One
  // fork per row regardless of batch size, so a batch of one consumes the
  // seed stream exactly like the historical per-vector path.
  std::vector<std::uint64_t> seeds(rows);
  for (std::uint64_t& s : seeds) s = row_seed_stream_();

  std::vector<phot::dot_result> cells(rows * batch);
  std::vector<phot::energy_ledger> row_ledgers(ledger_ != nullptr ? rows : 0);
  const std::size_t threads = phot::kernel_thread_count(threads_override_);

  if (input_is_optical) {
    // On-fiber path: each sample's rails exist as optical waveforms
    // (encoded upstream; reconstruction here is ledger-free), produced in
    // sample order on the continuing upstream-encoder streams. Each row
    // consumes optical copies of the rails — wavelength/splitter fan-out
    // in hardware.
    std::vector<phot::waveform> wave_p(batch);
    std::vector<phot::waveform> wave_n(batch);
    std::vector<double> xp, xn;
    for (std::size_t s = 0; s < batch; ++s) {
      split_rails(xs.subspan(s * cols, cols), xp, xn);
      wave_p[s] = upstream_encoder_.encode_to_optical(xp);
      wave_n[s] = upstream_encoder_.encode_to_optical(xn);
    }
    const double ref_mw =
        config_.dot.laser.power_mw *
        phot::db_to_ratio(-config_.dot.modulator.insertion_loss_db);

    phot::parallel_rows(rows, threads, [&](std::size_t r) {
      phot::dot_product_unit unit(
          config_.dot, seeds[r],
          ledger_ != nullptr ? &row_ledgers[r] : nullptr, costs_);
      std::vector<double> wp, wn;
      split_rails(w.row(r), wp, wn);
      for (std::size_t s = 0; s < batch; ++s) {
        const auto pp = unit.dot_with_optical_input(wave_p[s], wp, ref_mw);
        const auto nn = unit.dot_with_optical_input(wave_n[s], wn, ref_mw);
        const auto pn = unit.dot_with_optical_input(wave_p[s], wn, ref_mw);
        const auto np = unit.dot_with_optical_input(wave_n[s], wp, ref_mw);
        phot::dot_result d;
        d.value = pp.value + nn.value - pn.value - np.value;
        d.latency_s =
            pp.latency_s + nn.latency_s + pn.latency_s + np.latency_s;
        d.symbols = pp.symbols + nn.symbols + pn.symbols + np.symbols;
        cells[r * batch + s] = d;
      }
    });
  } else {
    // OEO path: every sample was digitized by the receive ADC (cols
    // conversions each) and is re-encoded through the a-side DAC inside
    // every pass.
    report.input_conversions += xs.size();
    if (ledger_ != nullptr) {
      ledger_->charge("adc", costs_.adc_conversion_j *
                                 static_cast<double>(xs.size()),
                      xs.size());
    }
    // Split every sample's rails once up front; rows share them read-only.
    std::vector<double> xs_pos(xs.size());
    std::vector<double> xs_neg(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs_pos[i] = xs[i] > 0.0 ? xs[i] : 0.0;
      xs_neg[i] = xs[i] < 0.0 ? -xs[i] : 0.0;
    }
    phot::parallel_rows(rows, threads, [&](std::size_t r) {
      phot::dot_product_unit unit(
          config_.dot, seeds[r],
          ledger_ != nullptr ? &row_ledgers[r] : nullptr, costs_);
      // The row's weight rails are split once; every queued sample then
      // streams through them (dot_signed == split + dot_signed_rails, so
      // batch one is bit-identical to the unbatched call).
      std::vector<double> wp, wn;
      split_rails(w.row(r), wp, wn);
      for (std::size_t s = 0; s < batch; ++s) {
        const std::span<const double> xp(xs_pos.data() + s * cols, cols);
        const std::span<const double> xn(xs_neg.data() + s * cols, cols);
        cells[r * batch + s] = unit.dot_signed_rails(wp, wn, xp, xn);
      }
    });
    // DACs inside the rail passes: four per row per sample.
    report.input_conversions += 4 * cols * rows * batch;
  }

  phot::gemm_result out;
  out.batch = batch;
  out.values.assign(batch * rows, 0.0);
  // Fixed rows-outer / samples-inner fold: thread-invariant float sums,
  // and a batch of one folds exactly like the per-vector path did.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t s = 0; s < batch; ++s) {
      const phot::dot_result& d = cells[r * batch + s];
      out.values[s * rows + r] = d.value;
      out.latency_s += d.latency_s;
      out.symbols += d.symbols;
    }
  }
  if (ledger_ != nullptr) {
    // Merge in row order so energy totals are thread-invariant.
    for (const phot::energy_ledger& l : row_ledgers) ledger_->merge(l);
  }
  report.optical_symbols += out.symbols;
  report.compute_latency_s += out.latency_s;
  return out;
}

engine_report photonic_engine::run_gemv(const proto::compute_header& h,
                                        net::packet& pkt) {
  engine_report report;
  if (!gemv_) return report;
  const auto input = proto::compute_input(pkt, h);
  const std::size_t batch = h.batch;
  const std::size_t cols = gemv_->weights.cols;
  const std::size_t rows = gemv_->weights.rows;
  if (batch == 0 || input.size() != cols * batch) return report;
  auto result_region = result_span(pkt, h, rows * batch);
  if (result_region.empty()) return report;

  // Chain codec convention: intermediate stage values travel in the unit
  // [0,1] encoding; only first-stage inputs / final results use the
  // signed encoding the client chose.
  const bool chained_input = h.hops > 0;
  const bool optical = config_.mode == compute_mode::on_fiber;
  const bool chained_output = h.has_more_stages();
  const double scale = std::max<double>(1.0, static_cast<double>(cols));

  // Decode every sample up front and run one batched GEMM: the per-row
  // weight rails are split once for the whole packet and all samples
  // stream through them.
  std::vector<double> xs(batch * cols);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto sample = input.subspan(b * cols, cols);
    const std::vector<double> x =
        chained_input ? proto::decode_unit_vector(sample)
                      : proto::decode_signed_vector(sample);
    std::copy(x.begin(), x.end(), xs.begin() + b * cols);
  }
  const phot::gemm_result y = analog_gemm(gemv_->weights, xs, optical, report);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t r = 0; r < rows; ++r) {
      double v = y.values[b * rows + r];
      if (!gemv_->bias.empty()) v += gemv_->bias[r];
      if (gemv_->relu_output && v < 0.0) v = 0.0;
      result_region[b * rows + r] = chained_output
                                        ? proto::encode_unit_u8(v / scale)
                                        : proto::encode_signed_u8(v / scale);
    }
  }
  report.computed = true;
  report.result_bytes = static_cast<std::uint16_t>(rows * batch);
  return report;
}

engine_report photonic_engine::run_match(const proto::compute_header& h,
                                         net::packet& pkt) {
  engine_report report;
  if (!match_) return report;
  const auto input = proto::compute_input(pkt, h);
  if (input.empty()) return report;
  auto result_region = result_span(pkt, h, 1);
  if (result_region.empty()) return report;

  const std::vector<std::uint8_t> bits = phot::bytes_to_bits(input);
  const bool optical = config_.mode == compute_mode::on_fiber;

  // On-fiber: the word exists optically once (pilot-first BPSK).
  phot::waveform wave;
  if (optical) {
    wave = upstream_phase_encoder_.encode_bits_to_optical(bits);
  } else {
    // Receive ADC digitized the word before matching.
    report.input_conversions += bits.size();
    if (ledger_ != nullptr) {
      ledger_->charge("adc", costs_.adc_conversion_j *
                                 static_cast<double>(bits.size()),
                      bits.size());
    }
  }

  std::uint8_t hit = match_no_hit;
  for (std::size_t pi = 0; pi < match_->patterns.size(); ++pi) {
    const auto& pattern = match_->patterns[pi];
    if (pattern.size() != bits.size()) continue;
    phot::match_result m;
    if (optical) {
      m = matcher_.match_optical(wave, pattern);
    } else {
      // OEO: each trial re-drives the data phase modulator from digital.
      report.input_conversions += bits.size();
      if (ledger_ != nullptr) {
        ledger_->charge("dac", costs_.dac_conversion_j *
                                   static_cast<double>(bits.size()),
                        bits.size());
      }
      m = matcher_.match_ternary(bits, pattern);
    }
    report.compute_latency_s += m.latency_s;
    report.optical_symbols += m.symbols;
    if (m.matched) {
      hit = static_cast<std::uint8_t>(pi);
      break;
    }
  }
  result_region[0] = hit;
  report.match_index = hit;
  report.computed = true;
  report.result_bytes = 1;
  return report;
}

engine_report photonic_engine::run_nonlinear(const proto::compute_header& h,
                                             net::packet& pkt) {
  engine_report report;
  const auto input = proto::compute_input(pkt, h);
  if (input.empty()) return report;
  auto result_region = result_span(pkt, h, input.size());
  if (result_region.empty()) return report;

  const std::vector<double> x = proto::decode_unit_vector(input);
  const double full_scale_mw = config_.dot.laser.power_mw;
  const bool optical = config_.mode == compute_mode::on_fiber;

  if (!optical) {
    // ADC-in + DAC re-encode per element.
    report.input_conversions += 2 * x.size();
    if (ledger_ != nullptr) {
      ledger_->charge("adc", costs_.adc_conversion_j *
                                 static_cast<double>(x.size()),
                      x.size());
      ledger_->charge("dac", costs_.dac_conversion_j *
                                 static_cast<double>(x.size()),
                      x.size());
    }
  }
  // Result readout digitizes each activated sample in both modes.
  report.input_conversions += x.size();
  if (ledger_ != nullptr) {
    ledger_->charge("adc", costs_.adc_conversion_j *
                               static_cast<double>(x.size()),
                    x.size());
  }

  for (std::size_t i = 0; i < x.size(); ++i) {
    const double y = nonlinear_.activate(x[i], full_scale_mw);
    result_region[i] = proto::encode_unit_u8(y);
  }
  report.optical_symbols += x.size();
  report.compute_latency_s +=
      static_cast<double>(x.size()) / config_.nonlinear.symbol_rate_hz +
      config_.dot.fixed_latency_s;
  report.computed = true;
  report.result_bytes = static_cast<std::uint16_t>(x.size());
  return report;
}

engine_report photonic_engine::run_dnn(const proto::compute_header& h,
                                       net::packet& pkt) {
  engine_report report;
  if (!dnn_) return report;
  const auto input = proto::compute_input(pkt, h);
  const std::size_t in_dim = dnn_->layers.front().weights.cols;
  const std::size_t out_dim = dnn_->layers.back().weights.rows;
  const std::size_t batch = h.batch;
  if (batch == 0 || input.size() != in_dim * batch) return report;
  auto result_region = result_span(pkt, h, (1 + out_dim) * batch);
  if (result_region.empty()) return report;

  const bool optical = config_.mode == compute_mode::on_fiber;
  const double full_scale_mw = config_.dot.laser.power_mw;

  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<double> act =
        proto::decode_unit_vector(input.subspan(b * in_dim, in_dim));

    for (std::size_t li = 0; li < dnn_->layers.size(); ++li) {
      const photonic_layer& layer = dnn_->layers[li];
      // Inside the engine the analog signal never leaves the chip in
      // on-fiber mode (single-chip photonic DNN [9]); in OEO mode every
      // layer pays the conversion boundary.
      phot::gemv_result z = analog_gemv(layer.weights, act, optical, report);
      for (std::size_t i = 0; i < z.values.size(); ++i) {
        if (!layer.bias.empty()) z.values[i] += layer.bias[i];
      }
      if (layer.activation) {
        // Map pre-activations onto the P3 unit's optical dynamic range
        // with the layer's fixed calibration scale (the one the model
        // trained with), then run each through the electro-optic
        // nonlinearity. Negative pre-activations carry no optical power.
        act.assign(z.values.size(), 0.0);
        for (std::size_t i = 0; i < z.values.size(); ++i) {
          const double u = std::clamp(
              z.values[i] / layer.activation_scale, 0.0, 1.0);
          act[i] = nonlinear_.activate(u, full_scale_mw);
        }
        report.compute_latency_s += static_cast<double>(act.size()) /
                                    config_.nonlinear.symbol_rate_hz;
        report.optical_symbols += act.size();
      } else {
        act = std::move(z.values);
      }
    }

    // Per-sample result: argmax class byte + logits normalized by
    // max |logit|.
    double amax = 1e-9;
    for (double v : act) amax = std::max(amax, std::abs(v));
    std::size_t best = 0;
    for (std::size_t i = 1; i < act.size(); ++i) {
      if (act[i] > act[best]) best = i;
    }
    const std::size_t base = b * (1 + out_dim);
    result_region[base] = static_cast<std::uint8_t>(best);
    for (std::size_t i = 0; i < act.size() && i < out_dim; ++i) {
      result_region[base + 1 + i] = proto::encode_signed_u8(act[i] / amax);
    }
  }
  report.computed = true;
  report.result_bytes = static_cast<std::uint16_t>((1 + out_dim) * batch);
  return report;
}

engine_report photonic_engine::process(net::packet& pkt) {
  const obs::scoped_timer timer(process_wall_hist());
  engine_report report;
  auto header = proto::peek_compute_header(pkt);
  if (!header || header->has_result()) return report;
  if (!supports(header->primitive)) return report;

  switch (header->primitive) {
    case proto::primitive_id::p1_dot_product:
      report = run_gemv(*header, pkt);
      break;
    case proto::primitive_id::p2_pattern_match:
      report = run_match(*header, pkt);
      break;
    case proto::primitive_id::p3_nonlinear:
      report = run_nonlinear(*header, pkt);
      break;
    case proto::primitive_id::p1_p3_dnn:
      report = run_dnn(*header, pkt);
      break;
    case proto::primitive_id::none:
      return report;
  }

  if (report.computed) {
    apply_postlude(pkt, *header, report);
  }
  return report;
}

void photonic_engine::apply_postlude(net::packet& pkt,
                                     proto::compute_header& h,
                                     const engine_report& report) {
  h.hops = static_cast<std::uint8_t>(h.hops + 1);
  h.result_length = report.result_bytes;
  if (h.has_more_stages()) {
    // Distributed chain (§5): hand off to the next stage — the result
    // becomes its input and the packet keeps routing by the new
    // primitive until a capable transponder is crossed.
    h.advance_stage(report.result_bytes);
  } else {
    h.flags |= proto::flag_has_result;
  }
  rewrite_compute_header(pkt, h);
}

bool photonic_engine::can_process(const net::packet& pkt) const {
  const auto h = proto::peek_compute_header(pkt);
  if (!h || h->has_result() || !supports(h->primitive)) return false;
  const auto input = proto::compute_input(pkt, *h);
  const std::size_t batch = h->batch;

  // Does a result region of `len` bytes fit at the header's offset?
  const auto result_fits = [&](std::size_t len) {
    const std::size_t begin = proto::compute_header_bytes + h->result_offset;
    return len > 0 && begin + len <= pkt.payload.size();
  };

  switch (h->primitive) {
    case proto::primitive_id::p1_dot_product:
      return batch > 0 && input.size() == gemv_->weights.cols * batch &&
             result_fits(gemv_->weights.rows * batch);
    case proto::primitive_id::p2_pattern_match:
      return !input.empty() && result_fits(1);
    case proto::primitive_id::p3_nonlinear:
      return !input.empty() && result_fits(input.size());
    case proto::primitive_id::p1_p3_dnn:
      return batch > 0 &&
             input.size() == dnn_->layers.front().weights.cols * batch &&
             result_fits((1 + dnn_->layers.back().weights.rows) * batch);
    case proto::primitive_id::none:
      return false;
  }
  return false;
}

batch_report photonic_engine::process_batch(
    std::span<net::packet* const> pkts) {
  const obs::scoped_timer timer(batch_wall_hist());
  batch_report out;
  out.computed.assign(pkts.size(), false);

  const auto absorb = [&out](const engine_report& r) {
    out.compute_latency_s += r.compute_latency_s;
    out.input_conversions += r.input_conversions;
    out.optical_symbols += r.optical_symbols;
  };

  // Admission: pool P1 packets and DNN packets; everything else (and
  // anything a validation check rejects) runs through process() singly.
  struct pooled_pkt {
    std::size_t idx = 0;              ///< position in `pkts`
    proto::compute_header h{};
    std::size_t first_sample = 0;     ///< offset into the pooled sample set
    std::size_t samples = 0;
  };
  std::vector<pooled_pkt> p1_group, dnn_group;
  std::vector<double> p1_xs, dnn_xs;  ///< pooled decoded samples

  for (std::size_t i = 0; i < pkts.size(); ++i) {
    net::packet& pkt = *pkts[i];
    const auto h = proto::peek_compute_header(pkt);
    const bool poolable =
        h && can_process(pkt) &&
        (h->primitive == proto::primitive_id::p1_dot_product ||
         h->primitive == proto::primitive_id::p1_p3_dnn);
    if (!poolable) {
      const engine_report r = process(pkt);
      if (r.computed) {
        out.computed[i] = true;
        ++out.computed_packets;
        absorb(r);
      }
      continue;
    }

    const auto input = proto::compute_input(pkt, *h);
    const bool p1 = h->primitive == proto::primitive_id::p1_dot_product;
    const std::size_t cols = p1 ? gemv_->weights.cols
                                : dnn_->layers.front().weights.cols;
    auto& group = p1 ? p1_group : dnn_group;
    auto& xs = p1 ? p1_xs : dnn_xs;
    // First-stage inputs use the signed encoding the client chose;
    // chained intermediate values travel in the unit [0,1] encoding.
    // (DNN inputs are always unit-encoded.)
    const bool chained_input = h->hops > 0;
    pooled_pkt entry{i, *h, xs.size() / cols,
                     static_cast<std::size_t>(h->batch)};
    for (std::size_t b = 0; b < entry.samples; ++b) {
      const auto sample = input.subspan(b * cols, cols);
      const std::vector<double> x =
          (p1 && !chained_input) ? proto::decode_signed_vector(sample)
                                 : proto::decode_unit_vector(sample);
      xs.insert(xs.end(), x.begin(), x.end());
    }
    group.push_back(std::move(entry));
  }

  const bool optical = config_.mode == compute_mode::on_fiber;

  // ---- pooled P1: one batched GEMM over every queued sample ----------
  if (!p1_group.empty()) {
    engine_report agg;
    const phot::gemm_result y =
        analog_gemm(gemv_->weights, p1_xs, optical, agg);
    absorb(agg);
    const std::size_t rows = gemv_->weights.rows;
    const std::size_t cols = gemv_->weights.cols;
    const double scale = std::max<double>(1.0, static_cast<double>(cols));
    for (pooled_pkt& e : p1_group) {
      net::packet& pkt = *pkts[e.idx];
      auto result_region = result_span(pkt, e.h, rows * e.samples);
      const bool chained_output = e.h.has_more_stages();
      for (std::size_t b = 0; b < e.samples; ++b) {
        const std::size_t s = e.first_sample + b;
        for (std::size_t r = 0; r < rows; ++r) {
          double v = y.values[s * rows + r];
          if (!gemv_->bias.empty()) v += gemv_->bias[r];
          if (gemv_->relu_output && v < 0.0) v = 0.0;
          result_region[b * rows + r] =
              chained_output ? proto::encode_unit_u8(v / scale)
                             : proto::encode_signed_u8(v / scale);
        }
      }
      engine_report r;
      r.computed = true;
      r.result_bytes = static_cast<std::uint16_t>(rows * e.samples);
      apply_postlude(pkt, e.h, r);
      out.computed[e.idx] = true;
      ++out.computed_packets;
    }
  }

  // ---- pooled DNN: layer-major GEMM over every queued sample ---------
  if (!dnn_group.empty()) {
    engine_report agg;
    const double full_scale_mw = config_.dot.laser.power_mw;
    const std::size_t total = dnn_xs.size() /
                              dnn_->layers.front().weights.cols;
    std::vector<double> acts = std::move(dnn_xs);
    for (const photonic_layer& layer : dnn_->layers) {
      const phot::gemm_result z =
          analog_gemm(layer.weights, acts, optical, agg);
      const std::size_t dim = layer.weights.rows;
      acts.assign(total * dim, 0.0);
      for (std::size_t s = 0; s < total; ++s) {
        for (std::size_t i = 0; i < dim; ++i) {
          double v = z.values[s * dim + i];
          if (!layer.bias.empty()) v += layer.bias[i];
          if (layer.activation) {
            const double u =
                std::clamp(v / layer.activation_scale, 0.0, 1.0);
            acts[s * dim + i] = nonlinear_.activate(u, full_scale_mw);
          } else {
            acts[s * dim + i] = v;
          }
        }
        if (layer.activation) {
          agg.compute_latency_s += static_cast<double>(dim) /
                                   config_.nonlinear.symbol_rate_hz;
          agg.optical_symbols += dim;
        }
      }
    }
    absorb(agg);
    const std::size_t out_dim = dnn_->layers.back().weights.rows;
    for (pooled_pkt& e : dnn_group) {
      net::packet& pkt = *pkts[e.idx];
      auto result_region = result_span(pkt, e.h, (1 + out_dim) * e.samples);
      for (std::size_t b = 0; b < e.samples; ++b) {
        const std::size_t s = e.first_sample + b;
        const double* act = acts.data() + s * out_dim;
        double amax = 1e-9;
        for (std::size_t i = 0; i < out_dim; ++i) {
          amax = std::max(amax, std::abs(act[i]));
        }
        std::size_t best = 0;
        for (std::size_t i = 1; i < out_dim; ++i) {
          if (act[i] > act[best]) best = i;
        }
        const std::size_t base = b * (1 + out_dim);
        result_region[base] = static_cast<std::uint8_t>(best);
        for (std::size_t i = 0; i < out_dim; ++i) {
          result_region[base + 1 + i] =
              proto::encode_signed_u8(act[i] / amax);
        }
      }
      engine_report r;
      r.computed = true;
      r.result_bytes = static_cast<std::uint16_t>((1 + out_dim) * e.samples);
      apply_postlude(pkt, e.h, r);
      out.computed[e.idx] = true;
      ++out.computed_packets;
    }
  }

  return out;
}

bool photonic_engine::detect_preamble(std::span<const phot::field> wave) {
  if (wave.size() != proto::optical_preamble_bits.size() + 1) return false;
  std::vector<phot::tbit> pattern;
  pattern.reserve(proto::optical_preamble_bits.size());
  for (std::uint8_t b : proto::optical_preamble_bits) {
    pattern.push_back(b ? phot::tbit::one : phot::tbit::zero);
  }
  return matcher_.match_optical(wave, pattern).matched;
}

phot::waveform photonic_engine::encode_preamble() {
  const std::vector<std::uint8_t> bits(proto::optical_preamble_bits.begin(),
                                       proto::optical_preamble_bits.end());
  return matcher_.encode_bits_to_optical(bits);
}

}  // namespace onfiber::core
