// optical_frame.hpp — the optical form of a packet on the fiber, and the
// Fig. 4 receive pipeline that processes it.
//
// Transmit side (source transponder):
//   [ optical preamble | PAM-coded packet bytes ]
// The preamble (17 phase-encoded symbols, §3) announces a compute packet
// so the photonic engine knows to engage; plain packets are framed
// without it and pass straight to the photodetector.
//
// Receive side (photonic compute transponder):
//   1. preamble detection on the first symbols (P2 correlator);
//   2. if absent -> commodity receive path only (backward compatible);
//   3. if present -> commodity receive recovers the bytes, the engine
//      runs the compute task, and the *result-bearing* packet continues.
//
// This module is the waveform-level integration of the pieces that the
// packet-level runtime abstracts; tests and bench E4 use it to check the
// abstraction against the physics.
#pragma once

#include <optional>

#include "core/photonic_engine.hpp"
#include "core/transponder.hpp"
#include "network/packet.hpp"

namespace onfiber::core {

/// A framed optical burst.
struct optical_frame {
  phot::waveform preamble;  ///< empty for plain (non-compute) frames
  phot::waveform body;      ///< PAM-coded wire bytes
  net::ipv4 src{};          ///< sim bookkeeping (framing metadata)
  net::ipv4 dst{};
  net::ip_proto proto = net::ip_proto::udp;
};

/// Serialize a packet onto the carrier. Compute packets get the optical
/// preamble; plain packets do not.
[[nodiscard]] optical_frame frame_packet(const net::packet& pkt,
                                         commodity_transponder& tx,
                                         photonic_engine& engine);

/// Outcome of the Fig. 4 receive pipeline.
struct receive_pipeline_report {
  bool preamble_detected = false;
  bool computed = false;
  std::uint64_t symbol_errors = 0;
  double latency_s = 0.0;       ///< receive + (if any) compute time
  std::optional<net::packet> packet;  ///< recovered (possibly computed)
};

/// Run a frame through a compute transponder's receive path.
/// `sent_bytes` (optional) enables symbol-error accounting.
[[nodiscard]] receive_pipeline_report receive_frame(
    const optical_frame& frame, commodity_transponder& rx,
    photonic_engine& engine,
    std::span<const std::uint8_t> sent_bytes = {});

}  // namespace onfiber::core
