#include "core/transponder.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace onfiber::core {

namespace {

// Gray-coded PAM-4 level map: 2-bit value -> normalized level in [0,1].
// Gray order 00,01,11,10 maps to levels 0,1/3,2/3,1 so adjacent levels
// differ in exactly one bit.
constexpr std::array<double, 4> pam4_level = {0.0, 1.0 / 3.0, 1.0, 2.0 / 3.0};
// Inverse: level index (0..3 by amplitude) -> 2-bit value.
constexpr std::array<std::uint8_t, 4> pam4_bits_by_amplitude = {0b00, 0b01,
                                                                0b11, 0b10};

}  // namespace

commodity_transponder::commodity_transponder(transponder_config config,
                                             std::uint64_t seed,
                                             phot::energy_ledger* ledger,
                                             phot::energy_costs costs)
    : config_([&] {
        config.laser.symbol_rate_hz = config.symbol_rate_hz;
        config.detector.noise.bandwidth_hz = config.symbol_rate_hz;
        return config;
      }()),
      laser_(config_.laser, phot::rng{seed}, ledger, costs),
      modulator_(config_.modulator, /*bias_rad=*/0.0, phot::rng{seed ^ 0x10},
                 ledger, costs),
      detector_(config_.detector, phot::rng{seed ^ 0x20}, ledger, costs),
      dac_(config_.dac, phot::rng{seed ^ 0x30}, ledger, costs),
      adc_(config_.adc, phot::rng{seed ^ 0x40}, ledger, costs) {}

std::size_t commodity_transponder::symbols_for_bytes(std::size_t n) const {
  const std::size_t bits = n * 8;
  const auto bps = static_cast<std::size_t>(bits_per_symbol());
  return (bits + bps - 1) / bps;
}

double commodity_transponder::full_scale_power_mw() const {
  return config_.laser.power_mw *
         phot::db_to_ratio(-config_.modulator.insertion_loss_db);
}

phot::waveform commodity_transponder::transmit(
    std::span<const std::uint8_t> bytes) {
  phot::waveform wave;
  wave.reserve(symbols_for_bytes(bytes.size()));
  const int bps = bits_per_symbol();

  std::uint32_t bit_buffer = 0;
  int bits_held = 0;
  const auto emit_symbol = [&](std::uint32_t sym_bits) {
    double level;
    if (config_.coding == line_coding::pam2) {
      level = sym_bits ? 1.0 : 0.0;
    } else {
      level = pam4_level[sym_bits & 0x3];
    }
    const double drive = dac_.convert(level);
    wave.push_back(modulator_.encode_unit(laser_.emit_one(), drive));
  };

  for (std::uint8_t byte : bytes) {
    bit_buffer = (bit_buffer << 8) | byte;
    bits_held += 8;
    while (bits_held >= bps) {
      bits_held -= bps;
      emit_symbol((bit_buffer >> bits_held) & ((1U << bps) - 1U));
    }
  }
  if (bits_held > 0) {
    emit_symbol((bit_buffer << (bps - bits_held)) & ((1U << bps) - 1U));
  }
  return wave;
}

receive_report commodity_transponder::receive(
    std::span<const phot::field> wave, std::span<const std::uint8_t> sent) {
  receive_report report;
  const int bps = bits_per_symbol();

  // Calibrated slicer reference: expected current at full-scale power.
  const double full_scale_mw = full_scale_power_mw();
  const double i_fs = detector_.expected_current_a(full_scale_mw);
  const double i_dark = detector_.config().dark_current_a;

  // Re-modulate the sent bytes to know ground-truth levels, if provided.
  std::vector<std::uint8_t> expected_symbols;
  if (!sent.empty()) {
    expected_symbols.reserve(wave.size());
    std::uint32_t bb = 0;
    int held = 0;
    for (std::uint8_t byte : sent) {
      bb = (bb << 8) | byte;
      held += 8;
      while (held >= bps) {
        held -= bps;
        expected_symbols.push_back(
            static_cast<std::uint8_t>((bb >> held) & ((1U << bps) - 1U)));
      }
    }
    if (held > 0) {
      expected_symbols.push_back(static_cast<std::uint8_t>(
          (bb << (bps - held)) & ((1U << bps) - 1U)));
    }
  }

  std::uint32_t bit_buffer = 0;
  int bits_held = 0;
  for (std::size_t si = 0; si < wave.size(); ++si) {
    const double current = detector_.detect(wave[si]);
    const double normalized =
        i_fs > i_dark ? (current - i_dark) / (i_fs - i_dark) : 0.0;
    const double digitized = adc_.convert(std::clamp(normalized, 0.0, 1.0));

    std::uint8_t sym_bits;
    if (config_.coding == line_coding::pam2) {
      sym_bits = digitized >= 0.5 ? 1 : 0;
    } else {
      // Slice to nearest of the 4 amplitude levels, then un-Gray.
      const int idx = std::clamp(
          static_cast<int>(std::lround(digitized * 3.0)), 0, 3);
      sym_bits = pam4_bits_by_amplitude[static_cast<std::size_t>(idx)];
    }
    if (!expected_symbols.empty() && si < expected_symbols.size() &&
        sym_bits != expected_symbols[si]) {
      ++report.symbol_errors;
    }

    bit_buffer = (bit_buffer << bps) | sym_bits;
    bits_held += bps;
    while (bits_held >= 8) {
      bits_held -= 8;
      report.bytes.push_back(
          static_cast<std::uint8_t>((bit_buffer >> bits_held) & 0xff));
    }
  }

  report.latency_s =
      static_cast<double>(wave.size()) / config_.symbol_rate_hz +
      config_.dsp_latency_s;
  return report;
}

}  // namespace onfiber::core
