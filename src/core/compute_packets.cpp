#include "core/compute_packets.hpp"

namespace onfiber::core {

namespace {

/// Common packet assembly: input bytes followed by a zeroed result region.
[[nodiscard]] net::packet assemble(net::ipv4 src, net::ipv4 dst,
                                   proto::primitive_id prim,
                                   std::vector<std::uint8_t> input,
                                   std::size_t result_bytes,
                                   std::uint32_t task_id,
                                   std::uint8_t encoding_flag) {
  net::packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.payload = std::move(input);
  const auto input_len = static_cast<std::uint16_t>(pkt.payload.size());
  pkt.payload.insert(pkt.payload.end(), result_bytes, 0);

  proto::compute_header h;
  h.primitive = prim;
  h.task_id = task_id;
  h.input_offset = 0;
  h.input_length = input_len;
  h.result_offset = input_len;
  h.result_length = static_cast<std::uint16_t>(result_bytes);
  h.flags = proto::flag_require_compute | encoding_flag;
  proto::attach_compute_header(pkt, h);
  pkt.flow_hash = net::flow_hash_of(src, dst, 7000, 7001,
                                    static_cast<std::uint8_t>(pkt.proto));
  return pkt;
}

/// Header + result view of a completed compute packet.
[[nodiscard]] std::optional<
    std::pair<proto::compute_header, std::span<const std::uint8_t>>>
completed_result(const net::packet& pkt) {
  const auto h = proto::peek_compute_header(pkt);
  if (!h || !h->has_result()) return std::nullopt;
  const std::size_t begin = proto::compute_header_bytes + h->result_offset;
  if (begin + h->result_length > pkt.payload.size() || h->result_length == 0) {
    return std::nullopt;
  }
  return std::make_pair(
      *h, std::span<const std::uint8_t>(pkt.payload)
              .subspan(begin, h->result_length));
}

}  // namespace

net::packet make_gemv_request(net::ipv4 src, net::ipv4 dst,
                              std::span<const double> x, std::size_t out_dim,
                              std::uint32_t task_id) {
  return assemble(src, dst, proto::primitive_id::p1_dot_product,
                  proto::encode_signed_vector(x), out_dim, task_id,
                  proto::flag_intensity_encoded);
}

net::packet make_match_request(net::ipv4 src, net::ipv4 dst,
                               std::span<const std::uint8_t> data,
                               std::uint32_t task_id) {
  return assemble(src, dst, proto::primitive_id::p2_pattern_match,
                  std::vector<std::uint8_t>(data.begin(), data.end()), 1,
                  task_id, proto::flag_phase_encoded);
}

net::packet make_nonlinear_request(net::ipv4 src, net::ipv4 dst,
                                   std::span<const double> x,
                                   std::uint32_t task_id) {
  return assemble(src, dst, proto::primitive_id::p3_nonlinear,
                  proto::encode_unit_vector(x), x.size(), task_id,
                  proto::flag_intensity_encoded);
}

net::packet make_dnn_request(net::ipv4 src, net::ipv4 dst,
                             std::span<const double> x, std::size_t out_dim,
                             std::uint32_t task_id) {
  return assemble(src, dst, proto::primitive_id::p1_p3_dnn,
                  proto::encode_unit_vector(x), 1 + out_dim, task_id,
                  proto::flag_intensity_encoded);
}

net::packet make_dnn_batch_request(net::ipv4 src, net::ipv4 dst,
                                   std::span<const double> samples,
                                   std::size_t in_dim, std::size_t out_dim,
                                   std::uint32_t task_id) {
  if (in_dim == 0 || samples.size() % in_dim != 0 || samples.empty()) {
    throw std::invalid_argument(
        "make_dnn_batch_request: samples must be batch x in_dim");
  }
  const std::size_t batch = samples.size() / in_dim;
  if (batch > 255) {
    throw std::invalid_argument("make_dnn_batch_request: batch > 255");
  }
  net::packet pkt = assemble(src, dst, proto::primitive_id::p1_p3_dnn,
                             proto::encode_unit_vector(samples),
                             (1 + out_dim) * batch, task_id,
                             proto::flag_intensity_encoded);
  auto h = proto::peek_compute_header(pkt);
  h->batch = static_cast<std::uint8_t>(batch);
  rewrite_compute_header(pkt, *h);
  return pkt;
}

net::packet make_chain_request(net::ipv4 src, net::ipv4 dst,
                               std::span<const proto::primitive_id> stages,
                               std::span<const double> x,
                               std::size_t result_capacity,
                               std::uint32_t task_id) {
  if (stages.empty() || stages.size() > 3) {
    throw std::invalid_argument(
        "make_chain_request: 1..3 stages supported");
  }
  for (const auto s : stages) {
    if (s == proto::primitive_id::none) {
      throw std::invalid_argument("make_chain_request: none stage");
    }
  }
  const bool signed_input =
      stages.front() == proto::primitive_id::p1_dot_product;
  net::packet pkt = assemble(
      src, dst, stages.front(),
      signed_input ? proto::encode_signed_vector(x)
                   : proto::encode_unit_vector(x),
      result_capacity, task_id, proto::flag_intensity_encoded);
  auto h = proto::peek_compute_header(pkt);
  h->result_length = 0;  // every engine sizes its own stage output
  if (stages.size() > 1) h->stage2 = stages[1];
  if (stages.size() > 2) h->stage3 = stages[2];
  rewrite_compute_header(pkt, *h);
  return pkt;
}

std::optional<std::vector<double>> read_gemv_result(const net::packet& pkt) {
  const auto found = completed_result(pkt);
  if (!found || found->first.primitive != proto::primitive_id::p1_dot_product) {
    return std::nullopt;
  }
  // The engine scales each sample's outputs by its per-sample input
  // length (= cols); for batched packets that is input_length / batch.
  const std::size_t batch = std::max<std::size_t>(1, found->first.batch);
  const double scale = std::max<double>(
      1.0, static_cast<double>(found->first.input_length) /
               static_cast<double>(batch));
  std::vector<double> out;
  out.reserve(found->second.size());
  for (std::uint8_t b : found->second) {
    out.push_back(proto::decode_signed_u8(b) * scale);
  }
  return out;
}

std::optional<std::uint8_t> read_match_result(const net::packet& pkt) {
  const auto found = completed_result(pkt);
  if (!found ||
      found->first.primitive != proto::primitive_id::p2_pattern_match) {
    return std::nullopt;
  }
  return found->second[0];
}

std::optional<std::vector<double>> read_nonlinear_result(
    const net::packet& pkt) {
  const auto found = completed_result(pkt);
  if (!found || found->first.primitive != proto::primitive_id::p3_nonlinear) {
    return std::nullopt;
  }
  return proto::decode_unit_vector(found->second);
}

std::optional<dnn_result> read_dnn_result(const net::packet& pkt) {
  const auto found = completed_result(pkt);
  if (!found || found->first.primitive != proto::primitive_id::p1_p3_dnn ||
      found->second.size() < 2) {
    return std::nullopt;
  }
  // For batched packets this returns the first sample's result; use
  // read_dnn_batch_result for all of them.
  const std::size_t per_sample =
      found->second.size() / std::max<std::size_t>(1, found->first.batch);
  if (per_sample < 2) return std::nullopt;
  dnn_result r;
  r.predicted_class = found->second[0];
  for (std::size_t i = 1; i < per_sample; ++i) {
    r.logits.push_back(proto::decode_signed_u8(found->second[i]));
  }
  return r;
}

std::optional<std::vector<dnn_result>> read_dnn_batch_result(
    const net::packet& pkt) {
  const auto found = completed_result(pkt);
  if (!found || found->first.primitive != proto::primitive_id::p1_p3_dnn) {
    return std::nullopt;
  }
  const std::size_t batch = std::max<std::size_t>(1, found->first.batch);
  if (found->second.size() % batch != 0) return std::nullopt;
  const std::size_t per_sample = found->second.size() / batch;
  if (per_sample < 2) return std::nullopt;
  std::vector<dnn_result> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    dnn_result r;
    r.predicted_class = found->second[b * per_sample];
    for (std::size_t i = 1; i < per_sample; ++i) {
      r.logits.push_back(
          proto::decode_signed_u8(found->second[b * per_sample + i]));
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace onfiber::core
