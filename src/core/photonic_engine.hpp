// photonic_engine.hpp — the receive-path compute engine of the photonic
// computing transponder (paper Fig. 4).
//
// "our design augments the receive path with a photonic engine ... The
//  photonic engine performs the appropriate computation tasks and inserts
//  the results into a predetermined field in the packet header or
//  payload."
//
// The engine hosts configured instances of the §2.1 primitives (P1 dot
// product / GEMV, P2 pattern matching, P3 nonlinear, and the fused
// P1+P3 DNN graph) and processes compute packets in place. It supports
// two execution modes, the axis of the E17 ablation:
//
//   * on_fiber     — the compute input is consumed in its optical form as
//                    it arrives (no input-side conversions at this node);
//   * oeo_per_hop  — Lightning-style [71]: the input is digitized by the
//                    receive ADC and re-encoded through a DAC before the
//                    photonic core runs (conversions charged per element).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "network/packet.hpp"
#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/nonlinear_unit.hpp"
#include "photonics/engine/pattern_matcher.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/rng.hpp"
#include "protocol/compute_header.hpp"
#include "protocol/compute_routing.hpp"

namespace onfiber::core {

enum class compute_mode : std::uint8_t {
  on_fiber,     ///< the paper's proposal
  oeo_per_hop,  ///< conventional photonic-accelerator baseline
};

/// P1 task: y = W x (+ bias, optional rectification), x signed in [-1,1].
struct gemv_task {
  phot::matrix weights;
  std::vector<double> bias;  ///< may be empty (treated as zeros)
  bool relu_output = false;
};

/// P2 task: an ordered list of ternary patterns; the engine reports the
/// first match (priority matching, TCAM semantics).
struct match_task {
  std::vector<std::vector<phot::tbit>> patterns;
};
inline constexpr std::uint8_t match_no_hit = 0xff;

/// One layer of the fused P1+P3 DNN graph.
struct photonic_layer {
  phot::matrix weights;
  std::vector<double> bias;
  bool activation = true;  ///< apply the P3 electro-optic nonlinearity
  /// Pre-activation value that drives the P3 unit to full transmission.
  /// Must match the scale the model was trained with (photonic-aware
  /// training, see digital::activation_kind::photonic_sin2).
  double activation_scale = 2.0;
};

/// P1+P3 task: a whole feed-forward network executed inside the engine.
struct dnn_task {
  std::vector<photonic_layer> layers;
};

struct engine_config {
  phot::dot_product_config dot{};
  phot::pattern_match_config match{};
  phot::nonlinear_config nonlinear{};
  compute_mode mode = compute_mode::on_fiber;
};

/// What one packet's compute cost.
struct engine_report {
  bool computed = false;
  double compute_latency_s = 0.0;
  std::uint64_t input_conversions = 0;  ///< input-side DAC/ADC at this node
  std::uint64_t optical_symbols = 0;
  std::uint16_t result_bytes = 0;  ///< bytes the stage wrote
  std::optional<std::uint8_t> match_index;  ///< for P2 tasks
};

/// Aggregate cost of one process_batch() call.
struct batch_report {
  std::size_t computed_packets = 0;
  double compute_latency_s = 0.0;       ///< total analog time, all packets
  std::uint64_t input_conversions = 0;
  std::uint64_t optical_symbols = 0;
  std::vector<bool> computed;           ///< per input packet, same order
};

class photonic_engine {
 public:
  photonic_engine(engine_config config, std::uint64_t seed,
                  phot::energy_ledger* ledger = nullptr,
                  phot::energy_costs costs = {});

  // ---------------------------------------------------- task configuration
  // (the "service providers will reconfigure each transponder according
  //  to the desired operation" of §3)
  void configure_gemv(gemv_task task);
  void configure_match(match_task task);
  void configure_dnn(dnn_task task);
  void clear_tasks();

  void set_mode(compute_mode mode) { config_.mode = mode; }
  [[nodiscard]] compute_mode mode() const { return config_.mode; }

  /// Override the GEMV worker count (0 = auto: ONFIBER_THREADS env var,
  /// else hardware concurrency). Results are bit-identical at any value —
  /// per-row noise streams are forked in row order before dispatch.
  void set_threads(std::size_t threads) { threads_override_ = threads; }

  /// Can this engine serve packets asking for `p`?
  [[nodiscard]] bool supports(proto::primitive_id p) const;

  /// All primitives currently configured.
  [[nodiscard]] std::vector<proto::primitive_id> configured() const;

  // ------------------------------------------------------------ data plane

  /// Process a compute packet in place: parse the header, run the matching
  /// configured task on the compute input, write the result into the
  /// result region, set flag_has_result and bump the hop count.
  /// Returns computed == false (and leaves the packet untouched) if the
  /// packet is not compute, already carries a result, asks for an
  /// unconfigured primitive, or has malformed bounds.
  engine_report process(net::packet& pkt);

  /// Would process() compute this packet? Pure validation — parses the
  /// header and checks primitive support, input shape and result-region
  /// bounds without touching any noise stream. Used by the runtime to
  /// admit packets into a site batch only when the later batched compute
  /// cannot fail.
  [[nodiscard]] bool can_process(const net::packet& pkt) const;

  /// Process many compute packets as one batch. GEMV (P1) packets pool
  /// their samples into a single batched GEMM — the per-row weight rails
  /// are split once and every queued sample streams through them — and
  /// DNN packets run layer-major over the pooled sample set. Other
  /// primitives fall back to process() one by one. Each packet gets the
  /// same in-place writeback and header postlude as process(); a batch of
  /// one P1/DNN packet with batch field 1 is bit-identical to process().
  batch_report process_batch(std::span<net::packet* const> pkts);

  /// Optical preamble detection (§3): does this waveform begin with the
  /// compute preamble? `wave` must hold the pilot + 16 preamble symbols
  /// produced by `encode_preamble`.
  [[nodiscard]] bool detect_preamble(std::span<const phot::field> wave);

  /// Produce the optical preamble a source transponder prepends.
  [[nodiscard]] phot::waveform encode_preamble();

 private:
  engine_report run_gemv(const proto::compute_header& h, net::packet& pkt);
  engine_report run_match(const proto::compute_header& h, net::packet& pkt);
  engine_report run_nonlinear(const proto::compute_header& h,
                              net::packet& pkt);
  engine_report run_dnn(const proto::compute_header& h, net::packet& pkt);

  /// One signed GEMV over the analog units; shared by P1 and DNN layers.
  /// `input_is_optical` selects the on-fiber input path. Thin batch-1
  /// wrapper over analog_gemm (bit-identical to the historical per-vector
  /// path by construction).
  [[nodiscard]] phot::gemv_result analog_gemv(const phot::matrix& w,
                                              std::span<const double> x,
                                              bool input_is_optical,
                                              engine_report& report);

  /// Batched signed GEMM over the analog units: `xs` carries
  /// xs.size() / w.cols input vectors back to back. Per-row noise streams
  /// are forked in row order exactly once per call — independent of batch
  /// size — and each row's unit splits its weight rails once, then streams
  /// every sample through them. Rows run on the deterministic worker pool
  /// (see photonics/kernels.hpp): one forked stream and one private ledger
  /// per row, merged in row order. Returns sample-major values.
  [[nodiscard]] phot::gemm_result analog_gemm(const phot::matrix& w,
                                              std::span<const double> xs,
                                              bool input_is_optical,
                                              engine_report& report);

  /// Shared post-compute packet rewrite: bump hops, record the result
  /// length, advance the chain stage or set flag_has_result.
  void apply_postlude(net::packet& pkt, proto::compute_header& h,
                      const engine_report& report);

  engine_config config_;
  /// Ledger-free twin used to reconstruct the optical form of incoming
  /// data: the source transponder already paid those conversions, so the
  /// reconstruction must not charge this node.
  phot::dot_product_unit upstream_encoder_;
  phot::pattern_matcher matcher_;
  phot::pattern_matcher upstream_phase_encoder_;  // ledger-free, see above
  phot::nonlinear_unit nonlinear_;
  phot::rng row_seed_stream_;  ///< forked per GEMV row, in row order
  std::size_t threads_override_ = 0;
  phot::energy_ledger* ledger_ = nullptr;
  phot::energy_costs costs_{};

  std::optional<gemv_task> gemv_;
  std::optional<match_task> match_;
  std::optional<dnn_task> dnn_;
};

}  // namespace onfiber::core
