// transponder.hpp — commodity optical transponder (paper Fig. 3).
//
// Models the physical transmit and receive paths of a pluggable coherent
// transponder at symbol granularity:
//
//   transmit:  bits -> DAC -> MZM -> optical out
//   receive:   optical in -> photodetector -> ADC -> bits
//
// PAM-2 (OOK) and Gray-coded PAM-4 line codings are supported. Every
// DAC/ADC sample is charged to the energy ledger, which is how benches
// E4/E17 count the conversions the paper wants to eliminate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/converter.hpp"
#include "photonics/energy.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/photodetector.hpp"

namespace onfiber::core {

enum class line_coding : std::uint8_t {
  pam2 = 1,  ///< 1 bit/symbol (on-off keying)
  pam4 = 2,  ///< 2 bits/symbol, Gray mapped
};

struct transponder_config {
  phot::laser_config laser{};
  phot::modulator_config modulator{};
  phot::photodetector_config detector{};
  phot::converter_config dac{};
  phot::converter_config adc{};
  double symbol_rate_hz = 50e9;
  line_coding coding = line_coding::pam4;
  double dsp_latency_s = 100e-9;  ///< DSP ASIC pipeline latency per packet
};

/// Outcome of a receive operation.
struct receive_report {
  std::vector<std::uint8_t> bytes;
  std::uint64_t symbol_errors = 0;  ///< vs. the transmitted levels, if known
  double latency_s = 0.0;
};

/// Fig. 3 commodity transponder.
class commodity_transponder {
 public:
  commodity_transponder(transponder_config config, std::uint64_t seed,
                        phot::energy_ledger* ledger = nullptr,
                        phot::energy_costs costs = {});

  /// Serialize bytes onto the carrier. One DAC conversion per symbol.
  [[nodiscard]] phot::waveform transmit(std::span<const std::uint8_t> bytes);

  /// Recover bytes from a waveform. One ADC conversion per symbol.
  /// `sent` (optional) enables symbol-error counting against ground truth.
  [[nodiscard]] receive_report receive(
      std::span<const phot::field> wave,
      std::span<const std::uint8_t> sent = {});

  /// Symbols needed to carry `n` bytes at the configured coding.
  [[nodiscard]] std::size_t symbols_for_bytes(std::size_t n) const;

  /// Serialization time of `n` bytes at the line rate [s].
  [[nodiscard]] double serialize_latency_s(std::size_t n) const {
    return static_cast<double>(symbols_for_bytes(n)) / config_.symbol_rate_hz;
  }

  /// Expected receive power of the level-1 (full-scale) symbol [mW],
  /// before any fiber loss.
  [[nodiscard]] double full_scale_power_mw() const;

  [[nodiscard]] const transponder_config& config() const { return config_; }

 private:
  [[nodiscard]] int bits_per_symbol() const {
    return static_cast<int>(config_.coding);
  }

  transponder_config config_;
  phot::laser laser_;
  phot::mzm_modulator modulator_;
  phot::photodetector detector_;
  phot::dac dac_;
  phot::adc adc_;
};

}  // namespace onfiber::core
