// runtime.hpp — the on-fiber computing runtime: WAN fabric + photonic
// compute transponders + compute-aware routing (paper Fig. 1 end to end).
//
// The runtime installs a hook at every fabric node implementing the §3
// data plane:
//   * plain packets forward normally (backward compatibility);
//   * compute packets that transit a node hosting an engine supporting
//     their primitive are processed there (serially — one analog engine
//     per transponder), then continue to their destination carrying the
//     result;
//   * compute packets elsewhere are steered by the two-field
//     (destination, primitive) tables that the centralized controller —
//     or the built-in nearest-site heuristic — installs.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/photonic_engine.hpp"
#include "network/fabric.hpp"
#include "protocol/compute_routing.hpp"

namespace onfiber::core {

class onfiber_runtime {
 public:
  onfiber_runtime(net::simulator& sim, net::topology topo);

  onfiber_runtime(const onfiber_runtime&) = delete;
  onfiber_runtime& operator=(const onfiber_runtime&) = delete;

  /// Deploy a photonic compute transponder at a node. Returns the engine
  /// for task configuration. One engine per node in this model (the
  /// paper's "photonic compute transponder at site B" granularity).
  photonic_engine& deploy_engine(net::node_id at, engine_config config,
                                 std::uint64_t seed);

  /// Does `at` host an engine supporting `p`?
  [[nodiscard]] bool site_supports(net::node_id at,
                                   proto::primitive_id p) const;

  /// Nodes hosting engines.
  [[nodiscard]] std::vector<net::node_id> sites() const;

  /// Manually install a compute route (controller output): at node `at`,
  /// compute packets for `dst` needing `p` go toward `next_hop`.
  void set_compute_route(net::node_id at, net::prefix dst,
                         proto::primitive_id p, net::node_id next_hop);

  /// Built-in heuristic: for every (node, primitive, destination), steer
  /// via the supporting site minimizing total path delay. The centralized
  /// controller's optimizer (src/controller) produces better placements;
  /// this gives examples/tests a working default. Also prepares the
  /// spread-steering tables (below).
  void install_compute_routes_via_nearest_site();

  /// How compute packets pick among capable sites (§4: "this new policy
  /// should mitigate congestion and achieve efficient load balancing").
  enum class steering_policy : std::uint8_t {
    nearest_site,  ///< all flows to the delay-optimal site (default)
    flow_spread,   ///< hash flows across ALL capable sites — relieves a
                   ///< hot serial engine at some path-stretch cost
  };
  void set_steering_policy(steering_policy p) { steering_ = p; }

  /// Inject a packet at a node.
  void submit(net::packet pkt, net::node_id ingress);

  [[nodiscard]] net::wan_fabric& fabric() { return fabric_; }
  [[nodiscard]] const net::wan_fabric& fabric() const { return fabric_; }
  [[nodiscard]] net::simulator& sim() { return sim_; }

  // ------------------------------------------------------------- results
  struct delivery {
    net::packet pkt;
    net::node_id at = net::invalid_node;
    double time_s = 0.0;
  };
  [[nodiscard]] const std::vector<delivery>& deliveries() const {
    return deliveries_;
  }
  void clear_deliveries() { deliveries_.clear(); }

  struct runtime_stats {
    std::uint64_t computed = 0;             ///< packets computed at a site
    std::uint64_t redirected = 0;           ///< compute-route redirects
    std::uint64_t uncomputed_delivered = 0; ///< required compute never ran
    std::uint64_t malformed_dropped = 0;    ///< bad compute headers dropped
  };
  [[nodiscard]] const runtime_stats& stats() const { return stats_; }

  /// Aggregate compute latency spent at each site (indexed by node id;
  /// 0 for nodes without engines).
  [[nodiscard]] double site_busy_s(net::node_id at) const;

 private:
  struct site {
    std::unique_ptr<photonic_engine> engine;
    double busy_until_s = 0.0;  ///< serial analog engine availability
    double total_busy_s = 0.0;
    std::uint64_t computed = 0;
  };

  net::hook_decision on_packet(net::node_id at, net::packet& pkt, double now);

  /// Per-packet fixed overhead at a compute site: optical preamble
  /// detection (17 symbols on the P2 matcher) + result insertion.
  [[nodiscard]] double site_overhead_s(const site& s) const;

  net::simulator& sim_;
  net::wan_fabric fabric_;
  std::vector<std::unique_ptr<site>> sites_;  // indexed by node id
  std::vector<proto::compute_routing_table<net::node_id>> compute_tables_;
  std::vector<delivery> deliveries_;
  runtime_stats stats_;

  steering_policy steering_ = steering_policy::nearest_site;
  /// Sites supporting each primitive (filled with the compute routes).
  std::array<std::vector<net::node_id>,
             static_cast<std::size_t>(proto::primitive_id::p1_p3_dnn) + 1>
      capable_sites_{};
  /// next_hop_toward_[u][v]: first hop of the shortest path u -> v
  /// (invalid_node when unreachable), for spread steering.
  std::vector<std::vector<net::node_id>> next_hop_toward_;
};

}  // namespace onfiber::core
