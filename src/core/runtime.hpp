// runtime.hpp — the on-fiber computing runtime: WAN fabric + photonic
// compute transponders + compute-aware routing (paper Fig. 1 end to end).
//
// The runtime installs a hook at every fabric node implementing the §3
// data plane:
//   * plain packets forward normally (backward compatibility);
//   * compute packets that transit a node hosting an engine supporting
//     their primitive are processed there (serially — one analog engine
//     per transponder), then continue to their destination carrying the
//     result;
//   * compute packets elsewhere are steered by the two-field
//     (destination, primitive) tables that the centralized controller —
//     or the built-in nearest-site heuristic — installs.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/photonic_engine.hpp"
#include "network/fabric.hpp"
#include "obs/metrics.hpp"
#include "protocol/compute_routing.hpp"

namespace onfiber::core {

class onfiber_runtime final : public net::packet_event_sink {
 public:
  onfiber_runtime(net::simulator& sim, net::topology topo);

  /// Sharded runtime: the fabric partitions the topology across the
  /// engine's shards and hooks run on the owning shard's thread. Site
  /// state stays per-node (a node lives on exactly one shard), while
  /// the runtime's counters, delivery log, and reliability layer become
  /// per-shard and are merged deterministically on read. Reliable tasks
  /// are owned by the shard of their ingress node: the task table, RTO
  /// timers, and failover planning all live there, while acks ride the
  /// fabric (and its cross-shard parcel channels) like any other
  /// packet. Control-plane entry points — submit_reliable,
  /// enable_reliability, set_bit_error_rate — must be called from setup
  /// or a schedule_global event in sharded mode. A 1-shard engine
  /// behaves bit-identically to the classic constructor.
  onfiber_runtime(net::shard_engine& engine, net::topology topo);

  onfiber_runtime(const onfiber_runtime&) = delete;
  onfiber_runtime& operator=(const onfiber_runtime&) = delete;

  /// Deploy a photonic compute transponder at a node. Returns the engine
  /// for task configuration. One engine per node in this model (the
  /// paper's "photonic compute transponder at site B" granularity).
  photonic_engine& deploy_engine(net::node_id at, engine_config config,
                                 std::uint64_t seed);

  /// Does `at` host an engine supporting `p`?
  [[nodiscard]] bool site_supports(net::node_id at,
                                   proto::primitive_id p) const;

  /// Nodes hosting engines.
  [[nodiscard]] std::vector<net::node_id> sites() const;

  /// Manually install a compute route (controller output): at node `at`,
  /// compute packets for `dst` needing `p` go toward `next_hop`.
  void set_compute_route(net::node_id at, net::prefix dst,
                         proto::primitive_id p, net::node_id next_hop);

  /// Built-in heuristic: for every (node, primitive, destination), steer
  /// via the supporting site minimizing total path delay. The centralized
  /// controller's optimizer (src/controller) produces better placements;
  /// this gives examples/tests a working default. Also prepares the
  /// spread-steering tables (below).
  void install_compute_routes_via_nearest_site();

  /// How compute packets pick among capable sites (§4: "this new policy
  /// should mitigate congestion and achieve efficient load balancing").
  enum class steering_policy : std::uint8_t {
    nearest_site,  ///< all flows to the delay-optimal site (default)
    flow_spread,   ///< hash flows across ALL capable sites — relieves a
                   ///< hot serial engine at some path-stretch cost
  };
  void set_steering_policy(steering_policy p) { steering_ = p; }

  /// Opt-in site batching: instead of running the analog engine once per
  /// arriving packet, a site collects the compute packets that arrive
  /// within `window_s` and executes them as one photonic_engine
  /// process_batch() call — GEMV/DNN packets pool their samples into
  /// batched GEMMs, and the whole flush pays the per-packet site overhead
  /// (preamble detection + result insertion) once. Packets are only
  /// admitted to the queue when can_process() guarantees the batched
  /// compute cannot fail. 0 disables (the default: every packet computes
  /// on arrival, exactly the historical behavior).
  void enable_site_batching(double window_s) {
    batching_window_s_ = window_s > 0.0 ? window_s : 0.0;
  }

  // ---------------------------------------------- admission / backpressure
  //
  // A site's compute queue — batch-parked packets plus serial work
  // admitted but not yet re-injected — is bounded. Without a bound,
  // overload grows the queue (and the event backlog behind an
  // ever-receding busy_until_s) without limit; with one, overload
  // degrades goodput gracefully: the overflow packet is either deferred
  // (forwarded raw toward its destination, where it counts as
  // uncomputed_delivered) or dropped at the hook. The check adds no
  // events and removes none below the bound, so traces of workloads that
  // never overflow are bit-identical to the unbounded runtime.
  struct admission_config {
    /// Maximum packets queued at one site (batch + in-service serial
    /// backlog). 0 = unbounded (the historical behavior).
    std::size_t max_site_queue = 4096;
    enum class overflow_policy : std::uint8_t {
      defer,  ///< skip compute here; forward the packet raw
      drop,   ///< discard the packet (a fabric hook_drop)
    };
    overflow_policy policy = overflow_policy::defer;
  };
  void set_admission(admission_config cfg) { admission_ = cfg; }
  [[nodiscard]] const admission_config& admission_policy() const {
    return admission_;
  }

  struct admission_stats {
    std::uint64_t admitted = 0;  ///< packets committed to a site queue
    std::uint64_t deferred = 0;  ///< overflow packets forwarded raw
    std::uint64_t dropped = 0;   ///< overflow packets discarded
    std::uint64_t max_queue_depth = 0;  ///< high-watermark over all sites
  };
  /// Counters kept per shard and summed on read (max for the watermark).
  [[nodiscard]] const admission_stats& admission() const;

  /// Current compute-queue depth at `at` (0 for nodes without engines):
  /// parked batch packets plus serial admissions still in service.
  [[nodiscard]] std::size_t site_queue_depth(net::node_id at);

  /// Delivery-log control for open-loop workloads: the per-delivery log
  /// (deliveries()) materializes every delivered packet, which cannot
  /// reach millions of packets. Turn it off and attach an observer —
  /// called on the delivering shard's thread for every non-ack delivery
  /// (aggregate per shard, e.g. net::completion_recorder).
  void set_record_deliveries(bool on) { record_deliveries_ = on; }
  using delivery_observer_fn =
      std::function<void(const net::packet&, net::node_id, double)>;
  void set_delivery_observer(delivery_observer_fn fn) {
    on_delivered_ = std::move(fn);
  }

  /// Inject a packet at a node.
  void submit(net::packet pkt, net::node_id ingress);

  [[nodiscard]] net::wan_fabric& fabric() { return fabric_; }
  [[nodiscard]] const net::wan_fabric& fabric() const { return fabric_; }
  [[nodiscard]] net::simulator& sim() { return sim_; }

  // ------------------------------------------------------------- results
  struct delivery {
    net::packet pkt;
    net::node_id at = net::invalid_node;
    double time_s = 0.0;
  };
  /// Delivered packets. Classic (and 1-shard) runtimes return the log in
  /// raw event order, exactly as before. Multi-shard runtimes keep one
  /// log per shard and merge by (time_s, at) on read — deterministic
  /// because same-node deliveries are same-shard (already ordered) and
  /// cross-node ties at the exact same double timestamp do not occur in
  /// the golden workloads.
  [[nodiscard]] const std::vector<delivery>& deliveries() const;
  void clear_deliveries() {
    for (auto& d : shard_deliveries_) d.clear();
    deliveries_merged_.clear();
  }

  struct runtime_stats {
    std::uint64_t computed = 0;             ///< packets computed at a site
    std::uint64_t redirected = 0;           ///< compute-route redirects
    std::uint64_t uncomputed_delivered = 0; ///< required compute never ran
    std::uint64_t malformed_dropped = 0;    ///< bad compute headers dropped
  };
  /// Counters are kept per shard and summed on read (order-independent
  /// integer sums — deterministic at any shard count).
  [[nodiscard]] const runtime_stats& stats() const;

  /// Aggregate compute latency spent at each site (indexed by node id;
  /// 0 for nodes without engines).
  [[nodiscard]] double site_busy_s(net::node_id at) const;

  // -------------------------------------------------------- reliability
  //
  // End-to-end ack/retry/failover for compute tasks (§5: on-fiber compute
  // must survive drops, link failures and reconvergence windows). A task
  // submitted via submit_reliable() is tracked in a table keyed by
  // task_id; the destination's delivery triggers an ack packet back to
  // the source, and a timer retransmits the stored request with
  // exponential backoff until the ack lands or the retry cap is hit.
  // After `failover_after` consecutive timeouts the runtime asks the
  // controller (ctrl::plan_failover_site) for an alternate compute site
  // over live links and pins the task's retries to it.
  //
  // Sharded fabrics: every task is owned by the shard of its ingress
  // node — its table entry, RTO timers, and failover planning run on
  // that shard's event loop, and retransmits re-enter the fabric at the
  // ingress exactly as in classic mode. The destination side is
  // stateless: requests carry proto::flag_tracked, so acking and
  // duplicate accounting are decided from the wire alone on whichever
  // shard delivers. Acks are ordinary fabric packets (they queue, cross
  // shards as parcels, and can be lost); an ack landing off the owner
  // shard hands completion over via an engine parcel one lookahead
  // later. Failover planning reads only coordinator-owned state (link
  // map, capable-site tables) that is never written while shard threads
  // run, so planning on the owner shard is race-free and keeps recovery
  // traces bit-identical at any shard count.

  struct reliability_config {
    double initial_rto_s = 0.05;  ///< first retransmit timeout
    double backoff = 2.0;         ///< rto multiplier per timeout
    int max_retries = 6;          ///< retransmits before terminal failure
    int failover_after = 2;       ///< consecutive timeouts before failover
  };

  struct reliability_stats {
    std::uint64_t submitted = 0;   ///< tasks entered into the table
    std::uint64_t completed = 0;   ///< tasks acknowledged end to end
    std::uint64_t failed = 0;      ///< tasks past the retry cap
    std::uint64_t retransmits = 0; ///< retry transmissions
    std::uint64_t failovers = 0;   ///< controller-driven site changes
    std::uint64_t acks_sent = 0;   ///< acks emitted at destinations
    std::uint64_t duplicate_deliveries = 0;  ///< dupes from retransmits
    double total_completion_s = 0.0;  ///< sum of submit->ack latencies
    double max_completion_s = 0.0;    ///< worst submit->ack latency

    [[nodiscard]] double mean_completion_s() const {
      return completed > 0 ? total_completion_s /
                                 static_cast<double>(completed)
                           : 0.0;
    }
  };

  /// One line of the recovery trace. Traces are appended in event order,
  /// so at a fixed seed the whole trace is bit-reproducible (the
  /// determinism tests compare them across runs and thread counts).
  struct reliability_event {
    enum class kind : std::uint8_t {
      submit,
      retransmit,
      failover,
      ack,
      fail,
    };
    kind what = kind::submit;
    std::uint32_t task_id = 0;
    double time_s = 0.0;
    net::node_id site = net::invalid_node;  ///< pinned site (failover only)
  };

  /// Called once per task that exhausts its retries (terminal failure).
  using task_failure_fn = std::function<void(std::uint32_t task_id)>;

  /// Turn the reliability layer on (idempotent). The config applies
  /// live: initial_rto_s seeds the timer of tasks submitted afterwards,
  /// while backoff / max_retries / failover_after are read at each
  /// timeout, so reconfiguring also governs tasks already in flight.
  void enable_reliability(reliability_config cfg);
  void enable_reliability() { enable_reliability(reliability_config{}); }
  [[nodiscard]] bool reliability_enabled() const {
    return reliability_enabled_;
  }
  void set_task_failure_callback(task_failure_fn cb) {
    on_task_failed_ = std::move(cb);
  }

  /// Submit a compute packet with end-to-end tracking. The packet must
  /// carry a valid compute header; its task_id keys the task table and
  /// must not collide with a task still in flight. Returns the task_id.
  /// Control-plane in sharded mode: call from setup or schedule_global.
  std::uint32_t submit_reliable(net::packet pkt, net::node_id ingress);

  /// Tasks still awaiting an ack (summed across shards).
  [[nodiscard]] std::size_t tasks_in_flight() const {
    std::size_t n = 0;
    for (const auto& rs : rel_shards_) n += rs->pending.size();
    return n;
  }

  /// Counters summed across shards (integer sums are order-independent;
  /// total_completion_s is summed per shard then across shards in fixed
  /// shard order — deterministic per shard count, though the double sum
  /// is not comparable bit-for-bit between different shard counts).
  [[nodiscard]] const reliability_stats& reliability() const;
  /// Classic (and 1-shard) runtimes return the trace in raw event order,
  /// exactly as before. Multi-shard runtimes merge the per-shard traces
  /// by (time_s, task_id) with a stable sort: all events of one task are
  /// recorded on its owner shard, so per-task order survives the merge.
  [[nodiscard]] const std::vector<reliability_event>& recovery_trace() const;

  /// Cross-shard task-completion handoff (packet_event_sink): an ack
  /// that landed off its task's owner shard arrives here, on the owner
  /// shard, as an engine parcel. Not for direct use.
  static constexpr std::uint8_t op_complete_task = 0;
  void on_packet_event(std::uint8_t op, net::packet&& pkt,
                       std::uint32_t node) override;

 private:
  struct site {
    std::unique_ptr<photonic_engine> engine;
    double busy_until_s = 0.0;  ///< serial analog engine availability
    double total_busy_s = 0.0;
    std::uint64_t computed = 0;
    std::vector<net::packet> batch_queue;  ///< awaiting a batched flush
    bool flush_scheduled = false;
    /// Completion times of admitted-but-unfinished work (batch flushes
    /// and serial computes), lazily pruned against now: together with
    /// batch_queue this is the bounded "site queue" of admission_config.
    std::deque<double> service_done;
  };

  struct pending_task {
    net::packet request;          ///< stored copy for retransmission
    net::node_id ingress = net::invalid_node;
    proto::primitive_id primitive = proto::primitive_id::none;
    double rto_s = 0.0;           ///< current retransmit timeout
    int attempts = 0;             ///< consecutive timeouts so far
    std::uint64_t generation = 0; ///< invalidates stale timers
    double submitted_s = 0.0;     ///< first submission time
    net::node_id pinned_site = net::invalid_node;  ///< failover target
  };

  /// Reliability state owned by one shard's event loop. The pending
  /// table, trace, and owner-side stats belong to the shards that
  /// submitted the tasks; the delivered-history ring (duplicate
  /// accounting) and acks_sent/duplicate counters are written by the
  /// shards where tracked results deliver. Classic fabrics have exactly
  /// one. Cache-line aligned like wan_fabric::shard_state.
  struct alignas(64) rel_shard {
    std::unordered_map<std::uint32_t, pending_task> pending;
    std::vector<reliability_event> trace;
    reliability_stats stats;
    /// Task ids whose result already delivered at a node of this shard
    /// (ring + membership set, capped at kCompletedHistory): duplicate
    /// deliveries from retransmits are counted from here, including
    /// ones landing after the ack erased the pending entry.
    std::vector<std::uint32_t> delivered_ring;
    std::size_t delivered_next = 0;
    std::unordered_set<std::uint32_t> delivered_set;
  };

  /// Shared constructor body (fabric_ and sim_ already bound).
  void init();

  net::hook_decision on_packet(net::node_id at, net::packet& pkt, double now);

  /// Refresh the spread-steering first-hop matrix from the fabric's
  /// converged flat route cache. Registered as the fabric's
  /// reconvergence callback so flow_spread redirects follow reconverged
  /// routes instead of chasing install-time first hops into downed
  /// links. The compute tables deliberately stay as installed — only the
  /// route-derived first hops are refreshed.
  void rebuild_spread_tables();

  /// Run the queued batch at a site: one process_batch() call, one site
  /// overhead charge, then every computed packet re-enters the fabric
  /// when the shared analog evaluation finishes.
  void flush_site_batch(net::node_id at);

  void on_delivery(const net::packet& pkt, net::node_id at, double now);
  void send_tracked(pending_task& task, std::uint32_t task_id);
  void on_timeout(std::uint32_t task_id, std::uint64_t generation);
  void complete_task(std::uint32_t task_id, double now);

  /// The reliability bucket owning task `task_id`'s table entry, or
  /// nullptr for an id the directory has never seen.
  [[nodiscard]] rel_shard* owner_shard_of(std::uint32_t task_id);

  /// Destination-side duplicate accounting on `rs` (the delivering
  /// shard's bucket).
  void remember_delivered(rel_shard& rs, std::uint32_t task_id);
  [[nodiscard]] static bool recently_delivered(const rel_shard& rs,
                                               std::uint32_t task_id) {
    return rs.delivered_set.contains(task_id);
  }
  /// Task-id reuse: erase the id from every shard's delivered history
  /// (control-plane — submit_reliable runs with shard threads parked).
  void forget_completed(std::uint32_t task_id);

  /// Record one site utilization/queue-depth sample (tracing only).
  void sample_site_timeline(net::node_id at, const site& s, double now,
                            std::size_t queue_depth) const;

  /// Site queue depth with the in-service backlog pruned to `now`.
  [[nodiscard]] static std::size_t queue_depth_of(site& s, double now);
  /// The admission bucket mutated by `at`'s shard thread.
  [[nodiscard]] admission_stats& admission_of(net::node_id at) {
    return shard_admission_[fabric_.shard_of(at)];
  }

  /// Per-packet fixed overhead at a compute site: optical preamble
  /// detection (17 symbols on the P2 matcher) + result insertion.
  [[nodiscard]] double site_overhead_s(const site& s) const;

  /// The event loop owning `at` (sim_ itself in classic mode). Site
  /// compute re-injection and batch-flush timers must ride the shard
  /// that runs the site's hook.
  [[nodiscard]] net::simulator& sim_for(net::node_id at) {
    return fabric_.sim_for(at);
  }
  /// The stats bucket mutated by `at`'s shard thread.
  [[nodiscard]] runtime_stats& stats_of(net::node_id at) {
    return shard_stats_[fabric_.shard_of(at)];
  }

  net::simulator& sim_;
  net::wan_fabric fabric_;
  /// All-links-up SPF baseline over the fabric's topology: answers the
  /// "which site would install-time routing have used?" question during
  /// failover planning without re-running Dijkstra per timeout. Built
  /// fully in init() and never mutated afterwards, so shard-thread
  /// queries are pure reads (fabric_.spf() tracks *live* link state and
  /// cannot serve as this baseline).
  net::spf_engine baseline_spf_;
  std::vector<std::unique_ptr<site>> sites_;  // indexed by node id
  std::vector<proto::compute_routing_table<net::node_id>> compute_tables_;
  /// One delivery log / stats bucket per shard (single-writer each);
  /// merged views are rebuilt on demand.
  std::vector<std::vector<delivery>> shard_deliveries_;
  std::vector<runtime_stats> shard_stats_;
  mutable std::vector<delivery> deliveries_merged_;
  mutable runtime_stats stats_cache_;

  admission_config admission_{};
  /// One bucket per shard (single-writer each); merged view on read.
  std::vector<admission_stats> shard_admission_;
  mutable admission_stats admission_cache_;
  bool record_deliveries_ = true;
  delivery_observer_fn on_delivered_;

  steering_policy steering_ = steering_policy::nearest_site;
  double batching_window_s_ = 0.0;  ///< 0 = per-packet compute (default)
  /// Sites supporting each primitive (filled with the compute routes).
  std::array<std::vector<net::node_id>,
             static_cast<std::size_t>(proto::primitive_id::p1_p3_dnn) + 1>
      capable_sites_{};
  /// next_hop_toward_[u][v]: first hop of the shortest path u -> v
  /// (invalid_node when unreachable), for spread steering.
  std::vector<std::vector<net::node_id>> next_hop_toward_;

  // -------------------------------------------------- reliability state
  bool reliability_enabled_ = false;
  reliability_config reliability_cfg_{};
  /// One bucket per shard (single-writer each, see rel_shard).
  std::vector<std::unique_ptr<rel_shard>> rel_shards_;
  /// task_id -> ingress node (whose shard owns the task). Written only
  /// by submit_reliable (control-plane: shard threads parked), read
  /// from shard threads; entries are overwritten on id reuse, never
  /// erased mid-run.
  std::unordered_map<std::uint32_t, net::node_id> task_ingress_;
  mutable reliability_stats reliability_cache_;
  mutable std::vector<reliability_event> trace_merged_;
  task_failure_fn on_task_failed_;

  /// Capacity of each shard's delivered-history ring.
  static constexpr std::size_t kCompletedHistory = 1024;

  // Observability handles (resolved once in the constructor; incremented
  // only while obs::enabled()). Mirror runtime_stats /
  // reliability_stats so the obs plane can be cross-checked against the
  // legacy counters.
  obs::counter* obs_computed_ = nullptr;
  obs::counter* obs_redirected_ = nullptr;
  obs::counter* obs_uncomputed_ = nullptr;
  obs::counter* obs_malformed_ = nullptr;
  obs::counter* obs_batch_flushes_ = nullptr;
  obs::counter* obs_batched_packets_ = nullptr;
  obs::counter* obs_adm_admitted_ = nullptr;
  obs::counter* obs_adm_deferred_ = nullptr;
  obs::counter* obs_adm_dropped_ = nullptr;
  obs::counter* obs_rel_submitted_ = nullptr;
  obs::counter* obs_rel_completed_ = nullptr;
  obs::counter* obs_rel_failed_ = nullptr;
  obs::counter* obs_rel_retransmits_ = nullptr;
  obs::counter* obs_rel_failovers_ = nullptr;
  obs::counter* obs_rel_acks_ = nullptr;
  obs::counter* obs_rel_duplicates_ = nullptr;
};

}  // namespace onfiber::core
