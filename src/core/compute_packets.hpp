// compute_packets.hpp — client-side helpers for building and reading
// on-fiber compute packets.
//
// End hosts use these to form requests ("send the relevant data to a
// dedicated processing unit", §4): the compute input is serialized after
// the compute header, and room for the result is reserved at a
// predetermined offset, exactly as Fig. 4 describes the engine filling it
// in.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "network/packet.hpp"
#include "protocol/codec.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber::core {

/// Build a P1 GEMV request: x signed in [-1,1], room for `out_dim` result
/// elements.
[[nodiscard]] net::packet make_gemv_request(net::ipv4 src, net::ipv4 dst,
                                            std::span<const double> x,
                                            std::size_t out_dim,
                                            std::uint32_t task_id = 0);

/// Build a P2 match request over raw bytes; result is one byte (pattern
/// index, or match_no_hit).
[[nodiscard]] net::packet make_match_request(
    net::ipv4 src, net::ipv4 dst, std::span<const std::uint8_t> data,
    std::uint32_t task_id = 0);

/// Build a P3 activation request: x in [0,1] element-wise.
[[nodiscard]] net::packet make_nonlinear_request(net::ipv4 src, net::ipv4 dst,
                                                 std::span<const double> x,
                                                 std::uint32_t task_id = 0);

/// Build a DNN inference request: x in [0,1]^in_dim; result holds one
/// class byte + `out_dim` logit bytes.
[[nodiscard]] net::packet make_dnn_request(net::ipv4 src, net::ipv4 dst,
                                           std::span<const double> x,
                                           std::size_t out_dim,
                                           std::uint32_t task_id = 0);

/// Build a batched DNN inference request: `samples` holds `batch` vectors
/// of `in_dim` values in [0,1] back to back. One packet, one preamble,
/// one queueing slot at the compute site — batching amortizes the fixed
/// per-packet overheads (see bench E23/E7).
[[nodiscard]] net::packet make_dnn_batch_request(
    net::ipv4 src, net::ipv4 dst, std::span<const double> samples,
    std::size_t in_dim, std::size_t out_dim, std::uint32_t task_id = 0);

/// Build a multi-stage chain request (up to 3 stages — the distributed
/// on-fiber computing of §5). `x` is the first stage's input, signed if
/// the first stage is P1, unit-encoded otherwise; intermediate results
/// travel unit-encoded (see photonic_engine). `result_capacity` bytes are
/// reserved for all stage outputs combined — each engine sizes its own
/// output, so reserve the sum of the per-stage output lengths.
[[nodiscard]] net::packet make_chain_request(
    net::ipv4 src, net::ipv4 dst,
    std::span<const proto::primitive_id> stages, std::span<const double> x,
    std::size_t result_capacity, std::uint32_t task_id = 0);

// ------------------------------------------------------------- readers

/// Decode a GEMV result (values scaled back by the input length).
/// nullopt if the packet has no completed result of the right size.
[[nodiscard]] std::optional<std::vector<double>> read_gemv_result(
    const net::packet& pkt);

/// Decode a match result byte.
[[nodiscard]] std::optional<std::uint8_t> read_match_result(
    const net::packet& pkt);

/// Decode a P3 result vector in [0,1].
[[nodiscard]] std::optional<std::vector<double>> read_nonlinear_result(
    const net::packet& pkt);

/// Decode a DNN result: (class, normalized logits).
struct dnn_result {
  std::uint8_t predicted_class = 0;
  std::vector<double> logits;
};
[[nodiscard]] std::optional<dnn_result> read_dnn_result(
    const net::packet& pkt);

/// Decode all per-sample results of a batched DNN request.
[[nodiscard]] std::optional<std::vector<dnn_result>> read_dnn_batch_result(
    const net::packet& pkt);

}  // namespace onfiber::core
