#include "core/runtime.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "controller/controller.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace onfiber::core {

onfiber_runtime::onfiber_runtime(net::simulator& sim, net::topology topo)
    : sim_(sim), fabric_(sim, std::move(topo)), baseline_spf_(fabric_.topo()) {
  init();
}

onfiber_runtime::onfiber_runtime(net::shard_engine& engine,
                                 net::topology topo)
    : sim_(engine.primary()),
      fabric_(engine, std::move(topo)),
      baseline_spf_(fabric_.topo()) {
  init();
}

void onfiber_runtime::init() {
  sites_.resize(fabric_.topo().node_count());
  compute_tables_.resize(fabric_.topo().node_count());
  shard_deliveries_.resize(fabric_.shard_count());
  shard_stats_.resize(fabric_.shard_count());
  shard_admission_.resize(fabric_.shard_count());
  rel_shards_.reserve(fabric_.shard_count());
  for (std::size_t i = 0; i < fabric_.shard_count(); ++i) {
    rel_shards_.push_back(std::make_unique<rel_shard>());
  }
  fabric_.install_shortest_path_routes();
  // Build every baseline tree now, on the construction thread: on_timeout
  // queries this engine from shard threads, which must never trigger a
  // first build over there.
  baseline_spf_.ensure_all_trees();
  // Keep route-derived steering state in sync with the routing plane:
  // every reconvergence (scheduled flaps included) refreshes the
  // spread-steering first-hop matrix.
  fabric_.set_reconvergence_callback([this] { rebuild_spread_tables(); });
  const auto n = static_cast<net::node_id>(fabric_.topo().node_count());
  for (net::node_id id = 0; id < n; ++id) {
    fabric_.set_hook(id, [this](net::node_id at, net::packet& pkt,
                                double now) {
      return on_packet(at, pkt, now);
    });
  }
  fabric_.set_deliver_callback(
      [this](const net::packet& pkt, net::node_id at, double t) {
        on_delivery(pkt, at, t);
      });

  obs::registry& reg = obs::registry::global();
  obs_computed_ = &reg.get_counter("runtime.computed");
  obs_redirected_ = &reg.get_counter("runtime.redirected");
  obs_uncomputed_ = &reg.get_counter("runtime.uncomputed_delivered");
  obs_malformed_ = &reg.get_counter("runtime.malformed_dropped");
  obs_batch_flushes_ = &reg.get_counter("runtime.batch_flushes");
  obs_batched_packets_ = &reg.get_counter("runtime.batched_packets");
  obs_adm_admitted_ = &reg.get_counter("runtime.admission.admitted");
  obs_adm_deferred_ = &reg.get_counter("runtime.admission.deferred");
  obs_adm_dropped_ = &reg.get_counter("runtime.admission.dropped");
  obs_rel_submitted_ = &reg.get_counter("reliability.submitted");
  obs_rel_completed_ = &reg.get_counter("reliability.completed");
  obs_rel_failed_ = &reg.get_counter("reliability.failed");
  obs_rel_retransmits_ = &reg.get_counter("reliability.retransmits");
  obs_rel_failovers_ = &reg.get_counter("reliability.failovers");
  obs_rel_acks_ = &reg.get_counter("reliability.acks_sent");
  obs_rel_duplicates_ = &reg.get_counter("reliability.duplicate_deliveries");
}

const std::vector<onfiber_runtime::delivery>& onfiber_runtime::deliveries()
    const {
  // Classic / 1-shard: the raw event-order log, exactly as before.
  if (shard_deliveries_.size() == 1) return shard_deliveries_[0];
  deliveries_merged_.clear();
  for (const auto& log : shard_deliveries_) {
    deliveries_merged_.insert(deliveries_merged_.end(), log.begin(),
                              log.end());
  }
  std::stable_sort(deliveries_merged_.begin(), deliveries_merged_.end(),
                   [](const delivery& a, const delivery& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.at < b.at;
                   });
  return deliveries_merged_;
}

const onfiber_runtime::runtime_stats& onfiber_runtime::stats() const {
  stats_cache_ = runtime_stats{};
  for (const runtime_stats& s : shard_stats_) {
    stats_cache_.computed += s.computed;
    stats_cache_.redirected += s.redirected;
    stats_cache_.uncomputed_delivered += s.uncomputed_delivered;
    stats_cache_.malformed_dropped += s.malformed_dropped;
  }
  return stats_cache_;
}

const onfiber_runtime::admission_stats& onfiber_runtime::admission() const {
  admission_cache_ = admission_stats{};
  for (const admission_stats& s : shard_admission_) {
    admission_cache_.admitted += s.admitted;
    admission_cache_.deferred += s.deferred;
    admission_cache_.dropped += s.dropped;
    admission_cache_.max_queue_depth =
        std::max(admission_cache_.max_queue_depth, s.max_queue_depth);
  }
  return admission_cache_;
}

std::size_t onfiber_runtime::queue_depth_of(site& s, double now) {
  std::deque<double>& q = s.service_done;
  while (!q.empty() && q.front() <= now) q.pop_front();
  return s.batch_queue.size() + q.size();
}

std::size_t onfiber_runtime::site_queue_depth(net::node_id at) {
  if (at >= sites_.size() || !sites_[at] || !sites_[at]->engine) return 0;
  return queue_depth_of(*sites_[at], sim_for(at).now());
}

void onfiber_runtime::rebuild_spread_tables() {
  // Nothing to refresh until install_compute_routes_via_nearest_site()
  // built the tables in the first place.
  if (next_hop_toward_.empty()) return;
  const auto n = static_cast<net::node_id>(fabric_.topo().node_count());
  for (net::node_id u = 0; u < n; ++u) {
    for (net::node_id v = 0; v < n; ++v) {
      next_hop_toward_[u][v] =
          u == v ? net::invalid_node : fabric_.next_hop_to_node(u, v);
    }
  }
}

onfiber_runtime::rel_shard* onfiber_runtime::owner_shard_of(
    std::uint32_t task_id) {
  const auto it = task_ingress_.find(task_id);
  if (it == task_ingress_.end()) return nullptr;
  return rel_shards_[fabric_.shard_of(it->second)].get();
}

void onfiber_runtime::remember_delivered(rel_shard& rs,
                                         std::uint32_t task_id) {
  if (rs.delivered_set.contains(task_id)) return;
  if (rs.delivered_ring.size() < kCompletedHistory) {
    rs.delivered_ring.push_back(task_id);
  } else {
    rs.delivered_set.erase(rs.delivered_ring[rs.delivered_next]);
    rs.delivered_ring[rs.delivered_next] = task_id;
  }
  rs.delivered_next = (rs.delivered_next + 1) % kCompletedHistory;
  rs.delivered_set.insert(task_id);
}

void onfiber_runtime::forget_completed(std::uint32_t task_id) {
  // Legal task-id reuse after completion: the old completion must not
  // make the new task's deliveries look like duplicates. The stale ring
  // slots stay behind but are harmless — remember_delivered() skips ids
  // already in the set, and the erase below removes set membership.
  // Safe to touch every shard's bucket: submit_reliable is control
  // plane, so no shard thread is running.
  for (auto& rs : rel_shards_) rs->delivered_set.erase(task_id);
}

void onfiber_runtime::sample_site_timeline(net::node_id at, const site& s,
                                           double now,
                                           std::size_t queue_depth) const {
  obs::site_sample sample;
  sample.time_s = now;
  sample.site = at;
  sample.queue_depth = static_cast<std::uint32_t>(queue_depth);
  sample.busy_s = s.total_busy_s;
  sample.utilization = now > 0.0 ? s.total_busy_s / now : 0.0;
  obs::timeline::global().record(sample);
}

void onfiber_runtime::on_delivery(const net::packet& pkt, net::node_id at,
                                  double now) {
  const auto h = proto::peek_compute_header(pkt);
  // Acks are control plane: complete the task, record nothing. The
  // task's table lives on the shard of its ingress node; when the ack
  // lands there (the common case — requesters address replies to their
  // ingress), completion is a plain local call, bit-identical to the
  // classic engine. An ack landing elsewhere hands off via an engine
  // parcel one lookahead later (note.created_s carries the true ack
  // arrival time for the latency stats; a retry timer firing inside
  // that handoff window can cause one benign extra retransmit).
  if (h && h->is_ack()) {
    const auto owner = task_ingress_.find(h->task_id);
    if (owner == task_ingress_.end()) return;  // never submitted here
    const std::uint32_t owner_shard = fabric_.shard_of(owner->second);
    if (!fabric_.sharded() || owner_shard == fabric_.shard_of(at)) {
      complete_task(h->task_id, now);
      return;
    }
    net::packet note;
    note.id = h->task_id;
    note.created_s = now;
    fabric_.engine()->emit_parcel(fabric_.shard_of(at), owner_shard,
                                  now + fabric_.engine()->lookahead(),
                                  std::move(note), owner->second,
                                  op_complete_task, this);
    return;
  }
  if (h && h->requires_compute() && !h->has_result()) {
    ++stats_of(at).uncomputed_delivered;
    if (obs::enabled()) obs_uncomputed_->add();
  }
  if (record_deliveries_) {
    shard_deliveries_[fabric_.shard_of(at)].push_back(delivery{pkt, at, now});
  }
  if (on_delivered_) on_delivered_(pkt, at, now);

  // Destination side of the reliability layer — stateless with respect
  // to the task table: the wire's flag_tracked bit identifies tracked
  // traffic, so acking and duplicate accounting are decided on the
  // delivering shard alone.
  if (!reliability_enabled_ || !h || !h->is_tracked()) return;
  // A task that demanded compute but arrived raw is not done — no ack,
  // no history; the retry timer (and eventually failover to a capable
  // site) gets another chance at the computation.
  if (h->requires_compute() && !h->has_result()) return;
  rel_shard& rs = *rel_shards_[fabric_.shard_of(at)];
  if (recently_delivered(rs, h->task_id)) {
    ++rs.stats.duplicate_deliveries;
    if (obs::enabled()) obs_rel_duplicates_->add();
  } else {
    remember_delivered(rs, h->task_id);
  }
  // Emit the end-to-end ack back to the packet's source — every result
  // delivery re-acks, so a lost first ack is repaired by the retransmit
  // round-trip. The ack is a header-only compute packet riding the same
  // fabric: it queues, it crosses shard boundaries as a parcel, it can
  // be black-holed by a dead link.
  net::packet ack;
  ack.payload = fabric_.pool_of(at).acquire();  // recycled allocation if any
  ack.src = fabric_.topo().node_at(at).address;
  ack.dst = pkt.src;
  proto::compute_header ah;
  ah.primitive = h->primitive;
  ah.task_id = h->task_id;
  ah.flags = proto::flag_ack | proto::flag_has_result;
  proto::attach_compute_header(ack, ah);
  ack.flow_hash = net::flow_hash_of(
      ack.src, ack.dst, 7002, 7003, static_cast<std::uint8_t>(ack.proto));
  ++rs.stats.acks_sent;
  if (obs::enabled()) obs_rel_acks_->add();
  fabric_.send(std::move(ack), at);
}

void onfiber_runtime::on_packet_event(std::uint8_t op, net::packet&& pkt,
                                      std::uint32_t /*node*/) {
  // Cross-shard completion handoff (see on_delivery's ack branch): the
  // parcel's id names the task, created_s the true ack arrival time.
  if (op == op_complete_task) {
    complete_task(static_cast<std::uint32_t>(pkt.id), pkt.created_s);
  }
}

void onfiber_runtime::enable_reliability(reliability_config cfg) {
  if (cfg.initial_rto_s <= 0.0 || cfg.backoff < 1.0 || cfg.max_retries < 0 ||
      cfg.failover_after < 1) {
    throw std::invalid_argument("onfiber_runtime: bad reliability config");
  }
  reliability_enabled_ = true;
  reliability_cfg_ = cfg;
}

std::uint32_t onfiber_runtime::submit_reliable(net::packet pkt,
                                               net::node_id ingress) {
  if (!reliability_enabled_) enable_reliability();
  if (ingress >= fabric_.topo().node_count()) {
    throw std::out_of_range("submit_reliable: bad ingress node");
  }
  const auto h = proto::peek_compute_header(pkt);
  if (!h) {
    throw std::invalid_argument(
        "submit_reliable: packet carries no valid compute header");
  }
  rel_shard* prev_owner = owner_shard_of(h->task_id);
  if (prev_owner != nullptr && prev_owner->pending.contains(h->task_id)) {
    throw std::invalid_argument(
        "submit_reliable: task_id already in flight");
  }
  // Mark the request tracked on the wire: the destination shard decides
  // acking and duplicate accounting from this bit alone (and every
  // retransmit copies it along).
  proto::compute_header tracked = *h;
  tracked.flags |= proto::flag_tracked;
  proto::rewrite_compute_header(pkt, tracked);

  const std::uint32_t owner_shard = fabric_.shard_of(ingress);
  rel_shard& rs = *rel_shards_[owner_shard];
  pending_task task;
  task.request = std::move(pkt);
  task.ingress = ingress;
  task.primitive = h->primitive;
  task.rto_s = reliability_cfg_.initial_rto_s;
  task.submitted_s = sim_for(ingress).now();
  // The id is live again: its previous completion (if any) must not make
  // this task's deliveries look like duplicates.
  forget_completed(h->task_id);
  task_ingress_[h->task_id] = ingress;
  const auto [it, inserted] = rs.pending.emplace(h->task_id, std::move(task));
  ++rs.stats.submitted;
  if (obs::enabled()) obs_rel_submitted_->add();
  rs.trace.push_back(reliability_event{reliability_event::kind::submit,
                                       h->task_id, sim_for(ingress).now(),
                                       net::invalid_node});
  send_tracked(it->second, h->task_id);
  return h->task_id;
}

void onfiber_runtime::send_tracked(pending_task& task,
                                   std::uint32_t task_id) {
  ++task.generation;
  net::packet copy = task.request;
  // The failover pin rides the packet (see packet::pinned_site): every
  // node's hook can steer this copy toward the alternate site without
  // consulting the owner shard's table.
  copy.pinned_site = task.pinned_site;
  fabric_.send(std::move(copy), task.ingress);
  // Retransmit timer on the owning shard's event loop: it fires on the
  // same thread that owns the task entry, and the retransmit re-enters
  // the fabric at the ingress — also owner-shard-local.
  sim_for(task.ingress)
      .schedule(task.rto_s, [this, task_id, gen = task.generation] {
        on_timeout(task_id, gen);
      });
}

void onfiber_runtime::on_timeout(std::uint32_t task_id,
                                 std::uint64_t generation) {
  rel_shard* owner = owner_shard_of(task_id);
  if (owner == nullptr) return;
  rel_shard& rs = *owner;
  const auto it = rs.pending.find(task_id);
  if (it == rs.pending.end()) return;  // acked in the meantime
  pending_task& task = it->second;
  if (task.generation != generation) return;  // stale timer
  const double now = sim_for(task.ingress).now();

  if (task.attempts >= reliability_cfg_.max_retries) {
    // Terminal failure: retries exhausted.
    rs.trace.push_back(reliability_event{reliability_event::kind::fail,
                                         task_id, now, net::invalid_node});
    ++rs.stats.failed;
    if (obs::enabled()) obs_rel_failed_->add();
    rs.pending.erase(it);
    if (on_task_failed_) on_task_failed_(task_id);
    return;
  }

  ++task.attempts;
  task.rto_s *= reliability_cfg_.backoff;

  // Repeated timeouts mean the current compute site (or the path to it)
  // is gone: ask the controller for an alternate site over live links and
  // pin this task's retries to it. Planning runs right here on the owner
  // shard — its inputs (the immutable topology's lookup caches, the
  // pre-built SPF trees, the capable-site tables) are coordinator-owned
  // and only ever written during control-plane events with every shard
  // parked, so the reads are race-free; deferring the decision to a
  // separate coordinator event would shift retransmit times and break
  // the shard-count invariance of the recovery trace. Both plans answer
  // from SSSP trees (O(1) delay lookups) instead of per-leg Dijkstra:
  // the baseline from the never-mutated all-up engine, the live plan
  // from the fabric engine, whose trees are eagerly delta-repaired on
  // every fail/restore and therefore mirror fabric_.links_up() exactly.
  if (task.attempts >= reliability_cfg_.failover_after) {
    const net::topology& topo = fabric_.topo();
    const auto dst_node = topo.node_for_address(task.request.dst);
    const auto& capable =
        capable_sites_[static_cast<std::size_t>(task.primitive)];
    if (dst_node && !capable.empty()) {
      net::node_id exclude = task.pinned_site;
      if (exclude == net::invalid_node) {
        // First failover: exclude the site the default (install-time)
        // routing would have used.
        const auto primary = ctrl::plan_failover_site(
            baseline_spf_, capable, net::invalid_node, task.ingress,
            *dst_node);
        if (primary) exclude = primary->site;
      }
      const auto plan = ctrl::plan_failover_site(
          fabric_.spf(), capable, exclude, task.ingress, *dst_node);
      if (plan && plan->site != task.pinned_site) {
        task.pinned_site = plan->site;
        ++rs.stats.failovers;
        if (obs::enabled()) obs_rel_failovers_->add();
        rs.trace.push_back(
            reliability_event{reliability_event::kind::failover, task_id,
                              now, plan->site});
      }
    }
  }

  ++rs.stats.retransmits;
  if (obs::enabled()) obs_rel_retransmits_->add();
  rs.trace.push_back(reliability_event{reliability_event::kind::retransmit,
                                       task_id, now, task.pinned_site});
  send_tracked(task, task_id);
}

void onfiber_runtime::complete_task(std::uint32_t task_id, double now) {
  rel_shard* owner = owner_shard_of(task_id);
  if (owner == nullptr) return;
  rel_shard& rs = *owner;
  const auto it = rs.pending.find(task_id);
  if (it == rs.pending.end()) return;  // duplicate ack
  const double latency = now - it->second.submitted_s;
  ++rs.stats.completed;
  if (obs::enabled()) obs_rel_completed_->add();
  rs.stats.total_completion_s += latency;
  if (latency > rs.stats.max_completion_s) {
    rs.stats.max_completion_s = latency;
  }
  rs.trace.push_back(reliability_event{reliability_event::kind::ack, task_id,
                                       now, net::invalid_node});
  rs.pending.erase(it);
}

const onfiber_runtime::reliability_stats& onfiber_runtime::reliability()
    const {
  reliability_cache_ = reliability_stats{};
  for (const auto& rs : rel_shards_) {
    const reliability_stats& s = rs->stats;
    reliability_cache_.submitted += s.submitted;
    reliability_cache_.completed += s.completed;
    reliability_cache_.failed += s.failed;
    reliability_cache_.retransmits += s.retransmits;
    reliability_cache_.failovers += s.failovers;
    reliability_cache_.acks_sent += s.acks_sent;
    reliability_cache_.duplicate_deliveries += s.duplicate_deliveries;
    reliability_cache_.total_completion_s += s.total_completion_s;
    if (s.max_completion_s > reliability_cache_.max_completion_s) {
      reliability_cache_.max_completion_s = s.max_completion_s;
    }
  }
  return reliability_cache_;
}

const std::vector<onfiber_runtime::reliability_event>&
onfiber_runtime::recovery_trace() const {
  // Classic / 1-shard: the raw event-order trace, exactly as before.
  if (rel_shards_.size() == 1) return rel_shards_[0]->trace;
  trace_merged_.clear();
  for (const auto& rs : rel_shards_) {
    trace_merged_.insert(trace_merged_.end(), rs->trace.begin(),
                         rs->trace.end());
  }
  // Every event of one task is recorded on its owner shard, so a stable
  // sort on (time, task) keeps per-task order (failover before its
  // retransmit at the same timestamp) while interleaving tasks
  // deterministically.
  std::stable_sort(trace_merged_.begin(), trace_merged_.end(),
                   [](const reliability_event& a, const reliability_event& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.task_id < b.task_id;
                   });
  return trace_merged_;
}

photonic_engine& onfiber_runtime::deploy_engine(net::node_id at,
                                                engine_config config,
                                                std::uint64_t seed) {
  if (at >= sites_.size()) {
    throw std::out_of_range("onfiber_runtime: bad node id");
  }
  auto s = std::make_unique<site>();
  s->engine = std::make_unique<photonic_engine>(config, seed);
  sites_[at] = std::move(s);
  return *sites_[at]->engine;
}

bool onfiber_runtime::site_supports(net::node_id at,
                                    proto::primitive_id p) const {
  return at < sites_.size() && sites_[at] != nullptr &&
         sites_[at]->engine->supports(p);
}

std::vector<net::node_id> onfiber_runtime::sites() const {
  std::vector<net::node_id> out;
  for (net::node_id id = 0; id < sites_.size(); ++id) {
    if (sites_[id] != nullptr) out.push_back(id);
  }
  return out;
}

void onfiber_runtime::set_compute_route(net::node_id at, net::prefix dst,
                                        proto::primitive_id p,
                                        net::node_id next_hop) {
  if (at >= compute_tables_.size()) {
    throw std::out_of_range("onfiber_runtime: bad node id");
  }
  compute_tables_[at].insert_compute(dst, p, next_hop);
}

void onfiber_runtime::install_compute_routes_via_nearest_site() {
  const net::topology& topo = fabric_.topo();
  const auto n = static_cast<net::node_id>(topo.node_count());

  // Delays and first hops come from the fabric's incremental-SPF engine
  // — the same live link state the old per-pair Dijkstra sweep read, but
  // from n persistent trees instead of n^2 runs. The trees are already
  // built after the fabric's first route install; ensure_all_trees is a
  // no-op then (and a control-plane build when called earlier).
  net::spf_engine& spf = fabric_.spf();
  spf.ensure_all_trees();

  constexpr proto::primitive_id prims[] = {
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p2_pattern_match,
      proto::primitive_id::p3_nonlinear,
      proto::primitive_id::p1_p3_dnn,
  };

  // Spread-steering tables: capable sites per primitive and the
  // first-hop matrix (used when steering == flow_spread).
  for (auto& v : capable_sites_) v.clear();
  for (const auto p : prims) {
    for (const net::node_id s : sites()) {
      if (site_supports(s, p)) {
        capable_sites_[static_cast<std::size_t>(p)].push_back(s);
      }
    }
  }
  next_hop_toward_.assign(n, std::vector<net::node_id>(n, net::invalid_node));
  for (net::node_id u = 0; u < n; ++u) {
    for (net::node_id v = 0; v < n; ++v) {
      // first_hop is invalid_node when unreachable or u == v — exactly
      // the pairs the old paths[u][v].size() >= 2 test filtered out.
      if (u != v) next_hop_toward_[u][v] = spf.first_hop(u, v);
    }
  }

  for (net::node_id u = 0; u < n; ++u) {
    for (const auto p : prims) {
      if (site_supports(u, p)) continue;  // computed in transit here
      for (net::node_id d = 0; d < n; ++d) {
        if (d == u) continue;
        // Best supporting site by via-delay.
        net::node_id best_site = net::invalid_node;
        double best = std::numeric_limits<double>::infinity();
        for (const net::node_id s : sites()) {
          if (!site_supports(s, p) || s == u) continue;
          const double via = spf.dist(u, s) + spf.dist(s, d);
          if (via < best) {
            best = via;
            best_site = s;
          }
        }
        if (best_site == net::invalid_node) continue;
        const net::node_id nh = spf.first_hop(u, best_site);
        if (nh == net::invalid_node) continue;
        compute_tables_[u].insert_compute(topo.node_at(d).attached_prefix, p,
                                          nh);
      }
    }
  }
}

void onfiber_runtime::submit(net::packet pkt, net::node_id ingress) {
  fabric_.send(std::move(pkt), ingress);
}

double onfiber_runtime::site_busy_s(net::node_id at) const {
  if (at >= sites_.size() || sites_[at] == nullptr) return 0.0;
  return sites_[at]->total_busy_s;
}

double onfiber_runtime::site_overhead_s(const site&) const {
  // 17 optical symbols of preamble (pilot + 16 bits) on the P2 matcher at
  // its 10 GHz symbol rate, plus a fixed optical path latency for result
  // insertion.
  constexpr double preamble_s = 17.0 / 10e9;
  constexpr double insertion_s = 5e-9;
  return preamble_s + insertion_s;
}

void onfiber_runtime::flush_site_batch(net::node_id at) {
  site& s = *sites_[at];
  s.flush_scheduled = false;
  if (s.batch_queue.empty()) return;
  std::vector<net::packet> batch = std::move(s.batch_queue);
  s.batch_queue.clear();

  std::vector<net::packet*> ptrs;
  ptrs.reserve(batch.size());
  for (net::packet& p : batch) ptrs.push_back(&p);
  const batch_report report = s.engine->process_batch(ptrs);

  // One site overhead for the whole flush — that is the amortization —
  // plus the shared analog evaluation time; the serial engine then queues
  // the flush behind in-progress work exactly like a single packet.
  const double now = sim_for(at).now();
  const double start = now > s.busy_until_s ? now : s.busy_until_s;
  const double service = site_overhead_s(s) + report.compute_latency_s;
  const double done = start + service;
  s.busy_until_s = done;
  s.total_busy_s += service;
  // The flushed packets stay "in the site queue" until the shared analog
  // evaluation finishes at `done`: without this, overload would park an
  // unbounded number of full batches behind an ever-receding
  // busy_until_s. (Defensively-dropped packets below never reach the
  // fabric again, so they leave the queue immediately.)
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (report.computed[i]) s.service_done.push_back(done);
  }

  const bool tracing = obs::enabled();
  if (tracing) {
    obs_batch_flushes_->add();
    obs_batched_packets_->add(batch.size());
    sample_site_timeline(at, s, now, batch.size());
  }
  runtime_stats& st = stats_of(at);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (report.computed[i]) {
      ++st.computed;
      ++s.computed;
      if (tracing) {
        obs_computed_->add();
        obs::hop_record r;
        r.trace_id = batch[i].trace_id;
        r.node = at;
        r.time_s = now;
        r.action = obs::hop_action::batch;
        r.aux = static_cast<std::uint32_t>(batch.size());
        obs::tracer::global().record(r);
      }
      sim_for(at).schedule_packet_at(done, std::move(batch[i]), at,
                                     net::wan_fabric::op_inject, &fabric_);
    } else {
      // can_process() admitted it, so this is defensive only: a packet
      // the batched engine still refused is dropped and counted rather
      // than silently lost.
      ++st.malformed_dropped;
      if (tracing) obs_malformed_->add();
    }
  }
}

net::hook_decision onfiber_runtime::on_packet(net::node_id at,
                                              net::packet& pkt, double now) {
  net::hook_decision keep_going;
  if (pkt.proto != net::ip_proto::compute) return keep_going;

  const auto header = proto::peek_compute_header(pkt);
  if (!header) {
    ++stats_of(at).malformed_dropped;
    if (obs::enabled()) obs_malformed_->add();
    return net::hook_decision{net::hook_decision::action_type::drop,
                              net::invalid_node};
  }
  if (header->has_result()) return keep_going;

  // Compute here?
  if (site_supports(at, header->primitive)) {
    site& s = *sites_[at];
    // Admission control: bound the site's compute queue (parked batch
    // packets + admitted serial work still in service) before committing
    // to compute here. Deferral forwards the packet raw — it may compute
    // at a later capable hop or deliver uncomputed — so overload sheds
    // work instead of growing memory; drop discards it at the hook.
    // Neither path schedules events, so traces below the bound are
    // bit-identical to the unbounded runtime.
    if (admission_.max_site_queue > 0) {
      const std::size_t depth = queue_depth_of(s, now);
      if (depth >= admission_.max_site_queue) {
        admission_stats& ad = admission_of(at);
        ad.max_queue_depth = std::max<std::uint64_t>(ad.max_queue_depth,
                                                     depth);
        if (obs::enabled()) sample_site_timeline(at, s, now, depth);
        if (admission_.policy == admission_config::overflow_policy::drop) {
          ++ad.dropped;
          if (obs::enabled()) obs_adm_dropped_->add();
          return net::hook_decision{net::hook_decision::action_type::drop,
                                    net::invalid_node};
        }
        ++ad.deferred;
        if (obs::enabled()) obs_adm_deferred_->add();
        // Mark the packet so downstream steering leaves it alone:
        // without the flag, every node between here and the destination
        // would redirect it straight back to this (overloaded) site.
        proto::compute_header deferred = *header;
        deferred.flags |= proto::flag_deferred;
        proto::rewrite_compute_header(pkt, deferred);
        return keep_going;
      }
    }
    // Site batching (opt-in): park the packet and execute everything that
    // arrives within the window as one batched engine call. Admission is
    // gated on can_process() so a queued packet can never fail compute —
    // anything the engine would reject falls through to the per-packet
    // path below (which forwards it raw, exactly as before).
    if (batching_window_s_ > 0.0 && s.engine->can_process(pkt)) {
      s.batch_queue.push_back(std::move(pkt));
      admission_stats& ad = admission_of(at);
      ++ad.admitted;
      ad.max_queue_depth = std::max<std::uint64_t>(
          ad.max_queue_depth, s.batch_queue.size() + s.service_done.size());
      if (obs::enabled()) obs_adm_admitted_->add();
      if (!s.flush_scheduled) {
        s.flush_scheduled = true;
        sim_for(at).schedule(batching_window_s_,
                             [this, at] { flush_site_batch(at); });
      }
      return net::hook_decision{net::hook_decision::action_type::consume,
                                net::invalid_node};
    }
    const engine_report report = s.engine->process(pkt);
    if (report.computed) {
      ++stats_of(at).computed;
      ++s.computed;
      // Serial engine: queue behind in-progress work.
      const double start = now > s.busy_until_s ? now : s.busy_until_s;
      const double service = site_overhead_s(s) + report.compute_latency_s;
      const double done = start + service;
      s.busy_until_s = done;
      s.total_busy_s += service;
      s.service_done.push_back(done);
      admission_stats& ad = admission_of(at);
      ++ad.admitted;
      ad.max_queue_depth = std::max<std::uint64_t>(
          ad.max_queue_depth, s.batch_queue.size() + s.service_done.size());
      if (obs::enabled()) {
        obs_adm_admitted_->add();
        obs_computed_->add();
        obs::hop_record r;
        r.trace_id = pkt.trace_id;
        r.node = at;
        r.time_s = now;
        r.action = obs::hop_action::compute;
        obs::tracer::global().record(r);
        sample_site_timeline(at, s, now, s.batch_queue.size());
      }
      // Hold the packet until the analog evaluation finishes, then let it
      // continue toward its destination (it now carries the result). The
      // consume decision lets us steal the packet; op_inject re-enters it
      // through fabric::send at `done`, exactly like the seed closure did,
      // but as a typed event — no per-packet closure or payload copy.
      sim_for(at).schedule_packet_at(done, std::move(pkt), at,
                                     net::wan_fabric::op_inject, &fabric_);
      return net::hook_decision{net::hook_decision::action_type::consume,
                                net::invalid_node};
    }
    // Unable to compute (malformed bounds / wrong shape): fall through to
    // normal forwarding so the destination can see the failure.
    return keep_going;
  }

  // An admission-deferred packet rides the plain routes from here on:
  // steering it (spread or compute tables) would bounce it back toward
  // the site that just shed it, ping-ponging until the TTL expires.
  if (header->flags & proto::flag_deferred) return keep_going;

  // Failover pinning: a retransmit copy the controller re-homed after
  // repeated timeouts carries its target site in the packet
  // (packet::pinned_site, stamped by send_tracked) and follows the
  // reconverged plain routes toward it, overriding the (possibly stale)
  // compute tables. Packet state only — no task-table lookup, so the
  // check is safe on any shard's thread.
  if (pkt.pinned_site != net::invalid_node && pkt.pinned_site != at &&
      pkt.pinned_site < fabric_.topo().node_count()) {
    const auto hop = fabric_.next_hop(
        at, fabric_.topo().node_at(pkt.pinned_site).address);
    if (hop && *hop != at) {
      ++stats_of(at).redirected;
      if (obs::enabled()) obs_redirected_->add();
      return net::hook_decision{net::hook_decision::action_type::redirect,
                                *hop};
    }
  }

  // Flow-spread steering (§4 congestion mitigation): hash the flow
  // across ALL capable sites so no single serial engine becomes the
  // bottleneck. Per-flow deterministic, so every node along the way
  // agrees on the chosen site and the packet converges to it.
  if (steering_ == steering_policy::flow_spread) {
    const auto& candidates =
        capable_sites_[static_cast<std::size_t>(header->primitive)];
    if (!candidates.empty() && !next_hop_toward_.empty()) {
      const net::node_id target =
          candidates[pkt.flow_hash % candidates.size()];
      const net::node_id hop =
          target == at ? net::invalid_node : next_hop_toward_[at][target];
      if (hop != net::invalid_node) {
        ++stats_of(at).redirected;
        if (obs::enabled()) obs_redirected_->add();
        return net::hook_decision{net::hook_decision::action_type::redirect,
                                  hop};
      }
    }
  }

  // Steer toward a capable site if a compute route exists.
  const auto next = compute_tables_[at].lookup(pkt.dst, header->primitive);
  if (next) {
    ++stats_of(at).redirected;
    if (obs::enabled()) obs_redirected_->add();
    return net::hook_decision{net::hook_decision::action_type::redirect,
                              *next};
  }
  return keep_going;
}

}  // namespace onfiber::core
