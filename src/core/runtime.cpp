#include "core/runtime.hpp"

#include <limits>
#include <stdexcept>

namespace onfiber::core {

onfiber_runtime::onfiber_runtime(net::simulator& sim, net::topology topo)
    : sim_(sim),
      fabric_(sim, std::move(topo)),
      sites_(fabric_.topo().node_count()),
      compute_tables_(fabric_.topo().node_count()) {
  fabric_.install_shortest_path_routes();
  const auto n = static_cast<net::node_id>(fabric_.topo().node_count());
  for (net::node_id id = 0; id < n; ++id) {
    fabric_.set_hook(id, [this](net::node_id at, net::packet& pkt,
                                double now) {
      return on_packet(at, pkt, now);
    });
  }
  fabric_.set_deliver_callback(
      [this](const net::packet& pkt, net::node_id at, double t) {
        const auto h = proto::peek_compute_header(pkt);
        if (h && h->requires_compute() && !h->has_result()) {
          ++stats_.uncomputed_delivered;
        }
        deliveries_.push_back(delivery{pkt, at, t});
      });
}

photonic_engine& onfiber_runtime::deploy_engine(net::node_id at,
                                                engine_config config,
                                                std::uint64_t seed) {
  if (at >= sites_.size()) {
    throw std::out_of_range("onfiber_runtime: bad node id");
  }
  auto s = std::make_unique<site>();
  s->engine = std::make_unique<photonic_engine>(config, seed);
  sites_[at] = std::move(s);
  return *sites_[at]->engine;
}

bool onfiber_runtime::site_supports(net::node_id at,
                                    proto::primitive_id p) const {
  return at < sites_.size() && sites_[at] != nullptr &&
         sites_[at]->engine->supports(p);
}

std::vector<net::node_id> onfiber_runtime::sites() const {
  std::vector<net::node_id> out;
  for (net::node_id id = 0; id < sites_.size(); ++id) {
    if (sites_[id] != nullptr) out.push_back(id);
  }
  return out;
}

void onfiber_runtime::set_compute_route(net::node_id at, net::prefix dst,
                                        proto::primitive_id p,
                                        net::node_id next_hop) {
  if (at >= compute_tables_.size()) {
    throw std::out_of_range("onfiber_runtime: bad node id");
  }
  compute_tables_[at].insert_compute(dst, p, next_hop);
}

void onfiber_runtime::install_compute_routes_via_nearest_site() {
  const net::topology& topo = fabric_.topo();
  const auto n = static_cast<net::node_id>(topo.node_count());

  // All-pairs shortest-path delays (repeated Dijkstra; n is WAN-scale).
  std::vector<std::vector<double>> delay(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<std::vector<net::node_id>>> paths(n);
  for (net::node_id u = 0; u < n; ++u) {
    paths[u].resize(n);
    for (net::node_id v = 0; v < n; ++v) {
      if (u == v) continue;
      paths[u][v] = topo.shortest_path(u, v, &fabric_.links_up());
      delay[u][v] = paths[u][v].empty()
                        ? std::numeric_limits<double>::infinity()
                        : topo.path_delay_s(paths[u][v]);
    }
  }

  constexpr proto::primitive_id prims[] = {
      proto::primitive_id::p1_dot_product,
      proto::primitive_id::p2_pattern_match,
      proto::primitive_id::p3_nonlinear,
      proto::primitive_id::p1_p3_dnn,
  };

  // Spread-steering tables: capable sites per primitive and the
  // first-hop matrix (used when steering == flow_spread).
  for (auto& v : capable_sites_) v.clear();
  for (const auto p : prims) {
    for (const net::node_id s : sites()) {
      if (site_supports(s, p)) {
        capable_sites_[static_cast<std::size_t>(p)].push_back(s);
      }
    }
  }
  next_hop_toward_.assign(n, std::vector<net::node_id>(n, net::invalid_node));
  for (net::node_id u = 0; u < n; ++u) {
    for (net::node_id v = 0; v < n; ++v) {
      if (u != v && paths[u][v].size() >= 2) {
        next_hop_toward_[u][v] = paths[u][v][1];
      }
    }
  }

  for (net::node_id u = 0; u < n; ++u) {
    for (const auto p : prims) {
      if (site_supports(u, p)) continue;  // computed in transit here
      for (net::node_id d = 0; d < n; ++d) {
        if (d == u) continue;
        // Best supporting site by via-delay.
        net::node_id best_site = net::invalid_node;
        double best = std::numeric_limits<double>::infinity();
        for (const net::node_id s : sites()) {
          if (!site_supports(s, p) || s == u) continue;
          const double via = delay[u][s] + delay[s][d];
          if (via < best) {
            best = via;
            best_site = s;
          }
        }
        if (best_site == net::invalid_node) continue;
        const auto& path = paths[u][best_site];
        if (path.size() < 2) continue;
        compute_tables_[u].insert_compute(topo.node_at(d).attached_prefix, p,
                                          path[1]);
      }
    }
  }
}

void onfiber_runtime::submit(net::packet pkt, net::node_id ingress) {
  fabric_.send(std::move(pkt), ingress);
}

double onfiber_runtime::site_busy_s(net::node_id at) const {
  if (at >= sites_.size() || sites_[at] == nullptr) return 0.0;
  return sites_[at]->total_busy_s;
}

double onfiber_runtime::site_overhead_s(const site&) const {
  // 17 optical symbols of preamble (pilot + 16 bits) on the P2 matcher at
  // its 10 GHz symbol rate, plus a fixed optical path latency for result
  // insertion.
  constexpr double preamble_s = 17.0 / 10e9;
  constexpr double insertion_s = 5e-9;
  return preamble_s + insertion_s;
}

net::hook_decision onfiber_runtime::on_packet(net::node_id at,
                                              net::packet& pkt, double now) {
  net::hook_decision keep_going;
  if (pkt.proto != net::ip_proto::compute) return keep_going;

  const auto header = proto::peek_compute_header(pkt);
  if (!header) {
    ++stats_.malformed_dropped;
    return net::hook_decision{net::hook_decision::action_type::drop,
                              net::invalid_node};
  }
  if (header->has_result()) return keep_going;

  // Compute here?
  if (site_supports(at, header->primitive)) {
    site& s = *sites_[at];
    const engine_report report = s.engine->process(pkt);
    if (report.computed) {
      ++stats_.computed;
      ++s.computed;
      // Serial engine: queue behind in-progress work.
      const double start = now > s.busy_until_s ? now : s.busy_until_s;
      const double service = site_overhead_s(s) + report.compute_latency_s;
      const double done = start + service;
      s.busy_until_s = done;
      s.total_busy_s += service;
      // Hold the packet until the analog evaluation finishes, then let it
      // continue toward its destination (it now carries the result).
      net::packet held = pkt;
      sim_.schedule_at(done, [this, held = std::move(held), at]() mutable {
        fabric_.send(std::move(held), at);
      });
      return net::hook_decision{net::hook_decision::action_type::consume,
                                net::invalid_node};
    }
    // Unable to compute (malformed bounds / wrong shape): fall through to
    // normal forwarding so the destination can see the failure.
    return keep_going;
  }

  // Flow-spread steering (§4 congestion mitigation): hash the flow
  // across ALL capable sites so no single serial engine becomes the
  // bottleneck. Per-flow deterministic, so every node along the way
  // agrees on the chosen site and the packet converges to it.
  if (steering_ == steering_policy::flow_spread) {
    const auto& candidates =
        capable_sites_[static_cast<std::size_t>(header->primitive)];
    if (!candidates.empty() && !next_hop_toward_.empty()) {
      const net::node_id target =
          candidates[pkt.flow_hash % candidates.size()];
      const net::node_id hop =
          target == at ? net::invalid_node : next_hop_toward_[at][target];
      if (hop != net::invalid_node) {
        ++stats_.redirected;
        return net::hook_decision{net::hook_decision::action_type::redirect,
                                  hop};
      }
    }
  }

  // Steer toward a capable site if a compute route exists.
  const auto next = compute_tables_[at].lookup(pkt.dst, header->primitive);
  if (next) {
    ++stats_.redirected;
    return net::hook_decision{net::hook_decision::action_type::redirect,
                              *next};
  }
  return keep_going;
}

}  // namespace onfiber::core
