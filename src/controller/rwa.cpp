#include "controller/rwa.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace onfiber::ctrl {

namespace {

/// Directed fiber along a hop: WDM links are unidirectional fiber pairs,
/// so the occupancy key is (link, direction). A lightpath that detours
/// through a compute site and back uses BOTH directions of the shared
/// link — no self-conflict, exactly like the physical plant.
std::vector<std::size_t> path_fibers(const net::topology& topo,
                                     const std::vector<net::node_id>& path) {
  if (path.size() < 2) {
    throw std::invalid_argument("rwa: lightpath needs >= 2 nodes");
  }
  std::vector<std::size_t> fibers;
  fibers.reserve(path.size() - 1);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const std::size_t li = topo.link_between(path[i - 1], path[i]);
    const int dir = topo.links()[li].a == path[i - 1] ? 0 : 1;
    fibers.push_back(li * 2 + static_cast<std::size_t>(dir));
  }
  return fibers;
}

}  // namespace

rwa_result assign_wavelengths_first_fit(
    const net::topology& topo, std::vector<lightpath_request> requests,
    int max_wavelengths) {
  if (max_wavelengths <= 0) {
    throw std::invalid_argument("rwa: need >= 1 wavelength");
  }
  std::sort(requests.begin(), requests.end(),
            [](const lightpath_request& a, const lightpath_request& b) {
              return a.id < b.id;
            });

  rwa_result result;
  std::vector<std::vector<bool>> used(
      topo.links().size() * 2,
      std::vector<bool>(static_cast<std::size_t>(max_wavelengths), false));
  std::vector<std::size_t> congestion(topo.links().size() * 2, 0);

  for (const auto& req : requests) {
    const auto links = path_fibers(topo, req.path);
    for (const std::size_t li : links) ++congestion[li];

    lightpath_assignment a;
    a.request_id = req.id;
    for (int w = 0; w < max_wavelengths; ++w) {
      bool free_everywhere = true;
      for (const std::size_t li : links) {
        if (used[li][static_cast<std::size_t>(w)]) {
          free_everywhere = false;
          break;
        }
      }
      if (free_everywhere) {
        for (const std::size_t li : links) {
          used[li][static_cast<std::size_t>(w)] = true;
        }
        a.assigned = true;
        a.wavelength = w;
        result.wavelengths_used =
            std::max(result.wavelengths_used, w + 1);
        break;
      }
    }
    if (!a.assigned) ++result.blocked;
    result.assignments.push_back(a);
  }
  result.max_congestion =
      *std::max_element(congestion.begin(), congestion.end());
  return result;
}

std::vector<lightpath_request> lightpaths_for_allocation(
    const allocation_problem& p, const allocation_result& r,
    net::spf_engine* spf) {
  if (p.topo == nullptr) {
    throw std::invalid_argument("rwa: allocation problem missing topology");
  }
  std::unique_ptr<net::spf_engine> owned;
  if (spf == nullptr) {
    owned = std::make_unique<net::spf_engine>(*p.topo);
    spf = owned.get();
  }
  std::vector<lightpath_request> out;
  for (const auto& a : r.assignments) {
    if (!a.satisfied) continue;
    const compute_demand& d = p.demands[a.demand_id];
    lightpath_request req;
    req.id = d.id;
    // Concatenate the legs src -> site(s) -> dst (dropping duplicated
    // junction nodes).
    net::node_id cur = d.src;
    req.path.push_back(cur);
    auto extend = [&](net::node_id to) {
      const auto leg = spf->path(cur, to);
      for (std::size_t i = 1; i < leg.size(); ++i) req.path.push_back(leg[i]);
      cur = to;
    };
    for (const auto tid : a.transponder_ids) {
      extend(p.transponders[tid].node);
    }
    extend(d.dst);
    if (req.path.size() >= 2) out.push_back(std::move(req));
  }
  return out;
}

bool assignment_is_conflict_free(const net::topology& topo,
                                 const std::vector<lightpath_request>& requests,
                                 const rwa_result& result) {
  // Map request id -> directed fibers.
  std::vector<std::vector<bool>> seen(
      topo.links().size() * 2,
      std::vector<bool>(static_cast<std::size_t>(
                            std::max(result.wavelengths_used, 1)),
                        false));
  for (const auto& a : result.assignments) {
    if (!a.assigned) continue;
    const auto req = std::find_if(
        requests.begin(), requests.end(),
        [&](const lightpath_request& r) { return r.id == a.request_id; });
    if (req == requests.end()) return false;
    for (const std::size_t li : path_fibers(topo, req->path)) {
      auto flag =
          seen[li][static_cast<std::size_t>(a.wavelength)];
      if (flag) return false;
      seen[li][static_cast<std::size_t>(a.wavelength)] = true;
    }
  }
  return true;
}

}  // namespace onfiber::ctrl
