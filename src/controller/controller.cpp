#include "controller/controller.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

namespace onfiber::ctrl {

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Delay oracle + residual capacities. Delays come from a shared
/// incremental-SPF engine when the caller has one (its per-source trees
/// persist across solves) or from an owned all-links-up engine built for
/// this solve. Either way only the sources the solve touches get a tree
/// — the seed's eager all-pairs matrix is gone — and each tree dist is
/// bit-identical to path_delay_s over the seed Dijkstra's path (same
/// left-to-right float accumulation), so solver outputs are unchanged.
struct solver_context {
  const allocation_problem& problem;
  net::spf_engine* spf = nullptr;
  std::unique_ptr<net::spf_engine> owned;  ///< fallback when none shared
  std::vector<double> residual;            ///< per transponder

  explicit solver_context(const allocation_problem& p,
                          net::spf_engine* shared = nullptr)
      : problem(p), spf(shared) {
    if (p.topo == nullptr) {
      throw std::invalid_argument("allocation_problem: missing topology");
    }
    if (spf == nullptr) {
      owned = std::make_unique<net::spf_engine>(*p.topo);
      spf = owned.get();
    }
    residual.reserve(p.transponders.size());
    for (const auto& t : p.transponders) residual.push_back(t.capacity_ops_s);
  }

  /// Shortest delay u -> v [s]; inf when unreachable, 0 when u == v.
  [[nodiscard]] double delay(net::node_id u, net::node_id v) const {
    return spf->dist(u, v);
  }

  /// Delay of src -> sites... -> dst for a concrete site sequence.
  [[nodiscard]] double chain_delay(const compute_demand& d,
                                   const std::vector<std::uint32_t>& tids) const {
    double total = 0.0;
    net::node_id cur = d.src;
    for (const std::uint32_t tid : tids) {
      const net::node_id s = problem.transponders[tid].node;
      const double leg = delay(cur, s);
      if (leg == inf) return inf;
      total += leg;
      cur = s;
    }
    const double tail = delay(cur, d.dst);
    if (tail == inf) return inf;
    return total + tail;
  }
};

/// Try to place `d` greedily given residual capacities; returns the site
/// tuple (transponder ids) or nullopt.
std::optional<std::vector<std::uint32_t>> place_greedy(
    const solver_context& ctx, const std::vector<double>& residual,
    const compute_demand& d) {
  std::vector<std::uint32_t> chosen;
  // A demand may use the same transponder for several stages only if the
  // transponder has capacity for each stage evaluation.
  std::vector<double> local = residual;
  net::node_id cur = d.src;
  for (const auto prim : d.chain) {
    std::uint32_t best_tid = 0;
    double best_cost = inf;
    bool found = false;
    for (std::uint32_t tid = 0; tid < ctx.problem.transponders.size();
         ++tid) {
      const transponder_info& t = ctx.problem.transponders[tid];
      if (!t.supports(prim) || local[tid] < d.rate_ops_s) continue;
      const double cost =
          ctx.delay(cur, t.node) + ctx.delay(t.node, d.dst);
      if (cost < best_cost) {
        best_cost = cost;
        best_tid = tid;
        found = true;
      }
    }
    if (!found || best_cost == inf) return std::nullopt;
    chosen.push_back(best_tid);
    local[best_tid] -= d.rate_ops_s;
    cur = ctx.problem.transponders[best_tid].node;
  }
  return chosen;
}

/// Apply/release an assignment's capacity.
void apply_capacity(std::vector<double>& residual,
                    const allocation_problem& p, const compute_demand& d,
                    const std::vector<std::uint32_t>& tids, double sign) {
  (void)p;
  for (const std::uint32_t tid : tids) {
    residual[tid] -= sign * d.rate_ops_s;
  }
}

/// Recompute the aggregate fields of a result from its assignments.
void finalize(const allocation_problem& p, const solver_context& ctx,
              allocation_result& r) {
  r.satisfied_value = 0.0;
  r.total_delay_s = 0.0;
  std::set<std::uint32_t> used;
  for (auto& a : r.assignments) {
    if (!a.satisfied) continue;
    const auto& d = p.demands[a.demand_id];
    a.path_delay_s = ctx.chain_delay(d, a.transponder_ids);
    r.satisfied_value += d.value;
    r.total_delay_s += a.path_delay_s;
    for (const auto tid : a.transponder_ids) used.insert(tid);
  }
  r.transponders_used = used.size();
}

/// Demands ordered by (value desc, id asc) for greedy processing.
std::vector<std::size_t> value_order(const allocation_problem& p) {
  std::vector<std::size_t> order(p.demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (p.demands[a].value != p.demands[b].value) {
      return p.demands[a].value > p.demands[b].value;
    }
    return p.demands[a].id < p.demands[b].id;
  });
  return order;
}

void validate(const allocation_problem& p) {
  if (p.topo == nullptr) {
    throw std::invalid_argument("allocation_problem: missing topology");
  }
  for (const auto& d : p.demands) {
    if (d.chain.empty()) {
      throw std::invalid_argument("compute_demand: empty chain");
    }
    if (d.src >= p.topo->node_count() || d.dst >= p.topo->node_count()) {
      throw std::invalid_argument("compute_demand: bad endpoints");
    }
    if (d.rate_ops_s <= 0.0 || d.value <= 0.0) {
      throw std::invalid_argument("compute_demand: non-positive rate/value");
    }
  }
  for (const auto& t : p.transponders) {
    if (t.node >= p.topo->node_count()) {
      throw std::invalid_argument("transponder_info: bad node");
    }
  }
}

}  // namespace

allocation_result solve_greedy(const allocation_problem& p,
                               net::spf_engine* spf) {
  validate(p);
  solver_context ctx(p, spf);
  allocation_result r;
  r.assignments.resize(p.demands.size());
  for (std::size_t i = 0; i < p.demands.size(); ++i) {
    r.assignments[i].demand_id = static_cast<std::uint32_t>(i);
  }
  std::vector<double> residual = ctx.residual;
  for (const std::size_t di : value_order(p)) {
    const compute_demand& d = p.demands[di];
    auto placed = place_greedy(ctx, residual, d);
    if (placed) {
      apply_capacity(residual, p, d, *placed, +1.0);
      r.assignments[di].satisfied = true;
      r.assignments[di].transponder_ids = std::move(*placed);
    }
  }
  finalize(p, ctx, r);
  return r;
}

allocation_result solve_local_search(const allocation_problem& p,
                                     std::size_t max_rounds,
                                     net::spf_engine* spf) {
  validate(p);
  solver_context ctx(p, spf);
  allocation_result best = solve_greedy(p, ctx.spf);

  // Track residual capacity under `best`.
  std::vector<double> residual = ctx.residual;
  for (const auto& a : best.assignments) {
    if (a.satisfied) {
      apply_capacity(residual, p, p.demands[a.demand_id], a.transponder_ids,
                     +1.0);
    }
  }

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;

    // Move 1: delay-improving single-stage reassignments.
    for (auto& a : best.assignments) {
      if (!a.satisfied) continue;
      const compute_demand& d = p.demands[a.demand_id];
      for (std::size_t stage = 0; stage < a.transponder_ids.size(); ++stage) {
        const std::uint32_t cur_tid = a.transponder_ids[stage];
        const double cur_delay = ctx.chain_delay(d, a.transponder_ids);
        for (std::uint32_t tid = 0; tid < p.transponders.size(); ++tid) {
          if (tid == cur_tid) continue;
          const transponder_info& t = p.transponders[tid];
          if (!t.supports(d.chain[stage]) || residual[tid] < d.rate_ops_s) {
            continue;
          }
          std::vector<std::uint32_t> trial = a.transponder_ids;
          trial[stage] = tid;
          const double trial_delay = ctx.chain_delay(d, trial);
          if (trial_delay < cur_delay - 1e-12) {
            residual[cur_tid] += d.rate_ops_s;
            residual[tid] -= d.rate_ops_s;
            a.transponder_ids = std::move(trial);
            improved = true;
            break;
          }
        }
      }
    }

    // Move 2: try to satisfy previously unsatisfied demands (capacity may
    // have shifted; also consider relocating one blocking stage).
    for (auto& a : best.assignments) {
      if (a.satisfied) continue;
      const compute_demand& d = p.demands[a.demand_id];
      auto placed = place_greedy(ctx, residual, d);
      if (placed) {
        apply_capacity(residual, p, d, *placed, +1.0);
        a.satisfied = true;
        a.transponder_ids = std::move(*placed);
        improved = true;
        continue;
      }
      // Relocation: find a satisfied demand stage on a transponder that
      // would unblock `d`, and move it to any other feasible transponder.
      for (auto& other : best.assignments) {
        if (!other.satisfied || other.demand_id == a.demand_id) continue;
        const compute_demand& od = p.demands[other.demand_id];
        bool unblocked = false;
        for (std::size_t stage = 0; stage < other.transponder_ids.size();
             ++stage) {
          const std::uint32_t blocking = other.transponder_ids[stage];
          for (std::uint32_t alt = 0; alt < p.transponders.size(); ++alt) {
            if (alt == blocking) continue;
            if (!p.transponders[alt].supports(od.chain[stage]) ||
                residual[alt] < od.rate_ops_s) {
              continue;
            }
            // Tentatively move, then retry `d`.
            residual[blocking] += od.rate_ops_s;
            residual[alt] -= od.rate_ops_s;
            auto retry = place_greedy(ctx, residual, d);
            if (retry) {
              other.transponder_ids[stage] = alt;
              apply_capacity(residual, p, d, *retry, +1.0);
              a.satisfied = true;
              a.transponder_ids = std::move(*retry);
              improved = true;
              unblocked = true;
              break;
            }
            residual[blocking] -= od.rate_ops_s;
            residual[alt] += od.rate_ops_s;
          }
          if (unblocked) break;
        }
        if (unblocked) break;
      }
    }

    if (!improved) break;
  }
  finalize(p, ctx, best);
  return best;
}

namespace {

/// Enumerate feasible site tuples for one demand given residuals.
void enumerate_tuples(const solver_context& ctx,
                      const std::vector<double>& residual,
                      const compute_demand& d, std::size_t stage,
                      std::vector<std::uint32_t>& prefix,
                      std::vector<double>& local,
                      std::vector<std::vector<std::uint32_t>>& out) {
  if (stage == d.chain.size()) {
    if (ctx.chain_delay(d, prefix) < inf) out.push_back(prefix);
    return;
  }
  for (std::uint32_t tid = 0; tid < ctx.problem.transponders.size(); ++tid) {
    const transponder_info& t = ctx.problem.transponders[tid];
    if (!t.supports(d.chain[stage]) || local[tid] < d.rate_ops_s) continue;
    prefix.push_back(tid);
    local[tid] -= d.rate_ops_s;
    enumerate_tuples(ctx, residual, d, stage + 1, prefix, local, out);
    local[tid] += d.rate_ops_s;
    prefix.pop_back();
  }
}

struct bnb_state {
  const allocation_problem& p;
  const solver_context& ctx;
  std::vector<double> residual;
  std::vector<std::optional<std::vector<std::uint32_t>>> chosen;
  double best_score = -inf;
  std::vector<std::optional<std::vector<std::uint32_t>>> best_chosen;
  std::vector<double> value_suffix;  ///< sum of demand values from index i

  double current_value = 0.0;
  double current_delay = 0.0;

  void search(std::size_t di) {
    // Bound: even satisfying everything remaining cannot beat best.
    const double optimistic = current_value + value_suffix[di];
    if (optimistic < best_score - 1e-12) return;

    if (di == p.demands.size()) {
      // Exact score with the same tie-breaks as allocation_result::score.
      std::set<std::uint32_t> used;
      for (const auto& c : chosen) {
        if (c) {
          for (const auto tid : *c) used.insert(tid);
        }
      }
      const double score = current_value - 1e-4 * current_delay -
                           1e-8 * static_cast<double>(used.size());
      if (score > best_score) {
        best_score = score;
        best_chosen = chosen;
      }
      return;
    }

    const compute_demand& d = p.demands[di];
    std::vector<std::vector<std::uint32_t>> tuples;
    std::vector<std::uint32_t> prefix;
    std::vector<double> local = residual;
    enumerate_tuples(ctx, residual, d, 0, prefix, local, tuples);

    // Prefer low-delay tuples so good solutions are found early.
    std::sort(tuples.begin(), tuples.end(),
              [&](const auto& a, const auto& b) {
                return ctx.chain_delay(d, a) < ctx.chain_delay(d, b);
              });

    for (const auto& tuple : tuples) {
      for (const auto tid : tuple) residual[tid] -= d.rate_ops_s;
      chosen[di] = tuple;
      current_value += d.value;
      current_delay += ctx.chain_delay(d, tuple);
      search(di + 1);
      current_delay -= ctx.chain_delay(d, tuple);
      current_value -= d.value;
      chosen[di].reset();
      for (const auto tid : tuple) residual[tid] += d.rate_ops_s;
    }
    // Option: leave the demand unsatisfied.
    search(di + 1);
  }
};

}  // namespace

allocation_result solve_exact(const allocation_problem& p,
                              std::size_t max_demands,
                              net::spf_engine* spf) {
  validate(p);
  if (p.demands.size() > max_demands) {
    throw std::invalid_argument(
        "solve_exact: instance exceeds max_demands guard");
  }
  solver_context ctx(p, spf);
  bnb_state state{p, ctx, ctx.residual,
                  std::vector<std::optional<std::vector<std::uint32_t>>>(
                      p.demands.size()),
                  -inf,
                  {},
                  {},
                  0.0,
                  0.0};
  state.value_suffix.assign(p.demands.size() + 1, 0.0);
  for (std::size_t i = p.demands.size(); i-- > 0;) {
    state.value_suffix[i] = state.value_suffix[i + 1] + p.demands[i].value;
  }
  state.search(0);

  allocation_result r;
  r.assignments.resize(p.demands.size());
  for (std::size_t i = 0; i < p.demands.size(); ++i) {
    r.assignments[i].demand_id = static_cast<std::uint32_t>(i);
    if (i < state.best_chosen.size() && state.best_chosen[i]) {
      r.assignments[i].satisfied = true;
      r.assignments[i].transponder_ids = *state.best_chosen[i];
    }
  }
  finalize(p, ctx, r);
  return r;
}

std::vector<compute_route_entry> routes_for_allocation(
    const allocation_problem& p, const allocation_result& r,
    net::spf_engine* spf) {
  validate(p);
  std::unique_ptr<net::spf_engine> owned;
  if (spf == nullptr) {
    owned = std::make_unique<net::spf_engine>(*p.topo);
    spf = owned.get();
  }
  std::vector<compute_route_entry> out;
  // First writer wins per (node, prefix, primitive).
  std::set<std::tuple<net::node_id, std::uint32_t, int, std::uint8_t>> seen;

  for (const auto& a : r.assignments) {
    if (!a.satisfied) continue;
    const compute_demand& d = p.demands[a.demand_id];
    const net::prefix dst_prefix = p.topo->node_at(d.dst).attached_prefix;

    net::node_id cur = d.src;
    for (std::size_t stage = 0; stage < a.transponder_ids.size(); ++stage) {
      const net::node_id site =
          p.transponders[a.transponder_ids[stage]].node;
      const auto leg = spf->path(cur, site);
      for (std::size_t i = 0; i + 1 < leg.size(); ++i) {
        const auto key = std::make_tuple(
            leg[i], dst_prefix.network.value, dst_prefix.length,
            static_cast<std::uint8_t>(d.chain[stage]));
        if (seen.insert(key).second) {
          out.push_back(compute_route_entry{leg[i], dst_prefix,
                                            d.chain[stage], leg[i + 1]});
        }
      }
      cur = site;
    }
    // After the last stage the packet carries its result and follows plain
    // IP routes to dst; no compute entries needed.
  }
  return out;
}

std::vector<reconfig_op> plan_reconfiguration(const allocation_problem& p,
                                              const allocation_result& prev,
                                              const allocation_result& next) {
  // Active primitive set per transponder under an allocation.
  const auto active = [&](const allocation_result& r) {
    std::map<std::uint32_t, std::set<proto::primitive_id>> m;
    for (const auto& a : r.assignments) {
      if (!a.satisfied) continue;
      const compute_demand& d = p.demands[a.demand_id];
      for (std::size_t stage = 0; stage < a.transponder_ids.size(); ++stage) {
        m[a.transponder_ids[stage]].insert(d.chain[stage]);
      }
    }
    return m;
  };
  const auto before = active(prev);
  const auto after = active(next);

  std::vector<reconfig_op> ops;
  for (const auto& [tid, prims] : after) {
    const auto it = before.find(tid);
    for (const auto prim : prims) {
      if (it == before.end() || it->second.count(prim) == 0) {
        ops.push_back(reconfig_op{tid, prim});
      }
    }
  }
  return ops;
}

std::optional<failover_plan> plan_failover_site(
    const net::topology& topo, std::span<const net::node_id> capable_sites,
    net::node_id exclude_site, net::node_id src, net::node_id dst,
    const std::vector<bool>* links_up) {
  std::optional<failover_plan> best;
  for (const net::node_id site : capable_sites) {
    if (site == exclude_site) continue;
    double via = 0.0;
    if (site != src) {
      const auto leg = topo.shortest_path(src, site, links_up);
      if (leg.empty()) continue;
      via += topo.path_delay_s(leg);
    }
    if (site != dst) {
      const auto leg = topo.shortest_path(site, dst, links_up);
      if (leg.empty()) continue;
      via += topo.path_delay_s(leg);
    }
    if (!best || via < best->via_delay_s) {
      best = failover_plan{site, via};
    }
  }
  return best;
}

std::optional<failover_plan> plan_failover_site(
    net::spf_engine& spf, std::span<const net::node_id> capable_sites,
    net::node_id exclude_site, net::node_id src, net::node_id dst) {
  std::optional<failover_plan> best;
  for (const net::node_id site : capable_sites) {
    if (site == exclude_site) continue;
    double via = 0.0;
    if (site != src) {
      const double leg = spf.dist(src, site);
      if (leg == inf) continue;
      via += leg;
    }
    if (site != dst) {
      const double leg = spf.dist(site, dst);
      if (leg == inf) continue;
      via += leg;
    }
    if (!best || via < best->via_delay_s) {
      best = failover_plan{site, via};
    }
  }
  return best;
}

}  // namespace onfiber::ctrl
