// service.hpp — the controller as a running service.
//
// §3: "a centralized controller to continuously track the status of all
// photonic compute transponders and dynamically reconfigure them to
// accommodate a diverse set of photonic computing tasks according to
// users' demands."
//
// `controller_service` closes that loop inside the discrete-event
// simulation: demands arrive and depart over time; each epoch the
// controller re-solves the allocation, diffs it against the previous one
// into reconfiguration ops, and publishes fresh two-field routes. The
// data plane (core::onfiber_runtime) consumes the routes through a
// callback so this library stays independent of core.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "controller/controller.hpp"
#include "network/event_sim.hpp"

namespace onfiber::ctrl {

enum class solver_kind : std::uint8_t { greedy, local_search, exact };

/// Cost of retasking a transponder (§4: "on-fiber machine learning
/// inference requires trained DNN models to be distributed across network
/// devices in advance"): task state ships over a control channel and the
/// engine is unavailable while installing.
struct reconfig_cost_model {
  double task_bytes = 64e3;         ///< weights/patterns per primitive
  double control_rate_bps = 1e9;    ///< control-plane channel to the site
  double install_s = 1e-3;          ///< engine calibration/settling

  /// Downtime of one reconfiguration op.
  [[nodiscard]] double op_downtime_s() const {
    return task_bytes * 8.0 / control_rate_bps + install_s;
  }
};

struct service_config {
  double epoch_s = 0.1;        ///< re-optimization cadence
  solver_kind solver = solver_kind::local_search;
  std::size_t max_epochs = 0;  ///< 0 = run until the simulator drains
  reconfig_cost_model reconfig{};
};

/// Statistics of one controller epoch.
struct epoch_report {
  std::uint64_t epoch = 0;
  double time_s = 0.0;
  std::size_t active_demands = 0;
  double satisfied_value = 0.0;
  std::size_t reconfig_ops = 0;
  double reconfig_downtime_s = 0.0;  ///< summed engine-unavailable time
  std::size_t route_entries = 0;
};

class controller_service {
 public:
  /// Called each epoch with the freshly computed routes (e.g. to install
  /// them into an onfiber_runtime).
  using publish_fn =
      std::function<void(const std::vector<compute_route_entry>&)>;

  controller_service(net::simulator& sim, const net::topology& topo,
                     std::vector<transponder_info> transponders,
                     service_config config = {});

  /// Register a demand active during [start_s, end_s).
  void add_demand(compute_demand demand, double start_s, double end_s);

  void set_publish_callback(publish_fn cb) { publish_ = std::move(cb); }

  /// Schedule the epoch loop; call before running the simulator.
  void start();

  [[nodiscard]] const std::vector<epoch_report>& history() const {
    return history_;
  }

  /// Total reconfiguration ops issued over the run.
  [[nodiscard]] std::size_t total_reconfigs() const {
    std::size_t n = 0;
    for (const auto& e : history_) n += e.reconfig_ops;
    return n;
  }

  /// Total engine downtime spent installing tasks over the run.
  [[nodiscard]] double total_downtime_s() const {
    double t = 0.0;
    for (const auto& e : history_) t += e.reconfig_downtime_s;
    return t;
  }

 private:
  struct timed_demand {
    compute_demand demand;
    double start_s;
    double end_s;
  };

  void run_epoch();
  [[nodiscard]] allocation_problem current_problem() const;
  [[nodiscard]] allocation_result solve(const allocation_problem& p) const;

  net::simulator& sim_;
  const net::topology& topo_;
  /// Persistent all-links-up SPF engine shared across epochs: the
  /// per-source trees the solvers and route expansion query are built
  /// once (lazily, per source actually used) instead of re-running
  /// Dijkstra every epoch. Mutable because solve() is const and tree
  /// construction is a cache fill.
  mutable net::spf_engine spf_;
  std::vector<transponder_info> transponders_;
  service_config config_;
  std::vector<timed_demand> demands_;
  publish_fn publish_;

  allocation_problem prev_problem_;
  allocation_result prev_result_;
  bool has_prev_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<epoch_report> history_;
};

}  // namespace onfiber::ctrl
