// controller.hpp — the centralized controller of §3.
//
// "a centralized controller to continuously track the status of all
//  photonic compute transponders and dynamically reconfigure them ...
//  The optimization formulation takes user demands in terms of photonic
//  computing task dependency graphs (e.g., a computation DAG) and network
//  topology as input. It then takes the number of transponders at each
//  node as resource constraints. The optimization objective is to satisfy
//  as many compute demands as possible while minimizing the resource
//  utilization of transponders."
//
// The allocation problem is NP-hard (the paper concedes in §5 that it
// "is fundamentally an integer problem"). Three solvers are provided:
//   * greedy          — value-ordered, per-stage nearest feasible site;
//   * local search    — greedy + reassignment/satisfaction moves;
//   * exact (B&B)     — branch and bound, exponential, small instances.
// Bench E14 compares their quality and runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "network/spf.hpp"
#include "network/topology.hpp"
#include "protocol/compute_header.hpp"

namespace onfiber::ctrl {

/// A registered photonic compute transponder.
struct transponder_info {
  std::uint32_t id = 0;
  net::node_id node = net::invalid_node;
  std::vector<proto::primitive_id> primitives;  ///< configurable task set
  double capacity_ops_s = 1e6;  ///< analog evaluations per second

  [[nodiscard]] bool supports(proto::primitive_id p) const {
    for (const auto q : primitives) {
      if (q == p) return true;
    }
    return false;
  }
};

/// One user demand: a chain of compute stages (a path-shaped task DAG;
/// §3's "computation DAG" restricted to chains, which cover all Table-1
/// use cases) that must execute in order somewhere between src and dst.
struct compute_demand {
  std::uint32_t id = 0;
  net::node_id src = net::invalid_node;
  net::node_id dst = net::invalid_node;
  std::vector<proto::primitive_id> chain;  ///< stage primitives, in order
  double rate_ops_s = 1e3;  ///< evaluations/s consumed on each stage's site
  double value = 1.0;       ///< objective weight
};

/// Assignment of one demand.
struct demand_assignment {
  std::uint32_t demand_id = 0;
  bool satisfied = false;
  std::vector<std::uint32_t> transponder_ids;  ///< one per chain stage
  double path_delay_s = 0.0;  ///< src -> sites... -> dst total delay
};

struct allocation_result {
  std::vector<demand_assignment> assignments;
  double satisfied_value = 0.0;
  double total_delay_s = 0.0;       ///< over satisfied demands
  std::size_t transponders_used = 0;

  /// Scalarized objective: satisfied value dominates; delay and resource
  /// use break ties (weighted small enough never to trade against a unit
  /// of demand value at WAN delay scales).
  [[nodiscard]] double score() const {
    return satisfied_value - 1e-4 * total_delay_s -
           1e-8 * static_cast<double>(transponders_used);
  }
};

/// The allocation problem instance.
struct allocation_problem {
  const net::topology* topo = nullptr;
  std::vector<transponder_info> transponders;
  std::vector<compute_demand> demands;
};

// Every solver takes an optional shared incremental-SPF engine over
// p.topo. When given, delay lookups reuse its persistent per-source
// trees (built lazily, only for sources the solve actually touches, and
// reusable across epochs); when null, a throwaway all-links-up engine is
// built for the solve. Results are identical either way provided the
// shared engine's link state is all-up — the historical solver contract.

/// Greedy solver: demands in descending value order; each stage placed on
/// the feasible transponder minimizing incremental path delay.
[[nodiscard]] allocation_result solve_greedy(const allocation_problem& p,
                                             net::spf_engine* spf = nullptr);

/// Greedy + hill climbing: single-stage reassignment moves and attempts
/// to satisfy unsatisfied demands after capacity shuffles.
[[nodiscard]] allocation_result solve_local_search(
    const allocation_problem& p, std::size_t max_rounds = 16,
    net::spf_engine* spf = nullptr);

/// Exact branch and bound. Exponential in demand count — intended for
/// instances up to ~12 demands; throws std::invalid_argument beyond
/// `max_demands` as a guard.
[[nodiscard]] allocation_result solve_exact(const allocation_problem& p,
                                            std::size_t max_demands = 16,
                                            net::spf_engine* spf = nullptr);

// ---------------------------------------------------------------- routes

/// A compute-route row for the data plane: at `at`, packets for
/// `dst_prefix` requiring `primitive` take `next_hop`.
struct compute_route_entry {
  net::node_id at = net::invalid_node;
  net::prefix dst_prefix{};
  proto::primitive_id primitive = proto::primitive_id::none;
  net::node_id next_hop = net::invalid_node;
};

/// Expand an allocation into per-node two-field routes (§3: the controller
/// "delivers next-hop updates to all routers"). For each satisfied demand,
/// routes steer along src -> site(s) -> dst shortest paths.
[[nodiscard]] std::vector<compute_route_entry> routes_for_allocation(
    const allocation_problem& p, const allocation_result& r,
    net::spf_engine* spf = nullptr);

// -------------------------------------------------------------- failover

/// Controller's answer to "this compute site stopped responding: where
/// should the retry go?" (§3: the controller continuously tracks
/// transponder status and reconfigures).
struct failover_plan {
  net::node_id site = net::invalid_node;  ///< alternate compute site
  double via_delay_s = 0.0;  ///< src -> site -> dst delay over live links
};

/// Pick the capable site minimizing src -> site -> dst propagation delay
/// over currently-live links (`links_up`, optional), excluding
/// `exclude_site` (the site the data plane observed timing out —
/// invalid_node excludes nothing, which yields the primary site).
/// nullopt when no capable site is reachable.
[[nodiscard]] std::optional<failover_plan> plan_failover_site(
    const net::topology& topo, std::span<const net::node_id> capable_sites,
    net::node_id exclude_site, net::node_id src, net::node_id dst,
    const std::vector<bool>* links_up = nullptr);

/// Same plan, answered from a shared incremental-SPF engine's trees
/// (O(1) delay lookups under the engine's own link state) instead of
/// running Dijkstra per candidate leg. Picks the identical site with the
/// identical via-delay: the engine's dists are bit-equal to the per-leg
/// path_delay_s sums. The engine's trees must already cover the queried
/// sources when called from shard threads (wan_fabric's first install
/// guarantees that for its engine).
[[nodiscard]] std::optional<failover_plan> plan_failover_site(
    net::spf_engine& spf, std::span<const net::node_id> capable_sites,
    net::node_id exclude_site, net::node_id src, net::node_id dst);

// -------------------------------------------------------- reconfiguration

/// One transponder retasking operation.
struct reconfig_op {
  std::uint32_t transponder_id = 0;
  proto::primitive_id install = proto::primitive_id::none;
};

/// Plan the reconfigurations needed to serve `next` given `prev`
/// (transponders whose active primitive set changes).
[[nodiscard]] std::vector<reconfig_op> plan_reconfiguration(
    const allocation_problem& p, const allocation_result& prev,
    const allocation_result& next);

}  // namespace onfiber::ctrl
