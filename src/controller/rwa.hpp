// rwa.hpp — routing and wavelength assignment for compute lightpaths.
//
// The paper's controller section builds on the classic RWA literature it
// cites ([10] Banerjee & Mukherjee, [67] Zang et al.): once the allocator
// has chosen src -> site(s) -> dst paths, each demand needs a lightpath,
// and lightpaths sharing a fiber must ride distinct wavelengths (no
// wavelength conversion at intermediate nodes — the continuity
// constraint). This module assigns wavelengths with the standard
// first-fit heuristic and reports how close it gets to the congestion
// lower bound.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "controller/controller.hpp"
#include "network/topology.hpp"

namespace onfiber::ctrl {

/// One lightpath to be provisioned: a concrete node path.
struct lightpath_request {
  std::uint32_t id = 0;
  std::vector<net::node_id> path;  ///< adjacent nodes, size >= 2
};

struct lightpath_assignment {
  std::uint32_t request_id = 0;
  bool assigned = false;
  int wavelength = -1;  ///< grid index, 0-based
};

struct rwa_result {
  std::vector<lightpath_assignment> assignments;
  int wavelengths_used = 0;     ///< max assigned index + 1
  std::size_t blocked = 0;      ///< requests that did not fit
  std::size_t max_congestion = 0;  ///< busiest link's lightpath count
                                   ///< (lower bound on wavelengths)
};

/// First-fit wavelength assignment under the continuity constraint.
/// `max_wavelengths` caps the grid (C-band systems: 40-96); requests that
/// cannot fit are blocked, not misassigned. Requests are served in id
/// order (deterministic).
[[nodiscard]] rwa_result assign_wavelengths_first_fit(
    const net::topology& topo, std::vector<lightpath_request> requests,
    int max_wavelengths = 96);

/// Expand a solved allocation into lightpath requests: one per satisfied
/// demand, along src -> site(s) -> dst shortest paths (the same legs the
/// route generator uses). `spf` (optional) answers the legs from a shared
/// incremental-SPF engine's trees instead of per-leg Dijkstra — identical
/// paths when the engine's link state is all-up.
[[nodiscard]] std::vector<lightpath_request> lightpaths_for_allocation(
    const allocation_problem& p, const allocation_result& r,
    net::spf_engine* spf = nullptr);

/// Sanity checker used by tests: true iff no two assigned lightpaths
/// share a link on the same wavelength.
[[nodiscard]] bool assignment_is_conflict_free(
    const net::topology& topo,
    const std::vector<lightpath_request>& requests, const rwa_result& result);

}  // namespace onfiber::ctrl
