#include "controller/service.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace onfiber::ctrl {

namespace {

/// Active primitive set per transponder under an allocation.
std::map<std::uint32_t, std::set<proto::primitive_id>> active_map(
    const allocation_problem& p, const allocation_result& r) {
  std::map<std::uint32_t, std::set<proto::primitive_id>> m;
  for (const auto& a : r.assignments) {
    if (!a.satisfied) continue;
    const compute_demand& d = p.demands[a.demand_id];
    for (std::size_t s = 0; s < a.transponder_ids.size(); ++s) {
      m[a.transponder_ids[s]].insert(d.chain[s]);
    }
  }
  return m;
}

}  // namespace

controller_service::controller_service(net::simulator& sim,
                                       const net::topology& topo,
                                       std::vector<transponder_info>
                                           transponders,
                                       service_config config)
    : sim_(sim),
      topo_(topo),
      spf_(topo),
      transponders_(std::move(transponders)),
      config_(config) {
  if (config_.epoch_s <= 0.0) {
    throw std::invalid_argument("controller_service: epoch must be > 0");
  }
}

void controller_service::add_demand(compute_demand demand, double start_s,
                                    double end_s) {
  if (end_s <= start_s) {
    throw std::invalid_argument("controller_service: empty demand lifetime");
  }
  demands_.push_back(timed_demand{std::move(demand), start_s, end_s});
}

allocation_problem controller_service::current_problem() const {
  allocation_problem p;
  p.topo = &topo_;
  p.transponders = transponders_;
  const double now = sim_.now();
  for (const auto& td : demands_) {
    if (td.start_s <= now && now < td.end_s) p.demands.push_back(td.demand);
  }
  return p;
}

allocation_result controller_service::solve(
    const allocation_problem& p) const {
  switch (config_.solver) {
    case solver_kind::greedy:
      return solve_greedy(p, &spf_);
    case solver_kind::local_search:
      return solve_local_search(p, 16, &spf_);
    case solver_kind::exact:
      return solve_exact(p, 16, &spf_);
  }
  return solve_greedy(p, &spf_);
}

void controller_service::run_epoch() {
  const allocation_problem p = current_problem();
  const allocation_result r = solve(p);

  // Reconfigurations: primitives newly active on each transponder vs the
  // previous epoch (demand sets differ between epochs, so the diff works
  // on the transponder-primitive level, not demand indices).
  std::size_t reconfigs = 0;
  const auto next_active = active_map(p, r);
  if (has_prev_) {
    const auto prev_active = active_map(prev_problem_, prev_result_);
    for (const auto& [tid, prims] : next_active) {
      const auto it = prev_active.find(tid);
      for (const auto prim : prims) {
        if (it == prev_active.end() || it->second.count(prim) == 0) {
          ++reconfigs;
        }
      }
    }
  } else {
    for (const auto& [tid, prims] : next_active) reconfigs += prims.size();
  }

  const auto routes = routes_for_allocation(p, r, &spf_);
  if (publish_) publish_(routes);

  history_.push_back(epoch_report{
      epoch_, sim_.now(), p.demands.size(), r.satisfied_value, reconfigs,
      static_cast<double>(reconfigs) * config_.reconfig.op_downtime_s(),
      routes.size()});
  prev_problem_ = p;
  prev_result_ = r;
  has_prev_ = true;
  ++epoch_;

  // Keep the loop alive while demands remain in the future or active.
  double horizon = 0.0;
  for (const auto& td : demands_) horizon = std::max(horizon, td.end_s);
  const bool more_epochs =
      config_.max_epochs == 0 || epoch_ < config_.max_epochs;
  if (more_epochs && sim_.now() + config_.epoch_s <= horizon) {
    sim_.schedule(config_.epoch_s, [this] { run_epoch(); });
  }
}

void controller_service::start() {
  sim_.schedule(0.0, [this] { run_epoch(); });
}

}  // namespace onfiber::ctrl
