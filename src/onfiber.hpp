// onfiber.hpp — umbrella header for the on-fiber photonic computing
// library. Include this for everything, or pick the sub-headers you need:
//
//   photonics/…  physical devices and the P1/P2/P3 analog primitives
//   network/…    WAN topology, routers, discrete-event fabric
//   protocol/…   the compute-communication protocol (§3)
//   core/…       transponders, the photonic engine, the on-fiber runtime
//   controller/… the centralized controller and its service loop
//   digital/…    digital baselines (device models, DNN, matchers, cipher)
//   apps/…       the seven Table-1 use cases
#pragma once

// physical substrate
#include "photonics/area.hpp"
#include "photonics/converter.hpp"
#include "photonics/energy.hpp"
#include "photonics/fiber.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/noise.hpp"
#include "photonics/optical.hpp"
#include "photonics/passives.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/rng.hpp"
#include "photonics/units.hpp"
#include "photonics/wdm.hpp"

// photonic compute primitives (paper §2.1, Fig. 2)
#include "photonics/engine/dot_product_unit.hpp"
#include "photonics/engine/nonlinear_unit.hpp"
#include "photonics/engine/pattern_matcher.hpp"
#include "photonics/engine/vector_matrix_engine.hpp"
#include "photonics/engine/wdm_engine.hpp"

// network substrate
#include "network/address.hpp"
#include "network/event_sim.hpp"
#include "network/fabric.hpp"
#include "network/packet.hpp"
#include "network/routing.hpp"
#include "network/stats.hpp"
#include "network/topology.hpp"
#include "network/traffic.hpp"
#include "network/workload.hpp"

// compute-communication protocol (paper §3)
#include "protocol/codec.hpp"
#include "protocol/compute_header.hpp"
#include "protocol/compute_routing.hpp"

// the paper's contribution (Figs. 1, 3, 4)
#include "core/compute_packets.hpp"
#include "core/optical_frame.hpp"
#include "core/photonic_engine.hpp"
#include "core/runtime.hpp"
#include "core/transponder.hpp"

// centralized controller (paper §3)
#include "controller/controller.hpp"
#include "controller/rwa.hpp"
#include "controller/service.hpp"

// digital baselines
#include "digital/cipher.hpp"
#include "digital/device_model.hpp"
#include "digital/dnn.hpp"
#include "digital/pattern.hpp"

// Table-1 use cases
#include "apps/convolution.hpp"
#include "apps/encryption.hpp"
#include "apps/intrusion_detection.hpp"
#include "apps/ip_routing.hpp"
#include "apps/load_balancing.hpp"
#include "apps/mimo.hpp"
#include "apps/ml_inference.hpp"
#include "apps/photonic_cnn.hpp"
#include "apps/video_encoding.hpp"
