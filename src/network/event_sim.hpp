// event_sim.hpp — minimal deterministic discrete-event simulator.
//
// Single-threaded, strictly ordered by (time, sequence-number) so runs are
// bit-reproducible. Everything in the WAN model — link propagation,
// transponder processing, controller reconfiguration — is an event.
//
// Two event representations share one (time, seq) order:
//   * typed packet-hop events carry a net::packet inline in a pool-backed,
//     free-listed record and dispatch through a packet_event_sink — the
//     datapath hot loop, zero heap allocations per hop at steady state;
//   * std::function callbacks for everything else (timers, flaps,
//     reconvergence), unchanged from the seed engine.
// The priority queue itself holds only 24-byte (time, seq, record-index)
// entries, so heap sifts never move packet payloads or closures.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "network/packet.hpp"

namespace onfiber::net {

/// Receiver of typed packet-hop events. `op` is an opaque discriminator
/// owned by the sink (the fabric uses it to distinguish arrivals from
/// re-injections).
class packet_event_sink {
 public:
  virtual void on_packet_event(std::uint8_t op, packet&& pkt,
                               std::uint32_t node) = 0;

 protected:
  ~packet_event_sink() = default;
};

class simulator {
 public:
  using handler = std::function<void()>;

  /// Current simulation time [s].
  [[nodiscard]] double now() const { return now_s_; }

  /// Schedule `fn` to run at now() + delay_s. Requires delay_s >= 0.
  void schedule(double delay_s, handler fn) {
    schedule_at(now_s_ + (delay_s < 0.0 ? 0.0 : delay_s), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (clamped to now()).
  void schedule_at(double time_s, handler fn) {
    const std::uint32_t idx = acquire_record();
    event_record& rec = records_[idx];
    rec.fn = std::move(fn);
    rec.sink = nullptr;
    push_entry(time_s, idx);
  }

  /// Schedule a typed packet-hop event at an absolute time (clamped to
  /// now()): at `time_s`, `sink->on_packet_event(op, pkt, node)` runs. The
  /// packet is carried inline in a recycled record — no allocation once
  /// the pool is warm.
  void schedule_packet_at(double time_s, packet&& pkt, std::uint32_t node,
                          std::uint8_t op, packet_event_sink* sink) {
    const std::uint32_t idx = acquire_record();
    event_record& rec = records_[idx];
    rec.pkt = std::move(pkt);
    rec.sink = sink;
    rec.node = node;
    rec.op = op;
    push_entry(time_s, idx);
  }

  /// Relative-time variant of schedule_packet_at.
  void schedule_packet(double delay_s, packet&& pkt, std::uint32_t node,
                       std::uint8_t op, packet_event_sink* sink) {
    schedule_packet_at(now_s_ + (delay_s < 0.0 ? 0.0 : delay_s),
                       std::move(pkt), node, op, sink);
  }

  /// No-limit sentinel for run()/run_until().
  static constexpr std::uint64_t unlimited_events = ~std::uint64_t{0};

  /// Run until the event queue drains, or until `max_events` handlers
  /// have executed. Returns the executed event count. A handler that
  /// unconditionally self-reschedules (retry timers make this easy to
  /// write) would otherwise spin run() forever; with a cap the call
  /// returns early and `overran()` reports the runaway so a test binary
  /// fails loudly instead of hanging.
  std::uint64_t run(std::uint64_t max_events = unlimited_events) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      step();
      ++executed;
    }
    overran_ = !queue_.empty() && executed >= max_events;
    return executed;
  }

  /// Did the last run()/run_until() stop at its event cap with eligible
  /// work still queued?
  [[nodiscard]] bool overran() const { return overran_; }

  /// Run until the queue drains, simulated time exceeds `until_s`, or
  /// `max_events` handlers have executed. Like run(), refreshes
  /// overran(): a prior capped run() no longer leaves a phantom overrun
  /// behind once this call drains the eligible work.
  std::uint64_t run_until(double until_s,
                          std::uint64_t max_events = unlimited_events) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().time_s <= until_s &&
           executed < max_events) {
      step();
      ++executed;
    }
    overran_ = !queue_.empty() && queue_.top().time_s <= until_s &&
               executed >= max_events;
    if (now_s_ < until_s) now_s_ = until_s;
    return executed;
  }

  /// One conservative time window (shard_engine): execute every event
  /// with time strictly below `end_s`. Unlike run_until, the bound is
  /// exclusive — events *at* end_s belong to the next window, after the
  /// cross-shard merge — and now() is left at the last executed event,
  /// not advanced to the bound (the engine advances idle shards
  /// explicitly when a global event needs a common clock).
  std::uint64_t run_window(double end_s,
                           std::uint64_t max_events = unlimited_events) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().time_s < end_s &&
           executed < max_events) {
      step();
      ++executed;
    }
    return executed;
  }

  /// Timestamp of the earliest pending event, or +infinity when idle.
  /// The shard engine's window computation reads this while the shard's
  /// worker is parked at the barrier.
  [[nodiscard]] double peek_next_time() const {
    return queue_.empty() ? std::numeric_limits<double>::infinity()
                          : queue_.top().time_s;
  }

  /// Move the clock forward to `time_s` (never backward). Used by the
  /// shard engine to put every shard on a common clock before a global
  /// (control-plane) event executes.
  void advance_to(double time_s) {
    if (time_s > now_s_) now_s_ = time_s;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  static constexpr std::uint32_t npos = ~std::uint32_t{0};

  /// Event payloads live out-of-heap in a free-listed slab; the priority
  /// queue orders lightweight references to them.
  struct event_record {
    handler fn;                        // callback events (sink == nullptr)
    packet pkt;                        // typed packet-hop payload
    packet_event_sink* sink = nullptr; // non-null marks a typed event
    std::uint32_t node = 0;
    std::uint8_t op = 0;
    std::uint32_t next_free = npos;
  };

  struct heap_entry {
    double time_s;
    std::uint64_t seq;
    std::uint32_t record;
  };

  struct later {
    bool operator()(const heap_entry& a, const heap_entry& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::uint32_t acquire_record() {
    if (free_head_ != npos) {
      const std::uint32_t idx = free_head_;
      free_head_ = records_[idx].next_free;
      records_[idx].next_free = npos;
      return idx;
    }
    records_.emplace_back();
    return static_cast<std::uint32_t>(records_.size() - 1);
  }

  void release_record(std::uint32_t idx) {
    records_[idx].next_free = free_head_;
    free_head_ = idx;
  }

  void push_entry(double time_s, std::uint32_t idx) {
    if (time_s < now_s_) time_s = now_s_;
    queue_.push(heap_entry{time_s, next_seq_++, idx});
  }

  void step() {
    const heap_entry top = queue_.top();
    queue_.pop();
    now_s_ = top.time_s;
    event_record& rec = records_[top.record];
    if (rec.sink != nullptr) {
      // Move the payload out and release the record before dispatching:
      // the sink will schedule the next hop, reusing this very slot.
      packet pkt = std::move(rec.pkt);
      packet_event_sink* sink = rec.sink;
      const std::uint32_t node = rec.node;
      const std::uint8_t op = rec.op;
      rec.sink = nullptr;
      release_record(top.record);
      sink->on_packet_event(op, std::move(pkt), node);
    } else {
      handler fn = std::move(rec.fn);
      release_record(top.record);
      fn();
    }
  }

  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool overran_ = false;
  std::vector<event_record> records_;
  std::uint32_t free_head_ = npos;
  std::priority_queue<heap_entry, std::vector<heap_entry>, later> queue_;
};

}  // namespace onfiber::net
