// event_sim.hpp — minimal deterministic discrete-event simulator.
//
// Single-threaded, strictly ordered by (time, sequence-number) so runs are
// bit-reproducible. Everything in the WAN model — link propagation,
// transponder processing, controller reconfiguration — is an event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace onfiber::net {

class simulator {
 public:
  using handler = std::function<void()>;

  /// Current simulation time [s].
  [[nodiscard]] double now() const { return now_s_; }

  /// Schedule `fn` to run at now() + delay_s. Requires delay_s >= 0.
  void schedule(double delay_s, handler fn) {
    schedule_at(now_s_ + (delay_s < 0.0 ? 0.0 : delay_s), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (clamped to now()).
  void schedule_at(double time_s, handler fn) {
    if (time_s < now_s_) time_s = now_s_;
    queue_.push(event{time_s, next_seq_++, std::move(fn)});
  }

  /// No-limit sentinel for run().
  static constexpr std::uint64_t unlimited_events = ~std::uint64_t{0};

  /// Run until the event queue drains, or until `max_events` handlers
  /// have executed. Returns the executed event count. A handler that
  /// unconditionally self-reschedules (retry timers make this easy to
  /// write) would otherwise spin run() forever; with a cap the call
  /// returns early and `overran()` reports the runaway so a test binary
  /// fails loudly instead of hanging.
  std::uint64_t run(std::uint64_t max_events = unlimited_events) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      step();
      ++executed;
    }
    overran_ = !queue_.empty() && executed >= max_events;
    return executed;
  }

  /// Did the last run() stop at its event cap with work still queued?
  [[nodiscard]] bool overran() const { return overran_; }

  /// Run until the queue drains or simulated time exceeds `until_s`.
  std::uint64_t run_until(double until_s) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().time_s <= until_s) {
      step();
      ++executed;
    }
    if (now_s_ < until_s) now_s_ = until_s;
    return executed;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct event {
    double time_s;
    std::uint64_t seq;
    handler fn;
  };

  struct later {
    bool operator()(const event& a, const event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  void step() {
    // Move the event out before running it: the handler may schedule.
    event ev = std::move(const_cast<event&>(queue_.top()));
    queue_.pop();
    now_s_ = ev.time_s;
    ev.fn();
  }

  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool overran_ = false;
  std::priority_queue<event, std::vector<event>, later> queue_;
};

}  // namespace onfiber::net
