// shard_channel.hpp — bounded SPSC parcel channel between two shards.
//
// A packet crossing a shard boundary leaves its source shard as a
// *parcel*: the packet plus the (timestamp, source-shard, per-channel
// emission sequence) triple that makes the destination's merge order a
// pure function of the schedule, independent of thread interleaving.
// Each ordered shard pair owns exactly one channel, so the ring is a
// classic single-producer / single-consumer queue: the producer is the
// source shard's worker, the consumer is the destination shard's worker
// (or the coordinator while every worker is parked at the window
// barrier — never both at once for the pop side).
//
// The ring is bounded on purpose: a producer that outruns its consumer
// stalls (shard_engine spins it, draining its own inbound channels to
// keep the fabric live) rather than growing memory or dropping parcels.
// tests/test_sharding.cpp pins both halves: the stall counter moves and
// not a single parcel is lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "network/packet.hpp"

namespace onfiber::net {

class packet_event_sink;

/// One cross-shard event in flight: a typed packet hop plus the merge
/// key (time_s, src_shard, seq) that fixes its order among every other
/// parcel entering the destination shard in the same window.
struct parcel {
  double time_s = 0.0;        ///< absolute arrival time at the dest shard
  std::uint64_t seq = 0;      ///< per-channel emission sequence
  std::uint32_t src_shard = 0;
  std::uint32_t node = 0;     ///< destination node of the hop
  std::uint8_t op = 0;        ///< packet_event_sink discriminator
  packet_event_sink* sink = nullptr;
  packet pkt;
};

/// Bounded single-producer/single-consumer ring of parcels.
class spsc_channel {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit spsc_channel(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  spsc_channel(const spsc_channel&) = delete;
  spsc_channel& operator=(const spsc_channel&) = delete;

  /// Producer side. False when the ring is full (caller must retry —
  /// parcels are never dropped).
  bool try_push(parcel&& p) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= ring_.size()) return false;
    ring_[tail % ring_.size()] = std::move(p);
    tail_.store(tail + 1, std::memory_order_release);
    const std::size_t depth = static_cast<std::size_t>(tail + 1 - head);
    if (depth > watermark_.load(std::memory_order_relaxed)) {
      watermark_.store(depth, std::memory_order_relaxed);
    }
    return true;
  }

  /// Consumer side. False when empty.
  bool try_pop(parcel& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(ring_[head % ring_.size()]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Racy by nature (either index may move underneath); exact only while
  /// the producer and consumer are quiescent. Good enough for the
  /// channel-depth gauges.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Deepest the ring has ever been (producer-maintained high-watermark;
  /// bounded by capacity()). Exact when read at quiescence.
  [[nodiscard]] std::size_t max_depth() const {
    return watermark_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<parcel> ring_;
  std::atomic<std::size_t> watermark_{0};  ///< written by producer only
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
};

}  // namespace onfiber::net
