#include "network/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "photonics/rng.hpp"

namespace onfiber::net {

node_id topology::add_node(std::string name) {
  const auto id = static_cast<node_id>(nodes_.size());
  node n;
  n.id = id;
  n.name = std::move(name);
  const auto octet = static_cast<std::uint8_t>(id & 0xff);
  const auto high = static_cast<std::uint8_t>((id >> 8) & 0xff);
  n.address = ipv4(10, high, octet, 1);
  n.attached_prefix = prefix(ipv4(10, high, octet, 0), 24);
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  caches_valid_ = false;
  return id;
}

void topology::add_link(node_id a, node_id b, double length_km,
                        double capacity_bps) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("topology: bad link endpoints");
  }
  const std::size_t idx = links_.size();
  links_.push_back(link{a, b, length_km, capacity_bps});
  adjacency_[a].push_back(idx);
  adjacency_[b].push_back(idx);
  caches_valid_ = false;
}

void topology::prime_lookup_caches() const { ensure_caches(); }

void topology::ensure_caches() const {
  if (caches_valid_) return;
  pair_link_.clear();
  pair_link_.reserve(links_.size());
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const link& l = links_[li];
    const std::uint64_t key =
        (std::uint64_t{std::min(l.a, l.b)} << 32) | std::max(l.a, l.b);
    // emplace keeps the first (lowest) link index for parallel links,
    // matching the old first-match adjacency scan.
    pair_link_.emplace(key, static_cast<std::uint32_t>(li));
  }
  addr_index_.clear();
  for (const node& n : nodes_) {
    const std::uint32_t mask = n.attached_prefix.mask();
    auto it = std::find_if(addr_index_.begin(), addr_index_.end(),
                           [mask](const auto& e) { return e.first == mask; });
    if (it == addr_index_.end()) {
      addr_index_.emplace_back(
          mask, std::vector<std::pair<std::uint32_t, node_id>>{});
      it = std::prev(addr_index_.end());
    }
    it->second.emplace_back(n.attached_prefix.network.value & mask, n.id);
  }
  for (auto& [mask, entries] : addr_index_) {
    std::sort(entries.begin(), entries.end());
  }
  caches_valid_ = true;
}

std::optional<node_id> topology::node_for_address(ipv4 addr) const {
  ensure_caches();
  // Matches the old first-contains scan over nodes_: the lowest node id
  // whose prefix covers addr, considering every distinct prefix mask.
  std::optional<node_id> best;
  for (const auto& [mask, entries] : addr_index_) {
    const std::pair<std::uint32_t, node_id> probe{addr.value & mask, 0};
    const auto it = std::lower_bound(entries.begin(), entries.end(), probe);
    if (it != entries.end() && it->first == probe.first &&
        (!best.has_value() || it->second < *best)) {
      best = it->second;
    }
  }
  return best;
}

std::vector<node_id> topology::shortest_path(
    node_id src, node_id dst, const std::vector<bool>* link_up) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("topology: bad node id");
  }
  if (link_up != nullptr && link_up->size() != links_.size()) {
    throw std::invalid_argument("topology: link_up size mismatch");
  }
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), inf);
  std::vector<node_id> prev(nodes_.size(), invalid_node);
  using entry = std::pair<double, node_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (std::size_t li : adjacency_[u]) {
      if (link_up != nullptr && !(*link_up)[li]) continue;  // failed link
      const node_id v = neighbor(u, li);
      const double nd = d + links_[li].delay_s();
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist[dst] == inf) return {};
  std::vector<node_id> path;
  for (node_id at = dst; at != invalid_node; at = prev[at]) {
    path.push_back(at);
    if (at == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::size_t topology::link_between(node_id u, node_id v) const {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    throw std::out_of_range("topology: bad node id");
  }
  ensure_caches();
  const std::uint64_t key =
      (std::uint64_t{std::min(u, v)} << 32) | std::max(u, v);
  const auto it = pair_link_.find(key);
  if (it == pair_link_.end()) {
    throw std::invalid_argument("topology: nodes not adjacent");
  }
  return it->second;
}

double topology::path_delay_s(const std::vector<node_id>& path) const {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += links_[link_between(path[i - 1], path[i])].delay_s();
  }
  return total;
}

topology make_figure1_topology() {
  topology t;
  const node_id a = t.add_node("A");
  const node_id b = t.add_node("B");
  const node_id c = t.add_node("C");
  const node_id d = t.add_node("D");
  t.add_link(a, b, 400.0);
  t.add_link(a, c, 500.0);
  t.add_link(b, d, 450.0);
  t.add_link(c, d, 350.0);
  t.add_link(a, d, 1200.0);  // direct but long
  return t;
}

topology make_linear_topology(std::size_t n, double hop_km) {
  if (n < 2) throw std::invalid_argument("make_linear_topology: n >= 2");
  topology t;
  for (std::size_t i = 0; i < n; ++i) {
    t.add_node("n" + std::to_string(i));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_link(static_cast<node_id>(i), static_cast<node_id>(i + 1), hop_km);
  }
  return t;
}

topology make_uswan_topology() {
  topology t;
  // Abstracted Internet2-like backbone.
  const node_id sea = t.add_node("Seattle");
  const node_id sfo = t.add_node("SanFrancisco");
  const node_id lax = t.add_node("LosAngeles");
  const node_id slc = t.add_node("SaltLake");
  const node_id den = t.add_node("Denver");
  const node_id hou = t.add_node("Houston");
  const node_id kan = t.add_node("KansasCity");
  const node_id chi = t.add_node("Chicago");
  const node_id atl = t.add_node("Atlanta");
  const node_id dc = t.add_node("WashingtonDC");
  const node_id nyc = t.add_node("NewYork");
  const node_id bos = t.add_node("Boston");
  t.add_link(sea, sfo, 1100.0);
  t.add_link(sea, slc, 1130.0);
  t.add_link(sfo, lax, 600.0);
  t.add_link(sfo, slc, 960.0);
  t.add_link(lax, hou, 2200.0);
  t.add_link(slc, den, 600.0);
  t.add_link(den, kan, 900.0);
  t.add_link(hou, kan, 1180.0);
  t.add_link(hou, atl, 1130.0);
  t.add_link(kan, chi, 660.0);
  t.add_link(chi, nyc, 1140.0);
  t.add_link(atl, dc, 870.0);
  t.add_link(dc, nyc, 330.0);
  t.add_link(nyc, bos, 310.0);
  t.add_link(chi, dc, 960.0);
  return t;
}

topology make_fattree_topology(int k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("make_fattree_topology: k must be even >= 2");
  }
  topology t;
  const int half = k / 2;
  const int core_count = half * half;
  std::vector<node_id> core;
  core.reserve(static_cast<std::size_t>(core_count));
  for (int i = 0; i < core_count; ++i) {
    core.push_back(t.add_node("core" + std::to_string(i)));
  }
  // Pods: per pod, k/2 aggregation + k/2 edge switches.
  constexpr double dc_link_km = 0.1;  // 100 m intra-DC links
  for (int pod = 0; pod < k; ++pod) {
    std::vector<node_id> agg, edge;
    for (int i = 0; i < half; ++i) {
      agg.push_back(
          t.add_node("agg" + std::to_string(pod) + "_" + std::to_string(i)));
    }
    for (int i = 0; i < half; ++i) {
      edge.push_back(
          t.add_node("edge" + std::to_string(pod) + "_" + std::to_string(i)));
    }
    for (int a = 0; a < half; ++a) {
      for (int e = 0; e < half; ++e) {
        t.add_link(agg[static_cast<std::size_t>(a)],
                   edge[static_cast<std::size_t>(e)], dc_link_km);
      }
      // Each aggregation switch connects to k/2 distinct core switches.
      for (int c = 0; c < half; ++c) {
        t.add_link(agg[static_cast<std::size_t>(a)],
                   core[static_cast<std::size_t>(a * half + c)], dc_link_km);
      }
    }
  }
  return t;
}


topology make_waxman_topology(std::size_t n, std::uint64_t seed, double alpha,
                              double beta, double span_km) {
  if (n < 2) throw std::invalid_argument("make_waxman_topology: n >= 2");
  if (alpha <= 0.0 || beta <= 0.0 || span_km <= 0.0) {
    throw std::invalid_argument("make_waxman_topology: bad parameters");
  }
  phot::rng gen(seed);
  topology t;
  std::vector<std::pair<double, double>> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add_node("w" + std::to_string(i));
    pos[i] = {gen.uniform(0.0, span_km), gen.uniform(0.0, span_km)};
  }
  const double diag = span_km * std::sqrt(2.0);
  const auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = pos[a].first - pos[b].first;
    const double dy = pos[a].second - pos[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  // Spanning chain keeps the graph connected regardless of the draw.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_link(static_cast<node_id>(i), static_cast<node_id>(i + 1),
               std::max(1.0, dist(i, i + 1)));
  }
  // Waxman extras.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      const double d = dist(i, j);
      const double p = alpha * std::exp(-d / (beta * diag));
      if (gen.uniform() < p) {
        t.add_link(static_cast<node_id>(i), static_cast<node_id>(j),
                   std::max(1.0, d));
      }
    }
  }
  return t;
}

std::vector<std::uint32_t> partition_topology(const topology& topo,
                                              std::size_t shards) {
  const std::size_t n = topo.node_count();
  std::vector<std::uint32_t> part(n, 0);
  if (shards <= 1 || n <= 1) return part;
  const auto k = static_cast<std::uint32_t>(std::min(shards, n));

  // Degree census: chains and rings (max degree 2) get the exact
  // contiguous cut; everything else goes through the heuristic below.
  std::size_t max_degree = 0;
  for (node_id u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, topo.incident_links(u).size());
  }
  if (max_degree <= 2) {
    for (node_id u = 0; u < n; ++u) {
      part[u] = static_cast<std::uint32_t>(
          static_cast<std::size_t>(u) * k / n);
    }
    return part;
  }

  // Mesh: grow k regions of ~equal size by BFS, seeding each from the
  // lowest-id unassigned node. BFS frontiers are id-ordered queues, so
  // the result is deterministic.
  constexpr std::uint32_t unassigned = ~std::uint32_t{0};
  part.assign(n, unassigned);
  std::vector<std::size_t> shard_size(k, 0);
  const std::size_t target = (n + k - 1) / k;
  node_id scan = 0;
  for (std::uint32_t s = 0; s < k; ++s) {
    while (scan < n && part[scan] != unassigned) ++scan;
    if (scan >= n) break;
    std::vector<node_id> frontier{scan};
    part[scan] = s;
    ++shard_size[s];
    for (std::size_t head = 0;
         head < frontier.size() && shard_size[s] < target; ++head) {
      const node_id u = frontier[head];
      for (const std::size_t li : topo.incident_links(u)) {
        const node_id v = topo.neighbor(u, li);
        if (part[v] != unassigned || shard_size[s] >= target) continue;
        part[v] = s;
        ++shard_size[s];
        frontier.push_back(v);
      }
    }
  }
  // Disconnected leftovers (BFS exhausted early): pack into the
  // emptiest shard, lowest index winning ties.
  for (node_id u = 0; u < n; ++u) {
    if (part[u] != unassigned) continue;
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < k; ++s) {
      if (shard_size[s] < shard_size[best]) best = s;
    }
    part[u] = best;
    ++shard_size[best];
  }

  // Min-cut refinement: move boundary nodes to the neighboring shard
  // holding most of their edges when that strictly cuts fewer links and
  // keeps both parts' sizes within [target/2, target+1]. Two id-ordered
  // passes catch the bulk of BFS's ragged frontiers.
  const std::size_t floor_size = std::max<std::size_t>(1, target / 2);
  for (int pass = 0; pass < 2; ++pass) {
    for (node_id u = 0; u < n; ++u) {
      const std::uint32_t home = part[u];
      if (shard_size[home] <= floor_size) continue;
      // Count u's links into each adjacent shard.
      std::vector<std::size_t> pull(k, 0);
      for (const std::size_t li : topo.incident_links(u)) {
        ++pull[part[topo.neighbor(u, li)]];
      }
      std::uint32_t best = home;
      for (std::uint32_t s = 0; s < k; ++s) {
        if (s == home || pull[s] == 0) continue;
        if (shard_size[s] >= target + 1) continue;
        if (pull[s] > pull[best] ||
            (pull[s] == pull[best] && s < best)) {
          best = s;
        }
      }
      if (best != home && pull[best] > pull[home]) {
        part[u] = best;
        --shard_size[home];
        ++shard_size[best];
      }
    }
  }
  return part;
}

}  // namespace onfiber::net
