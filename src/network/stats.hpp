// stats.hpp — small statistics helpers used by tests and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace onfiber::net {

/// Accumulates samples and reports summary statistics.
class summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_dirty_ = true;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

  [[nodiscard]] double min() const {
    return samples_.empty() ? 0.0 : sorted().front();
  }

  [[nodiscard]] double max() const {
    return samples_.empty() ? 0.0 : sorted().back();
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double pct) const {
    if (samples_.empty()) return 0.0;
    if (pct < 0.0 || pct > 100.0) {
      throw std::invalid_argument("summary: percentile out of range");
    }
    const std::vector<double>& s = sorted();
    const auto rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(s.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return s[std::min(idx, s.size() - 1)];
  }

  /// The samples in insertion order — guaranteed: order statistics work
  /// on a lazily sorted scratch copy, so calling percentile()/min()/max()
  /// never reorders what this returns.
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }

 private:
  /// Lazily sorted scratch copy; rebuilt after adds, never touching the
  /// insertion-ordered samples_.
  const std::vector<double>& sorted() const {
    if (sorted_dirty_) {
      sorted_scratch_ = samples_;
      std::sort(sorted_scratch_.begin(), sorted_scratch_.end());
      sorted_dirty_ = false;
    }
    return sorted_scratch_;
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_scratch_;
  mutable bool sorted_dirty_ = false;
};

/// Jain's fairness index of a load vector: (sum x)^2 / (n * sum x^2).
/// 1.0 == perfectly balanced; 1/n == all load on one element.
[[nodiscard]] inline double jain_fairness(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double x : loads) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(loads.size()) * sq);
}

}  // namespace onfiber::net
