// address.hpp — IPv4-style addressing and prefixes for the WAN simulator.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace onfiber::net {

/// IPv4 address as a host-order 32-bit integer.
struct ipv4 {
  std::uint32_t value = 0;

  constexpr ipv4() = default;
  explicit constexpr ipv4(std::uint32_t v) : value(v) {}
  constexpr ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  auto operator<=>(const ipv4&) const = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(value >> 24) + "." +
           std::to_string((value >> 16) & 0xff) + "." +
           std::to_string((value >> 8) & 0xff) + "." +
           std::to_string(value & 0xff);
  }
};

/// Parse dotted-quad text (throws std::invalid_argument on bad input).
[[nodiscard]] inline ipv4 parse_ipv4(const std::string& text) {
  std::uint32_t parts[4] = {0, 0, 0, 0};
  int part = 0;
  bool digit_seen = false;
  for (char ch : text) {
    if (ch == '.') {
      if (!digit_seen || part == 3) {
        throw std::invalid_argument("parse_ipv4: malformed address " + text);
      }
      ++part;
      digit_seen = false;
    } else if (ch >= '0' && ch <= '9') {
      parts[part] = parts[part] * 10 + static_cast<std::uint32_t>(ch - '0');
      if (parts[part] > 255) {
        throw std::invalid_argument("parse_ipv4: octet > 255 in " + text);
      }
      digit_seen = true;
    } else {
      throw std::invalid_argument("parse_ipv4: bad character in " + text);
    }
  }
  if (!digit_seen || part != 3) {
    throw std::invalid_argument("parse_ipv4: malformed address " + text);
  }
  return ipv4(static_cast<std::uint8_t>(parts[0]),
              static_cast<std::uint8_t>(parts[1]),
              static_cast<std::uint8_t>(parts[2]),
              static_cast<std::uint8_t>(parts[3]));
}

/// CIDR prefix: address/length.
struct prefix {
  ipv4 network{};
  int length = 0;  ///< 0..32

  constexpr prefix() = default;
  constexpr prefix(ipv4 net, int len) : network(net), length(len) {}

  /// Mask with the top `length` bits set.
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  }

  /// Does this prefix cover the address?
  [[nodiscard]] constexpr bool contains(ipv4 addr) const {
    return (addr.value & mask()) == (network.value & mask());
  }

  auto operator<=>(const prefix&) const = default;

  [[nodiscard]] std::string to_string() const {
    return network.to_string() + "/" + std::to_string(length);
  }
};

}  // namespace onfiber::net
