// routing.hpp — longest-prefix-match forwarding tables.
//
// Two implementations with identical semantics:
//   * `routing_table`      — binary trie, the production structure;
//   * `linear_routing_ref` — O(n) scan reference used by property tests
//     to check the trie against first principles.
//
// The table maps prefixes to an opaque next-hop value (node id + egress
// link in the simulator; anything in tests).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "network/address.hpp"

namespace onfiber::net {

/// Binary-trie LPM table mapping prefix -> Value.
template <typename Value>
class routing_table {
 public:
  /// Insert/replace the value for a prefix.
  void insert(prefix p, Value v) {
    trie_node* cur = &root_;
    const std::uint32_t bits = p.network.value & p.mask();
    for (int depth = 0; depth < p.length; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = cur->children[bit];
      if (!child) child = std::make_unique<trie_node>();
      cur = child.get();
    }
    cur->value = std::move(v);
  }

  /// Remove a prefix's entry (no-op if absent). Returns true if removed.
  bool erase(prefix p) {
    trie_node* cur = &root_;
    const std::uint32_t bits = p.network.value & p.mask();
    for (int depth = 0; depth < p.length; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      cur = cur->children[bit].get();
      if (cur == nullptr) return false;
    }
    const bool had = cur->value.has_value();
    cur->value.reset();
    return had;
  }

  /// Longest-prefix-match lookup.
  [[nodiscard]] std::optional<Value> lookup(ipv4 addr) const {
    const Value* best = lookup_ptr(addr);
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  /// Non-copying LPM lookup: a pointer into the trie (invalidated by
  /// insert/erase), or nullptr when no prefix matches. The datapath hot
  /// loop uses this to avoid materializing an optional per packet-hop.
  [[nodiscard]] const Value* lookup_ptr(ipv4 addr) const {
    const Value* best = nullptr;
    const trie_node* cur = &root_;
    if (cur->value) best = &*cur->value;
    for (int depth = 0; depth < 32 && cur != nullptr; ++depth) {
      const int bit = (addr.value >> (31 - depth)) & 1;
      cur = cur->children[bit].get();
      if (cur != nullptr && cur->value) best = &*cur->value;
    }
    return best;
  }

  /// Number of stored entries.
  [[nodiscard]] std::size_t size() const { return count(root_); }

 private:
  struct trie_node {
    std::optional<Value> value;
    std::unique_ptr<trie_node> children[2];
  };

  static std::size_t count(const trie_node& n) {
    std::size_t c = n.value.has_value() ? 1 : 0;
    for (const auto& child : n.children) {
      if (child) c += count(*child);
    }
    return c;
  }

  trie_node root_;
};

/// Reference implementation: linear scan keeping the longest match.
template <typename Value>
class linear_routing_ref {
 public:
  void insert(prefix p, Value v) {
    for (auto& e : entries_) {
      if (e.p == p) {
        e.v = std::move(v);
        return;
      }
    }
    entries_.push_back({p, std::move(v)});
  }

  bool erase(prefix p) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].p == p) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::optional<Value> lookup(ipv4 addr) const {
    const entry* best = nullptr;
    for (const auto& e : entries_) {
      if (e.p.contains(addr) &&
          (best == nullptr || e.p.length > best->p.length)) {
        best = &e;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->v;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct entry {
    prefix p;
    Value v;
  };
  std::vector<entry> entries_;
};

}  // namespace onfiber::net
