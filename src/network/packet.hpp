// packet.hpp — the simulator's packet representation.
//
// A deliberately small IP-like header plus an opaque byte payload. The
// compute-communication protocol (src/protocol) layers its own header
// inside the payload, exactly as the paper proposes ("layered on top of
// the IP header", §3).
#pragma once

#include <cstdint>
#include <vector>

#include "network/address.hpp"

namespace onfiber::net {

/// Transport protocol selector. `compute` marks packets that carry an
/// on-fiber compute header as the first payload bytes.
enum class ip_proto : std::uint8_t {
  udp = 17,
  tcp = 6,
  compute = 253,  ///< experimental/testing value per RFC 3692
};

/// Simulator packet. Copyable; payload is owned.
struct packet {
  // --- wire-visible fields -------------------------------------------
  ipv4 src{};
  ipv4 dst{};
  std::uint8_t ttl = 64;
  ip_proto proto = ip_proto::udp;
  std::vector<std::uint8_t> payload;

  // --- simulation bookkeeping (not on the wire) ----------------------
  std::uint64_t id = 0;           ///< unique per simulation
  double created_s = 0.0;         ///< creation timestamp
  std::uint32_t flow_hash = 0;    ///< 5-tuple-style hash for ECMP/LB

  /// Destination-node cache maintained by the fabric (never trusted
  /// blindly: revalidated against the node's attached prefix on every
  /// use, so a hook that rewrites dst just falls back to the slow path).
  std::uint32_t dest_hint = ~std::uint32_t{0};

  /// Packet-lifecycle trace key (obs::tracer): assigned by the fabric on
  /// first injection while tracing is enabled, 0 otherwise. Copies made
  /// for retransmission start at 0 again, so every transmission gets its
  /// own per-hop record chain.
  std::uint32_t trace_id = 0;

  /// Reliability failover pin: retransmit copies of a task the
  /// controller re-homed carry the alternate compute site here, so
  /// in-transit redirection is decided from packet state alone instead
  /// of a task-table lookup (which would cross shards in the parallel
  /// engine). ~0 = unpinned.
  std::uint32_t pinned_site = ~std::uint32_t{0};

  /// Serialized size on the wire [bytes]: 20-byte IP header + payload.
  [[nodiscard]] std::size_t wire_bytes() const {
    return 20 + payload.size();
  }
};

/// Free list of payload buffers. Packets that die inside the fabric
/// (delivered or dropped) donate their payload allocation back here, and
/// new packets can start from a recycled buffer instead of a cold
/// std::vector — at steady state the forwarding loop allocates nothing.
/// Value semantics are untouched: a recycled buffer is always cleared
/// before reuse.
class payload_pool {
 public:
  /// An empty buffer, reusing a pooled allocation when one is available.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  /// Donate a buffer's allocation. Empty-capacity buffers (moved-from
  /// payloads) are ignored; the pool is capped so pathological traffic
  /// cannot hoard memory.
  void recycle(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || free_.size() >= max_buffers_) return;
    free_.push_back(std::move(buf));
  }
  void recycle(packet&& pkt) { recycle(std::move(pkt.payload)); }

  [[nodiscard]] std::size_t size() const { return free_.size(); }
  void set_max_buffers(std::size_t n) { max_buffers_ = n; }

 private:
  std::size_t max_buffers_ = 4096;
  std::vector<std::vector<std::uint8_t>> free_;
};

/// FNV-1a over the fields that define a flow; used for ECMP hashing.
[[nodiscard]] inline std::uint32_t flow_hash_of(ipv4 src, ipv4 dst,
                                                std::uint16_t src_port,
                                                std::uint16_t dst_port,
                                                std::uint8_t proto) {
  std::uint32_t h = 2166136261U;
  const auto mix = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 16777619U;
    }
  };
  mix(src.value);
  mix(dst.value);
  mix((std::uint32_t{src_port} << 16) | dst_port);
  mix(proto);
  return h;
}

}  // namespace onfiber::net
