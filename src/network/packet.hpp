// packet.hpp — the simulator's packet representation.
//
// A deliberately small IP-like header plus an opaque byte payload. The
// compute-communication protocol (src/protocol) layers its own header
// inside the payload, exactly as the paper proposes ("layered on top of
// the IP header", §3).
#pragma once

#include <cstdint>
#include <vector>

#include "network/address.hpp"

namespace onfiber::net {

/// Transport protocol selector. `compute` marks packets that carry an
/// on-fiber compute header as the first payload bytes.
enum class ip_proto : std::uint8_t {
  udp = 17,
  tcp = 6,
  compute = 253,  ///< experimental/testing value per RFC 3692
};

/// Simulator packet. Copyable; payload is owned.
struct packet {
  // --- wire-visible fields -------------------------------------------
  ipv4 src{};
  ipv4 dst{};
  std::uint8_t ttl = 64;
  ip_proto proto = ip_proto::udp;
  std::vector<std::uint8_t> payload;

  // --- simulation bookkeeping (not on the wire) ----------------------
  std::uint64_t id = 0;           ///< unique per simulation
  double created_s = 0.0;         ///< creation timestamp
  std::uint32_t flow_hash = 0;    ///< 5-tuple-style hash for ECMP/LB

  /// Serialized size on the wire [bytes]: 20-byte IP header + payload.
  [[nodiscard]] std::size_t wire_bytes() const {
    return 20 + payload.size();
  }
};

/// FNV-1a over the fields that define a flow; used for ECMP hashing.
[[nodiscard]] inline std::uint32_t flow_hash_of(ipv4 src, ipv4 dst,
                                                std::uint16_t src_port,
                                                std::uint16_t dst_port,
                                                std::uint8_t proto) {
  std::uint32_t h = 2166136261U;
  const auto mix = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 16777619U;
    }
  };
  mix(src.value);
  mix(dst.value);
  mix((std::uint32_t{src_port} << 16) | dst_port);
  mix(proto);
  return h;
}

}  // namespace onfiber::net
