// fabric.hpp — the packet-forwarding WAN: topology + routers + links,
// driven by the discrete-event simulator.
//
// Each node runs a longest-prefix-match router. Links model serialization
// (bytes/capacity) plus fiber propagation delay, with FIFO queueing per
// link direction. A per-node intercept hook lets higher layers (the
// on-fiber runtime in src/core) examine and mutate packets in flight and
// override forwarding — that hook is exactly where photonic compute
// transponders attach, mirroring Fig. 4's "transponder plugged into the
// router" placement.
//
// The hot loop is allocation-free at steady state: hops ride typed
// packet events (event_sim.hpp), payload buffers recycle through a
// payload_pool, and converged routes are served from flat per-node
// next-hop caches (the LPM trie stays the source of truth and the slow
// path for anything the caches cannot prove fresh).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "network/event_sim.hpp"
#include "network/shard_engine.hpp"
#include "network/packet.hpp"
#include "network/routing.hpp"
#include "network/spf.hpp"
#include "network/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "photonics/rng.hpp"

namespace onfiber::net {

/// What a node-level hook wants done with a packet.
struct hook_decision {
  enum class action_type {
    continue_forwarding,  ///< normal LPM forwarding
    redirect,             ///< forward toward `redirect_to` instead
    consume,              ///< packet is absorbed at this node
    drop,                 ///< discard (counts as a drop)
  };
  action_type action = action_type::continue_forwarding;
  node_id redirect_to = invalid_node;
};

/// Per-reason drop counters; dropped() is their sum.
struct drop_stats {
  std::uint64_t ttl_expired = 0;   ///< TTL hit zero before delivery
  std::uint64_t link_down = 0;     ///< black-holed into a failed link
  std::uint64_t no_route = 0;      ///< no LPM entry for the destination
  std::uint64_t hook_drop = 0;     ///< a node hook said drop
  std::uint64_t bad_redirect = 0;  ///< hook redirect to an invalid node

  [[nodiscard]] std::uint64_t total() const {
    return ttl_expired + link_down + no_route + hook_drop + bad_redirect;
  }
};

class wan_fabric final : public packet_event_sink {
 public:
  /// Called when a packet reaches the node owning its destination prefix.
  using deliver_fn = std::function<void(const packet&, node_id, double)>;
  /// Per-node intercept, called on every packet transiting the node
  /// (including at the destination, before delivery). On `consume` the
  /// hook may steal the packet's payload (std::move) — the fabric is done
  /// with it.
  using hook_fn = std::function<hook_decision(node_id, packet&, double)>;

  wan_fabric(simulator& sim, topology topo);

  /// Sharded-mode fabric: the topology is partitioned across the
  /// engine's shards (partition_topology), a packet crossing a shard
  /// boundary rides the engine's bounded parcel channels, and
  /// control-plane work (flaps, reconvergence) runs as coordinator
  /// global events. The engine's lookahead is set to the minimum
  /// cross-shard link delay. With a 1-shard engine every code path is
  /// the classic one — behavior is bit-identical to the simulator
  /// constructor above.
  wan_fabric(shard_engine& engine, topology topo);

  /// Install shortest-path (by delay) routes for every node pair,
  /// avoiding failed links. Call again after fail_link/restore_link to
  /// reconverge. The first call builds the incremental-SPF engine's
  /// per-source trees and writes every route; later calls patch only the
  /// routes whose first hop the engine's delta passes changed —
  /// bit-identical tables either way (the Spf/Routing suites pin it).
  void install_shortest_path_routes();

  /// Take a link out of service: packets queued onto it are lost, routes
  /// keep pointing at it until reinstalled (the reconvergence window —
  /// the SPF engine delta-updates its trees eagerly here, but the
  /// datapath tables/caches stay stale until the install call).
  void fail_link(std::size_t link_index);
  void restore_link(std::size_t link_index);

  /// One scripted link outage: the link goes down at `fail_at_s` and
  /// comes back at `restore_at_s` (simulation time).
  struct link_flap {
    std::size_t link_index = 0;
    double fail_at_s = 0.0;
    double restore_at_s = 0.0;
  };

  /// Fault-injection schedule (§5 WAN realities): each flap fails and
  /// later restores its link; after every state change the routing plane
  /// reconverges (install_shortest_path_routes) only once
  /// `reconvergence_delay_s` has elapsed — in that window packets chase
  /// stale routes into the dead link and are black-holed. A deterministic
  /// phot::rng stream seeded with `jitter_seed` adds up to
  /// `reconvergence_jitter_s` of extra per-event reconvergence delay, so
  /// schedules are bit-reproducible per seed.
  void schedule_flaps(std::span<const link_flap> flaps,
                      double reconvergence_delay_s,
                      std::uint64_t jitter_seed = 0,
                      double reconvergence_jitter_s = 0.0);

  /// Routing-plane reconvergences executed so far (scheduled flaps only).
  [[nodiscard]] std::uint64_t reconvergences() const {
    return reconvergences_;
  }

  /// Called synchronously at the end of every
  /// install_shortest_path_routes() — scheduled-flap reconvergences and
  /// manual reinstallation alike — so higher layers can refresh state
  /// they derived from the routing plane (the runtime rebuilds its
  /// spread-steering tables here; see ISSUE 5's stale-steering fix).
  using reconvergence_fn = std::function<void()>;
  void set_reconvergence_callback(reconvergence_fn cb) {
    on_reconverge_ = std::move(cb);
  }
  [[nodiscard]] bool link_is_up(std::size_t link_index) const {
    return link_up_.at(link_index);
  }
  /// Current link states (for higher layers computing their own paths).
  [[nodiscard]] const std::vector<bool>& links_up() const { return link_up_; }

  /// Install or replace the intercept hook at one node.
  void set_hook(node_id at, hook_fn hook);

  void set_deliver_callback(deliver_fn cb) { on_deliver_ = std::move(cb); }

  /// Inject a packet at a node; forwarding begins immediately. Packets
  /// still carrying the struct default TTL (64) are stamped with
  /// recommended_ttl() so a long-diameter topology cannot silently
  /// black-hole default-constructed traffic; an explicitly set TTL is
  /// honored as-is.
  void send(packet pkt, node_id ingress);

  /// TTL that survives this topology: twice the hop diameter (detours —
  /// failover pins, hook redirects, delay-metric routes longer than the
  /// min-hop path — can exceed one diameter) plus margin, clamped to
  /// [64, 255].
  [[nodiscard]] std::uint8_t recommended_ttl() const {
    return recommended_ttl_;
  }

  /// Failure injection: flip payload bits with this per-bit probability
  /// on every link traversal (uncorrected post-FEC error floor). 0
  /// disables. Deterministic per seed: draws come from counter-based
  /// streams keyed on (seed, link, direction, per-direction transmit
  /// sequence), so the corruption pattern is a pure function of each
  /// packet's traversal history — bit-identical at any shard count, on
  /// reruns, and regardless of when this is called (reseeding mid-run
  /// is an ordinary control-plane event; see the .cpp note).
  void set_bit_error_rate(double ber, std::uint64_t seed);

  /// Packets that suffered at least one bit flip so far.
  [[nodiscard]] std::uint64_t corrupted() const {
    std::uint64_t total = 0;
    for (const auto& s : shard_states_) total += s->corrupted;
    return total;
  }

  [[nodiscard]] const topology& topo() const { return topo_; }
  /// The incremental-SPF engine tracking this fabric's link state. Its
  /// trees always reflect the *current* link_up_ (eagerly delta-updated
  /// by fail_link/restore_link), not the possibly stale installed
  /// routes. Higher layers (controller failover planning, compute-route
  /// install) query paths/delays here instead of re-running Dijkstra.
  /// Mutations happen on the control plane only; after the first
  /// install, shard-thread queries are pure reads.
  [[nodiscard]] spf_engine& spf() { return spf_; }
  /// Classic mode: the driving simulator. Sharded mode: shard 0 (use
  /// engine()->run(), not sim().run(), to drive a sharded fabric).
  [[nodiscard]] simulator& sim() { return sim_; }

  // ---------------------------------------------------------- sharding
  /// More than one shard? (A 1-shard engine still reports false: it is
  /// the classic datapath in every observable way.)
  [[nodiscard]] bool sharded() const {
    return engine_ != nullptr && engine_->shard_count() > 1;
  }
  [[nodiscard]] std::size_t shard_count() const {
    return shard_states_.size();
  }
  [[nodiscard]] std::uint32_t shard_of(node_id at) const {
    return node_shard_[at];
  }
  /// The event loop owning `at` (sim() itself in classic mode). Code
  /// running inside a hook at node X may schedule through sim_for(X)
  /// only — other shards' queues belong to other threads.
  [[nodiscard]] simulator& sim_for(node_id at) {
    return engine_ != nullptr ? engine_->shard(node_shard_[at]) : sim_;
  }
  /// The sharded engine, or nullptr for a classic fabric.
  [[nodiscard]] shard_engine* engine() { return engine_; }

  /// Recycled payload buffers: senders can acquire() here so steady-state
  /// traffic reuses the allocations of delivered/dropped packets. Shard
  /// 0's pool — setup-time callers only in sharded mode; code running on
  /// a shard thread must use pool_of(its own node).
  [[nodiscard]] payload_pool& pool() { return shard_states_[0]->pool; }

  /// The payload pool owned by `at`'s shard (== pool() in classic mode).
  [[nodiscard]] payload_pool& pool_of(node_id at) {
    return state_of(at).pool;
  }

  /// Current routing-table next hop at `at` toward `dst` (nullopt when
  /// the table has no route). Lets higher layers — the reliability
  /// layer's failover steering — follow the same converged routes the
  /// data plane uses instead of a stale private copy.
  [[nodiscard]] std::optional<node_id> next_hop(node_id at, ipv4 dst) const;

  /// Converged next hop from `at` toward destination *node* `dest`, from
  /// the flat post-convergence route cache (invalid_node when
  /// unreachable or out of range). Reflects exactly the routes the data
  /// plane forwards on — including staleness inside a flap's
  /// reconvergence window.
  [[nodiscard]] node_id next_hop_to_node(node_id at, node_id dest) const;

  /// Typed packet-hop dispatch (packet_event_sink). Not for direct use;
  /// public only because the runtime schedules held packets back through
  /// the simulator with `op_inject`.
  static constexpr std::uint8_t op_arrive = 0;  ///< hop lands at `node`
  static constexpr std::uint8_t op_inject = 1;  ///< send(pkt, node) now
  void on_packet_event(std::uint8_t op, packet&& pkt,
                       std::uint32_t node) override;

  // ------------------------------------------------------------- stats
  //
  // Counters live per shard (each mutated only by its owning event
  // loop); the accessors sum across shards. Integer sums are
  // order-independent, so the totals are deterministic at any shard
  // count.
  [[nodiscard]] std::uint64_t delivered() const {
    std::uint64_t total = 0;
    for (const auto& s : shard_states_) total += s->delivered;
    return total;
  }
  [[nodiscard]] std::uint64_t dropped() const { return drops().total(); }
  /// Per-reason drop breakdown (summed across shards).
  [[nodiscard]] const drop_stats& drops() const;
  /// Bytes carried per link index (both directions), for load metrics.
  [[nodiscard]] const std::vector<double>& link_bytes() const;

 private:
  /// Common constructor (exactly one of sim / engine is non-null).
  wan_fabric(simulator* sim, shard_engine* engine, topology topo);

  struct route_entry {
    node_id next = invalid_node;
  };

  static constexpr std::uint32_t no_link = ~std::uint32_t{0};

  /// Flat post-convergence route: next hop + precomputed egress link for
  /// one (node, destination-node) pair. `next == invalid_node` means the
  /// trie must decide (unreachable, or a route the cache can't mirror).
  struct flat_route {
    node_id next = invalid_node;
    std::uint32_t link = no_link;
  };

  /// send() minus the default-TTL stamp: the op_inject re-entry path
  /// (runtime compute re-injection) must not refresh a packet's
  /// remaining TTL mid-journey.
  void inject(packet pkt, node_id ingress);

  void arrive(packet pkt, node_id at);
  void forward_to(packet pkt, node_id from, node_id next);
  void forward_on(packet pkt, node_id from, node_id next, std::size_t li);

  /// Egress link index from `from` toward adjacent `next`.
  [[nodiscard]] std::size_t egress_link(node_id from, node_id next) const;

  /// Destination node for `pkt.dst`, maintaining pkt.dest_hint: the hint
  /// is revalidated against the node's attached prefix and re-resolved
  /// through the destination trie when stale. invalid_node when no
  /// attached prefix covers dst.
  [[nodiscard]] node_id resolve_dest(packet& pkt) const;

  /// Record one lifecycle hop for `pkt` (tracing enabled only). `now_s`
  /// is the caller's already-loaded shard clock: hot-path call sites
  /// must not re-read a clock (or evaluate anything else) just to trace.
  void trace_hop(const packet& pkt, node_id at, double now_s,
                 obs::hop_action action, obs::drop_reason reason,
                 std::uint32_t aux);

  /// Control-plane scheduling: a coordinator global event in sharded
  /// mode, a plain sim_ event otherwise (identical with a 1-shard
  /// engine — schedule_global forwards to the same queue).
  void schedule_control(double time_s, simulator::handler fn);

  simulator& sim_;
  shard_engine* engine_ = nullptr;
  topology topo_;
  spf_engine spf_;  ///< per-source SSSP trees over topo_, delta-repaired
  std::vector<routing_table<route_entry>> tables_;  // one per node
  std::vector<hook_fn> hooks_;                      // one per node (may be null)
  deliver_fn on_deliver_;
  reconvergence_fn on_reconverge_;

  /// attached_prefix -> owning node, for dest_hint resolution (built
  /// once; topology is immutable).
  routing_table<node_id> dest_of_;
  /// flat_routes_[at * n + dest_node]; rebuilt on every reconvergence.
  std::vector<flat_route> flat_routes_;
  /// egress_matrix_[from * n + to]: first link index joining the pair in
  /// incident order, or no_link (mirrors egress_link()'s scan).
  std::vector<std::uint32_t> egress_matrix_;

  /// Mutable datapath state owned by one shard's event loop: counters,
  /// the payload pool, the BER stream and its scratch. Classic fabrics
  /// have exactly one. Cache-line aligned so two shards' counters never
  /// false-share.
  struct alignas(64) shard_state {
    std::uint64_t delivered = 0;
    std::uint64_t corrupted = 0;
    drop_stats drops;
    payload_pool pool;
    std::vector<std::uint64_t> flip_scratch;  ///< bit positions of one draw
    bool ttl_warned = false;  ///< one-shot TTL-blackhole warning latch
  };
  [[nodiscard]] shard_state& state_of(node_id at) {
    return *shard_states_[node_shard_[at]];
  }

  std::vector<std::unique_ptr<shard_state>> shard_states_;
  std::vector<std::uint32_t> node_shard_;  ///< node -> owning shard

  /// Maybe corrupt a packet in flight (failure injection). `ss` is the
  /// forwarding shard's state (scratch + counter); `li`/`dir` identify
  /// the link direction being traversed, which keys the error stream.
  void apply_bit_errors(shard_state& ss, packet& pkt, std::size_t li,
                        int dir);

  /// Latch-once stderr warning when a shard's ttl-expired drops exceed
  /// its deliveries — the signature of a default TTL too small for the
  /// topology (use recommended_ttl()).
  void warn_ttl_blackhole(shard_state& ss);

  // Per-link, per-direction transmit availability time (FIFO model).
  // Direction 0: a->b, 1: b->a. Each direction of a cross-shard link is
  // written only by the shard owning its sending endpoint.
  std::vector<std::array<double, 2>> link_free_at_;
  /// Per-link, per-direction transmit sequence numbers — the counter
  /// half of the BER stream key. Single-writer like link_free_at_, and
  /// advanced on every traversal (BER on or off) so the stream a given
  /// traversal draws from never depends on when BER was (re)configured.
  std::vector<std::array<std::uint64_t, 2>> link_tx_seq_;
  /// Bytes carried, split per direction for the same single-writer
  /// reason; link_bytes() sums a+b in fixed order (wire bytes are
  /// integer-valued doubles, so the split sum is bit-exact regardless).
  std::vector<std::array<double, 2>> link_bytes_dir_;
  mutable std::vector<double> link_bytes_cache_;
  mutable drop_stats drops_cache_;

  double bit_error_rate_ = 0.0;
  std::uint64_t ber_seed_ = 0;
  std::vector<bool> link_up_;
  std::uint8_t recommended_ttl_ = 64;

  std::uint64_t reconvergences_ = 0;
  /// First install done? Gates full-sweep vs dirty-patch reconvergence.
  bool routes_installed_ = false;

  // Observability handles (resolved once; incremented only while
  // obs::enabled()). Mirrors delivered_/drops_/corrupted_ so the obs
  // plane can be cross-checked against the legacy counters.
  obs::counter* obs_delivered_ = nullptr;
  obs::counter* obs_hops_ = nullptr;
  obs::counter* obs_corrupted_ = nullptr;
  obs::counter* obs_reconvergences_ = nullptr;
  obs::counter* obs_routes_touched_ = nullptr;
  obs::histogram* obs_reconverge_ns_ = nullptr;
  std::array<obs::counter*, 5> obs_drops_{};  // indexed like drop_reason-1
  /// The global tracer, resolved once: tracer::global()'s init-guard
  /// check is off the per-hop path.
  obs::tracer* tracer_ = nullptr;
};

}  // namespace onfiber::net
