// topology.hpp — WAN topology graph: nodes joined by fiber links.
//
// Links carry length (propagation delay via the fiber group index),
// capacity, and a link-level cost used by shortest-path routing. Helper
// builders produce the topologies the benches use: the paper's 4-node
// Figure-1 network, a US-WAN-like backbone, linear chains, and small
// fat-trees for the datacenter discussion in §5.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "network/address.hpp"
#include "photonics/units.hpp"

namespace onfiber::net {

using node_id = std::uint32_t;
inline constexpr node_id invalid_node = ~node_id{0};

struct node {
  node_id id = invalid_node;
  std::string name;
  ipv4 address{};           ///< loopback/router address
  prefix attached_prefix{}; ///< the customer prefix homed at this node
};

struct link {
  node_id a = invalid_node;
  node_id b = invalid_node;
  double length_km = 100.0;
  double capacity_bps = 100e9;

  /// One-way propagation delay [s].
  [[nodiscard]] double delay_s() const {
    return phot::fiber_delay_s(length_km);
  }
};

/// Undirected multigraph of nodes and fiber links.
class topology {
 public:
  /// Add a node; address defaults to 10.<id>.0.1, prefix 10.<id>.0.0/16.
  node_id add_node(std::string name);

  /// Add an undirected link between existing nodes.
  void add_link(node_id a, node_id b, double length_km,
                double capacity_bps = 100e9);

  [[nodiscard]] const std::vector<node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<link>& links() const { return links_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] const node& node_at(node_id id) const {
    if (id >= nodes_.size()) throw std::out_of_range("topology: bad node id");
    return nodes_[id];
  }

  /// Node whose attached prefix covers `addr`, if any.
  [[nodiscard]] std::optional<node_id> node_for_address(ipv4 addr) const;

  /// Indices into links() incident to `id`.
  [[nodiscard]] const std::vector<std::size_t>& incident_links(
      node_id id) const {
    if (id >= adjacency_.size()) {
      throw std::out_of_range("topology: bad node id");
    }
    return adjacency_[id];
  }

  /// Neighbor reached from `from` over link index `link_idx`.
  [[nodiscard]] node_id neighbor(node_id from, std::size_t link_idx) const {
    const link& l = links_.at(link_idx);
    if (l.a == from) return l.b;
    if (l.b == from) return l.a;
    throw std::invalid_argument("topology: link not incident to node");
  }

  /// Dijkstra by propagation delay. Returns node sequence src..dst, or
  /// empty if unreachable. `link_up` (optional, size == links().size())
  /// excludes failed links from consideration.
  [[nodiscard]] std::vector<node_id> shortest_path(
      node_id src, node_id dst,
      const std::vector<bool>* link_up = nullptr) const;

  /// Total one-way propagation delay along a node path [s].
  [[nodiscard]] double path_delay_s(const std::vector<node_id>& path) const;

  /// Link index joining adjacent nodes u,v — the lowest-index link when
  /// parallel links exist (throws if none). O(1) via the cached pair map.
  [[nodiscard]] std::size_t link_between(node_id u, node_id v) const;

  /// Build the address and link-pair lookup caches now. They are
  /// otherwise built lazily on first lookup; call this once after the
  /// topology is final when lookups may come from multiple threads
  /// (wan_fabric's constructor does).
  void prime_lookup_caches() const;

 private:
  void ensure_caches() const;

  std::vector<node> nodes_;
  std::vector<link> links_;
  std::vector<std::vector<std::size_t>> adjacency_;

  // Lookup caches, lazily built and invalidated by add_node/add_link.
  // pair_link_ maps (min(u,v) << 32 | max(u,v)) to the lowest joining
  // link index; addr_index_ holds, per distinct prefix mask, a sorted
  // (masked network, node) list so node_for_address binary-searches
  // instead of scanning every node.
  mutable bool caches_valid_ = false;
  mutable std::unordered_map<std::uint64_t, std::uint32_t> pair_link_;
  mutable std::vector<
      std::pair<std::uint32_t, std::vector<std::pair<std::uint32_t, node_id>>>>
      addr_index_;
};

// ------------------------------------------------------- topology builders

/// The paper's Figure-1 network: A, B, C, D with A-B, A-C, B-D, C-D and
/// a direct (longer) A-D path. Distances in km chosen WAN-scale.
[[nodiscard]] topology make_figure1_topology();

/// Linear chain of n nodes, each hop `hop_km` long.
[[nodiscard]] topology make_linear_topology(std::size_t n,
                                            double hop_km = 100.0);

/// A US-WAN-like 12-node backbone (abstracted from published research
/// topologies such as Abilene/Internet2).
[[nodiscard]] topology make_uswan_topology();

/// k-ary fat-tree (k even): datacenter topology for the §5 discussion.
/// Node naming: core/agg/edge/host tiers; hosts attach /24 prefixes.
[[nodiscard]] topology make_fattree_topology(int k);

/// Waxman random WAN: n nodes placed on a `span_km`-sized square,
/// connected with probability alpha * exp(-d / (beta * L)); a spanning
/// chain guarantees connectivity. Deterministic per seed. Used by the
/// controller scalability sweeps, which need topologies larger than the
/// hand-built backbones.
[[nodiscard]] topology make_waxman_topology(std::size_t n,
                                            std::uint64_t seed,
                                            double alpha = 0.4,
                                            double beta = 0.25,
                                            double span_km = 3000.0);

// ---------------------------------------------------------- partitioning

/// Deterministic node -> shard assignment for the sharded event engine.
/// Every node is assigned a shard in [0, shards); shard sizes differ by
/// at most one for path-like graphs and stay balanced for meshes.
///
/// Strategy: a graph whose nodes all have degree <= 2 (chain or ring) is
/// cut into contiguous id blocks — for the id-ordered chains the
/// builders produce this is the minimum cut outright. Anything else gets
/// a greedy min-cut heuristic: BFS-grown regions of target size seeded
/// from the lowest unassigned id, then boundary-refinement passes that
/// move a node to a neighboring shard when that strictly reduces the
/// number of cut links without unbalancing the parts. Purely structural
/// and id-ordered, so the partition is a pure function of (topology,
/// shards).
[[nodiscard]] std::vector<std::uint32_t> partition_topology(
    const topology& topo, std::size_t shards);

}  // namespace onfiber::net
